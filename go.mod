module cbde

go 1.23
