// Package cbde is class-based delta-encoding: a scalable scheme for caching
// dynamic web content (Psounis, ICDCS 2002).
//
// Delta-encoding makes dynamic documents cachable: server and client share
// a base-file (an older snapshot) and only the delta between the current
// snapshot and the base-file crosses the network. The basic scheme needs
// one base-file per document (per user, when pages are personalized), which
// does not scale on the server side. Class-based delta-encoding groups
// similar documents into classes and stores a single base-file per class,
// exploiting spatial correlation across documents in addition to the
// temporal correlation within one document. A randomized online algorithm
// picks each class's base-file, and an anonymization pass strips
// user-unique byte-chunks so the shared base-file leaks no private data.
//
// # Quick start
//
//	eng, err := cbde.NewEngine(cbde.Config{})
//	if err != nil { ... }
//	resp, err := eng.Process(cbde.Request{
//		URL:    "www.shop.com/laptops/17",
//		UserID: "alice",
//		Doc:    currentSnapshot,
//	})
//	// resp.Kind is KindFull until the class's base-file is anonymized and
//	// the client advertises it; then deltas flow.
//
// For the transparent HTTP deployment of the paper's Figure 2, wrap an
// origin with NewServer and talk to it with NewClient; base-files are
// served cachable so any proxy (see NewProxyCache) absorbs their
// distribution.
//
// The subsystems are available directly: the Vdelta codec
// (internal/vdelta), URL partitioning (internal/urlparts), grouping
// (internal/classify), base-file selection (internal/basefile),
// anonymization (internal/anonymize), the synthetic workloads
// (internal/origin, internal/trace), the latency model (internal/netsim),
// and the paper's experiments (internal/experiments).
package cbde

import (
	"cbde/internal/core"
	"cbde/internal/deltaclient"
	"cbde/internal/deltaserver"
	"cbde/internal/proxycache"
)

// Core engine API (see internal/core).
type (
	// Engine implements class-based delta-encoding.
	Engine = core.Engine
	// Config parametrizes an Engine.
	Config = core.Config
	// Request is one client request plus the current document snapshot.
	Request = core.Request
	// Response is the engine's decision: a delta or the full document.
	Response = core.Response
	// ResponseKind distinguishes full from delta responses.
	ResponseKind = core.ResponseKind
	// HeldBase identifies a base-file a client holds.
	HeldBase = core.HeldBase
	// Mode selects class-based operation or a classless baseline.
	Mode = core.Mode
	// Stats is an engine counters snapshot.
	Stats = core.Stats
)

// Response kinds.
const (
	KindFull  = core.KindFull
	KindDelta = core.KindDelta
)

// Engine modes.
const (
	ModeClassBased       = core.ModeClassBased
	ModeClassless        = core.ModeClassless
	ModeClasslessPerUser = core.ModeClasslessPerUser
)

// NewEngine returns an Engine configured by cfg. The zero Config selects
// class-based mode with the paper's default parameters.
func NewEngine(cfg Config) (*Engine, error) { return core.NewEngine(cfg) }

// HTTP deployment API (see internal/deltaserver, internal/deltaclient,
// internal/proxycache).
type (
	// Server is the delta-server: a transparent HTTP front for one origin.
	Server = deltaserver.Server
	// ServerOption configures a Server.
	ServerOption = deltaserver.Option
	// Client is a delta-capable HTTP client (the browser stand-in).
	Client = deltaclient.Client
	// ClientOption configures a Client.
	ClientOption = deltaclient.Option
	// ProxyCache is a caching HTTP proxy that absorbs base-file
	// distribution.
	ProxyCache = proxycache.Cache
	// ProxyCacheOption configures a ProxyCache.
	ProxyCacheOption = proxycache.Option
)

// NewServer returns a delta-server forwarding to originURL and encoding
// with engine.
func NewServer(originURL string, engine *Engine, opts ...ServerOption) (*Server, error) {
	return deltaserver.New(originURL, engine, opts...)
}

// NewClient returns a delta-capable client for the given server URL.
func NewClient(serverURL string, opts ...ClientOption) *Client {
	return deltaclient.New(serverURL, opts...)
}

// NewProxyCache returns a caching proxy forwarding misses to nextURL.
func NewProxyCache(nextURL string, opts ...ProxyCacheOption) (*ProxyCache, error) {
	return proxycache.New(nextURL, opts...)
}

// Re-exported server options.
var (
	// WithPublicHost pins the server-part used for grouping.
	WithPublicHost = deltaserver.WithPublicHost
	// WithUser sets a client's user identity.
	WithUser = deltaclient.WithUser
)
