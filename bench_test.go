// Benchmarks regenerating every table and figure of the paper's evaluation.
// Each benchmark reports the paper's headline quantity via b.ReportMetric,
// so `go test -bench=. -benchmem` doubles as the reproduction harness:
//
//	BenchmarkTableII/*        -> savings%   (paper: 94.8 / 95.0 / 97.1)
//	BenchmarkTableIII         -> avg delta bytes per algorithm
//	BenchmarkTableIV/*        -> base & delta sizes, plain vs anonymized
//	BenchmarkLatency/*        -> L1/L2      (paper: ~5 high-bw, ~10 modem)
//	BenchmarkCapacity/*       -> req/s      (paper: 175-180 plain, ~130 delta)
//	BenchmarkDeltaGeneration  -> ms/delta   (paper: 6-8ms, 50-60KB base)
//	BenchmarkGrouping         -> docs per class (paper: 10-100x)
//	BenchmarkStorageByMode/*  -> server storage KB (the scalability claim)
//	BenchmarkPError/Privacy   -> closed-form bounds (Sections IV & V)
package cbde_test

import (
	"fmt"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"cbde/internal/anonymize"
	"cbde/internal/basefile"
	"cbde/internal/core"
	"cbde/internal/deltaclient"
	"cbde/internal/deltaserver"
	"cbde/internal/experiments"
	"cbde/internal/gzipx"
	"cbde/internal/netsim"
	"cbde/internal/origin"
	"cbde/internal/trace"
	"cbde/internal/vdelta"
)

// benchScale keeps replay-based benchmarks tractable; EXPERIMENTS.md
// records full-scale runs via cmd/experiments.
const benchScale = 0.05

// BenchmarkTableII replays each calibrated site (Table II) and reports the
// bandwidth savings percentage.
func BenchmarkTableII(b *testing.B) {
	for i, sw := range trace.PaperSites(benchScale) {
		b.Run(fmt.Sprintf("site%d", i+1), func(b *testing.B) {
			var last experiments.ReplayResult
			for n := 0; n < b.N; n++ {
				res, err := experiments.Replay(sw, core.ModeClassBased)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.Savings()*100, "savings%")
			b.ReportMetric(float64(last.DirectBytes)/1024, "directKB")
			b.ReportMetric(float64(last.DeltaBytes+last.FullBytes)/1024, "deltaKB")
		})
	}
}

// BenchmarkTableIII evaluates the three base-file selection algorithms
// (Table III) and reports each algorithm's average delta size.
func BenchmarkTableIII(b *testing.B) {
	docs := experiments.TableIIIDocs(100)
	var rows []experiments.TableIIIRow
	for n := 0; n < b.N; n++ {
		rows = experiments.TableIII(docs, 3, 42)
	}
	var fr, rnd, opt float64
	for _, r := range rows {
		fr += r.FirstResponse
		rnd += r.Randomized
		opt += r.OnlineOptimal
	}
	k := float64(len(rows))
	b.ReportMetric(fr/k, "firstResponseB")
	b.ReportMetric(rnd/k, "randomizedB")
	b.ReportMetric(opt/k, "onlineOptimalB")
}

// BenchmarkTableIV measures anonymization cost (Table IV) per (M, N) level.
func BenchmarkTableIV(b *testing.B) {
	for _, lvl := range experiments.TableIVLevels {
		b.Run(fmt.Sprintf("M%d_N%d", lvl.M, lvl.N), func(b *testing.B) {
			var rows []experiments.TableIVRow
			var err error
			for n := 0; n < b.N; n++ {
				rows, err = experiments.TableIV([]struct{ M, N int }{lvl})
				if err != nil {
					b.Fatal(err)
				}
			}
			r := rows[0]
			b.ReportMetric(float64(r.BasePlain), "basePlainB")
			b.ReportMetric(float64(r.BaseAnon), "baseAnonB")
			b.ReportMetric(r.DeltaPlain, "deltaPlainB")
			b.ReportMetric(r.DeltaAnon, "deltaAnonB")
		})
	}
}

// BenchmarkLatency evaluates the Section VI-A latency model and reports the
// L1/L2 ratio for a 30 KB document vs a 1 KB delta.
func BenchmarkLatency(b *testing.B) {
	paths := []struct {
		name string
		path netsim.Path
	}{
		{"high-bw", netsim.HighBandwidth()},
		{"modem-56k", netsim.Modem56k()},
	}
	for _, p := range paths {
		b.Run(p.name, func(b *testing.B) {
			var ratio float64
			for n := 0; n < b.N; n++ {
				ratio = p.path.LatencyRatio(30*1024, 1024)
			}
			b.ReportMetric(ratio, "L1/L2")
		})
	}
}

// BenchmarkCapacity reproduces the Section VI-C throughput comparison: the
// plain web-server vs the web-server fronted by the delta-server, both with
// the calibrated per-request origin cost.
func BenchmarkCapacity(b *testing.B) {
	res, err := experiments.Capacity(200)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("plain", func(b *testing.B) {
		for n := 0; n < b.N; n++ {
			// measurement happened above; per-iteration cost is reported
			// from the shared run to keep both sides comparable
		}
		b.ReportMetric(res.PlainRPS(), "req/s")
	})
	b.Run("delta-server", func(b *testing.B) {
		for n := 0; n < b.N; n++ {
		}
		b.ReportMetric(res.DeltaRPS(), "req/s")
		b.ReportMetric(res.CapacityRatio(), "ratio")
	})
}

// BenchmarkDeltaGeneration times one delta generation on a 50-60 KB base
// (paper: 6-8 ms on a Pentium III).
func BenchmarkDeltaGeneration(b *testing.B) {
	site := origin.NewSite(origin.Config{
		Host:          "www.cap.com",
		Depts:         []origin.Dept{{Name: "catalog", Items: 2}},
		TemplateBytes: 48000,
		ItemBytes:     5000,
		ChurnBytes:    2000,
		Seed:          606,
	})
	base, err := site.Render("catalog", 0, "", 0)
	if err != nil {
		b.Fatal(err)
	}
	target, err := site.Render("catalog", 0, "", 3)
	if err != nil {
		b.Fatal(err)
	}
	coder := vdelta.NewCoder()
	b.SetBytes(int64(len(target)))
	b.ResetTimer()
	var delta []byte
	for n := 0; n < b.N; n++ {
		delta, err = coder.Encode(base, target)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(delta)), "deltaB")
	b.ReportMetric(float64(len(gzipx.Compress(delta))), "gzDeltaB")
}

// BenchmarkDeltaReconstruction times the client-side combine (the paper
// calls the client-side latency "insignificant").
func BenchmarkDeltaReconstruction(b *testing.B) {
	site := origin.NewSite(origin.Config{
		Host:          "www.cap.com",
		Depts:         []origin.Dept{{Name: "catalog", Items: 2}},
		TemplateBytes: 48000,
		Seed:          606,
	})
	base, _ := site.Render("catalog", 0, "", 0)
	target, _ := site.Render("catalog", 0, "", 3)
	delta, err := vdelta.Encode(base, target)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(target)))
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if _, err := vdelta.Decode(base, delta); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGrouping replays site1 and reports the Section VI-B class
// compression (documents per class) and probe effort.
func BenchmarkGrouping(b *testing.B) {
	sw := trace.PaperSites(benchScale)[0]
	var last experiments.ReplayResult
	for n := 0; n < b.N; n++ {
		res, err := experiments.Replay(sw, core.ModeClassBased)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(float64(last.DistinctDocs)/float64(last.Classes), "docs/class")
	b.ReportMetric(last.ProbesPerURL, "probes/url")
}

// BenchmarkStorageByMode replays site1 under each mode and reports the
// server-side storage footprint — the scalability claim of Section II.
func BenchmarkStorageByMode(b *testing.B) {
	sw := trace.PaperSites(benchScale)[0]
	for _, mode := range []core.Mode{core.ModeClassBased, core.ModeClassless, core.ModeClasslessPerUser} {
		b.Run(mode.String(), func(b *testing.B) {
			var last experiments.ReplayResult
			for n := 0; n < b.N; n++ {
				res, err := experiments.Replay(sw, mode)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(float64(last.StorageBytes)/1024, "storageKB")
			b.ReportMetric(float64(last.Classes), "base-files")
			b.ReportMetric(last.Savings()*100, "savings%")
		})
	}
}

// BenchmarkEvictionPolicies compares the footnote-3 eviction variants: the
// average delta size each achieves over the Table III pool.
func BenchmarkEvictionPolicies(b *testing.B) {
	docs := experiments.TableIIIDocs(100)
	coder := vdelta.NewCoder()
	for _, policy := range []basefile.EvictionPolicy{
		basefile.EvictWorst, basefile.EvictPeriodicRandom, basefile.EvictTwoSet,
	} {
		b.Run(policy.String(), func(b *testing.B) {
			var avg float64
			for n := 0; n < b.N; n++ {
				s := basefile.NewSelector(basefile.Config{
					SampleProb: 0.2, MaxSamples: 8, Eviction: policy, Seed: 7,
				})
				now := time.Unix(0, 0)
				total, count := 0, 0
				for _, doc := range docs {
					base, version := s.Base()
					if version > 0 {
						if d, err := coder.Encode(base, doc); err == nil {
							total += len(d)
							count++
						}
					}
					s.Observe(doc, now)
					now = now.Add(time.Second)
				}
				avg = float64(total) / float64(count)
			}
			b.ReportMetric(avg, "avgDeltaB")
		})
	}
}

// BenchmarkPError evaluates the Section IV selection-error bound at the
// paper's operating point.
func BenchmarkPError(b *testing.B) {
	var bound float64
	for n := 0; n < b.N; n++ {
		bound = basefile.PErrorBound(1000, 10)
	}
	b.ReportMetric(bound*1e11, "bound-1e-11") // paper: <= 8
}

// BenchmarkPrivacy evaluates the Section V privacy bound and exact value at
// the paper's operating point.
func BenchmarkPrivacy(b *testing.B) {
	var bound, exact float64
	for n := 0; n < b.N; n++ {
		bound = anonymize.PrivacyBoundIID(10, 5, 0.01)
		exact = anonymize.PrivacyExact(10, 5, 0.01)
	}
	b.ReportMetric(bound*1e7, "bound-1e-7") // paper: ~4.7
	b.ReportMetric(exact*1e8, "exact-1e-8") // paper: ~2.4
}

// BenchmarkAnonymization times one full anonymization pass (N comparisons
// of a ~40 KB base-file).
func BenchmarkAnonymization(b *testing.B) {
	site := origin.NewSite(origin.Config{
		Host:          "www.anon.com",
		Depts:         []origin.Dept{{Name: "portal", Items: 4}},
		TemplateBytes: 36000,
		Personalized:  true,
		Seed:          99,
	})
	base, _ := site.Render("portal", 0, "owner", 0)
	var docs [][]byte
	for i := 0; i < 5; i++ {
		d, _ := site.Render("portal", i%4, fmt.Sprintf("u%d", i), i)
		docs = append(docs, d)
	}
	b.SetBytes(int64(len(base)))
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if _, err := anonymize.Anonymize(base, docs, anonymize.Config{M: 2, N: 5}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEndToEndHTTP measures one full client request through the real
// HTTP chain (delta path, warm base) — the serving-latency complement to
// the throughput numbers.
func BenchmarkEndToEndHTTP(b *testing.B) {
	site := origin.NewSite(origin.Config{
		Host:          "www.e2e.com",
		Depts:         []origin.Dept{{Name: "catalog", Items: 4}},
		TemplateBytes: 30000,
		Seed:          5,
	})
	originSrv := httptest.NewServer(site.Handler())
	defer originSrv.Close()
	eng, err := core.NewEngine(core.Config{
		Anon: anonymize.Config{M: 1, N: 2},
		Now:  monotonic(),
	})
	if err != nil {
		b.Fatal(err)
	}
	ds, err := deltaserver.New(originSrv.URL, eng, deltaserver.WithPublicHost("www.e2e.com"))
	if err != nil {
		b.Fatal(err)
	}
	front := httptest.NewServer(ds)
	defer front.Close()

	cl := deltaclient.New(front.URL, deltaclient.WithUser("bench"))
	// Warm through distinct users.
	for i := 0; i < 4; i++ {
		warmCl := deltaclient.New(front.URL, deltaclient.WithUser(fmt.Sprintf("w%d", i)))
		if _, err := warmCl.Get("/catalog/0"); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := cl.Get("/catalog/0"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if _, err := cl.Get("/catalog/0"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineProcessParallel drives Engine.Process from concurrent
// goroutines (b.RunParallel) against warmed classes, reporting req/s. The
// cross-class variant spreads goroutines over several classes (the realistic
// multicore serving mix); the same-class variant hammers one class and so
// measures residual per-class serialization. Together they put a multicore
// data point next to the paper's single-core capacity table (Section VI-C).
// The delta memo cache is off here so the numbers keep pricing the encode
// pipeline itself; BenchmarkEngineProcessMemoized prices the cached path.
func BenchmarkEngineProcessParallel(b *testing.B) {
	variants := []struct {
		name    string
		classes int
	}{
		{"same-class", 1},
		{"cross-class", 8},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			benchEngineParallel(b, v.classes, false)
		})
	}
}

// BenchmarkEngineProcessMemoized is BenchmarkEngineProcessParallel with the
// delta memo cache on (the production default) and pre-filled: every
// measured request is a warm hit served by aliasing the cached compressed
// delta, so the numbers price the lookup-and-share path that repeated
// (class, version, document) traffic rides. Compare same-class here against
// same-class in the Parallel benchmark for the memoization speedup.
func BenchmarkEngineProcessMemoized(b *testing.B) {
	variants := []struct {
		name    string
		classes int
	}{
		{"same-class", 1},
		{"cross-class", 8},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			benchEngineParallel(b, v.classes, true)
		})
	}
}

// benchEngineParallel warms nClasses classes to the delta-serving steady
// state and then processes delta requests from all goroutines. With
// memoized set, the delta cache stays on and is pre-filled so measurement
// starts at a 100% hit rate; otherwise the cache is disabled and every
// request encodes.
func benchEngineParallel(b *testing.B, nClasses int, memoized bool) {
	eng, err := core.NewEngine(core.Config{
		Anon: anonymize.Config{M: 1, N: 2},
		// Disable candidate sampling so the steady state is a pure
		// route+encode path with no group-rebases mid-measurement.
		Selector:      basefile.Config{SampleProb: -1},
		DeltaCacheOff: !memoized,
		Now:           monotonic(),
	})
	if err != nil {
		b.Fatal(err)
	}

	type class struct {
		id      string
		version int
		docs    [][]byte
	}
	classes := make([]*class, nClasses)
	for c := 0; c < nClasses; c++ {
		site := origin.NewSite(origin.Config{
			Host:          fmt.Sprintf("www.cap%d.com", c),
			Depts:         []origin.Dept{{Name: "catalog", Items: 2}},
			TemplateBytes: 30000,
			ItemBytes:     3000,
			ChurnBytes:    1500,
			Seed:          uint64(7000 + c),
		})
		url := fmt.Sprintf("www.cap%d.com/catalog/0", c)
		// Warm through distinct users until the class distributes a base.
		var resp core.Response
		for u := 0; u < 4; u++ {
			doc, err := site.Render("catalog", 0, "", u)
			if err != nil {
				b.Fatal(err)
			}
			resp, err = eng.Process(core.Request{URL: url, UserID: fmt.Sprintf("warm%d", u), Doc: doc})
			if err != nil {
				b.Fatal(err)
			}
		}
		if resp.LatestVersion == 0 {
			b.Fatalf("class %d: no distributable base after warmup", c)
		}
		cl := &class{id: resp.ClassID, version: resp.LatestVersion}
		// Pre-render a cycle of near-base documents so measurement excludes
		// document generation.
		for t := 0; t < 16; t++ {
			doc, err := site.Render("catalog", 0, "", 10+t)
			if err != nil {
				b.Fatal(err)
			}
			cl.docs = append(cl.docs, doc)
		}
		classes[c] = cl
	}

	urls := make([]string, nClasses)
	for c := range urls {
		urls[c] = fmt.Sprintf("www.cap%d.com/catalog/0", c)
	}

	if memoized {
		// Lead every (class, doc) key once so the measured loop is pure
		// warm hits.
		for c, cl := range classes {
			for _, doc := range cl.docs {
				resp, err := eng.Process(core.Request{
					URL: urls[c], UserID: "bench", Doc: doc,
					HaveClassID: cl.id, HaveVersion: cl.version,
				})
				if err != nil {
					b.Fatal(err)
				}
				if resp.Kind != core.KindDelta {
					b.Fatalf("prefill expected delta response, got %v", resp.Kind)
				}
			}
		}
	}

	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			c := i % nClasses
			cl := classes[c]
			req := core.Request{
				URL:         urls[c],
				UserID:      "bench",
				Doc:         cl.docs[i%len(cl.docs)],
				HaveClassID: cl.id,
				HaveVersion: cl.version,
			}
			resp, err := eng.Process(req)
			if err != nil {
				b.Fatal(err)
			}
			if resp.Kind != core.KindDelta {
				b.Fatalf("expected delta response, got %v", resp.Kind)
			}
			i++
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
	if memoized {
		dc := eng.DeltaCacheStats()
		b.ReportMetric(float64(dc.Hits)/float64(dc.Hits+dc.Misses+dc.Coalesced), "hit-frac")
	}
}

// BenchmarkEngineProcessBudgeted measures the memory-governed store on the
// parallel serving path. headroom sets a budget the working set fits inside,
// so it prices the per-request budget check alone (must track the
// unbudgeted BenchmarkEngineProcessParallel numbers); churn sets a budget
// that holds the two hot classes (a fully warm class costs ~0.5 MB — base
// plus the stride-1 chain index) but not the six-class cold tail, so sweeps
// run continuously: CLOCK must keep the hot set resident while the tail
// evicts and re-warms, with the full (non-delta) response fraction reported
// alongside req/s.
func BenchmarkEngineProcessBudgeted(b *testing.B) {
	b.Run("headroom", func(b *testing.B) { benchEngineBudgeted(b, 64<<20) })
	b.Run("churn", func(b *testing.B) { benchEngineBudgeted(b, 1536<<10) })
}

func benchEngineBudgeted(b *testing.B, budget int64) {
	eng, err := core.NewEngine(core.Config{
		Anon:      anonymize.Config{M: 1, N: 2},
		Selector:  basefile.Config{SampleProb: -1},
		MemBudget: budget,
		Now:       monotonic(),
	})
	if err != nil {
		b.Fatal(err)
	}

	const nClasses = 8
	type class struct {
		id      string
		version int
		docs    [][]byte
	}
	classes := make([]*class, nClasses)
	urls := make([]string, nClasses)
	for c := 0; c < nClasses; c++ {
		site := origin.NewSite(origin.Config{
			Host:          fmt.Sprintf("www.gov%d.com", c),
			Depts:         []origin.Dept{{Name: "catalog", Items: 2}},
			TemplateBytes: 30000,
			ItemBytes:     3000,
			ChurnBytes:    1500,
			Seed:          uint64(8000 + c),
		})
		urls[c] = fmt.Sprintf("www.gov%d.com/catalog/0", c)
		var resp core.Response
		for u := 0; u < 4; u++ {
			doc, err := site.Render("catalog", 0, "", u)
			if err != nil {
				b.Fatal(err)
			}
			resp, err = eng.Process(core.Request{URL: urls[c], UserID: fmt.Sprintf("warm%d", u), Doc: doc})
			if err != nil {
				b.Fatal(err)
			}
		}
		cl := &class{id: resp.ClassID, version: resp.LatestVersion}
		for t := 0; t < 16; t++ {
			doc, err := site.Render("catalog", 0, "", 10+t)
			if err != nil {
				b.Fatal(err)
			}
			cl.docs = append(cl.docs, doc)
		}
		classes[c] = cl
	}

	// Rotate a few user identities so evicted classes can finish
	// anonymization again and re-warm mid-run.
	users := []string{"bench-0", "bench-1", "bench-2", "bench-3"}
	var fulls atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		// Per-goroutine held versions, refreshed like a real client when the
		// server announces a newer base — under churn, evicted classes
		// degrade to full responses until the goroutine re-fetches.
		held := make([]int, nClasses)
		for c, cl := range classes {
			held[c] = cl.version
		}
		i := 0
		for pb.Next() {
			// 75% of traffic on two hot classes, the rest rotating the
			// cold tail — the skew CLOCK's ref bits are built for.
			c := i % 2
			if i%4 == 3 {
				c = 2 + (i/4)%(nClasses-2)
			}
			cl := classes[c]
			req := core.Request{
				URL:    urls[c],
				UserID: users[(i/nClasses)%len(users)],
				Doc:    cl.docs[i%len(cl.docs)],
			}
			if held[c] != 0 {
				req.HaveClassID = cl.id
				req.HaveVersion = held[c]
			}
			resp, err := eng.Process(req)
			if err != nil {
				b.Fatal(err)
			}
			if resp.Kind != core.KindDelta {
				fulls.Add(1)
			}
			if resp.LatestVersion != held[c] {
				held[c] = resp.LatestVersion
			}
			i++
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
	b.ReportMetric(float64(fulls.Load())/float64(b.N), "full-frac")
	if st := eng.StoreStats(); st.Resident.Total > budget {
		b.Fatalf("resident bytes %d exceed budget %d after run", st.Resident.Total, budget)
	}
}

func monotonic() func() time.Time {
	base := time.Unix(1_000_000, 0)
	n := 0
	return func() time.Time {
		n++
		return base.Add(time.Duration(n) * time.Millisecond)
	}
}

// BenchmarkProcessTracing measures the observability tentpole's overhead:
// the warm delta-serving path with span tracing off (the default, which
// must cost nothing) versus on (spans + per-stage histograms). CI archives
// the pair in BENCH_obs.json so tracer-overhead regressions are diffable.
func BenchmarkProcessTracing(b *testing.B) {
	for _, enabled := range []bool{false, true} {
		name := "off"
		if enabled {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			eng, err := core.NewEngine(core.Config{
				Anon:     anonymize.Config{M: 1, N: 2},
				Selector: basefile.Config{SampleProb: -1},
				Now:      monotonic(),
			})
			if err != nil {
				b.Fatal(err)
			}
			site := origin.NewSite(origin.Config{
				Host:          "www.trace.com",
				Depts:         []origin.Dept{{Name: "catalog", Items: 2}},
				TemplateBytes: 30000,
				ItemBytes:     3000,
				ChurnBytes:    1500,
				Seed:          7777,
			})
			const url = "www.trace.com/catalog/0"
			var resp core.Response
			for u := 0; u < 4; u++ {
				doc, err := site.Render("catalog", 0, "", u)
				if err != nil {
					b.Fatal(err)
				}
				resp, err = eng.Process(core.Request{URL: url, UserID: fmt.Sprintf("warm%d", u), Doc: doc})
				if err != nil {
					b.Fatal(err)
				}
			}
			if resp.LatestVersion == 0 {
				b.Fatal("no distributable base after warmup")
			}
			doc, err := site.Render("catalog", 0, "", 10)
			if err != nil {
				b.Fatal(err)
			}
			req := core.Request{
				URL: url, UserID: "bench", Doc: doc,
				HaveClassID: resp.ClassID, HaveVersion: resp.LatestVersion,
			}
			eng.SetTracing(enabled)

			b.ReportAllocs()
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				resp, err := eng.Process(req)
				if err != nil {
					b.Fatal(err)
				}
				if resp.Kind != core.KindDelta {
					b.Fatalf("expected delta response, got %v", resp.Kind)
				}
			}
		})
	}
}

// BenchmarkUserLatency reproduces the abstract's headline claim — latency
// perceived by most users improves by ~10x on average over low-bandwidth
// links — and reports the modeled per-request speedup distribution.
func BenchmarkUserLatency(b *testing.B) {
	var reports []experiments.UserLatencyReport
	for n := 0; n < b.N; n++ {
		var err error
		reports, err = experiments.UserLatency(1, benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range reports {
		if r.Path == "modem-56k" {
			b.ReportMetric(r.MeanRatio, "meanSpeedup")
			b.ReportMetric(r.MedianRatio, "medianSpeedup")
			b.ReportMetric(r.FracAtLeast5x*100, ">=5x%")
		}
	}
}

// BenchmarkFormats compares the vdelta and RFC 3284 VCDIFF wire formats on
// the same document pairs.
func BenchmarkFormats(b *testing.B) {
	var rows []experiments.FormatComparisonRow
	for n := 0; n < b.N; n++ {
		var err error
		rows, err = experiments.CompareFormats()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Label == "next-tick" {
			b.ReportMetric(float64(r.VdeltaBytes), "vdeltaB")
			b.ReportMetric(float64(r.VCDIFFBytes), "vcdiffB")
		}
	}
}

// BenchmarkRebaseTimeout reports the rebase-frequency vs savings trade at
// two ends of the timeout sweep.
func BenchmarkRebaseTimeout(b *testing.B) {
	var rows []experiments.RebaseRow
	for n := 0; n < b.N; n++ {
		var err error
		rows, err = experiments.AblateRebaseTimeout(
			[]time.Duration{0, time.Hour}, benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows[0].GroupRebases), "rebases@0s")
	b.ReportMetric(float64(rows[1].GroupRebases), "rebases@1h")
	b.ReportMetric(rows[1].Savings, "savings%@1h")
}

// BenchmarkStoreSpillFaultIn prices the disk tier's promotion path against
// the alternative it replaces. Both sub-benchmarks demote one warm class
// every iteration; "faultin" (spill dir set) restores the class from its
// compact blob and serves the returning client a delta, while "rewarm" (no
// tier) loses the class state with the eviction and ships the client a
// full response while the class re-warms from traffic. wireB/op is the
// payload shipped per returning client — the paper's bandwidth metric
// under eviction churn — and delta-frac is the delta-served fraction.
func BenchmarkStoreSpillFaultIn(b *testing.B) {
	for _, tier := range []bool{true, false} {
		name := "rewarm"
		if tier {
			name = "faultin"
		}
		b.Run(name, func(b *testing.B) {
			cfg := core.Config{
				DisableAnonymization: true,
				// No sampling and no timed rebases: versions move only
				// through the demotion cycle under test.
				Selector: basefile.Config{SampleProb: -1, RebaseTimeout: time.Hour},
				Now:      monotonic(),
			}
			if tier {
				cfg.SpillDir = b.TempDir()
				// Bounded so a long -benchtime run compacts dead segments
				// instead of filling the disk; the live record survives
				// compaction (the newest segment is never dropped).
				cfg.DiskBudget = 16 << 20
			}
			eng, err := core.NewEngine(cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer eng.Close()
			site := origin.NewSite(origin.Config{
				Host:          "www.spill.com",
				Depts:         []origin.Dept{{Name: "catalog", Items: 2}},
				TemplateBytes: 30000,
				ItemBytes:     3000,
				ChurnBytes:    1500,
				Seed:          7100,
			})
			url := "www.spill.com/catalog/0"
			doc0, err := site.Render("catalog", 0, "", 0)
			if err != nil {
				b.Fatal(err)
			}
			resp, err := eng.Process(core.Request{URL: url, UserID: "warm", Doc: doc0})
			if err != nil {
				b.Fatal(err)
			}
			if resp.LatestVersion == 0 {
				b.Fatal("no distributable base after warmup")
			}
			classID, version := resp.ClassID, resp.LatestVersion
			var docs [][]byte
			for t := 0; t < 16; t++ {
				doc, err := site.Render("catalog", 0, "", 10+t)
				if err != nil {
					b.Fatal(err)
				}
				docs = append(docs, doc)
			}

			var wire int64
			deltas, fulls := 0, 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := eng.EvictClass(classID); !ok {
					b.Fatal("evict failed")
				}
				doc := docs[i%len(docs)]
				resp, err := eng.Process(core.Request{
					URL: url, UserID: "bench", Doc: doc,
					HaveClassID: classID, HaveVersion: version,
				})
				if err != nil {
					b.Fatal(err)
				}
				if resp.Kind == core.KindDelta {
					deltas++
					wire += int64(len(resp.Payload))
				} else {
					fulls++
					wire += int64(len(doc))
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(wire)/float64(b.N), "wireB/op")
			b.ReportMetric(float64(deltas)/float64(b.N), "delta-frac")
			if tier {
				if fulls > 0 {
					b.Fatalf("fault-in path served %d full responses", fulls)
				}
				if st := eng.SpillStats(); st.FaultIns == 0 {
					b.Fatalf("tier never faulted in: %+v", st)
				}
			} else if deltas > 0 {
				b.Fatalf("rewarm path unexpectedly served %d deltas", deltas)
			}
		})
	}
}

// graphBenchDoc renders one content generation for the version-graph
// benchmark: a shared template plus a per-generation churn section, the
// edit shape where retained edges stay small relative to the document.
func graphBenchDoc(gen int) []byte {
	doc := make([]byte, 0, 34000)
	x := uint64(4242)
	for len(doc) < 30000 {
		x = x*2862933555777941757 + 3037000493
		doc = append(doc, byte(x>>56))
	}
	x = uint64(gen) + 9000
	for i := 0; i < 3000; i++ {
		x = x*2862933555777941757 + 3037000493
		doc = append(doc, byte(x>>56))
	}
	return doc
}

// BenchmarkGraphStaleClient measures serving a client whose base-file lags
// the current version by 1, 2, and 4 rebases, with the version graph on
// (depth 6: direct old-version deltas or composed chains) versus off
// (depth 1: any lag falls off the delta path). wireB/op is the headline:
// bytes a stale client costs on the wire under each retention policy.
func BenchmarkGraphStaleClient(b *testing.B) {
	for _, g := range []struct {
		name  string
		depth int
	}{
		{"graph-on", 6},
		{"graph-off", 1},
	} {
		for _, lag := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("%s/lag%d", g.name, lag), func(b *testing.B) {
				eng, err := core.NewEngine(core.Config{
					DisableAnonymization: true,
					GraphDepth:           g.depth,
					MaxDeltaRatio:        0.02,
					Selector:             basefile.Config{SampleProb: 1, MaxSamples: 4},
				})
				if err != nil {
					b.Fatal(err)
				}
				const gens = 8
				classID, have := "", 0
				for gen := 1; gen <= gens; gen++ {
					for r := 0; r < 2; r++ {
						resp, err := eng.Process(core.Request{
							URL: "www.graph.com/catalog/0", UserID: "warm",
							Doc:         graphBenchDoc(gen),
							HaveClassID: classID, HaveVersion: have,
						})
						if err != nil {
							b.Fatal(err)
						}
						classID = resp.ClassID
						if resp.LatestVersion > have {
							have = resp.LatestVersion
						}
					}
				}
				doc := graphBenchDoc(gens)
				stale := have - lag
				if stale < 1 {
					b.Fatalf("lag %d exceeds version history %d", lag, have)
				}
				// With the graph off the stale version is pruned and every
				// response is full — that cost is exactly the comparison.
				var wire int64
				deltas, chains := 0, 0
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					resp, err := eng.Process(core.Request{
						URL: "www.graph.com/catalog/0", UserID: "bench", Doc: doc,
						HaveClassID: classID, HaveVersion: stale,
					})
					if err != nil {
						b.Fatal(err)
					}
					if resp.Kind == core.KindDelta {
						deltas++
						if resp.Format == core.FormatVdeltaChain {
							chains++
						}
						wire += int64(len(resp.Payload))
					} else {
						wire += int64(len(doc))
					}
				}
				b.StopTimer()
				b.ReportMetric(float64(wire)/float64(b.N), "wireB/op")
				b.ReportMetric(float64(deltas)/float64(b.N), "delta-frac")
				b.ReportMetric(float64(chains)/float64(b.N), "chain-frac")
				if g.depth > 1 && deltas == 0 {
					b.Fatal("graph-on served no deltas to a retained stale client")
				}
				if g.depth == 1 && deltas != 0 {
					b.Fatal("graph-off unexpectedly served deltas to a pruned version")
				}
			})
		}
	}
}
