// Personalized-portal example: the full Figure 2 deployment over real
// localhost HTTP.
//
// A my.yahoo-style portal personalizes every page (user name, card on
// file, session id). The chain is
//
//	delta-capable clients -> proxy-cache -> delta-server -> web-server
//
// and the example shows: anonymization completing before any base-file is
// distributed; byte-accurate reconstruction for each personalized view;
// the proxy-cache absorbing base-file distribution for the second client;
// and the bandwidth ledger for a browsing session.
//
//	go run ./examples/personalized-portal
package main

import (
	"bytes"
	"fmt"
	"log"
	"net/http/httptest"

	"cbde"
	"cbde/internal/anonymize"
	"cbde/internal/origin"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// extractCard pulls the card number out of a rendered portal page.
func extractCard(doc []byte) string {
	const marker = "card on file "
	i := bytes.Index(doc, []byte(marker))
	if i < 0 {
		return ""
	}
	rest := doc[i+len(marker):]
	end := bytes.IndexByte(rest, '<')
	if end < 0 {
		return ""
	}
	return string(rest[:end])
}

func run() error {
	portal := origin.NewSite(origin.Config{
		Host:  "my.portal.example",
		Style: origin.StylePathSegments,
		Depts: []origin.Dept{
			{Name: "news", Items: 20},
			{Name: "finance", Items: 20},
		},
		TemplateBytes: 30000,
		ItemBytes:     2500,
		ChurnBytes:    1200,
		Personalized:  true,
		Seed:          42,
	})
	originSrv := httptest.NewServer(portal.Handler())
	defer originSrv.Close()

	eng, err := cbde.NewEngine(cbde.Config{Anon: anonymize.Config{M: 2, N: 5}})
	if err != nil {
		return err
	}
	ds, err := cbde.NewServer(originSrv.URL, eng, cbde.WithPublicHost("my.portal.example"))
	if err != nil {
		return err
	}
	dsSrv := httptest.NewServer(ds)
	defer dsSrv.Close()

	proxy, err := cbde.NewProxyCache(dsSrv.URL)
	if err != nil {
		return err
	}
	proxySrv := httptest.NewServer(proxy)
	defer proxySrv.Close()

	fmt.Println("chain: client -> proxy-cache -> delta-server -> web-server")

	// Seven distinct users visit the front page: enough for the class to
	// form and its base-file to be anonymized (M=2 of N=5 users).
	for i := 0; i < 7; i++ {
		user := fmt.Sprintf("visitor-%d", i)
		cl := cbde.NewClient(proxySrv.URL, cbde.WithUser(user))
		if _, err := cl.Get("/news/0"); err != nil {
			return err
		}
	}
	st := eng.Stats()
	fmt.Printf("warmup: %d requests, anonymization processes completed: %d\n",
		st.Requests, st.AnonCompleted)

	// The distributed base-file must not leak anyone's private data: the
	// shared label text ("card on file") survives anonymization, but no
	// visitor's actual card number or name may.
	classID := ""
	for _, c := range []string{"my.portal.example/news#1", "my.portal.example/news#2"} {
		base, _, ok := eng.LatestBase(c)
		if !ok {
			continue
		}
		classID = c
		for i := 0; i < 7; i++ {
			user := fmt.Sprintf("visitor-%d", i)
			doc, err := portal.Render("news", 0, user, 0)
			if err != nil {
				return err
			}
			if card := extractCard(doc); card != "" && bytes.Contains(base, []byte(card)) {
				return fmt.Errorf("PRIVACY VIOLATION: base-file contains %s's card number", user)
			}
			if bytes.Contains(base, []byte(user)) {
				return fmt.Errorf("PRIVACY VIOLATION: base-file contains user name %s", user)
			}
		}
	}
	fmt.Printf("privacy: shared base-file for %q carries no user names or card numbers\n", classID)

	// Alice browses; every page is personalized for her and must
	// reconstruct byte-for-byte.
	alice := cbde.NewClient(proxySrv.URL, cbde.WithUser("alice"))
	pages := 0
	for tick := 0; tick < 5; tick++ {
		for item := 0; item < 4; item++ {
			path := fmt.Sprintf("/news/%d", item)
			doc, err := alice.Get(path)
			if err != nil {
				return err
			}
			want, err := portal.Render("news", item, "alice", portal.Tick())
			if err != nil {
				return err
			}
			if !bytes.Equal(doc, want) {
				return fmt.Errorf("reconstruction mismatch on %s", path)
			}
			if !bytes.Contains(doc, []byte("alice")) {
				return fmt.Errorf("personalization lost on %s", path)
			}
			pages++
		}
		portal.Advance(1) // headlines rotate
	}
	ast := alice.Stats()
	fmt.Printf("alice:  %d personalized pages, all byte-identical; %d deltas, %d fulls\n",
		pages, ast.DeltaResponses, ast.FullResponses)
	fmt.Printf("        wire: %d KB payload + %d KB base vs %d KB direct\n",
		ast.PayloadBytes/1024, ast.BaseBytes/1024,
		eng.Stats().BytesDirect/1024)

	// Bob arrives later; his base-file download is a proxy-cache hit.
	before := proxy.Stats()
	bob := cbde.NewClient(proxySrv.URL, cbde.WithUser("bob"))
	if _, err := bob.Get("/news/1"); err != nil {
		return err
	}
	after := proxy.Stats()
	fmt.Printf("proxy:  bob's base-file fetch was a cache %s (%d hits, %d misses total)\n",
		map[bool]string{true: "HIT", false: "miss"}[after.Hits > before.Hits],
		after.Hits, after.Misses)

	final := eng.Stats()
	fmt.Printf("server: %d requests, %.0f%% bandwidth saved, storage %d KB for %d classes\n",
		final.Requests, final.Savings()*100, final.StorageBytes/1024, final.Classes)
	return nil
}
