// VCDIFF interop example: a standards-speaking client.
//
// The paper's reference [12] is the VCDIFF internet-draft (later RFC 3284),
// the standardization of the Vdelta lineage. This example runs the usual
// origin + delta-server chain and has a client negotiate RFC 3284 payloads
// via `X-CBDE-Accept: vcdiff`, then inspects the wire bytes to show they
// really are VCDIFF (magic 0xD6 0xC3 0xC4) and reconstructs the document
// with the standalone RFC 3284 decoder.
//
//	go run ./examples/vcdiff-interop
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strconv"

	"cbde"
	"cbde/internal/anonymize"
	"cbde/internal/deltahttp"
	"cbde/internal/gzipx"
	"cbde/internal/origin"
	"cbde/internal/vcdiff"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	site := origin.NewSite(origin.Config{
		Host:          "news.example.com",
		Depts:         []origin.Dept{{Name: "world", Items: 8}},
		TemplateBytes: 20000,
		ItemBytes:     2000,
		ChurnBytes:    800,
		Seed:          1234,
	})
	originSrv := httptest.NewServer(site.Handler())
	defer originSrv.Close()

	eng, err := cbde.NewEngine(cbde.Config{Anon: anonymize.Config{M: 1, N: 3}})
	if err != nil {
		return err
	}
	ds, err := cbde.NewServer(originSrv.URL, eng, cbde.WithPublicHost("news.example.com"))
	if err != nil {
		return err
	}
	front := httptest.NewServer(ds)
	defer front.Close()

	// Warm the class (anonymization needs distinct users).
	var classID string
	var version int
	for i := 0; i < 6; i++ {
		req, _ := http.NewRequest(http.MethodGet, front.URL+"/world/0", nil)
		req.Header.Set(deltahttp.HeaderUser, fmt.Sprintf("reader-%d", i))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		classID = resp.Header.Get(deltahttp.HeaderClass)
		version, _ = strconv.Atoi(resp.Header.Get(deltahttp.HeaderLatestVersion))
	}
	fmt.Printf("class %q warmed, base-file v%d distributed\n", classID, version)

	// Fetch the base, then request the document as an RFC 3284 client.
	resp, err := http.Get(front.URL + deltahttp.BasePath(classID, version))
	if err != nil {
		return err
	}
	base, _ := io.ReadAll(resp.Body)
	resp.Body.Close()

	site.Advance(2) // headlines rotate

	req, _ := http.NewRequest(http.MethodGet, front.URL+"/world/0", nil)
	req.Header.Set(deltahttp.HeaderCapable, "1")
	req.Header.Set(deltahttp.HeaderUser, "standards-fan")
	req.Header.Set(deltahttp.HeaderAccept, deltahttp.EncodingVCDIFF)
	req.Header.Set(deltahttp.HeaderHaveClass, classID)
	req.Header.Set(deltahttp.HeaderHaveVersion, strconv.Itoa(version))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	payload, _ := io.ReadAll(resp.Body)
	resp.Body.Close()

	enc := resp.Header.Get(deltahttp.HeaderEncoding)
	fmt.Printf("server answered with encoding %q, %d bytes\n", enc, len(payload))

	// Undo gzip if the server compressed, then check the RFC 3284 magic.
	raw := payload
	if enc == deltahttp.EncodingVCDIFFGzip {
		if raw, err = gzipx.Decompress(payload); err != nil {
			return err
		}
	}
	fmt.Printf("wire magic: % x (RFC 3284 wants d6 c3 c4 00)\n", raw[:4])

	// Reconstruct with the standalone RFC 3284 decoder — no CBDE internals.
	doc, err := vcdiff.Decode(base, raw)
	if err != nil {
		return err
	}
	want, err := site.Render("world", 0, "", site.Tick())
	if err != nil {
		return err
	}
	fmt.Printf("decoded %d bytes; byte-identical to the origin render: %v\n",
		len(doc), bytes.Equal(doc, want))
	fmt.Printf("transfer: %d-byte document shipped as a %d-byte standard delta\n",
		len(want), len(payload))
	return nil
}
