// E-commerce example: the www.foo.com store of the paper's Table I.
//
// A synthetic computer store sells laptops and desktops. Laptop pages are
// similar to each other and unlike desktop pages, so the grouping mechanism
// should discover exactly two classes — using the URL hint-part to find
// them in one probe — and the server should store two base-files instead of
// one per product page. The example also contrasts the class-based engine
// with the classless baseline to show the storage gap.
//
//	go run ./examples/ecommerce
package main

import (
	"fmt"
	"log"

	"cbde"
	"cbde/internal/origin"
)

const items = 40

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// www.foo.com organized as /laptops?id=100 (Table I, first row).
	store := origin.NewSite(origin.Config{
		Host:  "www.foo.com",
		Style: origin.StylePathHint,
		Depts: []origin.Dept{
			{Name: "laptops", Items: items},
			{Name: "desktops", Items: items},
		},
		TemplateBytes: 24000,
		ItemBytes:     3000,
		ChurnBytes:    1000,
		Seed:          2002,
	})

	for _, mode := range []cbde.Mode{cbde.ModeClassBased, cbde.ModeClassless} {
		if err := browse(store, mode); err != nil {
			return err
		}
	}
	return nil
}

// browse sends three rounds of shoppers over every product page and reports
// what the engine did.
func browse(store *origin.Site, mode cbde.Mode) error {
	eng, err := cbde.NewEngine(cbde.Config{Mode: mode})
	if err != nil {
		return err
	}

	held := map[string]map[string]int{} // user -> class -> version
	for round := 0; round < 3; round++ {
		store.Advance(1) // prices and stock levels churn between rounds
		for _, dept := range []string{"laptops", "desktops"} {
			for item := 0; item < items; item++ {
				user := fmt.Sprintf("shopper-%d", (item+round)%10)
				doc, err := store.Render(dept, item, user, store.Tick())
				if err != nil {
					return err
				}
				req := cbde.Request{URL: store.URL(dept, item), UserID: user, Doc: doc}
				for cls, v := range held[user] {
					req.Held = append(req.Held, cbde.HeldBase{ClassID: cls, Version: v})
				}
				resp, err := eng.Process(req)
				if err != nil {
					return err
				}
				if resp.LatestVersion > 0 {
					if held[user] == nil {
						held[user] = map[string]int{}
					}
					// The shopper's browser fetches the (cachable) base.
					if held[user][resp.ClassID] < resp.LatestVersion {
						held[user][resp.ClassID] = resp.LatestVersion
					}
				}
			}
		}
	}

	st := eng.Stats()
	fmt.Printf("== %v ==\n", mode)
	fmt.Printf("  product pages: %d   base-files stored: %d   server storage: %d KB\n",
		2*items, st.Classes, st.StorageBytes/1024)
	fmt.Printf("  traffic: %d KB direct -> %d KB sent (%.0f%% saved; %d deltas, %d fulls)\n",
		st.BytesDirect/1024, (st.BytesDelta+st.BytesFull)/1024,
		st.Savings()*100, st.DeltaResponses, st.FullResponses)
	if gs, ok := eng.GroupingStats(); ok {
		fmt.Printf("  grouping: %d classes for %d URLs, %.2f probes per URL (hint-part at work)\n",
			gs.Classes, gs.URLs, gs.ProbesPerURL)
	} else {
		fmt.Println("  (shoppers browse different products each round, so per-URL base-files")
		fmt.Println("   never get reused — only spatial correlation across products helps here)")
	}
	fmt.Println()
	return nil
}
