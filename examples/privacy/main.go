// Privacy example: base-file anonymization (Section V).
//
// A class base-file starts as one user's personalized account page —
// including their credit-card number. Before the base-file may be shared
// with other clients, the anonymization process compares it against N
// distinct users' documents and keeps only byte-chunks common to at least
// M of them. The example shows the private data vanishing, the effect of
// raising M (corporate-card protection), and the closed-form failure
// bounds evaluated at the paper's operating points.
//
//	go run ./examples/privacy
package main

import (
	"bytes"
	"fmt"
	"log"
	"strings"

	"cbde/internal/anonymize"
	"cbde/internal/vdelta"
)

// accountPage renders a portal page: shared layout plus private data.
func accountPage(user, card string) []byte {
	var b strings.Builder
	b.WriteString("<html><body><header>My Portal — your day at a glance</header>\n")
	for i := 0; i < 40; i++ {
		fmt.Fprintf(&b, "<section id=%d>shared headlines, weather and market summaries</section>\n", i)
	}
	fmt.Fprintf(&b, "<account><p>signed in as %s</p><p>card on file %s</p></account>\n", user, card)
	b.WriteString("</body></html>\n")
	return []byte(b.String())
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ownerCard := "4111-1111-2222-3333"
	base := accountPage("mallory-owner", ownerCard)
	fmt.Printf("base-file before anonymization: %d bytes, contains card: %v\n",
		len(base), bytes.Contains(base, []byte(ownerCard)))

	// Five other users' views of the same page.
	proc := anonymize.NewProcess(base, "mallory-owner", anonymize.Config{M: 2, N: 5})
	users := []struct{ name, card string }{
		{"alice", "4000-0000-0000-0001"},
		{"bob", "4000-0000-0000-0002"},
		{"carol", "4000-0000-0000-0003"},
		{"dave", "4000-0000-0000-0004"},
		{"erin", "4000-0000-0000-0005"},
	}
	for _, u := range users {
		proc.Compare(accountPage(u.name, u.card), u.name)
	}
	anon, err := proc.Result()
	if err != nil {
		return err
	}
	fmt.Printf("base-file after  anonymization: %d bytes, contains card: %v, contains owner name: %v\n",
		len(anon), bytes.Contains(anon, []byte(ownerCard)), bytes.Contains(anon, []byte("mallory")))

	// The anonymized base still compresses other users' pages well.
	victim := accountPage("frank", "4999-8888-7777-6666")
	dPlain, err := vdelta.Encode(base, victim)
	if err != nil {
		return err
	}
	dAnon, err := vdelta.Encode(anon, victim)
	if err != nil {
		return err
	}
	fmt.Printf("delta for a new user's page: %d bytes (plain base) vs %d bytes (anonymized base)\n",
		len(dPlain), len(dAnon))

	// Corporate cards: data shared by exactly two users survives M=2 but
	// not M=3.
	corpCard := "4777-CORP-CARD-0001"
	docs := [][]byte{
		accountPage("emp-1", corpCard),
		accountPage("emp-2", corpCard),
		accountPage("alice", "4000-0000-0000-0001"),
		accountPage("bob", "4000-0000-0000-0002"),
		accountPage("carol", "4000-0000-0000-0003"),
		accountPage("dave", "4000-0000-0000-0004"),
	}
	corpBase := accountPage("emp-0", corpCard)
	for _, m := range []int{2, 3} {
		a, err := anonymize.Anonymize(corpBase, docs, anonymize.Config{M: m, N: 6})
		if err != nil {
			return err
		}
		fmt.Printf("corporate card survives M=%d: %v\n", m, bytes.Contains(a, []byte(corpCard)))
	}

	// The paper's closed-form failure probabilities.
	fmt.Println("\nprobability that private data survives anonymization:")
	fmt.Printf("  p=0.01 N=10 M=5: bound %.2g (paper 4.7e-7), exact %.2g (paper 2.4e-8)\n",
		anonymize.PrivacyBoundIID(10, 5, 0.01), anonymize.PrivacyExact(10, 5, 0.01))
	fmt.Printf("  decaying-p_j model: bound %.2g\n",
		anonymize.PrivacyBoundDecaying(10, 5, 0.01))
	return nil
}
