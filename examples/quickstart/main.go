// Quickstart: the delta codec and the class-based engine in a few lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"cbde"
	"cbde/internal/vdelta"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. The Vdelta codec: encode today's snapshot against yesterday's.
	yesterday := []byte(strings.Repeat("<item>widget, in stock, $19.99</item>\n", 100) +
		"<footer>updated Thursday</footer>")
	today := []byte(strings.Repeat("<item>widget, in stock, $19.99</item>\n", 100) +
		"<banner>SALE: widgets $17.99 today only!</banner>\n" +
		"<footer>updated Friday</footer>")

	delta, err := vdelta.Encode(yesterday, today)
	if err != nil {
		return err
	}
	restored, err := vdelta.Decode(yesterday, delta)
	if err != nil {
		return err
	}
	fmt.Printf("codec:  %d-byte document -> %d-byte delta (restored ok: %v)\n",
		len(today), len(delta), string(restored) == string(today))

	// 2. The engine: group documents into classes, share one base-file.
	eng, err := cbde.NewEngine(cbde.Config{})
	if err != nil {
		return err
	}

	// A storefront where laptop pages share a template. Users browse;
	// the engine groups pages, selects a base-file, anonymizes it, then
	// serves deltas to clients that hold it.
	render := func(item int, user string) []byte {
		return []byte(strings.Repeat("shared laptop-department template and navigation\n", 80) +
			fmt.Sprintf("<item id=%d>laptop model %d</item>\n<account>user %s</account>\n",
				item, 1000+item, user))
	}

	// Warm up with several distinct users (anonymization needs them).
	var classID string
	var version int
	for i := 0; i < 8; i++ {
		resp, err := eng.Process(cbde.Request{
			URL:    fmt.Sprintf("www.shop.example/laptops/%d", i%3),
			UserID: fmt.Sprintf("visitor-%d", i),
			Doc:    render(i%3, fmt.Sprintf("visitor-%d", i)),
		})
		if err != nil {
			return err
		}
		classID, version = resp.ClassID, resp.LatestVersion
	}
	fmt.Printf("engine: grouped into class %q, base-file v%d distributed\n", classID, version)

	// A returning client holds the class base-file and gets a delta.
	doc := render(2, "alice")
	resp, err := eng.Process(cbde.Request{
		URL:    "www.shop.example/laptops/2",
		UserID: "alice",
		Doc:    doc,
		Held:   []cbde.HeldBase{{ClassID: classID, Version: version}},
	})
	if err != nil {
		return err
	}
	fmt.Printf("engine: %v response, %d bytes on the wire for a %d-byte document\n",
		resp.Kind, resp.WireSize(len(doc)), len(doc))

	// The client combines base + delta to reconstruct the page.
	base, _ := eng.BaseFile(classID, resp.BaseVersion)
	page, err := eng.Decode(base, resp.Payload, resp.Gzipped)
	if err != nil {
		return err
	}
	fmt.Printf("client: reconstructed %d bytes, byte-identical: %v\n",
		len(page), string(page) == string(doc))

	st := eng.Stats()
	fmt.Printf("stats:  %d requests, %d deltas, %.0f%% bandwidth saved\n",
		st.Requests, st.DeltaResponses, st.Savings()*100)
	return nil
}
