// Package proxycache implements a small caching HTTP proxy with LRU
// eviction — the traditional proxy-cache of Figure 2 that sits between
// clients and the delta-server.
//
// Dynamic documents are uncachable and pass straight through; class
// base-files are served by the delta-server with Cache-Control public
// max-age and are therefore absorbed by the proxy, so many clients
// downloading the same base-file cost the server one transfer. This is the
// effect (Section VI-B, end) by which class-based delta-encoding with
// anonymization can beat classless delta-encoding on bandwidth: anonymized
// base-files are shared and cachable.
package proxycache

import (
	"container/list"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Option configures a Cache.
type Option func(*Cache)

// WithMaxBytes bounds the total size of cached response bodies.
// Default 64 MiB.
func WithMaxBytes(n int64) Option {
	return func(c *Cache) { c.maxBytes = n }
}

// WithHTTPClient replaces the HTTP client used to reach the next hop.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Cache) { c.client = hc }
}

// WithNow replaces the clock, for expiry tests.
func WithNow(now func() time.Time) Option {
	return func(c *Cache) { c.now = now }
}

// entry is one cached response.
type entry struct {
	key     string
	body    []byte
	header  http.Header
	expires time.Time
	elem    *list.Element
}

// Stats counts cache effectiveness.
type Stats struct {
	Hits        int64
	Misses      int64
	Uncachable  int64 // responses passed through without caching
	Evictions   int64
	StoredBytes int64
	Entries     int
}

// Cache is a caching reverse proxy in front of a next-hop URL. It is safe
// for concurrent use.
type Cache struct {
	next     *url.URL
	client   *http.Client
	maxBytes int64
	now      func() time.Time

	mu      sync.Mutex
	entries map[string]*entry
	lru     *list.List // front = most recently used
	size    int64
	stats   Stats
}

var _ http.Handler = (*Cache)(nil)

// New returns a Cache forwarding misses to nextURL.
func New(nextURL string, opts ...Option) (*Cache, error) {
	u, err := url.Parse(nextURL)
	if err != nil {
		return nil, fmt.Errorf("proxycache: parse next-hop URL: %w", err)
	}
	if u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("proxycache: next-hop URL %q needs scheme and host", nextURL)
	}
	c := &Cache{
		next:     u,
		client:   &http.Client{Timeout: 30 * time.Second},
		maxBytes: 64 << 20,
		now:      time.Now,
		entries:  make(map[string]*entry),
		lru:      list.New(),
	}
	for _, opt := range opts {
		opt(c)
	}
	return c, nil
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.StoredBytes = c.size
	s.Entries = len(c.entries)
	return s
}

// ServeHTTP implements http.Handler.
func (c *Cache) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		c.forward(w, r, false)
		return
	}
	key := r.URL.RequestURI()

	c.mu.Lock()
	e, ok := c.entries[key]
	if ok && c.now().Before(e.expires) {
		c.lru.MoveToFront(e.elem)
		c.stats.Hits++
		body := e.body
		hdr := e.header
		c.mu.Unlock()
		copyHeader(w.Header(), hdr)
		w.Header().Set("X-Cache", "HIT")
		_, _ = w.Write(body)
		return
	}
	if ok {
		c.removeLocked(e) // expired
	}
	c.stats.Misses++
	c.mu.Unlock()

	c.forward(w, r, true)
}

// forward proxies the request to the next hop, optionally caching the
// response.
func (c *Cache) forward(w http.ResponseWriter, r *http.Request, mayCache bool) {
	u := *c.next
	u.Path = r.URL.Path
	u.RawQuery = r.URL.RawQuery

	req, err := http.NewRequestWithContext(r.Context(), r.Method, u.String(), r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	copyHeader(req.Header, r.Header)

	resp, err := c.client.Do(req)
	if err != nil {
		http.Error(w, fmt.Sprintf("next hop failed: %v", err), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		http.Error(w, fmt.Sprintf("read next hop response: %v", err), http.StatusBadGateway)
		return
	}

	ttl, cachable := cacheTTL(resp)
	if mayCache && cachable && resp.StatusCode == http.StatusOK {
		c.store(r.URL.RequestURI(), body, resp.Header, ttl)
	} else {
		c.mu.Lock()
		c.stats.Uncachable++
		c.mu.Unlock()
	}

	copyHeader(w.Header(), resp.Header)
	w.Header().Set("X-Cache", "MISS")
	w.WriteHeader(resp.StatusCode)
	_, _ = w.Write(body)
}

// store inserts a response body, evicting LRU entries to fit.
func (c *Cache) store(key string, body []byte, header http.Header, ttl time.Duration) {
	if int64(len(body)) > c.maxBytes {
		return // larger than the whole cache
	}
	hdr := make(http.Header, len(header))
	copyHeader(hdr, header)

	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.entries[key]; ok {
		c.removeLocked(old)
	}
	for c.size+int64(len(body)) > c.maxBytes && c.lru.Len() > 0 {
		oldest := c.lru.Back()
		c.removeLocked(oldest.Value.(*entry))
		c.stats.Evictions++
	}
	e := &entry{key: key, body: body, header: hdr, expires: c.now().Add(ttl)}
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	c.size += int64(len(body))
}

// removeLocked unlinks an entry. Callers hold c.mu.
func (c *Cache) removeLocked(e *entry) {
	delete(c.entries, e.key)
	c.lru.Remove(e.elem)
	c.size -= int64(len(e.body))
}

// cacheTTL decides whether a response is cachable and for how long,
// honoring Cache-Control public/max-age/no-cache/no-store/private.
func cacheTTL(resp *http.Response) (time.Duration, bool) {
	cc := strings.ToLower(resp.Header.Get("Cache-Control"))
	if cc == "" {
		return 0, false
	}
	if strings.Contains(cc, "no-store") || strings.Contains(cc, "no-cache") || strings.Contains(cc, "private") {
		return 0, false
	}
	for _, directive := range strings.Split(cc, ",") {
		directive = strings.TrimSpace(directive)
		if v, ok := strings.CutPrefix(directive, "max-age="); ok {
			secs, err := strconv.Atoi(v)
			if err != nil || secs <= 0 {
				return 0, false
			}
			return time.Duration(secs) * time.Second, true
		}
	}
	return 0, false
}

func copyHeader(dst, src http.Header) {
	for k, vs := range src {
		for _, v := range vs {
			dst.Add(k, v)
		}
	}
}
