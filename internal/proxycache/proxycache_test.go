package proxycache

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// backend counts requests and serves configurable responses.
type backend struct {
	hits   atomic.Int64
	cc     string
	body   func(r *http.Request) string
	status int
}

func (b *backend) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b.hits.Add(1)
		if b.cc != "" {
			w.Header().Set("Cache-Control", b.cc)
		}
		status := b.status
		if status == 0 {
			status = http.StatusOK
		}
		w.WriteHeader(status)
		body := r.URL.Path
		if b.body != nil {
			body = b.body(r)
		}
		_, _ = io.WriteString(w, body)
	})
}

func newProxy(t *testing.T, b *backend, opts ...Option) (*Cache, *httptest.Server) {
	t.Helper()
	origin := httptest.NewServer(b.handler())
	t.Cleanup(origin.Close)
	c, err := New(origin.URL, opts...)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(c)
	t.Cleanup(front.Close)
	return c, front
}

func get(t *testing.T, url string) (string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body), resp.Header
}

func TestCacheHit(t *testing.T) {
	b := &backend{cc: "public, max-age=60"}
	c, front := newProxy(t, b)

	body1, h1 := get(t, front.URL+"/base/1")
	body2, h2 := get(t, front.URL+"/base/1")
	if body1 != "/base/1" || body2 != "/base/1" {
		t.Fatalf("bodies = %q, %q", body1, body2)
	}
	if h1.Get("X-Cache") != "MISS" || h2.Get("X-Cache") != "HIT" {
		t.Errorf("X-Cache = %q then %q, want MISS then HIT", h1.Get("X-Cache"), h2.Get("X-Cache"))
	}
	if got := b.hits.Load(); got != 1 {
		t.Errorf("backend hits = %d, want 1 (second request served from cache)", got)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestUncachableResponsesPassThrough(t *testing.T) {
	tests := []string{"", "no-cache", "no-store", "private, max-age=60", "public, max-age=0"}
	for _, cc := range tests {
		t.Run("cc="+cc, func(t *testing.T) {
			b := &backend{cc: cc}
			c, front := newProxy(t, b)
			get(t, front.URL+"/doc")
			get(t, front.URL+"/doc")
			if got := b.hits.Load(); got != 2 {
				t.Errorf("backend hits = %d, want 2 (nothing cached)", got)
			}
			if st := c.Stats(); st.Hits != 0 {
				t.Errorf("unexpected cache hit: %+v", st)
			}
		})
	}
}

func TestExpiry(t *testing.T) {
	now := time.Unix(0, 0)
	var mu sync.Mutex
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	b := &backend{cc: "public, max-age=10"}
	_, front := newProxy(t, b, WithNow(clock))

	get(t, front.URL+"/x")
	get(t, front.URL+"/x") // within TTL: hit
	if got := b.hits.Load(); got != 1 {
		t.Fatalf("backend hits = %d, want 1", got)
	}
	mu.Lock()
	now = now.Add(11 * time.Second)
	mu.Unlock()
	get(t, front.URL+"/x") // expired: refetch
	if got := b.hits.Load(); got != 2 {
		t.Errorf("backend hits = %d after expiry, want 2", got)
	}
}

func TestLRUEviction(t *testing.T) {
	b := &backend{cc: "public, max-age=60", body: func(r *http.Request) string {
		return strings.Repeat("x", 1000) + r.URL.Path
	}}
	c, front := newProxy(t, b, WithMaxBytes(2500)) // fits 2 bodies

	get(t, front.URL+"/a")
	get(t, front.URL+"/b")
	get(t, front.URL+"/a") // touch /a so /b is LRU
	get(t, front.URL+"/c") // evicts /b
	if st := c.Stats(); st.Evictions == 0 {
		t.Fatalf("no evictions: %+v", st)
	}
	before := b.hits.Load()
	get(t, front.URL+"/a") // still cached
	if b.hits.Load() != before {
		t.Error("/a was evicted; LRU order wrong")
	}
	get(t, front.URL+"/b") // was evicted: refetch
	if b.hits.Load() != before+1 {
		t.Error("/b not refetched after eviction")
	}
}

func TestOversizeBodyNotCached(t *testing.T) {
	b := &backend{cc: "public, max-age=60", body: func(*http.Request) string {
		return strings.Repeat("y", 5000)
	}}
	c, front := newProxy(t, b, WithMaxBytes(1000))
	get(t, front.URL+"/big")
	get(t, front.URL+"/big")
	if got := b.hits.Load(); got != 2 {
		t.Errorf("oversize body appears cached: backend hits = %d", got)
	}
	if st := c.Stats(); st.StoredBytes != 0 {
		t.Errorf("StoredBytes = %d, want 0", st.StoredBytes)
	}
}

func TestNonGETNotCached(t *testing.T) {
	b := &backend{cc: "public, max-age=60"}
	_, front := newProxy(t, b)
	resp, err := http.Post(front.URL+"/p", "text/plain", strings.NewReader("data"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	resp, err = http.Post(front.URL+"/p", "text/plain", strings.NewReader("data"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := b.hits.Load(); got != 2 {
		t.Errorf("POSTs appear cached: backend hits = %d", got)
	}
}

func TestNonOKNotCached(t *testing.T) {
	b := &backend{cc: "public, max-age=60", status: http.StatusNotFound}
	_, front := newProxy(t, b)
	get(t, front.URL+"/missing")
	get(t, front.URL+"/missing")
	if got := b.hits.Load(); got != 2 {
		t.Errorf("404s appear cached: backend hits = %d", got)
	}
}

func TestQueryStringsDistinct(t *testing.T) {
	b := &backend{cc: "public, max-age=60", body: func(r *http.Request) string {
		return r.URL.RawQuery
	}}
	_, front := newProxy(t, b)
	b1, _ := get(t, front.URL+"/d?id=1")
	b2, _ := get(t, front.URL+"/d?id=2")
	if b1 == b2 {
		t.Error("different query strings served the same cached body")
	}
}

func TestNextHopDown(t *testing.T) {
	c, err := New("http://127.0.0.1:1") // nothing listens there
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(c)
	defer front.Close()
	resp, err := http.Get(front.URL + "/x")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Errorf("status = %d, want 502", resp.StatusCode)
	}
}

func TestNewErrors(t *testing.T) {
	for _, u := range []string{"", "not-a-url-at-all:/%", "/relative"} {
		if _, err := New(u); err == nil {
			t.Errorf("New(%q): expected error", u)
		}
	}
}

func TestConcurrentAccess(t *testing.T) {
	b := &backend{cc: "public, max-age=60"}
	c, front := newProxy(t, b)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				resp, err := http.Get(fmt.Sprintf("%s/k%d", front.URL, i%5))
				if err != nil {
					t.Errorf("get: %v", err)
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits+st.Misses != 200 {
		t.Errorf("hits+misses = %d, want 200", st.Hits+st.Misses)
	}
	if st.Entries > 5 {
		t.Errorf("entries = %d, want <= 5", st.Entries)
	}
}

func TestCacheTTLParsing(t *testing.T) {
	tests := []struct {
		cc       string
		wantTTL  time.Duration
		cachable bool
	}{
		{"public, max-age=60", time.Minute, true},
		{"max-age=5", 5 * time.Second, true},
		{"public", 0, false},
		{"no-store", 0, false},
		{"no-cache, max-age=60", 0, false},
		{"private, max-age=60", 0, false},
		{"max-age=abc", 0, false},
		{"max-age=-5", 0, false},
		{"", 0, false},
	}
	for _, tt := range tests {
		resp := &http.Response{Header: http.Header{"Cache-Control": {tt.cc}}}
		ttl, ok := cacheTTL(resp)
		if ok != tt.cachable || ttl != tt.wantTTL {
			t.Errorf("cacheTTL(%q) = %v,%v; want %v,%v", tt.cc, ttl, ok, tt.wantTTL, tt.cachable)
		}
	}
}
