package integration

import (
	"bytes"
	"fmt"
	"math/rand/v2"
	"net/http/httptest"
	"sync"
	"testing"

	"cbde/internal/anonymize"
	"cbde/internal/basefile"
	"cbde/internal/core"
	"cbde/internal/deltaclient"
	"cbde/internal/proxycache"
)

// TestChaos interleaves everything that can happen in production — content
// churn, rebases, cold clients, cache forgets, bounded caches, VCDIFF and
// vdelta clients, concurrent access through a small proxy — and asserts the
// one invariant that may never break: every client always receives the
// byte-exact personalized document.
func TestChaos(t *testing.T) {
	c := newChain(t, core.Config{
		Anon:          anonymize.Config{M: 1, N: 2},
		MaxDeltaRatio: 0.4,
		Selector: basefile.Config{
			SampleProb: 0.5,
			MaxSamples: 4,
			Seed:       99,
		},
		KeepBaseVersions: 2,
	})
	// A second, tightly constrained proxy: cache evictions occur mid-run
	// for the workers routed through it.
	smallProxy, err := proxycache.New(c.serverURL, proxycache.WithMaxBytes(64*1024))
	if err != nil {
		t.Fatal(err)
	}
	smallProxySrv := httptest.NewServer(smallProxy)
	t.Cleanup(smallProxySrv.Close)

	c.warm(t, "laptops", 5)
	c.warm(t, "desktops", 5)

	const workers = 6
	const steps = 60
	var wg sync.WaitGroup
	errs := make(chan error, workers*4)

	var tickMu sync.Mutex // serializes Advance vs Render(tick) pairs
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(w), 1234))
			user := fmt.Sprintf("chaos-%d", w)
			opts := []deltaclient.Option{deltaclient.WithUser(user)}
			if w%3 == 1 {
				opts = append(opts, deltaclient.WithVCDIFF())
			}
			serverURL := c.proxyURL
			if w%3 == 2 {
				// Bounded browser cache, behind the eviction-prone proxy.
				opts = append(opts, deltaclient.WithMaxBaseBytes(20_000))
				serverURL = smallProxySrv.URL
			}
			cl := deltaclient.New(serverURL, opts...)

			for i := 0; i < steps; i++ {
				switch rng.IntN(10) {
				case 0:
					cl.Forget() // browser cache cleared
				case 1:
					tickMu.Lock()
					c.site.Advance(1) // content churns
					tickMu.Unlock()
				}
				dept := []string{"laptops", "desktops"}[rng.IntN(2)]
				item := rng.IntN(8)
				path := fmt.Sprintf("/%s/%d", dept, item)

				tickMu.Lock()
				doc, err := cl.Get(path)
				if err != nil {
					tickMu.Unlock()
					errs <- fmt.Errorf("worker %d step %d: %w", w, i, err)
					return
				}
				want, err := c.site.Render(dept, item, user, c.site.Tick())
				tickMu.Unlock()
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(doc, want) {
					errs <- fmt.Errorf("worker %d step %d: %s reconstruction mismatch (%d vs %d bytes)",
						w, i, path, len(doc), len(want))
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := c.engine.Stats()
	if st.Requests == 0 || st.DeltaResponses == 0 {
		t.Errorf("chaos run produced no delta traffic: %+v", st)
	}
}
