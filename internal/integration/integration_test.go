// Package integration exercises the full Figure 2 deployment over real
// localhost HTTP: clients -> proxy-cache -> delta-server -> web-server.
package integration

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"cbde/internal/anonymize"
	"cbde/internal/basefile"
	"cbde/internal/core"
	"cbde/internal/deltaclient"
	"cbde/internal/deltaserver"
	"cbde/internal/origin"
	"cbde/internal/proxycache"
)

// chain is the full deployment of Figure 2.
type chain struct {
	site   *origin.Site
	engine *core.Engine
	proxy  *proxycache.Cache
	// URLs for each hop.
	originURL, serverURL, proxyURL string
}

func newChain(t *testing.T, cfg core.Config) *chain {
	t.Helper()
	site := origin.NewSite(origin.Config{
		Host:  "www.shop.com",
		Style: origin.StylePathSegments,
		Depts: []origin.Dept{
			{Name: "laptops", Items: 12},
			{Name: "desktops", Items: 12},
		},
		TemplateBytes: 12000,
		ItemBytes:     1200,
		ChurnBytes:    500,
		Personalized:  true,
		Seed:          77,
	})
	originSrv := httptest.NewServer(site.Handler())
	t.Cleanup(originSrv.Close)

	if cfg.Anon.N == 0 {
		cfg.Anon = anonymize.Config{M: 1, N: 3}
	}
	if cfg.Now == nil {
		var mu sync.Mutex
		now := time.Unix(1_000_000, 0)
		cfg.Now = func() time.Time {
			mu.Lock()
			defer mu.Unlock()
			now = now.Add(time.Second)
			return now
		}
	}
	eng, err := core.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := deltaserver.New(originSrv.URL, eng, deltaserver.WithPublicHost("www.shop.com"))
	if err != nil {
		t.Fatal(err)
	}
	serverSrv := httptest.NewServer(srv)
	t.Cleanup(serverSrv.Close)

	proxy, err := proxycache.New(serverSrv.URL)
	if err != nil {
		t.Fatal(err)
	}
	proxySrv := httptest.NewServer(proxy)
	t.Cleanup(proxySrv.Close)

	return &chain{
		site:      site,
		engine:    eng,
		proxy:     proxy,
		originURL: originSrv.URL,
		serverURL: serverSrv.URL,
		proxyURL:  proxySrv.URL,
	}
}

func (c *chain) client(user string) *deltaclient.Client {
	return deltaclient.New(c.proxyURL, deltaclient.WithUser(user))
}

// warm pushes distinct-user traffic through until anonymization completes.
func (c *chain) warm(t *testing.T, dept string, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		cl := c.client(fmt.Sprintf("warm-%s-%d", dept, i))
		if _, err := cl.Get("/" + dept + "/1"); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFullChainByteAccuracy(t *testing.T) {
	c := newChain(t, core.Config{})
	c.warm(t, "laptops", 6)

	cl := c.client("alice")
	for tick := 0; tick < 4; tick++ {
		for item := 0; item < 3; item++ {
			doc, err := cl.Get(fmt.Sprintf("/laptops/%d", item))
			if err != nil {
				t.Fatal(err)
			}
			want, err := c.site.Render("laptops", item, "alice", c.site.Tick())
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(doc, want) {
				t.Fatalf("tick %d item %d: reconstruction mismatch (%d vs %d bytes)",
					tick, item, len(doc), len(want))
			}
		}
		c.site.Advance(1)
	}
	if st := cl.Stats(); st.DeltaResponses == 0 {
		t.Error("client never received a delta through the full chain")
	}
}

func TestProxyCacheAbsorbsBaseFiles(t *testing.T) {
	c := newChain(t, core.Config{})
	c.warm(t, "laptops", 6)

	// Two fresh clients request the same document; both need the base.
	cl1 := c.client("first")
	cl2 := c.client("second")
	if _, err := cl1.Get("/laptops/2"); err != nil {
		t.Fatal(err)
	}
	before := c.proxy.Stats()
	if _, err := cl2.Get("/laptops/2"); err != nil {
		t.Fatal(err)
	}
	after := c.proxy.Stats()
	if after.Hits <= before.Hits {
		t.Errorf("second client's base fetch not served from the proxy cache: %+v -> %+v", before, after)
	}
	if cl2.Stats().BaseFetches != 1 {
		t.Errorf("second client base fetches = %d, want 1", cl2.Stats().BaseFetches)
	}
}

func TestDynamicDocumentsNotCachedByProxy(t *testing.T) {
	c := newChain(t, core.Config{})
	c.warm(t, "laptops", 4)
	cl := c.client("u")
	if _, err := cl.Get("/laptops/3"); err != nil {
		t.Fatal(err)
	}
	c.site.Advance(1)
	doc, err := cl.Get("/laptops/3")
	if err != nil {
		t.Fatal(err)
	}
	want, _ := c.site.Render("laptops", 3, "u", c.site.Tick())
	if !bytes.Equal(doc, want) {
		t.Error("proxy served a stale dynamic document")
	}
}

func TestBandwidthSavingsThroughChain(t *testing.T) {
	c := newChain(t, core.Config{})
	c.warm(t, "laptops", 6)

	cl := c.client("steady")
	var docVolume int64
	for i := 0; i < 30; i++ {
		if i%6 == 5 {
			c.site.Advance(1)
		}
		doc, err := cl.Get(fmt.Sprintf("/laptops/%d", i%4))
		if err != nil {
			t.Fatal(err)
		}
		docVolume += int64(len(doc))
	}
	st := cl.Stats()
	wire := st.PayloadBytes + st.BaseBytes
	if wire*2 > docVolume {
		t.Errorf("wire bytes %d vs document volume %d: want >2x end-to-end savings", wire, docVolume)
	}
}

func TestRebaseMidRunIsSeamless(t *testing.T) {
	c := newChain(t, core.Config{
		Anon:          anonymize.Config{M: 1, N: 2},
		MaxDeltaRatio: 0.3,
		Selector:      basefile.Config{SampleProb: 0.5, MaxSamples: 4, Seed: 3},
	})
	c.warm(t, "laptops", 5)

	cl := c.client("survivor")
	for i := 0; i < 40; i++ {
		c.site.Advance(1) // heavy churn forces drift and eventual rebases
		doc, err := cl.Get("/laptops/1")
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		want, _ := c.site.Render("laptops", 1, "survivor", c.site.Tick())
		if !bytes.Equal(doc, want) {
			t.Fatalf("request %d: mismatch after churn", i)
		}
	}
}

func TestConcurrentClientsThroughChain(t *testing.T) {
	c := newChain(t, core.Config{})
	c.warm(t, "laptops", 6)
	c.warm(t, "desktops", 6)

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := c.client(fmt.Sprintf("conc-%d", w))
			for i := 0; i < 10; i++ {
				dept := []string{"laptops", "desktops"}[(w+i)%2]
				path := fmt.Sprintf("/%s/%d", dept, i%5)
				doc, err := cl.Get(path)
				if err != nil {
					errs <- fmt.Errorf("worker %d: %w", w, err)
					return
				}
				want, err := c.site.Render(dept, i%5, fmt.Sprintf("conc-%d", w), c.site.Tick())
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(doc, want) {
					errs <- fmt.Errorf("worker %d: mismatch on %s", w, path)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestServerStorageStaysBounded(t *testing.T) {
	// The scalability claim: storage is per-class, not per-document or
	// per-user, so many users and documents do not blow it up.
	c := newChain(t, core.Config{})
	for u := 0; u < 12; u++ {
		cl := c.client(fmt.Sprintf("pop-%d", u))
		for item := 0; item < 8; item++ {
			if _, err := cl.Get(fmt.Sprintf("/laptops/%d", item)); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := c.engine.Stats()
	if st.Classes > 4 {
		t.Errorf("classes = %d for 8 similar documents x 12 users, want few", st.Classes)
	}
	// Storage must be a small multiple of one document size, not
	// requests x size.
	doc, _ := c.site.Render("laptops", 0, "x", 0)
	if st.StorageBytes > int64(20*len(doc)) {
		t.Errorf("storage %d bytes > 20 documents (%d); not class-bounded",
			st.StorageBytes, 20*len(doc))
	}
}

func TestNonCapableBrowserCoexists(t *testing.T) {
	c := newChain(t, core.Config{})
	c.warm(t, "laptops", 6)

	// A plain HTTP GET through the proxy still returns the document.
	resp, err := http.Get(c.proxyURL + "/laptops/1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	want, _ := c.site.Render("laptops", 1, "", c.site.Tick())
	if !bytes.Equal(buf.Bytes(), want) {
		t.Error("plain browser did not receive the exact document")
	}
}
