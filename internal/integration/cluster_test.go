package integration

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"cbde/internal/anonymize"
	"cbde/internal/basefile"
	"cbde/internal/cluster"
	"cbde/internal/core"
	"cbde/internal/deltaserver"
	"cbde/internal/loadgen"
	"cbde/internal/origin"
)

// tier is an n-node delta-server cluster over one origin, with live health
// probing between the nodes.
type tier struct {
	site     *origin.Site
	engines  []*core.Engine
	clusters []*cluster.Cluster
	fronts   []*httptest.Server
	urls     []string
}

func newTier(t *testing.T, n int) *tier {
	t.Helper()
	site := origin.NewSite(origin.Config{
		Host:  "www.shop.com",
		Style: origin.StylePathSegments,
		Depts: []origin.Dept{
			{Name: "laptops", Items: 12},
			{Name: "desktops", Items: 12},
		},
		TemplateBytes: 12000,
		ItemBytes:     1200,
		ChurnBytes:    500,
		Personalized:  true,
		Seed:          99,
	})
	originSrv := httptest.NewServer(site.Handler())
	t.Cleanup(originSrv.Close)

	tr := &tier{site: site}
	servers := make([]*deltaserver.Server, n)
	for i := 0; i < n; i++ {
		i := i
		front := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			servers[i].ServeHTTP(w, r)
		}))
		tr.fronts = append(tr.fronts, front)
		tr.urls = append(tr.urls, front.URL)
	}
	peers := make([]cluster.Node, n)
	for i := range peers {
		peers[i] = cluster.Node{ID: fmt.Sprintf("node-%d", i), URL: tr.urls[i]}
	}
	for i := 0; i < n; i++ {
		cl, err := cluster.New(cluster.Config{
			Self:          peers[i].ID,
			Peers:         peers,
			ProbeInterval: 20 * time.Millisecond,
			FailThreshold: 2,
			RiseThreshold: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		var mu sync.Mutex
		now := time.Unix(1_000_000, 0)
		eng, err := core.NewEngine(core.Config{
			Anon: anonymize.Config{M: 1, N: 3},
			Selector: basefile.Config{
				VersionStride: cl.Size(),
				VersionOffset: cl.SelfIndex(),
			},
			Now: func() time.Time {
				mu.Lock()
				defer mu.Unlock()
				now = now.Add(time.Second)
				return now
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := deltaserver.New(originSrv.URL, eng,
			deltaserver.WithPublicHost("www.shop.com"), deltaserver.WithCluster(cl))
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = srv
		cl.Start()
		t.Cleanup(cl.Stop)
		tr.engines = append(tr.engines, eng)
		tr.clusters = append(tr.clusters, cl)
	}
	// fronts are closed individually (the kill test closes one mid-test);
	// close whatever survives at cleanup.
	t.Cleanup(func() {
		for _, f := range tr.fronts {
			if f != nil {
				f.Close()
			}
		}
	})
	return tr
}

func (tr *tier) forwardedTotal() int64 {
	var total int64
	for _, cl := range tr.clusters {
		total += cl.Ctr.Forwarded.Value()
	}
	return total
}

// kill closes node i's listener and waits until every surviving node's
// prober has marked it dead, so its classes have failed over.
func (tr *tier) kill(t *testing.T, i int) {
	t.Helper()
	tr.fronts[i].Close()
	tr.fronts[i] = nil
	deadID := tr.clusters[i].Self().ID
	deadline := time.Now().Add(5 * time.Second)
	for {
		allDead := true
		for j, cl := range tr.clusters {
			if j != i && cl.Alive(deadID) {
				allDead = false
			}
		}
		if allDead {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("survivors never marked the killed node dead")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

var tierPaths = []string{
	"/laptops/0", "/laptops/1", "/laptops/2", "/laptops/3",
	"/desktops/0", "/desktops/1", "/desktops/2", "/desktops/3",
}

// TestClusterVerifyAcrossNodes: loadgen with Verify sprays delta-capable
// clients across all three nodes; every reconstruction must byte-match a
// plain re-fetch, non-owned requests must actually cross the tier, and
// every node must mint versions only in its own residue class.
func TestClusterVerifyAcrossNodes(t *testing.T) {
	tr := newTier(t, 3)
	res, err := loadgen.Run(loadgen.Config{
		ServerURLs:        tr.urls,
		Paths:             tierPaths,
		Clients:           9,
		RequestsPerClient: 20,
		Verify:            true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mismatches != 0 {
		t.Fatalf("%d document mismatches across the tier", res.Mismatches)
	}
	if res.Errors != 0 {
		t.Errorf("%d request errors across the tier", res.Errors)
	}
	if res.DeltaResponses == 0 {
		t.Error("no delta responses — the tier never warmed")
	}
	if tr.forwardedTotal() == 0 {
		t.Error("no request crossed the tier; forwarding untested")
	}
	for i, eng := range tr.engines {
		stride := tr.clusters[i].Size()
		offset := tr.clusters[i].SelfIndex()
		for _, cs := range eng.AllClassStats() {
			if cs.BaseVersion > 0 && cs.BaseVersion%stride != offset {
				t.Errorf("node %d minted version %d for class %s outside residue %d (mod %d)",
					i, cs.BaseVersion, cs.ID, offset, stride)
			}
		}
	}
}

// TestClusterNodeKillFailover: kill one node mid-test; its classes fail
// over, the new owners re-warm from traffic with version numbers no other
// node could have minted, and verification stays byte-exact throughout.
func TestClusterNodeKillFailover(t *testing.T) {
	tr := newTier(t, 3)

	// Phase 1: warm the whole tier.
	res, err := loadgen.Run(loadgen.Config{
		ServerURLs:        tr.urls,
		Paths:             tierPaths,
		Clients:           9,
		RequestsPerClient: 12,
		Verify:            true,
		UserPrefix:        "pre",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mismatches != 0 {
		t.Fatalf("phase 1: %d mismatches", res.Mismatches)
	}

	// Kill the node that owns /laptops/1's class so an ownership move
	// provably happens.
	key := tr.engines[0].OwnerKey("www.shop.com/laptops/1")
	victim := -1
	for i, cl := range tr.clusters {
		if cl.Owner(key).ID == cl.Self().ID {
			victim = i
		}
	}
	if victim < 0 {
		t.Fatal("no node owns the probe key")
	}
	tr.kill(t, victim)

	// The survivors now agree on a new owner for the moved class.
	var survivors []string
	var surviving []*cluster.Cluster
	for i, cl := range tr.clusters {
		if i != victim {
			survivors = append(survivors, tr.urls[i])
			surviving = append(surviving, cl)
		}
	}
	newOwner := surviving[0].Owner(key).ID
	if newOwner == tr.clusters[victim].Self().ID {
		t.Fatal("dead node still owns the moved class")
	}
	if got := surviving[1].Owner(key).ID; got != newOwner {
		t.Fatalf("survivors disagree on the new owner: %q vs %q", newOwner, got)
	}

	// Phase 2: same workload across the survivors, fresh client identities
	// (their held bases reference versions the dead node minted; the new
	// owner serves them full documents and re-advertises its own versions —
	// degraded, never corrupt).
	tr.site.Advance(1)
	res, err = loadgen.Run(loadgen.Config{
		ServerURLs:        survivors,
		Paths:             tierPaths,
		Clients:           8,
		RequestsPerClient: 16,
		Verify:            true,
		UserPrefix:        "post",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mismatches != 0 {
		t.Fatalf("phase 2 (after node kill): %d mismatches", res.Mismatches)
	}
	if res.Errors != 0 {
		t.Errorf("phase 2: %d request errors", res.Errors)
	}

	// Version-safety across the move: every version any surviving node
	// minted stays in its residue class, so nothing the dead node handed
	// out can collide with re-warmed state.
	for i, eng := range tr.engines {
		if i == victim {
			continue
		}
		stride := tr.clusters[i].Size()
		offset := tr.clusters[i].SelfIndex()
		for _, cs := range eng.AllClassStats() {
			if cs.BaseVersion > 0 && cs.BaseVersion%stride != offset {
				t.Errorf("node %d version %d for class %s outside residue %d (mod %d)",
					i, cs.BaseVersion, cs.ID, offset, stride)
			}
		}
	}
}
