package classify_test

import (
	"fmt"
	"strings"

	"cbde/internal/classify"
	"cbde/internal/urlparts"
)

func ExampleManager() {
	m := classify.NewManager(classify.Config{})

	page := func(dept string, item int) []byte {
		// Pages within a department share their (department-specific)
		// template; across departments the content differs.
		return []byte(strings.Repeat(dept+"-"+dept+"-section ", 60) +
			fmt.Sprintf("item %d", item))
	}
	group := func(url string, doc []byte) classify.Result {
		parts, err := urlparts.Partition(url)
		if err != nil {
			panic(err)
		}
		return m.Group(url, parts, doc)
	}

	// Three laptop pages share a template; one desktop page does not.
	r1 := group("www.foo.com/laptops/1", page("laptops", 1))
	r2 := group("www.foo.com/laptops/2", page("laptops", 2))
	r3 := group("www.foo.com/laptops/3", page("laptops", 3))
	r4 := group("www.foo.com/desktops/1", page("desktops", 1))

	fmt.Println("laptops share a class:", r2.Class == r1.Class && r3.Class == r1.Class)
	fmt.Println("desktops get their own:", r4.Class != r1.Class)
	st := m.Stats()
	fmt.Printf("%d classes for %d URLs\n", st.Classes, st.URLs)
	// Output:
	// laptops share a class: true
	// desktops get their own: true
	// 2 classes for 4 URLs
}
