package classify

import (
	"fmt"
	"math/rand/v2"
	"strings"
	"sync"
	"testing"

	"cbde/internal/urlparts"
)

// deptDoc builds a document for a department: documents within a department
// share a large template; departments differ completely.
func deptDoc(dept string, item int) []byte {
	tpl := strings.Repeat(fmt.Sprintf("<%s-template> shared layout and navigation for %s </%s-template>\n", dept, dept, dept), 40)
	return []byte(tpl + fmt.Sprintf("<item id=%d dept=%s>specific description %d</item>", item, dept, item*7919))
}

func mustParts(t *testing.T, url string) urlparts.Parts {
	t.Helper()
	p, err := urlparts.Partition(url)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestFirstRequestCreatesClass(t *testing.T) {
	m := NewManager(Config{})
	doc := deptDoc("laptops", 1)
	res := m.Group("www.foo.com/laptops/1", mustParts(t, "www.foo.com/laptops/1"), doc)
	if !res.Created {
		t.Fatal("first request should create a class")
	}
	if res.Class.Server != "www.foo.com" || res.Class.Hint != "laptops" {
		t.Errorf("class server/hint = %s/%s", res.Class.Server, res.Class.Hint)
	}
	if got := m.Stats().Classes; got != 1 {
		t.Errorf("classes = %d, want 1", got)
	}
}

func TestSimilarDocumentsJoinSameClass(t *testing.T) {
	m := NewManager(Config{})
	var first *Class
	for i := 1; i <= 20; i++ {
		url := fmt.Sprintf("www.foo.com/laptops/%d", i)
		res := m.Group(url, mustParts(t, url), deptDoc("laptops", i))
		if first == nil {
			first = res.Class
			continue
		}
		if res.Class != first {
			t.Fatalf("item %d landed in class %s, want %s", i, res.Class.ID, first.ID)
		}
		if res.Created {
			t.Fatalf("item %d created a new class", i)
		}
	}
	if got := m.Stats().Classes; got != 1 {
		t.Errorf("classes = %d, want 1 for 20 similar docs", got)
	}
}

func TestDissimilarDepartmentsGetOwnClasses(t *testing.T) {
	m := NewManager(Config{})
	for i := 1; i <= 5; i++ {
		for _, dept := range []string{"laptops", "desktops"} {
			url := fmt.Sprintf("www.foo.com/%s/%d", dept, i)
			m.Group(url, mustParts(t, url), deptDoc(dept, i))
		}
	}
	if got := m.Stats().Classes; got != 2 {
		t.Errorf("classes = %d, want 2 (one per department)", got)
	}
}

func TestDifferentServersNeverShareClasses(t *testing.T) {
	m := NewManager(Config{})
	doc := deptDoc("laptops", 1)
	r1 := m.Group("www.foo.com/laptops/1", mustParts(t, "www.foo.com/laptops/1"), doc)
	r2 := m.Group("www.bar.com/laptops/1", mustParts(t, "www.bar.com/laptops/1"), doc)
	if !r2.Created {
		t.Error("identical doc from a different server must create a new class")
	}
	if r1.Class == r2.Class {
		t.Error("classes shared across servers")
	}
	if r2.Probes != 0 {
		t.Errorf("probes = %d for a new server, want 0", r2.Probes)
	}
}

func TestKnownURLSkipsProbing(t *testing.T) {
	m := NewManager(Config{})
	url := "www.foo.com/laptops/1"
	doc := deptDoc("laptops", 1)
	m.Group(url, mustParts(t, url), doc)
	res := m.Group(url, mustParts(t, url), doc)
	if !res.Known {
		t.Error("second request for the same URL should be Known")
	}
	if res.Probes != 0 {
		t.Errorf("probes = %d for a known URL, want 0", res.Probes)
	}
}

func TestProbesNeverExceedN(t *testing.T) {
	const maxProbes = 3
	m := NewManager(Config{MaxProbes: maxProbes, MatchThreshold: 0.01})
	// Force many dissimilar classes under the same hint so probing is
	// exhausted without a match.
	rng := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 30; i++ {
		doc := make([]byte, 3000)
		for j := range doc {
			doc[j] = byte(rng.IntN(256))
		}
		url := fmt.Sprintf("www.foo.com/misc/%d", i)
		res := m.Group(url, mustParts(t, url), doc)
		if res.Probes > maxProbes {
			t.Fatalf("request %d probed %d classes, want <= %d", i, res.Probes, maxProbes)
		}
		if i > 0 && !res.Created {
			t.Fatalf("random doc %d matched a class with a strict threshold", i)
		}
	}
}

func TestHintRestrictsCandidates(t *testing.T) {
	// Build many classes under hint "noise"; then group a document whose
	// hint matches exactly one class. Only the hinted class may be probed.
	m := NewManager(Config{MaxProbes: 2, MatchThreshold: 0.5})
	rng := rand.New(rand.NewPCG(3, 4))
	for i := 0; i < 20; i++ {
		doc := make([]byte, 2000)
		for j := range doc {
			doc[j] = byte(rng.IntN(256))
		}
		url := fmt.Sprintf("www.foo.com/noise/%d", i)
		m.Group(url, mustParts(t, url), doc)
	}
	m.Group("www.foo.com/laptops/1", mustParts(t, "www.foo.com/laptops/1"), deptDoc("laptops", 1))

	res := m.Group("www.foo.com/laptops/2", mustParts(t, "www.foo.com/laptops/2"), deptDoc("laptops", 2))
	if res.Created {
		t.Error("hinted class not found despite matching content")
	}
	if res.Class.Hint != "laptops" {
		t.Errorf("matched class hint = %q, want laptops", res.Class.Hint)
	}
	if res.Probes != 1 {
		t.Errorf("probes = %d, want 1 (hint restricts candidates)", res.Probes)
	}
}

func TestGroupingTakesACoupleOfTries(t *testing.T) {
	// Paper (VI-B): against a well-structured web-site the mechanism groups
	// requests after a couple of tries. Average probes per URL must be low.
	m := NewManager(Config{})
	depts := []string{"laptops", "desktops", "servers", "tablets"}
	for i := 1; i <= 25; i++ {
		for _, d := range depts {
			url := fmt.Sprintf("www.shop.com/%s/%d", d, i)
			m.Group(url, mustParts(t, url), deptDoc(d, i))
		}
	}
	st := m.Stats()
	if st.Classes != len(depts) {
		t.Errorf("classes = %d, want %d", st.Classes, len(depts))
	}
	if st.ProbesPerURL > 2.0 {
		t.Errorf("avg probes per URL = %.2f, want <= 2 for a well-structured site", st.ProbesPerURL)
	}
}

func TestManualRule(t *testing.T) {
	m := NewManager(Config{})
	if err := m.ManualRule(`^www\.adhoc\.com/x`, "adhoc-class", "www.adhoc.com", "manual"); err != nil {
		t.Fatal(err)
	}
	res := m.Group("www.adhoc.com/x123", mustParts(t, "www.adhoc.com/x123"), []byte("anything"))
	if !res.Manual || res.Class.ID != "adhoc-class" {
		t.Errorf("manual rule not applied: %+v", res)
	}
	// Non-matching URL falls through to automated grouping.
	res = m.Group("www.adhoc.com/y1", mustParts(t, "www.adhoc.com/y1"), []byte("anything else at all here"))
	if res.Manual {
		t.Error("manual rule applied to non-matching URL")
	}
	if got := m.Stats().ManualMatches; got != 1 {
		t.Errorf("ManualMatches = %d, want 1", got)
	}
}

func TestManualRuleBadPattern(t *testing.T) {
	m := NewManager(Config{})
	if err := m.ManualRule(`([`, "c", "s", "h"); err == nil {
		t.Error("expected compile error")
	}
}

func TestBestOfN(t *testing.T) {
	// Two pre-built classes both match within a generous threshold; BestOfN
	// must pick the closer one even though the far class is more popular
	// (and therefore probed first).
	m := NewManager(Config{MaxProbes: 8, MatchThreshold: 0.95, BestOfN: true})
	near := deptDoc("laptops", 1)
	// The far base shares only half the template, so deltas against it are
	// larger but still within the threshold.
	farBase := append([]byte{}, near[:len(near)/2]...)
	farBase = append(farBase, []byte(strings.Repeat("zz-filler ", 150))...)

	if err := m.ManualRule(`^\$far\$`, "class-far", "www.foo.com", "a"); err != nil {
		t.Fatal(err)
	}
	if err := m.ManualRule(`^\$near\$`, "class-near", "www.foo.com", "a"); err != nil {
		t.Fatal(err)
	}
	clFar, _ := m.ClassByID("class-far")
	clFar.SetMatchBase(farBase)
	clNear, _ := m.ClassByID("class-near")
	clNear.SetMatchBase(near)

	res := m.Group("www.foo.com/a/3", mustParts(t, "www.foo.com/a/3"), deptDoc("laptops", 2))
	if res.Created {
		t.Fatal("request matched neither pre-built class")
	}
	if res.Class.ID != "class-near" {
		t.Errorf("BestOfN picked %s, want class-near", res.Class.ID)
	}
	if res.Probes != 2 {
		t.Errorf("probes = %d, want 2 (BestOfN probes all candidates)", res.Probes)
	}
}

func TestSetMatchBase(t *testing.T) {
	m := NewManager(Config{})
	res := m.Group("www.foo.com/l/1", mustParts(t, "www.foo.com/l/1"), deptDoc("laptops", 1))
	nb := []byte("rebased base-file")
	res.Class.SetMatchBase(nb)
	got := res.Class.MatchBase()
	if string(got) != string(nb) {
		t.Error("SetMatchBase did not take effect")
	}
	nb[0] = 'X'
	if res.Class.MatchBase()[0] == 'X' {
		t.Error("SetMatchBase retained the caller's slice")
	}
}

func TestClassByIDAndClassFor(t *testing.T) {
	m := NewManager(Config{})
	res := m.Group("www.foo.com/l/1", mustParts(t, "www.foo.com/l/1"), deptDoc("laptops", 1))
	if cl, ok := m.ClassByID(res.Class.ID); !ok || cl != res.Class {
		t.Error("ClassByID lookup failed")
	}
	if _, ok := m.ClassByID("nope"); ok {
		t.Error("ClassByID returned a class for an unknown ID")
	}
	if cl, ok := m.ClassFor("www.foo.com/l/1"); !ok || cl != res.Class {
		t.Error("ClassFor lookup failed")
	}
	if _, ok := m.ClassFor("www.foo.com/unseen"); ok {
		t.Error("ClassFor returned a class for an unseen URL")
	}
	if got := len(m.Classes()); got != 1 {
		t.Errorf("Classes() returned %d, want 1", got)
	}
}

func TestClassesCompression(t *testing.T) {
	// Paper (VI-B): the number of produced groups is 10-100x smaller than
	// the number of dynamic documents. With per-item URLs and shared
	// templates we reproduce that compression.
	m := NewManager(Config{})
	depts := []string{"laptops", "desktops", "phones"}
	urls := 0
	for i := 1; i <= 100; i++ {
		for _, d := range depts {
			url := fmt.Sprintf("www.shop.com/%s/%d", d, i)
			m.Group(url, mustParts(t, url), deptDoc(d, i))
			urls++
		}
	}
	st := m.Stats()
	ratio := float64(st.URLs) / float64(st.Classes)
	if ratio < 10 {
		t.Errorf("URLs/classes = %.1f, want >= 10 (paper reports 10-100x)", ratio)
	}
}

func TestConcurrentGrouping(t *testing.T) {
	m := NewManager(Config{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				dept := []string{"laptops", "desktops"}[i%2]
				url := fmt.Sprintf("www.foo.com/%s/%d", dept, i)
				p, err := urlparts.Partition(url)
				if err != nil {
					t.Errorf("Partition: %v", err)
					return
				}
				m.Group(url, p, deptDoc(dept, i))
			}
		}(w)
	}
	wg.Wait()
	st := m.Stats()
	if st.URLs != 40 { // workers share the same 40 URLs
		t.Errorf("URLs = %d, want 40", st.URLs)
	}
	// Concurrency may create a few duplicate classes in races, but the
	// count must stay near 2, far below the URL count.
	if st.Classes > 10 {
		t.Errorf("classes = %d after concurrent grouping, want close to 2", st.Classes)
	}
}

func TestEmptyDocument(t *testing.T) {
	m := NewManager(Config{})
	res := m.Group("www.foo.com/e/1", mustParts(t, "www.foo.com/e/1"), nil)
	if res.Class == nil {
		t.Fatal("empty document must still be grouped")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.MaxProbes != 8 || c.PopularFraction != 0.75 || c.MatchThreshold != 0.35 {
		t.Errorf("unexpected defaults: %+v", c)
	}
	if c.Estimate == nil {
		t.Error("default Estimate is nil")
	}
	c = Config{MaxProbes: -1, PopularFraction: 7, MatchThreshold: 9}.withDefaults()
	if c.MaxProbes != 8 || c.PopularFraction != 0.75 || c.MatchThreshold != 0.35 {
		t.Errorf("invalid values not defaulted: %+v", c)
	}
}
