// Package classify implements the mechanism of Section III that groups
// URL-requests (and hence documents) into classes.
//
// A class is "good" for a document when the delta between the document and
// the class's base-file is small. Because an exhaustive search over all
// classes is impracticable, the manager uses the URL partition of package
// urlparts as a search hint and the paper's heuristics:
//
//   - a new class is created when no class shares the request's server-part;
//   - classes sharing the request's hint-part are considered first;
//   - at most N candidate classes are probed; failing that, a new class is
//     created;
//   - the first a*N probes go to the most popular eligible classes, the
//     remaining (1-a)*N to random selections among the rest;
//   - probes use the light delta estimator rather than a full delta.
//
// Administrators may also group URLs manually (for sites organized in an
// ad-hoc manner) via ManualRule.
package classify

import (
	"fmt"
	"math/rand/v2"
	"regexp"
	"sort"
	"sync"

	"cbde/internal/urlparts"
	"cbde/internal/vdelta"
)

// EstimateFunc estimates the delta size, in bytes, between a class's
// base-file and a document.
type EstimateFunc func(base, doc []byte) int

// Config parametrizes a Manager. The zero value is usable; defaults follow
// the paper ("typical N values are less than 10").
type Config struct {
	// MaxProbes is N, the maximum number of candidate classes probed for a
	// request before a new class is created. Default 8.
	MaxProbes int
	// PopularFraction is a: the fraction of the N probes spent on the most
	// popular eligible classes; the rest are random selections among the
	// remaining eligible classes. Default 0.75.
	PopularFraction float64
	// MatchThreshold is the maximum estimated-delta-to-document-size ratio
	// for a probe to count as a matching. Default 0.35.
	MatchThreshold float64
	// AbsoluteThreshold, when positive, additionally accepts any probe
	// whose estimated delta is at most this many bytes. Default 0 (off).
	AbsoluteThreshold int
	// BestOfN, when true, probes all N candidates and picks the best
	// matching instead of stopping at the first (footnote 1 prefers
	// first-match to reduce search time, which is the default).
	BestOfN bool
	// Estimate measures probe quality. Default: the light Vdelta estimator.
	Estimate EstimateFunc
	// Seed seeds the RNG used for random candidate selection.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.MaxProbes <= 0 {
		c.MaxProbes = 8
	}
	if c.PopularFraction <= 0 || c.PopularFraction > 1 {
		c.PopularFraction = 0.75
	}
	if c.MatchThreshold <= 0 || c.MatchThreshold > 1 {
		c.MatchThreshold = 0.35
	}
	if c.Estimate == nil {
		est := vdelta.NewEstimator()
		c.Estimate = func(base, doc []byte) int { return est.Estimate(base, doc) }
	}
	return c
}

// Class is a group of similar documents sharing one base-file.
type Class struct {
	ID     string
	Server string
	Hint   string

	mu        sync.RWMutex
	members   int
	matchBase []byte
}

// Members returns the number of distinct URLs grouped into the class — its
// popularity for probe ordering.
func (c *Class) Members() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.members
}

// MatchBase returns the document probes are estimated against (the class's
// current base-file).
func (c *Class) MatchBase() []byte {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.matchBase
}

// SetMatchBase replaces the document probes are estimated against. The core
// engine calls this when the class's base-file is rebased.
func (c *Class) SetMatchBase(base []byte) {
	b := make([]byte, len(base))
	copy(b, base)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.matchBase = b
}

func (c *Class) addMember() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.members++
}

// Result describes the outcome of grouping one request.
type Result struct {
	Class    *Class
	Created  bool // a new class was created for the request
	Known    bool // the URL had already been grouped; no probing happened
	Manual   bool // a manual rule determined the class
	Probes   int  // candidate classes probed
	Estimate int  // estimated delta against the matched class (0 if Created or Known)
}

// manualRule routes URLs matching a pattern to a fixed class.
type manualRule struct {
	re      *regexp.Regexp
	classID string
}

// serverClasses indexes the classes of one server-part.
type serverClasses struct {
	classes []*Class
	byHint  map[string][]*Class
}

// Manager groups requests into classes. It is safe for concurrent use:
// already-grouped URLs (the steady-state hot path) resolve under a read
// lock, so routing does not serialize concurrent requests.
type Manager struct {
	cfg Config

	mu      sync.RWMutex
	rng     *rand.Rand
	servers map[string]*serverClasses
	byURL   map[string]*Class
	byID    map[string]*Class
	manual  []manualRule
	nextSeq int

	probesTotal   int64
	groupsFormed  int64
	urlsGrouped   int64
	manualMatches int64
}

// NewManager returns a Manager with cfg applied over the defaults.
func NewManager(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	return &Manager{
		cfg:     cfg,
		rng:     rand.New(rand.NewPCG(cfg.Seed, 0xC2B2AE3D27D4EB4F)),
		servers: make(map[string]*serverClasses),
		byURL:   make(map[string]*Class),
		byID:    make(map[string]*Class),
	}
}

// ManualRule routes URLs matching pattern (a regular expression applied to
// the full URL) to the class with the given ID, creating the class under
// server/hint if it does not exist yet. Manual rules take precedence over
// automated grouping.
func (m *Manager) ManualRule(pattern, classID, server, hint string) error {
	re, err := regexp.Compile(pattern)
	if err != nil {
		return fmt.Errorf("classify: compile manual rule: %w", err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.byID[classID]; !ok {
		m.newClassLocked(classID, server, hint)
	}
	m.manual = append(m.manual, manualRule{re: re, classID: classID})
	return nil
}

// newClassLocked creates and indexes a class. Callers hold m.mu.
func (m *Manager) newClassLocked(id, server, hint string) *Class {
	cl := &Class{ID: id, Server: server, Hint: hint}
	m.byID[id] = cl
	sc, ok := m.servers[server]
	if !ok {
		sc = &serverClasses{byHint: make(map[string][]*Class)}
		m.servers[server] = sc
	}
	sc.classes = append(sc.classes, cl)
	sc.byHint[hint] = append(sc.byHint[hint], cl)
	m.groupsFormed++
	return cl
}

// Group assigns the request identified by url (with partition parts and
// current document doc) to a class, creating one if necessary. A URL that
// has been grouped before goes straight to its class.
func (m *Manager) Group(url string, parts urlparts.Parts, doc []byte) Result {
	// Fast path: a URL that has been grouped before goes straight to its
	// class under the read lock only.
	m.mu.RLock()
	cl, known := m.byURL[url]
	m.mu.RUnlock()
	if known {
		return Result{Class: cl, Known: true}
	}

	m.mu.Lock()
	if cl, ok := m.byURL[url]; ok {
		m.mu.Unlock()
		return Result{Class: cl, Known: true}
	}

	// Manual rules take precedence over the automated mechanism.
	for _, rule := range m.manual {
		if rule.re.MatchString(url) {
			cl := m.byID[rule.classID]
			m.byURL[url] = cl
			m.urlsGrouped++
			m.manualMatches++
			m.mu.Unlock()
			cl.addMember()
			return Result{Class: cl, Manual: true}
		}
	}

	candidates := m.candidatesLocked(parts)
	m.mu.Unlock()

	// Probe candidates without holding the manager lock: estimates are the
	// expensive part and MatchBase is safe to read concurrently.
	probes := 0
	var matched *Class
	matchedEst := 0
	for _, cl := range candidates {
		base := cl.MatchBase()
		if len(base) == 0 {
			continue
		}
		probes++
		est := m.cfg.Estimate(base, doc)
		if m.isMatch(est, len(doc)) {
			if !m.cfg.BestOfN {
				matched, matchedEst = cl, est
				break
			}
			if matched == nil || est < matchedEst {
				matched, matchedEst = cl, est
			}
		}
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	m.probesTotal += int64(probes)

	// Re-check: another goroutine may have grouped the same URL meanwhile.
	if cl, ok := m.byURL[url]; ok {
		return Result{Class: cl, Known: true}
	}

	if matched != nil {
		m.byURL[url] = matched
		m.urlsGrouped++
		matched.addMember()
		return Result{Class: matched, Probes: probes, Estimate: matchedEst}
	}

	m.nextSeq++
	id := fmt.Sprintf("%s/%s#%d", parts.Server, parts.Hint, m.nextSeq)
	created := m.newClassLocked(id, parts.Server, parts.Hint)
	created.SetMatchBase(doc)
	created.addMember()
	m.byURL[url] = created
	m.urlsGrouped++
	return Result{Class: created, Created: true, Probes: probes}
}

// isMatch applies the matching threshold(s).
func (m *Manager) isMatch(estimate, docLen int) bool {
	if m.cfg.AbsoluteThreshold > 0 && estimate <= m.cfg.AbsoluteThreshold {
		return true
	}
	if docLen == 0 {
		return estimate == 0
	}
	return float64(estimate) <= m.cfg.MatchThreshold*float64(docLen)
}

// candidatesLocked returns up to N candidate classes for the request, in
// probe order. Callers hold m.mu.
func (m *Manager) candidatesLocked(parts urlparts.Parts) []*Class {
	sc, ok := m.servers[parts.Server]
	if !ok || len(sc.classes) == 0 {
		// No class shares the server-part: documents from different
		// servers are very unlikely to be close (Section III).
		return nil
	}
	eligible := sc.classes
	if hinted := sc.byHint[parts.Hint]; len(hinted) > 0 {
		// Classes sharing the hint-part are the only ones considered.
		eligible = hinted
	}

	n := m.cfg.MaxProbes
	if n > len(eligible) {
		n = len(eligible)
	}
	popularN := int(m.cfg.PopularFraction*float64(m.cfg.MaxProbes) + 0.5)
	if popularN > n {
		popularN = n
	}

	// Most popular classes first.
	sorted := make([]*Class, len(eligible))
	copy(sorted, eligible)
	sort.SliceStable(sorted, func(i, j int) bool {
		return sorted[i].Members() > sorted[j].Members()
	})
	out := make([]*Class, 0, n)
	out = append(out, sorted[:popularN]...)

	// Random selections among the rest fill the remaining probes.
	rest := sorted[popularN:]
	for _, idx := range m.rng.Perm(len(rest)) {
		if len(out) >= n {
			break
		}
		out = append(out, rest[idx])
	}
	return out
}

// ClassFor returns the class previously assigned to url, if any.
func (m *Manager) ClassFor(url string) (*Class, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	cl, ok := m.byURL[url]
	return cl, ok
}

// ClassByID returns the class with the given ID, if it exists.
func (m *Manager) ClassByID(id string) (*Class, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	cl, ok := m.byID[id]
	return cl, ok
}

// Classes returns a snapshot of all classes.
func (m *Manager) Classes() []*Class {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]*Class, 0, len(m.byID))
	for _, cl := range m.byID {
		out = append(out, cl)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Stats summarizes grouping activity.
type Stats struct {
	Classes       int     // classes formed
	URLs          int     // distinct URLs grouped
	ProbesTotal   int64   // total candidate probes across all groupings
	ProbesPerURL  float64 // average probes per newly grouped URL
	ManualMatches int64   // URLs grouped by manual rules
}

// Stats returns a snapshot of the manager's counters.
func (m *Manager) Stats() Stats {
	m.mu.RLock()
	defer m.mu.RUnlock()
	s := Stats{
		Classes:       len(m.byID),
		URLs:          len(m.byURL),
		ProbesTotal:   m.probesTotal,
		ManualMatches: m.manualMatches,
	}
	if m.urlsGrouped > 0 {
		s.ProbesPerURL = float64(m.probesTotal) / float64(m.urlsGrouped)
	}
	return s
}

// ExportedClass is the serializable form of one class.
type ExportedClass struct {
	ID        string `json:"id"`
	Server    string `json:"server"`
	Hint      string `json:"hint"`
	Members   int    `json:"members"`
	MatchBase []byte `json:"matchBase,omitempty"`
}

// Exported is the serializable form of a Manager: every class, the
// URL-to-class assignments, and the class-naming counter. Manual rules are
// configuration, not state, and are re-registered by the operator.
type Exported struct {
	Classes []ExportedClass   `json:"classes"`
	URLs    map[string]string `json:"urls"`
	NextSeq int               `json:"nextSeq"`
}

// Export returns a snapshot of the manager's state for persistence.
func (m *Manager) Export() Exported {
	m.mu.RLock()
	defer m.mu.RUnlock()
	ex := Exported{
		URLs:    make(map[string]string, len(m.byURL)),
		NextSeq: m.nextSeq,
	}
	ids := make([]string, 0, len(m.byID))
	for id := range m.byID {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		cl := m.byID[id]
		cl.mu.RLock()
		ex.Classes = append(ex.Classes, ExportedClass{
			ID:        cl.ID,
			Server:    cl.Server,
			Hint:      cl.Hint,
			Members:   cl.members,
			MatchBase: append([]byte(nil), cl.matchBase...),
		})
		cl.mu.RUnlock()
	}
	for url, cl := range m.byURL {
		ex.URLs[url] = cl.ID
	}
	return ex
}

// Import restores a previously Exported snapshot into an empty manager.
// It fails if the manager has already formed classes, or if the snapshot
// references unknown classes.
func (m *Manager) Import(ex Exported) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.byID) != 0 {
		return fmt.Errorf("classify: import into a non-empty manager (%d classes)", len(m.byID))
	}
	for _, ec := range ex.Classes {
		if ec.ID == "" {
			return fmt.Errorf("classify: import: class with empty ID")
		}
		cl := m.newClassLocked(ec.ID, ec.Server, ec.Hint)
		cl.mu.Lock()
		cl.members = ec.Members
		cl.matchBase = append([]byte(nil), ec.MatchBase...)
		cl.mu.Unlock()
	}
	m.groupsFormed = 0 // imported classes are not "formed" by this run
	for url, id := range ex.URLs {
		cl, ok := m.byID[id]
		if !ok {
			return fmt.Errorf("classify: import: URL %q references unknown class %q", url, id)
		}
		m.byURL[url] = cl
	}
	if ex.NextSeq > m.nextSeq {
		m.nextSeq = ex.NextSeq
	}
	return nil
}
