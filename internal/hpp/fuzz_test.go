package hpp

import (
	"bytes"
	"testing"
)

// FuzzDecodeBinding hardens the binding codec against arbitrary bytes.
func FuzzDecodeBinding(f *testing.F) {
	f.Add(EncodeBinding(Binding{values: [][]byte{[]byte("a"), []byte("bb")}}))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeBinding(data)
		if err != nil {
			return
		}
		// A successful decode must re-encode to the same bytes.
		if !bytes.Equal(EncodeBinding(b), data) {
			t.Fatal("decode/encode not an identity on accepted input")
		}
	})
}

// FuzzBind verifies the bind/render identity on arbitrary documents.
func FuzzBind(f *testing.F) {
	tpl, err := Build([][]byte{
		[]byte("<html><h1>Fixed Heading Text</h1><p>AAA</p><footer>fixed footer text</footer></html>"),
		[]byte("<html><h1>Fixed Heading Text</h1><p>BBBBB</p><footer>fixed footer text</footer></html>"),
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte("<html><h1>Fixed Heading Text</h1><p>CC</p><footer>fixed footer text</footer></html>"))
	f.Add([]byte("unrelated"))
	f.Fuzz(func(t *testing.T, doc []byte) {
		b, err := tpl.Bind(doc)
		if err != nil {
			return // no-match is always acceptable
		}
		got, err := tpl.Render(b)
		if err != nil {
			t.Fatalf("Render after successful Bind: %v", err)
		}
		if !bytes.Equal(got, doc) {
			t.Fatal("bind/render identity violated")
		}
	})
}
