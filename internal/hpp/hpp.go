// Package hpp implements the HTML macro-preprocessing baseline of Douglis,
// Haro and Rabinovich (USITS '97), which the paper's related work compares
// against: "separate the static and dynamic portions of a document. Static
// parts are cached as usual, while dynamic parts are obtained on each
// access from the server... the size of network transfers are typically 2
// to 8 times smaller than the original sizes. This idea is simpler than
// delta-encoding, but it is less efficient."
//
// A Template is derived from sample snapshots of a document: byte regions
// stable across every sample form the cacheable static skeleton; the gaps
// are slots. Serving a request then ships only the slot values (a Binding);
// the client holds the template and re-renders. When a document stops
// matching its template (structure changed), the server falls back to a
// full transfer and rebuilds.
package hpp

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
)

// Errors returned by Bind and DecodeBinding.
var (
	// ErrNoMatch reports that a document no longer fits the template's
	// static skeleton; the caller should serve the full document and
	// rebuild the template.
	ErrNoMatch = errors.New("hpp: document does not match template")
	// ErrCorrupt reports a malformed binding.
	ErrCorrupt = errors.New("hpp: corrupt binding")
)

// MinStaticRun is the smallest stable byte run kept as static content.
// Shorter runs are folded into the surrounding slots: a tiny static island
// costs more in slot bookkeeping than resending it, and short runs inside
// genuinely dynamic regions are often chance coincidences that would make
// the template brittle.
const MinStaticRun = 16

// segment is either static bytes or a slot.
type segment struct {
	static []byte // nil for a slot
	isSlot bool
}

// Template is the cacheable static skeleton of a dynamic document.
type Template struct {
	segments []segment
	slots    int
	size     int // total static bytes
}

// Build derives a template from two or more snapshots of the same dynamic
// document. Regions stable across every snapshot become static; everything
// else becomes slots. Build returns an error when fewer than two samples
// are given (one sample cannot distinguish static from dynamic content).
func Build(samples [][]byte) (*Template, error) {
	if len(samples) < 2 {
		return nil, fmt.Errorf("hpp: need at least 2 samples, got %d", len(samples))
	}
	ref := samples[0]

	// stable[i] reports whether ref[i] is part of a run shared, in order,
	// by every other sample. We compute it by intersecting pairwise common
	// subsequences: greedy in-order matching of MinStaticRun-grained
	// pieces, which suits templated documents where static content keeps
	// its order.
	stable := make([]bool, len(ref))
	for i := range stable {
		stable[i] = true
	}
	for _, other := range samples[1:] {
		markUnstable(ref, other, stable)
	}

	// Fold short static islands into slots.
	foldShortRuns(stable)

	// Emit segments.
	t := &Template{}
	i := 0
	for i < len(ref) {
		j := i
		for j < len(ref) && stable[j] == stable[i] {
			j++
		}
		if stable[i] {
			seg := make([]byte, j-i)
			copy(seg, ref[i:j])
			t.segments = append(t.segments, segment{static: seg})
			t.size += j - i
		} else {
			t.segments = append(t.segments, segment{isSlot: true})
			t.slots++
		}
		i = j
	}
	// A document may also grow content at the very end.
	if len(t.segments) == 0 || !t.segments[len(t.segments)-1].isSlot {
		t.segments = append(t.segments, segment{isSlot: true})
		t.slots++
	}
	return t, nil
}

// markUnstable clears stable[i] for every ref byte that does not appear in
// an in-order common run with other.
func markUnstable(ref, other []byte, stable []bool) {
	const grain = MinStaticRun
	oPos := 0
	i := 0
	for i+grain <= len(ref) {
		if !stable[i] {
			i++
			continue
		}
		// Find ref[i:i+grain] in other at or after oPos.
		rel := bytes.Index(other[oPos:], ref[i:i+grain])
		if rel < 0 {
			stable[i] = false
			i++
			continue
		}
		// Extend the match as far as it goes.
		start := oPos + rel
		n := grain
		for i+n < len(ref) && start+n < len(other) && ref[i+n] == other[start+n] {
			n++
		}
		oPos = start + n
		i += n
	}
	for ; i < len(ref); i++ {
		stable[i] = false
	}
}

// foldShortRuns turns static runs shorter than MinStaticRun into slot
// space.
func foldShortRuns(stable []bool) {
	i := 0
	for i < len(stable) {
		if !stable[i] {
			i++
			continue
		}
		j := i
		for j < len(stable) && stable[j] {
			j++
		}
		if j-i < MinStaticRun {
			for k := i; k < j; k++ {
				stable[k] = false
			}
		}
		i = j
	}
}

// Slots returns the number of dynamic slots in the template.
func (t *Template) Slots() int { return t.slots }

// StaticBytes returns the total size of the cacheable static skeleton.
func (t *Template) StaticBytes() int { return t.size }

// Binding is the per-request dynamic content: one value per slot.
type Binding struct {
	values [][]byte
}

// WireSize returns the bytes a binding puts on the network: slot values
// plus per-slot varint length framing.
func (b Binding) WireSize() int {
	total := 0
	for _, v := range b.values {
		total += uvarintLen(uint64(len(v))) + len(v)
	}
	return total
}

// Bind extracts the slot values that reproduce doc from the template. It
// returns ErrNoMatch when doc's static skeleton has changed.
func (t *Template) Bind(doc []byte) (Binding, error) {
	var b Binding
	pos := 0
	for si, seg := range t.segments {
		if seg.isSlot {
			// Value runs until the next static segment (or end of doc).
			next := t.nextStatic(si)
			if next == nil {
				b.values = append(b.values, clone(doc[pos:]))
				pos = len(doc)
				continue
			}
			rel := bytes.Index(doc[pos:], next)
			if rel < 0 {
				return Binding{}, ErrNoMatch
			}
			b.values = append(b.values, clone(doc[pos:pos+rel]))
			pos += rel
			continue
		}
		if !bytes.HasPrefix(doc[pos:], seg.static) {
			return Binding{}, ErrNoMatch
		}
		pos += len(seg.static)
	}
	if pos != len(doc) {
		return Binding{}, ErrNoMatch
	}
	return b, nil
}

// nextStatic returns the static bytes of the first non-slot segment after
// index si, or nil.
func (t *Template) nextStatic(si int) []byte {
	for _, seg := range t.segments[si+1:] {
		if !seg.isSlot {
			return seg.static
		}
	}
	return nil
}

// Render reassembles the document from the template and a binding.
func (t *Template) Render(b Binding) ([]byte, error) {
	if len(b.values) != t.slots {
		return nil, fmt.Errorf("hpp: binding has %d values, template has %d slots", len(b.values), t.slots)
	}
	out := make([]byte, 0, t.size+b.WireSize())
	vi := 0
	for _, seg := range t.segments {
		if seg.isSlot {
			out = append(out, b.values[vi]...)
			vi++
			continue
		}
		out = append(out, seg.static...)
	}
	return out, nil
}

// EncodeBinding serializes a binding for the wire.
func EncodeBinding(b Binding) []byte {
	out := binary.AppendUvarint(nil, uint64(len(b.values)))
	for _, v := range b.values {
		out = binary.AppendUvarint(out, uint64(len(v)))
		out = append(out, v...)
	}
	return out
}

// DecodeBinding parses a serialized binding.
func DecodeBinding(data []byte) (Binding, error) {
	n, used := binary.Uvarint(data)
	if used <= 0 || n > uint64(len(data)) {
		return Binding{}, fmt.Errorf("%w: bad value count", ErrCorrupt)
	}
	data = data[used:]
	var b Binding
	for i := uint64(0); i < n; i++ {
		l, used := binary.Uvarint(data)
		if used <= 0 {
			return Binding{}, fmt.Errorf("%w: bad value length", ErrCorrupt)
		}
		data = data[used:]
		if l > uint64(len(data)) {
			return Binding{}, fmt.Errorf("%w: value overruns data", ErrCorrupt)
		}
		b.values = append(b.values, clone(data[:l]))
		data = data[l:]
	}
	if len(data) != 0 {
		return Binding{}, fmt.Errorf("%w: trailing bytes", ErrCorrupt)
	}
	return b, nil
}

func clone(b []byte) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

func uvarintLen(v uint64) int {
	var buf [binary.MaxVarintLen64]byte
	return binary.PutUvarint(buf[:], v)
}
