package hpp

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"cbde/internal/gzipx"
	"cbde/internal/origin"
	"cbde/internal/vdelta"
)

func snapshotSite() *origin.Site {
	return origin.NewSite(origin.Config{
		Host:          "www.hpp.com",
		Depts:         []origin.Dept{{Name: "news", Items: 4}},
		TemplateBytes: 12000,
		ItemBytes:     1500,
		ChurnBytes:    600,
		Seed:          31,
	})
}

func snapshots(t *testing.T, site *origin.Site, item, n int) [][]byte {
	t.Helper()
	out := make([][]byte, n)
	for i := range out {
		doc, err := site.Render("news", item, "", i)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = doc
	}
	return out
}

func TestBuildRequiresTwoSamples(t *testing.T) {
	if _, err := Build(nil); err == nil {
		t.Error("Build(nil) should fail")
	}
	if _, err := Build([][]byte{[]byte("one")}); err == nil {
		t.Error("Build with one sample should fail")
	}
}

func TestBuildSeparatesStaticFromDynamic(t *testing.T) {
	site := snapshotSite()
	samples := snapshots(t, site, 0, 3)
	tpl, err := Build(samples)
	if err != nil {
		t.Fatal(err)
	}
	if tpl.Slots() == 0 {
		t.Fatal("no slots found in a churning document")
	}
	// The static skeleton should capture most of the document (template +
	// item content are stable; only churn varies).
	if tpl.StaticBytes() < len(samples[0])/2 {
		t.Errorf("static skeleton %d bytes of %d; template content not captured",
			tpl.StaticBytes(), len(samples[0]))
	}
}

func TestBindRenderRoundTrip(t *testing.T) {
	site := snapshotSite()
	tpl, err := Build(snapshots(t, site, 0, 5))
	if err != nil {
		t.Fatal(err)
	}
	// Fresh snapshots the template has never seen. A no-match means HPP
	// falls back to a full transfer (allowed occasionally); a successful
	// bind must round-trip exactly and transfer far less.
	bound := 0
	for tick := 10; tick < 16; tick++ {
		doc, err := site.Render("news", 0, "", tick)
		if err != nil {
			t.Fatal(err)
		}
		binding, err := tpl.Bind(doc)
		if errors.Is(err, ErrNoMatch) {
			continue
		}
		if err != nil {
			t.Fatalf("tick %d: %v", tick, err)
		}
		bound++
		got, err := tpl.Render(binding)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, doc) {
			t.Fatalf("tick %d: render mismatch", tick)
		}
		if binding.WireSize() >= len(doc)/2 {
			t.Errorf("tick %d: binding %d bytes for %d-byte doc, want 2x+ reduction",
				tick, binding.WireSize(), len(doc))
		}
	}
	if bound < 4 {
		t.Errorf("only %d of 6 fresh snapshots bound; template too brittle", bound)
	}
}

func TestTransferReduction2to8x(t *testing.T) {
	// Douglis et al.: "network transfers are typically 2 to 8 times
	// smaller than the original sizes".
	site := snapshotSite()
	tpl, err := Build(snapshots(t, site, 1, 5))
	if err != nil {
		t.Fatal(err)
	}
	var docBytes, wireBytes int
	for tick := 20; tick < 30; tick++ {
		doc, err := site.Render("news", 1, "", tick)
		if err != nil {
			t.Fatal(err)
		}
		docBytes += len(doc)
		b, err := tpl.Bind(doc)
		if errors.Is(err, ErrNoMatch) {
			wireBytes += len(doc) // fallback: full transfer
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		wireBytes += b.WireSize()
	}
	reduction := float64(docBytes) / float64(wireBytes)
	if reduction < 2 {
		t.Errorf("reduction %.1fx, Douglis et al. report at least 2x", reduction)
	}
}

func TestDeltaEncodingBeatsHPP(t *testing.T) {
	// The paper: "Clearly, delta-encoding exploits more redundancy than
	// this scheme." Compare gzipped deltas (as shipped by the
	// delta-server) against HPP bindings over the same snapshots.
	site := snapshotSite()
	samples := snapshots(t, site, 2, 5)
	tpl, err := Build(samples)
	if err != nil {
		t.Fatal(err)
	}
	base := samples[len(samples)-1]
	coder := vdelta.NewCoder()

	var hppBytes, deltaBytes int
	for tick := 40; tick < 50; tick++ {
		doc, err := site.Render("news", 2, "", tick)
		if err != nil {
			t.Fatal(err)
		}
		if b, err := tpl.Bind(doc); err == nil {
			hppBytes += b.WireSize()
		} else {
			hppBytes += len(doc) // fallback: full transfer
		}
		d, err := coder.Encode(base, doc)
		if err != nil {
			t.Fatal(err)
		}
		deltaBytes += len(gzipx.Compress(d))
	}
	if deltaBytes >= hppBytes {
		t.Errorf("delta+gzip %d bytes not below HPP %d bytes", deltaBytes, hppBytes)
	}
}

func TestBindNoMatch(t *testing.T) {
	site := snapshotSite()
	tpl, err := Build(snapshots(t, site, 0, 3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tpl.Bind([]byte("a completely different document")); !errors.Is(err, ErrNoMatch) {
		t.Errorf("got %v, want ErrNoMatch", err)
	}
	// A structurally changed document (static content reordered).
	doc, _ := site.Render("news", 0, "", 0)
	reversed := make([]byte, len(doc))
	for i, c := range doc {
		reversed[len(doc)-1-i] = c
	}
	if _, err := tpl.Bind(reversed); !errors.Is(err, ErrNoMatch) {
		t.Errorf("got %v, want ErrNoMatch for reordered doc", err)
	}
}

func TestRenderWrongSlotCount(t *testing.T) {
	site := snapshotSite()
	tpl, err := Build(snapshots(t, site, 0, 3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tpl.Render(Binding{}); err == nil {
		t.Error("Render with empty binding should fail")
	}
}

func TestBindingCodecRoundTrip(t *testing.T) {
	b := Binding{values: [][]byte{[]byte("alpha"), nil, []byte("gamma with spaces")}}
	enc := EncodeBinding(b)
	got, err := DecodeBinding(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.values) != 3 {
		t.Fatalf("got %d values", len(got.values))
	}
	for i := range b.values {
		if !bytes.Equal(got.values[i], b.values[i]) {
			t.Errorf("value %d = %q, want %q", i, got.values[i], b.values[i])
		}
	}
}

func TestDecodeBindingErrors(t *testing.T) {
	bad := [][]byte{
		nil,
		{0xff}, // bad varint
		EncodeBinding(Binding{values: [][]byte{[]byte("x")}})[:2],           // truncated
		append(EncodeBinding(Binding{values: [][]byte{[]byte("x")}}), 0xAA), // trailing
	}
	for i, data := range bad {
		if _, err := DecodeBinding(data); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestQuickBindingCodec(t *testing.T) {
	f := func(values [][]byte) bool {
		b := Binding{values: values}
		got, err := DecodeBinding(EncodeBinding(b))
		if err != nil {
			return false
		}
		if len(got.values) != len(values) {
			return false
		}
		for i := range values {
			if !bytes.Equal(got.values[i], values[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickBindRenderIdentity(t *testing.T) {
	// Property: whenever Bind succeeds, Render reproduces the document
	// byte-for-byte.
	site := snapshotSite()
	var samples [][]byte
	for i := 0; i < 3; i++ {
		doc, err := site.Render("news", 3, "", i)
		if err != nil {
			t.Fatal(err)
		}
		samples = append(samples, doc)
	}
	tpl, err := Build(samples)
	if err != nil {
		t.Fatal(err)
	}
	f := func(tick uint8) bool {
		doc, err := site.Render("news", 3, "", int(tick))
		if err != nil {
			return false
		}
		b, err := tpl.Bind(doc)
		if err != nil {
			return true // no-match is allowed; wrong render is not
		}
		got, err := tpl.Render(b)
		return err == nil && bytes.Equal(got, doc)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestHandCraftedTemplate(t *testing.T) {
	mk := func(price, stock string) []byte {
		return []byte("<html><body><h1>Widget Store Catalog</h1>" +
			"<p>price: " + price + "</p>" +
			"<p>stock level: " + stock + "</p>" +
			"<footer>thanks for shopping with us</footer></body></html>")
	}
	tpl, err := Build([][]byte{mk("19.99", "12"), mk("21.50", "7"), mk("18.00", "441")})
	if err != nil {
		t.Fatal(err)
	}
	doc := mk("99.99", "0")
	b, err := tpl.Bind(doc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := tpl.Render(b)
	if err != nil || !bytes.Equal(got, doc) {
		t.Fatalf("hand-crafted round trip failed: %v", err)
	}
	var joined []string
	for _, v := range b.values {
		joined = append(joined, string(v))
	}
	all := strings.Join(joined, "|")
	if !strings.Contains(all, "99.99") || !strings.Contains(all, "0") {
		t.Errorf("dynamic values missing from binding: %q", all)
	}
	if b.WireSize() > 40 {
		t.Errorf("binding %d bytes for two tiny dynamic fields", b.WireSize())
	}
}

func TestTemplatePersonalizedDocsAcrossUsers(t *testing.T) {
	// Building across users marks personal blocks dynamic; binding a new
	// user's page must reproduce it exactly.
	site := origin.NewSite(origin.Config{
		Host:          "www.hpp.com",
		Depts:         []origin.Dept{{Name: "portal", Items: 2}},
		TemplateBytes: 8000,
		Personalized:  true,
		Seed:          77,
	})
	var samples [][]byte
	for i, u := range []string{"alice", "bob", "carol", "dina", "evan"} {
		doc, err := site.Render("portal", 0, u, i)
		if err != nil {
			t.Fatal(err)
		}
		samples = append(samples, doc)
	}
	tpl, err := Build(samples)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := site.Render("portal", 0, "dave", 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tpl.Bind(doc)
	if errors.Is(err, ErrNoMatch) {
		t.Skip("template did not transfer to a fresh user on this seed")
	}
	if err != nil {
		t.Fatal(err)
	}
	got, err := tpl.Render(b)
	if err != nil || !bytes.Equal(got, doc) {
		t.Fatal("personalized round trip failed")
	}
	var all []byte
	for _, v := range b.values {
		all = append(all, v...)
	}
	if !bytes.Contains(all, []byte("dave")) {
		t.Error("user-specific content not in the dynamic binding")
	}
}

func ExampleBuild() {
	page := func(headline string) []byte {
		return []byte("<html><h1>Daily News Network</h1><p>" + headline + "</p><footer>copyright 2002, all rights reserved</footer></html>")
	}
	tpl, _ := Build([][]byte{page("markets rally"), page("rain expected")})
	b, _ := tpl.Bind(page("election results are in tonight"))
	fmt.Printf("static %d bytes cached; %d bytes on the wire\n", tpl.StaticBytes(), b.WireSize())
	// Output: static 99 bytes cached; 33 bytes on the wire
}
