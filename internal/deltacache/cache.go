// Package deltacache memoizes encoded deltas with singleflight coalescing.
//
// The paper's economics assume millions of clients share a handful of
// (class, baseVersion) pairs, so the same delta is encoded over and over.
// This package turns that repetition into a lookup: the compressed delta
// for one (fromVersion, document, format) key is computed once and every
// subsequent — or concurrent — request for it shares the same immutable
// payload bytes.
//
// The cache is a per-class structure owned by the engine's class state.
// Its concurrency contract:
//
//   - Acquire either returns a committed result (StatusHit), blocks-free
//     hands back an in-flight Flight to wait on (StatusCoalesced), or
//     makes the caller the leader for the key (StatusLead). Exactly one
//     leader exists per key per flight.
//   - The leader encodes with no cache lock held and calls Commit, which
//     publishes the result and wakes every waiter. Waiters share the
//     leader's outcome verbatim — including "too big, rebase" and "serve
//     full" outcomes — so a thundering herd performs one encode total.
//   - Purge invalidates everything: committed payloads are uncharged and
//     dropped; in-flight entries are unmapped but their waiters still
//     receive the leader's result (the result was correct for the state
//     snapshot the leader encoded against; it is simply not retained).
//
// Cached payloads are immutable and shared by aliasing, extending the
// BaseFileView rules (DESIGN.md §9): callers must never mutate a payload
// obtained from the cache, and the engine never stores pooled scratch in
// it. Retained bytes are reported through an accounting callback so the
// store's budget governor can reclaim them.
//
// Only the standard library is used.
package deltacache

import (
	"sync"
	"sync/atomic"
)

// Outcome classifies what the leader's encode produced for a key.
type Outcome uint8

const (
	// OutcomeDelta is a successful delta encode; Payload holds the
	// (possibly gzipped) delta bytes. The only outcome retained in the
	// cache after commit.
	OutcomeDelta Outcome = iota
	// OutcomeFull means the engine served the document in full (no base
	// available for the requested version). Shared with waiters, not
	// retained: the next request re-probes engine state.
	OutcomeFull
	// OutcomeTooBig means the delta exceeded the configured ratio and the
	// engine chose a rebase. Shared with waiters (who revalidate through
	// the engine's rebase path), not retained.
	OutcomeTooBig
)

// Key identifies one memoizable encode as an explicit (From, To) version
// edge. From is the base version the client holds; To is the retained base
// version the encode targets — 0 for a direct encode against From's own
// bytes, or the graph's current version for a composed chain whose cached
// edges rewrite From up to To. DocHash/DocLen fingerprint the current
// document content (the final hop — documents arrive per-request, so
// content stands in for a version number); Format is the wire format
// (vdelta/VCDIFF/chain). The anonymization epoch is deliberately not part
// of the key: an epoch bump invalidates the whole cache instead (see
// Acquire).
type Key struct {
	From    int
	To      int
	DocHash uint64
	DocLen  int
	Format  uint8
}

// Result is the shared outcome of one encode. Payload is immutable and
// aliased by every sharer; callers must not modify it.
type Result struct {
	Outcome Outcome
	Payload []byte
	Gzipped bool
}

// Status reports how Acquire resolved a key.
type Status uint8

const (
	// StatusHit: a committed result was returned immediately.
	StatusHit Status = iota
	// StatusCoalesced: another goroutine is encoding this key; call
	// Flight.Wait for its result.
	StatusCoalesced
	// StatusLead: the caller owns the encode for this key and must call
	// Commit exactly once with the outcome.
	StatusLead
)

// Flight is one in-flight encode. The leader commits it; waiters wait on
// it. A Flight stays valid even if the cache is purged mid-encode.
type Flight struct {
	key   Key
	done  chan struct{}
	res   Result // written by Commit before done closes
	inMap bool   // guarded by the owning cache's mu
}

// Wait blocks until the leader commits and returns the shared result.
func (f *Flight) Wait() Result {
	<-f.done
	return f.res
}

// Stats is a point-in-time snapshot of one cache.
type Stats struct {
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Coalesced     uint64 `json:"coalesced"`
	Invalidations uint64 `json:"invalidations"`
	Entries       int    `json:"entries"`
	Bytes         int64  `json:"bytes"`
}

// Cache memoizes encode results for one class. Safe for concurrent use.
type Cache struct {
	mu         sync.Mutex
	m          map[Key]*Flight
	epoch      uint64 // anonymization epoch the contents are valid for
	maxEntries int
	bytes      int64       // committed payload bytes currently retained
	onBytes    func(int64) // accounting callback; called under mu

	hits          atomic.Uint64
	misses        atomic.Uint64
	coalesced     atomic.Uint64
	invalidations atomic.Uint64
}

// New returns an empty cache holding at most maxEntries committed deltas
// (0 or negative means a modest default). onBytes, if non-nil, is called
// with the byte delta every time retained payload bytes change; it runs
// under the cache lock and must not call back into the cache.
func New(maxEntries int, onBytes func(int64)) *Cache {
	if maxEntries <= 0 {
		maxEntries = 256
	}
	return &Cache{
		m:          make(map[Key]*Flight),
		maxEntries: maxEntries,
		onBytes:    onBytes,
	}
}

// Acquire resolves key for the given anonymization epoch.
//
//	StatusHit       → res is the committed result; fl is nil.
//	StatusCoalesced → fl is an in-flight encode; call fl.Wait().
//	StatusLead      → the caller must encode and call Commit(fl, ...).
//
// If epoch differs from the epoch the cache's contents were built under,
// everything cached is invalidated first, so a stale anonymization state
// is never served.
func (c *Cache) Acquire(key Key, epoch uint64) (res Result, fl *Flight, st Status) {
	c.mu.Lock()
	if c.epoch != epoch {
		c.purgeLocked()
		c.epoch = epoch
	}
	if f, ok := c.m[key]; ok {
		select {
		case <-f.done:
			c.mu.Unlock()
			c.hits.Add(1)
			return f.res, nil, StatusHit
		default:
			c.mu.Unlock()
			c.coalesced.Add(1)
			return Result{}, f, StatusCoalesced
		}
	}
	f := &Flight{key: key, done: make(chan struct{}), inMap: true}
	if len(c.m) >= c.maxEntries {
		c.evictOneLocked()
	}
	c.m[key] = f
	c.mu.Unlock()
	c.misses.Add(1)
	return Result{}, f, StatusLead
}

// Commit publishes the leader's result: waiters wake with it, and a
// delta outcome still present in the map is retained and charged to the
// accountant. Non-delta outcomes are shared but not retained. Must be
// called exactly once per StatusLead flight, even on failure paths —
// otherwise coalesced waiters block forever.
func (c *Cache) Commit(fl *Flight, res Result) {
	c.mu.Lock()
	fl.res = res
	if fl.inMap {
		if res.Outcome == OutcomeDelta {
			c.addBytesLocked(int64(len(res.Payload)))
		} else {
			delete(c.m, fl.key)
			fl.inMap = false
		}
	}
	c.mu.Unlock()
	close(fl.done)
}

// evictOneLocked drops one committed entry to make room. In-flight
// entries are skipped (they hold no payload and will commit soon); if
// every entry is in flight the cap is allowed to overflow by one.
func (c *Cache) evictOneLocked() {
	for k, f := range c.m {
		select {
		case <-f.done:
		default:
			continue
		}
		if f.res.Outcome == OutcomeDelta {
			c.addBytesLocked(-int64(len(f.res.Payload)))
		}
		delete(c.m, k)
		f.inMap = false
		c.invalidations.Add(1)
		return
	}
}

// addBytesLocked adjusts the retained-byte ledger and notifies the
// accounting callback. Caller holds mu.
func (c *Cache) addBytesLocked(d int64) {
	c.bytes += d
	if c.onBytes != nil {
		c.onBytes(d)
	}
}

// Purge invalidates every cached and in-flight entry and returns the
// payload bytes released. In-flight leaders still commit and wake their
// waiters; their results just aren't retained.
func (c *Cache) Purge() int64 {
	c.mu.Lock()
	freed := c.purgeLocked()
	c.mu.Unlock()
	return freed
}

func (c *Cache) purgeLocked() int64 {
	freed := c.bytes
	if c.bytes != 0 {
		c.addBytesLocked(-c.bytes)
	}
	n := len(c.m)
	for k, f := range c.m {
		f.inMap = false
		delete(c.m, k)
	}
	c.invalidations.Add(uint64(n))
	return freed
}

// Bytes returns the retained payload bytes.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Len returns the number of entries (committed plus in-flight).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Stats snapshots the cache.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	entries, bytes := len(c.m), c.bytes
	c.mu.Unlock()
	return Stats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Coalesced:     c.coalesced.Load(),
		Invalidations: c.invalidations.Load(),
		Entries:       entries,
		Bytes:         bytes,
	}
}
