package deltacache

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestLeadCommitThenHit(t *testing.T) {
	var ledger int64
	c := New(8, func(d int64) { ledger += d })
	key := Key{From: 1, DocHash: 42, DocLen: 100, Format: 1}

	res, fl, st := c.Acquire(key, 0)
	if st != StatusLead {
		t.Fatalf("first acquire = %v, want StatusLead", st)
	}
	if res.Payload != nil {
		t.Fatalf("lead acquire returned a result: %+v", res)
	}
	payload := []byte("the gzipped delta bytes")
	c.Commit(fl, Result{Outcome: OutcomeDelta, Payload: payload, Gzipped: true})
	if ledger != int64(len(payload)) {
		t.Fatalf("ledger = %d after commit, want %d", ledger, len(payload))
	}

	res, fl2, st := c.Acquire(key, 0)
	if st != StatusHit {
		t.Fatalf("second acquire = %v, want StatusHit", st)
	}
	if fl2 != nil {
		t.Fatal("hit returned a non-nil flight")
	}
	if !bytes.Equal(res.Payload, payload) || !res.Gzipped || res.Outcome != OutcomeDelta {
		t.Fatalf("hit result = %+v, want the committed payload", res)
	}
	if &res.Payload[0] != &payload[0] {
		t.Fatal("hit copied the payload; it must alias the committed bytes")
	}

	st2 := c.Stats()
	if st2.Hits != 1 || st2.Misses != 1 || st2.Coalesced != 0 {
		t.Fatalf("stats = %+v, want 1 hit, 1 miss", st2)
	}
	if st2.Entries != 1 || st2.Bytes != int64(len(payload)) {
		t.Fatalf("stats = %+v, want 1 entry of %d bytes", st2, len(payload))
	}
}

func TestNonDeltaOutcomesSharedButNotRetained(t *testing.T) {
	for _, out := range []Outcome{OutcomeFull, OutcomeTooBig} {
		var ledger int64
		c := New(8, func(d int64) { ledger += d })
		key := Key{From: 2, DocHash: 7}
		_, fl, st := c.Acquire(key, 0)
		if st != StatusLead {
			t.Fatalf("outcome %d: first acquire = %v, want lead", out, st)
		}
		c.Commit(fl, Result{Outcome: out})
		if got := fl.Wait(); got.Outcome != out {
			t.Fatalf("waiter got outcome %d, want %d", got.Outcome, out)
		}
		if ledger != 0 {
			t.Fatalf("outcome %d charged %d bytes", out, ledger)
		}
		if _, _, st := c.Acquire(key, 0); st != StatusLead {
			t.Fatalf("outcome %d was retained: re-acquire = %v, want lead", out, st)
		}
	}
}

func TestCoalescingSharesOneResult(t *testing.T) {
	c := New(8, nil)
	key := Key{From: 3, DocHash: 99, DocLen: 5}
	_, leader, st := c.Acquire(key, 0)
	if st != StatusLead {
		t.Fatalf("acquire = %v, want lead", st)
	}

	const waiters = 16
	results := make([]Result, waiters)
	var wg sync.WaitGroup
	started := make(chan struct{}, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, fl, st := c.Acquire(key, 0)
			started <- struct{}{}
			switch st {
			case StatusCoalesced:
				res = fl.Wait()
			case StatusHit:
			default:
				t.Errorf("waiter %d became leader", i)
				return
			}
			results[i] = res
		}(i)
	}
	for i := 0; i < waiters; i++ {
		<-started
	}
	payload := []byte("shared")
	c.Commit(leader, Result{Outcome: OutcomeDelta, Payload: payload})
	wg.Wait()

	for i, res := range results {
		if res.Outcome != OutcomeDelta || !bytes.Equal(res.Payload, payload) {
			t.Fatalf("waiter %d result = %+v, want the leader's", i, res)
		}
		if len(res.Payload) > 0 && &res.Payload[0] != &payload[0] {
			t.Fatalf("waiter %d got a copy, want the shared payload", i)
		}
	}
	if st := c.Stats(); st.Coalesced == 0 {
		t.Fatalf("stats = %+v, want coalesced > 0", st)
	}
}

func TestPurgeUnchargesAndUnmapsInFlight(t *testing.T) {
	var ledger int64
	c := New(8, func(d int64) { ledger += d })

	// One committed entry and one in-flight entry.
	_, fl1, _ := c.Acquire(Key{From: 1}, 0)
	c.Commit(fl1, Result{Outcome: OutcomeDelta, Payload: make([]byte, 64)})
	_, fl2, st := c.Acquire(Key{From: 2}, 0)
	if st != StatusLead {
		t.Fatalf("acquire = %v, want lead", st)
	}

	if freed := c.Purge(); freed != 64 {
		t.Fatalf("Purge freed %d, want 64", freed)
	}
	if ledger != 0 {
		t.Fatalf("ledger = %d after purge, want 0", ledger)
	}
	if c.Len() != 0 {
		t.Fatalf("len = %d after purge, want 0", c.Len())
	}

	// The purged in-flight leader still commits and wakes waiters, but the
	// result is not retained or charged.
	done := make(chan Result, 1)
	go func() { done <- fl2.Wait() }()
	c.Commit(fl2, Result{Outcome: OutcomeDelta, Payload: make([]byte, 32)})
	if res := <-done; res.Outcome != OutcomeDelta || len(res.Payload) != 32 {
		t.Fatalf("post-purge waiter result = %+v", res)
	}
	if ledger != 0 || c.Len() != 0 {
		t.Fatalf("post-purge commit charged (%d bytes, %d entries), want nothing retained", ledger, c.Len())
	}
	if _, _, st := c.Acquire(Key{From: 2}, 0); st != StatusLead {
		t.Fatalf("purged key re-acquire = %v, want lead", st)
	}
}

func TestEpochMismatchPurges(t *testing.T) {
	var ledger int64
	c := New(8, func(d int64) { ledger += d })
	key := Key{From: 1, DocHash: 5}
	_, fl, _ := c.Acquire(key, 0)
	c.Commit(fl, Result{Outcome: OutcomeDelta, Payload: make([]byte, 10)})

	// Same key, newer epoch: the stale entry must not be served.
	_, _, st := c.Acquire(key, 1)
	if st != StatusLead {
		t.Fatalf("acquire at new epoch = %v, want lead (purged)", st)
	}
	if ledger != 0 {
		t.Fatalf("ledger = %d after epoch purge, want 0", ledger)
	}
}

func TestCapEvictsCommittedEntries(t *testing.T) {
	var ledger int64
	c := New(2, func(d int64) { ledger += d })
	for i := 0; i < 5; i++ {
		_, fl, st := c.Acquire(Key{From: i}, 0)
		if st != StatusLead {
			t.Fatalf("key %d: acquire = %v, want lead", i, st)
		}
		c.Commit(fl, Result{Outcome: OutcomeDelta, Payload: make([]byte, 10)})
	}
	if n := c.Len(); n > 2 {
		t.Fatalf("len = %d, want <= cap 2", n)
	}
	if want := int64(c.Len()) * 10; ledger != want {
		t.Fatalf("ledger = %d, want %d (exactly the retained entries)", ledger, want)
	}
}

func TestConcurrentAcquireCommitPurge(t *testing.T) {
	var ledger atomic.Int64
	c := New(32, func(d int64) { ledger.Add(d) })
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := Key{From: i % 40, DocHash: uint64(i % 7)}
				res, fl, st := c.Acquire(key, uint64(i%3))
				switch st {
				case StatusLead:
					out := Result{Outcome: OutcomeDelta, Payload: []byte(fmt.Sprintf("g%d-i%d", g, i))}
					if i%5 == 0 {
						out = Result{Outcome: OutcomeFull}
					}
					c.Commit(fl, out)
				case StatusCoalesced:
					res = fl.Wait()
					_ = res
				case StatusHit:
					if res.Outcome != OutcomeDelta {
						t.Errorf("hit on a non-delta outcome: %+v", res)
						return
					}
				}
				if i%37 == 0 {
					c.Purge()
				}
			}
		}(g)
	}
	wg.Wait()
	c.Purge()
	if got := ledger.Load(); got != 0 {
		t.Fatalf("ledger residue after final purge: %d", got)
	}
	if got := c.Bytes(); got != 0 {
		t.Fatalf("cache bytes after final purge: %d", got)
	}
}
