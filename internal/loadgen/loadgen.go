// Package loadgen drives a delta-server with a population of concurrent
// delta-capable clients and reports throughput, latency percentiles, and
// the transfer ledger — the measurement side of the Section VI-C
// concurrency discussion.
package loadgen

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"cbde/internal/deltaclient"
	"cbde/internal/deltahttp"
	"cbde/internal/metrics"
)

// Config parametrizes a load run.
type Config struct {
	// ServerURL is the delta-server (or proxy-cache) base URL.
	ServerURL string
	// ServerURLs, when set, sprays clients across a delta-server tier:
	// client c talks to ServerURLs[c % len(ServerURLs)] for its entire run
	// (deltas, base-files, and Verify re-fetches all go through the
	// client's own node, exactly as a load balancer would pin it). Takes
	// precedence over ServerURL.
	ServerURLs []string
	// Paths are the document paths clients rotate through.
	Paths []string
	// Clients is the number of concurrent delta-capable clients.
	// Default 8.
	Clients int
	// RequestsPerClient is how many requests each client issues.
	// Default 50.
	RequestsPerClient int
	// UserPrefix names client identities ("<prefix>-<n>"). Default "load".
	UserPrefix string
	// VCDIFF requests RFC 3284 payloads.
	VCDIFF bool
	// Verify re-fetches every document as a plain (non-capable) client
	// with the same user identity and byte-compares it against the
	// delta-path reconstruction; differences count as Result.Mismatches.
	// Requires a deterministic origin (same path + user → same bytes).
	Verify bool
	// RepeatRatio is the fraction of requests (0..1) that re-request the
	// client's previous path instead of rotating to the next one. Repeats
	// land on the server's delta memo cache (same class, same held
	// version, same document), so with Verify this byte-compares
	// cached-path responses against plain re-fetches — the memoization
	// correctness mode. 0 (default) rotates every request, as before.
	RepeatRatio float64
	// LagMean, when positive, makes clients refresh their base-files
	// behind the server's announced latest version: each refresh draws a
	// staleness from a geometric distribution with this mean and fetches
	// max(1, latest-lag) instead of latest. Lagging clients exercise the
	// server's version graph — they are served direct old-version deltas
	// or composed chains, and with Verify every reconstruction is still
	// byte-compared against a plain fetch. 0 (default) refreshes to the
	// latest version, as before.
	LagMean float64
	// DiurnalCycles, when positive, splits Paths into two halves and
	// alternates each client between them that many times over its run — a
	// compressed diurnal traffic pattern. Classes in the idle half go cold
	// and are evicted (spilled, with the disk tier on) while the active
	// half is hot, then fault back in when their phase returns; with
	// Verify every post-fault-in reconstruction is byte-compared against a
	// plain fetch. 0 (default) keeps the flat rotation. Needs at least two
	// paths to have any effect.
	DiurnalCycles int
}

func (c Config) withDefaults() (Config, error) {
	if len(c.ServerURLs) == 0 && c.ServerURL != "" {
		c.ServerURLs = []string{c.ServerURL}
	}
	if len(c.ServerURLs) == 0 {
		return c, fmt.Errorf("loadgen: ServerURL required")
	}
	if len(c.Paths) == 0 {
		return c, fmt.Errorf("loadgen: at least one path required")
	}
	if c.Clients <= 0 {
		c.Clients = 8
	}
	if c.RequestsPerClient <= 0 {
		c.RequestsPerClient = 50
	}
	if c.UserPrefix == "" {
		c.UserPrefix = "load"
	}
	return c, nil
}

// Result summarizes a load run.
type Result struct {
	Requests int
	Errors   int
	Elapsed  time.Duration

	LatencyP50 time.Duration
	LatencyP90 time.Duration
	LatencyP95 time.Duration
	LatencyP99 time.Duration

	DocumentBytes  int64 // reconstructed document volume delivered
	PayloadBytes   int64 // body bytes over the wire (deltas + fulls)
	BaseBytes      int64 // base-file bytes downloaded
	DeltaResponses int
	ChainResponses int // delta responses that arrived as composed chains
	FullResponses  int

	// Mismatches counts documents whose delta-path reconstruction differed
	// from a plain re-fetch (only with Config.Verify). Any nonzero value is
	// a correctness failure.
	Mismatches int
}

// RPS returns requests per second.
func (r Result) RPS() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Requests) / r.Elapsed.Seconds()
}

// Savings returns the end-to-end transfer savings versus shipping every
// document in full (base-file downloads charged).
func (r Result) Savings() float64 {
	if r.DocumentBytes == 0 {
		return 0
	}
	return 1 - float64(r.PayloadBytes+r.BaseBytes)/float64(r.DocumentBytes)
}

// String renders the result for the CLI.
func (r Result) String() string {
	s := fmt.Sprintf(
		"requests %d (%d errors) in %v = %.0f req/s\n"+
			"latency  p50 %v  p90 %v  p95 %v  p99 %v\n"+
			"transfer %d KB payload + %d KB bases for %d KB of documents (%.0f%% saved)\n"+
			"responses %d deltas, %d fulls",
		r.Requests, r.Errors, r.Elapsed.Round(time.Millisecond), r.RPS(),
		r.LatencyP50.Round(time.Microsecond), r.LatencyP90.Round(time.Microsecond), r.LatencyP95.Round(time.Microsecond), r.LatencyP99.Round(time.Microsecond),
		r.PayloadBytes/1024, r.BaseBytes/1024, r.DocumentBytes/1024, r.Savings()*100,
		r.DeltaResponses, r.FullResponses)
	if r.ChainResponses > 0 {
		s += fmt.Sprintf(" (%d chained)", r.ChainResponses)
	}
	if r.Mismatches > 0 {
		s += fmt.Sprintf("\nVERIFY FAILED: %d document mismatches", r.Mismatches)
	}
	return s
}

// Run executes the load run and blocks until every client finishes.
func Run(cfg Config) (Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return Result{}, err
	}

	lat := metrics.NewHistogram()
	var mu sync.Mutex
	var res Result

	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			user := fmt.Sprintf("%s-%d", cfg.UserPrefix, c)
			server := cfg.ServerURLs[c%len(cfg.ServerURLs)]
			opts := []deltaclient.Option{deltaclient.WithUser(user)}
			if cfg.VCDIFF {
				opts = append(opts, deltaclient.WithVCDIFF())
			}
			rng := rand.New(rand.NewSource(int64(c) + 1))
			if cfg.LagMean > 0 {
				// The hook runs on this client's goroutine (deltaclient.Get
				// is synchronous), so sharing rng with the repeat draw below
				// is race-free.
				opts = append(opts, deltaclient.WithRefreshLag(func(latest int) int {
					return latest - geometric(rng, cfg.LagMean)
				}))
			}
			cl := deltaclient.New(server, opts...)

			var docBytes int64
			errs, mismatches := 0, 0
			// Diurnal mode rotates within alternating halves of the path
			// set; half switches happen 2*DiurnalCycles times per run so
			// each half sees DiurnalCycles active phases.
			firstHalf, secondHalf := cfg.Paths, cfg.Paths
			if cfg.DiurnalCycles > 0 && len(cfg.Paths) > 1 {
				firstHalf = cfg.Paths[:len(cfg.Paths)/2]
				secondHalf = cfg.Paths[len(cfg.Paths)/2:]
			}
			pathAt := func(i int) string {
				set := cfg.Paths
				if cfg.DiurnalCycles > 0 && len(cfg.Paths) > 1 {
					if phase := i * 2 * cfg.DiurnalCycles / cfg.RequestsPerClient; phase%2 == 0 {
						set = firstHalf
					} else {
						set = secondHalf
					}
				}
				return set[(c+i)%len(set)]
			}
			path := pathAt(0)
			for i := 0; i < cfg.RequestsPerClient; i++ {
				if i > 0 && !(cfg.RepeatRatio > 0 && rng.Float64() < cfg.RepeatRatio) {
					path = pathAt(i)
				}
				t0 := time.Now()
				doc, _ := cl.Get(path)
				lat.Observe(float64(time.Since(t0).Nanoseconds()))
				if doc == nil {
					// err with a document is a non-fatal base-refresh
					// failure (e.g. the advertised base was evicted before
					// the client fetched it); the response itself is good.
					errs++
					continue
				}
				docBytes += int64(len(doc))
				if cfg.Verify {
					plain, err := fetchPlain(server+path, user)
					if err != nil {
						errs++
					} else if !bytes.Equal(doc, plain) {
						mismatches++
					}
				}
			}
			st := cl.Stats()
			mu.Lock()
			res.Requests += cfg.RequestsPerClient
			res.Errors += errs
			res.DocumentBytes += docBytes
			res.PayloadBytes += st.PayloadBytes
			res.BaseBytes += st.BaseBytes
			res.DeltaResponses += st.DeltaResponses
			res.ChainResponses += st.ChainResponses
			res.FullResponses += st.FullResponses
			res.Mismatches += mismatches
			mu.Unlock()
		}(c)
	}
	wg.Wait()

	res.Elapsed = time.Since(start)
	// One reservoir copy and sort serves all four estimates.
	qs := lat.Quantiles(0.50, 0.90, 0.95, 0.99)
	res.LatencyP50 = time.Duration(qs[0])
	res.LatencyP90 = time.Duration(qs[1])
	res.LatencyP95 = time.Duration(qs[2])
	res.LatencyP99 = time.Duration(qs[3])
	return res, nil
}

// geometric draws a geometrically distributed staleness (0, 1, 2, ...)
// with the given mean: the number of failures before the first success at
// p = 1/(1+mean). Most refreshes land near the latest version with an
// exponentially thinning tail of deep laggards — the shape of a client
// population that refreshes on its own schedule.
func geometric(rng *rand.Rand, mean float64) int {
	p := 1 / (1 + mean)
	n := 0
	for rng.Float64() >= p && n < 1<<10 {
		n++
	}
	return n
}

// fetchPlain fetches a document as a non-capable client would: no delta
// headers, just the user identity. The delta-server proxies it through
// untouched, so the body is ground truth for verification.
func fetchPlain(url, user string) ([]byte, error) {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set(deltahttp.HeaderUser, user)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadgen: plain fetch %s: %s", url, resp.Status)
	}
	return io.ReadAll(resp.Body)
}
