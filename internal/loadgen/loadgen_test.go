package loadgen

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"cbde/internal/anonymize"
	"cbde/internal/core"
	"cbde/internal/deltaclient"
	"cbde/internal/deltaserver"
	"cbde/internal/origin"
)

func newServer(t *testing.T) string {
	t.Helper()
	site := origin.NewSite(origin.Config{
		Host:          "www.load.com",
		Depts:         []origin.Dept{{Name: "catalog", Items: 4}},
		TemplateBytes: 6000,
		ItemBytes:     500,
		ChurnBytes:    200,
		Seed:          44,
	})
	originSrv := httptest.NewServer(site.Handler())
	t.Cleanup(originSrv.Close)

	base := time.Unix(7_000_000, 0)
	var mu sync.Mutex
	n := 0
	eng, err := core.NewEngine(core.Config{
		Anon: anonymize.Config{M: 1, N: 2},
		Now: func() time.Time {
			mu.Lock()
			defer mu.Unlock()
			n++
			return base.Add(time.Duration(n) * time.Second)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := deltaserver.New(originSrv.URL, eng, deltaserver.WithPublicHost("www.load.com"))
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(srv)
	t.Cleanup(front.Close)

	// Finish anonymization so the run measures the steady state.
	for i := 0; i < 4; i++ {
		cl := deltaclient.New(front.URL, deltaclient.WithUser(fmt.Sprintf("warm-%d", i)))
		if _, err := cl.Get("/catalog/0"); err != nil {
			t.Fatal(err)
		}
	}
	return front.URL
}

func TestRunBasics(t *testing.T) {
	url := newServer(t)
	res, err := Run(Config{
		ServerURL:         url,
		Paths:             []string{"/catalog/0", "/catalog/1"},
		Clients:           4,
		RequestsPerClient: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 40 {
		t.Errorf("requests = %d, want 40", res.Requests)
	}
	if res.Errors != 0 {
		t.Errorf("errors = %d", res.Errors)
	}
	if res.DeltaResponses == 0 {
		t.Error("no delta responses under load")
	}
	if res.RPS() <= 0 {
		t.Error("no throughput measured")
	}
	if res.LatencyP50 <= 0 || res.LatencyP99 < res.LatencyP50 {
		t.Errorf("latency percentiles implausible: p50=%v p99=%v", res.LatencyP50, res.LatencyP99)
	}
	if res.Savings() <= 0 {
		t.Errorf("savings = %.2f, want positive", res.Savings())
	}
	out := res.String()
	for _, want := range []string{"req/s", "p95", "deltas"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q:\n%s", want, out)
		}
	}
}

func TestRunVCDIFF(t *testing.T) {
	url := newServer(t)
	res, err := Run(Config{
		ServerURL:         url,
		Paths:             []string{"/catalog/0"},
		Clients:           2,
		RequestsPerClient: 6,
		VCDIFF:            true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Errorf("errors = %d under VCDIFF", res.Errors)
	}
	if res.DeltaResponses == 0 {
		t.Error("no VCDIFF deltas")
	}
}

// TestRunVerifyUnderBudget drives a budgeted delta-server with more classes
// than its budget holds while byte-comparing every reconstruction against a
// plain re-fetch: eviction churn must never corrupt a served document. This
// is the in-process twin of CI's store-smoke job.
func TestRunVerifyUnderBudget(t *testing.T) {
	site := origin.NewSite(origin.Config{
		Host:          "www.load.com",
		Depts:         []origin.Dept{{Name: "catalog", Items: 3}, {Name: "outlet", Items: 3}},
		TemplateBytes: 6000,
		ItemBytes:     500,
		ChurnBytes:    200,
		Seed:          45,
	})
	originSrv := httptest.NewServer(site.Handler())
	t.Cleanup(originSrv.Close)
	eng, err := core.NewEngine(core.Config{
		MemBudget:            8 << 10,
		DisableAnonymization: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := deltaserver.New(originSrv.URL, eng, deltaserver.WithPublicHost("www.load.com"))
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(srv)
	t.Cleanup(front.Close)

	res, err := Run(Config{
		ServerURL:         front.URL,
		Paths:             []string{"/catalog/0", "/catalog/1", "/catalog/2", "/outlet/0", "/outlet/1", "/outlet/2"},
		Clients:           4,
		RequestsPerClient: 30,
		Verify:            true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Errorf("errors = %d", res.Errors)
	}
	if res.Mismatches != 0 {
		t.Errorf("mismatches = %d: eviction churn corrupted served documents", res.Mismatches)
	}
	st := eng.StoreStats()
	if st.Evictions == 0 {
		t.Errorf("no evictions; the budget never bit (store stats: %+v)", st)
	}
	if st.Resident.Total > 8<<10 {
		t.Errorf("resident bytes %d exceed budget after run", st.Resident.Total)
	}
}

func TestRunErrorsCounted(t *testing.T) {
	// Nothing listening: every request errors but the run completes.
	res, err := Run(Config{
		ServerURL:         "http://127.0.0.1:1",
		Paths:             []string{"/x"},
		Clients:           2,
		RequestsPerClient: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 6 {
		t.Errorf("errors = %d, want 6", res.Errors)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{Paths: []string{"/x"}}); err == nil {
		t.Error("missing server accepted")
	}
	if _, err := Run(Config{ServerURL: "http://x"}); err == nil {
		t.Error("missing paths accepted")
	}
	cfg, err := Config{ServerURL: "http://x", Paths: []string{"/x"}}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Clients != 8 || cfg.RequestsPerClient != 50 || cfg.UserPrefix != "load" {
		t.Errorf("defaults wrong: %+v", cfg)
	}
}

// TestRunDiurnalVerifyWithSpill alternates traffic between two halves of
// the path set against a tightly budgeted, spill-enabled delta-server: the
// idle half's classes evict to disk, then fault back in when their phase
// returns — every reconstruction byte-compared against a plain re-fetch.
// This is the in-process twin of CI's spill-smoke job.
func TestRunDiurnalVerifyWithSpill(t *testing.T) {
	site := origin.NewSite(origin.Config{
		Host:          "www.load.com",
		Depts:         []origin.Dept{{Name: "catalog", Items: 3}, {Name: "outlet", Items: 3}},
		TemplateBytes: 6000,
		ItemBytes:     500,
		ChurnBytes:    200,
		Seed:          46,
	})
	originSrv := httptest.NewServer(site.Handler())
	t.Cleanup(originSrv.Close)
	eng, err := core.NewEngine(core.Config{
		MemBudget:            8 << 10,
		SpillDir:             t.TempDir(),
		DisableAnonymization: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	srv, err := deltaserver.New(originSrv.URL, eng, deltaserver.WithPublicHost("www.load.com"))
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(srv)
	t.Cleanup(front.Close)

	res, err := Run(Config{
		ServerURL:         front.URL,
		Paths:             []string{"/catalog/0", "/catalog/1", "/catalog/2", "/outlet/0", "/outlet/1", "/outlet/2"},
		Clients:           4,
		RequestsPerClient: 40,
		DiurnalCycles:     3,
		Verify:            true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Errorf("errors = %d", res.Errors)
	}
	if res.Mismatches != 0 {
		t.Errorf("mismatches = %d: spill/fault-in churn corrupted served documents", res.Mismatches)
	}
	ts := eng.SpillStats()
	if ts.Spills == 0 || ts.FaultIns == 0 {
		t.Errorf("diurnal churn never hit the disk tier: %+v", ts)
	}
	if st := eng.StoreStats(); st.Resident.Total > 8<<10 {
		t.Errorf("resident bytes %d exceed budget after run", st.Resident.Total)
	}
}
