// Package vcdiff implements the VCDIFF generic differencing format of
// RFC 3284 (Korn & Vo) — reference [12] of the paper and the
// standardization of the Vdelta lineage the paper builds on.
//
// The package provides a complete decoder for the default code table
// (without secondary compression or application headers), and an encoder
// that translates deltas produced by the internal vdelta codec into
// interoperable VCDIFF streams. Delta-servers can therefore speak the
// standard format to clients that expect it.
package vcdiff

// Instruction types (RFC 3284 section 5.4).
const (
	instNoop = 0
	instAdd  = 1
	instRun  = 2
	instCopy = 3
)

// Address cache parameters of the default code table (section 5.1).
const (
	sNear = 4
	sSame = 3
)

// Copy modes (section 5.3): VCD_SELF, VCD_HERE, near modes, same modes.
const (
	modeSelf = 0
	modeHere = 1
	// modes 2..2+sNear-1 are near modes; 2+sNear..2+sNear+sSame-1 same.
)

// codeEntry is one (possibly paired) instruction of the code table.
type codeEntry struct {
	type1, size1, mode1 byte
	type2, size2, mode2 byte
}

// defaultCodeTable is the 256-entry table of RFC 3284 section 5.6.
var defaultCodeTable = buildDefaultCodeTable()

func buildDefaultCodeTable() [256]codeEntry {
	var t [256]codeEntry
	index := 0

	// 1. RUN 0 NOOP.
	t[index] = codeEntry{type1: instRun}
	index++

	// 2. ADD sizes 0, 1..17.
	for size := 0; size <= 17; size++ {
		t[index] = codeEntry{type1: instAdd, size1: byte(size)}
		index++
	}

	// 3-4. COPY sizes 0, 4..18 for each mode 0..8.
	for mode := 0; mode < 2+sNear+sSame; mode++ {
		t[index] = codeEntry{type1: instCopy, mode1: byte(mode)}
		index++
		for size := 4; size <= 18; size++ {
			t[index] = codeEntry{type1: instCopy, size1: byte(size), mode1: byte(mode)}
			index++
		}
	}

	// 5. ADD [1,4] + COPY [4,6] modes 0..5.
	for mode := 0; mode <= 5; mode++ {
		for addSize := 1; addSize <= 4; addSize++ {
			for copySize := 4; copySize <= 6; copySize++ {
				t[index] = codeEntry{
					type1: instAdd, size1: byte(addSize),
					type2: instCopy, size2: byte(copySize), mode2: byte(mode),
				}
				index++
			}
		}
	}

	// 6. ADD [1,4] + COPY 4 modes 6..8.
	for mode := 6; mode <= 8; mode++ {
		for addSize := 1; addSize <= 4; addSize++ {
			t[index] = codeEntry{
				type1: instAdd, size1: byte(addSize),
				type2: instCopy, size2: 4, mode2: byte(mode),
			}
			index++
		}
	}

	// 7. COPY 4 modes 0..8 + ADD 1.
	for mode := 0; mode <= 8; mode++ {
		t[index] = codeEntry{
			type1: instCopy, size1: 4, mode1: byte(mode),
			type2: instAdd, size2: 1,
		}
		index++
	}

	if index != 256 {
		// The construction above is fixed by the RFC; a mismatch is a
		// programming error caught at package init.
		panic("vcdiff: default code table has wrong size")
	}
	return t
}

// addressCache implements the near/same address caches of section 5.1.
type addressCache struct {
	near     [sNear]int
	nextSlot int
	same     [sSame * 256]int
}

func newAddressCache() *addressCache {
	return &addressCache{}
}

// update records an address after each COPY, per section 5.1.
func (c *addressCache) update(addr int) {
	c.near[c.nextSlot] = addr
	c.nextSlot = (c.nextSlot + 1) % sNear
	c.same[addr%(sSame*256)] = addr
}

// encodeMode returns the cheapest (mode, value, isByte) encoding for addr
// with the current cache state; here is the current position in the
// source-plus-target address space.
func (c *addressCache) encodeMode(addr, here int) (mode int, value int, sameByte bool) {
	// VCD_SELF: the address itself.
	bestMode, bestValue := modeSelf, addr
	// VCD_HERE: distance back from the current position.
	if here-addr >= 0 && here-addr < bestValue {
		bestMode, bestValue = modeHere, here-addr
	}
	// Near modes: distance from a cached address (must be non-negative).
	for i := 0; i < sNear; i++ {
		if d := addr - c.near[i]; d >= 0 && d < bestValue {
			bestMode, bestValue = 2+i, d
		}
	}
	// Same modes: exact cache hit, encoded as one byte.
	if c.same[addr%(sSame*256)] == addr {
		return 2 + sNear + addr%(sSame*256)/256, addr % 256, true
	}
	return bestMode, bestValue, false
}

// decodeAddr decodes an address for the given mode, per section 5.3.
func (c *addressCache) decodeAddr(mode, here int, readVarint func() (int, error), readByte func() (byte, error)) (int, error) {
	switch {
	case mode == modeSelf:
		return readVarint()
	case mode == modeHere:
		v, err := readVarint()
		if err != nil {
			return 0, err
		}
		return here - v, nil
	case mode >= 2 && mode < 2+sNear:
		v, err := readVarint()
		if err != nil {
			return 0, err
		}
		return c.near[mode-2] + v, nil
	default: // same modes
		m := mode - (2 + sNear)
		b, err := readByte()
		if err != nil {
			return 0, err
		}
		return c.same[m*256+int(b)], nil
	}
}
