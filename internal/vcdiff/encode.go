package vcdiff

import (
	"fmt"

	"cbde/internal/vdelta"
)

// Encode produces an RFC 3284 VCDIFF delta transforming source into target.
// Match-finding is delegated to the internal vdelta codec; its instruction
// stream translates directly because both formats address a virtual source
// of base-then-target-prefix. The output is one window with a full-source
// segment, default code table, and no secondary compression.
func Encode(source, target []byte) ([]byte, error) {
	raw, err := vdelta.Encode(source, target)
	if err != nil {
		return nil, fmt.Errorf("vcdiff: find matches: %w", err)
	}
	ops, _, _, err := vdelta.Ops(raw)
	if err != nil {
		return nil, fmt.Errorf("vcdiff: parse internal delta: %w", err)
	}
	return encodeOps(ops, len(source), len(target)), nil
}

// sections accumulates the three per-window byte streams.
type sections struct {
	data  []byte
	insts []byte
	addrs []byte
	cache *addressCache
	// targetPos tracks "here" for address encoding.
	sourceLen, targetPos int
}

// pushAdd appends an un-paired ADD instruction.
func (s *sections) pushAdd(lit []byte) {
	s.data = append(s.data, lit...)
	if len(lit) >= 1 && len(lit) <= 17 {
		s.insts = append(s.insts, byte(1+len(lit)))
	} else {
		s.insts = append(s.insts, 1) // ADD size 0: explicit size follows
		s.insts = appendVarint(s.insts, len(lit))
	}
	s.targetPos += len(lit)
}

// pushCopy appends an un-paired COPY instruction.
func (s *sections) pushCopy(start, length int) {
	here := s.sourceLen + s.targetPos
	mode, value, sameByte := s.cache.encodeMode(start, here)
	base := 19 + 16*mode
	if length >= 4 && length <= 18 {
		s.insts = append(s.insts, byte(base+length-3))
	} else {
		s.insts = append(s.insts, byte(base))
		s.insts = appendVarint(s.insts, length)
	}
	s.pushAddr(value, sameByte)
	s.cache.update(start)
	s.targetPos += length
}

// pushAddPair appends a paired ADD+COPY entry (code table groups 5 and 6).
func (s *sections) pushAddPair(lit []byte, start, length int) {
	here := s.sourceLen + s.targetPos + len(lit)
	mode, value, sameByte := s.cache.encodeMode(start, here)

	var code int
	switch {
	case mode <= 5 && length >= 4 && length <= 6:
		code = 163 + mode*12 + (len(lit)-1)*3 + (length - 4)
	case mode >= 6 && length == 4:
		code = 235 + (mode-6)*4 + (len(lit) - 1)
	default:
		// No paired entry exists for this shape.
		s.pushAdd(lit)
		s.pushCopy(start, length)
		return
	}
	s.data = append(s.data, lit...)
	s.insts = append(s.insts, byte(code))
	s.pushAddr(value, sameByte)
	s.cache.update(start)
	s.targetPos += len(lit) + length
}

func (s *sections) pushAddr(value int, sameByte bool) {
	if sameByte {
		s.addrs = append(s.addrs, byte(value))
		return
	}
	s.addrs = appendVarint(s.addrs, value)
}

// encodeOps serializes the instruction list as one VCDIFF window.
func encodeOps(ops []vdelta.Op, sourceLen, targetLen int) []byte {
	s := &sections{cache: newAddressCache(), sourceLen: sourceLen}

	for i := 0; i < len(ops); i++ {
		op := ops[i]
		if op.Kind == vdelta.OpAdd {
			// Pair a short ADD with the following COPY when the code table
			// has a combined entry (falls back to two entries otherwise).
			if len(op.Data) >= 1 && len(op.Data) <= 4 && i+1 < len(ops) && ops[i+1].Kind == vdelta.OpCopy {
				next := ops[i+1]
				s.pushAddPair(op.Data, next.Start, next.Len)
				i++
				continue
			}
			s.pushAdd(op.Data)
			continue
		}
		s.pushCopy(op.Start, op.Len)
	}

	// Assemble the window (section 4.2).
	var win []byte
	win = append(win, vcdSource)
	win = appendVarint(win, sourceLen)
	win = appendVarint(win, 0) // segment position

	body := appendVarint(nil, targetLen)
	body = append(body, 0) // delta indicator
	body = appendVarint(body, len(s.data))
	body = appendVarint(body, len(s.insts))
	body = appendVarint(body, len(s.addrs))
	body = append(body, s.data...)
	body = append(body, s.insts...)
	body = append(body, s.addrs...)

	win = appendVarint(win, len(body))
	win = append(win, body...)

	out := make([]byte, 0, len(win)+8)
	out = append(out, headerMagic...)
	out = append(out, 0) // header indicator
	out = append(out, win...)
	return out
}

// DefaultWindowSize is the per-window target size EncodeWindowed uses when
// none is given. RFC 3284 recommends windowing large targets so decoders
// can bound their memory.
const DefaultWindowSize = 1 << 20 // 1 MiB

// EncodeWindowed produces a VCDIFF delta whose target is split into
// windows of at most windowSize bytes, each encoded against the full
// source. Windowing bounds decoder memory for large documents; for targets
// up to one window it is identical to Encode.
func EncodeWindowed(source, target []byte, windowSize int) ([]byte, error) {
	if windowSize <= 0 {
		windowSize = DefaultWindowSize
	}
	if windowSize > MaxWindowTarget {
		windowSize = MaxWindowTarget
	}
	if len(target) <= windowSize {
		return Encode(source, target)
	}

	out := make([]byte, 0, len(target)/8)
	out = append(out, headerMagic...)
	out = append(out, 0) // header indicator
	for start := 0; start < len(target); start += windowSize {
		end := start + windowSize
		if end > len(target) {
			end = len(target)
		}
		chunk, err := Encode(source, target[start:end])
		if err != nil {
			return nil, err
		}
		// Strip the per-chunk file header; keep the window.
		out = append(out, chunk[5:]...)
	}
	return out, nil
}
