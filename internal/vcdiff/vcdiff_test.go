package vcdiff

import (
	"bytes"
	"errors"
	"math/rand/v2"
	"strings"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, source, target []byte) []byte {
	t.Helper()
	delta, err := Encode(source, target)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(source, delta)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !bytes.Equal(got, target) {
		t.Fatalf("round trip mismatch: got %d bytes, want %d", len(got), len(target))
	}
	return delta
}

func TestRoundTripBasic(t *testing.T) {
	tests := []struct {
		name           string
		source, target string
	}{
		{"identical", "the quick brown fox jumps over the lazy dog", "the quick brown fox jumps over the lazy dog"},
		{"empty both", "", ""},
		{"empty source", "", "fresh content with no source at all"},
		{"empty target", "some source content", ""},
		{"append", "shared prefix content", "shared prefix content plus a suffix"},
		{"edit", "aaaa bbbb cccc dddd", "aaaa XXXX cccc dddd"},
		{"rewrite", "abcdefghijklmnop", "zyxwvutsrqponmlkjihgfedcba"},
		{"repetitive", "seed", strings.Repeat("na", 300) + " batman"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			roundTrip(t, []byte(tt.source), []byte(tt.target))
		})
	}
}

func TestHeaderShape(t *testing.T) {
	delta, err := Encode([]byte("source"), []byte("target"))
	if err != nil {
		t.Fatal(err)
	}
	// RFC 3284: 0xD6 0xC3 0xC4 ("VCD" with high bits), version 0, and our
	// header indicator 0.
	want := []byte{0xD6, 0xC3, 0xC4, 0x00, 0x00}
	if !bytes.HasPrefix(delta, want) {
		t.Errorf("header = % x, want prefix % x", delta[:5], want)
	}
	// First window uses a source segment.
	if delta[5]&vcdSource == 0 {
		t.Error("window does not declare VCD_SOURCE")
	}
}

func TestDeltaCompact(t *testing.T) {
	source := bytes.Repeat([]byte("The catalogue entry describes a product in detail. "), 400) // ~20KB
	target := append([]byte{}, source...)
	copy(target[9000:], "EDITED-REGION")
	delta := roundTrip(t, source, target)
	if len(delta) > len(target)/10 {
		t.Errorf("delta %d bytes for a %d-byte near-identical target", len(delta), len(target))
	}
}

func TestVarintBigEndianBase128(t *testing.T) {
	// RFC 3284 section 2 example: 123456789 encodes as 0xBA 0xEF 0x9A 0x15.
	got := appendVarint(nil, 123456789)
	want := []byte{0xBA, 0xEF, 0x9A, 0x15}
	if !bytes.Equal(got, want) {
		t.Errorf("appendVarint(123456789) = % x, want % x", got, want)
	}
	r := &byteReader{data: want}
	v, err := r.readVarint()
	if err != nil || v != 123456789 {
		t.Errorf("readVarint = %d, %v", v, err)
	}
	if varintLen(123456789) != 4 {
		t.Errorf("varintLen = %d, want 4", varintLen(123456789))
	}
}

func TestQuickVarintRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		enc := appendVarint(nil, int(v))
		r := &byteReader{data: enc}
		got, err := r.readVarint()
		return err == nil && got == int(v) && len(enc) == varintLen(int(v))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestCodeTableStructure(t *testing.T) {
	// Spot checks against RFC 3284 section 5.6.
	if e := defaultCodeTable[0]; e.type1 != instRun || e.size1 != 0 || e.type2 != instNoop {
		t.Errorf("entry 0 = %+v, want RUN 0", e)
	}
	if e := defaultCodeTable[1]; e.type1 != instAdd || e.size1 != 0 {
		t.Errorf("entry 1 = %+v, want ADD size 0", e)
	}
	if e := defaultCodeTable[18]; e.type1 != instAdd || e.size1 != 17 {
		t.Errorf("entry 18 = %+v, want ADD size 17", e)
	}
	if e := defaultCodeTable[19]; e.type1 != instCopy || e.size1 != 0 || e.mode1 != 0 {
		t.Errorf("entry 19 = %+v, want COPY size 0 mode 0", e)
	}
	if e := defaultCodeTable[34]; e.type1 != instCopy || e.size1 != 18 || e.mode1 != 0 {
		t.Errorf("entry 34 = %+v, want COPY size 18 mode 0", e)
	}
	if e := defaultCodeTable[162]; e.type1 != instCopy || e.size1 != 18 || e.mode1 != 8 {
		t.Errorf("entry 162 = %+v, want COPY size 18 mode 8", e)
	}
	if e := defaultCodeTable[163]; e.type1 != instAdd || e.size1 != 1 || e.type2 != instCopy || e.size2 != 4 || e.mode2 != 0 {
		t.Errorf("entry 163 = %+v, want ADD1+COPY4 mode0", e)
	}
	if e := defaultCodeTable[235]; e.type1 != instAdd || e.size1 != 1 || e.type2 != instCopy || e.size2 != 4 || e.mode2 != 6 {
		t.Errorf("entry 235 = %+v, want ADD1+COPY4 mode6", e)
	}
	if e := defaultCodeTable[247]; e.type1 != instCopy || e.size1 != 4 || e.mode1 != 0 || e.type2 != instAdd || e.size2 != 1 {
		t.Errorf("entry 247 = %+v, want COPY4 mode0 + ADD1", e)
	}
	if e := defaultCodeTable[255]; e.type1 != instCopy || e.mode1 != 8 || e.type2 != instAdd {
		t.Errorf("entry 255 = %+v, want COPY4 mode8 + ADD1", e)
	}
}

func TestDecodeErrors(t *testing.T) {
	source := []byte("source material for error testing")
	delta, err := Encode(source, []byte("source material for error testing, changed"))
	if err != nil {
		t.Fatal(err)
	}

	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte{}, delta...)
		bad[0] = 'X'
		if _, err := Decode(source, bad); !errors.Is(err, ErrCorrupt) {
			t.Errorf("got %v", err)
		}
	})
	t.Run("truncations", func(t *testing.T) {
		for cut := 0; cut < len(delta); cut += 2 {
			if _, err := Decode(source, delta[:cut]); err == nil {
				t.Fatalf("truncation at %d accepted", cut)
			}
		}
	})
	t.Run("secondary compression unsupported", func(t *testing.T) {
		bad := append([]byte{}, delta...)
		bad[4] = 0x01
		if _, err := Decode(source, bad); !errors.Is(err, ErrUnsupported) {
			t.Errorf("got %v", err)
		}
	})
	t.Run("shorter source fails", func(t *testing.T) {
		if _, err := Decode(source[:4], delta); !errors.Is(err, ErrCorrupt) {
			t.Errorf("got %v", err)
		}
	})
	t.Run("empty", func(t *testing.T) {
		if _, err := Decode(source, nil); err == nil {
			t.Error("empty delta accepted")
		}
	})
}

func TestDecodeHandCraftedRun(t *testing.T) {
	// Build a window by hand that uses the RUN instruction (entry 0),
	// which our encoder never emits.
	var body []byte
	body = appendVarint(body, 5) // target length
	body = append(body, 0)       // delta indicator
	data := []byte{'z'}          // RUN byte
	insts := []byte{0}           // entry 0 = RUN, explicit size
	insts = appendVarint(insts, 5)
	body = appendVarint(body, len(data))
	body = appendVarint(body, len(insts))
	body = appendVarint(body, 0) // no addresses
	body = append(body, data...)
	body = append(body, insts...)

	var delta []byte
	delta = append(delta, headerMagic...)
	delta = append(delta, 0) // header indicator
	delta = append(delta, 0) // win indicator: no source
	delta = appendVarint(delta, len(body))
	delta = append(delta, body...)

	got, err := Decode(nil, delta)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "zzzzz" {
		t.Errorf("RUN produced %q", got)
	}
}

func TestDecodeMultiWindow(t *testing.T) {
	// Two concatenated windows: the target is the concatenation.
	d1, err := Encode([]byte("alpha"), []byte("alpha-one"))
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Encode([]byte("alpha"), []byte("-two"))
	if err != nil {
		t.Fatal(err)
	}
	// Strip the second delta's file header and append its window.
	combined := append(append([]byte{}, d1...), d2[5:]...)
	got, err := Decode([]byte("alpha"), combined)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "alpha-one-two" {
		t.Errorf("multi-window decode = %q", got)
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(source, target []byte) bool {
		delta, err := Encode(source, target)
		if err != nil {
			return false
		}
		got, err := Decode(source, delta)
		return err == nil && bytes.Equal(got, target)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestQuickGarbageNeverPanics(t *testing.T) {
	source := []byte("a source for garbage decoding")
	f := func(garbage []byte) bool {
		_, _ = Decode(source, garbage)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestRealisticDocuments(t *testing.T) {
	rng := rand.New(rand.NewPCG(77, 3))
	words := []string{"<html>", "<div>", "content", "price", "stock", "</div>", "</html>", " "}
	mkdoc := func(n int) []byte {
		var b bytes.Buffer
		for b.Len() < n {
			b.WriteString(words[rng.IntN(len(words))])
		}
		return b.Bytes()
	}
	for i := 0; i < 40; i++ {
		source := mkdoc(2000 + rng.IntN(4000))
		target := append([]byte{}, source...)
		for e := 0; e < 1+rng.IntN(5); e++ {
			pos := rng.IntN(len(target))
			end := pos + rng.IntN(100)
			if end > len(target) {
				end = len(target)
			}
			target = append(target[:pos], append(mkdoc(rng.IntN(80)), target[end:]...)...)
		}
		roundTrip(t, source, target)
	}
}

func TestAddressCacheModes(t *testing.T) {
	// Repeated copies from the same address exercise the same-cache
	// single-byte encoding; nearby copies exercise the near cache.
	source := bytes.Repeat([]byte("ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"), 64)
	var target []byte
	for i := 0; i < 20; i++ {
		target = append(target, source[100:140]...) // same address repeatedly
		target = append(target, byte('x'), byte('y'), byte('z'))
		target = append(target, source[104+i:144+i]...) // near addresses
	}
	delta := roundTrip(t, source, target)
	// With cache-assisted addressing, the delta should be far smaller
	// than the target.
	if len(delta) > len(target)/2 {
		t.Errorf("delta %d bytes for %d-byte cache-friendly target", len(delta), len(target))
	}
}

func TestEncodeWindowed(t *testing.T) {
	rng := rand.New(rand.NewPCG(88, 2))
	source := make([]byte, 30_000)
	for i := range source {
		source[i] = byte('a' + rng.IntN(26))
	}
	// Target: three copies of the source with edits — larger than the
	// window size, so multiple windows are required.
	target := append(append(append([]byte{}, source...), source...), source...)
	for i := 0; i < 30; i++ {
		target[rng.IntN(len(target))] = '!'
	}

	const window = 16_384
	delta, err := EncodeWindowed(source, target, window)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(source, delta)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, target) {
		t.Fatal("windowed round trip mismatch")
	}
	// The stream must actually contain multiple windows: strictly more
	// VCD_SOURCE window indicators than a single-window encode.
	single, err := Encode(source, target)
	if err != nil {
		t.Fatal(err)
	}
	if len(delta) == len(single) {
		t.Error("windowed encode produced a single window")
	}
	// Still far smaller than the target for this self-similar content.
	if len(delta) > len(target)/4 {
		t.Errorf("windowed delta %d bytes for %d-byte target", len(delta), len(target))
	}
}

func TestEncodeWindowedSmallTargetEqualsEncode(t *testing.T) {
	source := []byte("small source")
	target := []byte("small source, slightly longer")
	a, err := EncodeWindowed(source, target, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Encode(source, target)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("single-window EncodeWindowed differs from Encode")
	}
	// Invalid window sizes fall back to defaults.
	if _, err := EncodeWindowed(source, target, -1); err != nil {
		t.Fatal(err)
	}
}
