package vcdiff

import (
	"errors"
	"fmt"
)

// Header bytes (RFC 3284 section 4.1): "VCD" with high bits set, version 0.
var headerMagic = []byte{0xD6, 0xC3, 0xC4, 0x00}

// Window indicator bits (section 4.2).
const (
	vcdSource = 0x01
	vcdTarget = 0x02
)

// MaxWindowTarget bounds the target bytes one window may declare. A forged
// stream can otherwise declare a multi-gigabyte window and bomb the decoder
// with a single allocation; web documents are nowhere near this limit.
const MaxWindowTarget = 1 << 28 // 256 MiB

// maxVarint bounds decoded integers; RFC 3284 values fit 32 bits here.
// Window and section sizes are bounded separately and much lower.
const maxVarint = 1<<32 - 1

// Errors returned by Decode.
var (
	// ErrCorrupt reports a malformed VCDIFF stream.
	ErrCorrupt = errors.New("vcdiff: corrupt stream")
	// ErrUnsupported reports a well-formed stream using features outside
	// this implementation (secondary compression, application code
	// tables).
	ErrUnsupported = errors.New("vcdiff: unsupported feature")
)

// Integers in VCDIFF are variable-length, base-128, big-endian with a
// continuation bit (section 2) — note the opposite byte order from Go's
// encoding/binary varints.

func appendVarint(dst []byte, v int) []byte {
	if v < 0 {
		v = 0
	}
	var buf [10]byte
	i := len(buf)
	i--
	buf[i] = byte(v & 0x7f)
	v >>= 7
	for v > 0 {
		i--
		buf[i] = byte(v&0x7f) | 0x80
		v >>= 7
	}
	return append(dst, buf[i:]...)
}

func varintLen(v int) int {
	n := 1
	for v >>= 7; v > 0; v >>= 7 {
		n++
	}
	return n
}

// byteReader walks a byte slice with error-sticky reads.
type byteReader struct {
	data []byte
	pos  int
}

func (r *byteReader) readByte() (byte, error) {
	if r.pos >= len(r.data) {
		return 0, fmt.Errorf("%w: truncated", ErrCorrupt)
	}
	b := r.data[r.pos]
	r.pos++
	return b, nil
}

func (r *byteReader) readVarint() (int, error) {
	v := 0
	for i := 0; ; i++ {
		if i > 9 {
			return 0, fmt.Errorf("%w: varint too long", ErrCorrupt)
		}
		b, err := r.readByte()
		if err != nil {
			return 0, err
		}
		v = v<<7 | int(b&0x7f)
		if v > maxVarint {
			return 0, fmt.Errorf("%w: varint out of range", ErrCorrupt)
		}
		if b&0x80 == 0 {
			return v, nil
		}
	}
}

func (r *byteReader) readBytes(n int) ([]byte, error) {
	if n < 0 || r.pos+n > len(r.data) {
		return nil, fmt.Errorf("%w: truncated section", ErrCorrupt)
	}
	out := r.data[r.pos : r.pos+n]
	r.pos += n
	return out, nil
}

func (r *byteReader) remaining() int { return len(r.data) - r.pos }

// Decode applies a VCDIFF delta to source and returns the target. It
// supports the default code table without secondary compression — the
// profile Encode produces and the common interoperable subset.
func Decode(source, delta []byte) ([]byte, error) {
	r := &byteReader{data: delta}
	hdr, err := r.readBytes(4)
	if err != nil {
		return nil, err
	}
	for i, want := range headerMagic {
		if hdr[i] != want {
			return nil, fmt.Errorf("%w: bad magic/version", ErrCorrupt)
		}
	}
	hdrIndicator, err := r.readByte()
	if err != nil {
		return nil, err
	}
	if hdrIndicator&0x01 != 0 || hdrIndicator&0x02 != 0 {
		return nil, fmt.Errorf("%w: secondary compression or custom code table", ErrUnsupported)
	}
	if hdrIndicator&0x04 != 0 {
		// Application header: skip it.
		n, err := r.readVarint()
		if err != nil {
			return nil, err
		}
		if _, err := r.readBytes(n); err != nil {
			return nil, err
		}
	}

	var target []byte
	for r.remaining() > 0 {
		window, err := decodeWindow(r, source, len(target))
		if err != nil {
			return nil, err
		}
		target = append(target, window...)
	}
	return target, nil
}

// decodeWindow decodes one window (section 4.2/4.3).
func decodeWindow(r *byteReader, source []byte, targetSoFar int) ([]byte, error) {
	winIndicator, err := r.readByte()
	if err != nil {
		return nil, err
	}
	if winIndicator&vcdTarget != 0 {
		return nil, fmt.Errorf("%w: VCD_TARGET windows", ErrUnsupported)
	}
	var segment []byte
	if winIndicator&vcdSource != 0 {
		segLen, err := r.readVarint()
		if err != nil {
			return nil, err
		}
		segPos, err := r.readVarint()
		if err != nil {
			return nil, err
		}
		if segPos < 0 || segLen < 0 || segPos+segLen > len(source) {
			return nil, fmt.Errorf("%w: source segment [%d,%d) outside %d-byte source",
				ErrCorrupt, segPos, segPos+segLen, len(source))
		}
		segment = source[segPos : segPos+segLen]
	}

	if _, err := r.readVarint(); err != nil { // length of the delta encoding
		return nil, err
	}
	targetLen, err := r.readVarint()
	if err != nil {
		return nil, err
	}
	if targetLen > MaxWindowTarget {
		return nil, fmt.Errorf("%w: window target of %d bytes exceeds limit", ErrUnsupported, targetLen)
	}
	deltaIndicator, err := r.readByte()
	if err != nil {
		return nil, err
	}
	if deltaIndicator != 0 {
		return nil, fmt.Errorf("%w: compressed delta sections", ErrUnsupported)
	}
	dataLen, err := r.readVarint()
	if err != nil {
		return nil, err
	}
	instLen, err := r.readVarint()
	if err != nil {
		return nil, err
	}
	addrLen, err := r.readVarint()
	if err != nil {
		return nil, err
	}
	dataSec, err := r.readBytes(dataLen)
	if err != nil {
		return nil, err
	}
	instSec, err := r.readBytes(instLen)
	if err != nil {
		return nil, err
	}
	addrSec, err := r.readBytes(addrLen)
	if err != nil {
		return nil, err
	}

	return applyWindow(segment, targetLen, dataSec, instSec, addrSec)
}

// applyWindow runs the instruction stream of one window.
func applyWindow(segment []byte, targetLen int, dataSec, instSec, addrSec []byte) ([]byte, error) {
	data := &byteReader{data: dataSec}
	insts := &byteReader{data: instSec}
	addrs := &byteReader{data: addrSec}
	cache := newAddressCache()

	// Allocate from actual instruction output, not the attacker-controlled
	// header value; the final length check still enforces targetLen.
	capHint := targetLen
	if capHint > 1<<20 {
		capHint = 1 << 20
	}
	out := make([]byte, 0, capHint)
	for insts.remaining() > 0 {
		code, err := insts.readByte()
		if err != nil {
			return nil, err
		}
		entry := defaultCodeTable[code]
		for half := 0; half < 2; half++ {
			typ, size, mode := entry.type1, entry.size1, entry.mode1
			if half == 1 {
				typ, size, mode = entry.type2, entry.size2, entry.mode2
			}
			if typ == instNoop {
				continue
			}
			n := int(size)
			if n == 0 {
				if n, err = insts.readVarint(); err != nil {
					return nil, err
				}
			}
			switch typ {
			case instAdd:
				lit, err := data.readBytes(n)
				if err != nil {
					return nil, err
				}
				out = append(out, lit...)
			case instRun:
				b, err := data.readByte()
				if err != nil {
					return nil, err
				}
				for i := 0; i < n; i++ {
					out = append(out, b)
				}
			case instCopy:
				here := len(segment) + len(out)
				addr, err := cache.decodeAddr(int(mode), here, addrs.readVarint, addrs.readByte)
				if err != nil {
					return nil, err
				}
				// The copied region may overlap the data being produced
				// (run-length behaviour, RFC 3284 section 3): only the
				// start must precede the current position.
				if addr < 0 || (n > 0 && addr >= here) {
					return nil, fmt.Errorf("%w: COPY from %d at here=%d", ErrCorrupt, addr, here)
				}
				// Copy byte-by-byte: the region may overlap the output
				// being produced (run-length behaviour).
				for i := 0; i < n; i++ {
					p := addr + i
					if p < len(segment) {
						out = append(out, segment[p])
					} else {
						out = append(out, out[p-len(segment)])
					}
				}
				cache.update(addr)
			default:
				return nil, fmt.Errorf("%w: bad instruction type %d", ErrCorrupt, typ)
			}
		}
	}
	if len(out) != targetLen {
		return nil, fmt.Errorf("%w: window produced %d bytes, header says %d", ErrCorrupt, len(out), targetLen)
	}
	return out, nil
}
