package vcdiff

import (
	"bytes"
	"testing"
)

// FuzzDecode hardens the RFC 3284 decoder against arbitrary streams.
func FuzzDecode(f *testing.F) {
	source := []byte("source material the fuzzer decodes against, long enough to copy from")
	good, err := Encode(source, []byte("source material the fuzzer decodes against, but edited"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{0xD6, 0xC3, 0xC4, 0x00, 0x00})
	f.Add(good[:7])
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, delta []byte) {
		_, _ = Decode(source, delta)
	})
}

// FuzzRoundTrip checks Encode/Decode on arbitrary inputs.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte("source"), []byte("target"))
	f.Add([]byte{}, []byte("fresh"))
	f.Add([]byte("gone"), []byte{})
	f.Fuzz(func(t *testing.T, source, target []byte) {
		delta, err := Encode(source, target)
		if err != nil {
			t.Fatalf("Encode: %v", err)
		}
		got, err := Decode(source, delta)
		if err != nil {
			t.Fatalf("Decode: %v", err)
		}
		if !bytes.Equal(got, target) {
			t.Fatal("round trip mismatch")
		}
	})
}
