package vcdiff

import (
	"bytes"
	"testing"
)

// FuzzDecode hardens the RFC 3284 decoder against arbitrary streams.
func FuzzDecode(f *testing.F) {
	source := []byte("source material the fuzzer decodes against, long enough to copy from")
	good, err := Encode(source, []byte("source material the fuzzer decodes against, but edited"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{0xD6, 0xC3, 0xC4, 0x00, 0x00})
	f.Add(good[:7])
	f.Add([]byte{})
	// A delta whose window is dominated by an overlapping target self-copy
	// (run-length expansion), plus truncations of it that cut a varint or an
	// instruction mid-stream.
	overlap, err := Encode(source, bytes.Repeat([]byte("na"), 64))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(overlap)
	f.Add(overlap[:len(overlap)-1])
	f.Add(overlap[:len(overlap)-3])
	f.Add(good[:9])
	f.Add(good[:len(good)-1])
	f.Fuzz(func(t *testing.T, delta []byte) {
		_, _ = Decode(source, delta)
	})
}

// FuzzRoundTrip checks Encode/Decode on arbitrary inputs.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte("source"), []byte("target"))
	f.Add([]byte{}, []byte("fresh"))
	f.Add([]byte("gone"), []byte{})
	// Repeat-heavy targets force overlapping self-copies through the
	// encode/decode pair.
	f.Add([]byte("na"), bytes.Repeat([]byte("na"), 200))
	f.Add([]byte("x"), bytes.Repeat([]byte("x"), 500))
	f.Fuzz(func(t *testing.T, source, target []byte) {
		delta, err := Encode(source, target)
		if err != nil {
			t.Fatalf("Encode: %v", err)
		}
		got, err := Decode(source, delta)
		if err != nil {
			t.Fatalf("Decode: %v", err)
		}
		if !bytes.Equal(got, target) {
			t.Fatal("round trip mismatch")
		}
	})
}
