package experiments

import (
	"fmt"
	"strings"

	"cbde/internal/gzipx"
	"cbde/internal/hpp"
	"cbde/internal/origin"
	"cbde/internal/vcdiff"
	"cbde/internal/vdelta"
)

// BaselineRow compares per-request transfer sizes for one scheme over the
// same request stream.
type BaselineRow struct {
	Scheme      string
	AvgTransfer float64 // bytes per request on the wire
	Reduction   float64 // direct/transfer
	Fallbacks   int     // full transfers (template misses etc.)
	ServerBytes int     // server-side state (templates or base-files)
}

// Baselines compares, over one class's request stream, the per-request
// transfer of: full documents (no scheme), gzip alone, HPP macro-
// preprocessing (Douglis et al. [6]), and delta-encoding with gzip — the
// related-work comparison of Section I. The paper: HPP gets 2-8x, but
// "delta-encoding exploits more redundancy than this scheme".
func Baselines(requests int) ([]BaselineRow, error) {
	if requests <= 0 {
		requests = 60
	}
	site := origin.NewSite(origin.Config{
		Host:          "www.base.com",
		Depts:         []origin.Dept{{Name: "news", Items: 6}},
		TemplateBytes: 30000,
		ItemBytes:     3000,
		ChurnBytes:    1200,
		Seed:          808,
	})

	// HPP preprocesses each page: one template per document. Classless
	// delta-encoding likewise keeps one base-file per document; the
	// class-based scheme shares a single base-file across every page —
	// the storage contrast the paper draws.
	coder := vdelta.NewCoder()
	templates := make([]*hpp.Template, 6)
	perDocIdx := make([]*vdelta.Index, 6)
	hppStorage, perDocStorage := 0, 0
	var classBase []byte
	for item := 0; item < 6; item++ {
		var samples [][]byte
		for i := 0; i < 5; i++ {
			doc, err := site.Render("news", item, "", i)
			if err != nil {
				return nil, err
			}
			samples = append(samples, doc)
		}
		tpl, err := hpp.Build(samples)
		if err != nil {
			return nil, err
		}
		templates[item] = tpl
		hppStorage += tpl.StaticBytes()
		last := samples[len(samples)-1]
		perDocIdx[item] = coder.NewIndex(last)
		perDocStorage += len(last)
		if item == 0 {
			classBase = last
		}
	}
	classIdx := coder.NewIndex(classBase)

	var direct, gzOnly, hppBytes, perDocBytes, classBytes int
	hppFallbacks := 0
	for i := 0; i < requests; i++ {
		item := i % 6
		doc, err := site.Render("news", item, "", 10+i)
		if err != nil {
			return nil, err
		}
		direct += len(doc)
		gzOnly += len(gzipx.Compress(doc))

		if b, err := templates[item].Bind(doc); err == nil {
			hppBytes += b.WireSize()
		} else {
			hppBytes += len(doc)
			hppFallbacks++
		}

		d, err := coder.EncodeIndexed(perDocIdx[item], doc)
		if err != nil {
			return nil, err
		}
		perDocBytes += len(gzipx.Compress(d))

		d, err = coder.EncodeIndexed(classIdx, doc)
		if err != nil {
			return nil, err
		}
		classBytes += len(gzipx.Compress(d))
	}

	n := float64(requests)
	mk := func(scheme string, total, fallbacks, storage int) BaselineRow {
		row := BaselineRow{
			Scheme:      scheme,
			AvgTransfer: float64(total) / n,
			Fallbacks:   fallbacks,
			ServerBytes: storage,
		}
		if total > 0 {
			row.Reduction = float64(direct) / float64(total)
		}
		return row
	}
	return []BaselineRow{
		mk("full documents", direct, 0, 0),
		mk("gzip only", gzOnly, 0, 0),
		mk("HPP per-page templates", hppBytes, hppFallbacks, hppStorage),
		mk("delta per-page base", perDocBytes, 0, perDocStorage),
		mk("delta one class base", classBytes, 0, len(classBase)),
	}, nil
}

// FormatBaselines renders the baseline comparison.
func FormatBaselines(rows []BaselineRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-26s %14s %11s %10s %13s\n", "Scheme", "Avg bytes/req", "Reduction", "Fallbacks", "Server bytes")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-26s %14.0f %10.1fx %10d %13d\n", r.Scheme, r.AvgTransfer, r.Reduction, r.Fallbacks, r.ServerBytes)
	}
	return b.String()
}

// FormatComparisonRow compares the two wire formats on one document pair.
type FormatComparisonRow struct {
	Label       string
	DocBytes    int
	VdeltaBytes int
	VCDIFFBytes int
	VdeltaGzip  int
	VCDIFFGzip  int
}

// CompareFormats encodes the same document pairs in the internal vdelta
// format and in RFC 3284 VCDIFF, with and without gzip — quantifying what
// speaking the standard format costs on the wire.
func CompareFormats() ([]FormatComparisonRow, error) {
	site := origin.NewSite(origin.Config{
		Host:          "www.fmt.com",
		Depts:         []origin.Dept{{Name: "news", Items: 4}},
		TemplateBytes: 36000,
		ItemBytes:     3000,
		ChurnBytes:    1200,
		Seed:          909,
	})
	coder := vdelta.NewCoder()

	var rows []FormatComparisonRow
	cases := []struct {
		label      string
		item, tick int
	}{
		{"next-tick", 0, 1},
		{"5-ticks-later", 0, 5},
		{"other-item", 1, 0},
	}
	base, err := site.Render("news", 0, "", 0)
	if err != nil {
		return nil, err
	}
	for _, c := range cases {
		doc, err := site.Render("news", c.item, "", c.tick)
		if err != nil {
			return nil, err
		}
		vd, err := coder.Encode(base, doc)
		if err != nil {
			return nil, err
		}
		vc, err := vcdiff.Encode(base, doc)
		if err != nil {
			return nil, err
		}
		rows = append(rows, FormatComparisonRow{
			Label:       c.label,
			DocBytes:    len(doc),
			VdeltaBytes: len(vd),
			VCDIFFBytes: len(vc),
			VdeltaGzip:  len(gzipx.Compress(vd)),
			VCDIFFGzip:  len(gzipx.Compress(vc)),
		})
	}
	return rows, nil
}

// FormatFormats renders the wire-format comparison.
func FormatFormats(rows []FormatComparisonRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-15s %9s %8s %8s %10s %10s\n",
		"Pair", "Doc", "vdelta", "vcdiff", "vdelta+gz", "vcdiff+gz")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-15s %9d %8d %8d %10d %10d\n",
			r.Label, r.DocBytes, r.VdeltaBytes, r.VCDIFFBytes, r.VdeltaGzip, r.VCDIFFGzip)
	}
	return b.String()
}
