package experiments

import (
	"fmt"
	"strings"
	"time"

	"cbde/internal/anonymize"
	"cbde/internal/basefile"
	"cbde/internal/core"
	"cbde/internal/trace"
)

// RebaseRow is one point of the rebase-timeout sweep.
type RebaseRow struct {
	Timeout      time.Duration
	GroupRebases int64
	BasicRebases int64
	Savings      float64 // percent
	BaseKBServer float64 // base distribution after proxy caching
	BaseKBClient float64 // base downloads across all clients
}

// AblateRebaseTimeout sweeps the group-rebase timeout over one calibrated
// workload. The paper introduces the timeout "to control the number of
// rebases": frequent rebases track content drift closely (smaller deltas)
// but invalidate every client's base-file, costing full responses and base
// re-distribution. The sweep makes that trade visible.
func AblateRebaseTimeout(timeouts []time.Duration, scale float64) ([]RebaseRow, error) {
	if len(timeouts) == 0 {
		timeouts = []time.Duration{
			0, // rebase whenever a better candidate appears
			time.Minute,
			10 * time.Minute,
			time.Hour,
		}
	}
	sw := trace.PaperSites(scale)[0]

	var rows []RebaseRow
	for _, to := range timeouts {
		res, err := Replay(sw, core.ModeClassBased, WithEngineConfig(core.Config{
			Anon: anonymize.Config{M: 2, N: 5},
			Selector: basefile.Config{
				SampleProb:    0.2,
				MaxSamples:    8,
				RebaseTimeout: to,
				Seed:          sw.Load.Seed,
			},
		}))
		if err != nil {
			return nil, err
		}
		rows = append(rows, RebaseRow{
			Timeout:      to,
			GroupRebases: res.GroupRebases,
			BasicRebases: res.BasicRebases,
			Savings:      res.Savings() * 100,
			BaseKBServer: float64(res.BaseBytesServer) / 1024,
			BaseKBClient: float64(res.BaseBytesClients) / 1024,
		})
	}
	return rows, nil
}

// FormatRebase renders the rebase-timeout sweep.
func FormatRebase(rows []RebaseRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %8s %8s %9s %14s %14s\n",
		"Timeout", "Group", "Basic", "Savings", "Base KB (srv)", "Base KB (cli)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %8d %8d %8.1f%% %14.0f %14.0f\n",
			r.Timeout, r.GroupRebases, r.BasicRebases, r.Savings, r.BaseKBServer, r.BaseKBClient)
	}
	return b.String()
}
