// Package experiments regenerates every table and figure of the paper's
// evaluation (Section VI) from the synthetic substrates: Table II
// (bandwidth savings on three sites), Table III (base-file selection
// algorithms), Table IV (anonymization levels), the Section VI-A latency
// analysis, the Section VI-B grouping statistics, the Section VI-C capacity
// comparison, and the analytic error-probability examples of Sections IV
// and V.
package experiments

import (
	"fmt"
	"time"

	"cbde/internal/anonymize"
	"cbde/internal/basefile"
	"cbde/internal/core"
	"cbde/internal/trace"
)

// ReplayResult summarizes one trace replayed through an engine, with a
// simulated population of delta-capable clients that keep their base-files
// fresh.
type ReplayResult struct {
	Label    string
	Mode     core.Mode
	Requests int

	DirectBytes int64 // traffic without delta-encoding
	DeltaBytes  int64 // delta payloads shipped
	FullBytes   int64 // full documents shipped (cold classes, rebases)

	BaseBytesClients int64 // base-file bytes delivered to clients (all fetches)
	BaseBytesServer  int64 // base-file bytes leaving the server assuming a
	// proxy-cache absorbs repeat fetches (one per version)

	DeltaResponses int64
	FullResponses  int64

	Classes      int
	DistinctDocs int
	StorageBytes int64
	GroupRebases int64
	BasicRebases int64

	ProbesPerURL float64 // grouping effort (class-based mode only)
}

// Savings is the paper's Table II number: 1 - (deltas+fulls)/direct.
// Base-file distribution is excluded, as base-files are cachable objects
// absorbed by proxy-caches.
func (r ReplayResult) Savings() float64 {
	if r.DirectBytes == 0 {
		return 0
	}
	return 1 - float64(r.DeltaBytes+r.FullBytes)/float64(r.DirectBytes)
}

// SavingsWithBases also charges base-file distribution (server-side, after
// proxy caching) against the savings.
func (r ReplayResult) SavingsWithBases() float64 {
	if r.DirectBytes == 0 {
		return 0
	}
	sent := r.DeltaBytes + r.FullBytes + r.BaseBytesServer
	return 1 - float64(sent)/float64(r.DirectBytes)
}

// ReplayOption tweaks a replay.
type ReplayOption func(*replayConfig)

type replayConfig struct {
	engineCfg    core.Config
	responseHook func(docLen, wireLen int, delta bool)
}

// WithEngineConfig overrides the engine configuration used for the replay
// (Mode is still forced to the Replay argument).
func WithEngineConfig(cfg core.Config) ReplayOption {
	return func(rc *replayConfig) { rc.engineCfg = cfg }
}

// WithResponseHook observes every response: the document size, the bytes
// that went on the wire for it, and whether it was a delta. Experiments use
// this for per-request latency modeling.
func WithResponseHook(hook func(docLen, wireLen int, delta bool)) ReplayOption {
	return func(rc *replayConfig) { rc.responseHook = hook }
}

// Replay runs the workload through a fresh engine in the given mode and
// simulates clients that fetch (and refresh) base-files.
func Replay(sw trace.SiteWorkload, mode core.Mode, opts ...ReplayOption) (ReplayResult, error) {
	rc := replayConfig{
		engineCfg: core.Config{
			Anon: anonymize.Config{M: 2, N: 5},
			Selector: basefile.Config{
				SampleProb: 0.2,
				MaxSamples: 8,
				// Rebases invalidate client base-files; a timeout keeps
				// them rare (Section IV controls rebases the same way).
				RebaseTimeout: 10 * time.Minute,
				Seed:          sw.Load.Seed,
			},
		},
	}
	for _, opt := range opts {
		opt(&rc)
	}
	rc.engineCfg.Mode = mode

	reqs := trace.Generate(sw.Site, sw.Load)
	// Deterministic clock: the trace timestamps drive the engine's time.
	idx := 0
	rc.engineCfg.Now = func() time.Time {
		if idx < len(reqs) {
			return reqs[idx].Time
		}
		return reqs[len(reqs)-1].Time
	}

	eng, err := core.NewEngine(rc.engineCfg)
	if err != nil {
		return ReplayResult{}, fmt.Errorf("experiments: new engine: %w", err)
	}

	res := ReplayResult{Label: sw.Label, Mode: mode, Requests: len(reqs)}
	held := make(map[string]map[string]int) // user -> class -> held version
	seenVersions := make(map[string]bool)   // class#version distributed once (proxy)
	distinct := make(map[string]bool)

	for i, r := range reqs {
		idx = i
		doc, err := sw.Site.Render(r.Dept, r.Item, r.User, r.Tick)
		if err != nil {
			return ReplayResult{}, fmt.Errorf("experiments: render %s: %w", r.URL, err)
		}
		distinct[r.URL+"|"+userKeyFor(mode, r.User)] = true

		creq := core.Request{URL: r.URL, UserID: r.User, Doc: doc}
		// The client advertises every base it holds; the server picks the
		// one matching the document's class.
		for classID, v := range held[r.User] {
			creq.Held = append(creq.Held, core.HeldBase{ClassID: classID, Version: v})
		}

		resp, err := eng.Process(creq)
		if err != nil {
			return ReplayResult{}, fmt.Errorf("experiments: process %s: %w", r.URL, err)
		}

		if resp.Kind == core.KindDelta {
			res.DeltaResponses++
			res.DeltaBytes += int64(len(resp.Payload))
		} else {
			res.FullResponses++
			res.FullBytes += int64(len(doc))
		}
		res.DirectBytes += int64(len(doc))
		if rc.responseHook != nil {
			rc.responseHook(len(doc), resp.WireSize(len(doc)), resp.Kind == core.KindDelta)
		}

		// Client refreshes its base when the server advertises a newer one.
		if resp.LatestVersion > 0 {
			if held[r.User] == nil {
				held[r.User] = make(map[string]int)
			}
			if held[r.User][resp.ClassID] < resp.LatestVersion {
				if base, ok := eng.BaseFile(resp.ClassID, resp.LatestVersion); ok {
					held[r.User][resp.ClassID] = resp.LatestVersion
					res.BaseBytesClients += int64(len(base))
					key := fmt.Sprintf("%s#%d", resp.ClassID, resp.LatestVersion)
					if !seenVersions[key] {
						seenVersions[key] = true
						res.BaseBytesServer += int64(len(base))
					}
				}
			}
		}
	}

	st := eng.Stats()
	res.Classes = st.Classes
	res.StorageBytes = st.StorageBytes
	res.GroupRebases = st.GroupRebases
	res.BasicRebases = st.BasicRebases
	res.DistinctDocs = len(distinct)
	if gs, ok := eng.GroupingStats(); ok {
		res.ProbesPerURL = gs.ProbesPerURL
	}
	return res, nil
}

func userKeyFor(mode core.Mode, user string) string {
	if mode == core.ModeClasslessPerUser {
		return user
	}
	return ""
}
