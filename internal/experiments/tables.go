package experiments

import (
	"fmt"
	"math/rand/v2"
	"strings"
	"time"

	"cbde/internal/anonymize"
	"cbde/internal/basefile"
	"cbde/internal/core"
	"cbde/internal/netsim"
	"cbde/internal/origin"
	"cbde/internal/trace"
	"cbde/internal/vdelta"
)

// TableIIRow is one row of Table II: bandwidth savings for one site.
type TableIIRow struct {
	Label        string
	Requests     int
	DirectKB     float64
	DeltaKB      float64 // deltas + full responses, the paper's "Delta KB"
	Savings      float64 // percent
	BaseKBServer float64 // base distribution after proxy caching (extra)
	Classes      int
	DistinctDocs int
	StorageKB    float64
}

// TableII replays the three calibrated site workloads through class-based
// delta-encoding and reports the Table II columns. scale in (0,1] shrinks
// request counts for cheaper runs.
func TableII(scale float64) ([]TableIIRow, error) {
	var rows []TableIIRow
	for _, sw := range trace.PaperSites(scale) {
		res, err := Replay(sw, core.ModeClassBased)
		if err != nil {
			return nil, err
		}
		rows = append(rows, TableIIRow{
			Label:        sw.Label,
			Requests:     res.Requests,
			DirectKB:     float64(res.DirectBytes) / 1024,
			DeltaKB:      float64(res.DeltaBytes+res.FullBytes) / 1024,
			Savings:      res.Savings() * 100,
			BaseKBServer: float64(res.BaseBytesServer) / 1024,
			Classes:      res.Classes,
			DistinctDocs: res.DistinctDocs,
			StorageKB:    float64(res.StorageBytes) / 1024,
		})
	}
	return rows, nil
}

// FormatTableII renders rows like the paper's Table II.
func FormatTableII(rows []TableIIRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %14s %12s %12s %9s %9s %8s\n",
		"Site", "Total requests", "Direct KB", "Delta KB", "Savings", "Classes", "Docs")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %14d %12.0f %12.0f %8.1f%% %9d %8d\n",
			r.Label, r.Requests, r.DirectKB, r.DeltaKB, r.Savings, r.Classes, r.DistinctDocs)
	}
	return b.String()
}

// TableIIIRow is one row of Table III: average delta sizes under each
// base-file selection algorithm for one permutation of the request
// sequence.
type TableIIIRow struct {
	Permutation   int
	FirstResponse float64
	Randomized    float64
	OnlineOptimal float64
}

// TableIIIDocs builds the document pool Table III is computed over:
// successive snapshots of one evolving dynamic document. Edits accumulate,
// so temporally distant snapshots differ more — exactly the regime in which
// base-file choice matters: the best base-file is a "central" snapshot,
// while the first response of a shuffled sequence is a random (possibly
// peripheral or outlier) one. A few sparse outlier snapshots (error pages)
// model the paper's observation that first-response can be very bad.
func TableIIIDocs(n int) [][]byte {
	rng := rand.New(rand.NewPCG(404, 17))

	letters := []byte("abcdefghijklmnopqrstuvwxyz ")
	fill := func(b []byte) {
		for i := range b {
			b[i] = letters[rng.IntN(len(letters))]
		}
	}
	doc := make([]byte, 9000)
	fill(doc)

	docs := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		if i%17 == 5 {
			docs = append(docs, []byte(fmt.Sprintf(
				"<html><body>temporarily unavailable, incident %x</body></html>", rng.Uint64())))
			continue
		}
		// Cumulative edits: overwrite a few regions; occasionally insert.
		for e := 0; e < 2; e++ {
			pos := rng.IntN(len(doc) - 200)
			fill(doc[pos : pos+120+rng.IntN(80)])
		}
		if rng.IntN(4) == 0 {
			ins := make([]byte, 100)
			fill(ins)
			pos := rng.IntN(len(doc))
			doc = append(doc[:pos:pos], append(ins, doc[pos:]...)...)
		}
		docs = append(docs, append([]byte(nil), doc...))
	}
	return docs
}

// TableIII evaluates the three base-file selection algorithms over
// `permutations` random permutations of docs, reporting the average real
// delta size each algorithm achieves (the paper uses 8 samples and p=0.2
// for the randomized algorithm).
func TableIII(docs [][]byte, permutations int, seed uint64) []TableIIIRow {
	coder := vdelta.NewCoder()
	rng := rand.New(rand.NewPCG(seed, 0xB5297A4D3F84D5B5))

	evaluate := func(s basefile.Strategy, seq [][]byte) float64 {
		now := time.Unix(0, 0)
		var total, count int
		for _, doc := range seq {
			base, version := s.Base()
			if version > 0 {
				delta, err := coder.Encode(base, doc)
				if err == nil {
					total += len(delta)
					count++
				}
			}
			s.Observe(doc, now)
			now = now.Add(time.Second)
		}
		if count == 0 {
			return 0
		}
		return float64(total) / float64(count)
	}

	rows := make([]TableIIIRow, 0, permutations)
	for p := 1; p <= permutations; p++ {
		seq := make([][]byte, len(docs))
		copy(seq, docs)
		rng.Shuffle(len(seq), func(i, j int) { seq[i], seq[j] = seq[j], seq[i] })

		rows = append(rows, TableIIIRow{
			Permutation:   p,
			FirstResponse: evaluate(basefile.NewFirstResponse(), seq),
			Randomized: evaluate(basefile.NewSelector(basefile.Config{
				SampleProb: 0.2,
				MaxSamples: 8,
				Seed:       seed + uint64(p),
			}), seq),
			OnlineOptimal: evaluate(basefile.NewOnlineOptimal(nil), seq),
		})
	}
	return rows
}

// FormatTableIII renders rows like the paper's Table III.
func FormatTableIII(rows []TableIIIRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-13s %15s %12s %15s\n", "Permutation", "First Response", "Randomized", "Online Optimal")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-13d %15.0f %12.0f %15.0f\n",
			r.Permutation, r.FirstResponse, r.Randomized, r.OnlineOptimal)
	}
	return b.String()
}

// TableIVRow is one row of Table IV: base-file and delta sizes with and
// without anonymization at level (M, N).
type TableIVRow struct {
	M, N       int
	BasePlain  int
	BaseAnon   int
	DeltaPlain float64
	DeltaAnon  float64
}

// TableIVLevels are the paper's (M, N) configurations.
var TableIVLevels = []struct{ M, N int }{
	{2, 5},
	{4, 12},
	{4, 8},
}

// TableIV measures anonymization cost: it picks a base-file from a pool of
// personalized documents, anonymizes it at each (M, N) level against
// distinct users' documents, and compares average delta sizes against a
// large pool with the plain vs anonymized base.
func TableIV(levels []struct{ M, N int }) ([]TableIVRow, error) {
	site := origin.NewSite(origin.Config{
		Host:  "www.t4.com",
		Depts: []origin.Dept{{Name: "portal", Items: 8}},
		// The paper's base-file is ~84 KB and loses 13-16% to
		// anonymization; sizing the document-unique share (item + churn +
		// personal content) to ~15% of the document reproduces that band.
		TemplateBytes: 68000,
		ItemBytes:     9000,
		ChurnBytes:    3500,
		Personalized:  true,
		Seed:          505,
	})
	renderFor := func(user string, i int) ([]byte, error) {
		return site.Render("portal", i%8, user, i%7)
	}

	base, err := renderFor("owner", 0)
	if err != nil {
		return nil, err
	}

	// Documents from distinct users drive the anonymization counters; a
	// disjoint pool measures the deltas.
	const poolSize = 30
	coder := vdelta.NewCoder()
	var pool [][]byte
	for i := 0; i < poolSize; i++ {
		doc, err := renderFor(fmt.Sprintf("pool-user-%d", i), i)
		if err != nil {
			return nil, err
		}
		pool = append(pool, doc)
	}
	avgDelta := func(b []byte) (float64, error) {
		total := 0
		for _, doc := range pool {
			d, err := coder.Encode(b, doc)
			if err != nil {
				return 0, err
			}
			total += len(d)
		}
		return float64(total) / float64(len(pool)), nil
	}

	deltaPlain, err := avgDelta(base)
	if err != nil {
		return nil, err
	}

	var rows []TableIVRow
	for _, lvl := range levels {
		var compareDocs [][]byte
		for i := 0; i < lvl.N; i++ {
			doc, err := renderFor(fmt.Sprintf("anon-user-%d-%d", lvl.M, i), 100+i)
			if err != nil {
				return nil, err
			}
			compareDocs = append(compareDocs, doc)
		}
		anon, err := anonymize.Anonymize(base, compareDocs, anonymize.Config{M: lvl.M, N: lvl.N})
		if err != nil {
			return nil, err
		}
		deltaAnon, err := avgDelta(anon)
		if err != nil {
			return nil, err
		}
		rows = append(rows, TableIVRow{
			M: lvl.M, N: lvl.N,
			BasePlain:  len(base),
			BaseAnon:   len(anon),
			DeltaPlain: deltaPlain,
			DeltaAnon:  deltaAnon,
		})
	}
	return rows, nil
}

// FormatTableIV renders rows like the paper's Table IV.
func FormatTableIV(rows []TableIVRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-3s %-3s %13s %12s %14s %13s\n",
		"M", "N", "Base (plain)", "Base (anon)", "Delta (plain)", "Delta (anon)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-3d %-3d %13d %12d %14.0f %13.0f\n",
			r.M, r.N, r.BasePlain, r.BaseAnon, r.DeltaPlain, r.DeltaAnon)
	}
	return b.String()
}

// LatencyReports reproduces the Section VI-A latency analysis: the L1/L2
// ratios for a 30 KB document vs a 1 KB gzipped delta over a high-bandwidth
// path (~5x) and a 56 kb/s modem (~10x).
func LatencyReports(docBytes, deltaBytes int) []netsim.Report {
	if docBytes <= 0 {
		docBytes = 30 * 1024
	}
	if deltaBytes <= 0 {
		deltaBytes = 1024
	}
	return []netsim.Report{
		netsim.Compare("high-bw", netsim.HighBandwidth(), docBytes, deltaBytes),
		netsim.Compare("modem-56k", netsim.Modem56k(), docBytes, deltaBytes),
	}
}

// FormatLatency renders the latency reports.
func FormatLatency(reports []netsim.Report) string {
	var b strings.Builder
	for _, r := range reports {
		fmt.Fprintln(&b, r.String())
	}
	return b.String()
}

// GroupingReport summarizes the Section VI-B grouping statistics for one
// replayed site.
type GroupingReport struct {
	Label          string
	DistinctDocs   int
	Classes        int
	DocsPerClass   float64
	ProbesPerURL   float64
	SavingsPercent float64
}

// Grouping replays the calibrated sites and reports the class-compression
// ratios (the paper: groups are 10-100x fewer than documents; matching takes
// a couple of tries; savings are not noticeably reduced).
func Grouping(scale float64) ([]GroupingReport, error) {
	var out []GroupingReport
	for _, sw := range trace.PaperSites(scale) {
		res, err := Replay(sw, core.ModeClassBased)
		if err != nil {
			return nil, err
		}
		gr := GroupingReport{
			Label:          sw.Label,
			DistinctDocs:   res.DistinctDocs,
			Classes:        res.Classes,
			ProbesPerURL:   res.ProbesPerURL,
			SavingsPercent: res.Savings() * 100,
		}
		if res.Classes > 0 {
			gr.DocsPerClass = float64(res.DistinctDocs) / float64(res.Classes)
		}
		out = append(out, gr)
	}
	return out, nil
}

// FormatGrouping renders grouping reports.
func FormatGrouping(reports []GroupingReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %9s %8s %11s %11s %9s\n",
		"Site", "Docs", "Classes", "Docs/Class", "Probes/URL", "Savings")
	for _, r := range reports {
		fmt.Fprintf(&b, "%-8s %9d %8d %11.1f %11.2f %8.1f%%\n",
			r.Label, r.DistinctDocs, r.Classes, r.DocsPerClass, r.ProbesPerURL, r.SavingsPercent)
	}
	return b.String()
}
