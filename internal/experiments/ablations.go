package experiments

import (
	"fmt"
	"math/rand/v2"
	"strings"
	"time"

	"cbde/internal/basefile"
	"cbde/internal/classify"
	"cbde/internal/origin"
	"cbde/internal/urlparts"
	"cbde/internal/vdelta"
)

// ChunkSizeRow is one point of the codec chunk-size ablation.
type ChunkSizeRow struct {
	ChunkSize  int
	DeltaBytes int
	EncodeMs   float64
}

// AblateChunkSize sweeps the Vdelta chunk width over a 50-60 KB document
// pair: small chunks find more matches (smaller deltas, more CPU); the
// light grouping variant's larger chunks trade quality for speed
// (footnote 2).
func AblateChunkSize(sizes []int) ([]ChunkSizeRow, error) {
	if len(sizes) == 0 {
		sizes = []int{2, 4, 8, 16, 32}
	}
	site := origin.NewSite(origin.Config{
		Host:          "www.abl.com",
		Depts:         []origin.Dept{{Name: "catalog", Items: 2}},
		TemplateBytes: 48000,
		ItemBytes:     5000,
		ChurnBytes:    2000,
		Seed:          606,
	})
	base, err := site.Render("catalog", 0, "", 0)
	if err != nil {
		return nil, err
	}
	target, err := site.Render("catalog", 0, "", 3)
	if err != nil {
		return nil, err
	}

	var rows []ChunkSizeRow
	for _, w := range sizes {
		coder := vdelta.NewCoder(vdelta.WithChunkSize(w))
		const reps = 10
		start := time.Now()
		var delta []byte
		for i := 0; i < reps; i++ {
			delta, err = coder.Encode(base, target)
			if err != nil {
				return nil, err
			}
		}
		rows = append(rows, ChunkSizeRow{
			ChunkSize:  w,
			DeltaBytes: len(delta),
			EncodeMs:   float64(time.Since(start).Microseconds()) / 1000 / reps,
		})
	}
	return rows, nil
}

// FormatChunkSize renders the chunk-size ablation.
func FormatChunkSize(rows []ChunkSizeRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-11s %12s %11s\n", "Chunk size", "Delta bytes", "Encode ms")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-11d %12d %11.2f\n", r.ChunkSize, r.DeltaBytes, r.EncodeMs)
	}
	return b.String()
}

// ProbeBudgetRow is one point of the grouping probe-budget ablation.
type ProbeBudgetRow struct {
	MaxProbes    int
	UseHints     bool
	Classes      int
	ProbesPerURL float64
}

// AblateProbeBudget sweeps the grouping probe budget N, with and without
// URL hint-parts, over a multi-department site. Hints should find the right
// class in about one probe regardless of N; without hints, small budgets
// fracture departments into extra classes (Section III's trade-off between
// search-time and matching-quality).
func AblateProbeBudget(budgets []int) ([]ProbeBudgetRow, error) {
	if len(budgets) == 0 {
		budgets = []int{1, 2, 4, 8}
	}
	site := origin.NewSite(origin.Config{
		Host:  "www.abl.com",
		Style: origin.StylePathSegments,
		Depts: []origin.Dept{
			{Name: "laptops", Items: 30}, {Name: "desktops", Items: 30},
			{Name: "phones", Items: 30}, {Name: "tablets", Items: 30},
			{Name: "cameras", Items: 30}, {Name: "printers", Items: 30},
		},
		TemplateBytes: 12000,
		ItemBytes:     1500,
		ChurnBytes:    500,
		Seed:          707,
	})

	var rows []ProbeBudgetRow
	for _, n := range budgets {
		for _, hints := range []bool{true, false} {
			m := classify.NewManager(classify.Config{MaxProbes: n, Seed: 9})
			rng := rand.New(rand.NewPCG(uint64(n), 99))
			for i := 0; i < 360; i++ {
				dept := site.Depts()[rng.IntN(6)].Name
				item := rng.IntN(30)
				doc, err := site.Render(dept, item, "", 0)
				if err != nil {
					return nil, err
				}
				url := site.URL(dept, item)
				parts, err := urlparts.Partition(url)
				if err != nil {
					return nil, err
				}
				if !hints {
					// Strip the hint: ad-hoc site organization.
					parts.Hint = ""
				}
				m.Group(url, parts, doc)
			}
			st := m.Stats()
			rows = append(rows, ProbeBudgetRow{
				MaxProbes:    n,
				UseHints:     hints,
				Classes:      st.Classes,
				ProbesPerURL: st.ProbesPerURL,
			})
		}
	}
	return rows, nil
}

// FormatProbeBudget renders the probe-budget ablation.
func FormatProbeBudget(rows []ProbeBudgetRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %-6s %9s %12s   %s\n", "N", "Hints", "Classes", "Probes/URL", "(6 true departments)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-4d %-6v %9d %12.2f\n", r.MaxProbes, r.UseHints, r.Classes, r.ProbesPerURL)
	}
	return b.String()
}

// SelectorSweepRow is one point of the (p, K) base-file selection sweep.
type SelectorSweepRow struct {
	SampleProb  float64
	MaxSamples  int
	AvgDelta    float64
	StoredBytes int
}

// AblateSelector sweeps the sampling probability p and the sample store
// size K of the randomized base-file algorithm over the Table III pool,
// reporting base-file quality (average real delta) against storage cost.
// The paper argues K around 10 suffices; this makes the diminishing returns
// visible.
func AblateSelector(probs []float64, ks []int) []SelectorSweepRow {
	if len(probs) == 0 {
		probs = []float64{0.05, 0.2, 0.5, 1}
	}
	if len(ks) == 0 {
		ks = []int{2, 4, 8, 16}
	}
	docs := TableIIIDocs(90)
	coder := vdelta.NewCoder()

	evaluate := func(p float64, k int) (float64, int) {
		s := basefile.NewSelector(basefile.Config{SampleProb: p, MaxSamples: k, Seed: 5})
		now := time.Unix(0, 0)
		total, count := 0, 0
		for _, doc := range docs {
			base, version := s.Base()
			if version > 0 {
				if d, err := coder.Encode(base, doc); err == nil {
					total += len(d)
					count++
				}
			}
			s.Observe(doc, now)
			now = now.Add(time.Second)
		}
		if count == 0 {
			return 0, 0
		}
		return float64(total) / float64(count), s.Stats().StoredBytes
	}

	var rows []SelectorSweepRow
	for _, p := range probs {
		for _, k := range ks {
			avg, stored := evaluate(p, k)
			rows = append(rows, SelectorSweepRow{
				SampleProb:  p,
				MaxSamples:  k,
				AvgDelta:    avg,
				StoredBytes: stored,
			})
		}
	}
	return rows
}

// FormatSelectorSweep renders the (p, K) sweep.
func FormatSelectorSweep(rows []SelectorSweepRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %-4s %12s %13s\n", "p", "K", "Avg delta", "Stored bytes")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6.2f %-4d %12.0f %13d\n", r.SampleProb, r.MaxSamples, r.AvgDelta, r.StoredBytes)
	}
	return b.String()
}

// EvictionRow is one point of the footnote-3 eviction-policy comparison.
type EvictionRow struct {
	Policy   basefile.EvictionPolicy
	AvgDelta float64
}

// AblateEviction compares the three eviction variants of footnote 3 over
// the Table III pool.
func AblateEviction() []EvictionRow {
	docs := TableIIIDocs(90)
	coder := vdelta.NewCoder()
	var rows []EvictionRow
	for _, policy := range []basefile.EvictionPolicy{
		basefile.EvictWorst, basefile.EvictPeriodicRandom, basefile.EvictTwoSet,
	} {
		s := basefile.NewSelector(basefile.Config{
			SampleProb: 0.2, MaxSamples: 8, Eviction: policy, Seed: 7,
		})
		now := time.Unix(0, 0)
		total, count := 0, 0
		for _, doc := range docs {
			base, version := s.Base()
			if version > 0 {
				if d, err := coder.Encode(base, doc); err == nil {
					total += len(d)
					count++
				}
			}
			s.Observe(doc, now)
			now = now.Add(time.Second)
		}
		avg := 0.0
		if count > 0 {
			avg = float64(total) / float64(count)
		}
		rows = append(rows, EvictionRow{Policy: policy, AvgDelta: avg})
	}
	return rows
}

// FormatEviction renders the eviction-policy comparison.
func FormatEviction(rows []EvictionRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %12s\n", "Eviction policy", "Avg delta")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %12.0f\n", r.Policy, r.AvgDelta)
	}
	return b.String()
}
