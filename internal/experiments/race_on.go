//go:build race

package experiments

// raceEnabled reports whether the race detector is active; timing-sensitive
// tests skip their wall-clock assertions under instrumentation.
const raceEnabled = true
