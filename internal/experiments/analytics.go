package experiments

import (
	"fmt"
	"strings"

	"cbde/internal/anonymize"
	"cbde/internal/basefile"
	"cbde/internal/core"
	"cbde/internal/trace"
)

// PErrorRow is one evaluation of the Section IV selection-error bound.
type PErrorRow struct {
	N, K       int
	Bound      float64
	PerEvict   float64
	MonteCarlo float64 // simulated rate under the paper's belief model
}

// PErrorTable evaluates the Section IV bound for the paper's example
// (N=1000, K=10 => ~8e-11) and smaller configurations where a Monte-Carlo
// simulation is cheap enough to compare against.
func PErrorTable(trials int) []PErrorRow {
	configs := []struct{ n, k int }{
		{50, 3},
		{50, 4},
		{100, 4},
		{1000, 10}, // the paper's example
	}
	rows := make([]PErrorRow, 0, len(configs))
	for _, c := range configs {
		row := PErrorRow{
			N:        c.n,
			K:        c.k,
			Bound:    basefile.PErrorBound(c.n, c.k),
			PerEvict: basefile.PErrorAtEviction(c.n, c.k),
		}
		if c.n <= 200 && trials > 0 {
			row.MonteCarlo = basefile.SimulateSelectionError(c.n, c.k, trials, uint64(c.n*c.k))
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatPError renders the Section IV analysis.
func FormatPError(rows []PErrorRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %-4s %12s %14s %12s\n", "N", "K", "bound", "per-eviction", "monte-carlo")
	for _, r := range rows {
		mc := "-"
		if r.MonteCarlo > 0 || (r.N <= 200) {
			mc = fmt.Sprintf("%.2e", r.MonteCarlo)
		}
		fmt.Fprintf(&b, "%-6d %-4d %12.2e %14.2e %12s\n", r.N, r.K, r.Bound, r.PerEvict, mc)
	}
	return b.String()
}

// PrivacyRow is one evaluation of the Section V privacy bounds.
type PrivacyRow struct {
	N, M     int
	P        float64
	BoundIID float64
	Exact    float64
	Decaying float64
}

// PrivacyTable evaluates the Section V bounds, including the paper's
// example (p=0.01, N=10, M=5: bound 4.7e-7, exact 2.4e-8).
func PrivacyTable() []PrivacyRow {
	configs := []struct {
		n, m int
		p    float64
	}{
		{5, 2, 0.01},
		{8, 4, 0.01},
		{12, 4, 0.01},
		{10, 5, 0.01}, // the paper's example
	}
	rows := make([]PrivacyRow, 0, len(configs))
	for _, c := range configs {
		rows = append(rows, PrivacyRow{
			N: c.n, M: c.m, P: c.p,
			BoundIID: anonymize.PrivacyBoundIID(c.n, c.m, c.p),
			Exact:    anonymize.PrivacyExact(c.n, c.m, c.p),
			Decaying: anonymize.PrivacyBoundDecaying(c.n, c.m, c.p),
		})
	}
	return rows
}

// FormatPrivacy renders the Section V analysis.
func FormatPrivacy(rows []PrivacyRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %-4s %-6s %12s %12s %14s\n", "N", "M", "p", "iid bound", "exact", "decaying bound")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-4d %-4d %-6.2f %12.2e %12.2e %14.2e\n",
			r.N, r.M, r.P, r.BoundIID, r.Exact, r.Decaying)
	}
	return b.String()
}

// StorageRow compares server-side storage across modes for one site — the
// scalability ablation motivating the class-based scheme.
type StorageRow struct {
	Label     string
	Mode      core.Mode
	Classes   int
	StorageKB float64
	Savings   float64
}

// StorageComparison replays one calibrated site under class-based,
// classless, and classless-per-user modes and reports storage footprints.
func StorageComparison(scale float64) ([]StorageRow, error) {
	sw := trace.PaperSites(scale)[0]
	var rows []StorageRow
	for _, mode := range []core.Mode{core.ModeClassBased, core.ModeClassless, core.ModeClasslessPerUser} {
		res, err := Replay(sw, mode)
		if err != nil {
			return nil, err
		}
		rows = append(rows, StorageRow{
			Label:     sw.Label,
			Mode:      mode,
			Classes:   res.Classes,
			StorageKB: float64(res.StorageBytes) / 1024,
			Savings:   res.Savings() * 100,
		})
	}
	return rows, nil
}

// FormatStorage renders the storage ablation.
func FormatStorage(rows []StorageRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %12s %14s %9s\n", "Mode", "Base-files", "Storage KB", "Savings")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-20s %12d %14.0f %8.1f%%\n", r.Mode, r.Classes, r.StorageKB, r.Savings)
	}
	return b.String()
}
