package experiments

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"time"

	"cbde/internal/anonymize"
	"cbde/internal/basefile"
	"cbde/internal/core"
	"cbde/internal/deltahttp"
	"cbde/internal/deltaserver"
	"cbde/internal/origin"
	"cbde/internal/vdelta"
)

// CapacityResult reproduces the Section VI-C comparison: the request
// throughput of a plain web-server vs the web-server fronted by the
// delta-server, plus the per-delta generation cost. The paper reports a
// plain Apache at 175-180 req/s vs ~130 req/s with the delta-server
// (~72-74%), and 6-8 ms to generate a delta from a 50-60 KB base-file.
// Absolute numbers differ on modern hardware; the ratio and the
// smallness of the per-delta cost are the reproducible shape.
type CapacityResult struct {
	PlainRequests int
	PlainSeconds  float64
	DeltaRequests int
	DeltaSeconds  float64

	DeltaGenMillis float64 // mean delta generation time, 50-60 KB base
	DeltaGenBase   int     // base-file size used
	DeltaGenDelta  int     // raw delta size produced
}

// PlainRPS returns the plain server's requests per second.
func (c CapacityResult) PlainRPS() float64 {
	if c.PlainSeconds == 0 {
		return 0
	}
	return float64(c.PlainRequests) / c.PlainSeconds
}

// DeltaRPS returns the delta-server system's requests per second.
func (c CapacityResult) DeltaRPS() float64 {
	if c.DeltaSeconds == 0 {
		return 0
	}
	return float64(c.DeltaRequests) / c.DeltaSeconds
}

// CapacityRatio returns DeltaRPS/PlainRPS — the paper's ~130/177 ~ 0.73.
func (c CapacityResult) CapacityRatio() float64 {
	p := c.PlainRPS()
	if p == 0 {
		return 0
	}
	return c.DeltaRPS() / p
}

// originWorkFactor calibrates the per-request cost of the origin to the
// paper's 2002 testbed, where a plain Apache 1.3.17 on a Pentium III
// sustained 175-180 req/s (~5.6 ms per request) generating dynamic pages.
// A Go renderer takes ~75 us, which would make the capacity comparison
// meaningless; this documented substitution restores a realistic origin
// cost so the ratio (paper: ~130/177 ~ 0.73) is reproducible in shape.
const originWorkFactor = 5 * time.Millisecond

// capacitySite builds the ~55 KB-document site used for capacity runs,
// matching the paper's 50-60 KB base-files.
func capacitySite(workFactor time.Duration) *origin.Site {
	return origin.NewSite(origin.Config{
		Host:          "www.cap.com",
		Style:         origin.StylePathSegments,
		Depts:         []origin.Dept{{Name: "catalog", Items: 8}},
		TemplateBytes: 48000,
		ItemBytes:     5000,
		ChurnBytes:    2000,
		WorkFactor:    workFactor,
		Seed:          606,
	})
}

// Capacity measures plain-vs-delta-server throughput by driving each
// handler in-process for the given number of requests, then times delta
// generation on a 50-60 KB base. requests controls the measurement length.
func Capacity(requests int) (CapacityResult, error) {
	if requests <= 0 {
		requests = 400
	}
	site := capacitySite(originWorkFactor)

	var res CapacityResult

	// Plain web-server.
	plain := site.Handler()
	res.PlainRequests = requests
	res.PlainSeconds = driveHandler(plain, requests, site)

	// Web-server + delta-server, with a client population holding bases so
	// the hot path is delta generation (the expensive case the paper
	// measures).
	originSrv := httptest.NewServer(site.Handler())
	defer originSrv.Close()
	eng, err := core.NewEngine(core.Config{
		Anon: anonymize.Config{M: 1, N: 2},
		// Candidate-delta computation happens off the serving path, as the
		// paper prescribes (Section IV: "can be done offline").
		Selector: basefile.Config{
			SampleProb: 0.2, MaxSamples: 8, AsyncSampling: true,
			// Keep rebases (and the anonymization passes they trigger) off
			// the measured serving path, as in steady-state operation.
			RebaseTimeout: time.Hour,
		},
		Now: monotonicClock(),
	})
	if err != nil {
		return CapacityResult{}, err
	}
	ds, err := deltaserver.New(originSrv.URL, eng, deltaserver.WithPublicHost("www.cap.com"))
	if err != nil {
		return CapacityResult{}, err
	}

	// Warm: finish anonymization and learn the class/version per item.
	type held struct {
		class   string
		version int
	}
	heldFor := make(map[int]held)
	for i := 0; i < 24; i++ {
		item := i % 8
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodGet, fmt.Sprintf("/catalog/%d", item), nil)
		req.Header.Set(deltahttp.HeaderCapable, "1")
		req.Header.Set(deltahttp.HeaderUser, fmt.Sprintf("warm-%d", i))
		ds.ServeHTTP(rec, req)
		if cls := rec.Header().Get(deltahttp.HeaderClass); cls != "" {
			if v, err := strconv.Atoi(rec.Header().Get(deltahttp.HeaderLatestVersion)); err == nil && v > 0 {
				heldFor[item] = held{class: cls, version: v}
			}
		}
	}
	if len(heldFor) == 0 {
		return CapacityResult{}, fmt.Errorf("experiments: capacity warmup produced no distributable bases")
	}

	start := time.Now()
	for i := 0; i < requests; i++ {
		item := i % 8
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodGet, fmt.Sprintf("/catalog/%d", item), nil)
		req.Header.Set(deltahttp.HeaderCapable, "1")
		req.Header.Set(deltahttp.HeaderUser, fmt.Sprintf("u%d", i%50))
		if h, ok := heldFor[item]; ok {
			req.Header.Set(deltahttp.HeaderHaveClass, h.class)
			req.Header.Set(deltahttp.HeaderHaveVersion, strconv.Itoa(h.version))
		}
		ds.ServeHTTP(rec, req)
	}
	res.DeltaRequests = requests
	res.DeltaSeconds = time.Since(start).Seconds()

	// Per-delta generation cost on a 50-60 KB base.
	base, err := site.Render("catalog", 0, "", 0)
	if err != nil {
		return CapacityResult{}, err
	}
	target, err := site.Render("catalog", 0, "", 3)
	if err != nil {
		return CapacityResult{}, err
	}
	coder := vdelta.NewCoder()
	const reps = 30
	genStart := time.Now()
	var delta []byte
	for i := 0; i < reps; i++ {
		delta, err = coder.Encode(base, target)
		if err != nil {
			return CapacityResult{}, err
		}
	}
	res.DeltaGenMillis = float64(time.Since(genStart).Milliseconds()) / reps
	res.DeltaGenBase = len(base)
	res.DeltaGenDelta = len(delta)
	return res, nil
}

// driveHandler serves `requests` in-process requests and returns elapsed
// seconds.
func driveHandler(h http.Handler, requests int, site *origin.Site) float64 {
	items := site.Depts()[0].Items
	start := time.Now()
	for i := 0; i < requests; i++ {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodGet, fmt.Sprintf("/catalog/%d", i%items), nil)
		h.ServeHTTP(rec, req)
	}
	return time.Since(start).Seconds()
}

// monotonicClock returns a deterministic strictly increasing clock.
func monotonicClock() func() time.Time {
	base := time.Unix(1_000_000, 0)
	n := 0
	return func() time.Time {
		n++
		return base.Add(time.Duration(n) * time.Millisecond)
	}
}

// FormatCapacity renders the capacity comparison.
func FormatCapacity(c CapacityResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "plain web-server:        %8.0f req/s (%d requests)\n", c.PlainRPS(), c.PlainRequests)
	fmt.Fprintf(&b, "delta + web-server:      %8.0f req/s (%d requests)\n", c.DeltaRPS(), c.DeltaRequests)
	fmt.Fprintf(&b, "capacity ratio:          %8.2f (paper: ~0.73)\n", c.CapacityRatio())
	fmt.Fprintf(&b, "delta generation:        %8.2f ms for a %d-byte base (delta %d bytes)\n",
		c.DeltaGenMillis, c.DeltaGenBase, c.DeltaGenDelta)
	return b.String()
}
