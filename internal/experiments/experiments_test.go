package experiments

import (
	"math"
	"strings"
	"testing"

	"cbde/internal/core"
	"cbde/internal/trace"
)

// Scale for test runs: small enough to be fast, large enough that per-user
// warmup does not dominate. Full-scale numbers go in EXPERIMENTS.md.
const testScale = 0.05

func TestTableIIShape(t *testing.T) {
	if raceEnabled {
		t.Skip("single-goroutine replay; race instrumentation only adds minutes")
	}
	rows, err := TableII(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	for _, r := range rows {
		if r.DirectKB <= 0 || r.DeltaKB <= 0 {
			t.Errorf("%s: empty traffic columns: %+v", r.Label, r)
		}
		if r.DeltaKB >= r.DirectKB {
			t.Errorf("%s: delta traffic %f >= direct %f", r.Label, r.DeltaKB, r.DirectKB)
		}
		// At this tiny scale warmup dominates smaller sites; site1 (the
		// largest trace) must already show strong savings. Paper: >= 94%.
		if r.Label == "site1" && r.Savings < 85 {
			t.Errorf("site1 savings = %.1f%%, want >= 85%% even at test scale", r.Savings)
		}
		if r.Savings < 40 {
			t.Errorf("%s savings = %.1f%%, implausibly low", r.Label, r.Savings)
		}
		// Grouping compresses documents into far fewer classes.
		if r.Classes >= r.DistinctDocs/5 {
			t.Errorf("%s: %d classes for %d docs, want strong compression",
				r.Label, r.Classes, r.DistinctDocs)
		}
	}
	out := FormatTableII(rows)
	for _, want := range []string{"site1", "site2", "site3", "Savings"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatTableII missing %q", want)
		}
	}
}

func TestTableIIIShape(t *testing.T) {
	docs := TableIIIDocs(120)
	rows := TableIII(docs, 5, 42)
	if len(rows) != 5 {
		t.Fatalf("got %d permutations, want 5", len(rows))
	}
	var frMean, rndMean, optMean float64
	for _, r := range rows {
		frMean += r.FirstResponse
		rndMean += r.Randomized
		optMean += r.OnlineOptimal
		if r.FirstResponse <= 0 || r.Randomized <= 0 || r.OnlineOptimal <= 0 {
			t.Fatalf("permutation %d has zero delta sizes: %+v", r.Permutation, r)
		}
	}
	frMean /= 5
	rndMean /= 5
	optMean /= 5
	// Paper's ordering: first-response > randomized > online-optimal
	// on average, with randomized close to optimal.
	if !(frMean > rndMean) {
		t.Errorf("first-response mean %.0f not worse than randomized %.0f", frMean, rndMean)
	}
	if !(rndMean >= optMean*0.98) {
		t.Errorf("randomized mean %.0f beats online-optimal %.0f by too much — suspicious", rndMean, optMean)
	}
	if rndMean > optMean*1.35 {
		t.Errorf("randomized mean %.0f not close to optimal %.0f (paper: within ~10%%)", rndMean, optMean)
	}
	out := FormatTableIII(rows)
	if !strings.Contains(out, "Randomized") {
		t.Error("FormatTableIII missing header")
	}
}

func TestTableIVShape(t *testing.T) {
	rows, err := TableIV(TableIVLevels)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	for _, r := range rows {
		// Anonymization shrinks the base and (slightly) grows deltas.
		if r.BaseAnon >= r.BasePlain {
			t.Errorf("M=%d N=%d: anon base %d not smaller than plain %d",
				r.M, r.N, r.BaseAnon, r.BasePlain)
		}
		if r.BaseAnon < r.BasePlain/2 {
			t.Errorf("M=%d N=%d: anon base %d lost more than half the plain base %d",
				r.M, r.N, r.BaseAnon, r.BasePlain)
		}
		if r.DeltaAnon <= r.DeltaPlain*0.95 {
			t.Errorf("M=%d N=%d: anon delta %.0f not >= plain delta %.0f",
				r.M, r.N, r.DeltaAnon, r.DeltaPlain)
		}
		// "Anonymization is achieved at a minimal cost": deltas grow by a
		// small factor, not multiples.
		if r.DeltaAnon > r.DeltaPlain*2 {
			t.Errorf("M=%d N=%d: anon delta %.0f more than doubles plain %.0f",
				r.M, r.N, r.DeltaAnon, r.DeltaPlain)
		}
	}
	if !strings.Contains(FormatTableIV(rows), "Base (anon)") {
		t.Error("FormatTableIV missing header")
	}
}

func TestLatencyReportsShape(t *testing.T) {
	reports := LatencyReports(30*1024, 1024)
	if len(reports) != 2 {
		t.Fatalf("got %d reports", len(reports))
	}
	high, modem := reports[0], reports[1]
	if high.Ratio < 4 || high.Ratio > 6 {
		t.Errorf("high-bandwidth ratio %.1f, paper says ~5", high.Ratio)
	}
	if modem.Ratio < 8 || modem.Ratio > 14 {
		t.Errorf("modem ratio %.1f, paper says ~10", modem.Ratio)
	}
	if FormatLatency(reports) == "" {
		t.Error("FormatLatency empty")
	}
	// Defaults kick in for non-positive sizes.
	def := LatencyReports(0, 0)
	if def[0].DocBytes != 30*1024 || def[0].DeltaBytes != 1024 {
		t.Errorf("defaults not applied: %+v", def[0])
	}
}

func TestGroupingShape(t *testing.T) {
	reports, err := Grouping(testScale)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reports {
		// Paper: groups are 10-100x fewer than documents.
		if r.DocsPerClass < 10 {
			t.Errorf("%s: docs/class = %.1f, want >= 10", r.Label, r.DocsPerClass)
		}
		// Paper: requests are grouped "after a couple of tries".
		if r.ProbesPerURL > 3 {
			t.Errorf("%s: probes/URL = %.2f, want <= 3", r.Label, r.ProbesPerURL)
		}
	}
	if !strings.Contains(FormatGrouping(reports), "Docs/Class") {
		t.Error("FormatGrouping missing header")
	}
}

func TestCapacityShape(t *testing.T) {
	if raceEnabled {
		t.Skip("wall-clock capacity thresholds are meaningless under -race instrumentation")
	}
	res, err := Capacity(120)
	if err != nil {
		t.Fatal(err)
	}
	if res.PlainRPS() <= 0 || res.DeltaRPS() <= 0 {
		t.Fatalf("throughputs not measured: %+v", res)
	}
	// The delta path costs more CPU per request than plain serving, but
	// retains a large fraction of capacity (paper: ~0.73 with a ~5.6ms
	// origin; ours is calibrated to that via the origin work factor).
	// The band is generous: the measurement is wall-clock and sensitive to
	// machine load, core count, and coverage instrumentation.
	ratio := res.CapacityRatio()
	if ratio <= 0.15 || ratio >= 1.2 {
		t.Errorf("capacity ratio = %.2f, want in (0.15, 1.2), paper ~0.73", ratio)
	}
	// Delta generation on a 50-60 KB base takes single-digit milliseconds
	// (paper: 6-8ms on a Pentium III; modern hardware is faster).
	if res.DeltaGenMillis > 20 {
		t.Errorf("delta generation = %.2fms for %d-byte base, want cheap", res.DeltaGenMillis, res.DeltaGenBase)
	}
	if res.DeltaGenBase < 45000 || res.DeltaGenBase > 65000 {
		t.Errorf("capacity base size %d outside the paper's 50-60KB band", res.DeltaGenBase)
	}
	if !strings.Contains(FormatCapacity(res), "capacity ratio") {
		t.Error("FormatCapacity missing fields")
	}
}

func TestPErrorTableShape(t *testing.T) {
	rows := PErrorTable(500)
	var paperRow *PErrorRow
	for i := range rows {
		r := &rows[i]
		if r.N == 1000 && r.K == 10 {
			paperRow = r
		}
		if r.MonteCarlo > 0 && r.MonteCarlo > r.Bound {
			t.Errorf("N=%d K=%d: monte-carlo %.3g exceeds bound %.3g", r.N, r.K, r.MonteCarlo, r.Bound)
		}
	}
	if paperRow == nil {
		t.Fatal("paper example (N=1000, K=10) missing")
	}
	if paperRow.Bound > 8e-11 {
		t.Errorf("paper example bound = %g, want <= 8e-11", paperRow.Bound)
	}
	if !strings.Contains(FormatPError(rows), "monte-carlo") {
		t.Error("FormatPError missing header")
	}
}

func TestPrivacyTableShape(t *testing.T) {
	rows := PrivacyTable()
	var paperRow *PrivacyRow
	for i := range rows {
		r := &rows[i]
		if r.N == 10 && r.M == 5 {
			paperRow = r
		}
		if r.Exact > r.BoundIID {
			t.Errorf("N=%d M=%d: exact %.3g exceeds bound %.3g", r.N, r.M, r.Exact, r.BoundIID)
		}
	}
	if paperRow == nil {
		t.Fatal("paper example (N=10, M=5) missing")
	}
	if math.Abs(paperRow.BoundIID-4.7e-7)/4.7e-7 > 0.05 {
		t.Errorf("paper bound = %g, want ~4.7e-7", paperRow.BoundIID)
	}
	if math.Abs(paperRow.Exact-2.4e-8)/2.4e-8 > 0.05 {
		t.Errorf("paper exact = %g, want ~2.4e-8", paperRow.Exact)
	}
	if !strings.Contains(FormatPrivacy(rows), "decaying") {
		t.Error("FormatPrivacy missing header")
	}
}

func TestStorageComparisonShape(t *testing.T) {
	if raceEnabled {
		t.Skip("single-goroutine replay; race instrumentation only adds minutes")
	}
	rows, err := StorageComparison(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	byMode := map[core.Mode]StorageRow{}
	for _, r := range rows {
		byMode[r.Mode] = r
	}
	cb := byMode[core.ModeClassBased]
	cl := byMode[core.ModeClassless]
	pu := byMode[core.ModeClasslessPerUser]
	// The scalability headline: class-based storage is far below classless,
	// which in turn is below per-user.
	if cb.StorageKB*2 >= cl.StorageKB {
		t.Errorf("class-based storage %.0fKB not well below classless %.0fKB", cb.StorageKB, cl.StorageKB)
	}
	if cl.StorageKB >= pu.StorageKB {
		t.Errorf("classless storage %.0fKB not below per-user %.0fKB", cl.StorageKB, pu.StorageKB)
	}
	// And the savings do not suffer for it.
	if cb.Savings <= cl.Savings {
		t.Errorf("class-based savings %.1f%% not above classless %.1f%%", cb.Savings, cl.Savings)
	}
	if !strings.Contains(FormatStorage(rows), "class-based") {
		t.Error("FormatStorage missing rows")
	}
}

func TestReplayDeterministic(t *testing.T) {
	sw := trace.PaperSites(0.01)[1]
	a, err := Replay(sw, core.ModeClassBased)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Replay(sw, core.ModeClassBased)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("replay not deterministic:\n%+v\n%+v", a, b)
	}
}

func TestReplaySavingsAccounting(t *testing.T) {
	sw := trace.PaperSites(0.01)[1]
	res, err := Replay(sw, core.ModeClassBased)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeltaResponses+res.FullResponses != int64(res.Requests) {
		t.Errorf("responses %d+%d != requests %d",
			res.DeltaResponses, res.FullResponses, res.Requests)
	}
	if res.SavingsWithBases() > res.Savings() {
		t.Error("charging base distribution cannot increase savings")
	}
	if res.BaseBytesServer > res.BaseBytesClients {
		t.Error("proxy-cached server egress cannot exceed client downloads")
	}
}
