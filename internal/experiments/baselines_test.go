package experiments

import (
	"strings"
	"testing"

	"cbde/internal/basefile"
)

func TestBaselinesOrdering(t *testing.T) {
	rows, err := Baselines(40)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d rows", len(rows))
	}
	byScheme := map[string]BaselineRow{}
	for _, r := range rows {
		byScheme[r.Scheme] = r
	}
	full := byScheme["full documents"]
	gz := byScheme["gzip only"]
	hppRow := byScheme["HPP per-page templates"]
	perDoc := byScheme["delta per-page base"]
	class := byScheme["delta one class base"]

	if full.Reduction != 1 {
		t.Errorf("full reduction = %.2f, want 1", full.Reduction)
	}
	// Douglis et al.: HPP gives 2-8x.
	if hppRow.Reduction < 2 {
		t.Errorf("HPP reduction = %.1fx, want >= 2x", hppRow.Reduction)
	}
	// Paper: delta-encoding exploits more redundancy than HPP (at the
	// same per-document granularity).
	if perDoc.AvgTransfer >= hppRow.AvgTransfer {
		t.Errorf("per-doc delta avg %f not below HPP avg %f", perDoc.AvgTransfer, hppRow.AvgTransfer)
	}
	// And far more than gzip alone.
	if perDoc.AvgTransfer*3 >= gz.AvgTransfer {
		t.Errorf("delta avg %f not well below gzip-only %f", perDoc.AvgTransfer, gz.AvgTransfer)
	}
	// The class-based scheme trades slightly larger deltas for a fraction
	// of the server state.
	if class.ServerBytes*4 >= perDoc.ServerBytes {
		t.Errorf("class storage %d not well below per-doc storage %d",
			class.ServerBytes, perDoc.ServerBytes)
	}
	if class.Reduction < 2 {
		t.Errorf("class-based reduction = %.1fx, want >= 2x", class.Reduction)
	}
	if !strings.Contains(FormatBaselines(rows), "HPP") {
		t.Error("FormatBaselines missing rows")
	}
}

func TestAblateChunkSize(t *testing.T) {
	rows, err := AblateChunkSize([]int{4, 16, 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Larger chunks must not produce smaller deltas.
	for i := 1; i < len(rows); i++ {
		if rows[i].DeltaBytes < rows[i-1].DeltaBytes/2 {
			t.Errorf("chunk %d delta %d implausibly below chunk %d delta %d",
				rows[i].ChunkSize, rows[i].DeltaBytes, rows[i-1].ChunkSize, rows[i-1].DeltaBytes)
		}
	}
	if rows[0].DeltaBytes >= rows[2].DeltaBytes {
		t.Errorf("4-byte chunks (%d) should beat 64-byte chunks (%d)",
			rows[0].DeltaBytes, rows[2].DeltaBytes)
	}
	if !strings.Contains(FormatChunkSize(rows), "Chunk size") {
		t.Error("FormatChunkSize missing header")
	}
}

func TestAblateProbeBudget(t *testing.T) {
	rows, err := AblateProbeBudget([]int{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	get := func(n int, hints bool) ProbeBudgetRow {
		for _, r := range rows {
			if r.MaxProbes == n && r.UseHints == hints {
				return r
			}
		}
		t.Fatalf("row N=%d hints=%v missing", n, hints)
		return ProbeBudgetRow{}
	}
	// With hints, even a single probe finds the right class: 6 classes.
	if r := get(1, true); r.Classes != 6 {
		t.Errorf("N=1 with hints: %d classes, want 6", r.Classes)
	}
	// Without hints, a budget of 1 fractures departments into more classes
	// than a budget of 8.
	noHints1 := get(1, false)
	noHints8 := get(8, false)
	if noHints1.Classes < noHints8.Classes {
		t.Errorf("probe budget 1 (%d classes) should fracture at least as much as 8 (%d)",
			noHints1.Classes, noHints8.Classes)
	}
	if noHints8.ProbesPerURL < get(8, true).ProbesPerURL {
		t.Errorf("hints should reduce probing: %f vs %f",
			get(8, true).ProbesPerURL, noHints8.ProbesPerURL)
	}
	if !strings.Contains(FormatProbeBudget(rows), "Hints") {
		t.Error("FormatProbeBudget missing header")
	}
}

func TestAblateSelector(t *testing.T) {
	rows := AblateSelector([]float64{0.2}, []int{2, 8})
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.AvgDelta <= 0 {
			t.Errorf("p=%.2f K=%d: no delta measured", r.SampleProb, r.MaxSamples)
		}
	}
	// More samples store more bytes.
	if rows[1].StoredBytes <= rows[0].StoredBytes {
		t.Errorf("K=8 stored %d not above K=2 stored %d", rows[1].StoredBytes, rows[0].StoredBytes)
	}
	if !strings.Contains(FormatSelectorSweep(rows), "Stored bytes") {
		t.Error("FormatSelectorSweep missing header")
	}
}

func TestAblateEviction(t *testing.T) {
	rows := AblateEviction()
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	seen := map[basefile.EvictionPolicy]bool{}
	for _, r := range rows {
		if r.AvgDelta <= 0 {
			t.Errorf("%v: no delta measured", r.Policy)
		}
		seen[r.Policy] = true
	}
	if len(seen) != 3 {
		t.Error("policies missing from the comparison")
	}
	if !strings.Contains(FormatEviction(rows), "worst") {
		t.Error("FormatEviction missing rows")
	}
}

func TestUserLatencyShape(t *testing.T) {
	// The abstract: CBDE "reduces ... the latency perceived by most users
	// by a factor of 10 on average" on low-bandwidth links.
	reports, err := UserLatency(1, testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("got %d reports", len(reports))
	}
	var modem, high UserLatencyReport
	for _, r := range reports {
		switch r.Path {
		case "modem-56k":
			modem = r
		case "high-bw":
			high = r
		}
	}
	if modem.MeanRatio < 7 || modem.MeanRatio > 20 {
		t.Errorf("modem mean speedup = %.1f, abstract says ~10", modem.MeanRatio)
	}
	if modem.FracAtLeast5x < 0.8 {
		t.Errorf("only %.0f%% of requests sped up >=5x; abstract says most users", modem.FracAtLeast5x*100)
	}
	if high.MeanRatio <= 1.5 {
		t.Errorf("high-bandwidth speedup = %.1f, want clearly above 1", high.MeanRatio)
	}
	if modem.MeanCBDEMs >= modem.MeanDirectMs {
		t.Error("CBDE latency not below direct latency")
	}
	if !strings.Contains(FormatUserLatency(reports), "modem-56k") {
		t.Error("FormatUserLatency missing rows")
	}
	if _, err := UserLatency(9, 1); err == nil {
		t.Error("out-of-range site accepted")
	}
}

func TestAblateRebaseTimeout(t *testing.T) {
	rows, err := AblateRebaseTimeout(nil, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Longer timeouts can only reduce (or hold) the group-rebase count.
	for i := 1; i < len(rows); i++ {
		if rows[i].GroupRebases > rows[i-1].GroupRebases {
			t.Errorf("timeout %v has more group-rebases (%d) than %v (%d)",
				rows[i].Timeout, rows[i].GroupRebases, rows[i-1].Timeout, rows[i-1].GroupRebases)
		}
	}
	// Zero timeout rebases freely; clients then re-download bases more.
	if rows[0].GroupRebases > 0 && rows[len(rows)-1].GroupRebases >= rows[0].GroupRebases {
		t.Errorf("hour-long timeout did not damp rebases: %d vs %d",
			rows[len(rows)-1].GroupRebases, rows[0].GroupRebases)
	}
	if rows[0].BaseKBClient < rows[len(rows)-1].BaseKBClient {
		t.Errorf("frequent rebases should cost more client base downloads: %.0f vs %.0f",
			rows[0].BaseKBClient, rows[len(rows)-1].BaseKBClient)
	}
	if !strings.Contains(FormatRebase(rows), "Timeout") {
		t.Error("FormatRebase missing header")
	}
}

func TestCompareFormats(t *testing.T) {
	rows, err := CompareFormats()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.VdeltaBytes <= 0 || r.VCDIFFBytes <= 0 {
			t.Errorf("%s: empty encodings: %+v", r.Label, r)
		}
		// Both formats must stay far below the document for temporal pairs.
		if r.Label != "other-item" && r.VCDIFFBytes > r.DocBytes/4 {
			t.Errorf("%s: vcdiff %d not small vs doc %d", r.Label, r.VCDIFFBytes, r.DocBytes)
		}
		// The two formats encode the same instructions; sizes must be in
		// the same ballpark (within 2x either way).
		if r.VCDIFFBytes > r.VdeltaBytes*2 || r.VdeltaBytes > r.VCDIFFBytes*2 {
			t.Errorf("%s: formats diverge: vdelta %d vs vcdiff %d", r.Label, r.VdeltaBytes, r.VCDIFFBytes)
		}
	}
	if !strings.Contains(FormatFormats(rows), "vcdiff+gz") {
		t.Error("FormatFormats missing header")
	}
}
