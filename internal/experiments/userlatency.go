package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"cbde/internal/core"
	"cbde/internal/netsim"
	"cbde/internal/trace"
)

// UserLatencyReport reproduces the abstract's headline latency claim:
// class-based delta-encoding "reduces ... the latency perceived by most
// users by a factor of 10 on average" (over low-bandwidth access links).
// It replays a workload, models each response's download time over a
// network path with and without delta-encoding, and reports the
// distribution of per-request speedups.
type UserLatencyReport struct {
	Label string
	Path  string

	Requests int

	MeanDirectMs float64 // downloading every document in full
	MeanCBDEMs   float64 // downloading what the delta-server actually sent

	MeanRatio   float64 // mean per-request direct/CBDE latency ratio
	MedianRatio float64
	P90Ratio    float64
	// FracAtLeast5x is the fraction of requests sped up 5x or more —
	// "most users" in the abstract's phrasing.
	FracAtLeast5x float64
}

// UserLatency replays the given calibrated site (1-based index) and models
// per-request latencies over the high-bandwidth and 56k-modem paths of
// Section VI-A.
func UserLatency(siteIdx int, scale float64) ([]UserLatencyReport, error) {
	if siteIdx < 1 || siteIdx > 3 {
		return nil, fmt.Errorf("experiments: site index %d out of range", siteIdx)
	}
	sw := trace.PaperSites(scale)[siteIdx-1]

	paths := []struct {
		name string
		path netsim.Path
	}{
		{"high-bw", netsim.HighBandwidth()},
		{"modem-56k", netsim.Modem56k()},
	}

	// One replay collects the (docLen, wireLen) pairs; the latency model
	// is then evaluated per path.
	type sizes struct{ doc, wire int }
	var responses []sizes
	_, err := Replay(sw, core.ModeClassBased, WithResponseHook(func(docLen, wireLen int, _ bool) {
		responses = append(responses, sizes{doc: docLen, wire: wireLen})
	}))
	if err != nil {
		return nil, err
	}
	if len(responses) == 0 {
		return nil, fmt.Errorf("experiments: replay produced no responses")
	}

	var out []UserLatencyReport
	for _, p := range paths {
		rep := UserLatencyReport{Label: sw.Label, Path: p.name, Requests: len(responses)}
		ratios := make([]float64, 0, len(responses))
		var sumDirect, sumCBDE time.Duration
		atLeast5 := 0
		for _, r := range responses {
			direct := p.path.TransferLatency(r.doc)
			cbde := p.path.TransferLatency(r.wire)
			sumDirect += direct
			sumCBDE += cbde
			ratio := 1.0
			if cbde > 0 {
				ratio = float64(direct) / float64(cbde)
			}
			ratios = append(ratios, ratio)
			if ratio >= 5 {
				atLeast5++
			}
		}
		n := float64(len(responses))
		rep.MeanDirectMs = float64(sumDirect.Milliseconds()) / n
		rep.MeanCBDEMs = float64(sumCBDE.Milliseconds()) / n
		for _, r := range ratios {
			rep.MeanRatio += r
		}
		rep.MeanRatio /= n
		sort.Float64s(ratios)
		rep.MedianRatio = ratios[len(ratios)/2]
		rep.P90Ratio = ratios[len(ratios)*9/10]
		rep.FracAtLeast5x = float64(atLeast5) / n
		out = append(out, rep)
	}
	return out, nil
}

// FormatUserLatency renders the user-latency distribution reports.
func FormatUserLatency(reports []UserLatencyReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %9s %12s %11s %10s %10s %8s %8s\n",
		"Path", "Requests", "Direct ms", "CBDE ms", "MeanRatio", "Median", "P90", ">=5x")
	for _, r := range reports {
		fmt.Fprintf(&b, "%-10s %9d %12.0f %11.0f %10.1f %10.1f %8.1f %7.0f%%\n",
			r.Path, r.Requests, r.MeanDirectMs, r.MeanCBDEMs,
			r.MeanRatio, r.MedianRatio, r.P90Ratio, r.FracAtLeast5x*100)
	}
	return b.String()
}
