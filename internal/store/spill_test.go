package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testRecord(key string, ver int) ClassRecord {
	base := bytes.Repeat([]byte("base-"+key+" "), 40)
	return ClassRecord{
		Key:             key,
		DistVersion:     ver,
		SelectorVersion: ver,
		SelectorTag:     "tag-" + key,
		SelectorBase:    base,
		Bases: []VersionedBlob{
			{Version: ver - 1, Bytes: bytes.Repeat([]byte("old "), 30)},
			{Version: ver, Bytes: base},
		},
		Candidates: []TaggedDoc{{Tag: "c1", Bytes: []byte("candidate one body")}},
		Refs:       []TaggedDoc{{Tag: "r1", Bytes: bytes.Repeat([]byte("ref "), 25)}},
		Edges: []EdgeBlob{
			{From: ver - 1, To: ver, Payload: []byte("edge-delta-" + key), Gzipped: true, RawLen: 64},
		},
	}
}

func recordsEqual(t *testing.T, got, want ClassRecord) {
	t.Helper()
	if got.Key != want.Key || got.DistVersion != want.DistVersion ||
		got.SelectorVersion != want.SelectorVersion || got.SelectorTag != want.SelectorTag {
		t.Fatalf("header mismatch: got %+v want %+v", got, want)
	}
	if !bytes.Equal(got.SelectorBase, want.SelectorBase) {
		t.Fatalf("selector base mismatch")
	}
	if len(got.Bases) != len(want.Bases) {
		t.Fatalf("got %d bases, want %d", len(got.Bases), len(want.Bases))
	}
	for i := range want.Bases {
		if got.Bases[i].Version != want.Bases[i].Version || !bytes.Equal(got.Bases[i].Bytes, want.Bases[i].Bytes) {
			t.Fatalf("base %d mismatch", i)
		}
	}
	for name, pair := range map[string][2][]TaggedDoc{
		"candidates": {got.Candidates, want.Candidates},
		"refs":       {got.Refs, want.Refs},
	} {
		g, w := pair[0], pair[1]
		if len(g) != len(w) {
			t.Fatalf("%s: got %d docs, want %d", name, len(g), len(w))
		}
		for i := range w {
			if g[i].Tag != w[i].Tag || !bytes.Equal(g[i].Bytes, w[i].Bytes) {
				t.Fatalf("%s %d mismatch", name, i)
			}
		}
	}
	if len(got.Edges) != len(want.Edges) {
		t.Fatalf("got %d edges, want %d", len(got.Edges), len(want.Edges))
	}
	for i := range want.Edges {
		g, w := got.Edges[i], want.Edges[i]
		if g.From != w.From || g.To != w.To || g.Gzipped != w.Gzipped || g.RawLen != w.RawLen || !bytes.Equal(g.Payload, w.Payload) {
			t.Fatalf("edge %d mismatch: got %+v want %+v", i, g, w)
		}
	}
}

func TestBlobRoundTrip(t *testing.T) {
	want := testRecord("www.shop.com/laptops#1", 7)
	// Include an incompressible body so both raw and gzip paths execute.
	junk := make([]byte, 300)
	x := uint64(42)
	for i := range junk {
		x = x*2862933555777941757 + 3037000493
		junk[i] = byte(x >> 56)
	}
	want.Candidates = append(want.Candidates, TaggedDoc{Tag: "rand", Bytes: junk})

	payload, err := appendRecordPayload(nil, &want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeRecordPayload(payload, true)
	if err != nil {
		t.Fatal(err)
	}
	recordsEqual(t, got, want)
	if want.MemoryBytes() != got.MemoryBytes() {
		t.Fatalf("memory bytes changed across round trip: %d != %d", want.MemoryBytes(), got.MemoryBytes())
	}
}

// TestBlobV1BackCompat proves a pre-edges (CBS1) payload — exactly the v2
// payload truncated before the edges section — still decodes to a working
// edge-less record under the v1 layout, and that the strict end-of-payload
// check rejects the same bytes when read as v2.
func TestBlobV1BackCompat(t *testing.T) {
	want := testRecord("www.shop.com/laptops#1", 7)
	noEdges := want
	noEdges.Edges = nil
	v1, err := appendRecordPayload(nil, &noEdges)
	if err != nil {
		t.Fatal(err)
	}
	// A v1 writer stopped after the refs: strip the empty edges section the
	// v2 encoder appended (a single zero-count uvarint byte).
	if v1[len(v1)-1] != 0 {
		t.Fatalf("expected trailing zero edge count, got %#x", v1[len(v1)-1])
	}
	v1 = v1[:len(v1)-1]
	got, err := decodeRecordPayload(v1, false)
	if err != nil {
		t.Fatalf("v1 payload failed to decode under v1 layout: %v", err)
	}
	recordsEqual(t, got, noEdges)
	if _, err := decodeRecordPayload(v1, true); err == nil {
		t.Fatal("v1 payload decoded as v2 without error")
	}
}

func TestBlobRejectsBadRecords(t *testing.T) {
	if _, err := appendRecordPayload(nil, &ClassRecord{}); err == nil {
		t.Fatal("expected error for record without key")
	}
	dup := ClassRecord{Key: "k", Bases: []VersionedBlob{{Version: 3}, {Version: 3}}}
	if _, err := appendRecordPayload(nil, &dup); err == nil {
		t.Fatal("expected error for duplicate base versions")
	}
	// Truncations of a valid payload must error, never panic.
	payload, err := appendRecordPayload(nil, &ClassRecord{Key: "k", SelectorVersion: 2, SelectorBase: []byte("hello world")})
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(payload); n++ {
		if _, err := decodeRecordPayload(payload[:n], true); err == nil {
			t.Fatalf("truncation to %d bytes decoded without error", n)
		}
	}
}

func openTestTier(t *testing.T, dir string, cfg TierConfig) *Tier {
	t.Helper()
	cfg.Dir = dir
	tier, err := OpenTier(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tier.Close() })
	return tier
}

func TestTierAppendTakeRecover(t *testing.T) {
	dir := t.TempDir()
	tier := openTestTier(t, dir, TierConfig{})
	recs := make([]ClassRecord, 5)
	for i := range recs {
		recs[i] = testRecord(fmt.Sprintf("class#%d", i), i+2)
		if err := tier.Append(recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if got, ok := tier.Take("class#3"); !ok {
		t.Fatal("Take(class#3) missed")
	} else {
		recordsEqual(t, got, recs[3])
	}
	if _, ok := tier.Take("class#3"); ok {
		t.Fatal("second Take of the same key must miss: the index entry is consumed")
	}
	tier.Close()

	// Reopen: the index is rebuilt from segment headers alone.
	tier2 := openTestTier(t, dir, TierConfig{})
	if tier2.Len() != 5 {
		t.Fatalf("recovered %d classes, want 5 (taken entries reappear until overwritten)", tier2.Len())
	}
	got, ok := tier2.Take("class#1")
	if !ok {
		t.Fatal("recovered tier missed class#1")
	}
	recordsEqual(t, got, recs[1])
	st := tier2.Stats()
	if !st.Enabled || st.Segments == 0 || st.DiskBytes == 0 {
		t.Fatalf("implausible recovered stats: %+v", st)
	}
}

func TestTierLatestRecordWins(t *testing.T) {
	dir := t.TempDir()
	tier := openTestTier(t, dir, TierConfig{})
	old := testRecord("class#1", 2)
	newer := testRecord("class#1", 9)
	if err := tier.Append(old); err != nil {
		t.Fatal(err)
	}
	if err := tier.Append(newer); err != nil {
		t.Fatal(err)
	}
	if tier.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tier.Len())
	}
	got, ok := tier.Take("class#1")
	if !ok {
		t.Fatal("Take missed")
	}
	recordsEqual(t, got, newer)
	tier.Close()

	tier2 := openTestTier(t, dir, TierConfig{})
	got, ok = tier2.Take("class#1")
	if !ok {
		t.Fatal("recovered Take missed")
	}
	recordsEqual(t, got, newer)
}

// segmentFiles returns the tier's on-disk segment paths, oldest first.
func segmentFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "spill-") && strings.HasSuffix(e.Name(), ".seg") {
			out = append(out, filepath.Join(dir, e.Name()))
		}
	}
	return out
}

func TestTierTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	tier := openTestTier(t, dir, TierConfig{})
	a, b := testRecord("class#a", 3), testRecord("class#b", 4)
	if err := tier.Append(a); err != nil {
		t.Fatal(err)
	}
	sizeAfterA := tier.Stats().DiskBytes
	if err := tier.Append(b); err != nil {
		t.Fatal(err)
	}
	tier.Close()

	// Simulate a crash mid-spill: chop bytes off the second record.
	files := segmentFiles(t, dir)
	if len(files) != 1 {
		t.Fatalf("expected 1 segment, found %v", files)
	}
	fi, err := os.Stat(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(files[0], fi.Size()-7); err != nil {
		t.Fatal(err)
	}

	tier2 := openTestTier(t, dir, TierConfig{})
	if tier2.Contains("class#b") {
		t.Fatal("torn record survived recovery")
	}
	got, ok := tier2.Take("class#a")
	if !ok {
		t.Fatal("intact record before the tear must survive")
	}
	recordsEqual(t, got, a)
	if st := tier2.Stats(); st.DiskBytes != sizeAfterA {
		t.Fatalf("logical size = %d, want %d (scan must stop at the tear)", st.DiskBytes, sizeAfterA)
	}

	// New appends after recovery go to a fresh segment, never after garbage.
	if err := tier2.Append(b); err != nil {
		t.Fatal(err)
	}
	if files = segmentFiles(t, dir); len(files) != 2 {
		t.Fatalf("append after torn recovery reused the torn segment: %v", files)
	}
	if got, ok := tier2.Take("class#b"); !ok {
		t.Fatal("re-spilled record missed")
	} else {
		recordsEqual(t, got, b)
	}
}

func TestTierCorruptRecordDegrades(t *testing.T) {
	dir := t.TempDir()
	tier := openTestTier(t, dir, TierConfig{})
	if err := tier.Append(testRecord("class#x", 5)); err != nil {
		t.Fatal(err)
	}
	tier.Close()

	// Flip a byte inside the payload: framing is intact, CRC is not.
	files := segmentFiles(t, dir)
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-10] ^= 0xFF
	if err := os.WriteFile(files[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	tier2 := openTestTier(t, dir, TierConfig{})
	if !tier2.Contains("class#x") {
		t.Fatal("header scan should still index the record (CRC is checked lazily)")
	}
	if _, ok := tier2.Take("class#x"); ok {
		t.Fatal("corrupt record must fail Take")
	}
	if st := tier2.Stats(); st.Errors == 0 {
		t.Fatal("corruption must be counted")
	}
	if tier2.Contains("class#x") {
		t.Fatal("corrupt record must be removed from the index")
	}
}

func TestTierDiskBudgetCompaction(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation every append; a small budget forces
	// oldest-first deletion.
	tier := openTestTier(t, dir, TierConfig{SegmentBytes: 1, MaxBytes: 4096})
	var recSize int64
	for i := 0; i < 40; i++ {
		if err := tier.Append(testRecord(fmt.Sprintf("class#%d", i), i+1)); err != nil {
			t.Fatal(err)
		}
		if recSize == 0 {
			recSize = tier.Stats().DiskBytes
		}
	}
	st := tier.Stats()
	if st.DiskBytes > 4096+recSize {
		t.Fatalf("disk bytes %d exceed budget %d by more than one record (%d)", st.DiskBytes, 4096, recSize)
	}
	if st.Drops == 0 {
		t.Fatal("compaction must count dropped classes")
	}
	if tier.Contains("class#0") {
		t.Fatal("oldest class must have been dropped")
	}
	if !tier.Contains("class#39") {
		t.Fatal("newest class must survive compaction")
	}
	if st.SpilledClasses+int(st.Drops) != 40 {
		t.Fatalf("index (%d) + drops (%d) != 40 appends", st.SpilledClasses, st.Drops)
	}
}
