package store

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeEntry is a store Entry with a controllable footprint: prunable bytes
// release on Prune, the rest only on Evict.
type fakeEntry struct {
	acct *Accountant

	mu       sync.Mutex
	base     int64 // releases only on Evict
	prunable int64 // releases on Prune (counted as cand bytes)
	prunes   int
	evicts   int
}

func newFakeEntry(acct *Accountant, base, prunable int64) *fakeEntry {
	acct.AddBase(base)
	acct.AddCand(prunable)
	return &fakeEntry{acct: acct, base: base, prunable: prunable}
}

// grow adds bytes after creation, the way a real classState does (entries
// join the eviction ring empty and accumulate bytes from traffic).
func (e *fakeEntry) grow(base, prunable int64) {
	e.mu.Lock()
	e.base += base
	e.prunable += prunable
	e.mu.Unlock()
	e.acct.AddBase(base)
	e.acct.AddCand(prunable)
}

func (e *fakeEntry) ResidentBytes() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.base + e.prunable
}

func (e *fakeEntry) Prune() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.prunes++
	f := e.prunable
	e.prunable = 0
	e.acct.AddCand(-f)
	return f
}

func (e *fakeEntry) Evict() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.evicts++
	f := e.base + e.prunable
	e.acct.AddBase(-e.base)
	e.acct.AddCand(-e.prunable)
	e.base, e.prunable = 0, 0
	return f
}

func TestAccountant(t *testing.T) {
	var a Accountant
	a.AddBase(100)
	a.AddCand(40)
	a.AddIndex(25)
	a.AddBase(-30)
	u := a.Usage()
	if u.BaseBytes != 70 || u.CandBytes != 40 || u.IndexBytes != 25 {
		t.Fatalf("usage = %+v", u)
	}
	if u.Total != 135 || a.Total() != 135 {
		t.Fatalf("total = %d / %d, want 135", u.Total, a.Total())
	}
}

func TestMapGetOrCreateOnce(t *testing.T) {
	m := NewMap()
	var created int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e, madeIt := m.GetOrCreate("k", func() Entry {
				mu.Lock()
				created++
				mu.Unlock()
				return newFakeEntry(m.Accountant(), 10, 0)
			})
			if e == nil {
				t.Error("nil entry")
			}
			_ = madeIt
		}()
	}
	wg.Wait()
	if created != 1 {
		t.Fatalf("create ran %d times, want 1", created)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d, want 1", m.Len())
	}
	if got := m.Accountant().Total(); got != 10 {
		t.Fatalf("accounted %d bytes, want 10", got)
	}
	if st := m.Stats(); st.Classes != 1 || st.ResidentClasses != 1 || st.Budget != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if m.Maintain() != 0 {
		t.Fatal("unbudgeted Maintain freed bytes")
	}
}

func TestBudgetedPrunesBeforeEvicting(t *testing.T) {
	b := NewBudgeted(200, func() time.Time { return time.Unix(0, 0) })
	var entries []*fakeEntry
	for i := 0; i < 4; i++ {
		e, _ := b.GetOrCreate(fmt.Sprintf("c%d", i), func() Entry {
			fe := newFakeEntry(b.Accountant(), 50, 50)
			entries = append(entries, fe)
			return fe
		})
		_ = e
	}
	// 400 resident > 200 budget; pruning alone (frees 200) suffices.
	freed := b.Maintain()
	if freed != 200 {
		t.Fatalf("freed %d, want 200", freed)
	}
	for i, e := range entries {
		if e.evicts != 0 {
			t.Fatalf("entry %d evicted though pruning sufficed", i)
		}
		if e.prunes == 0 {
			t.Fatalf("entry %d never pruned", i)
		}
	}
	if got := b.Accountant().Total(); got != 200 {
		t.Fatalf("resident = %d, want 200", got)
	}
	st := b.Stats()
	if st.Prunes != 4 || st.Evictions != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if len(st.Log) != 4 {
		t.Fatalf("log has %d records, want 4", len(st.Log))
	}
	for _, r := range st.Log {
		if r.Kind != "prune" || r.FreedBytes != 50 {
			t.Fatalf("log record = %+v", r)
		}
	}
}

func TestBudgetedEvictsUntilUnderBudget(t *testing.T) {
	b := NewBudgeted(100, nil)
	var entries []*fakeEntry
	for i := 0; i < 4; i++ {
		b.GetOrCreate(fmt.Sprintf("c%d", i), func() Entry {
			fe := newFakeEntry(b.Accountant(), 50, 0)
			entries = append(entries, fe)
			return fe
		})
	}
	freed := b.Maintain()
	if got := b.Accountant().Total(); got > 100 {
		t.Fatalf("resident %d exceeds budget 100", got)
	}
	if freed < 100 {
		t.Fatalf("freed %d, want >= 100", freed)
	}
	st := b.Stats()
	if st.Evictions == 0 {
		t.Fatal("no evictions recorded")
	}
	if st.Classes != 4 {
		t.Fatalf("entries removed from map: Classes = %d", st.Classes)
	}
	if st.ResidentClasses != 4-int(st.Evictions) {
		t.Fatalf("ResidentClasses = %d with %d evictions", st.ResidentClasses, st.Evictions)
	}
	// Under budget now: another sweep is a no-op.
	if b.Maintain() != 0 {
		t.Fatal("Maintain freed bytes while under budget")
	}
}

func TestBudgetedSecondChanceSparesTouched(t *testing.T) {
	b := NewBudgeted(50, nil)
	var hot *fakeEntry
	b.GetOrCreate("hot", func() Entry {
		hot = newFakeEntry(b.Accountant(), 50, 0)
		return hot
	})
	var cold []*fakeEntry
	for i := 0; i < 3; i++ {
		b.GetOrCreate(fmt.Sprintf("cold%d", i), func() Entry {
			fe := newFakeEntry(b.Accountant(), 50, 0)
			cold = append(cold, fe)
			return fe
		})
	}
	// Creation sets every ref bit, which would give every entry a second
	// chance on the first sweep and reduce victim choice to ring order.
	// Clear the bits (white-box), then touch only "hot" so the policy has
	// a real recency signal to act on.
	b.mu.Lock()
	for _, s := range b.ring {
		s.ref.Store(false)
	}
	b.mu.Unlock()
	b.Get("hot")
	b.Maintain()
	if got := b.Accountant().Total(); got > 50 {
		t.Fatalf("resident %d exceeds budget 50", got)
	}
	// The hot entry had its ref bit set, so at least one cold entry must
	// have been evicted before hot was considered a victim. With budget 50
	// and 200 resident, evicting the three colds suffices, and the hot
	// entry survives the sweep.
	if hot.evicts != 0 {
		t.Fatal("recently-touched entry evicted while cold entries sufficed")
	}
	for i, e := range cold {
		if e.evicts != 1 {
			t.Fatalf("cold entry %d evicted %d times, want 1", i, e.evicts)
		}
	}
}

func TestBudgetedLogRing(t *testing.T) {
	b := NewBudgeted(0, func() time.Time { return time.Unix(42, 0) })
	for i := 0; i < evictionLogSize+10; i++ {
		b.record("evict", fmt.Sprintf("c%d", i), 1)
	}
	st := b.Stats()
	if len(st.Log) != evictionLogSize {
		t.Fatalf("log has %d records, want %d", len(st.Log), evictionLogSize)
	}
	if st.Log[0].Key != "c10" {
		t.Fatalf("oldest kept record = %q, want c10", st.Log[0].Key)
	}
	if last := st.Log[len(st.Log)-1]; last.Key != fmt.Sprintf("c%d", evictionLogSize+9) {
		t.Fatalf("newest record = %q", last.Key)
	}
	if !st.Log[0].At.Equal(time.Unix(42, 0)) {
		t.Fatalf("record timestamp = %v", st.Log[0].At)
	}
}

func TestBudgetedConcurrentMaintain(t *testing.T) {
	b := NewBudgeted(64, nil)
	for i := 0; i < 32; i++ {
		i := i
		b.GetOrCreate(fmt.Sprintf("c%d", i), func() Entry {
			return newFakeEntry(b.Accountant(), 64, 64)
		})
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				b.Get(fmt.Sprintf("c%d", i%32))
				b.Maintain()
			}
		}()
	}
	wg.Wait()
	// Quiesced: one final full sweep must land at or under budget.
	b.Maintain()
	if got := b.Accountant().Total(); got > 64 {
		t.Fatalf("resident %d exceeds budget 64 after quiesced sweep", got)
	}
}

// TestBudgetedMaintainConvergesUnderConcurrentInstalls pins the enforcement
// bound down to the last request: bytes installed while another goroutine
// holds the maintenance lock lose the TryLock, and must be collected by
// that holder's post-release re-check — not linger over budget until the
// next request happens to sweep.
func TestBudgetedMaintainConvergesUnderConcurrentInstalls(t *testing.T) {
	b := NewBudgeted(256, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				e, _ := b.GetOrCreate(fmt.Sprintf("g%d-c%d", g, i), func() Entry {
					return newFakeEntry(b.Accountant(), 0, 0)
				})
				e.(*fakeEntry).grow(64, 64)
				b.Maintain()
			}
		}()
	}
	wg.Wait()
	// No quiesced sweep here: every Maintain has returned, so resident
	// bytes must already be at or under budget.
	if got := b.Accountant().Total(); got > 256 {
		t.Fatalf("resident %d exceeds budget 256 after all Maintains returned", got)
	}
}
