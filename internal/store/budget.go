package store

import (
	"sync"
	"sync/atomic"
	"time"
)

// EvictionRecord is one entry of the budgeted store's maintenance log.
type EvictionRecord struct {
	Key        string    `json:"key"`
	Kind       string    `json:"kind"` // "prune" or "evict"
	FreedBytes int64     `json:"freedBytes"`
	At         time.Time `json:"at"`
}

// evictionLogSize bounds the maintenance log kept for the admin endpoint.
const evictionLogSize = 64

// Budgeted is a Map governed by a byte budget. Over budget, Maintain first
// prunes every entry's redundant payload (old base versions, sampled
// candidates), then runs CLOCK second-chance eviction of whole entries
// until resident bytes fit the budget again.
//
// Entries stay in the map after eviction; only their payload is released.
// The eviction ring therefore only ever grows, and an evicted entry that
// re-warms from traffic is a normal CLOCK citizen again.
type Budgeted struct {
	m      *Map
	budget int64
	now    func() time.Time

	// maintMu admits one maintainer at a time; contenders skip (TryLock)
	// so a request's hot path never queues behind an eviction sweep.
	maintMu sync.Mutex

	// mu guards the ring, the clock hand, and the log.
	mu   sync.Mutex
	ring []*slot
	hand int
	log  [evictionLogSize]EvictionRecord
	logN int64 // total records ever written; log[(logN-1)%size] is newest

	prunes    atomic.Int64
	evictions atomic.Int64
}

var _ ClassStore = (*Budgeted)(nil)

// NewBudgeted returns an empty store that keeps resident bytes at or under
// budget (bytes). now supplies timestamps for the eviction log; nil means
// time.Now.
func NewBudgeted(budget int64, now func() time.Time) *Budgeted {
	if now == nil {
		now = time.Now
	}
	b := &Budgeted{m: NewMap(), budget: budget, now: now}
	b.m.onCreate = b.register
	return b
}

// register adds a newly created slot to the eviction ring. Called by the
// underlying Map under the shard write lock; lock order is therefore
// shard.mu → b.mu, and Maintain never touches shard locks.
func (b *Budgeted) register(s *slot) {
	b.mu.Lock()
	b.ring = append(b.ring, s)
	b.mu.Unlock()
}

// Get implements ClassStore.
func (b *Budgeted) Get(key string) (Entry, bool) { return b.m.Get(key) }

// GetOrCreate implements ClassStore.
func (b *Budgeted) GetOrCreate(key string, create func() Entry) (Entry, bool) {
	return b.m.GetOrCreate(key, create)
}

// ForEach implements ClassStore.
func (b *Budgeted) ForEach(fn func(key string, e Entry) bool) { b.m.ForEach(fn) }

// Len implements ClassStore.
func (b *Budgeted) Len() int { return b.m.Len() }

// Accountant implements ClassStore.
func (b *Budgeted) Accountant() *Accountant { return &b.m.acct }

// Budget implements ClassStore.
func (b *Budgeted) Budget() int64 { return b.budget }

// over reports whether resident bytes exceed the budget.
func (b *Budgeted) over() bool { return b.m.acct.Total() > b.budget }

// Maintain implements ClassStore: while resident bytes exceed the budget it
// degrades storage in two passes and returns the bytes freed.
//
//	Pass 1 (prune): every entry drops redundant payload — old base-file
//	versions and sampled candidate documents — cheapest degradation first,
//	since a pruned class keeps serving deltas against its newest base.
//	Pass 2 (CLOCK): second-chance eviction over the ring. An entry whose
//	reference bit is set (touched since the last sweep) is spared once;
//	on the second encounter its whole payload is released and the class
//	degrades to full responses until traffic re-warms it.
//
// Only one maintainer sweeps at a time; a contender that loses the lock
// returns immediately rather than queueing. Its freshly installed bytes are
// still collected: an install always precedes the loser's lock attempt, and
// the attempt can only fail while the winner holds the lock, so the
// winner's post-release budget re-check observes the install and triggers
// another sweep. The enforcement bound is therefore: once every Maintain
// call has returned, resident bytes are at or under budget.
//
// A sweep frees bytes whenever any entry holds them (the hard pass below
// ignores reference bits once the polite passes fail), so a zero-freed
// sweep means every ringed entry is empty; remaining over budget then can
// only mean a misaccounted entry, and giving up beats spinning.
func (b *Budgeted) Maintain() int64 {
	var freed int64
	for b.over() {
		if !b.maintMu.TryLock() {
			return freed // the lock holder re-checks after it releases
		}
		f := b.sweep()
		b.maintMu.Unlock()
		freed += f
		if f == 0 {
			break
		}
	}
	return freed
}

// sweep runs one prune pass and one CLOCK pass over a snapshot of the
// ring and returns the bytes freed. The caller holds maintMu.
func (b *Budgeted) sweep() int64 {
	b.mu.Lock()
	ring := b.ring[:len(b.ring):len(b.ring)]
	hand := b.hand
	b.mu.Unlock()
	n := len(ring)
	if n == 0 {
		return 0
	}

	var freed int64
	for i := 0; i < n && b.over(); i++ {
		s := ring[(hand+i)%n]
		if f := s.entry.Prune(); f > 0 {
			freed += f
			b.prunes.Add(1)
			b.record("prune", s.key, f)
		}
	}
	for i := 0; i < 2*n && b.over(); i++ {
		s := ring[hand]
		hand = (hand + 1) % n
		if s.ref.Swap(false) {
			continue // second chance: touched since the last sweep
		}
		if s.entry.ResidentBytes() == 0 {
			continue // already empty; nothing to release
		}
		f := s.entry.Evict()
		freed += f
		b.evictions.Add(1)
		b.record("evict", s.key, f)
	}
	// Hard pass: still over budget with every entry recently touched —
	// concurrent traffic can re-set reference bits faster than the
	// second-chance pass clears them, sparing everything. The budget is a
	// cap, not a preference, so evict regardless of recency; victims
	// re-warm from traffic like any other evicted class.
	for i := 0; i < n && b.over(); i++ {
		s := ring[hand]
		hand = (hand + 1) % n
		if s.entry.ResidentBytes() == 0 {
			continue
		}
		f := s.entry.Evict()
		freed += f
		b.evictions.Add(1)
		b.record("evict", s.key, f)
	}
	b.mu.Lock()
	b.hand = hand
	b.mu.Unlock()
	return freed
}

// record appends one action to the bounded maintenance log.
func (b *Budgeted) record(kind, key string, freedBytes int64) {
	b.mu.Lock()
	b.log[b.logN%evictionLogSize] = EvictionRecord{
		Key:        key,
		Kind:       kind,
		FreedBytes: freedBytes,
		At:         b.now(),
	}
	b.logN++
	b.mu.Unlock()
}

// Stats implements ClassStore.
func (b *Budgeted) Stats() Stats {
	st := Stats{
		Budget:    b.budget,
		Resident:  b.m.acct.Usage(),
		Prunes:    b.prunes.Load(),
		Evictions: b.evictions.Load(),
	}
	b.ForEach(func(_ string, e Entry) bool {
		st.Classes++
		if e.ResidentBytes() > 0 {
			st.ResidentClasses++
		}
		return true
	})
	b.mu.Lock()
	total := b.logN
	kept := total
	if kept > evictionLogSize {
		kept = evictionLogSize
	}
	st.Log = make([]EvictionRecord, 0, kept)
	for i := total - kept; i < total; i++ {
		st.Log = append(st.Log, b.log[i%evictionLogSize])
	}
	b.mu.Unlock()
	return st
}
