// Disk tier: evicted classes are demoted to append-only segment files
// instead of being dropped, and faulted back in on demand.
//
// Layout: a spill directory holds numbered segment files
// (spill-00000001.seg, ...). Each record is framed as
//
//	magic "CBS1" | uvarint payloadLen | crc32(payload) LE | payload
//
// with the payload encoded by the blob codec (blob.go). An in-memory
// index maps class key → (segment, offset, length) for O(1) lookup;
// Take removes the index entry so a faulted-in class can never be
// resurrected from a stale blob by a later eviction — the next eviction
// appends a fresh record.
//
// Recovery re-opens the directory, scans record headers (key only, the
// body is skipped with a buffered discard) and rebuilds the index without
// touching payload bytes; bodies are faulted lazily. A torn tail — e.g. a
// crash mid-spill — stops that segment's scan at the last intact record;
// the torn record's class simply degrades to full responses and re-warms
// from traffic, exactly like a plain eviction.
//
// Segments recovered from disk are sealed: appends always go to a fresh
// segment, so offsets indexed during a scan stay valid forever. When
// MaxBytes is set, oldest-first segment deletion bounds the tier; classes
// whose only record lived in a dropped segment are counted as drops and
// degrade like plain evictions.
package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
)

const (
	// spillMagic frames v1 records (no edges section); spillMagicV2 frames
	// v2 records, whose payload carries the version-graph edges after the
	// refs. Appends always write v2; both decode, so a spill directory
	// written by an older build recovers losslessly (to edge-less classes).
	spillMagic          = "CBS1"
	spillMagicV2        = "CBS2"
	segmentPattern      = "spill-%08d.seg"
	defaultSegmentBytes = 4 << 20
	maxSpillPayload     = 1 << 30
)

// TierConfig configures the disk tier.
type TierConfig struct {
	// Dir is the spill directory; created if missing.
	Dir string
	// MaxBytes bounds total segment bytes on disk; 0 means unbounded.
	// Enforced by deleting oldest segments after each append.
	MaxBytes int64
	// SegmentBytes is the rotation threshold for the active segment.
	// Defaults to 4 MiB.
	SegmentBytes int64
}

// TierStats is the disk tier's observable state, embedded in the
// /_cbde/store snapshot.
type TierStats struct {
	Enabled        bool   `json:"enabled"`
	Dir            string `json:"dir,omitempty"`
	BudgetBytes    int64  `json:"budgetBytes"`
	DiskBytes      int64  `json:"diskBytes"`
	LiveBytes      int64  `json:"liveBytes"`
	Segments       int    `json:"segments"`
	SpilledClasses int    `json:"spilledClasses"`
	Spills         int64  `json:"spills"`
	FaultIns       int64  `json:"faultIns"`
	Drops          int64  `json:"drops"`
	Errors         int64  `json:"errors"`
}

type segment struct {
	id    int
	path  string
	f     *os.File
	size  int64 // logical end: bytes covered by intact records
	live  int64 // bytes of records still referenced by the index
	liveN int   // index entries pointing here
}

type blobRef struct {
	seg *segment
	off int64
	n   int64
}

// Tier is the spill store. All methods are safe for concurrent use.
type Tier struct {
	cfg TierConfig

	mu     sync.Mutex
	segs   []*segment // ascending id; the active segment, when any, is last
	active *segment   // nil until the first Append after open or rotation
	idx    map[string]blobRef
	nextID int
	closed bool

	spills atomic.Int64 // successful Appends
	takes  atomic.Int64 // successful Takes
	drops  atomic.Int64 // classes lost to budget compaction
	errs   atomic.Int64 // append/read/decode failures
}

// OpenTier opens (or creates) a spill directory and recovers its index by
// scanning segment headers. Payload bytes are not read.
func OpenTier(cfg TierConfig) (*Tier, error) {
	if cfg.Dir == "" {
		return nil, errors.New("store: spill tier requires a directory")
	}
	if cfg.SegmentBytes <= 0 {
		cfg.SegmentBytes = defaultSegmentBytes
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create spill dir: %w", err)
	}
	t := &Tier{cfg: cfg, idx: make(map[string]blobRef), nextID: 1}
	entries, err := os.ReadDir(cfg.Dir)
	if err != nil {
		return nil, err
	}
	var ids []int
	for _, e := range entries {
		var id int
		if n, err := fmt.Sscanf(e.Name(), segmentPattern, &id); n == 1 && err == nil {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	for _, id := range ids {
		seg := &segment{id: id, path: filepath.Join(cfg.Dir, fmt.Sprintf(segmentPattern, id))}
		f, err := os.Open(seg.path)
		if err != nil {
			return nil, fmt.Errorf("store: open segment: %w", err)
		}
		seg.f = f
		t.scanSegment(seg)
		t.segs = append(t.segs, seg)
		if id >= t.nextID {
			t.nextID = id + 1
		}
	}
	return t, nil
}

// countReader counts consumed bytes so the scan can index offsets while
// reading through bufio.
type countReader struct {
	r *bufio.Reader
	n int64
}

func (c *countReader) ReadByte() (byte, error) {
	b, err := c.r.ReadByte()
	if err == nil {
		c.n++
	}
	return b, err
}

func (c *countReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// scanSegment rebuilds index entries from seg, reading only framing and
// the leading key of each payload. Any malformed or short record ends the
// scan: everything after a torn record is unreachable by construction
// (records are appended strictly in order).
func (t *Tier) scanSegment(seg *segment) {
	if _, err := seg.f.Seek(0, io.SeekStart); err != nil {
		return
	}
	cr := &countReader{r: bufio.NewReaderSize(seg.f, 64<<10)}
	var magic [4]byte
	var crcb [4]byte
	for {
		off := cr.n
		if _, err := io.ReadFull(cr, magic[:]); err != nil {
			break
		}
		if string(magic[:]) != spillMagic && string(magic[:]) != spillMagicV2 {
			break
		}
		payloadLen, err := binary.ReadUvarint(cr)
		if err != nil || payloadLen > maxSpillPayload {
			break
		}
		if _, err := io.ReadFull(cr, crcb[:]); err != nil {
			break
		}
		payloadStart := cr.n
		keyLen, err := binary.ReadUvarint(cr)
		if err != nil || keyLen == 0 || keyLen > payloadLen {
			break
		}
		keyb := make([]byte, keyLen)
		if _, err := io.ReadFull(cr, keyb); err != nil {
			break
		}
		rest := int64(payloadLen) - (cr.n - payloadStart)
		if rest < 0 {
			break
		}
		if _, err := io.CopyN(io.Discard, cr, rest); err != nil {
			break // torn tail: payload shorter than its declared length
		}
		key := string(keyb)
		if old, ok := t.idx[key]; ok {
			old.seg.live -= old.n
			old.seg.liveN--
		}
		ref := blobRef{seg: seg, off: off, n: cr.n - off}
		t.idx[key] = ref
		seg.live += ref.n
		seg.liveN++
		seg.size = cr.n
	}
}

// Append spills one class record, replacing any earlier record for the
// same key (the earlier bytes become dead weight until compaction).
func (t *Tier) Append(rec ClassRecord) error {
	enc := getScratch()
	defer putScratch(enc)
	payload, err := appendRecordPayload(enc.buf[:0], &rec)
	enc.buf = payload
	if err != nil {
		t.errs.Add(1)
		return err
	}

	out := getScratch()
	defer putScratch(out)
	b := append(out.buf[:0], spillMagicV2...)
	b = binary.AppendUvarint(b, uint64(len(payload)))
	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(payload))
	b = append(b, payload...)
	out.buf = b

	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return errors.New("store: spill tier closed")
	}
	if t.active == nil {
		seg := &segment{id: t.nextID, path: filepath.Join(t.cfg.Dir, fmt.Sprintf(segmentPattern, t.nextID))}
		f, err := os.OpenFile(seg.path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			t.errs.Add(1)
			return fmt.Errorf("store: create segment: %w", err)
		}
		seg.f = f
		t.nextID++
		t.segs = append(t.segs, seg)
		t.active = seg
	}
	seg := t.active
	off := seg.size
	if _, err := seg.f.WriteAt(b, off); err != nil {
		// A short or failed write leaves a torn tail; truncate it away and
		// seal the segment so later appends cannot land after garbage.
		seg.f.Truncate(off)
		t.active = nil
		t.errs.Add(1)
		return fmt.Errorf("store: spill append: %w", err)
	}
	n := int64(len(b))
	if old, ok := t.idx[rec.Key]; ok {
		old.seg.live -= old.n
		old.seg.liveN--
	}
	seg.size += n
	seg.live += n
	seg.liveN++
	t.idx[rec.Key] = blobRef{seg: seg, off: off, n: n}
	t.spills.Add(1)
	if seg.size >= t.cfg.SegmentBytes {
		t.active = nil // sealed; the file stays open for reads
	}
	t.compactLocked(seg)
	return nil
}

// compactLocked deletes oldest segments until the tier fits MaxBytes,
// never touching the segment that just received an append.
func (t *Tier) compactLocked(keep *segment) {
	if t.cfg.MaxBytes <= 0 {
		return
	}
	for t.totalLocked() > t.cfg.MaxBytes && len(t.segs) > 0 && t.segs[0] != keep {
		t.dropSegmentLocked(t.segs[0])
	}
}

func (t *Tier) totalLocked() int64 {
	var n int64
	for _, s := range t.segs {
		n += s.size
	}
	return n
}

func (t *Tier) dropSegmentLocked(seg *segment) {
	for key, ref := range t.idx {
		if ref.seg == seg {
			delete(t.idx, key)
		}
	}
	t.drops.Add(int64(seg.liveN))
	seg.f.Close()
	os.Remove(seg.path)
	if t.active == seg {
		t.active = nil
	}
	for i, s := range t.segs {
		if s == seg {
			t.segs = append(t.segs[:i], t.segs[i+1:]...)
			break
		}
	}
}

// Contains reports whether a spill record exists for key.
func (t *Tier) Contains(key string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	_, ok := t.idx[key]
	return ok
}

// Len reports the number of spilled classes currently indexed.
func (t *Tier) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.idx)
}

// Take reads, verifies, and decodes the record for key, removing it from
// the index. A missing key returns ok=false with no error; a corrupt
// record (bad CRC, truncated body) is counted, removed, and also returns
// ok=false — the caller degrades exactly as if the class had been
// plainly evicted.
func (t *Tier) Take(key string) (ClassRecord, bool) {
	buf := getScratch()
	defer putScratch(buf)

	t.mu.Lock()
	ref, ok := t.idx[key]
	if !ok {
		t.mu.Unlock()
		return ClassRecord{}, false
	}
	delete(t.idx, key)
	ref.seg.live -= ref.n
	ref.seg.liveN--
	if cap(buf.buf) < int(ref.n) {
		buf.buf = make([]byte, ref.n)
	}
	b := buf.buf[:ref.n]
	_, err := ref.seg.f.ReadAt(b, ref.off)
	t.mu.Unlock()
	if err != nil {
		t.errs.Add(1)
		return ClassRecord{}, false
	}

	if len(b) < len(spillMagic) {
		t.errs.Add(1)
		return ClassRecord{}, false
	}
	hasEdges := false
	switch string(b[:len(spillMagic)]) {
	case spillMagic:
	case spillMagicV2:
		hasEdges = true
	default:
		t.errs.Add(1)
		return ClassRecord{}, false
	}
	rest := b[len(spillMagic):]
	payloadLen, un := binary.Uvarint(rest)
	if un <= 0 {
		t.errs.Add(1)
		return ClassRecord{}, false
	}
	rest = rest[un:]
	if len(rest) != 4+int(payloadLen) {
		t.errs.Add(1)
		return ClassRecord{}, false
	}
	crc := binary.LittleEndian.Uint32(rest[:4])
	payload := rest[4:]
	if crc32.ChecksumIEEE(payload) != crc {
		t.errs.Add(1)
		return ClassRecord{}, false
	}
	rec, err := decodeRecordPayload(payload, hasEdges)
	if err != nil {
		t.errs.Add(1)
		return ClassRecord{}, false
	}
	t.takes.Add(1)
	return rec, true
}

// Stats snapshots the tier. FaultIns is owned by the engine (a take only
// becomes a fault-in once the decoded record is actually installed) and
// is left zero here.
func (t *Tier) Stats() TierStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := TierStats{
		Enabled:        true,
		Dir:            t.cfg.Dir,
		BudgetBytes:    t.cfg.MaxBytes,
		Segments:       len(t.segs),
		SpilledClasses: len(t.idx),
		Spills:         t.spills.Load(),
		Drops:          t.drops.Load(),
		Errors:         t.errs.Load(),
	}
	for _, s := range t.segs {
		st.DiskBytes += s.size
		st.LiveBytes += s.live
	}
	return st
}

// Close closes all segment files. Further Appends fail; Takes return
// ok=false.
func (t *Tier) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	t.closed = true
	var first error
	for _, s := range t.segs {
		if err := s.f.Close(); err != nil && first == nil {
			first = err
		}
	}
	t.active = nil
	return first
}
