// Spill blob codec: one evicted class serialized as a compact binary
// record for the disk tier.
//
// A record payload is a sequence of length-prefixed sections:
//
//	uvarint keyLen, key bytes
//	uvarint distVersion
//	uvarint selectorVersion
//	uvarint tagLen, tag bytes
//	body(selector base)
//	uvarint baseCount, then per base: uvarint versionDelta (strictly
//	    ascending chain, delta from the previous version), body(bytes)
//	uvarint candCount, then per candidate: uvarint tagLen, tag, body
//	uvarint refCount, same shape as candidates
//	(v2 records only) uvarint edgeCount, then per edge: uvarint from,
//	    uvarint to, one flag byte (1 = payload is gzip-compressed on the
//	    wire), uvarint rawLen, uvarint payloadLen, payload bytes verbatim
//
// where body is: one flag byte (0 raw, 1 gzip), uvarint rawLen, then
// either rawLen raw bytes or uvarint storedLen + storedLen gzip bytes.
// Edge payloads are stored verbatim — they are wire-ready deltas,
// typically already gzipped, so the codec never recompresses them.
// Bodies are gzipped through the pooled internal/gzipx writers and only
// kept compressed when that is actually smaller. Encode and decode
// scratch is pooled so spilling does not disturb the warm-path alloc
// budget.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"

	"cbde/internal/gzipx"
)

// VersionedBlob is one retained base-file version inside a ClassRecord.
type VersionedBlob struct {
	Version int
	Bytes   []byte
}

// TaggedDoc is one stored selector sample (candidate or reference).
type TaggedDoc struct {
	Tag   string
	Bytes []byte
}

// EdgeBlob is one version-graph edge delta inside a ClassRecord: the
// wire-ready delta that rewrites base version From into base version To.
// Payload is stored exactly as it would be served (Gzipped reports whether
// it is gzip-compressed; RawLen is the uncompressed delta length, used by
// the chain-size estimator).
type EdgeBlob struct {
	From    int
	To      int
	Payload []byte
	Gzipped bool
	RawLen  int
}

// ClassRecord is the spillable state of one class: everything needed to
// fault the class back in and resume serving deltas against the versions
// clients already hold. Grouping state is deliberately not included — a
// class key plus its (version → bytes) map is sufficient for delta
// correctness, and grouping re-mints deterministically from traffic.
type ClassRecord struct {
	Key             string
	DistVersion     int
	SelectorVersion int
	SelectorTag     string
	SelectorBase    []byte
	Bases           []VersionedBlob // ascending Version
	Candidates      []TaggedDoc
	Refs            []TaggedDoc
	Edges           []EdgeBlob // version-graph edges between retained bases
}

// MemoryBytes reports the payload bytes the record would re-charge to the
// Accountant on fault-in (bases + selector base + samples).
func (r *ClassRecord) MemoryBytes() int64 {
	n := int64(len(r.SelectorBase))
	for _, b := range r.Bases {
		n += int64(len(b.Bytes))
	}
	for _, c := range r.Candidates {
		n += int64(len(c.Bytes))
	}
	for _, c := range r.Refs {
		n += int64(len(c.Bytes))
	}
	for _, e := range r.Edges {
		n += int64(len(e.Payload))
	}
	return n
}

const (
	bodyRaw  = 0
	bodyGzip = 1

	// spillGzipMin is the smallest body worth attempting to compress;
	// below this the gzip header alone erases any win.
	spillGzipMin = 64

	// maxSpillSection bounds every decoded count and length so a corrupt
	// or adversarial record cannot drive huge allocations.
	maxSpillSection = 1 << 30
)

var errCorruptRecord = errors.New("store: corrupt spill record")

// scratch is a pooled byte buffer shared by the blob encoder (record
// assembly and gzip staging) and the tier's record reader.
type scratch struct{ buf []byte }

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

func getScratch() *scratch  { return scratchPool.Get().(*scratch) }
func putScratch(s *scratch) { scratchPool.Put(s) }

// appendBody encodes one body section, compressing through the pooled
// gzipx writer when that wins.
func appendBody(dst []byte, data []byte) []byte {
	if len(data) >= spillGzipMin {
		st := getScratch()
		st.buf = gzipx.AppendCompress(st.buf[:0], data)
		if len(st.buf) < len(data) {
			dst = append(dst, bodyGzip)
			dst = binary.AppendUvarint(dst, uint64(len(data)))
			dst = binary.AppendUvarint(dst, uint64(len(st.buf)))
			dst = append(dst, st.buf...)
			putScratch(st)
			return dst
		}
		putScratch(st)
	}
	dst = append(dst, bodyRaw)
	dst = binary.AppendUvarint(dst, uint64(len(data)))
	return append(dst, data...)
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// appendRecordPayload serializes rec into dst and returns the extended
// slice. Bases are sorted in place; versions must be non-negative and
// distinct.
func appendRecordPayload(dst []byte, rec *ClassRecord) ([]byte, error) {
	if rec.Key == "" {
		return dst, errors.New("store: spill record without key")
	}
	if rec.DistVersion < 0 || rec.SelectorVersion < 0 {
		return dst, errors.New("store: negative version in spill record")
	}
	sort.Slice(rec.Bases, func(i, j int) bool { return rec.Bases[i].Version < rec.Bases[j].Version })
	dst = appendString(dst, rec.Key)
	dst = binary.AppendUvarint(dst, uint64(rec.DistVersion))
	dst = binary.AppendUvarint(dst, uint64(rec.SelectorVersion))
	dst = appendString(dst, rec.SelectorTag)
	dst = appendBody(dst, rec.SelectorBase)
	dst = binary.AppendUvarint(dst, uint64(len(rec.Bases)))
	prev := 0
	for i, b := range rec.Bases {
		if b.Version < 0 || (i > 0 && b.Version <= prev) {
			return dst, fmt.Errorf("store: spill record base versions not strictly ascending (%d after %d)", b.Version, prev)
		}
		dst = binary.AppendUvarint(dst, uint64(b.Version-prev))
		prev = b.Version
		dst = appendBody(dst, b.Bytes)
	}
	for _, docs := range [][]TaggedDoc{rec.Candidates, rec.Refs} {
		dst = binary.AppendUvarint(dst, uint64(len(docs)))
		for _, d := range docs {
			dst = appendString(dst, d.Tag)
			dst = appendBody(dst, d.Bytes)
		}
	}
	dst = binary.AppendUvarint(dst, uint64(len(rec.Edges)))
	for _, e := range rec.Edges {
		if e.From < 0 || e.To < 0 || e.RawLen < 0 {
			return dst, errors.New("store: negative edge field in spill record")
		}
		dst = binary.AppendUvarint(dst, uint64(e.From))
		dst = binary.AppendUvarint(dst, uint64(e.To))
		flag := byte(bodyRaw)
		if e.Gzipped {
			flag = bodyGzip
		}
		dst = append(dst, flag)
		dst = binary.AppendUvarint(dst, uint64(e.RawLen))
		dst = binary.AppendUvarint(dst, uint64(len(e.Payload)))
		dst = append(dst, e.Payload...)
	}
	return dst, nil
}

// cursor walks a decoded payload with latched bounds checking: after any
// failed read ok() is false and every further read returns zero values.
type cursor struct {
	b   []byte
	off int
	bad bool
}

func (c *cursor) fail() { c.bad = true }

func (c *cursor) uvarint() uint64 {
	if c.bad {
		return 0
	}
	v, n := binary.Uvarint(c.b[c.off:])
	if n <= 0 {
		c.fail()
		return 0
	}
	c.off += n
	return v
}

// length reads a uvarint and validates it as an allocation-safe length
// bounded by the bytes actually remaining.
func (c *cursor) length() int {
	v := c.uvarint()
	if c.bad {
		return 0
	}
	if v > maxSpillSection || v > uint64(len(c.b)-c.off) {
		c.fail()
		return 0
	}
	return int(v)
}

// take returns the next n bytes as a subslice of the underlying buffer.
func (c *cursor) take(n int) []byte {
	if c.bad || n < 0 || n > len(c.b)-c.off {
		c.fail()
		return nil
	}
	b := c.b[c.off : c.off+n]
	c.off += n
	return b
}

func (c *cursor) str() string { return string(c.take(c.length())) }

func (c *cursor) byte() byte {
	b := c.take(1)
	if c.bad {
		return 0
	}
	return b[0]
}

// body decodes one body section into freshly owned bytes (the cursor's
// buffer is pooled and reused).
func (c *cursor) body() []byte {
	flag := c.byte()
	rawLen := c.uvarint()
	if c.bad || rawLen > maxSpillSection {
		c.fail()
		return nil
	}
	switch flag {
	case bodyRaw:
		stored := c.take(int(rawLen))
		if c.bad {
			return nil
		}
		if rawLen == 0 {
			return nil
		}
		out := make([]byte, rawLen)
		copy(out, stored)
		return out
	case bodyGzip:
		stored := c.take(c.length())
		if c.bad {
			return nil
		}
		out, err := gzipx.Decompress(stored)
		if err != nil || uint64(len(out)) != rawLen {
			c.fail()
			return nil
		}
		return out
	default:
		c.fail()
		return nil
	}
}

// decodeRecordPayload parses one record payload. hasEdges selects the v2
// layout (CBS2 framing), which appends an edges section after the refs;
// v1 payloads end at the refs and decode to an edge-less record. The input
// buffer may be pooled: all returned byte slices are freshly allocated.
func decodeRecordPayload(data []byte, hasEdges bool) (ClassRecord, error) {
	c := &cursor{b: data}
	var rec ClassRecord
	rec.Key = c.str()
	rec.DistVersion = int(c.uvarint())
	rec.SelectorVersion = int(c.uvarint())
	rec.SelectorTag = c.str()
	rec.SelectorBase = c.body()
	nBases := c.length()
	prev := 0
	for i := 0; i < nBases && !c.bad; i++ {
		d := c.uvarint()
		if d > maxSpillSection || (i > 0 && d == 0) {
			c.fail()
			break
		}
		prev += int(d)
		rec.Bases = append(rec.Bases, VersionedBlob{Version: prev, Bytes: c.body()})
	}
	for _, dst := range []*[]TaggedDoc{&rec.Candidates, &rec.Refs} {
		n := c.length()
		for i := 0; i < n && !c.bad; i++ {
			*dst = append(*dst, TaggedDoc{Tag: c.str(), Bytes: c.body()})
		}
	}
	if hasEdges {
		nEdges := c.length()
		for i := 0; i < nEdges && !c.bad; i++ {
			var e EdgeBlob
			e.From = int(c.uvarint())
			e.To = int(c.uvarint())
			switch c.byte() {
			case bodyRaw:
			case bodyGzip:
				e.Gzipped = true
			default:
				c.fail()
			}
			rawLen := c.uvarint()
			if rawLen > maxSpillSection {
				c.fail()
			}
			e.RawLen = int(rawLen)
			stored := c.take(c.length())
			if c.bad {
				break
			}
			if len(stored) > 0 {
				e.Payload = make([]byte, len(stored))
				copy(e.Payload, stored)
			}
			rec.Edges = append(rec.Edges, e)
		}
	}
	if c.bad || rec.Key == "" || c.off != len(data) {
		return ClassRecord{}, errCorruptRecord
	}
	return rec, nil
}
