package store

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzSpillRoundTrip drives arbitrary class states through the spill
// codec and asserts the evict→spill→fault-in contract: byte-identical
// bases and a monotone (never decreasing) version counter.
func FuzzSpillRoundTrip(f *testing.F) {
	f.Add([]byte("seed"), uint16(3), uint8(2), uint8(1), uint8(1))
	f.Add(bytes.Repeat([]byte("abc"), 200), uint16(65000), uint8(4), uint8(3), uint8(0))
	f.Add([]byte{}, uint16(0), uint8(0), uint8(0), uint8(0))
	f.Fuzz(func(t *testing.T, seed []byte, ver uint16, nBases, nCands, nRefs uint8) {
		// Derive deterministic, bounded state from the fuzz input.
		doc := func(i int) []byte {
			if len(seed) == 0 {
				return nil
			}
			out := make([]byte, 0, len(seed)+8)
			out = binary.AppendUvarint(out, uint64(i))
			rot := i % len(seed)
			out = append(out, seed[rot:]...)
			return append(out, seed[:rot]...)
		}
		rec := ClassRecord{
			Key:             "fuzz#1",
			DistVersion:     int(ver),
			SelectorVersion: int(ver),
			SelectorTag:     string(seed[:min(len(seed), 32)]),
			SelectorBase:    doc(0),
		}
		for i := 0; i < int(nBases%8); i++ {
			rec.Bases = append(rec.Bases, VersionedBlob{Version: int(ver) + i, Bytes: doc(i + 1)})
		}
		for i := 0; i < int(nCands%8); i++ {
			rec.Candidates = append(rec.Candidates, TaggedDoc{Tag: string(doc(i)), Bytes: doc(i + 100)})
		}
		for i := 0; i < int(nRefs%8); i++ {
			rec.Refs = append(rec.Refs, TaggedDoc{Tag: string(doc(i)), Bytes: doc(i + 200)})
		}
		for i := 0; i+1 < len(rec.Bases); i++ {
			rec.Edges = append(rec.Edges, EdgeBlob{
				From:    rec.Bases[i].Version,
				To:      rec.Bases[i+1].Version,
				Payload: doc(i + 300),
				Gzipped: i%2 == 0,
				RawLen:  len(doc(i + 300)),
			})
		}

		payload, err := appendRecordPayload(nil, &rec)
		if err != nil {
			t.Fatalf("encode rejected a well-formed record: %v", err)
		}
		got, err := decodeRecordPayload(payload, true)
		if err != nil {
			t.Fatalf("decode of fresh payload failed: %v", err)
		}
		if got.SelectorVersion < rec.SelectorVersion || got.DistVersion != rec.DistVersion {
			t.Fatalf("version counter regressed: got sel=%d dist=%d, want sel=%d dist=%d",
				got.SelectorVersion, got.DistVersion, rec.SelectorVersion, rec.DistVersion)
		}
		if !bytes.Equal(got.SelectorBase, rec.SelectorBase) {
			t.Fatal("selector base not byte-identical")
		}
		if len(got.Bases) != len(rec.Bases) {
			t.Fatalf("base count %d != %d", len(got.Bases), len(rec.Bases))
		}
		for i := range rec.Bases {
			if got.Bases[i].Version != rec.Bases[i].Version {
				t.Fatalf("base %d version %d != %d", i, got.Bases[i].Version, rec.Bases[i].Version)
			}
			if !bytes.Equal(got.Bases[i].Bytes, rec.Bases[i].Bytes) {
				t.Fatalf("base %d bytes not identical", i)
			}
		}
		if len(got.Candidates) != len(rec.Candidates) || len(got.Refs) != len(rec.Refs) {
			t.Fatal("sample counts changed")
		}
		for i := range rec.Candidates {
			if got.Candidates[i].Tag != rec.Candidates[i].Tag || !bytes.Equal(got.Candidates[i].Bytes, rec.Candidates[i].Bytes) {
				t.Fatalf("candidate %d not identical", i)
			}
		}
		if len(got.Edges) != len(rec.Edges) {
			t.Fatalf("edge count %d != %d", len(got.Edges), len(rec.Edges))
		}
		for i := range rec.Edges {
			g, w := got.Edges[i], rec.Edges[i]
			if g.From != w.From || g.To != w.To || g.Gzipped != w.Gzipped || g.RawLen != w.RawLen || !bytes.Equal(g.Payload, w.Payload) {
				t.Fatalf("edge %d not identical", i)
			}
		}

		// Decoding arbitrary bytes must never panic; errors are fine.
		decodeRecordPayload(seed, true)
		decodeRecordPayload(seed, false)
		if len(payload) > 1 {
			decodeRecordPayload(payload[:len(payload)/2], true)
		}
	})
}
