// Package store is the ownership layer for the engine's per-class serving
// state. The paper's scalability argument is that a delta-server stores one
// base-file per class instead of one per document — but "one per class" is
// still unbounded when classes keep arriving, so production storage must be
// a governed resource: every resident byte is accounted, and a configurable
// budget triggers graceful degradation (base-version pruning, then whole-
// class eviction) instead of unbounded growth.
//
// The package provides:
//
//   - Accountant: a byte-accurate, category-split ledger (distributable
//     base versions, selector-held documents, codec indexes) updated with
//     atomics by the owning entries.
//   - ClassStore: the interface the engine programs against — a sharded
//     key→Entry map plus the accountant and a Maintain hook.
//   - Map: the default implementation, the unbudgeted sharded map the
//     engine always had. Maintain is a no-op.
//   - Budgeted: a Map governed by a byte budget. Maintain prunes redundant
//     per-class payload first, then runs CLOCK (second-chance) eviction of
//     whole classes until resident bytes fit the budget again, keeping an
//     eviction log for the admin endpoint.
//
// Entries are never deleted from the map: eviction strips an entry's
// payload (Entry.Evict) and leaves the entry resident so its identity,
// counters, and version numbering survive — the degradation contract is
// that an evicted class falls back to full responses and re-warms from
// traffic, never erroring and never reusing a version number.
package store

import (
	"sync"
	"sync/atomic"
)

// Usage is a point-in-time snapshot of the accountant's ledger.
type Usage struct {
	// BaseBytes is distributable (installed) base-file version bytes.
	BaseBytes int64 `json:"baseBytes"`
	// CandBytes is selector-held document bytes: sampled candidates,
	// reference samples, and the selector's working base.
	CandBytes int64 `json:"candidateBytes"`
	// IndexBytes is codec index bytes built over installed base versions.
	IndexBytes int64 `json:"indexBytes"`
	// DeltaBytes is memoized compressed-delta bytes retained by the
	// per-class delta caches.
	DeltaBytes int64 `json:"deltaBytes"`
	// EdgeBytes is version-graph edge-delta bytes: cached deltas between
	// adjacent retained base versions, reused to compose chains.
	EdgeBytes int64 `json:"edgeBytes"`
	// Total is the sum of the categories.
	Total int64 `json:"total"`
}

// Accountant tracks resident bytes by category. All methods are atomic and
// safe for concurrent use; deltas may be negative. The zero value is ready
// to use.
type Accountant struct {
	base  atomic.Int64
	cand  atomic.Int64
	index atomic.Int64
	delta atomic.Int64
	edge  atomic.Int64
}

// AddBase adjusts the distributable base-version byte count.
func (a *Accountant) AddBase(delta int64) { a.base.Add(delta) }

// AddCand adjusts the selector-held document byte count.
func (a *Accountant) AddCand(delta int64) { a.cand.Add(delta) }

// AddIndex adjusts the codec index byte count.
func (a *Accountant) AddIndex(delta int64) { a.index.Add(delta) }

// AddDelta adjusts the memoized-delta byte count.
func (a *Accountant) AddDelta(delta int64) { a.delta.Add(delta) }

// AddEdge adjusts the version-graph edge-delta byte count.
func (a *Accountant) AddEdge(delta int64) { a.edge.Add(delta) }

// Total returns the resident byte total across all categories.
func (a *Accountant) Total() int64 {
	return a.base.Load() + a.cand.Load() + a.index.Load() + a.delta.Load() + a.edge.Load()
}

// Usage returns a snapshot of the ledger. The categories are read
// independently, so a concurrent mutation can skew Total by one in-flight
// delta; callers use it for reporting, not enforcement.
func (a *Accountant) Usage() Usage {
	u := Usage{
		BaseBytes:  a.base.Load(),
		CandBytes:  a.cand.Load(),
		IndexBytes: a.index.Load(),
		DeltaBytes: a.delta.Load(),
		EdgeBytes:  a.edge.Load(),
	}
	u.Total = u.BaseBytes + u.CandBytes + u.IndexBytes + u.DeltaBytes + u.EdgeBytes
	return u
}

// Entry is one class's serving state as the store sees it: a resident-byte
// ledger plus two levels of release. Implementations must be safe for
// concurrent use and must keep the owning Accountant in sync with every
// byte they retain or release.
type Entry interface {
	// ResidentBytes reports the entry's current resident footprint.
	ResidentBytes() int64
	// Prune drops redundant payload — old base-file versions, sampled
	// candidate documents — while keeping the entry serving deltas
	// against its newest base. Returns the bytes freed.
	Prune() int64
	// Evict drops all resident payload. The entry must keep serving
	// (full responses) and re-warm from traffic; version numbering must
	// survive so a re-warmed entry never reuses a version. Returns the
	// bytes freed.
	Evict() int64
}

// ClassStore owns the key→Entry table. Implementations are safe for
// concurrent use.
type ClassStore interface {
	// Get returns the entry for key, if present, marking it
	// recently-used for the eviction policy.
	Get(key string) (Entry, bool)
	// GetOrCreate returns the entry for key, calling create (exactly
	// once per key) to make it when absent. created reports whether this
	// call created it.
	GetOrCreate(key string, create func() Entry) (e Entry, created bool)
	// ForEach calls fn for every entry until fn returns false. fn runs
	// with internal locks held and must not call back into the store.
	ForEach(fn func(key string, e Entry) bool)
	// Len returns the number of entries.
	Len() int
	// Accountant returns the store's byte ledger. Entries update it.
	Accountant() *Accountant
	// Maintain enforces the store's budget, if any: over budget it
	// prunes and then evicts entries until resident bytes fit again.
	// Returns the bytes freed (0 when under budget or unbudgeted). Call
	// it with no entry locks held.
	Maintain() int64
	// Budget returns the byte budget, or 0 when unbudgeted.
	Budget() int64
	// Stats snapshots the store for reporting.
	Stats() Stats
}

// Stats is a reporting snapshot of a ClassStore.
type Stats struct {
	// Budget is the byte budget (0 = unbudgeted).
	Budget int64 `json:"budget"`
	// Resident is the accountant's current ledger.
	Resident Usage `json:"residentBytes"`
	// Classes is the number of entries (resident or evicted).
	Classes int `json:"classes"`
	// ResidentClasses is the number of entries with resident payload.
	ResidentClasses int `json:"residentClasses"`
	// Prunes and Evictions count budget-driven maintenance actions.
	Prunes    int64 `json:"prunes"`
	Evictions int64 `json:"evictions"`
	// Log is the most recent maintenance actions, oldest first.
	Log []EvictionRecord `json:"recentEvictions,omitempty"`
}

// shardCount sizes the sharded table. A power of two so the shard pick is
// a mask; 64 shards keep cross-class contention negligible well past the
// goroutine counts a delta-server front runs.
const shardCount = 64

// shardOf maps a key to its shard index (FNV-1a).
func shardOf(key string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return h & (shardCount - 1)
}

// slot wraps one entry with its CLOCK reference bit.
type slot struct {
	key   string
	entry Entry
	ref   atomic.Bool // set on access, cleared by the eviction sweep
}

type mapShard struct {
	mu    sync.RWMutex
	slots map[string]*slot
}

// Map is the default ClassStore: the sharded map the engine always used,
// with no budget. Maintain is a no-op.
type Map struct {
	acct   Accountant
	shards [shardCount]mapShard

	// onCreate, when set (by Budgeted), registers every new slot with the
	// eviction ring. Called under the shard write lock.
	onCreate func(*slot)
}

var _ ClassStore = (*Map)(nil)

// NewMap returns an empty unbudgeted store.
func NewMap() *Map {
	m := &Map{}
	for i := range m.shards {
		m.shards[i].slots = make(map[string]*slot)
	}
	return m
}

// Get implements ClassStore. The fast path is one shard read lock and one
// atomic store for the reference bit; it does not allocate.
func (m *Map) Get(key string) (Entry, bool) {
	sh := &m.shards[shardOf(key)]
	sh.mu.RLock()
	s := sh.slots[key]
	sh.mu.RUnlock()
	if s == nil {
		return nil, false
	}
	s.ref.Store(true)
	return s.entry, true
}

// GetOrCreate implements ClassStore. The fast path is Get; creation
// re-checks under the shard write lock so create runs exactly once per key.
func (m *Map) GetOrCreate(key string, create func() Entry) (Entry, bool) {
	if e, ok := m.Get(key); ok {
		return e, false
	}
	sh := &m.shards[shardOf(key)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if s, ok := sh.slots[key]; ok {
		s.ref.Store(true)
		return s.entry, false
	}
	s := &slot{key: key, entry: create()}
	s.ref.Store(true)
	sh.slots[key] = s
	if m.onCreate != nil {
		m.onCreate(s)
	}
	return s.entry, true
}

// ForEach implements ClassStore.
func (m *Map) ForEach(fn func(key string, e Entry) bool) {
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		for k, s := range sh.slots {
			if !fn(k, s.entry) {
				sh.mu.RUnlock()
				return
			}
		}
		sh.mu.RUnlock()
	}
}

// Len implements ClassStore.
func (m *Map) Len() int {
	n := 0
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		n += len(sh.slots)
		sh.mu.RUnlock()
	}
	return n
}

// Accountant implements ClassStore.
func (m *Map) Accountant() *Accountant { return &m.acct }

// Maintain implements ClassStore: the unbudgeted store never evicts.
func (m *Map) Maintain() int64 { return 0 }

// Budget implements ClassStore.
func (m *Map) Budget() int64 { return 0 }

// Stats implements ClassStore.
func (m *Map) Stats() Stats {
	st := Stats{Resident: m.acct.Usage()}
	m.ForEach(func(string, Entry) bool {
		st.Classes++
		return true
	})
	// The unbudgeted store never evicts, so every entry is resident.
	st.ResidentClasses = st.Classes
	return st
}
