// Package anonymize implements the base-file anonymization process of
// Section V.
//
// A class's base-file is distributed to (and stored by) many clients, so it
// must not carry private information such as credit-card numbers. The
// process compares the base-file against the documents of N requests from
// distinct users, counts for every aligned byte-chunk of the base-file how
// often it was common with another user's document, and removes chunks seen
// fewer than M times. Private information is unique to a user, so it is
// never common with other users' documents and is always removed; M > 1
// additionally protects information shared by a few users (e.g. corporate
// credit cards).
package anonymize

import (
	"errors"
	"fmt"
	"sync"

	"cbde/internal/vdelta"
)

// Defaults follow the paper's rule of thumb that N should be at least twice
// M, and Table IV's middle configuration.
const (
	DefaultChunkSize = 4
	DefaultM         = 2
	DefaultN         = 5
	// DefaultMatchRun is the minimum common-substring length for a chunk
	// to count as common with another user's document. Vdelta seeds
	// matches with chunk hashes but uses maximally extended runs; bare
	// chunk-width occurrences would count incidental collisions ("the ",
	// "<div") as common and leave private regions in place.
	DefaultMatchRun = 16
)

// ErrNotDone is returned by Result before N distinct-user comparisons have
// completed: an un-anonymized base-file must never be distributed.
var ErrNotDone = errors.New("anonymize: process has not seen N distinct users yet")

// Config parametrizes an anonymization Process.
type Config struct {
	// ChunkSize is the width of the base-file byte-chunks whose
	// commonality is counted. The paper uses Vdelta's four-byte chunks.
	ChunkSize int
	// M is the minimum number of distinct-user documents a chunk must be
	// common with to survive. M=0 disables anonymization (no privacy),
	// M=1 is the basic scheme, larger M (<= N) increases privacy at the
	// cost of smaller base-files and larger deltas.
	M int
	// N is the number of distinct-user comparisons required before the
	// anonymized base-file can be produced. Rule of thumb: N >= 2*M.
	N int
	// MatchRun is the minimum common-substring length for a base chunk to
	// count as common with a compared document. Default 16; values at or
	// below ChunkSize reduce to bare chunk occurrence (the literal paper
	// formulation).
	MatchRun int
}

func (c Config) withDefaults() Config {
	if c.ChunkSize <= 0 {
		c.ChunkSize = DefaultChunkSize
	}
	if c.M < 0 {
		c.M = DefaultM
	}
	if c.N <= 0 {
		c.N = DefaultN
	}
	if c.M > c.N {
		c.M = c.N
	}
	if c.MatchRun == 0 {
		c.MatchRun = DefaultMatchRun
	}
	return c
}

// Process anonymizes one base-file. It is safe for concurrent use.
type Process struct {
	cfg   Config
	base  []byte
	owner string

	mu          sync.Mutex
	counters    []int
	users       map[string]struct{}
	comparisons int
}

// NewProcess starts anonymizing base. ownerID identifies the user whose
// request produced the base-file; per footnote 5, comparisons against that
// user's own documents do not count.
func NewProcess(base []byte, ownerID string, cfg Config) *Process {
	cfg = cfg.withDefaults()
	numChunks := (len(base) + cfg.ChunkSize - 1) / cfg.ChunkSize
	b := make([]byte, len(base))
	copy(b, base)
	return &Process{
		cfg:      cfg,
		base:     b,
		owner:    ownerID,
		counters: make([]int, numChunks),
		users:    make(map[string]struct{}),
	}
}

// Compare feeds one document into the process. It increments the counters
// of every base-file chunk common between the base-file and doc, provided
// userID is a new distinct user different from the base-file's owner.
// It reports whether the comparison counted toward the N required.
func (p *Process) Compare(doc []byte, userID string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.comparisons >= p.cfg.N {
		return false
	}
	if userID == p.owner {
		return false
	}
	if _, seen := p.users[userID]; seen {
		return false
	}
	p.users[userID] = struct{}{}
	p.comparisons++

	common := vdelta.CommonChunksRun(p.base, doc, p.cfg.ChunkSize, p.cfg.MatchRun)
	for i, c := range common {
		if c {
			p.counters[i]++
		}
	}
	return true
}

// Done reports whether the required N distinct-user comparisons completed.
func (p *Process) Done() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.comparisons >= p.cfg.N
}

// Progress returns how many comparisons have completed and how many are
// required.
func (p *Process) Progress() (done, needed int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.comparisons, p.cfg.N
}

// Result returns the anonymized base-file: the concatenation of the chunks
// whose counters reached M. It returns ErrNotDone until N comparisons have
// completed, because distributing an un-anonymized base-file would leak
// private data.
func (p *Process) Result() ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.comparisons < p.cfg.N {
		return nil, fmt.Errorf("%w (%d of %d)", ErrNotDone, p.comparisons, p.cfg.N)
	}
	if p.cfg.M == 0 {
		out := make([]byte, len(p.base))
		copy(out, p.base)
		return out, nil
	}
	out := make([]byte, 0, len(p.base))
	for ci, count := range p.counters {
		if count < p.cfg.M {
			continue
		}
		lo := ci * p.cfg.ChunkSize
		hi := lo + p.cfg.ChunkSize
		if hi > len(p.base) {
			hi = len(p.base)
		}
		out = append(out, p.base[lo:hi]...)
	}
	return out, nil
}

// ChunkCounters returns a copy of the per-chunk commonality counters, for
// experiments and debugging.
func (p *Process) ChunkCounters() []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]int, len(p.counters))
	copy(out, p.counters)
	return out
}

// Anonymize is a one-shot convenience: it runs a full process over docs
// (attributed to synthetic distinct users) and returns the anonymized
// base-file. Only the first cfg.N documents are used; it returns ErrNotDone
// if fewer are supplied.
func Anonymize(base []byte, docs [][]byte, cfg Config) ([]byte, error) {
	p := NewProcess(base, "__owner__", cfg)
	for i, doc := range docs {
		p.Compare(doc, fmt.Sprintf("user-%d", i))
		if p.Done() {
			break
		}
	}
	return p.Result()
}
