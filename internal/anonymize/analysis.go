package anonymize

import "math"

// PrivacyBoundIID evaluates the paper's upper bound on the probability that
// private information survives anonymization when each of the N compared
// documents independently shares the private data with probability p
// (Section V):
//
//	P_error <= (N*e/M)^M * p^M
//
// For p=0.01, N=10, M=5 the bound is about 4.7e-7. The result is capped at
// 1.
func PrivacyBoundIID(n, m int, p float64) float64 {
	if m <= 0 {
		return 1
	}
	b := math.Pow(float64(n)*math.E/float64(m), float64(m)) * math.Pow(p, float64(m))
	return math.Min(1, b)
}

// PrivacyExact computes the exact probability P(X >= M) for X binomial with
// parameters N and p: the probability that at least M of the N compared
// documents share the private information, so that the M-threshold fails to
// remove it. For p=0.01, N=10, M=5 this is about 2.4e-8.
func PrivacyExact(n, m int, p float64) float64 {
	if m <= 0 {
		return 1
	}
	if m > n {
		return 0
	}
	total := 0.0
	for i := m; i <= n; i++ {
		total += math.Exp(logBinomial(n, i)) * math.Pow(p, float64(i)) * math.Pow(1-p, float64(n-i))
	}
	return math.Min(1, total)
}

// PrivacyBoundDecaying evaluates the bound under the more realistic model in
// which the probability of the j-th document sharing the private data decays
// as p_j = p^j (repeat sharing is ever less likely):
//
//	P_error <= (N*e/M)^M * p^(M(M+1)/2)
func PrivacyBoundDecaying(n, m int, p float64) float64 {
	if m <= 0 {
		return 1
	}
	exp := float64(m*(m+1)) / 2
	b := math.Pow(float64(n)*math.E/float64(m), float64(m)) * math.Pow(p, exp)
	return math.Min(1, b)
}

func logBinomial(n, k int) float64 {
	return logFact(n) - logFact(k) - logFact(n-k)
}

func logFact(n int) float64 {
	total := 0.0
	for i := 2; i <= n; i++ {
		total += math.Log(float64(i))
	}
	return total
}
