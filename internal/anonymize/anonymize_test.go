package anonymize

import (
	"bytes"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"strings"
	"sync"
	"testing"
)

// cardFor derives a unique fake credit-card number per user.
func cardFor(user string) string {
	h := fnv.New64a()
	h.Write([]byte(user))
	v := h.Sum64()
	return fmt.Sprintf("4111-%04d-%04d-%04d", v%10000, (v/10000)%10000, (v/100000000)%10000)
}

// personalDoc builds a document with a shared template and a per-user
// private section (a fake credit card number).
func personalDoc(user string) []byte {
	return []byte("<html><body><h1>Account page</h1>" +
		"<p>Welcome back, " + user + "!</p>" +
		"<p>Card on file: " + cardFor(user) + "</p>" +
		"<div>" + strings.Repeat("shared catalog content block. ", 40) + "</div>" +
		"</body></html>")
}

func TestAnonymizationRemovesPrivateData(t *testing.T) {
	base := personalDoc("alice-owner")
	p := NewProcess(base, "alice-owner", Config{M: 1, N: 4})
	for _, u := range []string{"bob", "carol", "dave", "erin"} {
		if !p.Compare(personalDoc(u), u) {
			t.Fatalf("comparison for %s did not count", u)
		}
	}
	anon, err := p.Result()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(anon, []byte("alice-owner")) {
		t.Error("anonymized base still contains the owner's user name")
	}
	if bytes.Contains(anon, []byte(cardFor("alice-owner"))) {
		t.Error("anonymized base still contains the owner's card number")
	}
	if !bytes.Contains(anon, []byte("shared catalog content block")) {
		t.Error("anonymization removed shared (useful) content")
	}
	if len(anon) >= len(base) {
		t.Errorf("anonymized base (%d bytes) not smaller than original (%d)", len(anon), len(base))
	}
}

func TestResultBeforeDoneFails(t *testing.T) {
	p := NewProcess(personalDoc("o"), "o", Config{M: 1, N: 3})
	p.Compare(personalDoc("x"), "x")
	if _, err := p.Result(); !errors.Is(err, ErrNotDone) {
		t.Errorf("got %v, want ErrNotDone", err)
	}
	done, needed := p.Progress()
	if done != 1 || needed != 3 {
		t.Errorf("Progress() = %d/%d, want 1/3", done, needed)
	}
}

func TestOwnerComparisonsDoNotCount(t *testing.T) {
	p := NewProcess(personalDoc("owner"), "owner", Config{M: 1, N: 2})
	if p.Compare(personalDoc("owner"), "owner") {
		t.Error("owner's own document must not count (footnote 5)")
	}
	if p.Done() {
		t.Error("process done after zero valid comparisons")
	}
}

func TestDuplicateUsersDoNotCount(t *testing.T) {
	p := NewProcess(personalDoc("o"), "o", Config{M: 1, N: 3})
	if !p.Compare(personalDoc("bob"), "bob") {
		t.Fatal("first bob comparison should count")
	}
	if p.Compare(personalDoc("bob"), "bob") {
		t.Error("repeat user must not count: users must be distinct")
	}
	done, _ := p.Progress()
	if done != 1 {
		t.Errorf("comparisons = %d, want 1", done)
	}
}

func TestComparisonsStopAtN(t *testing.T) {
	p := NewProcess(personalDoc("o"), "o", Config{M: 1, N: 2})
	p.Compare(personalDoc("a"), "a")
	p.Compare(personalDoc("b"), "b")
	if p.Compare(personalDoc("c"), "c") {
		t.Error("comparison counted beyond N")
	}
	if !p.Done() {
		t.Error("process should be done after N comparisons")
	}
}

func TestMZeroKeepsEverything(t *testing.T) {
	base := personalDoc("owner")
	anon, err := Anonymize(base, [][]byte{personalDoc("a"), personalDoc("b")}, Config{M: 0, N: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(anon, base) {
		t.Error("M=0 (no privacy) must keep the base-file unchanged")
	}
}

func TestHigherMRemovesMore(t *testing.T) {
	// Content shared by exactly 2 of 6 users survives M=2 but not M=3.
	shared := strings.Repeat("COMMON-TO-ALL-USERS ", 30)
	pairSecret := "CORPORATE-CARD-9999-8888-7777-6666"
	mkdoc := func(user string, includePair bool) []byte {
		s := "user:" + user + " " + shared
		if includePair {
			s += pairSecret
		}
		return []byte(s)
	}
	base := mkdoc("owner", true)
	docs := [][]byte{
		mkdoc("u1", true), mkdoc("u2", true),
		mkdoc("u3", false), mkdoc("u4", false), mkdoc("u5", false), mkdoc("u6", false),
	}
	anonM2, err := Anonymize(base, docs, Config{M: 2, N: 6})
	if err != nil {
		t.Fatal(err)
	}
	anonM3, err := Anonymize(base, docs, Config{M: 3, N: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(anonM2, []byte("CORPORATE-CARD")) {
		t.Error("M=2 should keep content common with 2 users")
	}
	if bytes.Contains(anonM3, []byte("CORPORATE-CARD")) {
		t.Error("M=3 should remove content common with only 2 users")
	}
	if len(anonM3) > len(anonM2) {
		t.Errorf("higher M should not produce a larger base: M3=%d M2=%d", len(anonM3), len(anonM2))
	}
}

func TestChunkCountersNeverExceedN(t *testing.T) {
	base := personalDoc("o")
	p := NewProcess(base, "o", Config{M: 2, N: 4})
	for i := 0; i < 4; i++ {
		p.Compare(personalDoc(fmt.Sprintf("user%d", i)), fmt.Sprintf("user%d", i))
	}
	for i, c := range p.ChunkCounters() {
		if c > 4 {
			t.Errorf("chunk %d counter %d exceeds N=4", i, c)
		}
	}
}

func TestResultOnlyKeepsChunksSeenM(t *testing.T) {
	// Property: every aligned chunk of the result must have a counter >= M
	// in the original process. Verify via the counters directly.
	base := personalDoc("owner")
	cfg := Config{M: 2, N: 5, ChunkSize: 4}
	p := NewProcess(base, "owner", cfg)
	for i := 0; i < 5; i++ {
		u := fmt.Sprintf("user-%c", 'a'+i)
		p.Compare(personalDoc(u), u)
	}
	anon, err := p.Result()
	if err != nil {
		t.Fatal(err)
	}
	counters := p.ChunkCounters()
	kept := 0
	for _, c := range counters {
		if c >= cfg.M {
			kept++
		}
	}
	// The result is exactly the concatenation of the kept chunks; the last
	// kept chunk may be partial.
	min := (kept - 1) * cfg.ChunkSize
	max := kept * cfg.ChunkSize
	if kept == 0 {
		min, max = 0, 0
	}
	if len(anon) < min || len(anon) > max {
		t.Errorf("anonymized length %d outside [%d,%d] for %d kept chunks", len(anon), min, max, kept)
	}
}

func TestAnonymizeTooFewDocs(t *testing.T) {
	_, err := Anonymize(personalDoc("o"), [][]byte{personalDoc("a")}, Config{M: 1, N: 3})
	if !errors.Is(err, ErrNotDone) {
		t.Errorf("got %v, want ErrNotDone", err)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.ChunkSize != DefaultChunkSize || c.N != DefaultN {
		t.Errorf("unexpected defaults: %+v", c)
	}
	c = Config{M: 10, N: 4}.withDefaults()
	if c.M > c.N {
		t.Errorf("M should be clamped to N: %+v", c)
	}
	c = Config{M: -1}.withDefaults()
	if c.M != DefaultM {
		t.Errorf("negative M should default: %+v", c)
	}
}

func TestEmptyBase(t *testing.T) {
	p := NewProcess(nil, "o", Config{M: 1, N: 1})
	p.Compare([]byte("whatever"), "u")
	anon, err := p.Result()
	if err != nil {
		t.Fatal(err)
	}
	if len(anon) != 0 {
		t.Errorf("empty base should anonymize to empty, got %d bytes", len(anon))
	}
}

func TestProcessConcurrent(t *testing.T) {
	base := personalDoc("owner")
	p := NewProcess(base, "owner", Config{M: 2, N: 50})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				u := fmt.Sprintf("w%d-u%d", w, i)
				p.Compare(personalDoc(u), u)
			}
		}(w)
	}
	wg.Wait()
	done, needed := p.Progress()
	if done != 50 || needed != 50 {
		t.Errorf("Progress() = %d/%d, want 50/50", done, needed)
	}
	if _, err := p.Result(); err != nil {
		t.Fatal(err)
	}
}

func TestPrivacyBoundPaperExample(t *testing.T) {
	// p=0.01, N=10, M=5: bound 4.7e-7, exact 2.4e-8 (Section V).
	bound := PrivacyBoundIID(10, 5, 0.01)
	if math.Abs(bound-4.7e-7)/4.7e-7 > 0.05 {
		t.Errorf("PrivacyBoundIID(10,5,0.01) = %g, paper says ~4.7e-7", bound)
	}
	exact := PrivacyExact(10, 5, 0.01)
	if math.Abs(exact-2.4e-8)/2.4e-8 > 0.05 {
		t.Errorf("PrivacyExact(10,5,0.01) = %g, paper says ~2.4e-8", exact)
	}
	if exact > bound {
		t.Errorf("exact %g exceeds bound %g", exact, bound)
	}
}

func TestPrivacyBoundDecayingTighter(t *testing.T) {
	// With decaying p_j the bound must be (weakly) tighter than the i.i.d.
	// bound for M >= 2 and p < 1.
	for _, m := range []int{2, 3, 5} {
		dec := PrivacyBoundDecaying(10, m, 0.01)
		iid := PrivacyBoundIID(10, m, 0.01)
		if dec > iid {
			t.Errorf("M=%d: decaying bound %g exceeds iid bound %g", m, dec, iid)
		}
	}
}

func TestPrivacyExactProperties(t *testing.T) {
	if got := PrivacyExact(10, 0, 0.5); got != 1 {
		t.Errorf("M=0 => certainty of failure, got %g", got)
	}
	if got := PrivacyExact(5, 6, 0.5); got != 0 {
		t.Errorf("M>N is impossible, got %g", got)
	}
	// Monotone decreasing in M.
	prev := 1.0
	for m := 1; m <= 10; m++ {
		v := PrivacyExact(10, m, 0.1)
		if v > prev {
			t.Errorf("PrivacyExact not decreasing at M=%d: %g > %g", m, v, prev)
		}
		prev = v
	}
	// Monotone increasing in p.
	if PrivacyExact(10, 3, 0.01) > PrivacyExact(10, 3, 0.5) {
		t.Error("PrivacyExact not increasing in p")
	}
}

func TestPrivacyBoundsCappedAtOne(t *testing.T) {
	for _, f := range []func(int, int, float64) float64{PrivacyBoundIID, PrivacyBoundDecaying} {
		if got := f(100, 1, 0.9); got > 1 {
			t.Errorf("bound not capped: %g", got)
		}
	}
}
