package anonymize_test

import (
	"bytes"
	"fmt"
	"strings"

	"cbde/internal/anonymize"
)

func ExampleProcess() {
	page := func(user, card string) []byte {
		return []byte("<html>" + strings.Repeat("shared portal layout and headlines. ", 10) +
			"user:" + user + " card:" + card + "</html>")
	}
	base := page("owner", "4111-0000-1111-2222")

	p := anonymize.NewProcess(base, "owner", anonymize.Config{M: 2, N: 4})
	p.Compare(page("alice", "4222-3333-4444-5555"), "alice")
	p.Compare(page("bob", "4333-6666-7777-8888"), "bob")
	p.Compare(page("carol", "4444-9999-0000-1111"), "carol")
	p.Compare(page("dave", "4555-1212-3434-5656"), "dave")

	anon, err := p.Result()
	if err != nil {
		panic(err)
	}
	fmt.Println("card leaked:", bytes.Contains(anon, []byte("4111-0000-1111-2222")))
	fmt.Println("layout kept:", bytes.Contains(anon, []byte("shared portal layout")))
	// Output:
	// card leaked: false
	// layout kept: true
}

func ExamplePrivacyBoundIID() {
	// The paper's operating point: p=0.01, N=10, M=5.
	fmt.Printf("bound %.1e exact %.1e\n",
		anonymize.PrivacyBoundIID(10, 5, 0.01),
		anonymize.PrivacyExact(10, 5, 0.01))
	// Output: bound 4.7e-07 exact 2.4e-08
}
