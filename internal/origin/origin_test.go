package origin

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cbde/internal/urlparts"
	"cbde/internal/vdelta"
)

func testSite(style URLStyle, personalized bool) *Site {
	return NewSite(Config{
		Host:  "www.site1.com",
		Style: style,
		Depts: []Dept{
			{Name: "laptops", Items: 50},
			{Name: "desktops", Items: 50},
		},
		TemplateBytes: 8000,
		ItemBytes:     1000,
		ChurnBytes:    400,
		Personalized:  personalized,
		Seed:          1,
	})
}

func TestRenderDeterministic(t *testing.T) {
	s := testSite(StylePathSegments, true)
	a, err := s.Render("laptops", 3, "alice", 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Render("laptops", 3, "alice", 7)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("rendering is not deterministic")
	}
}

func TestRenderErrors(t *testing.T) {
	s := testSite(StylePathSegments, false)
	if _, err := s.Render("nope", 0, "", 0); err == nil {
		t.Error("unknown department accepted")
	}
	if _, err := s.Render("laptops", 50, "", 0); err == nil {
		t.Error("out-of-range item accepted")
	}
	if _, err := s.Render("laptops", -1, "", 0); err == nil {
		t.Error("negative item accepted")
	}
}

func TestDocumentSizeInConfiguredBand(t *testing.T) {
	s := NewSite(Config{Host: "www.x.com", Depts: []Dept{{Name: "d", Items: 5}}, Seed: 2})
	doc, err := s.Render("d", 0, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	// Defaults target the paper's 30-50 KB band.
	if len(doc) < 30000 || len(doc) > 55000 {
		t.Errorf("document size %d outside the 30-50KB band", len(doc))
	}
}

func TestTemporalCorrelation(t *testing.T) {
	// Consecutive ticks of the same document must produce small deltas
	// (only the churn region differs) — the property delta-encoding needs.
	s := testSite(StylePathSegments, false)
	d0, _ := s.Render("laptops", 1, "", 0)
	d1, _ := s.Render("laptops", 1, "", 1)
	if bytes.Equal(d0, d1) {
		t.Fatal("documents identical across ticks; churn missing")
	}
	delta, err := vdelta.Encode(d0, d1)
	if err != nil {
		t.Fatal(err)
	}
	if len(delta) > len(d1)/4 {
		t.Errorf("temporal delta %d bytes for %d-byte doc, want strong correlation", len(delta), len(d1))
	}
}

func TestSpatialCorrelation(t *testing.T) {
	// Items within a department share the template; items across
	// departments do not.
	s := testSite(StylePathSegments, false)
	a, _ := s.Render("laptops", 1, "", 0)
	b, _ := s.Render("laptops", 2, "", 0)
	c, _ := s.Render("desktops", 1, "", 0)

	within, err := vdelta.Encode(a, b)
	if err != nil {
		t.Fatal(err)
	}
	across, err := vdelta.Encode(a, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(within) >= len(b)/3 {
		t.Errorf("within-dept delta %d for %d-byte doc, want small", len(within), len(b))
	}
	if len(across) <= len(within)*2 {
		t.Errorf("across-dept delta %d not clearly larger than within-dept %d", len(across), len(within))
	}
}

func TestPersonalizedContentPerUser(t *testing.T) {
	s := testSite(StylePathSegments, true)
	a, _ := s.Render("laptops", 1, "alice", 0)
	b, _ := s.Render("laptops", 1, "bob", 0)
	if bytes.Equal(a, b) {
		t.Fatal("personalized docs identical across users")
	}
	if !bytes.Contains(a, []byte("alice")) || !bytes.Contains(b, []byte("bob")) {
		t.Error("user names missing from personalized docs")
	}
	// Cards differ per user.
	cardOf := func(doc []byte) string {
		i := bytes.Index(doc, []byte("card on file "))
		if i < 0 {
			t.Fatal("no card in personalized doc")
		}
		return string(doc[i : i+30])
	}
	if cardOf(a) == cardOf(b) {
		t.Error("different users share a card number")
	}
}

func TestNonPersonalizedIgnoresUser(t *testing.T) {
	s := testSite(StylePathSegments, false)
	a, _ := s.Render("laptops", 1, "alice", 0)
	b, _ := s.Render("laptops", 1, "bob", 0)
	if !bytes.Equal(a, b) {
		t.Error("non-personalized site varies by user")
	}
}

func TestURLStyles(t *testing.T) {
	tests := []struct {
		style URLStyle
		want  string
	}{
		{StylePathHint, "www.site1.com/laptops?id=7"},
		{StyleQueryHint, "www.site1.com/?dept=laptops&id=7"},
		{StylePathSegments, "www.site1.com/laptops/7"},
	}
	for _, tt := range tests {
		t.Run(tt.style.String(), func(t *testing.T) {
			s := testSite(tt.style, false)
			if got := s.URL("laptops", 7); got != tt.want {
				t.Errorf("URL() = %q, want %q", got, tt.want)
			}
			// Round trip through ParseURL.
			dept, item, err := s.ParseURL(tt.want)
			if err != nil {
				t.Fatal(err)
			}
			if dept != "laptops" || item != 7 {
				t.Errorf("ParseURL = %q,%d", dept, item)
			}
			// With scheme prefix too.
			dept, item, err = s.ParseURL("http://" + tt.want)
			if err != nil || dept != "laptops" || item != 7 {
				t.Errorf("ParseURL with scheme failed: %q,%d,%v", dept, item, err)
			}
		})
	}
}

func TestURLStylesMatchTableIPartitioning(t *testing.T) {
	// The generated URLs must partition under the default heuristic so the
	// hint-part equals the department — Table I end-to-end.
	for _, style := range []URLStyle{StylePathHint, StyleQueryHint, StylePathSegments} {
		s := testSite(style, false)
		p, err := urlparts.Partition(s.URL("laptops", 7))
		if err != nil {
			t.Fatal(err)
		}
		wantHint := "laptops"
		if style == StyleQueryHint {
			wantHint = "dept=laptops"
		}
		if p.Hint != wantHint {
			t.Errorf("style %v: hint = %q, want %q", style, p.Hint, wantHint)
		}
	}
}

func TestParseURLErrors(t *testing.T) {
	s := testSite(StylePathSegments, false)
	for _, u := range []string{"www.site1.com/laptops", "www.site1.com/laptops/x", "www.site1.com"} {
		if _, _, err := s.ParseURL(u); err == nil {
			t.Errorf("ParseURL(%q): expected error", u)
		}
	}
	q := testSite(StyleQueryHint, false)
	for _, u := range []string{"www.site1.com/?dept=laptops", "www.site1.com/?id=3", "www.site1.com/?dept=laptops&id=x"} {
		if _, _, err := q.ParseURL(u); err == nil {
			t.Errorf("ParseURL(%q): expected error", u)
		}
	}
	ph := testSite(StylePathHint, false)
	for _, u := range []string{"www.site1.com/?id=3", "www.site1.com/laptops"} {
		if _, _, err := ph.ParseURL(u); err == nil {
			t.Errorf("ParseURL(%q): expected error", u)
		}
	}
}

func TestAdvanceTick(t *testing.T) {
	s := testSite(StylePathSegments, false)
	if s.Tick() != 0 {
		t.Fatalf("initial tick = %d", s.Tick())
	}
	s.Advance(3)
	if s.Tick() != 3 {
		t.Errorf("tick = %d, want 3", s.Tick())
	}
}

func TestHandlerServesDocuments(t *testing.T) {
	s := testSite(StylePathSegments, true)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	req, err := http.NewRequest(http.MethodGet, srv.URL+"/laptops/3", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(UserHeader, "alice")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	want, _ := s.Render("laptops", 3, "alice", 0)
	if !bytes.Equal(buf.Bytes(), want) {
		t.Error("handler response does not match Render output")
	}
}

func TestHandlerCookieUser(t *testing.T) {
	s := testSite(StylePathSegments, true)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/laptops/3", nil)
	req.AddCookie(&http.Cookie{Name: "uid", Value: "carol"})
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	if !strings.Contains(buf.String(), "carol") {
		t.Error("cookie-derived user not reflected in document")
	}
}

func TestHandler404(t *testing.T) {
	s := testSite(StylePathSegments, false)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/unknown/99")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status = %d, want 404", resp.StatusCode)
	}
}

func TestDifferentSeedsDifferentContent(t *testing.T) {
	a := NewSite(Config{Host: "a.com", Depts: []Dept{{Name: "d", Items: 1}}, Seed: 1, TemplateBytes: 2000})
	b := NewSite(Config{Host: "b.com", Depts: []Dept{{Name: "d", Items: 1}}, Seed: 2, TemplateBytes: 2000})
	da, _ := a.Render("d", 0, "", 0)
	db, _ := b.Render("d", 0, "", 0)
	if bytes.Equal(da, db) {
		t.Error("different seeds produced identical content")
	}
}

func TestStyleString(t *testing.T) {
	if StylePathHint.String() != "path-hint" || URLStyle(9).String() != "URLStyle(9)" {
		t.Error("URLStyle.String misbehaves")
	}
}

func TestDeptsCopied(t *testing.T) {
	s := testSite(StylePathSegments, false)
	d := s.Depts()
	if len(d) != 2 {
		t.Fatalf("Depts() = %d entries", len(d))
	}
	d[0].Name = "mutated"
	if s.Depts()[0].Name == "mutated" {
		t.Error("Depts() exposes internal state")
	}
}

func ExampleSite_URL() {
	s := NewSite(Config{
		Host:  "www.foo.com",
		Style: StyleQueryHint,
		Depts: []Dept{{Name: "laptops", Items: 101}},
	})
	fmt.Println(s.URL("laptops", 100))
	// Output: www.foo.com/?dept=laptops&id=100
}

func TestWorkFactorSlowsHandler(t *testing.T) {
	slow := NewSite(Config{
		Host:          "www.x.com",
		Depts:         []Dept{{Name: "d", Items: 2}},
		TemplateBytes: 1000,
		WorkFactor:    30 * time.Millisecond,
		Seed:          1,
	})
	srv := httptest.NewServer(slow.Handler())
	defer srv.Close()
	start := time.Now()
	resp, err := http.Get(srv.URL + "/d/0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Errorf("request took %v, want >= work factor", elapsed)
	}
	// Render itself is unaffected (the work factor models HTTP serving).
	start = time.Now()
	if _, err := slow.Render("d", 0, "", 0); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 20*time.Millisecond {
		t.Errorf("Render took %v; the work factor must not apply to it", elapsed)
	}
}
