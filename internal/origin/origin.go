// Package origin implements a synthetic dynamic web-site: the workload
// substrate standing in for the commercial sites whose access-logs the paper
// evaluates against (Table II; the real traces are private).
//
// A Site renders dynamic documents with the structure the paper's analysis
// assumes:
//
//   - a large department template shared by all items of a department
//     (spatial correlation, what classes exploit);
//   - item-specific content (the "rest" of the URL distinguishes it);
//   - a churning region that changes from tick to tick (temporal
//     correlation, what deltas exploit);
//   - optionally a personalized block with private user data (what
//     anonymization must strip).
//
// Rendering is deterministic in (seed, dept, item, tick, user), so
// experiments are reproducible. Document sizes default to the 30-50 KB
// range the paper reports for documents that benefit from delta-encoding.
package origin

import (
	"fmt"
	"math/rand/v2"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// URLStyle selects how the site organizes its URLs — the three layouts of
// the paper's Table I.
type URLStyle int

const (
	// StylePathHint organizes URLs as /<dept>?id=<item>.
	StylePathHint URLStyle = iota + 1
	// StyleQueryHint organizes URLs as /?dept=<dept>&id=<item>.
	StyleQueryHint
	// StylePathSegments organizes URLs as /<dept>/<item>.
	StylePathSegments
)

// String implements fmt.Stringer.
func (s URLStyle) String() string {
	switch s {
	case StylePathHint:
		return "path-hint"
	case StyleQueryHint:
		return "query-hint"
	case StylePathSegments:
		return "path-segments"
	default:
		return fmt.Sprintf("URLStyle(%d)", int(s))
	}
}

// Dept describes one department (content family) of the site.
type Dept struct {
	Name  string
	Items int
}

// Config describes a synthetic site.
type Config struct {
	// Host is the server-part, e.g. "www.site1.com".
	Host string
	// Style is the URL organization (Table I). Default StylePathSegments.
	Style URLStyle
	// Depts are the content families. Default: a single "catalog"
	// department with 100 items.
	Depts []Dept
	// TemplateBytes is the approximate size of the shared per-department
	// template. Default 36000 (documents land in the paper's 30-50 KB
	// band).
	TemplateBytes int
	// ItemBytes is the approximate size of item-specific content.
	// Default 4000.
	ItemBytes int
	// ChurnBytes is the approximate size of the region that changes every
	// tick. Default 1500 (gzipped deltas land in the paper's 1-3 KB band).
	ChurnBytes int
	// Personalized adds a per-user block with private data (user name,
	// card number, session id) to every document.
	Personalized bool
	// WorkFactor simulates per-request application-server work (CPU-bound)
	// in the HTTP handler. The paper's testbed generated dynamic pages
	// through a 2002-era Apache/CGI stack at ~5-6 ms per request; a Go
	// template renderer is ~75 us, so capacity comparisons set this to
	// recreate a realistic origin cost. Zero disables it.
	WorkFactor time.Duration
	// Seed makes rendering deterministic. Sites with different seeds have
	// unrelated content.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.Host == "" {
		c.Host = "www.example.com"
	}
	if c.Style == 0 {
		c.Style = StylePathSegments
	}
	if len(c.Depts) == 0 {
		c.Depts = []Dept{{Name: "catalog", Items: 100}}
	}
	if c.TemplateBytes <= 0 {
		c.TemplateBytes = 36000
	}
	if c.ItemBytes <= 0 {
		c.ItemBytes = 4000
	}
	if c.ChurnBytes <= 0 {
		c.ChurnBytes = 1500
	}
	return c
}

// Site renders dynamic documents and serves them over HTTP. It is safe for
// concurrent use.
type Site struct {
	cfg       Config
	depts     map[string]Dept
	templates map[string]string // pre-rendered per-department templates
	tick      atomic.Int64
}

// NewSite returns a Site for cfg.
func NewSite(cfg Config) *Site {
	cfg = cfg.withDefaults()
	s := &Site{
		cfg:       cfg,
		depts:     make(map[string]Dept, len(cfg.Depts)),
		templates: make(map[string]string, len(cfg.Depts)),
	}
	for _, d := range cfg.Depts {
		s.depts[d.Name] = d
		s.templates[d.Name] = s.renderTemplate(d.Name)
	}
	return s
}

// Host returns the site's server-part.
func (s *Site) Host() string { return s.cfg.Host }

// Depts returns the site's departments.
func (s *Site) Depts() []Dept {
	out := make([]Dept, len(s.cfg.Depts))
	copy(out, s.cfg.Depts)
	return out
}

// Tick returns the site's current content generation.
func (s *Site) Tick() int { return int(s.tick.Load()) }

// Advance moves the site's content forward by n ticks (content churn).
func (s *Site) Advance(n int) { s.tick.Add(int64(n)) }

// URL returns the document URL for (dept, item) in the site's URL style,
// including the host but no scheme — the form the paper's Table I uses.
func (s *Site) URL(dept string, item int) string {
	switch s.cfg.Style {
	case StylePathHint:
		return fmt.Sprintf("%s/%s?id=%d", s.cfg.Host, dept, item)
	case StyleQueryHint:
		return fmt.Sprintf("%s/?dept=%s&id=%d", s.cfg.Host, dept, item)
	default:
		return fmt.Sprintf("%s/%s/%d", s.cfg.Host, dept, item)
	}
}

// wordlist is the vocabulary documents are woven from.
var wordlist = []string{
	"catalog", "special", "offer", "review", "rating", "price", "stock",
	"shipping", "warranty", "feature", "detail", "model", "series",
	"customer", "support", "compare", "bundle", "premium", "standard",
	"digital", "wireless", "portable", "professional", "performance",
}

// prose appends about n bytes of deterministic pseudo-prose to b. Tokens
// mix dictionary words with numeric attributes (prices, ids, quantities),
// giving the text realistic entropy: short word sequences do not recur
// across unrelated documents the way a small closed vocabulary would.
func prose(b *strings.Builder, rng *rand.Rand, n int) {
	start := b.Len()
	for b.Len()-start < n {
		b.WriteString(wordlist[rng.IntN(len(wordlist))])
		switch rng.IntN(3) {
		case 0:
			fmt.Fprintf(b, "-%05d", rng.IntN(100000))
		case 1:
			fmt.Fprintf(b, "=%x", rng.Uint32())
		}
		if rng.IntN(8) == 0 {
			b.WriteString(".\n")
		} else {
			b.WriteByte(' ')
		}
	}
}

func (s *Site) rngFor(parts ...string) *rand.Rand {
	h := uint64(1469598103934665603)
	for _, p := range parts {
		for i := 0; i < len(p); i++ {
			h ^= uint64(p[i])
			h *= 1099511628211
		}
	}
	return rand.New(rand.NewPCG(s.cfg.Seed, h))
}

// renderTemplate builds the shared per-department template.
func (s *Site) renderTemplate(dept string) string {
	rng := s.rngFor("template", dept)
	var b strings.Builder
	b.Grow(s.cfg.TemplateBytes + 1024)
	fmt.Fprintf(&b, "<html><head><title>%s — %s</title></head><body>\n", s.cfg.Host, dept)
	blocks := 1 + s.cfg.TemplateBytes/600
	perBlock := s.cfg.TemplateBytes / blocks
	for i := 0; i < blocks; i++ {
		fmt.Fprintf(&b, "<section id=\"%s-%d\">", dept, i)
		prose(&b, rng, perBlock)
		b.WriteString("</section>\n")
	}
	return b.String()
}

// Render produces the current snapshot of the document for (dept, item) as
// seen by user at the given tick. user may be empty for non-personalized
// access; it is ignored unless the site is personalized.
func (s *Site) Render(dept string, item int, user string, tick int) ([]byte, error) {
	d, ok := s.depts[dept]
	if !ok {
		return nil, fmt.Errorf("origin: unknown department %q", dept)
	}
	if item < 0 || item >= d.Items {
		return nil, fmt.Errorf("origin: item %d out of range for %q (%d items)", item, dept, d.Items)
	}

	var b strings.Builder
	b.Grow(s.cfg.TemplateBytes + s.cfg.ItemBytes + s.cfg.ChurnBytes + 1024)
	b.WriteString(s.templates[dept])

	// Item-specific content: stable across ticks.
	itemRng := s.rngFor("item", dept, strconv.Itoa(item))
	fmt.Fprintf(&b, "<article id=\"item-%d\"><h1>%s item %d</h1>\n", item, dept, item)
	prose(&b, itemRng, s.cfg.ItemBytes)
	b.WriteString("</article>\n")

	// Churning content: changes every tick.
	churnRng := s.rngFor("churn", dept, strconv.Itoa(item), strconv.Itoa(tick))
	fmt.Fprintf(&b, "<aside id=\"live\"><p>updated tick %d</p>\n", tick)
	prose(&b, churnRng, s.cfg.ChurnBytes)
	fmt.Fprintf(&b, "<ad slot=\"%d\"/></aside>\n", churnRng.IntN(1000))

	if s.cfg.Personalized && user != "" {
		userRng := s.rngFor("user", user)
		fmt.Fprintf(&b, "<account><p>signed in as %s</p><p>card on file 4%015d</p><p>session %08x-%d</p></account>\n",
			user, userRng.Uint64()%1_000_000_000_000_000, userRng.Uint32(), tick)
	}
	b.WriteString("</body></html>\n")
	return []byte(b.String()), nil
}

// RenderURL renders the document for a URL in the site's own style; url may
// include or omit the scheme and host.
func (s *Site) RenderURL(url, user string, tick int) ([]byte, error) {
	dept, item, err := s.ParseURL(url)
	if err != nil {
		return nil, err
	}
	return s.Render(dept, item, user, tick)
}

// ParseURL extracts (dept, item) from a URL in the site's style.
func (s *Site) ParseURL(url string) (dept string, item int, err error) {
	pq := url
	if i := strings.Index(pq, "://"); i >= 0 {
		pq = pq[i+3:]
	}
	if i := strings.IndexByte(pq, '/'); i >= 0 {
		pq = pq[i+1:]
	} else {
		pq = ""
	}
	path, query, _ := strings.Cut(pq, "?")
	path = strings.Trim(path, "/")

	fail := func() (string, int, error) {
		return "", 0, fmt.Errorf("origin: URL %q does not match style %v", url, s.cfg.Style)
	}
	queryVal := func(key string) (string, bool) {
		for _, pair := range strings.Split(query, "&") {
			if k, v, ok := strings.Cut(pair, "="); ok && k == key {
				return v, true
			}
		}
		return "", false
	}

	switch s.cfg.Style {
	case StylePathHint:
		id, ok := queryVal("id")
		if path == "" || !ok {
			return fail()
		}
		n, err := strconv.Atoi(id)
		if err != nil {
			return fail()
		}
		return path, n, nil
	case StyleQueryHint:
		d, ok1 := queryVal("dept")
		id, ok2 := queryVal("id")
		if !ok1 || !ok2 {
			return fail()
		}
		n, err := strconv.Atoi(id)
		if err != nil {
			return fail()
		}
		return d, n, nil
	default:
		d, rest, ok := strings.Cut(path, "/")
		if !ok {
			return fail()
		}
		n, err := strconv.Atoi(rest)
		if err != nil {
			return fail()
		}
		return d, n, nil
	}
}

// UserHeader is the request header carrying the user identity — the stand-in
// for the cookie-based user identification the paper describes.
const UserHeader = "X-CBDE-User"

// spin burns CPU for roughly d, simulating application-server work.
func spin(d time.Duration) {
	if d <= 0 {
		return
	}
	deadline := time.Now().Add(d)
	x := uint64(88172645463325252)
	for time.Now().Before(deadline) {
		// xorshift keeps the loop from being optimized away.
		for i := 0; i < 1024; i++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
		}
	}
	runtime.KeepAlive(x)
}

// Handler returns an http.Handler serving the site's documents. The user
// identity is read from the UserHeader header (or the "uid" cookie); the
// content generation is the site's current tick.
func (s *Site) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		spin(s.cfg.WorkFactor)
		user := r.Header.Get(UserHeader)
		if user == "" {
			if c, err := r.Cookie("uid"); err == nil {
				user = c.Value
			}
		}
		url := s.cfg.Host + r.URL.RequestURI()
		doc, err := s.RenderURL(url, user, s.Tick())
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.Header().Set("Cache-Control", "no-cache") // dynamic content
		_, _ = w.Write(doc)
	})
}
