// Package basefile implements the online base-file selection algorithm of
// Section IV, its baselines, and the error-probability analysis.
//
// For each class the selector watches the stream of documents and maintains
// up to K sampled candidates (each request is sampled with probability p).
// The candidate that minimizes the sum of deltas against the other stored
// documents is the preferred base-file. A group-rebase installs it once the
// rebase-timeout since the previous rebase has expired; a basic-rebase is
// triggered externally when served deltas become relatively large, and
// flushes all stored samples.
//
// Two eviction refinements from footnote 3 are provided: periodically
// evicting a random stored document instead of the worst one, and the
// two-set variant that scores candidates against an independent reference
// set of random samples.
package basefile

import (
	"bytes"
	"fmt"
	"math/rand/v2"
	"sync"
	"time"

	"cbde/internal/vdelta"
)

// EvictionPolicy selects which stored document leaves when the sample store
// is full (Section IV, footnote 3).
type EvictionPolicy int

const (
	// EvictWorst always evicts the stored document that maximizes the sum
	// of deltas (the worst base-file candidate). This is the basic scheme.
	EvictWorst EvictionPolicy = iota + 1
	// EvictPeriodicRandom behaves like EvictWorst but, at periodic
	// intervals, evicts a random stored document (excluding the current
	// base-file) to avoid storing K documents that are close to each other
	// but far from most class members.
	EvictPeriodicRandom
	// EvictTwoSet maintains two sets of K documents: base-file candidates
	// and an independent reference set that deltas are computed against.
	// The worst candidate and a random reference are evicted.
	EvictTwoSet
)

// String implements fmt.Stringer.
func (p EvictionPolicy) String() string {
	switch p {
	case EvictWorst:
		return "worst"
	case EvictPeriodicRandom:
		return "periodic-random"
	case EvictTwoSet:
		return "two-set"
	default:
		return fmt.Sprintf("EvictionPolicy(%d)", int(p))
	}
}

// DeltaSizeFunc measures the size, in bytes, of the delta that transforms
// base into doc. The selector only compares these values, so a cheap
// estimate (the light Vdelta variant) works well.
type DeltaSizeFunc func(base, doc []byte) int

// Config parametrizes a Selector. The zero value is usable: defaults match
// the paper's experiments (p=0.2, K=8).
type Config struct {
	// SampleProb is p, the probability that a request's document becomes a
	// base-file candidate. Default 0.2 (the value used for Table III).
	// A negative value disables sampling entirely, degenerating the
	// selector to the first-response scheme plus basic-rebases — the
	// classless baseline uses this.
	SampleProb float64
	// MaxSamples is K, the maximum number of stored documents. Default 8.
	MaxSamples int
	// RebaseTimeout is the minimum interval between group-rebases. A
	// better candidate only takes over once this has expired. Default 0
	// (rebase whenever a better candidate exists).
	RebaseTimeout time.Duration
	// Eviction selects the eviction refinement. Default EvictWorst.
	Eviction EvictionPolicy
	// RandomEvictEvery applies to EvictPeriodicRandom: every n-th eviction
	// removes a random document instead of the worst. Default 4.
	RandomEvictEvery int
	// DeltaSize measures candidate quality. Default: the light Vdelta
	// estimator (vdelta.Estimator with default settings).
	DeltaSize DeltaSizeFunc
	// OnStoredBytes, when set, is called with the signed change in the
	// selector's resident document bytes — the working base plus stored
	// candidate and reference samples — whenever that footprint changes.
	// The store layer uses it for byte-accurate accounting. The callback
	// runs under the selector's lock and must not call back into it.
	OnStoredBytes func(delta int)
	// AsyncSampling moves candidate admission (the 2K delta computations
	// per sample) off the calling goroutine, as the paper prescribes:
	// "this calculation can be done offline" (Section IV). Observe then
	// reports Sampled but admission outcomes (evictions, group-rebases)
	// surface on later calls. Use Quiesce in tests to drain pending work.
	AsyncSampling bool
	// AfterAsyncAdmit, when set with AsyncSampling, runs on the admission
	// goroutine after each asynchronous admission completes and the
	// selector's lock is released. An async admission installs document
	// bytes after the request that sampled them has finished its own store
	// maintenance, so the store layer uses this hook to re-enforce its
	// memory budget. Unlike OnStoredBytes it may call back into the
	// selector; Quiesce waits for it.
	AfterAsyncAdmit func()
	// Seed seeds the sampling RNG, for reproducible experiments.
	Seed uint64

	// VersionStride and VersionOffset stride version numbering across a
	// cluster of delta-servers: every version this selector mints is
	// ≡ VersionOffset (mod VersionStride). Giving each node a distinct
	// offset (its index in the sorted peer list) and stride = cluster size
	// makes (class, version) pairs globally unique, so when class ownership
	// moves — failover, then failback — a client's held version can only
	// ever match a base on the node that actually minted it; a node that
	// does not hold the advertised version serves a full response instead
	// of encoding against different bytes. Defaults: stride 1, offset 0 —
	// plain increments, the standalone behavior.
	VersionStride int
	// VersionOffset is this node's residue class; see VersionStride.
	VersionOffset int
}

func (c Config) withDefaults() Config {
	switch {
	case c.SampleProb < 0:
		c.SampleProb = 0
	case c.SampleProb == 0 || c.SampleProb > 1:
		c.SampleProb = 0.2
	}
	if c.MaxSamples <= 0 {
		c.MaxSamples = 8
	}
	if c.Eviction == 0 {
		c.Eviction = EvictWorst
	}
	if c.RandomEvictEvery <= 0 {
		c.RandomEvictEvery = 4
	}
	if c.DeltaSize == nil {
		est := vdelta.NewEstimator()
		c.DeltaSize = func(base, doc []byte) int { return est.Estimate(base, doc) }
	}
	if c.VersionStride <= 0 {
		c.VersionStride = 1
	}
	c.VersionOffset = ((c.VersionOffset % c.VersionStride) + c.VersionStride) % c.VersionStride
	return c
}

// SameResidue reports whether versions a and b both belong to this
// config's residue class — i.e. were both minted by this node under the
// configured stride. Version-graph edges may only connect same-residue
// versions: after a failover a class can briefly hold foreign versions,
// and an edge across residues would compose deltas over bytes this node
// never minted.
func (c Config) SameResidue(a, b int) bool {
	stride := c.VersionStride
	if stride <= 0 {
		stride = 1
	}
	off := ((c.VersionOffset % stride) + stride) % stride
	return a%stride == off && b%stride == off
}

// Event reports what a call to Observe did.
type Event struct {
	Sampled     bool // the document was stored as a base-file candidate
	Evicted     bool // a stored document was evicted to make room
	GroupRebase bool // the base-file changed to a better stored candidate
	Initialized bool // this document became the very first base-file
}

// Strategy is the interface shared by the randomized selector and the
// baseline algorithms compared in Table III.
type Strategy interface {
	// Observe feeds the document served for a request into the strategy.
	Observe(doc []byte, now time.Time) Event
	// Base returns the current base-file and its version. The version
	// increments on every rebase; version 0 means no base yet.
	Base() ([]byte, int)
}

// sample is a stored base-file candidate plus its deltas against the
// reference documents (for EvictTwoSet the reference set; otherwise the
// other stored candidates).
type sample struct {
	doc []byte
	tag string // opaque caller tag (e.g. the requesting user), for anonymization
}

// Selector implements the randomized online algorithm of Section IV.
// It is safe for concurrent use; the read-only accessors (Base, BaseTag,
// Stats) take only a read lock, so they never queue behind each other —
// only behind Observe's candidate bookkeeping.
type Selector struct {
	cfg Config

	mu          sync.RWMutex
	rng         *rand.Rand
	base        []byte
	baseTag     string
	version     int
	lastRebase  time.Time
	hasRebased  bool
	evictions   int
	candidates  []sample
	refs        []sample // EvictTwoSet only
	dists       [][]int  // dists[i][j] = DeltaSize(candidates[i].doc, refDoc(j))
	samplesSeen int64
	observed    int64
	lastStored  int            // footprint last reported via OnStoredBytes
	pending     sync.WaitGroup // outstanding async admissions
}

var _ Strategy = (*Selector)(nil)

// NewSelector returns a Selector with cfg applied over the defaults.
func NewSelector(cfg Config) *Selector {
	cfg = cfg.withDefaults()
	return &Selector{
		cfg: cfg,
		rng: rand.New(rand.NewPCG(cfg.Seed, 0x9E3779B97F4A7C15)),
	}
}

// utility returns the local utility of candidate i: the sum of deltas
// between it and every reference document (Section IV). Lower is better.
func (s *Selector) utility(i int) int {
	total := 0
	for _, d := range s.dists[i] {
		total += d
	}
	return total
}

// Observe implements Strategy.
func (s *Selector) Observe(doc []byte, now time.Time) Event {
	return s.ObserveTagged(doc, "", now)
}

// ObserveTagged is Observe with an opaque tag attached to the document
// (typically the requesting user). The tag of the document that becomes the
// base-file is available via BaseTag, which the anonymization process uses
// to exclude the base-file owner's own documents (footnote 5).
func (s *Selector) ObserveTagged(doc []byte, tag string, now time.Time) Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.syncStoredLocked()

	var ev Event
	s.observed++

	if s.base == nil {
		// The first response bootstraps the base-file so delta-encoding can
		// start immediately; the randomized algorithm improves on it later.
		// After a budget eviction dropped the base, re-warming lands here
		// too: the version counter keeps counting up from where it was, so
		// a re-warmed class never reuses a version number for new bytes.
		s.base = cloneBytes(doc)
		s.baseTag = tag
		s.bumpVersionLocked()
		s.lastRebase = now
		ev.Initialized = true
	}

	if s.cfg.SampleProb <= 0 || s.rng.Float64() >= s.cfg.SampleProb {
		s.maybeGroupRebase(now, &ev)
		return ev
	}
	ev.Sampled = true
	s.samplesSeen++
	docCopy := cloneBytes(doc)
	if s.cfg.AsyncSampling {
		s.pending.Add(1)
		go func() {
			defer s.pending.Done()
			func() {
				s.mu.Lock()
				defer s.mu.Unlock()
				defer s.syncStoredLocked()
				var async Event
				s.admit(docCopy, tag, &async)
				s.maybeGroupRebase(now, &async)
			}()
			// The admission installed bytes after the sampling request's
			// own maintenance pass; run the follow-up with the lock
			// released so it can prune this selector. Done comes after,
			// so Quiesce covers the follow-up too.
			if s.cfg.AfterAsyncAdmit != nil {
				s.cfg.AfterAsyncAdmit()
			}
		}()
		return ev
	}
	s.admit(docCopy, tag, &ev)
	s.maybeGroupRebase(now, &ev)
	return ev
}

// Quiesce blocks until all asynchronous sample admissions have completed.
// It is a no-op for synchronous selectors.
func (s *Selector) Quiesce() {
	s.pending.Wait()
}

// admit stores doc as a candidate (and, for the two-set variant, as a
// reference sample), evicting per policy when full.
func (s *Selector) admit(doc []byte, tag string, ev *Event) {
	K := s.cfg.MaxSamples

	if s.cfg.Eviction == EvictTwoSet {
		// New sample joins both sets.
		s.refs = append(s.refs, sample{doc: doc, tag: tag})
		for i := range s.candidates {
			s.dists[i] = append(s.dists[i], s.cfg.DeltaSize(s.candidates[i].doc, doc))
		}
		s.candidates = append(s.candidates, sample{doc: doc, tag: tag})
		row := make([]int, len(s.refs))
		for j := range s.refs {
			row[j] = s.cfg.DeltaSize(doc, s.refs[j].doc)
		}
		s.dists = append(s.dists, row)

		if len(s.refs) > K {
			// Evict a random reference sample.
			j := s.rng.IntN(len(s.refs))
			s.refs = append(s.refs[:j], s.refs[j+1:]...)
			for i := range s.dists {
				s.dists[i] = append(s.dists[i][:j], s.dists[i][j+1:]...)
			}
		}
		if len(s.candidates) > K {
			s.evictCandidate(s.worstCandidate())
			ev.Evicted = true
		}
		return
	}

	// Single-set variants: references are the candidates themselves.
	for i := range s.candidates {
		s.dists[i] = append(s.dists[i], s.cfg.DeltaSize(s.candidates[i].doc, doc))
	}
	s.candidates = append(s.candidates, sample{doc: doc, tag: tag})
	row := make([]int, len(s.candidates))
	for j := range s.candidates[:len(s.candidates)-1] {
		row[j] = s.cfg.DeltaSize(doc, s.candidates[j].doc)
	}
	row[len(row)-1] = 0 // delta to itself
	s.dists = append(s.dists, row)

	if len(s.candidates) <= K {
		return
	}
	s.evictions++
	victim := s.worstCandidate()
	if s.cfg.Eviction == EvictPeriodicRandom && s.evictions%s.cfg.RandomEvictEvery == 0 {
		victim = s.randomNonBaseCandidate()
	}
	s.evictCandidate(victim)
	ev.Evicted = true
}

// worstCandidate returns the index of the stored candidate with the maximum
// sum of deltas.
func (s *Selector) worstCandidate() int {
	worst, worstU := 0, -1
	for i := range s.candidates {
		if u := s.utility(i); u > worstU {
			worst, worstU = i, u
		}
	}
	return worst
}

// randomNonBaseCandidate picks a random candidate that is not the current
// base-file (footnote 3). Falls back to the worst candidate when every
// stored document equals the base.
func (s *Selector) randomNonBaseCandidate() int {
	eligible := make([]int, 0, len(s.candidates))
	for i := range s.candidates {
		if !bytesEqual(s.candidates[i].doc, s.base) {
			eligible = append(eligible, i)
		}
	}
	if len(eligible) == 0 {
		return s.worstCandidate()
	}
	return eligible[s.rng.IntN(len(eligible))]
}

func (s *Selector) evictCandidate(i int) {
	s.candidates = append(s.candidates[:i], s.candidates[i+1:]...)
	s.dists = append(s.dists[:i], s.dists[i+1:]...)
	if s.cfg.Eviction != EvictTwoSet {
		// The candidate was also a reference: drop its column.
		for r := range s.dists {
			s.dists[r] = append(s.dists[r][:i], s.dists[r][i+1:]...)
		}
	}
}

// bestCandidate returns the index of the candidate minimizing the sum of
// deltas, or -1 if none are stored.
func (s *Selector) bestCandidate() int {
	best, bestU := -1, 0
	for i := range s.candidates {
		if u := s.utility(i); best == -1 || u < bestU {
			best, bestU = i, u
		}
	}
	return best
}

// maybeGroupRebase installs the best stored candidate as the base-file when
// it differs from the current base and the rebase-timeout has expired.
func (s *Selector) maybeGroupRebase(now time.Time, ev *Event) {
	best := s.bestCandidate()
	if best < 0 {
		return
	}
	if bytesEqual(s.candidates[best].doc, s.base) {
		return
	}
	if s.hasRebased && now.Sub(s.lastRebase) < s.cfg.RebaseTimeout {
		return
	}
	s.base = cloneBytes(s.candidates[best].doc)
	s.baseTag = s.candidates[best].tag
	s.bumpVersionLocked()
	s.lastRebase = now
	s.hasRebased = true
	ev.GroupRebase = true
}

// Base implements Strategy. The returned bytes are replaced, never
// mutated, on rebase; callers must not modify them.
func (s *Selector) Base() ([]byte, int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.base, s.version
}

// BaseTag returns the tag that was attached (via ObserveTagged or
// BasicRebase) to the document currently serving as the base-file.
func (s *Selector) BaseTag() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.baseTag
}

// BasicRebase installs doc as the new base-file and flushes all stored
// samples. The engine calls this when generated deltas become relatively
// large (the paper's basic-rebase, orthogonal to group-rebases). tag is
// attached to the new base as in ObserveTagged.
func (s *Selector) BasicRebase(doc []byte, tag string, now time.Time) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.syncStoredLocked()
	s.base = cloneBytes(doc)
	s.baseTag = tag
	s.bumpVersionLocked()
	s.lastRebase = now
	s.hasRebased = true
	s.candidates = nil
	s.refs = nil
	s.dists = nil
	return s.version
}

// Stats reports internal counters for experiments and debugging.
type Stats struct {
	Observed    int64 // documents fed to Observe
	Sampled     int64 // documents stored as candidates
	Stored      int   // candidates currently stored
	StoredBytes int   // total bytes of stored candidate documents
	Version     int   // current base-file version
}

// Stats returns a snapshot of the selector's counters.
func (s *Selector) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	bytes := 0
	for i := range s.candidates {
		bytes += len(s.candidates[i].doc)
	}
	if s.cfg.Eviction == EvictTwoSet {
		for i := range s.refs {
			bytes += len(s.refs[i].doc)
		}
	}
	return Stats{
		Observed:    s.observed,
		Sampled:     s.samplesSeen,
		Stored:      len(s.candidates),
		StoredBytes: bytes,
		Version:     s.version,
	}
}

func cloneBytes(b []byte) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

func bytesEqual(a, b []byte) bool { return bytes.Equal(a, b) }

// footprintLocked returns the selector's resident document bytes: the
// working base plus all stored candidate and reference samples. The two-set
// variant shares each sample's backing slice between both sets; the shared
// bytes are deliberately counted per set — consistently, so the deltas
// reported via OnStoredBytes net to zero over a sample's lifetime.
func (s *Selector) footprintLocked() int {
	n := len(s.base)
	for i := range s.candidates {
		n += len(s.candidates[i].doc)
	}
	if s.cfg.Eviction == EvictTwoSet {
		for i := range s.refs {
			n += len(s.refs[i].doc)
		}
	}
	return n
}

// syncStoredLocked reports the footprint change since the last report to
// the OnStoredBytes callback. Every mutation path defers it before
// releasing the lock, so the accounting never drifts from the store.
func (s *Selector) syncStoredLocked() {
	if s.cfg.OnStoredBytes == nil {
		return
	}
	cur := s.footprintLocked()
	if d := cur - s.lastStored; d != 0 {
		s.lastStored = cur
		s.cfg.OnStoredBytes(d)
	}
}

// DropSamples releases the selector's sampled documents — candidates,
// reference samples, and the distance matrix — while keeping the working
// base, so the class keeps serving deltas against its current base-file.
// The store's budget maintenance calls this to prune a class.
func (s *Selector) DropSamples() {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.syncStoredLocked()
	s.candidates = nil
	s.refs = nil
	s.dists = nil
}

// DropStored additionally releases the working base, fully de-warming the
// selector. The version counter is preserved: when traffic re-initializes
// the base, the version increments past every number this class ever
// announced, so a client can never be served a delta computed against
// bytes that differ from the base version it holds. The store's budget
// maintenance calls this to evict a class.
func (s *Selector) DropStored() {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.syncStoredLocked()
	s.candidates = nil
	s.refs = nil
	s.dists = nil
	s.base = nil
	s.baseTag = ""
}

// Restore installs a persisted base-file and version counter into a fresh
// selector, so rebase numbering continues where a previous process left
// off. Stored candidate samples are deliberately not restored; they re-warm
// from live traffic. An empty base restores the version counter alone —
// the evicted-class case, where only numbering continuity survives restart.
func (s *Selector) Restore(base []byte, tag string, version int, lastRebase time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.syncStoredLocked()
	if len(base) == 0 {
		s.base = nil
		s.baseTag = ""
	} else {
		s.base = cloneBytes(base)
		s.baseTag = tag
	}
	if version > s.version {
		s.version = version
	}
	s.lastRebase = lastRebase
	s.hasRebased = version > s.nextVersionLocked(0)
}

// SpillDoc is one stored sample in a selector spill snapshot.
type SpillDoc struct {
	Bytes []byte
	Tag   string
}

// SpillState is the selector state worth demoting to the disk tier: the
// working base, the version counter, and the sampled documents. The
// distance matrix is deliberately excluded — it is derived data, cheaply
// recomputed on fault-in.
type SpillState struct {
	Base       []byte
	BaseTag    string
	Version    int
	Candidates []SpillDoc
	Refs       []SpillDoc
}

// SpillState snapshots the selector for the disk tier. The returned byte
// slices alias the selector's internal buffers, which are replaced (never
// mutated in place) by every mutation path, so the snapshot stays stable
// even if the selector is dropped or re-warmed afterwards.
func (s *Selector) SpillState() SpillState {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := SpillState{Base: s.base, BaseTag: s.baseTag, Version: s.version}
	for i := range s.candidates {
		st.Candidates = append(st.Candidates, SpillDoc{Bytes: s.candidates[i].doc, Tag: s.candidates[i].tag})
	}
	if s.cfg.Eviction == EvictTwoSet {
		for i := range s.refs {
			st.Refs = append(st.Refs, SpillDoc{Bytes: s.refs[i].doc, Tag: s.refs[i].tag})
		}
	}
	return st
}

// RestoreSpill faults a spill snapshot back into the selector: base, tag,
// version high-water mark, and stored samples, with the distance matrix
// recomputed under the current eviction policy. Samples beyond MaxSamples
// (e.g. the config shrank across a restart) are dropped newest-last. The
// selector takes ownership of the snapshot's byte slices — fault-in
// decoding always produces fresh buffers.
func (s *Selector) RestoreSpill(st SpillState, now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.syncStoredLocked()
	if len(st.Base) > 0 {
		s.base = st.Base
		s.baseTag = st.BaseTag
	}
	if st.Version > s.version {
		s.version = st.Version
	}
	s.lastRebase = now
	s.hasRebased = s.version > s.nextVersionLocked(0)

	K := s.cfg.MaxSamples
	cands := st.Candidates
	if len(cands) > K {
		cands = cands[:K]
	}
	s.candidates = nil
	s.refs = nil
	s.dists = nil
	for _, d := range cands {
		s.candidates = append(s.candidates, sample{doc: d.Bytes, tag: d.Tag})
	}
	if s.cfg.Eviction == EvictTwoSet {
		refs := st.Refs
		if len(refs) > K {
			refs = refs[:K]
		}
		for _, d := range refs {
			s.refs = append(s.refs, sample{doc: d.Bytes, tag: d.Tag})
		}
		for i := range s.candidates {
			row := make([]int, len(s.refs))
			for j := range s.refs {
				row[j] = s.cfg.DeltaSize(s.candidates[i].doc, s.refs[j].doc)
			}
			s.dists = append(s.dists, row)
		}
		return
	}
	// Single-set variants: references are the candidates themselves.
	for i := range s.candidates {
		row := make([]int, len(s.candidates))
		for j := range s.candidates {
			if i != j {
				row[j] = s.cfg.DeltaSize(s.candidates[i].doc, s.candidates[j].doc)
			}
		}
		s.dists = append(s.dists, row)
	}
}

// RaiseVersion lifts the version counter to at least v without touching
// any other state. The fault-in path uses it when a spill record turns
// out to be stale (the class re-warmed from traffic or an NDJSON restore
// first): the record's bytes are discarded but its version high-water
// mark must survive, so no number is ever reused for different bytes.
func (s *Selector) RaiseVersion(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if v > s.version {
		s.version = v
		s.hasRebased = v > s.nextVersionLocked(0)
	}
}

// bumpVersionLocked advances the version counter to the next number in this
// node's stride class. With the default stride of 1 this is a plain
// increment. Callers hold s.mu.
func (s *Selector) bumpVersionLocked() {
	s.version = s.nextVersionLocked(s.version)
}

// nextVersionLocked returns the smallest v > after with
// v ≡ VersionOffset (mod VersionStride).
func (s *Selector) nextVersionLocked(after int) int {
	v := after + 1
	stride, off := s.cfg.VersionStride, s.cfg.VersionOffset
	if rem := ((v-off)%stride + stride) % stride; rem != 0 {
		v += stride - rem
	}
	return v
}
