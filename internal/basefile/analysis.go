package basefile

import (
	"math"
	"math/rand/v2"
)

// PErrorBound evaluates the paper's upper bound on the probability that the
// randomized algorithm discards the best base-file candidate over the whole
// request sequence (Section IV):
//
//	P_error <= (N - K) / ((ln N)^(K-1) * (K-1)!)
//
// where N is the expected number of base-file candidates (R*p) and K the
// number of stored documents. For the paper's example (R=1e5, p=1e-2, K=10,
// so N=1000) the bound evaluates to about 8e-11. The result is capped at 1:
// for small K the expression exceeds 1 and carries no information.
func PErrorBound(n, k int) float64 {
	if k <= 1 || n <= k {
		return 1
	}
	logN := math.Log(float64(n))
	// (ln N)^(K-1) * (K-1)! computed in log space to avoid overflow.
	logDenom := float64(k-1)*math.Log(logN) + logFactorial(k-1)
	return math.Min(1, float64(n-k)*math.Exp(-logDenom))
}

// PErrorAtEviction evaluates the per-eviction error bound c^(K-1)/(K-1)!
// with c = 1/ln(N-1): the probability that a single eviction discards the
// globally best candidate.
func PErrorAtEviction(n, k int) float64 {
	if k <= 1 || n <= 2 {
		return 1
	}
	c := 1 / math.Log(float64(n-1))
	return math.Exp(float64(k-1)*math.Log(c) - logFactorial(k-1))
}

func logFactorial(n int) float64 {
	total := 0.0
	for i := 2; i <= n; i++ {
		total += math.Log(float64(i))
	}
	return total
}

// SimulateSelectionError runs a Monte-Carlo simulation of the abstract
// eviction model behind the Section IV analysis and returns the fraction of
// trials in which the best candidate was evicted at least once.
//
// The model: N candidates arrive in random order, indexed by true quality
// (candidate 1 is globally best). K are stored. At each eviction the
// algorithm discards the stored candidate it believes is worst; its belief
// inverts the true order of two candidates i1 < i2 with probability
// c/|i1-i2| where c normalizes sum_{i=1..N-1} 1/i to one, exactly as the
// paper assumes. The returned rate can be compared against PErrorBound.
func SimulateSelectionError(n, k, trials int, seed uint64) float64 {
	if n <= k || k < 2 || trials <= 0 {
		return 0
	}
	rng := rand.New(rand.NewPCG(seed, 0xDA3E39CB94B95BDB))

	// Normalizing constant c * sum 1/i = 1.
	harm := 0.0
	for i := 1; i <= n-1; i++ {
		harm += 1 / float64(i)
	}
	c := 1 / harm

	errors := 0
	for t := 0; t < trials; t++ {
		order := rng.Perm(n) // arrival order of candidate ranks (0 = best)
		stored := make([]int, 0, k+1)
		bestEvicted := false
		for _, rank := range order {
			stored = append(stored, rank)
			if len(stored) <= k {
				continue
			}
			// The algorithm evicts what it believes is worst. Beliefs can
			// swap adjacent-quality candidates with probability c/|i1-i2|.
			perceivedWorst := 0
			for i := 1; i < len(stored); i++ {
				a, b := stored[perceivedWorst], stored[i]
				hi, lo := a, b
				if hi < lo {
					hi, lo = lo, hi
				}
				trueCmp := b > a // b truly worse than a
				flip := rng.Float64() < c/float64(hi-lo)
				if trueCmp != flip {
					perceivedWorst = i
				}
			}
			if stored[perceivedWorst] == 0 {
				bestEvicted = true
			}
			stored = append(stored[:perceivedWorst], stored[perceivedWorst+1:]...)
		}
		if bestEvicted {
			errors++
		}
	}
	return float64(errors) / float64(trials)
}
