package basefile_test

import (
	"fmt"
	"time"

	"cbde/internal/basefile"
)

func ExampleSelector() {
	s := basefile.NewSelector(basefile.Config{
		SampleProb: 1, // sample everything, for a deterministic example
		MaxSamples: 4,
		Seed:       1,
	})
	now := time.Unix(0, 0)

	// The class sees one outlier and then a family of similar documents.
	docs := [][]byte{
		[]byte("an unusual error page unlike the others at all whatsoever!!"),
		[]byte("catalog page for item 1: shared layout, shared navigation aa"),
		[]byte("catalog page for item 2: shared layout, shared navigation bb"),
		[]byte("catalog page for item 3: shared layout, shared navigation cc"),
		[]byte("catalog page for item 4: shared layout, shared navigation dd"),
	}
	for _, d := range docs {
		s.Observe(d, now)
		now = now.Add(time.Minute)
	}
	base, version := s.Base()
	fmt.Println("rebased past the outlier:", version > 1)
	fmt.Println("base is a catalog page:", string(base[:7]) == "catalog")
	// Output:
	// rebased past the outlier: true
	// base is a catalog page: true
}

func ExamplePErrorBound() {
	// The paper's example: R=1e5 requests sampled at p=1e-2 gives N=1000
	// candidates; with K=10 stored documents the probability of ever
	// discarding the best candidate is vanishing.
	fmt.Printf("%.1e\n", basefile.PErrorBound(1000, 10))
	// Output: 7.6e-11
}
