package basefile

import (
	"bytes"
	"fmt"
	"math/rand/v2"
	"sync"
	"testing"
	"time"

	"cbde/internal/vdelta"
)

// classDocs builds a family of similar documents: a shared template with
// per-document variations. Documents with lower "distance" share more bytes
// with the rest of the family and therefore make better base-files.
func classDocs(rng *rand.Rand, n, size int) [][]byte {
	template := make([]byte, size)
	for i := range template {
		template[i] = byte('a' + rng.IntN(26))
	}
	docs := make([][]byte, n)
	for i := range docs {
		doc := append([]byte{}, template...)
		// Vary a handful of regions per document.
		edits := 1 + rng.IntN(4)
		for e := 0; e < edits; e++ {
			pos := rng.IntN(size - 64)
			for j := 0; j < 32+rng.IntN(32); j++ {
				doc[pos+j] = byte('A' + rng.IntN(26))
			}
		}
		docs[i] = append(doc, []byte(fmt.Sprintf("<!-- doc %d -->", i))...)
	}
	return docs
}

// outlierDoc returns a document unrelated to the class.
func outlierDoc(rng *rand.Rand, size int) []byte {
	doc := make([]byte, size)
	for i := range doc {
		doc[i] = byte('0' + rng.IntN(10))
	}
	return doc
}

// averageDeltaSize replays docs through strategy, measuring the real delta
// between each document and the base-file in force when it arrives —
// exactly the Table III evaluation.
func averageDeltaSize(t *testing.T, s Strategy, docs [][]byte) float64 {
	t.Helper()
	coder := vdelta.NewCoder()
	now := time.Unix(0, 0)
	total, count := 0, 0
	for _, doc := range docs {
		base, version := s.Base()
		if version > 0 {
			delta, err := coder.Encode(base, doc)
			if err != nil {
				t.Fatalf("Encode: %v", err)
			}
			total += len(delta)
			count++
		}
		s.Observe(doc, now)
		now = now.Add(time.Second)
	}
	if count == 0 {
		return 0
	}
	return float64(total) / float64(count)
}

func TestSelectorFirstDocBecomesBase(t *testing.T) {
	s := NewSelector(Config{})
	doc := []byte("the very first response")
	ev := s.Observe(doc, time.Unix(0, 0))
	if !ev.Initialized {
		t.Error("first Observe should initialize the base")
	}
	base, version := s.Base()
	if version != 1 || !bytes.Equal(base, doc) {
		t.Errorf("Base() = %d bytes, v%d; want the first doc at v1", len(base), version)
	}
}

func TestSelectorBaseIsCopied(t *testing.T) {
	s := NewSelector(Config{})
	doc := []byte("mutable document")
	s.Observe(doc, time.Unix(0, 0))
	doc[0] = 'X'
	base, _ := s.Base()
	if base[0] == 'X' {
		t.Error("selector retained a reference to the caller's slice")
	}
}

func TestSelectorStoresAtMostK(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	docs := classDocs(rng, 60, 2000)
	for _, policy := range []EvictionPolicy{EvictWorst, EvictPeriodicRandom, EvictTwoSet} {
		t.Run(policy.String(), func(t *testing.T) {
			s := NewSelector(Config{SampleProb: 1, MaxSamples: 5, Eviction: policy})
			now := time.Unix(0, 0)
			for _, d := range docs {
				s.Observe(d, now)
				if got := s.Stats().Stored; got > 5 {
					t.Fatalf("stored %d candidates, want <= 5", got)
				}
				now = now.Add(time.Second)
			}
			st := s.Stats()
			if st.Stored != 5 {
				t.Errorf("stored = %d, want 5 after 60 sampled docs", st.Stored)
			}
			if st.Sampled != 60 {
				t.Errorf("sampled = %d, want 60 with p=1", st.Sampled)
			}
		})
	}
}

func TestSelectorSamplingProbability(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	docs := classDocs(rng, 500, 400)
	s := NewSelector(Config{SampleProb: 0.2, MaxSamples: 8, Seed: 7})
	now := time.Unix(0, 0)
	for _, d := range docs {
		s.Observe(d, now)
		now = now.Add(time.Second)
	}
	got := s.Stats().Sampled
	// 500 * 0.2 = 100 expected; allow generous slack.
	if got < 60 || got > 140 {
		t.Errorf("sampled %d of 500 with p=0.2, want ~100", got)
	}
}

func TestRebaseTimeout(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	docs := classDocs(rng, 40, 1500)
	s := NewSelector(Config{SampleProb: 1, MaxSamples: 6, RebaseTimeout: time.Hour})
	start := time.Unix(0, 0)

	// Feed an outlier first so a better candidate will certainly appear.
	s.Observe(outlierDoc(rng, 1500), start)
	rebases := 0
	for i, d := range docs {
		ev := s.Observe(d, start.Add(time.Duration(i+1)*time.Second))
		if ev.GroupRebase {
			rebases++
		}
	}
	// All observations happen within the hour following the first rebase;
	// at most one group-rebase can fire.
	if rebases > 1 {
		t.Errorf("%d group-rebases within one timeout window, want <= 1", rebases)
	}

	// After the timeout expires, a rebase may fire again.
	ev := s.Observe(docs[0], start.Add(2*time.Hour))
	_ = ev // may or may not rebase; the invariant is the count above
}

func TestBasicRebaseFlushesSamples(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	docs := classDocs(rng, 20, 1000)
	s := NewSelector(Config{SampleProb: 1, MaxSamples: 8})
	now := time.Unix(0, 0)
	for _, d := range docs {
		s.Observe(d, now)
		now = now.Add(time.Second)
	}
	if s.Stats().Stored == 0 {
		t.Fatal("expected stored candidates before basic-rebase")
	}
	_, vBefore := s.Base()
	newDoc := outlierDoc(rng, 1000)
	v := s.BasicRebase(newDoc, "", now)
	if v != vBefore+1 {
		t.Errorf("version after basic-rebase = %d, want %d", v, vBefore+1)
	}
	if got := s.Stats().Stored; got != 0 {
		t.Errorf("stored = %d after basic-rebase, want 0 (flushed)", got)
	}
	base, _ := s.Base()
	if !bytes.Equal(base, newDoc) {
		t.Error("basic-rebase did not install the supplied document")
	}
}

func TestRandomizedBeatsFirstResponseOnBadStart(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	family := classDocs(rng, 120, 4000)
	docs := append([][]byte{outlierDoc(rng, 4000)}, family...)

	fr := averageDeltaSize(t, NewFirstResponse(), append([][]byte{}, docs...))
	rnd := averageDeltaSize(t, NewSelector(Config{SampleProb: 0.2, MaxSamples: 8, Seed: 1}), append([][]byte{}, docs...))

	if rnd >= fr {
		t.Errorf("randomized avg delta %.0f should beat first-response %.0f when the first doc is an outlier", rnd, fr)
	}
}

func TestOnlineOptimalAtLeastAsGoodAsFirstResponse(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 6))
	docs := append([][]byte{outlierDoc(rng, 3000)}, classDocs(rng, 80, 3000)...)
	fr := averageDeltaSize(t, NewFirstResponse(), docs)
	opt := averageDeltaSize(t, NewOnlineOptimal(nil), docs)
	if opt > fr {
		t.Errorf("online-optimal %.0f worse than first-response %.0f", opt, fr)
	}
}

func TestOnlineOptimalStoresEverything(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	docs := classDocs(rng, 30, 500)
	o := NewOnlineOptimal(nil)
	now := time.Unix(0, 0)
	total := 0
	for _, d := range docs {
		o.Observe(d, now)
		total += len(d)
	}
	if got := o.StoredBytes(); got != total {
		t.Errorf("StoredBytes = %d, want %d — the exhaustive algorithm keeps everything", got, total)
	}
}

func TestOfflinePicksMedoid(t *testing.T) {
	// Three docs: two near-identical, one outlier. The medoid must be one
	// of the similar pair.
	rng := rand.New(rand.NewPCG(8, 8))
	family := classDocs(rng, 2, 2000)
	docs := [][]byte{outlierDoc(rng, 2000), family[0], family[1]}
	best := Offline(docs, nil)
	if best == 0 {
		t.Error("Offline chose the outlier as base-file")
	}
	if got := Offline(nil, nil); got != -1 {
		t.Errorf("Offline(nil) = %d, want -1", got)
	}
}

func TestFirstResponseNeverRebases(t *testing.T) {
	fr := NewFirstResponse()
	now := time.Unix(0, 0)
	fr.Observe([]byte("first"), now)
	for i := 0; i < 10; i++ {
		ev := fr.Observe([]byte(fmt.Sprintf("other %d", i)), now)
		if ev.GroupRebase || ev.Initialized {
			t.Fatal("first-response must never change its base")
		}
	}
	base, v := fr.Base()
	if v != 1 || string(base) != "first" {
		t.Errorf("Base() = %q v%d, want \"first\" v1", base, v)
	}
}

func TestPErrorBoundPaperExample(t *testing.T) {
	// R=1e5, p=1e-2 => N=1000; K=10 => P_error <= 8e-11 (Section IV).
	got := PErrorBound(1000, 10)
	if got > 8e-11 {
		t.Errorf("PErrorBound(1000, 10) = %g, paper says <= 8e-11", got)
	}
	if got < 1e-12 {
		t.Errorf("PErrorBound(1000, 10) = %g, implausibly small", got)
	}
}

func TestPErrorBoundMonotonicInK(t *testing.T) {
	prev := 1.0
	for k := 2; k <= 12; k++ {
		b := PErrorBound(1000, k)
		if b > prev {
			t.Errorf("bound not decreasing in K: K=%d bound=%g prev=%g", k, b, prev)
		}
		prev = b
	}
}

func TestPErrorBoundEdgeCases(t *testing.T) {
	if PErrorBound(5, 10) != 1 {
		t.Error("N <= K should return the trivial bound 1")
	}
	if PErrorBound(100, 1) != 1 {
		t.Error("K <= 1 should return the trivial bound 1")
	}
}

func TestPErrorAtEviction(t *testing.T) {
	// c = 1/ln(999) ~= 0.1448; c^9/9! ~= 7.6e-14.
	got := PErrorAtEviction(1000, 10)
	if got > 1e-12 || got < 1e-15 {
		t.Errorf("PErrorAtEviction(1000,10) = %g, want ~7.6e-14", got)
	}
}

func TestSimulatedErrorRespectsBound(t *testing.T) {
	// With small N and K the bound is loose but must still dominate the
	// simulated error rate.
	n, k := 50, 4
	rate := SimulateSelectionError(n, k, 2000, 99)
	bound := PErrorBound(n, k)
	if rate > bound {
		t.Errorf("simulated error %.4f exceeds analytic bound %.4f", rate, bound)
	}
}

func TestSimulateSelectionErrorDegenerate(t *testing.T) {
	if got := SimulateSelectionError(3, 5, 100, 1); got != 0 {
		t.Errorf("N<=K should return 0, got %v", got)
	}
	if got := SimulateSelectionError(10, 1, 100, 1); got != 0 {
		t.Errorf("K<2 should return 0, got %v", got)
	}
}

func TestSelectorConcurrent(t *testing.T) {
	rng := rand.New(rand.NewPCG(10, 10))
	docs := classDocs(rng, 64, 500)
	s := NewSelector(Config{SampleProb: 0.5, MaxSamples: 6})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			now := time.Unix(int64(w), 0)
			for i, d := range docs {
				s.Observe(d, now.Add(time.Duration(i)*time.Millisecond))
				if i%16 == 0 {
					s.Base()
					s.Stats()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := s.Stats().Stored; got > 6 {
		t.Errorf("stored %d > K after concurrent load", got)
	}
}

func TestEvictionPolicyString(t *testing.T) {
	tests := map[EvictionPolicy]string{
		EvictWorst:          "worst",
		EvictPeriodicRandom: "periodic-random",
		EvictTwoSet:         "two-set",
		EvictionPolicy(42):  "EvictionPolicy(42)",
	}
	for p, want := range tests {
		if got := p.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(p), got, want)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.SampleProb != 0.2 || c.MaxSamples != 8 || c.Eviction != EvictWorst {
		t.Errorf("unexpected defaults: %+v", c)
	}
	if c.DeltaSize == nil {
		t.Fatal("default DeltaSize is nil")
	}
	if got := c.DeltaSize([]byte("abc"), []byte("abc")); got <= 0 {
		t.Errorf("default DeltaSize = %d, want positive", got)
	}
	// Invalid values fall back too.
	c = Config{SampleProb: 2.5, MaxSamples: -1, RandomEvictEvery: -1}.withDefaults()
	if c.SampleProb != 0.2 || c.MaxSamples != 8 || c.RandomEvictEvery != 4 {
		t.Errorf("invalid values not defaulted: %+v", c)
	}
}

// TestVersionStriding: with stride = cluster size and per-node offsets,
// every version a selector mints stays in its residue class, versions are
// strictly increasing, and no two offsets can ever mint the same version —
// the invariant that makes (class, version) globally unique across a
// delta-server tier.
func TestVersionStriding(t *testing.T) {
	const stride = 3
	now := time.Unix(0, 0)
	seen := make(map[int]int) // version -> offset that minted it
	for off := 0; off < stride; off++ {
		s := NewSelector(Config{
			SampleProb:    1,
			VersionStride: stride,
			VersionOffset: off,
		})
		prev := 0
		for i := 0; i < 20; i++ {
			// BasicRebase bumps unconditionally, exercising the counter.
			v := s.BasicRebase([]byte(fmt.Sprintf("doc-%d", i)), "", now)
			if v <= prev {
				t.Fatalf("offset %d: version %d not increasing past %d", off, v, prev)
			}
			if v%stride != off {
				t.Fatalf("offset %d minted version %d (≡ %d mod %d)", off, v, v%stride, stride)
			}
			if other, dup := seen[v]; dup {
				t.Fatalf("version %d minted by offsets %d and %d", v, other, off)
			}
			seen[v] = off
			prev = v
		}
	}
}

// TestVersionStridingDefaults: the zero config keeps plain increments, and
// Observe's bootstrap bump respects the stride too.
func TestVersionStridingDefaults(t *testing.T) {
	now := time.Unix(0, 0)
	s := NewSelector(Config{SampleProb: -1})
	s.Observe([]byte("doc"), now)
	if _, v := s.Base(); v != 1 {
		t.Fatalf("default stride first version = %d, want 1", v)
	}
	s = NewSelector(Config{SampleProb: -1, VersionStride: 4, VersionOffset: 2})
	s.Observe([]byte("doc"), now)
	if _, v := s.Base(); v != 2 {
		t.Fatalf("strided bootstrap version = %d, want 2", v)
	}
	// Restore past a foreign version: the next mint lands back in this
	// node's residue class, strictly above the restored counter.
	s.Restore(nil, "", 7, now)
	if v := s.BasicRebase([]byte("doc2"), "", now); v != 10 {
		t.Fatalf("post-restore version = %d, want 10", v)
	}
}
