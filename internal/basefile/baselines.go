package basefile

import "time"

// FirstResponse is the simplest base-file scheme: the document corresponding
// to the request that created the class stays the base-file forever. Table
// III compares the randomized algorithm against it.
type FirstResponse struct {
	base    []byte
	version int
}

var _ Strategy = (*FirstResponse)(nil)

// NewFirstResponse returns an empty FirstResponse strategy.
func NewFirstResponse() *FirstResponse { return &FirstResponse{} }

// Observe implements Strategy.
func (f *FirstResponse) Observe(doc []byte, _ time.Time) Event {
	if f.version != 0 {
		return Event{}
	}
	f.base = cloneBytes(doc)
	f.version = 1
	return Event{Initialized: true}
}

// Base implements Strategy.
func (f *FirstResponse) Base() ([]byte, int) { return f.base, f.version }

// OnlineOptimal is the exhaustive online algorithm: it stores every document
// seen so far and uses as the base-file the one that minimizes the average
// delta against all of them. The paper deems it impracticable (memory and
// computation grow with the request stream) but uses it as the quality
// yardstick in Table III.
type OnlineOptimal struct {
	deltaSize DeltaSizeFunc
	docs      [][]byte
	utility   []int // utility[i] = sum_j deltaSize(docs[i], docs[j])
	base      []byte
	version   int
}

var _ Strategy = (*OnlineOptimal)(nil)

// NewOnlineOptimal returns an OnlineOptimal strategy measuring candidate
// quality with deltaSize (nil selects the same default as Config.DeltaSize).
func NewOnlineOptimal(deltaSize DeltaSizeFunc) *OnlineOptimal {
	if deltaSize == nil {
		deltaSize = Config{}.withDefaults().DeltaSize
	}
	return &OnlineOptimal{deltaSize: deltaSize}
}

// Observe implements Strategy.
func (o *OnlineOptimal) Observe(doc []byte, _ time.Time) Event {
	var ev Event
	doc = cloneBytes(doc)
	for i := range o.docs {
		o.utility[i] += o.deltaSize(o.docs[i], doc)
	}
	u := 0
	for i := range o.docs {
		u += o.deltaSize(doc, o.docs[i])
	}
	o.docs = append(o.docs, doc)
	o.utility = append(o.utility, u)

	best, bestU := 0, o.utility[0]
	for i, v := range o.utility {
		if v < bestU {
			best, bestU = i, v
		}
	}
	if o.version == 0 {
		ev.Initialized = true
	}
	if !bytesEqual(o.docs[best], o.base) {
		o.base = o.docs[best]
		o.version++
		if o.version > 1 {
			ev.GroupRebase = true
		}
	}
	return ev
}

// Base implements Strategy.
func (o *OnlineOptimal) Base() ([]byte, int) { return o.base, o.version }

// StoredBytes reports how much document storage the exhaustive algorithm has
// accumulated — the cost that motivates the randomized scheme.
func (o *OnlineOptimal) StoredBytes() int {
	total := 0
	for _, d := range o.docs {
		total += len(d)
	}
	return total
}

// Offline returns the index of the document in docs that an offline
// algorithm with full future knowledge would choose: the one minimizing the
// sum of deltas between itself and every other document. It returns -1 for
// an empty slice.
func Offline(docs [][]byte, deltaSize DeltaSizeFunc) int {
	if deltaSize == nil {
		deltaSize = Config{}.withDefaults().DeltaSize
	}
	best, bestU := -1, 0
	for i := range docs {
		u := 0
		for j := range docs {
			if i == j {
				continue
			}
			u += deltaSize(docs[i], docs[j])
		}
		if best == -1 || u < bestU {
			best, bestU = i, u
		}
	}
	return best
}
