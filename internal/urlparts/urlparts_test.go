package urlparts

import (
	"strings"
	"sync"
	"testing"
)

// TestTableI verifies the exact partitions of the paper's Table I.
func TestTableI(t *testing.T) {
	tests := []struct {
		url        string
		hint, rest string
	}{
		{"www.foo.com/laptops?id=100", "laptops", "id=100"},
		{"www.foo.com/?dept=laptops&id=100", "dept=laptops", "id=100"},
		{"www.foo.com/laptops/100", "laptops", "100"},
	}
	for _, tt := range tests {
		t.Run(tt.url, func(t *testing.T) {
			p, err := Partition(tt.url)
			if err != nil {
				t.Fatal(err)
			}
			if p.Server != "www.foo.com" {
				t.Errorf("server = %q, want www.foo.com", p.Server)
			}
			if p.Hint != tt.hint {
				t.Errorf("hint = %q, want %q", p.Hint, tt.hint)
			}
			if p.Rest != tt.rest {
				t.Errorf("rest = %q, want %q", p.Rest, tt.rest)
			}
		})
	}
}

func TestDefaultHeuristic(t *testing.T) {
	tests := []struct {
		url                string
		server, hint, rest string
	}{
		{"http://example.com/news/sports/item42?ref=home", "example.com", "news", "sports/item42?ref=home"},
		{"https://Example.COM/", "example.com", "", ""},
		{"example.com", "example.com", "", ""},
		{"example.com/a/b/c", "example.com", "a", "b/c"},
		{"example.com/?x=1", "example.com", "x=1", ""},
		{"example.com/?x=1&y=2&z=3", "example.com", "x=1", "y=2&z=3"},
		{"example.com:8080/shop/cart", "example.com:8080", "shop", "cart"},
	}
	for _, tt := range tests {
		t.Run(tt.url, func(t *testing.T) {
			p, err := Partition(tt.url)
			if err != nil {
				t.Fatal(err)
			}
			if p.Server != tt.server || p.Hint != tt.hint || p.Rest != tt.rest {
				t.Errorf("got %v, want server=%q hint=%q rest=%q", p, tt.server, tt.hint, tt.rest)
			}
		})
	}
}

func TestPartitionErrors(t *testing.T) {
	for _, u := range []string{"", "http://", "://nope", "http://%zz/path"} {
		if _, err := Partition(u); err == nil {
			t.Errorf("Partition(%q): expected error", u)
		}
	}
}

func TestCustomRuleQueryParam(t *testing.T) {
	// Site keyed by the "dept" query parameter regardless of position.
	rs := NewRuleSet()
	if err := rs.Add("www.foo.com", `dept=(?P<hint>[^&]+)`); err != nil {
		t.Fatal(err)
	}
	p, err := rs.Partition("www.foo.com/?id=100&dept=laptops")
	if err != nil {
		t.Fatal(err)
	}
	if p.Hint != "laptops" {
		t.Errorf("hint = %q, want laptops", p.Hint)
	}
	if !strings.Contains(p.Rest, "id=100") {
		t.Errorf("rest = %q, want it to retain id=100", p.Rest)
	}
}

func TestCustomRuleTwoGroups(t *testing.T) {
	rs := NewRuleSet()
	// Second path segment is the hint; third is the rest.
	if err := rs.Add("shop.example.com", `^catalog/([^/]+)/(.*)$`); err != nil {
		t.Fatal(err)
	}
	p, err := rs.Partition("shop.example.com/catalog/laptops/item-9")
	if err != nil {
		t.Fatal(err)
	}
	if p.Hint != "laptops" || p.Rest != "item-9" {
		t.Errorf("got %v, want hint=laptops rest=item-9", p)
	}
}

func TestCustomRuleNamedRest(t *testing.T) {
	rs := NewRuleSet()
	if err := rs.Add("a.com", `^(?P<rest>[^/]+)/(?P<hint>[^/]+)$`); err != nil {
		t.Fatal(err)
	}
	p, err := rs.Partition("a.com/item-9/laptops")
	if err != nil {
		t.Fatal(err)
	}
	if p.Hint != "laptops" || p.Rest != "item-9" {
		t.Errorf("got %v, want hint=laptops rest=item-9", p)
	}
}

func TestRuleFallbackWhenNoMatch(t *testing.T) {
	rs := NewRuleSet()
	if err := rs.Add("www.foo.com", `^catalog/([^/]+)`); err != nil {
		t.Fatal(err)
	}
	// URL does not match the rule: default heuristic applies.
	p, err := rs.Partition("www.foo.com/laptops/100")
	if err != nil {
		t.Fatal(err)
	}
	if p.Hint != "laptops" || p.Rest != "100" {
		t.Errorf("fallback failed: %v", p)
	}
}

func TestRuleOnlyAppliesToItsServer(t *testing.T) {
	rs := NewRuleSet()
	if err := rs.Add("www.foo.com", `dept=(?P<hint>[^&]+)`); err != nil {
		t.Fatal(err)
	}
	p, err := rs.Partition("www.bar.com/?dept=laptops&id=1")
	if err != nil {
		t.Fatal(err)
	}
	if p.Hint != "dept=laptops" { // default heuristic, not the foo.com rule
		t.Errorf("hint = %q, want dept=laptops via default heuristic", p.Hint)
	}
}

func TestBadRule(t *testing.T) {
	rs := NewRuleSet()
	if err := rs.Add("x.com", `([`); err == nil {
		t.Error("expected compile error")
	}
	if err := rs.Add("x.com", `no-groups-here`); err == nil {
		t.Error("expected error for rule without capture group")
	}
	if _, err := NewRule(`(`); err == nil {
		t.Error("expected compile error from NewRule")
	}
}

func TestConcurrentPartition(t *testing.T) {
	rs := NewRuleSet()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%2 == 0 {
				_ = rs.Add("www.foo.com", `dept=(?P<hint>[^&]+)`)
			}
			for j := 0; j < 200; j++ {
				if _, err := rs.Partition("www.foo.com/laptops?id=1"); err != nil {
					t.Errorf("Partition: %v", err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}
