package urlparts_test

import (
	"fmt"

	"cbde/internal/urlparts"
)

func ExamplePartition() {
	// The three URL organizations of the paper's Table I.
	for _, url := range []string{
		"www.foo.com/laptops?id=100",
		"www.foo.com/?dept=laptops&id=100",
		"www.foo.com/laptops/100",
	} {
		p, err := urlparts.Partition(url)
		if err != nil {
			panic(err)
		}
		fmt.Printf("hint=%s rest=%s\n", p.Hint, p.Rest)
	}
	// Output:
	// hint=laptops rest=id=100
	// hint=dept=laptops rest=id=100
	// hint=laptops rest=100
}

func ExampleRuleSet_Add() {
	// A site keyed by a "category" query parameter, described by the
	// administrator with a regular expression.
	rs := urlparts.NewRuleSet()
	if err := rs.Add("shop.example.com", `category=(?P<hint>[^&]+)`); err != nil {
		panic(err)
	}
	p, err := rs.Partition("shop.example.com/browse?page=2&category=cameras")
	if err != nil {
		panic(err)
	}
	fmt.Println(p.Hint)
	// Output: cameras
}
