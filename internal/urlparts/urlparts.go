// Package urlparts partitions URLs into the three parts the grouping
// mechanism of Section III uses as search hints: the server-part, the
// hint-part, and the rest.
//
// The server-part is the host ("the string from the beginning of the URL
// till the first slash"). Which portion of the remainder serves as the
// hint-part depends on how each web-site organizes its content (Table I);
// site administrators describe it with regular expressions via RuleSet.Add,
// and a built-in heuristic covers the three common layouts of Table I when
// no rule is registered:
//
//	www.foo.com/laptops?id=100        -> hint "laptops",      rest "id=100"
//	www.foo.com/?dept=laptops&id=100  -> hint "dept=laptops", rest "id=100"
//	www.foo.com/laptops/100           -> hint "laptops",      rest "100"
package urlparts

import (
	"fmt"
	"net/url"
	"regexp"
	"strings"
	"sync"
)

// Parts is the three-way partition of a URL.
type Parts struct {
	Server string // host, e.g. "www.foo.com"
	Hint   string // site-organization-dependent similarity hint
	Rest   string // remainder used to distinguish documents within a hint
}

// String renders the partition for logs and tests.
func (p Parts) String() string {
	return fmt.Sprintf("server=%q hint=%q rest=%q", p.Server, p.Hint, p.Rest)
}

// Rule extracts the hint-part from the post-host portion of a URL using an
// administrator-supplied regular expression. The expression is applied to
// the path-plus-query (without the leading slash). The hint is the content
// of the capture group named "hint", or group 1 if there is no named group.
// If a group named "rest" (or a second group) exists it becomes the rest;
// otherwise the rest is the input with the hint match removed.
type Rule struct {
	pattern *regexp.Regexp
	hintIdx int
	restIdx int // 0 if absent
}

// NewRule compiles pattern into a Rule. The pattern must contain at least
// one capture group.
func NewRule(pattern string) (*Rule, error) {
	re, err := regexp.Compile(pattern)
	if err != nil {
		return nil, fmt.Errorf("urlparts: compile rule: %w", err)
	}
	if re.NumSubexp() < 1 {
		return nil, fmt.Errorf("urlparts: rule %q has no capture group for the hint", pattern)
	}
	r := &Rule{pattern: re, hintIdx: 1}
	for i, name := range re.SubexpNames() {
		switch name {
		case "hint":
			r.hintIdx = i
		case "rest":
			r.restIdx = i
		}
	}
	if r.restIdx == 0 && re.NumSubexp() >= 2 && r.hintIdx == 1 {
		r.restIdx = 2
	}
	return r, nil
}

// apply extracts (hint, rest) from the path-plus-query s. ok is false when
// the pattern does not match, in which case the caller falls back to the
// default heuristic.
func (r *Rule) apply(s string) (hint, rest string, ok bool) {
	m := r.pattern.FindStringSubmatchIndex(s)
	if m == nil {
		return "", "", false
	}
	group := func(i int) (string, bool) {
		if 2*i+1 >= len(m) || m[2*i] < 0 {
			return "", false
		}
		return s[m[2*i]:m[2*i+1]], true
	}
	hint, ok = group(r.hintIdx)
	if !ok {
		return "", "", false
	}
	if r.restIdx > 0 {
		if v, found := group(r.restIdx); found {
			return hint, v, true
		}
	}
	// Remove the hint match from the input to form the rest.
	lo, hi := m[2*r.hintIdx], m[2*r.hintIdx+1]
	rest = strings.Trim(s[:lo]+s[hi:], "/?&=")
	return hint, rest, true
}

// RuleSet maps server-parts to hint-extraction rules and partitions URLs.
// The zero value is not usable; call NewRuleSet. RuleSet is safe for
// concurrent use.
type RuleSet struct {
	mu    sync.RWMutex
	rules map[string]*Rule
}

// NewRuleSet returns an empty rule set; Partition falls back to the default
// Table I heuristic for servers without a registered rule.
func NewRuleSet() *RuleSet {
	return &RuleSet{rules: make(map[string]*Rule)}
}

// Add registers a hint-extraction pattern for the given server-part,
// replacing any previous rule for that server.
func (rs *RuleSet) Add(server, pattern string) error {
	rule, err := NewRule(pattern)
	if err != nil {
		return err
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.rules[normalizeServer(server)] = rule
	return nil
}

// Partition splits rawURL into server-part, hint-part and rest.
func (rs *RuleSet) Partition(rawURL string) (Parts, error) {
	server, pathQuery, err := splitServer(rawURL)
	if err != nil {
		return Parts{}, err
	}
	rs.mu.RLock()
	rule := rs.rules[server]
	rs.mu.RUnlock()
	if rule != nil {
		if hint, rest, ok := rule.apply(pathQuery); ok {
			return Parts{Server: server, Hint: hint, Rest: rest}, nil
		}
	}
	hint, rest := defaultHint(pathQuery)
	return Parts{Server: server, Hint: hint, Rest: rest}, nil
}

// Partition applies the default heuristic with no administrator rules.
func Partition(rawURL string) (Parts, error) {
	return NewRuleSet().Partition(rawURL)
}

func normalizeServer(s string) string {
	return strings.ToLower(strings.TrimSuffix(s, "/"))
}

// splitServer separates the host from the path-plus-query. URLs may arrive
// without a scheme (as in the paper's Table I).
func splitServer(rawURL string) (server, pathQuery string, err error) {
	s := rawURL
	if !strings.Contains(s, "://") {
		s = "http://" + s
	}
	u, err := url.Parse(s)
	if err != nil {
		return "", "", fmt.Errorf("urlparts: parse %q: %w", rawURL, err)
	}
	if u.Host == "" {
		return "", "", fmt.Errorf("urlparts: %q has no server-part", rawURL)
	}
	pq := strings.TrimPrefix(u.EscapedPath(), "/")
	if u.RawQuery != "" {
		pq += "?" + u.RawQuery
	}
	return normalizeServer(u.Host), pq, nil
}

// defaultHint implements the Table I heuristic on the path-plus-query
// (without leading slash).
func defaultHint(pathQuery string) (hint, rest string) {
	path, query, _ := strings.Cut(pathQuery, "?")
	path = strings.Trim(path, "/")

	if path != "" {
		// First path segment is the hint; remaining segments plus the query
		// form the rest.
		seg, remainder, _ := strings.Cut(path, "/")
		rest = remainder
		if query != "" {
			if rest != "" {
				rest += "?"
			}
			rest += query
		}
		return seg, rest
	}
	if query != "" {
		// No path: the first query pair is the hint, remaining pairs the rest.
		pair, remainder, _ := strings.Cut(query, "&")
		return pair, remainder
	}
	return "", ""
}
