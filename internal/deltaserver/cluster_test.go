package deltaserver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"cbde/internal/anonymize"
	"cbde/internal/basefile"
	"cbde/internal/cluster"
	"cbde/internal/core"
	"cbde/internal/deltahttp"
	"cbde/internal/flightrec"
	"cbde/internal/origin"
)

// clusterStack is an n-node delta-server tier over one origin, every node
// running its own engine with strided version numbering. Every node gets a
// flight recorder (threshold 0 = sample everything) so trace tests can read
// back what each hop saw.
type clusterStack struct {
	site     *origin.Site
	servers  []*Server
	fronts   []*httptest.Server
	clusters []*cluster.Cluster
	flights  []*flightrec.Recorder
}

func newClusterStack(t *testing.T, n int, redirect bool) *clusterStack {
	t.Helper()
	site := testSite()
	originSrv := httptest.NewServer(site.Handler())
	t.Cleanup(originSrv.Close)

	// The peer URLs must exist before the servers are built, so each front
	// dispatches through a slot that is filled in afterwards.
	st := &clusterStack{site: site, servers: make([]*Server, n)}
	for i := 0; i < n; i++ {
		i := i
		front := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			st.servers[i].ServeHTTP(w, r)
		}))
		t.Cleanup(front.Close)
		st.fronts = append(st.fronts, front)
	}
	peers := make([]cluster.Node, n)
	for i := range peers {
		peers[i] = cluster.Node{ID: fmt.Sprintf("node-%d", i), URL: st.fronts[i].URL}
	}
	for i := 0; i < n; i++ {
		cl, err := cluster.New(cluster.Config{Self: peers[i].ID, Peers: peers, Redirect: redirect})
		if err != nil {
			t.Fatal(err)
		}
		base := time.Unix(1_000_000, 0)
		seq := 0
		eng, err := core.NewEngine(core.Config{
			Anon: anonymize.Config{M: 1, N: 2},
			Selector: basefile.Config{
				VersionStride: cl.Size(),
				VersionOffset: cl.SelfIndex(),
			},
			Now: func() time.Time { seq++; return base.Add(time.Duration(seq) * time.Second) },
		})
		if err != nil {
			t.Fatal(err)
		}
		eng.SetTracing(true)
		fr := flightrec.New(peers[i].ID, 64, 0)
		srv, err := New(originSrv.URL, eng,
			WithPublicHost("www.shop.com"), WithCluster(cl),
			WithNodeID(peers[i].ID), WithFlightRecorder(fr))
		if err != nil {
			t.Fatal(err)
		}
		st.servers[i] = srv
		st.clusters = append(st.clusters, cl)
		st.flights = append(st.flights, fr)
	}
	return st
}

// ownerAndOther returns the index of the node owning path's class and the
// index of some other node.
func (st *clusterStack) ownerAndOther(path string) (owner, other int) {
	key := st.servers[0].engine.OwnerKey("www.shop.com" + path)
	ownerID := st.clusters[0].Owner(key).ID
	owner, other = -1, -1
	for i, cl := range st.clusters {
		if cl.Self().ID == ownerID {
			owner = i
		} else {
			other = i
		}
	}
	return owner, other
}

// TestClusterForwarding: a document request landing on a non-owning node is
// answered via exactly one forward hop, byte-identically to what the owner
// serves, and the counters attribute it correctly on both sides.
func TestClusterForwarding(t *testing.T) {
	st := newClusterStack(t, 3, false)
	const path = "/laptops/3"
	owner, other := st.ownerAndOther(path)

	respOther, bodyOther := doGet(t, st.fronts[other].URL+path,
		map[string]string{deltahttp.HeaderUser: "alice"})
	if respOther.StatusCode != http.StatusOK {
		t.Fatalf("status via non-owner = %d", respOther.StatusCode)
	}
	want, err := st.site.Render("laptops", 3, "alice", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bodyOther, want) {
		t.Error("forwarded response is not the exact document")
	}
	if got := st.clusters[other].Ctr.Forwarded.Value(); got != 1 {
		t.Errorf("non-owner Forwarded = %d, want 1", got)
	}
	if got := st.clusters[owner].Ctr.HopGuard.Value(); got != 1 {
		t.Errorf("owner HopGuard = %d, want 1", got)
	}
	if got := st.clusters[owner].Ctr.Forwarded.Value(); got != 0 {
		t.Errorf("owner Forwarded = %d, want 0 (hop guard must stop re-forwarding)", got)
	}

	// Owner-served requests count as owned, not forwarded.
	respOwner, bodyOwner := doGet(t, st.fronts[owner].URL+path,
		map[string]string{deltahttp.HeaderUser: "alice"})
	if respOwner.StatusCode != http.StatusOK || !bytes.Equal(bodyOwner, want) {
		t.Error("owner-served response wrong")
	}
	if got := st.clusters[owner].Ctr.Owned.Value(); got != 1 {
		t.Errorf("owner Owned = %d, want 1", got)
	}
}

// TestClusterForwardPreservesIdentity is the regression test for the
// forwarded-request identity bug: the owner must classify and anonymize on
// the ORIGINAL client's identity, not the forwarding node's. Identity
// reaches the engine via X-CBDE-User and via cookies; both must survive the
// hop.
func TestClusterForwardPreservesIdentity(t *testing.T) {
	st := newClusterStack(t, 3, false)
	const path = "/laptops/3"
	_, other := st.ownerAndOther(path)

	// Header identity: the owner's origin fetch must render bob's document.
	_, body := doGet(t, st.fronts[other].URL+path,
		map[string]string{deltahttp.HeaderUser: "bob"})
	want, err := st.site.Render("laptops", 3, "bob", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, want) {
		t.Error("forwarded request lost its header identity")
	}

	// Cookie identity crosses the hop too.
	req, err := http.NewRequest(http.MethodGet, st.fronts[other].URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.AddCookie(&http.Cookie{Name: "uid", Value: "carol"})
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got bytes.Buffer
	if _, err := got.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	want, err = st.site.Render("laptops", 3, "carol", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Error("forwarded request lost its cookie identity")
	}
	// The anonymization user count on the owner advanced with the real
	// identities: warm with distinct users through the NON-owner and check
	// the owner eventually distributes a base (it only does so after N=2
	// distinct users).
	var classID string
	var version int
	for i := 0; i < 12; i++ {
		resp, _ := doGet(t, st.fronts[other].URL+path, map[string]string{
			deltahttp.HeaderUser: "warm-user-" + strconv.Itoa(i),
		})
		classID = resp.Header.Get(deltahttp.HeaderClass)
		if v := resp.Header.Get(deltahttp.HeaderLatestVersion); v != "" {
			version, _ = strconv.Atoi(v)
		}
	}
	if classID == "" || version == 0 {
		t.Fatalf("anonymization never completed through the forward hop (class %q version %d)", classID, version)
	}
}

// TestClusterVersionStriding: bases minted by different nodes carry version
// numbers in disjoint residue classes, so an ownership move can never reuse
// a (class, version) pair.
func TestClusterVersionStriding(t *testing.T) {
	st := newClusterStack(t, 3, false)
	const path = "/laptops/1"
	owner, other := st.ownerAndOther(path)

	warmNode := func(i int) int {
		var version int
		for j := 0; j < 12; j++ {
			resp, _ := doGet(t, st.fronts[i].URL+path, map[string]string{
				deltahttp.HeaderUser:      fmt.Sprintf("warm-%d-%d", i, j),
				deltahttp.HeaderForwarded: "test-bypass", // pin to this node
			})
			if v := resp.Header.Get(deltahttp.HeaderLatestVersion); v != "" {
				version, _ = strconv.Atoi(v)
			}
		}
		return version
	}
	vOwner := warmNode(owner)
	vOther := warmNode(other)
	if vOwner == 0 || vOther == 0 {
		t.Fatalf("warm failed: owner v%d, other v%d", vOwner, vOther)
	}
	stride := st.clusters[0].Size()
	if vOwner%stride != st.clusters[owner].SelfIndex() {
		t.Errorf("owner minted v%d outside its residue class %d (mod %d)",
			vOwner, st.clusters[owner].SelfIndex(), stride)
	}
	if vOther%stride != st.clusters[other].SelfIndex() {
		t.Errorf("other minted v%d outside its residue class %d (mod %d)",
			vOther, st.clusters[other].SelfIndex(), stride)
	}
	if vOwner == vOther {
		t.Errorf("two nodes minted the same version %d", vOwner)
	}
}

// TestClusterRedirectMode: with -cluster-redirect, non-owned requests are
// answered with a 307 at the owner instead of a proxy hop.
func TestClusterRedirectMode(t *testing.T) {
	st := newClusterStack(t, 3, true)
	const path = "/laptops/5"
	owner, other := st.ownerAndOther(path)

	client := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	resp, err := client.Get(st.fronts[other].URL + path)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("status = %d, want 307", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != st.fronts[owner].URL+path {
		t.Errorf("Location = %q, want %q", loc, st.fronts[owner].URL+path)
	}
	if got := st.clusters[other].Ctr.Redirected.Value(); got != 1 {
		t.Errorf("Redirected = %d, want 1", got)
	}
	// A client that follows the redirect lands on the owner and gets the
	// document; default clients do this transparently.
	_, body := doGet(t, st.fronts[other].URL+path, map[string]string{deltahttp.HeaderUser: "dora"})
	want, err := st.site.Render("laptops", 5, "dora", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, want) {
		t.Error("redirect-following client did not get the exact document")
	}
}

// TestClusterFailover: when the owner is marked dead, the next-ranked node
// serves the class locally (no forward), and when the owner rises again
// traffic fails back.
func TestClusterFailover(t *testing.T) {
	st := newClusterStack(t, 3, false)
	const path = "/laptops/7"
	owner, other := st.ownerAndOther(path)
	ownerID := st.clusters[owner].Self().ID

	for _, cl := range st.clusters {
		cl.SetAlive(ownerID, false)
	}
	forwardedBefore := st.clusters[other].Ctr.Forwarded.Value()
	resp, body := doGet(t, st.fronts[other].URL+path, map[string]string{deltahttp.HeaderUser: "eve"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status during failover = %d", resp.StatusCode)
	}
	want, err := st.site.Render("laptops", 7, "eve", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, want) {
		t.Error("failover response is not the exact document")
	}
	// The request either stayed local (the other node is now the owner) or
	// crossed one hop to the new owner — never to the dead node.
	if st.clusters[other].Ctr.ForwardErrors.Value() != 0 {
		t.Error("failover tried to reach the dead owner")
	}
	_ = forwardedBefore

	for _, cl := range st.clusters {
		cl.SetAlive(ownerID, true)
	}
	if key := st.servers[0].engine.OwnerKey("www.shop.com" + path); !st.clusters[owner].Owns(key) {
		t.Error("ownership did not fail back to the original owner")
	}
}

// TestClusterEndpoints: /_cbde/health answers 200 everywhere; /_cbde/cluster
// serves the membership snapshot on clustered nodes and 404 standalone.
func TestClusterEndpoints(t *testing.T) {
	st := newClusterStack(t, 2, false)
	resp, _ := doGet(t, st.fronts[0].URL+deltahttp.HealthPath, nil)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("health status = %d", resp.StatusCode)
	}
	resp, body := doGet(t, st.fronts[0].URL+deltahttp.ClusterPath, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster status = %d", resp.StatusCode)
	}
	var cs cluster.Status
	if err := json.Unmarshal(body, &cs); err != nil {
		t.Fatal(err)
	}
	if cs.Self != "node-0" || len(cs.Peers) != 2 {
		t.Errorf("cluster snapshot = %+v", cs)
	}

	// Standalone servers 404 the endpoint.
	_, _, front := newStack(t, core.Config{Anon: anonymize.Config{M: 1, N: 2}})
	resp, _ = doGet(t, front.URL+deltahttp.ClusterPath, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("standalone cluster status = %d, want 404", resp.StatusCode)
	}
}

// TestClusterRemoteBase: a delta-capable client that got its delta through
// a forward hop fetches the base-file from its own node, which pulls it
// peer-to-peer from the owner.
func TestClusterRemoteBase(t *testing.T) {
	st := newClusterStack(t, 3, false)
	const path = "/laptops/1"
	owner, other := st.ownerAndOther(path)

	// Warm the class through the non-owner so the owner mints a base.
	var classID string
	var version int
	for i := 0; i < 12; i++ {
		resp, _ := doGet(t, st.fronts[other].URL+path, map[string]string{
			deltahttp.HeaderUser: "warm-user-" + strconv.Itoa(i),
		})
		classID = resp.Header.Get(deltahttp.HeaderClass)
		if v := resp.Header.Get(deltahttp.HeaderLatestVersion); v != "" {
			version, _ = strconv.Atoi(v)
		}
	}
	if classID == "" || version == 0 {
		t.Fatal("class never warmed")
	}

	// Fetch the base through the NON-owner: not resident there, so it must
	// be proxied from the owner.
	resp, body := doGet(t, st.fronts[other].URL+deltahttp.BasePath(classID, version), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("remote base status = %d", resp.StatusCode)
	}
	ownerBase, ok := st.servers[owner].engine.BaseFileView(classID, version)
	if !ok {
		t.Fatal("owner does not hold the version it advertised")
	}
	if !bytes.Equal(body, ownerBase) {
		t.Error("proxied base differs from the owner's")
	}
	if got := st.clusters[other].Ctr.RemoteBase.Value(); got != 1 {
		t.Errorf("RemoteBase = %d, want 1", got)
	}
}
