package deltaserver

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"cbde/internal/anonymize"
	"cbde/internal/core"
	"cbde/internal/deltahttp"
	"cbde/internal/flightrec"
	"cbde/internal/obs"
)

// respTraceCtx extracts the trace context a response advertised.
func respTraceCtx(t *testing.T, resp *http.Response) obs.TraceContext {
	t.Helper()
	hv := resp.Header.Get(deltahttp.HeaderTrace)
	ctx, ok := obs.ParseTraceContext(hv)
	if !ok {
		t.Fatalf("response %s header %q does not parse", deltahttp.HeaderTrace, hv)
	}
	return ctx
}

// oneRecord returns the single flight-recorder record for a trace ID.
func oneRecord(t *testing.T, fr *flightrec.Recorder, id obs.TraceID) flightrec.Record {
	t.Helper()
	recs := fr.Snapshot(flightrec.Filter{Trace: id})
	if len(recs) != 1 {
		t.Fatalf("recorder %s has %d records for trace %s, want 1", fr.Node(), len(recs), id)
	}
	return recs[0]
}

// TestTraceJoinsAcrossForward is the acceptance-criterion test: a request
// through a non-owning node leaves records on BOTH nodes under the SAME
// trace ID — hop 0 at the entry node, hop 1 at the owner — joinable into
// one distributed trace.
func TestTraceJoinsAcrossForward(t *testing.T) {
	st := newClusterStack(t, 3, false)
	const path = "/laptops/3"
	owner, other := st.ownerAndOther(path)

	resp, _ := doGet(t, st.fronts[other].URL+path,
		map[string]string{deltahttp.HeaderUser: "alice"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	// The relayed response names the trace; the entry node minted it, so the
	// owner saw (and echoed) hop 1.
	ctx := respTraceCtx(t, resp)
	if ctx.Origin != st.clusters[other].Self().ID || ctx.Hop != 1 {
		t.Errorf("response trace ctx = %+v, want origin %s hop 1", ctx, st.clusters[other].Self().ID)
	}

	entry := oneRecord(t, st.flights[other], ctx.ID)
	if entry.Outcome != flightrec.OutcomeForwarded || entry.Trace.Hop != 0 {
		t.Errorf("entry record = outcome %s hop %d, want forwarded hop 0", entry.Outcome, entry.Trace.Hop)
	}
	ownerRec := oneRecord(t, st.flights[owner], ctx.ID)
	if ownerRec.Trace.Hop != 1 || ownerRec.Trace.Origin != entry.Trace.Origin {
		t.Errorf("owner record = hop %d origin %s, want hop 1 origin %s",
			ownerRec.Trace.Hop, ownerRec.Trace.Origin, entry.Trace.Origin)
	}
	if ownerRec.Node == entry.Node {
		t.Error("both spans claim the same node — join would be meaningless")
	}
	if !entry.Sampled || !ownerRec.Sampled {
		t.Error("threshold-0 recorders did not sample both hops")
	}
}

// TestTraceHopGuardPreservesID: a request arriving with the forwarded marker
// and an existing trace context keeps that exact context — the hop guard
// serves locally without re-minting or re-incrementing.
func TestTraceHopGuardPreservesID(t *testing.T) {
	st := newClusterStack(t, 3, false)
	ctx := obs.TraceContext{ID: obs.TraceID{Hi: 0xfeed, Lo: 0xbeef}, Origin: "node-9", Hop: 1}

	resp, _ := doGet(t, st.fronts[0].URL+"/laptops/1", map[string]string{
		deltahttp.HeaderUser:      "alice",
		deltahttp.HeaderForwarded: "node-9",
		deltahttp.HeaderTrace:     ctx.HeaderValue(),
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if got := respTraceCtx(t, resp); got != ctx {
		t.Errorf("response trace ctx = %+v, want %+v", got, ctx)
	}
	rec := oneRecord(t, st.flights[0], ctx.ID)
	if rec.Trace != ctx {
		t.Errorf("recorded trace ctx = %+v, want %+v", rec.Trace, ctx)
	}
}

// TestTraceForwardFailureFallback: when the owner is unreachable the entry
// node serves locally, keeps the minted trace ID, and flags the record with
// the forward-error reason so the tail sampler keeps full detail.
func TestTraceForwardFailureFallback(t *testing.T) {
	st := newClusterStack(t, 3, false)
	const path = "/laptops/3"
	owner, other := st.ownerAndOther(path)

	st.fronts[owner].Close() // owner drops off the network, prober hasn't noticed
	resp, body := doGet(t, st.fronts[other].URL+path,
		map[string]string{deltahttp.HeaderUser: "alice"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status during forward failure = %d", resp.StatusCode)
	}
	want, err := st.site.Render("laptops", 3, "alice", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, want) {
		t.Error("fallback response is not the exact document")
	}

	ctx := respTraceCtx(t, resp)
	if ctx.Hop != 0 {
		t.Errorf("fallback served at hop %d, want 0 (no hop ever completed)", ctx.Hop)
	}
	rec := oneRecord(t, st.flights[other], ctx.ID)
	if rec.Reasons&flightrec.ReasonForwardError == 0 {
		t.Errorf("record reasons = %v, want forward-error", rec.Reasons)
	}
	if rec.Outcome == flightrec.OutcomeForwarded {
		t.Error("failed forward recorded as forwarded")
	}
	if !rec.Sampled {
		t.Error("forward-error record not tail-sampled")
	}
}

// TestTraceRedirectPreservesID: in redirect mode the 307 echoes the trace
// header, the client re-presents it at the owner, and both nodes' recorders
// hold the same ID — the trace survives the client-mediated hop.
func TestTraceRedirectPreservesID(t *testing.T) {
	st := newClusterStack(t, 3, true)
	const path = "/laptops/5"
	owner, other := st.ownerAndOther(path)
	ctx := obs.TraceContext{ID: obs.TraceID{Hi: 1, Lo: 0xabc}, Origin: "client", Hop: 0}

	// Non-following client: the 307 itself must carry the echoed context.
	noFollow := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	req, err := http.NewRequest(http.MethodGet, st.fronts[other].URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(deltahttp.HeaderTrace, ctx.HeaderValue())
	resp, err := noFollow.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("status = %d, want 307", resp.StatusCode)
	}
	if got := respTraceCtx(t, resp); got != ctx {
		t.Errorf("307 trace ctx = %+v, want %+v", got, ctx)
	}
	redirected := oneRecord(t, st.flights[other], ctx.ID)
	if redirected.Outcome != flightrec.OutcomeRedirected {
		t.Errorf("redirecting node outcome = %s, want redirected", redirected.Outcome)
	}

	// Following client: http.Client re-sends the request headers on a 307,
	// so the owner sees — and records — the same trace ID.
	resp2, _ := doGet(t, st.fronts[other].URL+path, map[string]string{
		deltahttp.HeaderUser:  "alice",
		deltahttp.HeaderTrace: ctx.HeaderValue(),
	})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("followed status = %d", resp2.StatusCode)
	}
	if got := respTraceCtx(t, resp2); got.ID != ctx.ID {
		t.Errorf("owner response trace ID = %s, want %s", got.ID, ctx.ID)
	}
	if recs := st.flights[owner].Snapshot(flightrec.Filter{Trace: ctx.ID}); len(recs) != 1 {
		t.Errorf("owner has %d records for the redirected trace, want 1", len(recs))
	}
}

// TestTraceEndpoint: /_cbde/trace serves filterable NDJSON and rejects bad
// query parameters; servers without a recorder 404 it.
func TestTraceEndpoint(t *testing.T) {
	st := newClusterStack(t, 3, false)
	const path = "/laptops/3"
	_, other := st.ownerAndOther(path)
	resp, _ := doGet(t, st.fronts[other].URL+path, map[string]string{deltahttp.HeaderUser: "alice"})
	id := respTraceCtx(t, resp).ID

	resp, body := doGet(t, st.fronts[other].URL+deltahttp.TracePath, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace endpoint status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/x-ndjson") {
		t.Errorf("Content-Type = %q", ct)
	}
	lines := 0
	sc := bufio.NewScanner(bytes.NewReader(body))
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("NDJSON line does not parse: %v\n%s", err, sc.Text())
		}
		if m["node"] != st.clusters[other].Self().ID {
			t.Errorf("record node = %v", m["node"])
		}
		lines++
	}
	if lines == 0 {
		t.Fatal("trace endpoint returned no records")
	}

	// Filters narrow the stream.
	resp, body = doGet(t, st.fronts[other].URL+deltahttp.TracePath+"?outcome=forwarded", nil)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"outcome":"forwarded"`) {
		t.Errorf("outcome filter: status %d body %q", resp.StatusCode, body)
	}
	resp, body = doGet(t, st.fronts[other].URL+deltahttp.TracePath+"?trace="+id.String(), nil)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), id.String()) {
		t.Errorf("trace filter: status %d body %q", resp.StatusCode, body)
	}
	resp, _ = doGet(t, st.fronts[other].URL+deltahttp.TracePath+"?outcome=delta&min-ms=10000", nil)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("min-ms filter status = %d", resp.StatusCode)
	}

	// Bad parameters are a client error, not a silent empty stream.
	for _, q := range []string{"?min-ms=bogus", "?outcome=nope", "?trace=zz", "?limit=x"} {
		resp, _ := doGet(t, st.fronts[other].URL+deltahttp.TracePath+q, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s status = %d, want 400", q, resp.StatusCode)
		}
	}

	// No recorder attached → 404 feature-detect.
	_, _, front := newStack(t, core.Config{Anon: anonymize.Config{M: 1, N: 2}})
	resp, _ = doGet(t, front.URL+deltahttp.TracePath, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("recorder-less trace endpoint status = %d, want 404", resp.StatusCode)
	}
}

// TestHealthIdentifiesNode: /_cbde/health is JSON naming the node, version,
// and uptime — what cbdestat trace uses to label hops.
func TestHealthIdentifiesNode(t *testing.T) {
	st := newClusterStack(t, 2, false)
	resp, body := doGet(t, st.fronts[1].URL+deltahttp.HealthPath, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("health status = %d", resp.StatusCode)
	}
	var h Health
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatalf("health is not JSON: %v\n%s", err, body)
	}
	if h.Status != "ok" || h.Node != "node-1" || h.Version == "" || h.UptimeSeconds < 0 {
		t.Errorf("health = %+v", h)
	}
}

// TestBuildInfoExposed: every server publishes cbde_build_info with its
// node identity, whether or not a flight recorder is attached.
func TestBuildInfoExposed(t *testing.T) {
	st := newClusterStack(t, 2, false)
	resp, body := doGet(t, st.fronts[0].URL+deltahttp.MetricsPath, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), `node="node-0"`) ||
		!strings.Contains(string(body), "cbde_build_info{") {
		t.Errorf("exposition lacks cbde_build_info with node label")
	}

	// Standalone servers default the node label to "local".
	_, _, front := newStack(t, core.Config{Anon: anonymize.Config{M: 1, N: 2}})
	_, body = doGet(t, front.URL+deltahttp.MetricsPath, nil)
	if !strings.Contains(string(body), `node="local"`) {
		t.Error("standalone exposition lacks the default node label")
	}
}

// TestTraceExemplarOnHistogram: a traced request leaves its trace ID as an
// exemplar on the process-duration histogram, scrapable and parseable.
func TestTraceExemplarOnHistogram(t *testing.T) {
	st := newClusterStack(t, 2, false)
	const path = "/laptops/1"
	owner, _ := st.ownerAndOther(path)
	resp, _ := doGet(t, st.fronts[owner].URL+path, map[string]string{deltahttp.HeaderUser: "alice"})
	id := respTraceCtx(t, resp).ID

	_, body := doGet(t, st.fronts[owner].URL+deltahttp.MetricsPath, nil)
	want := `# {trace_id="` + id.String() + `"}`
	if !strings.Contains(string(body), want) {
		t.Errorf("exposition lacks exemplar %q on cbde_process_duration_seconds", want)
	}
}
