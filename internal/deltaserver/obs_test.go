package deltaserver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/url"
	"strings"
	"testing"

	"cbde/internal/anonymize"
	"cbde/internal/core"
	"cbde/internal/deltahttp"
	"cbde/internal/metrics"
)

// warmStack drives enough capable traffic through a stack to install a
// distributable base and serve at least one delta, returning the class ID.
func warmStack(t *testing.T, front string) string {
	t.Helper()
	var classID, version string
	for u := 0; u < 5; u++ {
		hdr := map[string]string{
			deltahttp.HeaderCapable: "1",
			deltahttp.HeaderUser:    fmt.Sprintf("user%d", u),
		}
		if classID != "" {
			hdr[deltahttp.HeaderHaveClass] = classID
			hdr[deltahttp.HeaderHaveVersion] = version
		}
		resp, _ := doGet(t, front+"/laptops/1", hdr)
		if c := resp.Header.Get(deltahttp.HeaderClass); c != "" {
			classID = c
		}
		if v := resp.Header.Get(deltahttp.HeaderLatestVersion); v != "" {
			version = v
		}
	}
	if classID == "" {
		t.Fatal("no class assigned after warmup traffic")
	}
	return classID
}

func TestMetricsEndpointServesExposition(t *testing.T) {
	_, srv, front := newStack(t, core.Config{Anon: anonymize.Config{M: 1, N: 2}})
	srv.Engine().SetTracing(true)
	classID := warmStack(t, front.URL)

	resp, body := doGet(t, front.URL+deltahttp.MetricsPath, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", deltahttp.MetricsPath, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != metrics.ExpositionContentType {
		t.Errorf("Content-Type = %q, want %q", ct, metrics.ExpositionContentType)
	}
	exp, err := metrics.ParseExposition(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("metrics endpoint output does not parse: %v\n%s", err, body)
	}
	for _, series := range []string{
		"cbde_class_delta_hits_total",
		"cbde_bytes_saved_total",
		"cbde_stage_duration_seconds_bucket",
		"cbde_process_duration_seconds_count",
	} {
		if !exp.Series(series) {
			t.Errorf("metrics endpoint missing series %s", series)
		}
	}
	var hits float64
	for _, s := range exp.Samples {
		if s.Name == "cbde_class_delta_hits_total" {
			if c, ok := s.Label("class"); ok && c == classID {
				hits = s.Value
			}
		}
	}
	if hits <= 0 {
		t.Errorf("no delta hits recorded for class %q", classID)
	}
}

func TestStatsClassQuery(t *testing.T) {
	_, _, front := newStack(t, core.Config{Anon: anonymize.Config{M: 1, N: 2}})
	classID := warmStack(t, front.URL)

	// Single class row.
	resp, body := doGet(t, front.URL+deltahttp.StatsPath+"?class="+url.QueryEscape(classID), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats?class=<id>: status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("Content-Type = %q, want application/json", ct)
	}
	var row core.ClassStats
	if err := json.Unmarshal(body, &row); err != nil {
		t.Fatalf("class stats row is not JSON: %v\n%s", err, body)
	}
	if row.ID != classID || row.Requests == 0 || row.DeltaHits == 0 {
		t.Errorf("class row = %+v, want traffic accounted for %q", row, classID)
	}
	if row.BytesShipped >= row.BytesIn {
		t.Errorf("shipped %d >= in %d: warm class must save bytes", row.BytesShipped, row.BytesIn)
	}

	// All classes.
	resp, body = doGet(t, front.URL+deltahttp.StatsPath+"?class=*", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats?class=*: status %d", resp.StatusCode)
	}
	var rows []core.ClassStats
	if err := json.Unmarshal(body, &rows); err != nil {
		t.Fatalf("all-class stats is not a JSON array: %v\n%s", err, body)
	}
	if len(rows) == 0 {
		t.Fatal("stats?class=* returned no rows")
	}

	// Unknown class is a 404, and the plain dump still works.
	resp, _ = doGet(t, front.URL+deltahttp.StatsPath+"?class=nope", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("stats?class=nope: status %d, want 404", resp.StatusCode)
	}
	resp, body = doGet(t, front.URL+deltahttp.StatsPath, nil)
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte("mode ")) {
		t.Errorf("plain stats dump broken: status %d body %q", resp.StatusCode, body)
	}
}

func TestRequestLog(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	_, srv, front := newStack(t, core.Config{Anon: anonymize.Config{M: 1, N: 2}},
		WithRequestLog(logger))
	srv.Engine().SetTracing(true)
	warmStack(t, front.URL)

	out := buf.String()
	if out == "" {
		t.Fatal("no request log lines emitted")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Errorf("got %d log lines, want 5 (one per document request):\n%s", len(lines), out)
	}
	for _, want := range []string{"rid=", "path=/laptops/1", "outcome=", "dur=", "doc_bytes=", "wire_bytes=", "user=user0", "class="} {
		if !strings.Contains(out, want) {
			t.Errorf("request log missing %q:\n%s", want, out)
		}
	}
	// With tracing on, delta responses carry a span summary.
	if !strings.Contains(out, "outcome=delta") {
		t.Errorf("no delta outcome logged:\n%s", out)
	}
	sawSpans := false
	for _, line := range lines {
		if strings.Contains(line, "outcome=delta") && strings.Contains(line, "spans=") &&
			strings.Contains(line, "encode=") {
			sawSpans = true
		}
	}
	if !sawSpans {
		t.Errorf("no span summary on a delta response log line:\n%s", out)
	}
	// Request IDs are distinct and monotone.
	if !strings.Contains(out, "rid=1") || !strings.Contains(out, "rid=5") {
		t.Errorf("request IDs not monotone 1..5:\n%s", out)
	}

	// The ops endpoints themselves must not generate request log lines.
	buf.Reset()
	doGet(t, front.URL+deltahttp.MetricsPath, nil)
	doGet(t, front.URL+deltahttp.StatsPath, nil)
	if buf.Len() != 0 {
		t.Errorf("ops endpoints produced request log lines:\n%s", buf.String())
	}
}
