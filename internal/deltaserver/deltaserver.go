// Package deltaserver implements the delta-server of Section VI-C: a
// transparent HTTP front placed next to the web-server (Figure 2).
//
// Every request is forwarded to the origin to obtain the current document
// snapshot (the delta-server sits adjacent to the web-server, so this hop is
// cheap). The snapshot runs through the class-based delta-encoding engine;
// delta-capable clients receive a small (gzipped) delta against the
// class's base-file, everyone else receives the document unchanged. Class
// base-files are served from a cachable endpoint so ordinary proxy-caches
// between server and clients absorb base-file distribution.
package deltaserver

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"cbde/internal/cluster"
	"cbde/internal/core"
	"cbde/internal/deltahttp"
	"cbde/internal/flightrec"
	"cbde/internal/metrics"
	"cbde/internal/obs"
	"cbde/internal/store"
)

// Version identifies the build in cbde_build_info and /_cbde/health;
// overridable at link time with
// -ldflags "-X cbde/internal/deltaserver.Version=v1.2.3".
var Version = "dev"

// Option configures a Server.
type Option func(*Server)

// WithPublicHost overrides the host used as the server-part when grouping
// request URLs. By default the request's Host header is used; behind test
// servers or load balancers a stable public host keeps class identities
// stable.
func WithPublicHost(host string) Option {
	return func(s *Server) { s.publicHost = host }
}

// WithBaseMaxAge sets the Cache-Control max-age for distributed base-files.
// Default one hour.
func WithBaseMaxAge(d time.Duration) Option {
	return func(s *Server) { s.baseMaxAge = d }
}

// WithHTTPClient replaces the HTTP client used to reach the origin.
func WithHTTPClient(c *http.Client) Option {
	return func(s *Server) { s.client = c }
}

// WithCookieIdentity makes the server assign a "uid" cookie to requests
// that carry no user identity — the paper's cookie-based user
// identification (Section V). Anonymization counts distinct users by these
// identities, so unidentified traffic would otherwise never complete it.
func WithCookieIdentity() Option {
	return func(s *Server) { s.assignCookies = true }
}

// WithCluster joins the server to a delta-server tier: document requests
// for classes this node does not own are forwarded (or 307-redirected) to
// the owning peer, and base-files missing locally are fetched peer-to-peer
// from the owner. The caller owns the cluster's prober lifecycle (Start /
// Stop).
func WithCluster(c *cluster.Cluster) Option {
	return func(s *Server) { s.cluster = c }
}

// WithRequestLog makes the server emit one structured log record per
// document request: a monotone request ID, route, user, response kind and
// wire size, total duration, and — when the engine's tracer is enabled —
// the per-stage span summary.
func WithRequestLog(l *slog.Logger) Option {
	return func(s *Server) { s.log = l }
}

// WithNodeID names this node in trace contexts, flight-recorder records,
// the health endpoint, and cbde_build_info. Defaults to "local"; clustered
// servers should pass their cluster node ID.
func WithNodeID(id string) Option {
	return func(s *Server) {
		if id != "" {
			s.nodeID = id
		}
	}
}

// WithFlightRecorder attaches a flight recorder: every document request is
// recorded (compactly; with span detail when tail-sampled) and the ring is
// served at /_cbde/trace. Without one the endpoint 404s.
func WithFlightRecorder(fr *flightrec.Recorder) Option {
	return func(s *Server) { s.flight = fr }
}

// Server is the delta-server: an http.Handler fronting one origin.
type Server struct {
	origin        *url.URL
	engine        *core.Engine
	client        *http.Client
	publicHost    string
	baseMaxAge    time.Duration
	assignCookies bool
	uidCounter    atomic.Uint64
	log           *slog.Logger
	reqSeq        atomic.Uint64
	cluster       *cluster.Cluster
	nodeID        string
	flight        *flightrec.Recorder
	started       time.Time
}

var _ http.Handler = (*Server)(nil)

// New returns a Server forwarding to originURL and encoding with engine.
func New(originURL string, engine *core.Engine, opts ...Option) (*Server, error) {
	u, err := url.Parse(originURL)
	if err != nil {
		return nil, fmt.Errorf("deltaserver: parse origin URL: %w", err)
	}
	if u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("deltaserver: origin URL %q needs scheme and host", originURL)
	}
	s := &Server{
		origin:     u,
		engine:     engine,
		client:     &http.Client{Timeout: 30 * time.Second},
		baseMaxAge: time.Hour,
		nodeID:     "local",
		started:    time.Now(),
	}
	for _, opt := range opts {
		opt(s)
	}
	s.engine.Metrics().RegisterCollector(func(c *metrics.Collection) {
		c.Gauge("cbde_build_info",
			"Build and runtime identity; the value is always 1.",
			[]metrics.Label{
				{Name: "version", Value: Version},
				{Name: "goversion", Value: runtime.Version()},
				{Name: "node", Value: s.nodeID},
			}, 1)
	})
	return s, nil
}

// Engine returns the server's encoding engine (for stats).
func (s *Server) Engine() *core.Engine { return s.engine }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case strings.HasPrefix(r.URL.Path, deltahttp.BasePathPrefix):
		s.serveBase(w, r)
	case r.URL.Path == deltahttp.StatsPath:
		s.serveStats(w, r)
	case r.URL.Path == deltahttp.MetricsPath:
		s.serveMetrics(w)
	case r.URL.Path == deltahttp.StorePath:
		s.serveStore(w)
	case r.URL.Path == deltahttp.HealthPath:
		s.serveHealth(w)
	case r.URL.Path == deltahttp.ClusterPath:
		s.serveCluster(w)
	case r.URL.Path == deltahttp.TracePath:
		s.serveTrace(w, r)
	case r.Method != http.MethodGet:
		// Only GET responses are delta-encoded; everything else passes
		// through untouched (transparency).
		s.proxyRaw(w, r)
	default:
		s.serveDocument(w, r)
	}
}

// proxyRaw forwards a request verbatim to the origin.
func (s *Server) proxyRaw(w http.ResponseWriter, r *http.Request) {
	u := *s.origin
	u.Path = r.URL.Path
	u.RawQuery = r.URL.RawQuery
	req, err := http.NewRequestWithContext(r.Context(), r.Method, u.String(), r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	req.Header = r.Header.Clone()
	resp, err := s.client.Do(req)
	if err != nil {
		http.Error(w, fmt.Sprintf("origin request failed: %v", err), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// serveBase serves a class base-file as a cachable object. Base versions
// are immutable once installed, so the engine's view accessor hands out the
// stored bytes directly — no per-request copy, and only read locks on the
// engine's sharded class table.
func (s *Server) serveBase(w http.ResponseWriter, r *http.Request) {
	classID, version, err := deltahttp.ParseBasePath(r.URL.Path)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	base, ok := s.engine.BaseFileView(classID, version)
	if !ok {
		// Not resident here. In a cluster the class owner minted (and
		// holds) the version, so fetch it peer-to-peer through the owner's
		// own cachable base endpoint — one hop, same guard as documents.
		if s.cluster != nil && r.Header.Get(deltahttp.HeaderForwarded) == "" {
			owner := s.cluster.Owner(core.OwnerKeyForClass(classID))
			if owner.ID != s.cluster.Self().ID && s.proxyBase(w, r, owner) {
				return
			}
		}
		http.Error(w, "base-file not available", http.StatusNotFound)
		return
	}
	h := w.Header()
	h.Set("Content-Type", "application/octet-stream")
	h.Set("Cache-Control", fmt.Sprintf("public, max-age=%d", int(s.baseMaxAge.Seconds())))
	h.Set(deltahttp.HeaderClass, classID)
	h.Set(deltahttp.HeaderBaseVersion, strconv.Itoa(version))
	_, _ = w.Write(base)
}

// proxyBase relays a base-file request to the owning peer. Reports whether
// the response was written; a transport failure or a miss at the owner
// leaves the response untouched so the caller can 404.
func (s *Server) proxyBase(w http.ResponseWriter, r *http.Request, owner cluster.Node) bool {
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, owner.URL+r.URL.RequestURI(), nil)
	if err != nil {
		return false
	}
	req.Header.Set(deltahttp.HeaderForwarded, s.cluster.Self().ID)
	// A base fetch riding a traced request keeps its trace across the hop.
	if ctx, ok := obs.ParseTraceContext(r.Header.Get(deltahttp.HeaderTrace)); ok {
		req.Header.Set(deltahttp.HeaderTrace, ctx.Next().HeaderValue())
	}
	resp, err := s.client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return false
	}
	s.cluster.Ctr.RemoteBase.Inc()
	h := w.Header()
	for k, vs := range resp.Header {
		for _, v := range vs {
			h.Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
	return true
}

// serveStats dumps engine counters (plain text), or serves per-class stats
// rows as JSON when the class query parameter is present: ?class=<id> for
// one class, ?class=* for every class sorted by ID.
func (s *Server) serveStats(w http.ResponseWriter, r *http.Request) {
	if class := r.URL.Query().Get("class"); class != "" {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if class == "*" {
			_ = enc.Encode(s.engine.AllClassStats())
			return
		}
		st, ok := s.engine.ClassStats(class)
		if !ok {
			http.Error(w, fmt.Sprintf("unknown class %q", class), http.StatusNotFound)
			return
		}
		_ = enc.Encode(st)
		return
	}
	st := s.engine.Stats()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "mode %s\nrequests %d\nfull %d\ndelta %d\nbytes.direct %d\nbytes.delta %d\nbytes.full %d\nclasses %d\nstorage %d\nsavings %.4f\n",
		st.Mode, st.Requests, st.FullResponses, st.DeltaResponses,
		st.BytesDirect, st.BytesDelta, st.BytesFull, st.Classes, st.StorageBytes, st.Savings())
	fmt.Fprintln(w)
	fmt.Fprintln(w, s.engine.Metrics().Snapshot())
}

// serveStore serves the storage-governance snapshot: budget, resident
// bytes by kind, resident/tracked class counts, the recent prune/evict
// log, the delta memo-cache summary, the version-graph summary, and the
// disk tier. The store.Stats fields stay at the top level (CI's
// store-smoke job asserts on them); the cache summary rides along under
// "deltaCache" (CI's memo-smoke job), the graph under "graph" (CI's
// graph-smoke job), and the disk tier under "disk" (CI's spill-smoke job;
// Enabled false when the server runs without -spill-dir, so tooling can
// feature-detect it).
func (s *Server) serveStore(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(struct {
		store.Stats
		DeltaCache core.DeltaCacheStats `json:"deltaCache"`
		Graph      core.GraphStats      `json:"graph"`
		Disk       store.TierStats      `json:"disk"`
	}{s.engine.StoreStats(), s.engine.DeltaCacheStats(), s.engine.GraphStats(), s.engine.SpillStats()})
}

// serveMetrics serves the engine's registry as Prometheus text exposition —
// the endpoint a scraper points at.
func (s *Server) serveMetrics(w http.ResponseWriter) {
	w.Header().Set("Content-Type", metrics.ExpositionContentType)
	_ = s.engine.Metrics().Expose(w)
}

// serveHealth answers the cluster prober (and any external checker): a 200
// means the server is taking traffic. The body identifies the node and its
// uptime so cbdestat trace can label hops; the prober only checks the
// status code, so the JSON body is free to evolve.
func (s *Server) serveHealth(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_ = json.NewEncoder(w).Encode(Health{
		Status:        "ok",
		Node:          s.nodeID,
		Version:       Version,
		UptimeSeconds: int64(time.Since(s.started).Seconds()),
	})
}

// Health is the /_cbde/health response body.
type Health struct {
	Status        string `json:"status"`
	Node          string `json:"node"`
	Version       string `json:"version"`
	UptimeSeconds int64  `json:"uptimeSeconds"`
}

// serveTrace serves the flight-recorder ring as NDJSON, newest first,
// filtered by the query parameters: ?class=<id>, ?min-ms=<float>,
// ?outcome=<name>, ?trace=<32-hex id>, ?sampled=1, ?limit=<n>. 404 when no
// recorder is attached, so tooling can feature-detect it.
func (s *Server) serveTrace(w http.ResponseWriter, r *http.Request) {
	if s.flight == nil {
		http.Error(w, "flight recorder disabled", http.StatusNotFound)
		return
	}
	q := r.URL.Query()
	f := flightrec.Filter{Class: q.Get("class")}
	if v := q.Get("min-ms"); v != "" {
		ms, err := strconv.ParseFloat(v, 64)
		if err != nil || ms < 0 {
			http.Error(w, fmt.Sprintf("bad min-ms %q", v), http.StatusBadRequest)
			return
		}
		f.Min = time.Duration(ms * float64(time.Millisecond))
	}
	if v := q.Get("outcome"); v != "" {
		o, ok := flightrec.ParseOutcome(v)
		if !ok {
			http.Error(w, fmt.Sprintf("unknown outcome %q", v), http.StatusBadRequest)
			return
		}
		f.Outcome = o
	}
	if v := q.Get("trace"); v != "" {
		id, ok := obs.ParseTraceID(v)
		if !ok {
			http.Error(w, fmt.Sprintf("bad trace ID %q", v), http.StatusBadRequest)
			return
		}
		f.Trace = id
	}
	if q.Get("sampled") == "1" {
		f.SampledOnly = true
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			http.Error(w, fmt.Sprintf("bad limit %q", v), http.StatusBadRequest)
			return
		}
		f.Limit = n
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	_, _ = s.flight.WriteNDJSON(w, f)
}

// serveCluster serves this node's cluster view as JSON: membership with
// liveness, owned-class share, and the tier's traffic counters. 404 when
// the server runs standalone, so tooling can feature-detect the tier.
func (s *Server) serveCluster(w http.ResponseWriter) {
	if s.cluster == nil {
		http.Error(w, "not clustered", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.cluster.Status())
}

// reqRecord accumulates what one document request's log line and
// flight-recorder entry report.
type reqRecord struct {
	id       uint64
	start    time.Time
	outcome  string // delta | full | passthrough | forwarded | redirected | origin-error | engine-error
	class    string
	user     string
	docLen   int
	wire     int // payload bytes on the client-facing link
	trace    *obs.Summary
	traceCtx obs.TraceContext
	capable  bool            // client advertised delta capability
	reasons  flightrec.Reason // sampling triggers observed by the HTTP layer
}

// finish flushes the record at the end of a document request: a
// flight-recorder entry (always, when a recorder is attached) and a
// structured log line (when request logging is on).
func (s *Server) finish(r *http.Request, rec *reqRecord) {
	if s.flight != nil {
		frec := flightrec.Record{
			Trace:     rec.traceCtx,
			Class:     rec.class,
			Outcome:   outcomeValue(rec.outcome),
			Start:     rec.start.UnixNano(),
			Total:     time.Since(rec.start),
			DocBytes:  int64(rec.docLen),
			WireBytes: int64(rec.wire),
			Reasons:   rec.reasons,
		}
		if rec.trace != nil {
			frec.Spans = rec.trace.Stages
			if fi := frec.Spans[obs.StageFaultIn]; fi.Dur > 0 || fi.Bytes > 0 {
				frec.Reasons |= flightrec.ReasonFaultIn
			}
		}
		if rec.capable && rec.outcome == "full" {
			// A delta-capable client got the whole document: the degradation
			// the tail sampler exists to explain.
			frec.Reasons |= flightrec.ReasonDegraded
		}
		if rec.outcome == "origin-error" || rec.outcome == "engine-error" {
			frec.Reasons |= flightrec.ReasonError
		}
		s.flight.Record(frec)
	}
	if s.log != nil {
		s.emit(r, rec)
	}
}

// outcomeValue maps a reqRecord outcome string onto the flight recorder's
// enum. The string set and the enum are kept in sync; an unmapped string
// records as "full" rather than dropping the record.
func outcomeValue(o string) flightrec.Outcome {
	if v, ok := flightrec.ParseOutcome(o); ok {
		return v
	}
	return flightrec.OutcomeFull
}

// emit writes the record as one structured slog line.
func (s *Server) emit(r *http.Request, rec *reqRecord) {
	attrs := []slog.Attr{
		slog.Uint64("rid", rec.id),
		slog.String("path", r.URL.RequestURI()),
		slog.String("outcome", rec.outcome),
		slog.Duration("dur", time.Since(rec.start)),
		slog.Int("doc_bytes", rec.docLen),
		slog.Int("wire_bytes", rec.wire),
	}
	if rec.user != "" {
		attrs = append(attrs, slog.String("user", rec.user))
	}
	if rec.class != "" {
		attrs = append(attrs, slog.String("class", rec.class))
	}
	if !rec.traceCtx.IsZero() {
		attrs = append(attrs, slog.String("trace", rec.traceCtx.ID.String()))
	}
	if rec.trace != nil {
		attrs = append(attrs, slog.String("spans", rec.trace.String()))
	}
	s.log.LogAttrs(r.Context(), slog.LevelInfo, "request", attrs...)
}

// serveDocument routes one document request through the cluster tier (when
// enabled) and then through the local encoding pipeline.
func (s *Server) serveDocument(w http.ResponseWriter, r *http.Request) {
	// Adopt the distributed trace context the request arrived with, or mint
	// one — this node is then the trace's origin. A malformed header mints
	// too: tracing degrades, it never fails a request.
	ctx, ok := obs.ParseTraceContext(r.Header.Get(deltahttp.HeaderTrace))
	if !ok {
		ctx = obs.TraceContext{ID: obs.NewTraceID(), Origin: s.nodeID}
	}
	var rec *reqRecord
	if s.log != nil || s.flight != nil {
		rec = &reqRecord{id: s.reqSeq.Add(1), start: time.Now(), outcome: "full", traceCtx: ctx}
		defer func() { s.finish(r, rec) }()
	}
	if s.cluster != nil && !s.dispatchOwned(w, r, rec, ctx) {
		return
	}
	s.serveDocumentLocal(w, r, rec, ctx)
}

// dispatchOwned implements the tier's ownership protocol for one document
// request. It reports true when the request should run the local pipeline:
// this node owns the class, the request already crossed its one allowed
// forward hop, or the forward failed and local serving is the fallback
// (any node serves any class correctly — ownership is affinity, not
// authority). It reports false when the response was already written: a
// proxied owner response, or a 307 redirect.
func (s *Server) dispatchOwned(w http.ResponseWriter, r *http.Request, rec *reqRecord, ctx obs.TraceContext) bool {
	if r.Header.Get(deltahttp.HeaderForwarded) != "" {
		// Hop guard: the request already crossed one intra-tier hop. Serve
		// it here no matter who we think owns it — under inconsistent
		// liveness views two nodes may each believe the other is the owner,
		// and bouncing would loop forever.
		s.cluster.Ctr.HopGuard.Inc()
		return true
	}
	host := s.publicHost
	if host == "" {
		host = r.Host
	}
	owner := s.cluster.Owner(s.engine.OwnerKey(host + r.URL.RequestURI()))
	if owner.ID == s.cluster.Self().ID {
		s.cluster.Ctr.Owned.Inc()
		return true
	}
	if s.cluster.Redirect() {
		s.cluster.Ctr.Redirected.Inc()
		if rec != nil {
			rec.outcome = "redirected"
		}
		// Echo the trace context on the redirect. An http.Client re-sends
		// the original request headers on a 307, so a client that arrived
		// with the header presents the same trace ID at the owner; the echo
		// additionally hands clients without one the minted ID to attach.
		w.Header().Set(deltahttp.HeaderTrace, ctx.HeaderValue())
		http.Redirect(w, r, owner.URL+r.URL.RequestURI(), http.StatusTemporaryRedirect)
		return false
	}
	start := time.Now()
	wire, err := s.forward(w, r, owner, ctx)
	if err != nil {
		// Owner unreachable — typically the window between a peer dying and
		// the prober marking it dead. Fall back to serving locally so the
		// client never sees the failure.
		s.cluster.Ctr.ForwardErrors.Inc()
		if rec != nil {
			rec.reasons |= flightrec.ReasonForwardError
		}
		return true
	}
	s.cluster.Ctr.Forwarded.Inc()
	s.engine.ObserveForward(time.Since(start))
	if rec != nil {
		rec.outcome = "forwarded"
		rec.wire = wire
	}
	return false
}

// forward proxies a document request to the owning peer and relays the
// response verbatim. Returns the payload bytes relayed.
func (s *Server) forward(w http.ResponseWriter, r *http.Request, owner cluster.Node, ctx obs.TraceContext) (int, error) {
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, owner.URL+r.URL.RequestURI(), nil)
	if err != nil {
		return 0, err
	}
	// The owner must classify on the original client's identity: every
	// request header crosses the hop intact — X-CBDE-User, Cookie, and the
	// delta capability/held-base set — and the Host header is preserved
	// because class identity derives from it. The owner's response headers
	// (including any Set-Cookie minting a uid) flow back the same way.
	req.Header = r.Header.Clone()
	req.Header.Set(deltahttp.HeaderForwarded, s.cluster.Self().ID)
	req.Header.Set(deltahttp.HeaderTrace, ctx.Next().HeaderValue())
	req.Host = r.Host
	resp, err := s.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	h := w.Header()
	for k, vs := range resp.Header {
		for _, v := range vs {
			h.Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	n, _ := io.Copy(w, resp.Body)
	return int(n), nil
}

// serveDocumentLocal fetches the current snapshot from the origin and
// responds with a delta or the full document.
func (s *Server) serveDocumentLocal(w http.ResponseWriter, r *http.Request, rec *reqRecord, ctx obs.TraceContext) {
	// Name the trace on the response so clients (and an operator with
	// curl -v) know which ID to look up in /_cbde/trace.
	w.Header().Set(deltahttp.HeaderTrace, ctx.HeaderValue())
	doc, contentType, status, err := s.fetchOrigin(r)
	if err != nil {
		if rec != nil {
			rec.outcome = "origin-error"
		}
		http.Error(w, fmt.Sprintf("origin fetch failed: %v", err), http.StatusBadGateway)
		return
	}
	if rec != nil {
		rec.docLen = len(doc)
		rec.wire = len(doc)
	}
	if status != http.StatusOK {
		// Pass non-OK origin responses through untouched.
		if rec != nil {
			rec.outcome = "passthrough"
		}
		w.Header().Set("Content-Type", contentType)
		w.WriteHeader(status)
		_, _ = w.Write(doc)
		return
	}

	host := s.publicHost
	if host == "" {
		host = r.Host
	}
	user := userOf(r)
	if user == "" && s.assignCookies {
		// First contact from an unidentified browser: mint an identity and
		// hand it back as a cookie (the paper's user identification).
		user = fmt.Sprintf("uid-%d-%d", time.Now().UnixNano(), s.uidCounter.Add(1))
		http.SetCookie(w, &http.Cookie{Name: "uid", Value: user, Path: "/"})
	}
	req := core.Request{
		URL:      host + r.URL.RequestURI(),
		UserID:   user,
		Doc:      doc,
		TraceCtx: ctx,
	}
	if r.Header.Get(deltahttp.HeaderCapable) != "" {
		if rec != nil {
			rec.capable = true
		}
		req.HaveClassID = r.Header.Get(deltahttp.HeaderHaveClass)
		if v, err := strconv.Atoi(r.Header.Get(deltahttp.HeaderHaveVersion)); err == nil {
			req.HaveVersion = v
		}
		for _, h := range deltahttp.ParseHave(r.Header.Get(deltahttp.HeaderHave)) {
			req.Held = append(req.Held, core.HeldBase{ClassID: h.ClassID, Version: h.Version})
		}
		if deltahttp.AcceptsVCDIFF(r.Header.Get(deltahttp.HeaderAccept)) {
			req.Format = core.FormatVCDIFF
		}
	}

	if rec != nil {
		rec.user = user
	}
	resp, err := s.engine.Process(req)
	if err != nil {
		// The engine could not handle the request (e.g. unparseable URL):
		// stay transparent and serve the document.
		if rec != nil {
			rec.outcome = "engine-error"
		}
		w.Header().Set("Content-Type", contentType)
		_, _ = w.Write(doc)
		return
	}
	if rec != nil {
		rec.class = resp.ClassID
		rec.trace = resp.Trace
		if resp.Kind == core.KindDelta {
			rec.outcome = "delta"
			rec.wire = len(resp.Payload)
		}
	}

	h := w.Header()
	if resp.ClassID != "" {
		h.Set(deltahttp.HeaderClass, resp.ClassID)
	}
	if resp.LatestVersion > 0 {
		h.Set(deltahttp.HeaderLatestVersion, strconv.Itoa(resp.LatestVersion))
	}
	if resp.Kind == core.KindDelta {
		enc := deltahttp.EncodingVdelta
		switch {
		case resp.Format == core.FormatVdeltaChain:
			// Chain framing carries per-segment gzip flags, so the payload
			// itself is never wrapped in an outer gzip layer.
			enc = deltahttp.EncodingVdeltaChain
			h.Set(deltahttp.HeaderChainLength, strconv.Itoa(resp.ChainLen))
		case resp.Format == core.FormatVCDIFF && resp.Gzipped:
			enc = deltahttp.EncodingVCDIFFGzip
		case resp.Format == core.FormatVCDIFF:
			enc = deltahttp.EncodingVCDIFF
		case resp.Gzipped:
			enc = deltahttp.EncodingVdeltaGzip
		}
		h.Set(deltahttp.HeaderEncoding, enc)
		h.Set(deltahttp.HeaderBaseVersion, strconv.Itoa(resp.BaseVersion))
		h.Set("Content-Type", "application/octet-stream")
		h.Set("Cache-Control", "no-cache")
		_, _ = w.Write(resp.Payload)
		return
	}
	h.Set("Content-Type", contentType)
	h.Set("Cache-Control", "no-cache")
	_, _ = w.Write(doc)
}

// fetchOrigin retrieves the current document snapshot from the origin.
func (s *Server) fetchOrigin(r *http.Request) (body []byte, contentType string, status int, err error) {
	u := *s.origin
	u.Path = r.URL.Path
	u.RawQuery = r.URL.RawQuery

	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, u.String(), nil)
	if err != nil {
		return nil, "", 0, fmt.Errorf("build origin request: %w", err)
	}
	// Forward identity so personalized origins render the right document.
	if user := userOf(r); user != "" {
		req.Header.Set(deltahttp.HeaderUser, user)
	}
	// Note: a freshly minted uid is not forwarded on this first request;
	// it takes effect once the browser echoes the cookie back.
	for _, c := range r.Cookies() {
		req.AddCookie(c)
	}

	resp, err := s.client.Do(req)
	if err != nil {
		return nil, "", 0, err
	}
	defer resp.Body.Close()
	body, err = io.ReadAll(resp.Body)
	if err != nil {
		return nil, "", 0, fmt.Errorf("read origin response: %w", err)
	}
	return body, resp.Header.Get("Content-Type"), resp.StatusCode, nil
}

// userOf extracts the user identity from the request (header, or the "uid"
// cookie the paper's cookie-based identification corresponds to).
func userOf(r *http.Request) string {
	if u := r.Header.Get(deltahttp.HeaderUser); u != "" {
		return u
	}
	if c, err := r.Cookie("uid"); err == nil {
		return c.Value
	}
	return ""
}
