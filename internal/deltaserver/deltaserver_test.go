package deltaserver

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"cbde/internal/anonymize"
	"cbde/internal/core"
	"cbde/internal/deltahttp"
	"cbde/internal/origin"
	"cbde/internal/store"
)

func testSite() *origin.Site {
	return origin.NewSite(origin.Config{
		Host:          "www.shop.com",
		Style:         origin.StylePathSegments,
		Depts:         []origin.Dept{{Name: "laptops", Items: 10}},
		TemplateBytes: 8000,
		ItemBytes:     800,
		ChurnBytes:    300,
		Personalized:  true,
		Seed:          5,
	})
}

// newStack builds origin + delta-server test servers.
func newStack(t *testing.T, cfg core.Config, opts ...Option) (*origin.Site, *Server, *httptest.Server) {
	t.Helper()
	site := testSite()
	originSrv := httptest.NewServer(site.Handler())
	t.Cleanup(originSrv.Close)

	if cfg.Now == nil {
		base := time.Unix(1_000_000, 0)
		n := 0
		cfg.Now = func() time.Time { n++; return base.Add(time.Duration(n) * time.Second) }
	}
	eng, err := core.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(originSrv.URL, eng, append([]Option{WithPublicHost("www.shop.com")}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(srv)
	t.Cleanup(front.Close)
	return site, srv, front
}

func doGet(t *testing.T, url string, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func TestTransparentToNonCapableClients(t *testing.T) {
	site, _, front := newStack(t, core.Config{Anon: anonymize.Config{M: 1, N: 2}})

	resp, body := doGet(t, front.URL+"/laptops/3", map[string]string{deltahttp.HeaderUser: "alice"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	want, err := site.Render("laptops", 3, "alice", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, want) {
		t.Error("non-capable client did not receive the exact document")
	}
	if resp.Header.Get(deltahttp.HeaderEncoding) != "" {
		t.Error("non-capable client received a delta")
	}
}

// warm sends enough distinct-user traffic for anonymization to finish and
// returns the class and latest version.
func warm(t *testing.T, front string, n int) (classID string, version int) {
	t.Helper()
	for i := 0; i < n; i++ {
		resp, _ := doGet(t, front+"/laptops/1", map[string]string{
			deltahttp.HeaderUser: "warm-user-" + strconv.Itoa(i),
		})
		classID = resp.Header.Get(deltahttp.HeaderClass)
		if v := resp.Header.Get(deltahttp.HeaderLatestVersion); v != "" {
			version, _ = strconv.Atoi(v)
		}
	}
	if classID == "" || version == 0 {
		t.Fatalf("class not warmed: class=%q version=%d", classID, version)
	}
	return classID, version
}

func TestDeltaFlowEndToEnd(t *testing.T) {
	site, _, front := newStack(t, core.Config{Anon: anonymize.Config{M: 1, N: 3}})
	classID, version := warm(t, front.URL, 6)

	// Fetch the base like a client would.
	resp, base := doGet(t, front.URL+deltahttp.BasePath(classID, version), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("base fetch status = %d", resp.StatusCode)
	}
	if cc := resp.Header.Get("Cache-Control"); !strings.Contains(cc, "public") || !strings.Contains(cc, "max-age=") {
		t.Errorf("base-file Cache-Control = %q, want public max-age", cc)
	}

	// Request with the held base: must get a delta that reconstructs.
	resp, payload := doGet(t, front.URL+"/laptops/1", map[string]string{
		deltahttp.HeaderCapable:     "1",
		deltahttp.HeaderUser:        "delta-user",
		deltahttp.HeaderHaveClass:   classID,
		deltahttp.HeaderHaveVersion: strconv.Itoa(version),
	})
	enc := resp.Header.Get(deltahttp.HeaderEncoding)
	if enc != deltahttp.EncodingVdelta && enc != deltahttp.EncodingVdeltaGzip {
		t.Fatalf("encoding = %q, want a delta", enc)
	}
	gotVersion, _ := strconv.Atoi(resp.Header.Get(deltahttp.HeaderBaseVersion))
	if gotVersion != version {
		t.Fatalf("delta against version %d, client holds %d", gotVersion, version)
	}

	eng, err := core.NewEngine(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := eng.Decode(base, payload, enc == deltahttp.EncodingVdeltaGzip)
	if err != nil {
		t.Fatal(err)
	}
	want, err := site.Render("laptops", 1, "delta-user", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(doc, want) {
		t.Error("reconstructed document does not match the origin render")
	}
	if len(payload) >= len(want)/5 {
		t.Errorf("delta %d bytes vs doc %d bytes: insufficient savings", len(payload), len(want))
	}
}

func TestBaseFileNotFound(t *testing.T) {
	_, _, front := newStack(t, core.Config{})
	resp, _ := doGet(t, front.URL+deltahttp.BasePath("no-such-class", 1), nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status = %d, want 404", resp.StatusCode)
	}
}

func TestBadBasePath(t *testing.T) {
	_, _, front := newStack(t, core.Config{})
	resp, _ := doGet(t, front.URL+deltahttp.BasePathPrefix+"junk", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d, want 400", resp.StatusCode)
	}
}

func TestStatsEndpoint(t *testing.T) {
	_, _, front := newStack(t, core.Config{Anon: anonymize.Config{M: 1, N: 2}})
	warm(t, front.URL, 4)
	resp, body := doGet(t, front.URL+deltahttp.StatsPath, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	for _, want := range []string{"mode class-based", "requests 4", "classes 1"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("stats missing %q:\n%s", want, body)
		}
	}
}

func TestStoreEndpoint(t *testing.T) {
	const budget = 256 << 10
	_, _, front := newStack(t, core.Config{MemBudget: budget, DisableAnonymization: true})
	warm(t, front.URL, 4)

	resp, body := doGet(t, front.URL+deltahttp.StorePath, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("Content-Type = %q, want application/json", ct)
	}
	var st store.Stats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("store snapshot is not valid JSON: %v\n%s", err, body)
	}
	if st.Budget != budget {
		t.Errorf("budget = %d, want %d", st.Budget, budget)
	}
	if st.Classes == 0 || st.ResidentClasses == 0 {
		t.Errorf("no resident classes after warm traffic: %+v", st)
	}
	if st.Resident.Total <= 0 || st.Resident.Total > budget {
		t.Errorf("resident bytes %d outside (0, budget=%d]", st.Resident.Total, budget)
	}
}

// TestStoreEndpointReportsEvictions drives a server whose budget cannot hold
// any class and checks that the sweeps it forces are visible through the
// admin endpoint — the signal the CI store-smoke job asserts on.
func TestStoreEndpointReportsEvictions(t *testing.T) {
	_, _, front := newStack(t, core.Config{MemBudget: 1, DisableAnonymization: true})
	warm(t, front.URL, 4)

	resp, body := doGet(t, front.URL+deltahttp.StorePath, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var st store.Stats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("store snapshot is not valid JSON: %v\n%s", err, body)
	}
	if st.Evictions == 0 {
		t.Errorf("no evictions under a 1-byte budget: %+v", st)
	}
	if len(st.Log) == 0 {
		t.Error("eviction log is empty despite evictions")
	}
}

func TestOriginDown(t *testing.T) {
	eng, err := core.NewEngine(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New("http://127.0.0.1:1", eng)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(srv)
	defer front.Close()
	resp, _ := doGet(t, front.URL+"/laptops/1", nil)
	if resp.StatusCode != http.StatusBadGateway {
		t.Errorf("status = %d, want 502", resp.StatusCode)
	}
}

func TestOrigin404PassesThrough(t *testing.T) {
	_, _, front := newStack(t, core.Config{})
	resp, _ := doGet(t, front.URL+"/unknown/99", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status = %d, want 404 passed through", resp.StatusCode)
	}
}

func TestCookieIdentityForwarded(t *testing.T) {
	_, _, front := newStack(t, core.Config{Anon: anonymize.Config{M: 1, N: 2}})
	req, _ := http.NewRequest(http.MethodGet, front.URL+"/laptops/2", nil)
	req.AddCookie(&http.Cookie{Name: "uid", Value: "cookie-carol"})
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !bytes.Contains(body, []byte("cookie-carol")) {
		t.Error("cookie identity not forwarded to the personalized origin")
	}
}

func TestNewErrors(t *testing.T) {
	eng, err := core.NewEngine(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []string{"", "no-scheme.example.com", "http://"} {
		if _, err := New(u, eng); err == nil {
			t.Errorf("New(%q): expected error", u)
		}
	}
}

func TestStaleVersionServedFull(t *testing.T) {
	_, _, front := newStack(t, core.Config{Anon: anonymize.Config{M: 1, N: 2}})
	classID, _ := warm(t, front.URL, 4)
	resp, _ := doGet(t, front.URL+"/laptops/1", map[string]string{
		deltahttp.HeaderCapable:     "1",
		deltahttp.HeaderUser:        "u",
		deltahttp.HeaderHaveClass:   classID,
		deltahttp.HeaderHaveVersion: "9999",
	})
	if resp.Header.Get(deltahttp.HeaderEncoding) != "" {
		t.Error("stale client version answered with a delta")
	}
	if resp.Header.Get(deltahttp.HeaderLatestVersion) == "" {
		t.Error("response does not advertise the latest version")
	}
}

func TestNonGETPassesThrough(t *testing.T) {
	// An origin that echoes POST bodies; the delta-server must not touch
	// the exchange.
	echo := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "want POST", http.StatusMethodNotAllowed)
			return
		}
		body, _ := io.ReadAll(r.Body)
		w.Header().Set("X-Echo", "1")
		_, _ = w.Write(body)
	}))
	defer echo.Close()

	eng, err := core.NewEngine(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(echo.URL, eng)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(srv)
	defer front.Close()

	resp, err := http.Post(front.URL+"/cart/add", "text/plain", strings.NewReader("item=42"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "item=42" {
		t.Errorf("POST body = %q, want echoed", body)
	}
	if resp.Header.Get("X-Echo") != "1" {
		t.Error("origin headers not passed through")
	}
	if got := eng.Stats().Requests; got != 0 {
		t.Errorf("engine processed %d requests for a POST, want 0", got)
	}
}

func TestWithBaseMaxAge(t *testing.T) {
	_, srv, front := newStack(t, core.Config{Anon: anonymize.Config{M: 1, N: 2}})
	_ = srv
	classID, version := warm(t, front.URL, 4)
	resp, _ := doGet(t, front.URL+deltahttp.BasePath(classID, version), nil)
	if cc := resp.Header.Get("Cache-Control"); !strings.Contains(cc, "max-age=3600") {
		t.Errorf("default base max-age not 1h: %q", cc)
	}
}

func TestBaseMaxAgeOption(t *testing.T) {
	site := testSite()
	originSrv := httptest.NewServer(site.Handler())
	t.Cleanup(originSrv.Close)
	base := time.Unix(2_000_000, 0)
	n := 0
	eng, err := core.NewEngine(core.Config{
		Anon: anonymize.Config{M: 1, N: 2},
		Now:  func() time.Time { n++; return base.Add(time.Duration(n) * time.Second) },
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(originSrv.URL, eng,
		WithPublicHost("www.shop.com"), WithBaseMaxAge(2*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(srv)
	t.Cleanup(front.Close)

	classID, version := warm(t, front.URL, 4)
	resp, _ := doGet(t, front.URL+deltahttp.BasePath(classID, version), nil)
	if cc := resp.Header.Get("Cache-Control"); !strings.Contains(cc, "max-age=120") {
		t.Errorf("Cache-Control = %q, want max-age=120", cc)
	}
	if srv.Engine() != eng {
		t.Error("Engine() accessor broken")
	}
}

func TestMultiBaseAdvertisement(t *testing.T) {
	// A client advertising several held bases via the multi-base header
	// gets a delta against the matching class.
	_, _, front := newStack(t, core.Config{Anon: anonymize.Config{M: 1, N: 2}})
	classID, version := warm(t, front.URL, 4)

	have := deltahttp.FormatHave([]deltahttp.Held{
		{ClassID: "unrelated-class", Version: 3},
		{ClassID: classID, Version: version},
	})
	resp, _ := doGet(t, front.URL+"/laptops/1", map[string]string{
		deltahttp.HeaderCapable: "1",
		deltahttp.HeaderUser:    "multi",
		deltahttp.HeaderHave:    have,
	})
	if enc := resp.Header.Get(deltahttp.HeaderEncoding); enc == "" {
		t.Error("multi-base advertisement did not yield a delta")
	}
}

func TestVCDIFFNegotiation(t *testing.T) {
	site, _, front := newStack(t, core.Config{Anon: anonymize.Config{M: 1, N: 2}})
	classID, version := warm(t, front.URL, 4)
	resp, base := doGet(t, front.URL+deltahttp.BasePath(classID, version), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatal("base fetch failed")
	}
	resp, payload := doGet(t, front.URL+"/laptops/1", map[string]string{
		deltahttp.HeaderCapable:     "1",
		deltahttp.HeaderUser:        "std",
		deltahttp.HeaderAccept:      deltahttp.EncodingVCDIFF,
		deltahttp.HeaderHaveClass:   classID,
		deltahttp.HeaderHaveVersion: strconv.Itoa(version),
	})
	enc := resp.Header.Get(deltahttp.HeaderEncoding)
	if enc != deltahttp.EncodingVCDIFF && enc != deltahttp.EncodingVCDIFFGzip {
		t.Fatalf("encoding = %q, want a VCDIFF variant", enc)
	}
	eng, err := core.NewEngine(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := eng.DecodeAs(base, payload, enc == deltahttp.EncodingVCDIFFGzip, core.FormatVCDIFF)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := site.Render("laptops", 1, "std", 0)
	if !bytes.Equal(doc, want) {
		t.Error("VCDIFF response does not reconstruct the document")
	}
}

func TestCookieIdentityAssignment(t *testing.T) {
	site := testSite()
	originSrv := httptest.NewServer(site.Handler())
	t.Cleanup(originSrv.Close)
	base := time.Unix(3_000_000, 0)
	n := 0
	eng, err := core.NewEngine(core.Config{
		Anon: anonymize.Config{M: 1, N: 2},
		Now:  func() time.Time { n++; return base.Add(time.Duration(n) * time.Second) },
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(originSrv.URL, eng,
		WithPublicHost("www.shop.com"), WithCookieIdentity())
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(srv)
	t.Cleanup(front.Close)

	// An unidentified request gets a uid cookie.
	resp, _ := doGet(t, front.URL+"/laptops/1", nil)
	var uid string
	for _, c := range resp.Cookies() {
		if c.Name == "uid" {
			uid = c.Value
		}
	}
	if uid == "" {
		t.Fatal("no uid cookie assigned")
	}
	// A request that already carries identity gets none.
	resp, _ = doGet(t, front.URL+"/laptops/1", map[string]string{deltahttp.HeaderUser: "named"})
	for _, c := range resp.Cookies() {
		if c.Name == "uid" {
			t.Error("uid cookie assigned despite existing identity")
		}
	}
	// Distinct unidentified browsers count as distinct users, so
	// anonymization completes from anonymous traffic alone.
	doGet(t, front.URL+"/laptops/1", nil)
	doGet(t, front.URL+"/laptops/1", nil)
	if got := eng.Stats().AnonCompleted; got == 0 {
		t.Error("anonymization never completed from cookie-assigned identities")
	}
}
