package cluster

import (
	"fmt"
	"testing"
)

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		// Shaped like real classify keys: server-part / hint-part.
		keys[i] = fmt.Sprintf("www.site%d.com/dept-%d", i%7, i)
	}
	return keys
}

func nodeIDs(n int) []string {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("node-%d", i)
	}
	return ids
}

// TestRingBalance is the placement-balance property: across 8 nodes and
// 10k keys, no node's class share exceeds twice any other's.
func TestRingBalance(t *testing.T) {
	ring := NewRing(nodeIDs(8))
	counts := make(map[string]int)
	for _, key := range testKeys(10000) {
		owner, ok := ring.Owner(key, nil)
		if !ok {
			t.Fatalf("no owner for %q", key)
		}
		counts[owner]++
	}
	if len(counts) != 8 {
		t.Fatalf("only %d of 8 nodes own keys: %v", len(counts), counts)
	}
	minC, maxC := -1, 0
	for _, c := range counts {
		if minC < 0 || c < minC {
			minC = c
		}
		if c > maxC {
			maxC = c
		}
	}
	if maxC > 2*minC {
		t.Errorf("placement imbalanced: max share %d > 2x min share %d (%v)", maxC, minC, counts)
	}
}

// TestRingMinimalDisruption is the HRW stability property: removing 1 of N
// nodes moves only that node's keys — about 1/N of the key space — and no
// key owned by a surviving node changes owner.
func TestRingMinimalDisruption(t *testing.T) {
	for _, n := range []int{3, 8} {
		t.Run(fmt.Sprintf("nodes=%d", n), func(t *testing.T) {
			ids := nodeIDs(n)
			full := NewRing(ids)
			removed := ids[n/2]
			alive := func(id string) bool { return id != removed }

			keys := testKeys(10000)
			moved, owned := 0, 0
			for _, key := range keys {
				before, _ := full.Owner(key, nil)
				after, _ := full.Owner(key, alive)
				if before == removed {
					owned++
					continue // these keys must move somewhere
				}
				if before != after {
					moved++
				}
			}
			if moved != 0 {
				t.Errorf("%d keys owned by surviving nodes changed owner", moved)
			}
			// The removed node's share should be ~1/n of the keys (within
			// a generous 2x of the fair share, matching the balance bound).
			fair := len(keys) / n
			if owned > 2*fair || owned < fair/2 {
				t.Errorf("removed node owned %d keys, want about %d (1/%d of %d)",
					owned, fair, n, len(keys))
			}
		})
	}
}

// TestRingDeterminism: placement is a pure function of (key, membership) —
// two independently built rings agree on every owner and on failover order.
func TestRingDeterminism(t *testing.T) {
	a := NewRing([]string{"c", "a", "b"})
	b := NewRing([]string{"b", "c", "a", "a"}) // order and dups must not matter
	for _, key := range testKeys(500) {
		ao, _ := a.Owner(key, nil)
		bo, _ := b.Owner(key, nil)
		if ao != bo {
			t.Fatalf("rings disagree on %q: %q vs %q", key, ao, bo)
		}
		ar, br := a.Rank(key), b.Rank(key)
		if len(ar) != 3 || len(br) != 3 {
			t.Fatalf("rank length %d/%d, want 3", len(ar), len(br))
		}
		for i := range ar {
			if ar[i] != br[i] {
				t.Fatalf("ranks disagree on %q: %v vs %v", key, ar, br)
			}
		}
		if ar[0] != ao {
			t.Fatalf("Rank[0] %q != Owner %q", ar[0], ao)
		}
	}
}

// TestRingFailover: with the owner dead, ownership falls to the
// next-highest HRW rank, exactly as Rank predicts.
func TestRingFailover(t *testing.T) {
	ring := NewRing(nodeIDs(5))
	for _, key := range testKeys(1000) {
		rank := ring.Rank(key)
		dead := rank[0]
		got, ok := ring.Owner(key, func(id string) bool { return id != dead })
		if !ok || got != rank[1] {
			t.Fatalf("failover owner for %q = %q, want rank[1] %q", key, got, rank[1])
		}
	}
}

// TestRingEmptyAndDead: an empty ring and an all-dead ring report no owner.
func TestRingEmptyAndDead(t *testing.T) {
	if _, ok := NewRing(nil).Owner("k", nil); ok {
		t.Error("empty ring returned an owner")
	}
	ring := NewRing(nodeIDs(3))
	if _, ok := ring.Owner("k", func(string) bool { return false }); ok {
		t.Error("all-dead ring returned an owner")
	}
}
