// Package cluster implements the horizontal delta-server tier: N replicas
// partition document classes among themselves by rendezvous (highest-random-
// weight) hashing over the classify key, so every class's selector,
// anonymization pipeline, and memoized deltas live on exactly one node at a
// time. Non-owned requests are forwarded (or 307-redirected) to the owner;
// anonymized base-files are fetched peer-to-peer through the existing
// cachable base-file endpoint instead of being re-anonymized on every node.
//
// Membership is a static peer list plus a lightweight HTTP health prober:
// when a peer stops answering /_cbde/health, its classes fail over to the
// next-highest HRW rank, and when it returns they fail back. Ownership
// moves carry no state-transfer protocol — the new owner simply re-warms
// the class from traffic, which the store layer's evict/re-warm degradation
// semantics already make version-safe (a class never reuses a version
// number for different bytes, and version numbers are strided per node so
// two nodes can never mint the same (class, version) pair).
package cluster

import (
	"hash/fnv"
	"sort"
)

// Ring is a rendezvous (HRW) hash ring over a static set of node IDs.
// Placement is a pure function of (key, node ID), so every node computes
// the same owner for a key without coordination, and removing one node
// moves only that node's share of the key space. The zero value is an
// empty ring; create a populated one with NewRing. Ring is immutable and
// safe for concurrent use.
type Ring struct {
	nodes []string // sorted, deduplicated node IDs
}

// NewRing returns a ring over the given node IDs (order-insensitive;
// duplicates are dropped).
func NewRing(nodes []string) *Ring {
	seen := make(map[string]bool, len(nodes))
	uniq := make([]string, 0, len(nodes))
	for _, n := range nodes {
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		uniq = append(uniq, n)
	}
	sort.Strings(uniq)
	return &Ring{nodes: uniq}
}

// Nodes returns the ring's node IDs, sorted. Callers must not mutate the
// returned slice.
func (r *Ring) Nodes() []string { return r.nodes }

// Len returns the number of nodes on the ring.
func (r *Ring) Len() int { return len(r.nodes) }

// score is the HRW weight of (node, key). FNV-1a over node\x00key keeps
// placement identical across processes and restarts — unlike maphash, whose
// seed is per-process — which is what lets every replica compute the same
// owner independently.
func score(node, key string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(node))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(key))
	return h.Sum64()
}

// Owner returns the node that owns key among the nodes for which alive
// returns true: the alive node with the highest HRW score (ties broken by
// the lexicographically smaller ID). A nil alive means every node is
// considered alive. ok is false when the ring is empty or no node is alive.
func (r *Ring) Owner(key string, alive func(node string) bool) (owner string, ok bool) {
	var best uint64
	for _, n := range r.nodes {
		if alive != nil && !alive(n) {
			continue
		}
		if s := score(n, key); !ok || s > best || (s == best && n < owner) {
			owner, best, ok = n, s, true
		}
	}
	return owner, ok
}

// Rank returns every node sorted by descending HRW score for key — the
// failover order: Rank(key)[0] is the owner, Rank(key)[1] takes over when
// the owner dies, and so on. Liveness is intentionally not consulted; the
// caller filters.
func (r *Ring) Rank(key string) []string {
	type scored struct {
		node string
		s    uint64
	}
	ranked := make([]scored, len(r.nodes))
	for i, n := range r.nodes {
		ranked[i] = scored{n, score(n, key)}
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].s != ranked[j].s {
			return ranked[i].s > ranked[j].s
		}
		return ranked[i].node < ranked[j].node
	})
	out := make([]string, len(ranked))
	for i, sc := range ranked {
		out[i] = sc.node
	}
	return out
}
