package cluster

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"cbde/internal/metrics"
)

func staticPeers(n int) []Node {
	peers := make([]Node, n)
	for i := range peers {
		peers[i] = Node{ID: nodeIDs(n)[i], URL: "http://127.0.0.1:1"}
	}
	return peers
}

func TestNewValidation(t *testing.T) {
	cases := []Config{
		{},                                    // no self
		{Self: "a"},                           // self not in peers
		{Self: "a", Peers: []Node{{ID: "a"}}}, // no URL
		{Self: "a", Peers: []Node{{ID: "a", URL: "http://x:1"}, {ID: "a", URL: "http://y:1"}}}, // dup
		{Self: "a", Peers: []Node{{ID: "a", URL: "not-a-url"}}},                                // bad URL
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: New(%+v) succeeded, want error", i, cfg)
		}
	}
}

func TestOwnershipAndSelfIndex(t *testing.T) {
	peers := staticPeers(3)
	var clusters []*Cluster
	for i, p := range peers {
		c, err := New(Config{Self: p.ID, Peers: peers})
		if err != nil {
			t.Fatal(err)
		}
		if c.SelfIndex() != i {
			t.Errorf("SelfIndex(%s) = %d, want %d", p.ID, c.SelfIndex(), i)
		}
		if c.Size() != 3 {
			t.Errorf("Size = %d, want 3", c.Size())
		}
		clusters = append(clusters, c)
	}
	// Every node agrees on every key's owner, and exactly one node owns it.
	for _, key := range testKeys(500) {
		owner := clusters[0].Owner(key).ID
		owns := 0
		for _, c := range clusters {
			if got := c.Owner(key).ID; got != owner {
				t.Fatalf("nodes disagree on owner of %q: %q vs %q", key, got, owner)
			}
			if c.Owns(key) {
				owns++
			}
		}
		if owns != 1 {
			t.Fatalf("%d nodes claim %q, want exactly 1", owns, key)
		}
	}
}

func TestOwnerFailoverViaSetAlive(t *testing.T) {
	peers := staticPeers(3)
	c, err := New(Config{Self: peers[0].ID, Peers: peers})
	if err != nil {
		t.Fatal(err)
	}
	// Find a key owned by a remote peer, kill that peer, and check the key
	// fails over deterministically to the next-highest rank.
	for _, key := range testKeys(200) {
		owner := c.Owner(key)
		if owner.ID == c.Self().ID {
			continue
		}
		rank := c.ring.Rank(key)
		c.SetAlive(owner.ID, false)
		next := c.Owner(key).ID
		c.SetAlive(owner.ID, true)
		want := rank[1]
		if next != want {
			t.Fatalf("failover owner of %q = %q, want %q", key, next, want)
		}
		return
	}
	t.Fatal("no remotely owned key found")
}

// TestProberThresholds drives a real health endpoint that can be switched
// between healthy and failing, and checks the fail/rise threshold state
// machine plus the Status snapshot.
func TestProberThresholds(t *testing.T) {
	var healthy atomic.Bool
	healthy.Store(true)
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/_cbde/health" {
			http.NotFound(w, r)
			return
		}
		if !healthy.Load() {
			http.Error(w, "sick", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer peer.Close()

	c, err := New(Config{
		Self: "self",
		Peers: []Node{
			{ID: "self", URL: "http://127.0.0.1:1"},
			{ID: "peer", URL: peer.URL},
		},
		ProbeInterval: 5 * time.Millisecond,
		FailThreshold: 3,
		RiseThreshold: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()

	waitFor := func(alive bool, what string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if c.Alive("peer") == alive {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		t.Fatalf("peer never became %s", what)
	}

	waitFor(true, "alive")
	healthy.Store(false)
	waitFor(false, "dead")
	st := c.Status()
	if len(st.Peers) != 2 || !st.Peers[0].Self || st.Peers[0].ID != "peer" && st.Peers[1].ID != "peer" {
		// Peers are sorted by ID: "peer" < "self" is false, so self-first
		// ordering depends on IDs; just find the peer row.
	}
	var row *PeerStatus
	for i := range st.Peers {
		if st.Peers[i].ID == "peer" {
			row = &st.Peers[i]
		}
	}
	if row == nil || row.Alive || row.LastError == "" {
		t.Fatalf("status row for dead peer wrong: %+v", row)
	}
	healthy.Store(true)
	waitFor(true, "alive again")
}

func TestSelfAlwaysAliveAndOwnerNeverFails(t *testing.T) {
	peers := staticPeers(3)
	c, err := New(Config{Self: peers[0].ID, Peers: peers})
	if err != nil {
		t.Fatal(err)
	}
	if !c.Alive(peers[0].ID) {
		t.Error("self not alive")
	}
	if c.Alive("stranger") {
		t.Error("unknown node alive")
	}
	// With every peer dead, self owns everything.
	c.SetAlive(peers[1].ID, false)
	c.SetAlive(peers[2].ID, false)
	for _, key := range testKeys(100) {
		if !c.Owns(key) {
			t.Fatalf("lone survivor does not own %q", key)
		}
	}
	if share := c.OwnedShare(); share != 1 {
		t.Errorf("lone survivor OwnedShare = %v, want 1", share)
	}
}

func TestOwnedShareRoughlyFair(t *testing.T) {
	peers := staticPeers(4)
	c, err := New(Config{Self: peers[0].ID, Peers: peers})
	if err != nil {
		t.Fatal(err)
	}
	share := c.OwnedShare()
	if share < 0.125 || share > 0.5 {
		t.Errorf("OwnedShare = %v, want around 0.25", share)
	}
}

func TestRegisterMetrics(t *testing.T) {
	peers := staticPeers(2)
	c, err := New(Config{Self: peers[0].ID, Peers: peers})
	if err != nil {
		t.Fatal(err)
	}
	c.Ctr.Forwarded.Inc()
	c.Ctr.HopGuard.Add(2)
	c.SetAlive(peers[1].ID, false)

	reg := metrics.NewRegistry()
	c.RegisterMetrics(reg)
	var b strings.Builder
	if err := reg.Expose(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"cbde_cluster_forwarded_total 1",
		"cbde_cluster_hop_guard_total 2",
		"cbde_cluster_owned_requests_total 0",
		`cbde_cluster_peer_up{peer="node-0"} 1`,
		`cbde_cluster_peer_up{peer="node-1"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}
