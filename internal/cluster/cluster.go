package cluster

import (
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"time"

	"cbde/internal/metrics"
)

// Node is one delta-server replica in the tier.
type Node struct {
	// ID is the node's stable identity — what the ring hashes and what
	// the hop-guard header carries. Typically the advertised URL, but any
	// unique string works.
	ID string `json:"id"`
	// URL is the node's base URL as peers reach it, e.g.
	// "http://10.0.0.7:8080". No trailing slash.
	URL string `json:"url"`
}

// Config parametrizes a Cluster.
type Config struct {
	// Self is the ID of this process's node. Must appear in Peers.
	Self string
	// Peers is the full static membership, including self.
	Peers []Node
	// Redirect switches the non-owner response from proxy-forwarding to a
	// 307 redirect at the owner, for clients that can follow.
	Redirect bool
	// ProbeInterval is how often each peer's health endpoint is probed.
	// Default 1s.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one health probe. Default ProbeInterval.
	ProbeTimeout time.Duration
	// FailThreshold is how many consecutive probe failures mark a peer
	// dead. Default 3.
	FailThreshold int
	// RiseThreshold is how many consecutive probe successes mark a dead
	// peer alive again. Default 2.
	RiseThreshold int
	// HealthPath is the path probed on each peer. Default "/_cbde/health"
	// (deltahttp.HealthPath; spelled here to keep the package dependency-
	// light).
	HealthPath string
	// Client issues probe requests. Default: a client with ProbeTimeout.
	Client *http.Client
	// Logf, when set, receives membership-transition log lines.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = c.ProbeInterval
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.RiseThreshold <= 0 {
		c.RiseThreshold = 2
	}
	if c.HealthPath == "" {
		c.HealthPath = "/_cbde/health"
	}
	return c
}

// peerState is the prober's view of one remote peer.
type peerState struct {
	node Node

	mu        sync.Mutex
	alive     bool
	fails     int // consecutive probe failures
	successes int // consecutive probe successes while dead
	lastProbe time.Time
	lastErr   string
}

// Counters are the cluster tier's traffic counters. All fields are
// monotone; they are registered on the engine's metrics registry by
// RegisterMetrics and surfaced raw through Status.
type Counters struct {
	// Owned counts document requests this node answered as the owner.
	Owned metrics.Counter
	// Forwarded counts non-owned document requests proxied to their owner.
	Forwarded metrics.Counter
	// Redirected counts non-owned document requests answered with a 307
	// redirect at the owner.
	Redirected metrics.Counter
	// HopGuard counts requests that arrived already carrying the forwarded
	// hop-guard header and were therefore served locally — the mechanism
	// that bounds every request to at most one forward hop and rejects
	// forwarding loops under inconsistent membership views.
	HopGuard metrics.Counter
	// ForwardErrors counts forwards that failed (owner unreachable) and
	// fell back to local serving.
	ForwardErrors metrics.Counter
	// RemoteBase counts base-file requests proxied peer-to-peer to the
	// class's owner because the bytes were not resident locally.
	RemoteBase metrics.Counter
}

// Cluster is one node's view of the delta-server tier: the static ring,
// per-peer liveness maintained by the prober, and the tier's traffic
// counters. Safe for concurrent use.
type Cluster struct {
	cfg  Config
	self Node
	ring *Ring
	// peers holds every remote node (self excluded), keyed by ID.
	peers map[string]*peerState

	// Ctr are the tier's traffic counters, bumped by the delta-server's
	// forwarding paths.
	Ctr Counters

	stop     chan struct{}
	stopOnce sync.Once
	probing  sync.WaitGroup
}

// New validates cfg and returns a Cluster. The prober is not started;
// call Start (and Stop on shutdown). Until Start, every peer is considered
// alive — a fresh node must not treat the whole fleet as dead before the
// first probe cycle completes.
func New(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: Self node ID required")
	}
	ids := make([]string, 0, len(cfg.Peers))
	var self *Node
	for i := range cfg.Peers {
		p := &cfg.Peers[i]
		if p.ID == "" {
			return nil, fmt.Errorf("cluster: peer %d has no ID", i)
		}
		if p.URL == "" {
			return nil, fmt.Errorf("cluster: peer %q has no URL", p.ID)
		}
		if u, err := url.Parse(p.URL); err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("cluster: peer %q URL %q needs scheme and host", p.ID, p.URL)
		}
		ids = append(ids, p.ID)
		if p.ID == cfg.Self {
			self = p
		}
	}
	if self == nil {
		return nil, fmt.Errorf("cluster: Self %q not in peer list", cfg.Self)
	}
	ring := NewRing(ids)
	if ring.Len() != len(cfg.Peers) {
		return nil, fmt.Errorf("cluster: duplicate peer IDs")
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: cfg.ProbeTimeout}
	}
	c := &Cluster{
		cfg:   cfg,
		self:  *self,
		ring:  ring,
		peers: make(map[string]*peerState, len(cfg.Peers)-1),
		stop:  make(chan struct{}),
	}
	for _, p := range cfg.Peers {
		if p.ID != cfg.Self {
			c.peers[p.ID] = &peerState{node: p, alive: true}
		}
	}
	return c, nil
}

// Self returns this process's node.
func (c *Cluster) Self() Node { return c.self }

// Redirect reports whether the tier answers non-owned requests with 307
// redirects instead of proxy-forwards.
func (c *Cluster) Redirect() bool { return c.cfg.Redirect }

// Size returns the static membership size (dead peers included).
func (c *Cluster) Size() int { return c.ring.Len() }

// SelfIndex returns this node's index in the sorted peer-ID list — the
// per-node version-numbering offset (see basefile.Config.VersionOffset).
func (c *Cluster) SelfIndex() int {
	return sort.SearchStrings(c.ring.Nodes(), c.self.ID)
}

// Alive reports whether the node with the given ID is currently considered
// alive. Self is always alive; unknown IDs are dead.
func (c *Cluster) Alive(id string) bool {
	if id == c.self.ID {
		return true
	}
	p, ok := c.peers[id]
	if !ok {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.alive
}

// Owner returns the node owning key: the alive node with the highest HRW
// rank. When no peer is alive the node serves everything itself, so Owner
// never fails.
func (c *Cluster) Owner(key string) Node {
	id, ok := c.ring.Owner(key, c.Alive)
	if !ok || id == c.self.ID {
		return c.self
	}
	return c.peers[id].node
}

// Owns reports whether this node owns key.
func (c *Cluster) Owns(key string) bool {
	return c.Owner(key).ID == c.self.ID
}

// SetAlive overrides a peer's liveness — the prober's job, exposed for
// tests and for deployments that drive membership externally.
func (c *Cluster) SetAlive(id string, alive bool) {
	p, ok := c.peers[id]
	if !ok {
		return
	}
	p.mu.Lock()
	p.alive = alive
	p.fails, p.successes = 0, 0
	p.mu.Unlock()
}

// OwnedShare estimates the fraction of the class key space this node owns
// under the current liveness view, by placing a fixed synthetic key sample
// through the ring. With n alive nodes the share is ~1/n.
func (c *Cluster) OwnedShare() float64 {
	const probes = 1024
	owned := 0
	for i := 0; i < probes; i++ {
		if c.Owns(fmt.Sprintf("share-probe/%d", i)) {
			owned++
		}
	}
	return float64(owned) / probes
}

// RegisterMetrics contributes the tier's counters and per-peer liveness
// gauges to reg's exposition:
//
//	cbde_cluster_owned_requests_total
//	cbde_cluster_forwarded_total
//	cbde_cluster_redirected_total
//	cbde_cluster_hop_guard_total
//	cbde_cluster_forward_errors_total
//	cbde_cluster_remote_base_total
//	cbde_cluster_peer_up{peer="..."}
func (c *Cluster) RegisterMetrics(reg *metrics.Registry) {
	reg.RegisterCollector(func(col *metrics.Collection) {
		count := func(name, help string, ctr *metrics.Counter) {
			col.Counter(name, help, nil, float64(ctr.Value()))
		}
		count("cbde_cluster_owned_requests_total",
			"Document requests answered locally as the class owner.", &c.Ctr.Owned)
		count("cbde_cluster_forwarded_total",
			"Non-owned document requests proxied to their owner.", &c.Ctr.Forwarded)
		count("cbde_cluster_redirected_total",
			"Non-owned document requests 307-redirected to their owner.", &c.Ctr.Redirected)
		count("cbde_cluster_hop_guard_total",
			"Requests served locally because they already crossed one forward hop.", &c.Ctr.HopGuard)
		count("cbde_cluster_forward_errors_total",
			"Forwards that failed and fell back to local serving.", &c.Ctr.ForwardErrors)
		count("cbde_cluster_remote_base_total",
			"Base-file requests proxied peer-to-peer to the class owner.", &c.Ctr.RemoteBase)
		for _, id := range c.ring.Nodes() {
			up := 0.0
			if c.Alive(id) {
				up = 1
			}
			col.Gauge("cbde_cluster_peer_up",
				"1 when the peer answers health probes (self is always 1).",
				[]metrics.Label{{Name: "peer", Value: id}}, up)
		}
	})
}

// PeerStatus is one node's row in the cluster status snapshot.
type PeerStatus struct {
	Node
	Self      bool      `json:"self,omitempty"`
	Alive     bool      `json:"alive"`
	Fails     int       `json:"consecutiveFails,omitempty"`
	LastProbe time.Time `json:"lastProbe"`
	LastError string    `json:"lastError,omitempty"`
}

// Status is the JSON document served at /_cbde/cluster.
type Status struct {
	Self       string       `json:"self"`
	Redirect   bool         `json:"redirect"`
	OwnedShare float64      `json:"ownedShare"`
	Peers      []PeerStatus `json:"peers"`

	OwnedRequests int64 `json:"ownedRequests"`
	Forwarded     int64 `json:"forwarded"`
	Redirected    int64 `json:"redirected"`
	HopGuard      int64 `json:"hopGuard"`
	ForwardErrors int64 `json:"forwardErrors"`
	RemoteBase    int64 `json:"remoteBase"`
}

// Status snapshots the tier: membership with liveness, this node's share
// of the key space, and the traffic counters.
func (c *Cluster) Status() Status {
	st := Status{
		Self:          c.self.ID,
		Redirect:      c.cfg.Redirect,
		OwnedShare:    c.OwnedShare(),
		OwnedRequests: c.Ctr.Owned.Value(),
		Forwarded:     c.Ctr.Forwarded.Value(),
		Redirected:    c.Ctr.Redirected.Value(),
		HopGuard:      c.Ctr.HopGuard.Value(),
		ForwardErrors: c.Ctr.ForwardErrors.Value(),
		RemoteBase:    c.Ctr.RemoteBase.Value(),
	}
	for _, id := range c.ring.Nodes() {
		if id == c.self.ID {
			st.Peers = append(st.Peers, PeerStatus{Node: c.self, Self: true, Alive: true})
			continue
		}
		p := c.peers[id]
		p.mu.Lock()
		st.Peers = append(st.Peers, PeerStatus{
			Node:      p.node,
			Alive:     p.alive,
			Fails:     p.fails,
			LastProbe: p.lastProbe,
			LastError: p.lastErr,
		})
		p.mu.Unlock()
	}
	return st
}

func (c *Cluster) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}
