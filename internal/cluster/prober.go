package cluster

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Start launches one probe loop per remote peer. Each loop GETs the peer's
// health endpoint every ProbeInterval; FailThreshold consecutive failures
// mark the peer dead (its classes fail over to the next-highest HRW rank on
// every node independently), RiseThreshold consecutive successes mark it
// alive again (its classes fail back). Call Stop to terminate the loops.
//
// Probing is deliberately per-node-local: peers never gossip liveness, so
// views can disagree for up to one probe cycle. The forwarding hop guard
// keeps that disagreement harmless — a request crosses at most one hop and
// is then served wherever it lands.
func (c *Cluster) Start() {
	for _, p := range c.peers {
		c.probing.Add(1)
		go c.probeLoop(p)
	}
}

// Stop terminates the probe loops and waits for them to exit. Safe to call
// more than once, and without Start.
func (c *Cluster) Stop() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.probing.Wait()
}

func (c *Cluster) probeLoop(p *peerState) {
	defer c.probing.Done()
	ticker := time.NewTicker(c.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-ticker.C:
			c.probeOnce(p)
		}
	}
}

// probeOnce issues one health probe and applies the threshold state
// machine.
func (c *Cluster) probeOnce(p *peerState) {
	err := c.probe(p.node)

	p.mu.Lock()
	defer p.mu.Unlock()
	p.lastProbe = time.Now()
	if err != nil {
		p.lastErr = err.Error()
		p.successes = 0
		p.fails++
		if p.alive && p.fails >= c.cfg.FailThreshold {
			p.alive = false
			c.logf("cluster: peer %s dead after %d failed probes (%v)", p.node.ID, p.fails, err)
		}
		return
	}
	p.lastErr = ""
	p.fails = 0
	if !p.alive {
		p.successes++
		if p.successes >= c.cfg.RiseThreshold {
			p.alive = true
			p.successes = 0
			c.logf("cluster: peer %s alive again", p.node.ID)
		}
	}
}

// probe GETs the peer's health endpoint; any transport error or non-200
// status is a failure.
func (c *Cluster) probe(n Node) error {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.URL+c.cfg.HealthPath, nil)
	if err != nil {
		return err
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return &statusError{code: resp.StatusCode}
	}
	return nil
}

// statusError reports a non-200 health probe.
type statusError struct{ code int }

func (e *statusError) Error() string {
	return fmt.Sprintf("health probe returned status %d", e.code)
}
