// Package netsim models the download latency of an HTTP response over TCP,
// reproducing the bandwidth-to-latency analysis of Section VI-A.
//
// The paper's argument: over a high-bandwidth path, TCP slow-start makes the
// number of round-trips grow roughly logarithmically in the transfer size,
// so shrinking a 30 KB document to a 1 KB delta cuts latency by about
// log2(30) ~ 5x. Over a 56 kb/s modem the transmission time dominates
// (one full-size packet takes about two 100 ms RTTs), latency becomes
// roughly linear in size, and with connection setup, queueing and loss the
// ratio lands around 10x.
package netsim

import (
	"fmt"
	"sort"
	"time"
)

// Path describes one network path between server and client.
type Path struct {
	// RTT is the round-trip time.
	RTT time.Duration
	// BandwidthBps is the bottleneck bandwidth in bits per second;
	// 0 means effectively unlimited (the high-bandwidth case).
	BandwidthBps float64
	// MSS is the TCP maximum segment size in bytes. Default 1460.
	MSS int
	// InitCwnd is the initial congestion window in segments. Default 1
	// (RFC 2581-era TCP, matching the paper's 2002 setting).
	InitCwnd int
	// MaxCwnd caps the congestion window in segments (receive window).
	// Default 44 (a 64 KB window).
	MaxCwnd int
	// SetupRTTs is the connection establishment cost in round trips
	// (TCP handshake + HTTP request). 0 models a warm persistent
	// connection.
	SetupRTTs float64
	// LossRate is the per-packet probability of a loss whose recovery
	// costs LossPenalty. Applied in expectation.
	LossRate float64
	// LossPenalty is the expected recovery delay per lost packet
	// (coarse timeouts dominated 2002-era stacks). Default 1s when
	// LossRate > 0.
	LossPenalty time.Duration
	// QueueDelay is a fixed additional one-way queueing delay applied
	// once per transfer.
	QueueDelay time.Duration
}

func (p Path) withDefaults() Path {
	if p.MSS <= 0 {
		p.MSS = 1460
	}
	if p.InitCwnd <= 0 {
		p.InitCwnd = 1
	}
	if p.MaxCwnd <= 0 {
		p.MaxCwnd = 44
	}
	if p.LossRate > 0 && p.LossPenalty <= 0 {
		p.LossPenalty = time.Second
	}
	return p
}

// HighBandwidth returns the paper's high-bandwidth path: 50 ms RTT, no
// bandwidth bottleneck, a warm connection, and no loss. Latency is governed
// purely by slow-start round trips.
func HighBandwidth() Path {
	return Path{RTT: 50 * time.Millisecond}
}

// Modem56k returns the paper's low-bandwidth path: a 56 kb/s modem with
// 100 ms RTT, where "the transmission time of a single packet is roughly
// equal to twice RTT", plus connection setup and loss/queueing costs.
func Modem56k() Path {
	return Path{
		RTT:          100 * time.Millisecond,
		BandwidthBps: 56000,
		SetupRTTs:    2,
		LossRate:     0.01,
		LossPenalty:  time.Second,
		QueueDelay:   50 * time.Millisecond,
	}
}

// TransferLatency returns the modeled time to deliver size bytes to the
// client: connection setup, slow-start round trips, serialization on the
// bottleneck link, queueing, and expected loss recovery.
func (p Path) TransferLatency(size int) time.Duration {
	p = p.withDefaults()
	if size <= 0 {
		return time.Duration(p.SetupRTTs * float64(p.RTT))
	}

	segments := (size + p.MSS - 1) / p.MSS
	total := time.Duration(p.SetupRTTs*float64(p.RTT)) + p.QueueDelay

	// Slow start: each round delivers up to cwnd segments and costs
	// max(RTT, serialization time of the round's data on the bottleneck).
	cwnd := p.InitCwnd
	remaining := size
	for remaining > 0 {
		burst := cwnd * p.MSS
		if burst > remaining {
			burst = remaining
		}
		round := p.RTT
		if p.BandwidthBps > 0 {
			ser := time.Duration(float64(burst*8) / p.BandwidthBps * float64(time.Second))
			if ser > round {
				round = ser
			}
		}
		total += round
		remaining -= burst
		cwnd *= 2
		if cwnd > p.MaxCwnd {
			cwnd = p.MaxCwnd
		}
	}

	if p.LossRate > 0 {
		expectedLosses := p.LossRate * float64(segments)
		total += time.Duration(expectedLosses * float64(p.LossPenalty))
	}
	return total
}

// SlowStartRounds returns the number of slow-start round trips needed to
// deliver size bytes (ignoring bandwidth limits) — the quantity the paper's
// log(S1/S2) argument counts.
func (p Path) SlowStartRounds(size int) int {
	p = p.withDefaults()
	if size <= 0 {
		return 0
	}
	segments := (size + p.MSS - 1) / p.MSS
	rounds := 0
	cwnd := p.InitCwnd
	for segments > 0 {
		segments -= cwnd
		rounds++
		cwnd *= 2
		if cwnd > p.MaxCwnd {
			cwnd = p.MaxCwnd
		}
	}
	return rounds
}

// LatencyRatio returns L1/L2: the latency of transferring size1 relative to
// size2 over the path. The paper's headline numbers are ~5 for 30KB/1KB on
// a high-bandwidth path and ~10 on a 56k modem.
func (p Path) LatencyRatio(size1, size2 int) float64 {
	l2 := p.TransferLatency(size2)
	if l2 <= 0 {
		return 0
	}
	return float64(p.TransferLatency(size1)) / float64(l2)
}

// Report describes one path's latency picture for a document/delta pair.
type Report struct {
	Label      string
	DocBytes   int
	DeltaBytes int
	DocLatency time.Duration
	DltLatency time.Duration
	Ratio      float64
}

// String renders the report row.
func (r Report) String() string {
	return fmt.Sprintf("%-12s doc %6dB %8s   delta %5dB %8s   L1/L2 %.1f",
		r.Label, r.DocBytes, r.DocLatency.Round(time.Millisecond),
		r.DeltaBytes, r.DltLatency.Round(time.Millisecond), r.Ratio)
}

// Compare builds the Section VI-A comparison for a document of docBytes
// shrunk to deltaBytes over the path.
func Compare(label string, p Path, docBytes, deltaBytes int) Report {
	return Report{
		Label:      label,
		DocBytes:   docBytes,
		DeltaBytes: deltaBytes,
		DocLatency: p.TransferLatency(docBytes),
		DltLatency: p.TransferLatency(deltaBytes),
		Ratio:      p.LatencyRatio(docBytes, deltaBytes),
	}
}

// PageLoad describes a full page: the dynamic container document plus its
// embedded objects (images, scripts), which are static and typically served
// from caches. Delta-encoding shrinks only the container, so whole-page
// speedup is an Amdahl fraction of the per-document speedup.
type PageLoad struct {
	// PageBytes is the size of the container document transfer.
	PageBytes int
	// Objects are the embedded object transfer sizes. Objects cached at
	// the client contribute zero and should be omitted.
	Objects []int
	// ParallelConns is how many persistent connections fetch objects
	// concurrently. Default 2 (HTTP/1.1-era browsers).
	ParallelConns int
	// RequestRTTs is the per-object request overhead on a persistent
	// connection, in round trips. Default 1.
	RequestRTTs float64
}

// PageLoadLatency models the time to display the full page: the container
// document downloads first (its bytes are what delta-encoding shrinks),
// then the embedded objects are fetched over ParallelConns persistent
// connections, greedily assigned.
func (p Path) PageLoadLatency(pl PageLoad) time.Duration {
	pp := p.withDefaults()
	conns := pl.ParallelConns
	if conns <= 0 {
		conns = 2
	}
	reqRTTs := pl.RequestRTTs
	if reqRTTs <= 0 {
		reqRTTs = 1
	}

	total := p.TransferLatency(pl.PageBytes)

	// Greedy longest-processing-time assignment of objects to connections.
	objects := make([]int, len(pl.Objects))
	copy(objects, pl.Objects)
	sort.Sort(sort.Reverse(sort.IntSlice(objects)))

	// Persistent connections: connection setup once per connection, then
	// request + transfer per object with no further setup.
	perConn := make([]time.Duration, conns)
	setupOnce := time.Duration(pp.SetupRTTs * float64(pp.RTT))
	noSetup := p
	noSetup.SetupRTTs = 0
	for _, size := range objects {
		// Assign to the least-loaded connection.
		best := 0
		for i := 1; i < conns; i++ {
			if perConn[i] < perConn[best] {
				best = i
			}
		}
		if perConn[best] == 0 {
			perConn[best] = setupOnce
		}
		perConn[best] += time.Duration(reqRTTs*float64(pp.RTT)) + noSetup.TransferLatency(size)
	}
	longest := time.Duration(0)
	for _, d := range perConn {
		if d > longest {
			longest = d
		}
	}
	return total + longest
}

// PageSpeedup returns the whole-page latency ratio between serving the
// container in full (directBytes) and serving it delta-encoded
// (deltaBytes), with the same embedded objects either way.
func (p Path) PageSpeedup(directBytes, deltaBytes int, objects []int) float64 {
	direct := p.PageLoadLatency(PageLoad{PageBytes: directBytes, Objects: objects})
	delta := p.PageLoadLatency(PageLoad{PageBytes: deltaBytes, Objects: objects})
	if delta <= 0 {
		return 0
	}
	return float64(direct) / float64(delta)
}
