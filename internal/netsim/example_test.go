package netsim_test

import (
	"fmt"

	"cbde/internal/netsim"
)

func ExamplePath_LatencyRatio() {
	// Section VI-A: shrinking a 30 KB document to a 1 KB delta cuts
	// latency ~5x on a high-bandwidth path (slow-start bound) and ~10x
	// over a 56 kb/s modem (transmission bound).
	high := netsim.HighBandwidth()
	modem := netsim.Modem56k()
	fmt.Printf("high-bw %.1f\n", high.LatencyRatio(30*1024, 1024))
	fmt.Printf("modem   %.0f\n", modem.LatencyRatio(30*1024, 1024))
	// Output:
	// high-bw 5.0
	// modem   12
}
