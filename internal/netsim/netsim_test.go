package netsim

import (
	"strings"
	"testing"
	"time"
)

func TestHighBandwidthRatioNearFive(t *testing.T) {
	// Paper (VI-A): for S1/S2 = 30 (30KB doc vs 1KB delta) on a
	// high-bandwidth path, L1/L2 is roughly log2(30) ~ 5.
	p := HighBandwidth()
	ratio := p.LatencyRatio(30*1024, 1*1024)
	if ratio < 4 || ratio > 6 {
		t.Errorf("high-bandwidth L1/L2 = %.2f, paper says ~5", ratio)
	}
}

func TestModemRatioNearTen(t *testing.T) {
	// Paper (VI-A): on a 56kb/s modem with 100ms RTT, L1/L2 is around 10.
	p := Modem56k()
	ratio := p.LatencyRatio(30*1024, 1*1024)
	if ratio < 8 || ratio > 14 {
		t.Errorf("modem L1/L2 = %.2f, paper says ~10", ratio)
	}
}

func TestModemPacketTakesTwoRTTs(t *testing.T) {
	// The paper's calibration: one full-size packet on the modem
	// serializes in about twice the RTT.
	p := Modem56k().withDefaults()
	ser := time.Duration(float64(p.MSS*8) / p.BandwidthBps * float64(time.Second))
	if ser < 15*p.RTT/10 || ser > 25*p.RTT/10 {
		t.Errorf("packet serialization %v, want ~2x RTT (%v)", ser, p.RTT)
	}
}

func TestSlowStartRounds(t *testing.T) {
	p := Path{RTT: 50 * time.Millisecond, MSS: 1000, InitCwnd: 1}
	tests := []struct {
		size, want int
	}{
		{0, 0},
		{1, 1},         // 1 segment: 1 round
		{1000, 1},      // exactly one segment
		{2000, 2},      // 2 segments: 1 + 1
		{7000, 3},      // 7 segments: 1+2+4
		{15000, 4},     // 15 segments: 1+2+4+8
		{16000, 5},     // 16 segments: need a 5th round
		{30 * 1024, 5}, // ~31 segments: 1+2+4+8+16
	}
	for _, tt := range tests {
		if got := p.SlowStartRounds(tt.size); got != tt.want {
			t.Errorf("SlowStartRounds(%d) = %d, want %d", tt.size, got, tt.want)
		}
	}
}

func TestSlowStartRoundsCappedWindow(t *testing.T) {
	p := Path{RTT: time.Millisecond, MSS: 1000, InitCwnd: 1, MaxCwnd: 4}
	// 100 segments with cwnd capped at 4: 1+2+4+4+... => 3 + ceil(93/4) rounds.
	if got, want := p.SlowStartRounds(100_000), 3+24; got != want {
		t.Errorf("capped SlowStartRounds = %d, want %d", got, want)
	}
}

func TestLatencyMonotoneInSize(t *testing.T) {
	for _, p := range []Path{HighBandwidth(), Modem56k()} {
		prev := time.Duration(-1)
		for size := 0; size <= 64*1024; size += 4096 {
			l := p.TransferLatency(size)
			if l < prev {
				t.Fatalf("latency not monotone at %d bytes: %v < %v", size, l, prev)
			}
			prev = l
		}
	}
}

func TestZeroSizeCostsOnlySetup(t *testing.T) {
	p := Path{RTT: 100 * time.Millisecond, SetupRTTs: 2}
	if got := p.TransferLatency(0); got != 200*time.Millisecond {
		t.Errorf("TransferLatency(0) = %v, want 200ms", got)
	}
	p2 := HighBandwidth()
	if got := p2.TransferLatency(0); got != 0 {
		t.Errorf("warm connection, 0 bytes: %v, want 0", got)
	}
}

func TestBandwidthBoundTransfer(t *testing.T) {
	// On the modem, a 30KB transfer is dominated by serialization:
	// total must be at least size*8/bandwidth.
	p := Modem56k()
	size := 30 * 1024
	min := time.Duration(float64(size*8) / 56000 * float64(time.Second))
	if got := p.TransferLatency(size); got < min {
		t.Errorf("TransferLatency = %v, below serialization floor %v", got, min)
	}
}

func TestLossAddsExpectedPenalty(t *testing.T) {
	base := Path{RTT: 50 * time.Millisecond, MSS: 1000, InitCwnd: 1}
	lossy := base
	lossy.LossRate = 0.5
	lossy.LossPenalty = time.Second
	size := 10_000 // 10 segments => expected 5 losses => +5s
	diff := lossy.TransferLatency(size) - base.TransferLatency(size)
	if diff != 5*time.Second {
		t.Errorf("loss penalty = %v, want 5s", diff)
	}
}

func TestLatencyRatioDegenerate(t *testing.T) {
	p := Path{RTT: 0}
	if got := p.LatencyRatio(100, 100); got != 0 {
		t.Errorf("zero-latency path ratio = %v, want 0 guard", got)
	}
}

func TestCompareReport(t *testing.T) {
	r := Compare("modem", Modem56k(), 30*1024, 1024)
	if r.Ratio < 8 || r.Ratio > 14 {
		t.Errorf("report ratio = %.1f", r.Ratio)
	}
	s := r.String()
	for _, want := range []string{"modem", "L1/L2"} {
		if !strings.Contains(s, want) {
			t.Errorf("report string missing %q: %s", want, s)
		}
	}
}

func TestPathDefaults(t *testing.T) {
	p := Path{}.withDefaults()
	if p.MSS != 1460 || p.InitCwnd != 1 || p.MaxCwnd != 44 {
		t.Errorf("unexpected defaults: %+v", p)
	}
	lossy := Path{LossRate: 0.1}.withDefaults()
	if lossy.LossPenalty != time.Second {
		t.Errorf("LossPenalty default missing: %+v", lossy)
	}
}

func TestPageLoadLatency(t *testing.T) {
	p := Modem56k()
	// Page alone.
	pageOnly := p.PageLoadLatency(PageLoad{PageBytes: 30 * 1024})
	if pageOnly != p.TransferLatency(30*1024) {
		t.Errorf("page-only load %v != transfer latency %v", pageOnly, p.TransferLatency(30*1024))
	}
	// Adding objects strictly increases latency.
	withObjects := p.PageLoadLatency(PageLoad{
		PageBytes: 30 * 1024,
		Objects:   []int{8 * 1024, 4 * 1024, 2 * 1024},
	})
	if withObjects <= pageOnly {
		t.Errorf("objects did not add latency: %v <= %v", withObjects, pageOnly)
	}
	// More parallel connections cannot be slower.
	serial := p.PageLoadLatency(PageLoad{PageBytes: 1024, Objects: []int{8192, 8192, 8192, 8192}, ParallelConns: 1})
	par4 := p.PageLoadLatency(PageLoad{PageBytes: 1024, Objects: []int{8192, 8192, 8192, 8192}, ParallelConns: 4})
	if par4 > serial {
		t.Errorf("4 connections slower than 1: %v > %v", par4, serial)
	}
}

func TestPageSpeedupAmdahl(t *testing.T) {
	// With cached objects omitted, page speedup equals the document
	// speedup; with objects present it must be strictly smaller (Amdahl).
	p := Modem56k()
	docOnly := p.PageSpeedup(30*1024, 1024, nil)
	withObjects := p.PageSpeedup(30*1024, 1024, []int{8 * 1024, 8 * 1024})
	if docOnly < 8 {
		t.Errorf("document-only page speedup %.1f, want ~10", docOnly)
	}
	if withObjects >= docOnly {
		t.Errorf("embedded objects should dilute the speedup: %.1f >= %.1f", withObjects, docOnly)
	}
	if withObjects <= 1 {
		t.Errorf("speedup with objects = %.1f, want > 1", withObjects)
	}
}
