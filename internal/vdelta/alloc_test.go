package vdelta

import (
	"math/rand/v2"
	"testing"

	"cbde/internal/testutil"
)

// Allocation budgets for the steady-state encode path. These are regression
// tripwires, not aspirations: EncodeIndexed on a warm pool allocates exactly
// one object (the returned delta), and the budget of 2 leaves room for an
// occasional pool refill after a GC. A failure here means per-call state
// stopped being pooled.
const (
	encodeIndexedAllocBudget     = 2
	encodeIndexedIntoAllocBudget = 0.5 // scratch supplied by caller: ~zero
	estimateAllocBudget          = 0.5
)

func TestEncodeIndexedAllocBudget(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts differ under -race")
	}
	rng := rand.New(rand.NewPCG(41, 2))
	c := NewCoder()
	base, target := randDoc(rng, 40000)
	ix := c.NewIndex(base)
	// Warm the scratch pool.
	for i := 0; i < 5; i++ {
		if _, err := c.EncodeIndexed(ix, target); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := c.EncodeIndexed(ix, target); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > encodeIndexedAllocBudget {
		t.Errorf("EncodeIndexed allocates %.1f objects/op on a warm index, budget %d",
			allocs, encodeIndexedAllocBudget)
	}
}

func TestEncodeIndexedIntoAllocBudget(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts differ under -race")
	}
	rng := rand.New(rand.NewPCG(42, 3))
	c := NewCoder()
	base, target := randDoc(rng, 40000)
	ix := c.NewIndex(base)
	var scratch []byte
	for i := 0; i < 5; i++ {
		d, err := c.EncodeIndexedInto(ix, target, scratch)
		if err != nil {
			t.Fatal(err)
		}
		scratch = d
	}
	allocs := testing.AllocsPerRun(100, func() {
		d, err := c.EncodeIndexedInto(ix, target, scratch)
		if err != nil {
			t.Fatal(err)
		}
		scratch = d
	})
	if allocs > encodeIndexedIntoAllocBudget {
		t.Errorf("EncodeIndexedInto allocates %.1f objects/op with warm scratch, budget %.1f",
			allocs, encodeIndexedIntoAllocBudget)
	}
}

func TestEstimateAllocBudget(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts differ under -race")
	}
	rng := rand.New(rand.NewPCG(43, 4))
	est := NewEstimator()
	base, target := randDoc(rng, 40000)
	for i := 0; i < 5; i++ {
		est.Estimate(base, target)
	}
	allocs := testing.AllocsPerRun(100, func() {
		est.Estimate(base, target)
	})
	if allocs > estimateAllocBudget {
		t.Errorf("Estimate allocates %.1f objects/op warm, budget %.1f", allocs, estimateAllocBudget)
	}
}
