// Package vdelta implements a Vdelta-style delta codec (Hunt, Vo, Tichy;
// ACM TOSEM 1998), the algorithm the paper builds on.
//
// Encode produces a compact instruction stream (the "delta") that, combined
// with the base-file it was computed against, reconstructs the target
// document byte-for-byte. The encoder indexes the base-file with a hash
// table keyed by w-byte chunks (w=4 by default, as in the paper), finds
// maximally long matches by extending candidate matches both forwards and
// backwards, and can additionally copy from the already-emitted target
// prefix, which gives cheap run-length behaviour.
//
// The package also provides the "light" variant the paper uses for cheap
// class-grouping probes (footnote 2): larger byte-chunks and forward-only
// traversal; see Estimator.
package vdelta

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sync"
)

// Wire format constants.
const (
	magic0 = 'V'
	magic1 = 'D'
	magic2 = '0'
	magic3 = '1'

	flagChecksum = 1 << 0

	opEnd  = 0x00
	opAdd  = 0x01
	opCopy = 0x02
)

// Defaults for encoder configuration.
const (
	DefaultChunkSize = 4
	DefaultMaxChain  = 16
	DefaultMinMatch  = 4

	minChunkSize = 2
	maxChunkSize = 64
)

// Errors returned by Decode and Stats.
var (
	// ErrCorrupt reports a structurally invalid or truncated delta.
	ErrCorrupt = errors.New("vdelta: corrupt delta")
	// ErrBaseMismatch reports that the base-file supplied to Decode is not
	// the base-file the delta was encoded against.
	ErrBaseMismatch = errors.New("vdelta: base-file does not match delta")
	// ErrChecksum reports that the reconstructed target failed verification.
	ErrChecksum = errors.New("vdelta: target checksum mismatch")
)

type config struct {
	chunkSize      int
	maxChain       int
	minMatch       int
	targetMatching bool
	checksum       bool
}

func defaultConfig() config {
	return config{
		chunkSize:      DefaultChunkSize,
		maxChain:       DefaultMaxChain,
		minMatch:       DefaultMinMatch,
		targetMatching: true,
		checksum:       true,
	}
}

// Option configures a Coder.
type Option func(*config)

// WithChunkSize sets the width, in bytes, of the chunks used to key the
// hash-table index. The paper's Vdelta uses 4; the light grouping variant
// uses larger chunks. Values are clamped to [2, 64].
func WithChunkSize(w int) Option {
	return func(c *config) {
		if w < minChunkSize {
			w = minChunkSize
		}
		if w > maxChunkSize {
			w = maxChunkSize
		}
		c.chunkSize = w
		if c.minMatch < w {
			c.minMatch = w
		}
	}
}

// WithMaxChain bounds how many candidate positions are kept per hash bucket.
// Larger values find better matches at higher CPU cost.
func WithMaxChain(n int) Option {
	return func(c *config) {
		if n < 1 {
			n = 1
		}
		c.maxChain = n
	}
}

// WithMinMatch sets the minimum match length worth emitting as a COPY.
// It is raised to the chunk size if smaller.
func WithMinMatch(n int) Option {
	return func(c *config) {
		if n < minChunkSize {
			n = minChunkSize
		}
		c.minMatch = n
	}
}

// WithTargetMatching enables or disables copies from the already-encoded
// target prefix (enabled by default).
func WithTargetMatching(enabled bool) Option {
	return func(c *config) { c.targetMatching = enabled }
}

// WithChecksum enables or disables embedding an FNV-32a checksum of the
// target in the delta (enabled by default).
func WithChecksum(enabled bool) Option {
	return func(c *config) { c.checksum = enabled }
}

// Coder is a reusable, configured encoder/decoder. The zero value is not
// valid; use NewCoder. A Coder is safe for concurrent use: its configuration
// is immutable and its scratch pool is concurrency-safe.
type Coder struct {
	cfg config
	// pool recycles per-call encode state (index arrays and the output
	// scratch buffer) so steady-state encodes allocate only the delta they
	// return. Keyed off the Coder — and therefore off its config — because
	// array sizing depends on chunkSize/maxChain.
	pool sync.Pool
}

// NewCoder returns a Coder with the given options applied over the defaults.
func NewCoder(opts ...Option) *Coder {
	cfg := defaultConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.minMatch < cfg.chunkSize {
		cfg.minMatch = cfg.chunkSize
	}
	c := &Coder{cfg: cfg}
	c.pool.New = func() any { return new(encState) }
	return c
}

// Encode computes the delta that transforms base into target using the
// default configuration.
func Encode(base, target []byte) ([]byte, error) {
	return NewCoder().Encode(base, target)
}

// Decode reconstructs the target from base and delta using the default
// configuration.
func Decode(base, delta []byte) ([]byte, error) {
	return NewCoder().Decode(base, delta)
}

// maxInputLen bounds encoder inputs so offsets fit the wire format.
const maxInputLen = math.MaxInt32

// maxDecodeTarget bounds the target size a delta may declare, so forged
// deltas cannot bomb the decoder with one giant allocation. Web documents
// are orders of magnitude below this.
const maxDecodeTarget = 1 << 28 // 256 MiB

func errInputTooLarge(baseLen, targetLen int) error {
	return fmt.Errorf("vdelta: input too large (base %d, target %d bytes)", baseLen, targetLen)
}

// checksumOf returns the FNV-32a hash of b.
func checksumOf(b []byte) uint32 {
	h := fnv.New32a()
	h.Write(b)
	return h.Sum32()
}

// hashChunk hashes the w bytes starting at b[i]. Callers guarantee
// i+w <= len(b).
func hashChunk(b []byte, i, w int) uint32 {
	// FNV-1a unrolled over w bytes; cheap and well distributed for small w.
	h := uint32(2166136261)
	for _, c := range b[i : i+w] {
		h ^= uint32(c)
		h *= 16777619
	}
	return h
}

// chunkIndex maps chunk hashes to source positions using zlib-style flat
// chain arrays instead of a map of slices: head[h&mask] holds the most
// recently inserted position for a hash slot, and prev[pos-bias] links each
// position to the previously inserted one sharing its slot. Insertion is
// O(1) and allocation-free after init; the maxChain bound is applied at
// lookup time by walking at most maxChain links, newest-first.
//
// Positions are virtual-source offsets (base first, then target prefix);
// bias is the virtual offset of prev[0], so a target-prefix index stores
// only len(target) links. Callers must insert positions in strictly
// monotonic order — re-inserting a position would create a cycle in the
// chain (bounded walks keep that from looping forever, but it loses older
// candidates). Insertion order doubles as candidate priority: the bounded
// lookup walks last-inserted-first. Static indexes over a whole base are
// built in decreasing position order, so lookups prefer the oldest (lowest)
// positions, which have the longest forward runway on repetitive content;
// the incremental target-prefix index necessarily inserts in increasing
// order and so prefers recent positions, as zlib does.
type chunkIndex struct {
	mask     uint32
	bias     int32
	maxChain int
	head     []int32 // 1<<k entries, -1 = empty slot
	prev     []int32 // one entry per insertable position
}

// maxHashSpace caps the head array (4 MiB of int32) so multi-hundred-MB
// bases degrade to longer chains instead of unbounded table growth.
const maxHashSpace = 1 << 20

// hashSpaceFor returns the power-of-two head size for the expected number of
// insertable positions (load factor ~1, floor 256).
func hashSpaceFor(positions int) int {
	n := 256
	for n < positions && n < maxHashSpace {
		n <<= 1
	}
	return n
}

// positionCount returns how many chunk positions a buffer of length n yields
// at the given chunk width and stride.
func positionCount(n, w, stride int) int {
	if n < w {
		return 0
	}
	return (n-w)/stride + 1
}

// init sizes (or re-sizes, reusing capacity) the arrays for the given number
// of insertable positions and clears the table. It is what makes a pooled
// chunkIndex reusable across encodes.
func (idx *chunkIndex) init(positions int, bias int32, maxChain int) {
	n := hashSpaceFor(positions)
	if cap(idx.head) >= n {
		idx.head = idx.head[:n]
	} else {
		idx.head = make([]int32, n)
	}
	for i := range idx.head {
		idx.head[i] = -1
	}
	if cap(idx.prev) >= positions {
		idx.prev = idx.prev[:positions]
	} else {
		idx.prev = make([]int32, positions)
	}
	idx.mask = uint32(n - 1)
	idx.bias = bias
	idx.maxChain = maxChain
}

// newChunkIndex allocates a fresh index for the given number of positions.
func newChunkIndex(positions, maxChain int) *chunkIndex {
	idx := &chunkIndex{}
	idx.init(positions, 0, maxChain)
	return idx
}

// add records pos (a virtual-source offset ≥ bias) under hash h. Positions
// must be added in strictly monotonic order (see the type comment).
func (idx *chunkIndex) add(h uint32, pos int32) {
	slot := h & idx.mask
	idx.prev[pos-idx.bias] = idx.head[slot]
	idx.head[slot] = pos
}

// encState is the pooled per-call encoder state: the index arrays and the
// output scratch buffer. Returned deltas never alias it — they are copied
// out (Encode, EncodeIndexed) or written into a caller-supplied buffer
// (EncodeIndexedInto) — so recycling it is safe.
type encState struct {
	baseIdx   chunkIndex
	targetIdx chunkIndex
	out       []byte
}

func (c *Coder) getState() *encState { return c.pool.Get().(*encState) }

// Encode computes the delta that transforms base into target.
//
// The returned delta embeds the lengths of both files (and, unless disabled,
// a checksum of the target) so that Decode can detect mismatched or corrupt
// inputs. Encode never fails for in-range inputs; the error return exists
// for forward compatibility and length-overflow protection.
func (c *Coder) Encode(base, target []byte) ([]byte, error) {
	if len(base) > maxInputLen || len(target) > maxInputLen {
		return nil, errInputTooLarge(len(base), len(target))
	}
	w := c.cfg.chunkSize
	st := c.getState()
	defer c.pool.Put(st)

	// Index every base position (chains bounded at lookup). Positions in the
	// virtual source are [0, len(base)) for the base and [len(base), ...)
	// for the target prefix. Decreasing insertion order makes bounded
	// lookups prefer the oldest positions, as the map-based index did.
	st.baseIdx.init(positionCount(len(base), w, 1), 0, c.cfg.maxChain)
	for i := len(base) - w; i >= 0; i-- {
		st.baseIdx.add(hashChunk(base, i, w), int32(i))
	}
	var targetIdx *chunkIndex
	if c.cfg.targetMatching {
		targetIdx = &st.targetIdx
		targetIdx.init(positionCount(len(target), w, 1), int32(len(base)), c.cfg.maxChain)
	}

	enc := deltaEncoder{
		cfg:       c.cfg,
		base:      base,
		target:    target,
		baseIdx:   &st.baseIdx,
		targetIdx: targetIdx,
		out:       st.out[:0],
	}
	out := enc.run()
	st.out = out // retain the grown scratch for the next encode
	delta := make([]byte, len(out))
	copy(delta, out)
	return delta, nil
}

// deltaEncoder holds the per-call encoding state.
type deltaEncoder struct {
	cfg       config
	base      []byte
	target    []byte
	baseIdx   *chunkIndex
	targetIdx *chunkIndex

	out      []byte
	litStart int // start of the pending literal run in target
	pos      int // current scan position in target
}

// match describes a candidate copy. start is a virtual-source offset
// (base first, then target prefix); length counts matched bytes including
// any backward extension; back is how many of those bytes extend backwards
// into the pending literal run.
type match struct {
	start  int
	length int
	back   int
}

func (e *deltaEncoder) run() []byte {
	base, target := e.base, e.target
	w := e.cfg.chunkSize

	if cap(e.out) == 0 {
		e.out = make([]byte, 0, len(target)/4+32)
	}
	e.writeHeader()

	for e.pos+w <= len(target) {
		h := hashChunk(target, e.pos, w)
		best := e.bestMatch(h)
		if best.length >= e.cfg.minMatch {
			e.flushLiterals(e.pos - best.back)
			e.emitCopy(best.start, best.length)
			// Index the copied region so later target self-matches can find
			// it. Positions before e.pos were already inserted one-by-one
			// while the literal run was scanned; the chain arrays require
			// strictly increasing inserts, so start at e.pos.
			if e.targetIdx != nil {
				e.indexTargetRange(e.pos, e.pos-best.back+best.length)
			}
			e.pos += best.length - best.back
			e.litStart = e.pos
			continue
		}
		if e.targetIdx != nil {
			e.targetIdx.add(h, int32(len(base)+e.pos))
		}
		e.pos++
	}
	e.flushLiterals(len(target))
	e.out = append(e.out, opEnd)
	return e.out
}

// indexTargetRange adds chunk hashes for target[from:to) to the target
// index, stepping by chunk size to bound the cost of long copies.
func (e *deltaEncoder) indexTargetRange(from, to int) {
	w := e.cfg.chunkSize
	for i := from; i+w <= to && i+w <= len(e.target); i += w {
		e.targetIdx.add(hashChunk(e.target, i, w), int32(len(e.base)+i))
	}
}

// bestMatch returns the best match for the chunk hash h at e.pos, extending
// candidates forwards and backwards.
func (e *deltaEncoder) bestMatch(h uint32) match {
	var best match
	e.scanChain(e.baseIdx, h, &best)
	if e.targetIdx != nil {
		e.scanChain(e.targetIdx, h, &best)
	}
	return best
}

// scanChain walks at most maxChain candidates for h, newest-first, keeping
// the best per better's order-independent criterion.
func (e *deltaEncoder) scanChain(idx *chunkIndex, h uint32, best *match) {
	pos := idx.head[h&idx.mask]
	for n := 0; pos >= 0 && n < idx.maxChain; n++ {
		if m := e.extend(int(pos)); better(m, *best) {
			*best = m
		}
		pos = idx.prev[pos-idx.bias]
	}
}

// better reports whether m improves on best. Longer matches win; ties go to
// the smaller virtual-source start, then the smaller backward extension.
// Because ties never depend on which candidate was examined first, the
// chosen match is a function of the candidate set alone — chain-array and
// map-based indexes over the same positions produce byte-identical deltas,
// which is what the differential tests assert.
func better(m, best match) bool {
	if m.length != best.length {
		return m.length > best.length
	}
	if m.length == 0 {
		return false
	}
	if m.start != best.start {
		return m.start < best.start
	}
	return m.back < best.back
}

// srcByte returns the byte at virtual-source offset i: the base followed by
// the target prefix.
func (e *deltaEncoder) srcByte(i int) byte {
	if i < len(e.base) {
		return e.base[i]
	}
	return e.target[i-len(e.base)]
}

// extend verifies and maximally extends a candidate match whose chunk starts
// at virtual-source offset start, against the target at e.pos.
func (e *deltaEncoder) extend(start int) match {
	base, target := e.base, e.target
	srcLimit := len(base)
	isTargetSrc := start >= len(base)
	if isTargetSrc {
		// A target self-copy may read up to, but not past, the data that
		// will have been reconstructed when this copy executes. Decoder
		// copies byte-by-byte, so overlapping forward extension past e.pos
		// is legal (run-length behaviour): the source byte at offset
		// len(base)+k is available once target[k] has been written.
		srcLimit = len(base) + len(target)
	}

	// Forward extension, verifying from the chunk start.
	n := 0
	for start+n < srcLimit && e.pos+n < len(target) {
		if isTargetSrc {
			// Source byte k of the target prefix is only available if
			// k < (position being written), i.e. start+n-len(base) < pos+n,
			// which reduces to start-len(base) < pos and always holds for
			// candidates indexed before pos. Overlap is therefore safe.
			if target[start+n-len(base)] != target[e.pos+n] {
				break
			}
		} else if base[start+n] != target[e.pos+n] {
			break
		}
		n++
	}
	if n < e.cfg.chunkSize {
		return match{}
	}

	// Backward extension into the pending literal run.
	back := 0
	for e.pos-back > e.litStart && start-back > 0 {
		if e.srcByte(start-back-1) != target[e.pos-back-1] {
			break
		}
		if isTargetSrc && start-back-1 < len(base) {
			// Do not extend a target self-copy backwards into the base.
			break
		}
		back++
	}
	return match{start: start - back, length: n + back, back: back}
}

func (e *deltaEncoder) writeHeader() {
	e.out = append(e.out, magic0, magic1, magic2, magic3)
	var flags byte
	if e.cfg.checksum {
		flags |= flagChecksum
	}
	e.out = append(e.out, flags)
	e.out = binary.AppendUvarint(e.out, uint64(len(e.base)))
	e.out = binary.AppendUvarint(e.out, uint64(len(e.target)))
	if e.cfg.checksum {
		e.out = binary.BigEndian.AppendUint32(e.out, checksumOf(e.target))
	}
}

// flushLiterals emits the pending literal run target[litStart:upto) as an
// ADD instruction.
func (e *deltaEncoder) flushLiterals(upto int) {
	if upto <= e.litStart {
		return
	}
	lit := e.target[e.litStart:upto]
	e.out = append(e.out, opAdd)
	e.out = binary.AppendUvarint(e.out, uint64(len(lit)))
	e.out = append(e.out, lit...)
	e.litStart = upto
}

func (e *deltaEncoder) emitCopy(start, length int) {
	e.out = append(e.out, opCopy)
	e.out = binary.AppendUvarint(e.out, uint64(start))
	e.out = binary.AppendUvarint(e.out, uint64(length))
}

// Decode reconstructs the target document from base and delta.
//
// It returns ErrBaseMismatch if base has a different length than the
// base-file the delta was encoded against, ErrCorrupt for malformed input,
// and ErrChecksum if the reconstructed target fails verification.
func (c *Coder) Decode(base, delta []byte) ([]byte, error) {
	hdr, body, err := parseHeader(delta)
	if err != nil {
		return nil, err
	}
	if hdr.baseLen != len(base) {
		return nil, fmt.Errorf("%w: delta was encoded against a %d-byte base, got %d bytes",
			ErrBaseMismatch, hdr.baseLen, len(base))
	}
	if hdr.targetLen > maxDecodeTarget {
		return nil, fmt.Errorf("%w: declared target of %d bytes exceeds limit", ErrCorrupt, hdr.targetLen)
	}

	// Allocate from actual instruction output, not the header value a
	// forged delta controls; the end-marker check still enforces the
	// declared length.
	capHint := hdr.targetLen
	if capHint > 1<<20 {
		capHint = 1 << 20
	}
	out := make([]byte, 0, capHint)
	for {
		if len(body) == 0 {
			return nil, fmt.Errorf("%w: missing end marker", ErrCorrupt)
		}
		op := body[0]
		body = body[1:]
		switch op {
		case opEnd:
			if len(out) != hdr.targetLen {
				return nil, fmt.Errorf("%w: reconstructed %d bytes, header says %d",
					ErrCorrupt, len(out), hdr.targetLen)
			}
			if hdr.hasChecksum && checksumOf(out) != hdr.checksum {
				return nil, ErrChecksum
			}
			return out, nil

		case opAdd:
			n, rest, err := readUvarint(body)
			if err != nil {
				return nil, err
			}
			body = rest
			if n > len(body) {
				return nil, fmt.Errorf("%w: ADD of %d bytes overruns delta", ErrCorrupt, n)
			}
			if len(out)+n > hdr.targetLen {
				return nil, fmt.Errorf("%w: ADD overruns target length", ErrCorrupt)
			}
			out = append(out, body[:n]...)
			body = body[n:]

		case opCopy:
			start, rest, err := readUvarint(body)
			if err != nil {
				return nil, err
			}
			length, rest, err := readUvarint(rest)
			if err != nil {
				return nil, err
			}
			body = rest
			if len(out)+length > hdr.targetLen {
				return nil, fmt.Errorf("%w: COPY overruns target length", ErrCorrupt)
			}
			if start < len(base) {
				// Copy from base; must fit entirely unless it spills into
				// the target prefix region, which the encoder never emits.
				if start+length > len(base) {
					return nil, fmt.Errorf("%w: COPY [%d,%d) overruns base of %d bytes",
						ErrCorrupt, start, start+length, len(base))
				}
				out = append(out, base[start:start+length]...)
			} else {
				// Copy from the already-reconstructed target prefix.
				// May overlap the output being written: copy byte-by-byte.
				from := start - len(base)
				if from >= len(out) {
					return nil, fmt.Errorf("%w: COPY from unwritten target offset %d (have %d)",
						ErrCorrupt, from, len(out))
				}
				for i := 0; i < length; i++ {
					out = append(out, out[from+i])
				}
			}

		default:
			return nil, fmt.Errorf("%w: unknown opcode 0x%02x", ErrCorrupt, op)
		}
	}
}

type header struct {
	baseLen     int
	targetLen   int
	hasChecksum bool
	checksum    uint32
}

func parseHeader(delta []byte) (header, []byte, error) {
	var hdr header
	if len(delta) < 5 || delta[0] != magic0 || delta[1] != magic1 || delta[2] != magic2 || delta[3] != magic3 {
		return hdr, nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	flags := delta[4]
	body := delta[5:]
	baseLen, body, err := readUvarint(body)
	if err != nil {
		return hdr, nil, err
	}
	targetLen, body, err := readUvarint(body)
	if err != nil {
		return hdr, nil, err
	}
	hdr.baseLen = baseLen
	hdr.targetLen = targetLen
	if flags&flagChecksum != 0 {
		if len(body) < 4 {
			return hdr, nil, fmt.Errorf("%w: truncated checksum", ErrCorrupt)
		}
		hdr.hasChecksum = true
		hdr.checksum = binary.BigEndian.Uint32(body[:4])
		body = body[4:]
	}
	return hdr, body, nil
}

func readUvarint(b []byte) (int, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: bad varint", ErrCorrupt)
	}
	if v > math.MaxInt32 {
		return 0, nil, fmt.Errorf("%w: varint out of range", ErrCorrupt)
	}
	return int(v), b[n:], nil
}

// Info summarizes the structure of an encoded delta.
type Info struct {
	BaseLen     int  // length of the base-file the delta was encoded against
	TargetLen   int  // length of the reconstructed target
	HasChecksum bool // whether the delta embeds a target checksum
	NumAdd      int  // number of ADD instructions
	NumCopy     int  // number of COPY instructions
	AddBytes    int  // total literal bytes carried in the delta
	CopyBytes   int  // total bytes reproduced via COPY instructions
}

// Stats parses delta and returns structural information without needing the
// base-file. It validates structure but not content.
func Stats(delta []byte) (Info, error) {
	hdr, body, err := parseHeader(delta)
	if err != nil {
		return Info{}, err
	}
	info := Info{BaseLen: hdr.baseLen, TargetLen: hdr.targetLen, HasChecksum: hdr.hasChecksum}
	for {
		if len(body) == 0 {
			return Info{}, fmt.Errorf("%w: missing end marker", ErrCorrupt)
		}
		op := body[0]
		body = body[1:]
		switch op {
		case opEnd:
			return info, nil
		case opAdd:
			n, rest, err := readUvarint(body)
			if err != nil {
				return Info{}, err
			}
			if n > len(rest) {
				return Info{}, fmt.Errorf("%w: ADD overruns delta", ErrCorrupt)
			}
			info.NumAdd++
			info.AddBytes += n
			body = rest[n:]
		case opCopy:
			_, rest, err := readUvarint(body)
			if err != nil {
				return Info{}, err
			}
			length, rest, err := readUvarint(rest)
			if err != nil {
				return Info{}, err
			}
			info.NumCopy++
			info.CopyBytes += length
			body = rest
		default:
			return Info{}, fmt.Errorf("%w: unknown opcode 0x%02x", ErrCorrupt, op)
		}
	}
}
