package vdelta

import "bytes"

// CommonChunks partitions base into aligned chunks of chunkSize bytes (the
// paper partitions files into four-byte chunks) and reports, for each chunk,
// whether its exact bytes appear anywhere in target. A trailing partial
// chunk, if any, is included and matched by its actual (shorter) length.
//
// This is the primitive the anonymization process of Section V is built on:
// during delta-encoding between the base-file and another user's document,
// a base chunk is "common" exactly when it occurs in that document.
// CommonChunksRun is usually preferable: bare chunk-width occurrences admit
// too many chance matches on real content.
func CommonChunks(base, target []byte, chunkSize int) []bool {
	if chunkSize < 1 {
		chunkSize = DefaultChunkSize
	}
	numChunks := (len(base) + chunkSize - 1) / chunkSize
	common := make([]bool, numChunks)
	if len(base) == 0 || len(target) == 0 {
		return common
	}

	w := chunkSize
	if w > len(target) {
		w = len(target)
	}

	// Index every target window of width w, verifying on lookup to rule out
	// hash collisions.
	idx := newChunkIndex(positionCount(len(target), w, 1), 64)
	for i := 0; i+w <= len(target); i++ {
		idx.add(hashChunk(target, i, w), int32(i))
	}

	contains := func(chunk []byte) bool {
		if len(chunk) < w {
			// Trailing partial chunk shorter than the window: brute force.
			return bytesContains(target, chunk)
		}
		h := hashChunk(chunk, 0, w)
		pos := idx.head[h&idx.mask]
		n := 0
		for ; pos >= 0 && n < idx.maxChain; n++ {
			if bytesEqualAt(target, int(pos), chunk[:w]) {
				if len(chunk) == w {
					return true
				}
				// Full chunk is wider than the index window; verify the rest.
				if bytesEqualAt(target, int(pos), chunk) {
					return true
				}
			}
			pos = idx.prev[pos]
		}
		// The bounded walk may have stopped before the matching position;
		// fall back to a direct scan only when candidates remained.
		if pos >= 0 {
			return bytesContains(target, chunk)
		}
		return false
	}

	for ci := 0; ci < numChunks; ci++ {
		lo := ci * chunkSize
		hi := lo + chunkSize
		if hi > len(base) {
			hi = len(base)
		}
		common[ci] = contains(base[lo:hi])
	}
	return common
}

func bytesEqualAt(b []byte, pos int, chunk []byte) bool {
	return pos+len(chunk) <= len(b) && bytes.Equal(b[pos:pos+len(chunk)], chunk)
}

func bytesContains(haystack, needle []byte) bool {
	return bytes.Contains(haystack, needle)
}

// CommonChunksRun is CommonChunks with a match-run requirement: a base
// chunk counts as common only when it lies inside a common substring of at
// least runLen bytes shared with target. This matches how Vdelta actually
// finds matches — chunk hashes only seed matches, which are then extended
// maximally — and prevents incidental chunk-width collisions ("the ",
// "<div") from marking genuinely private regions as common. runLen values
// below chunkSize behave like CommonChunks.
func CommonChunksRun(base, target []byte, chunkSize, runLen int) []bool {
	if chunkSize < 1 {
		chunkSize = DefaultChunkSize
	}
	if runLen <= chunkSize {
		return CommonChunks(base, target, chunkSize)
	}
	numChunks := (len(base) + chunkSize - 1) / chunkSize
	common := make([]bool, numChunks)
	if len(base) == 0 || len(target) == 0 || runLen > len(target) {
		return common
	}

	// covered[i] will report whether base[i] lies in a common run of at
	// least runLen bytes. Seed candidate runs with a window index over the
	// target, verify, and extend maximally in both directions.
	w := chunkSize
	idx := newChunkIndex(positionCount(len(target), w, 1), 64)
	for i := 0; i+w <= len(target); i++ {
		idx.add(hashChunk(target, i, w), int32(i))
	}

	covered := make([]bool, len(base))
	for i := 0; i+w <= len(base); i++ {
		if covered[i] {
			continue
		}
		h := hashChunk(base, i, w)
		bestLen, bestStart := 0, 0
		for pos, k := idx.head[h&idx.mask], 0; pos >= 0 && k < idx.maxChain; pos, k = idx.prev[pos], k+1 {
			p := int(pos)
			if !bytesEqualAt(target, p, base[i:i+w]) {
				continue
			}
			// Extend forwards.
			n := w
			for i+n < len(base) && p+n < len(target) && base[i+n] == target[p+n] {
				n++
			}
			// Extend backwards.
			back := 0
			for i-back > 0 && p-back > 0 && base[i-back-1] == target[p-back-1] {
				back++
			}
			if n+back > bestLen {
				bestLen, bestStart = n+back, i-back
			}
		}
		if bestLen >= runLen {
			for k := bestStart; k < bestStart+bestLen; k++ {
				covered[k] = true
			}
		}
	}

	for ci := 0; ci < numChunks; ci++ {
		lo := ci * chunkSize
		hi := lo + chunkSize
		if hi > len(base) {
			hi = len(base)
		}
		all := true
		for k := lo; k < hi; k++ {
			if !covered[k] {
				all = false
				break
			}
		}
		common[ci] = all
	}
	return common
}
