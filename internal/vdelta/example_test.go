package vdelta_test

import (
	"fmt"

	"cbde/internal/vdelta"
)

func Example() {
	yesterday := []byte("<html><body>widgets: 14 in stock, $19.99</body></html>")
	today := []byte("<html><body>widgets: 9 in stock, $17.49 SALE</body></html>")

	delta, err := vdelta.Encode(yesterday, today)
	if err != nil {
		panic(err)
	}
	restored, err := vdelta.Decode(yesterday, delta)
	if err != nil {
		panic(err)
	}
	fmt.Println(string(restored) == string(today))
	// Output: true
}

func ExampleCoder_EncodeIndexed() {
	coder := vdelta.NewCoder()
	base := []byte("a class base-file that many requests will be encoded against")
	ix := coder.NewIndex(base) // index once per rebase, reuse per request

	for _, doc := range []string{
		"a class base-file that request ONE will be encoded against",
		"a class base-file that request TWO will be encoded against",
	} {
		delta, err := coder.EncodeIndexed(ix, []byte(doc))
		if err != nil {
			panic(err)
		}
		out, err := coder.Decode(base, delta)
		if err != nil {
			panic(err)
		}
		fmt.Println(string(out) == doc)
	}
	// Output:
	// true
	// true
}

func ExampleEstimator() {
	est := vdelta.NewEstimator() // the paper's "light" Vdelta variant
	base := []byte("shared template shared template shared template")
	similar := []byte("shared template shared template shared template EXTRA")
	different := []byte("completely unrelated page with other words entirely!!")

	fmt.Println(est.Estimate(base, similar) < est.Estimate(base, different))
	// Output: true
}
