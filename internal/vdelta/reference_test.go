package vdelta

// This file retains a map-based reference implementation of the encoder's
// chunk index — the structure the package used before the flat chain-array
// rewrite — and differential tests asserting that the production encoder
// produces byte-identical deltas over randomized inputs and the fuzz corpus
// seeds. The reference mirrors the production semantics exactly: hashes are
// masked into the same power-of-two slot space (so unrelated hashes share
// chains and consume the same lookup budget), insertion order matches, and
// lookups walk at most maxChain candidates newest-first. Only the data
// structure differs: a map of position slices instead of head/prev arrays.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand/v2"
	"testing"
)

// refIndex is the retained map-based chunk index.
type refIndex struct {
	mask     uint32
	maxChain int
	buckets  map[uint32][]int32
}

func newRefIndex(positions, maxChain int) *refIndex {
	return &refIndex{
		mask:     uint32(hashSpaceFor(positions) - 1),
		maxChain: maxChain,
		buckets:  make(map[uint32][]int32),
	}
}

func (r *refIndex) add(h uint32, pos int32) {
	slot := h & r.mask
	r.buckets[slot] = append(r.buckets[slot], pos)
}

// scan visits at most maxChain positions for h, newest-first, calling fn
// for each — the same candidate sequence the chain arrays yield.
func (r *refIndex) scan(h uint32, fn func(pos int32)) {
	chain := r.buckets[h&r.mask]
	for i, n := len(chain)-1, 0; i >= 0 && n < r.maxChain; i, n = i-1, n+1 {
		fn(chain[i])
	}
}

// refEncoder is a copy of deltaEncoder driving refIndex instead of
// chunkIndex. It shares the package's match/better/extend semantics by
// construction; drift between the two encoders is what the differential
// tests exist to catch.
type refEncoder struct {
	cfg       config
	base      []byte
	target    []byte
	baseIdx   *refIndex
	targetIdx *refIndex

	out      []byte
	litStart int
	pos      int
}

// refEncode is the reference Encode: map-based indexes, same configuration.
func refEncode(cfg config, base, target []byte) []byte {
	w := cfg.chunkSize
	baseIdx := newRefIndex(positionCount(len(base), w, 1), cfg.maxChain)
	for i := len(base) - w; i >= 0; i-- {
		baseIdx.add(hashChunk(base, i, w), int32(i))
	}
	var targetIdx *refIndex
	if cfg.targetMatching {
		targetIdx = newRefIndex(positionCount(len(target), w, 1), cfg.maxChain)
	}
	e := refEncoder{cfg: cfg, base: base, target: target, baseIdx: baseIdx, targetIdx: targetIdx}
	return e.run()
}

func (e *refEncoder) run() []byte {
	base, target := e.base, e.target
	w := e.cfg.chunkSize

	e.out = make([]byte, 0, len(target)/4+32)
	e.out = append(e.out, magic0, magic1, magic2, magic3)
	var flags byte
	if e.cfg.checksum {
		flags |= flagChecksum
	}
	e.out = append(e.out, flags)
	e.out = binary.AppendUvarint(e.out, uint64(len(base)))
	e.out = binary.AppendUvarint(e.out, uint64(len(target)))
	if e.cfg.checksum {
		e.out = binary.BigEndian.AppendUint32(e.out, checksumOf(target))
	}

	for e.pos+w <= len(target) {
		h := hashChunk(target, e.pos, w)
		var best match
		e.baseIdx.scan(h, func(pos int32) {
			if m := e.extend(int(pos)); better(m, best) {
				best = m
			}
		})
		if e.targetIdx != nil {
			e.targetIdx.scan(h, func(pos int32) {
				if m := e.extend(int(pos)); better(m, best) {
					best = m
				}
			})
		}
		if best.length >= e.cfg.minMatch {
			e.flushLiterals(e.pos - best.back)
			e.out = append(e.out, opCopy)
			e.out = binary.AppendUvarint(e.out, uint64(best.start))
			e.out = binary.AppendUvarint(e.out, uint64(best.length))
			if e.targetIdx != nil {
				to := e.pos - best.back + best.length
				for i := e.pos; i+w <= to && i+w <= len(target); i += w {
					e.targetIdx.add(hashChunk(target, i, w), int32(len(base)+i))
				}
			}
			e.pos += best.length - best.back
			e.litStart = e.pos
			continue
		}
		if e.targetIdx != nil {
			e.targetIdx.add(h, int32(len(base)+e.pos))
		}
		e.pos++
	}
	e.flushLiterals(len(target))
	e.out = append(e.out, opEnd)
	return e.out
}

func (e *refEncoder) flushLiterals(upto int) {
	if upto <= e.litStart {
		return
	}
	lit := e.target[e.litStart:upto]
	e.out = append(e.out, opAdd)
	e.out = binary.AppendUvarint(e.out, uint64(len(lit)))
	e.out = append(e.out, lit...)
	e.litStart = upto
}

func (e *refEncoder) srcByte(i int) byte {
	if i < len(e.base) {
		return e.base[i]
	}
	return e.target[i-len(e.base)]
}

func (e *refEncoder) extend(start int) match {
	base, target := e.base, e.target
	srcLimit := len(base)
	isTargetSrc := start >= len(base)
	if isTargetSrc {
		srcLimit = len(base) + len(target)
	}
	n := 0
	for start+n < srcLimit && e.pos+n < len(target) {
		if isTargetSrc {
			if target[start+n-len(base)] != target[e.pos+n] {
				break
			}
		} else if base[start+n] != target[e.pos+n] {
			break
		}
		n++
	}
	if n < e.cfg.chunkSize {
		return match{}
	}
	back := 0
	for e.pos-back > e.litStart && start-back > 0 {
		if e.srcByte(start-back-1) != target[e.pos-back-1] {
			break
		}
		if isTargetSrc && start-back-1 < len(base) {
			break
		}
		back++
	}
	return match{start: start - back, length: n + back, back: back}
}

// diffConfigs are the coder configurations the differential tests sweep.
func diffConfigs() []struct {
	name string
	opts []Option
} {
	return []struct {
		name string
		opts []Option
	}{
		{"default", nil},
		{"chunk8", []Option{WithChunkSize(8)}},
		{"chain1", []Option{WithMaxChain(1)}},
		{"chain64", []Option{WithMaxChain(64)}},
		{"no-target-match", []Option{WithTargetMatching(false)}},
		{"no-checksum", []Option{WithChecksum(false)}},
		{"minmatch12", []Option{WithMinMatch(12)}},
	}
}

// checkDifferential asserts that the flat-index encoder (both the per-call
// Encode path and the reused-Index path) matches the map-based reference
// byte-for-byte and that the delta round-trips.
func checkDifferential(t *testing.T, c *Coder, base, target []byte, label string) {
	t.Helper()
	want := refEncode(c.cfg, base, target)
	got, err := c.Encode(base, target)
	if err != nil {
		t.Fatalf("%s: Encode: %v", label, err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s: flat-index Encode differs from map-based reference (%d vs %d bytes)",
			label, len(got), len(want))
	}
	indexed, err := c.EncodeIndexed(c.NewIndex(base), target)
	if err != nil {
		t.Fatalf("%s: EncodeIndexed: %v", label, err)
	}
	if !bytes.Equal(indexed, want) {
		t.Fatalf("%s: EncodeIndexed differs from map-based reference (%d vs %d bytes)",
			label, len(indexed), len(want))
	}
	doc, err := c.Decode(base, got)
	if err != nil {
		t.Fatalf("%s: Decode: %v", label, err)
	}
	if !bytes.Equal(doc, target) {
		t.Fatalf("%s: round trip mismatch", label)
	}
}

// fuzzCorpusSeeds are the FuzzRoundTrip seed pairs, reused here so the
// differential check covers the corpus that fuzzing starts from.
func fuzzCorpusSeeds() [][2][]byte {
	return [][2][]byte{
		{[]byte("base"), []byte("target")},
		{{}, []byte("only target")},
		{[]byte("only base"), {}},
		{bytes.Repeat([]byte("ab"), 300), bytes.Repeat([]byte("ab"), 301)},
		{[]byte("x"), bytes.Repeat([]byte("x"), 500)},
	}
}

func TestFlatIndexMatchesMapReferenceSeeds(t *testing.T) {
	for _, cfg := range diffConfigs() {
		c := NewCoder(cfg.opts...)
		for i, seed := range fuzzCorpusSeeds() {
			checkDifferential(t, c, seed[0], seed[1], fmt.Sprintf("%s/seed%d", cfg.name, i))
		}
	}
}

func TestFlatIndexMatchesMapReferenceRandom(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 8))
	for _, cfg := range diffConfigs() {
		c := NewCoder(cfg.opts...)
		for i := 0; i < 30; i++ {
			base, target := randDoc(rng, 100+rng.IntN(6000))
			checkDifferential(t, c, base, target, fmt.Sprintf("%s/iter%d", cfg.name, i))
		}
	}
}

// TestFlatIndexMatchesMapReferenceAdversarial targets the structural edge
// cases of the chain arrays: single repeated bytes (maximal chain cycles in
// one slot), alternating patterns, and sizes straddling the chunk width.
func TestFlatIndexMatchesMapReferenceAdversarial(t *testing.T) {
	cases := [][2][]byte{
		{bytes.Repeat([]byte("a"), 2000), bytes.Repeat([]byte("a"), 1999)},
		{bytes.Repeat([]byte("ab"), 1000), bytes.Repeat([]byte("ba"), 1000)},
		{bytes.Repeat([]byte("abcd"), 500), append(bytes.Repeat([]byte("abcd"), 250), bytes.Repeat([]byte("dcba"), 250)...)},
		{[]byte("abc"), []byte("abc")},       // below chunk width
		{[]byte("abcd"), []byte("abcd")},     // exactly chunk width
		{[]byte("abcde"), []byte("xabcdex")}, // one past chunk width
		{nil, bytes.Repeat([]byte{0}, 1000)}, // empty base, zero runs
		{bytes.Repeat([]byte{0}, 1000), nil}, // empty target
	}
	for _, cfg := range diffConfigs() {
		c := NewCoder(cfg.opts...)
		for i, tc := range cases {
			checkDifferential(t, c, tc[0], tc[1], fmt.Sprintf("%s/case%d", cfg.name, i))
		}
	}
}
