package vdelta

import (
	"bytes"
	"math/rand/v2"
	"testing"
)

func TestEstimateIdentical(t *testing.T) {
	doc := bytes.Repeat([]byte("0123456789abcdef"), 1000) // 16 KB
	est := NewEstimator()
	got := est.Estimate(doc, doc)
	if got > 128 {
		t.Errorf("Estimate(identical 16KB) = %d, want tiny", got)
	}
}

func TestEstimateDisjoint(t *testing.T) {
	base := bytes.Repeat([]byte("AAAAAAAABBBBBBBB"), 500)
	target := bytes.Repeat([]byte("ccccccccdddddddd"), 500)
	est := NewEstimator()
	got := est.Estimate(base, target)
	if got < len(target) {
		t.Errorf("Estimate(disjoint) = %d, want >= target length %d", got, len(target))
	}
}

func TestEstimateTracksRealDeltaOrder(t *testing.T) {
	// The estimate must rank a similar pair well below a dissimilar pair,
	// since grouping decisions depend only on this ordering.
	rng := rand.New(rand.NewPCG(11, 3))
	base, similar := randDoc(rng, 8000)
	_, dissimilar := randDoc(rng, 8000)
	// Make dissimilar genuinely different content.
	for i := range dissimilar {
		dissimilar[i] ^= 0xA5
	}
	est := NewEstimator()
	simEst := est.Estimate(base, similar)
	disEst := est.Estimate(base, dissimilar)
	if simEst >= disEst {
		t.Errorf("estimate does not separate similar (%d) from dissimilar (%d)", simEst, disEst)
	}
}

func TestEstimateUpperBoundsFullEncoder(t *testing.T) {
	// On structured documents the light estimator should rarely beat the
	// full encoder by a wide margin; it mostly over-estimates. Verify that
	// it stays within a sane band rather than diverging.
	rng := rand.New(rand.NewPCG(5, 9))
	c := NewCoder()
	est := NewEstimator()
	for i := 0; i < 30; i++ {
		base, target := randDoc(rng, 4000)
		delta, err := c.Encode(base, target)
		if err != nil {
			t.Fatal(err)
		}
		e := est.Estimate(base, target)
		if e < len(delta)/4 {
			t.Errorf("iter %d: estimate %d is implausibly below real delta %d", i, e, len(delta))
		}
	}
}

func TestEstimateEmptyInputs(t *testing.T) {
	est := NewEstimator()
	if got := est.Estimate(nil, nil); got <= 0 {
		t.Errorf("Estimate(nil,nil) = %d, want positive header overhead", got)
	}
	target := []byte("fresh content")
	if got := est.Estimate(nil, target); got < len(target) {
		t.Errorf("Estimate(nil, doc) = %d, want >= %d", got, len(target))
	}
}

func TestEstimatorChunkSizeOption(t *testing.T) {
	base := bytes.Repeat([]byte("shared segment of content "), 200)
	target := append([]byte("hdr "), base...)
	coarse := NewEstimator(WithChunkSize(64)).Estimate(base, target)
	fine := NewEstimator(WithChunkSize(4)).Estimate(base, target)
	if fine > coarse+1024 {
		t.Errorf("finer chunks should not estimate much larger: fine=%d coarse=%d", fine, coarse)
	}
}

func TestCommonChunksAllCommon(t *testing.T) {
	base := []byte("abcdefghijklmnop")
	common := CommonChunks(base, base, 4)
	if len(common) != 4 {
		t.Fatalf("got %d chunks, want 4", len(common))
	}
	for i, c := range common {
		if !c {
			t.Errorf("chunk %d not common against identical doc", i)
		}
	}
}

func TestCommonChunksNoneCommon(t *testing.T) {
	base := []byte("aaaabbbbccccdddd")
	target := []byte("zzzzyyyyxxxxwwww")
	for _, c := range CommonChunks(base, target, 4) {
		if c {
			t.Error("chunk marked common against disjoint doc")
		}
	}
}

func TestCommonChunksUnalignedOccurrence(t *testing.T) {
	// The shared run sits at an unaligned offset in the target; aligned
	// base chunks inside the run must still be found.
	base := []byte("0000SHAREDRUN0000")
	target := []byte("xySHAREDRUNxy")
	common := CommonChunks(base, target, 4)
	// base chunks: "0000" "SHAR" "EDRU" "N000" "0"
	if !common[1] || !common[2] {
		t.Errorf("chunks inside shared run not detected: %v", common)
	}
	if common[0] {
		t.Errorf("chunk %q falsely common", base[0:4])
	}
}

func TestCommonChunksTrailingPartial(t *testing.T) {
	base := []byte("abcdefgXY") // chunks: abcd efgX Y(partial)
	target := []byte("...Y...")
	common := CommonChunks(base, target, 4)
	if len(common) != 3 {
		t.Fatalf("got %d chunks, want 3", len(common))
	}
	if !common[2] {
		t.Error("trailing partial chunk 'Y' should be common")
	}
}

func TestCommonChunksEmpty(t *testing.T) {
	if got := CommonChunks(nil, []byte("x"), 4); len(got) != 0 {
		t.Errorf("empty base: got %v, want empty", got)
	}
	got := CommonChunks([]byte("abcd"), nil, 4)
	if len(got) != 1 || got[0] {
		t.Errorf("empty target: got %v, want [false]", got)
	}
}

func TestCommonChunksBadChunkSizeDefaults(t *testing.T) {
	base := []byte("abcdefgh")
	got := CommonChunks(base, base, 0)
	if len(got) != 2 { // defaults to 4-byte chunks
		t.Errorf("got %d chunks, want 2 with default chunk size", len(got))
	}
}
