package vdelta

// Index is a reusable hash-table index over one base-file. Building the
// index is the dominant cost of Encode (every base position is hashed and
// chained); a delta-server encodes many documents against the same class
// base-file, so it indexes the base once per rebase and reuses the Index
// across requests.
//
// An Index is immutable after construction and safe for concurrent use. It
// must only be used with the Coder configuration that produced it.
type Index struct {
	cfg  config
	base []byte
	idx  *chunkIndex
}

// NewIndex builds a reusable index over base. The base bytes are copied, so
// callers may reuse their slice.
func (c *Coder) NewIndex(base []byte) *Index {
	b := make([]byte, len(base))
	copy(b, base)
	w := c.cfg.chunkSize
	idx := newChunkIndex(len(b)/w+1, c.cfg.maxChain)
	for i := 0; i+w <= len(b); i++ {
		idx.add(hashChunk(b, i, w), int32(i))
	}
	return &Index{cfg: c.cfg, base: b, idx: idx}
}

// Base returns the indexed base-file bytes. Callers must not modify them.
func (ix *Index) Base() []byte { return ix.base }

// Len returns the indexed base-file length.
func (ix *Index) Len() int { return len(ix.base) }

// EncodeIndexed computes the delta that transforms the indexed base into
// target, skipping the per-call base indexing that Encode performs.
func (c *Coder) EncodeIndexed(ix *Index, target []byte) ([]byte, error) {
	if len(target) > maxInputLen {
		return nil, errInputTooLarge(len(ix.base), len(target))
	}
	var targetIdx *chunkIndex
	if c.cfg.targetMatching {
		targetIdx = newChunkIndex(len(target)/c.cfg.chunkSize+1, c.cfg.maxChain)
	}
	enc := deltaEncoder{
		cfg:       c.cfg,
		base:      ix.base,
		target:    target,
		baseIdx:   ix.idx,
		targetIdx: targetIdx,
	}
	return enc.run(), nil
}
