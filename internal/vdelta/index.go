package vdelta

// Index is a reusable hash-table index over one base-file. Building the
// index is the dominant cost of Encode (every base position is hashed and
// chained); a delta-server encodes many documents against the same class
// base-file, so it indexes the base once per rebase and reuses the Index
// across requests. The index itself is two flat chain arrays (head over a
// power-of-two hash space, prev per base position) — see chunkIndex.
//
// An Index is immutable after construction and safe for concurrent use. It
// must only be used with the Coder configuration that produced it.
type Index struct {
	cfg  config
	base []byte
	idx  chunkIndex
}

// NewIndex builds a reusable index over base. The base bytes are copied, so
// callers may reuse their slice.
func (c *Coder) NewIndex(base []byte) *Index {
	b := make([]byte, len(base))
	copy(b, base)
	w := c.cfg.chunkSize
	ix := &Index{cfg: c.cfg, base: b}
	// Decreasing insertion order: bounded lookups prefer the oldest
	// positions (see the chunkIndex comment).
	ix.idx.init(positionCount(len(b), w, 1), 0, c.cfg.maxChain)
	for i := len(b) - w; i >= 0; i-- {
		ix.idx.add(hashChunk(b, i, w), int32(i))
	}
	return ix
}

// Base returns the indexed base-file bytes. Callers must not modify them.
func (ix *Index) Base() []byte { return ix.base }

// SizeBytes returns the index's resident footprint: the copied base bytes
// plus the two flat chain arrays (int32 head and prev). Struct headers are
// negligible next to these and are not counted. Memory-budget accounting
// uses this to charge lazily built indexes to the owning class.
func (ix *Index) SizeBytes() int64 {
	return int64(len(ix.base)) + 4*int64(len(ix.idx.head)+len(ix.idx.prev))
}

// Len returns the indexed base-file length.
func (ix *Index) Len() int { return len(ix.base) }

// EncodeIndexed computes the delta that transforms the indexed base into
// target, skipping the per-call base indexing that Encode performs. All
// per-call scratch (target index, output buffer) comes from the Coder's
// pool, so on a warm pool the only allocation is the returned delta, which
// the caller owns.
func (c *Coder) EncodeIndexed(ix *Index, target []byte) ([]byte, error) {
	if len(target) > maxInputLen {
		return nil, errInputTooLarge(len(ix.base), len(target))
	}
	st := c.getState()
	defer c.pool.Put(st)
	out := c.runIndexed(st, ix, target, st.out[:0])
	st.out = out // retain the grown scratch for the next encode
	delta := make([]byte, len(out))
	copy(delta, out)
	return delta, nil
}

// EncodeIndexedInto is EncodeIndexed writing the delta into dst's storage
// (starting at dst[:0], growing as needed) and returning the result, which
// may or may not alias dst. It exists so callers with a request-scoped
// scratch buffer — the engine's hot path — can encode without allocating
// even the delta. The returned slice is only valid until dst is reused.
func (c *Coder) EncodeIndexedInto(ix *Index, target, dst []byte) ([]byte, error) {
	if len(target) > maxInputLen {
		return nil, errInputTooLarge(len(ix.base), len(target))
	}
	st := c.getState()
	defer c.pool.Put(st)
	return c.runIndexed(st, ix, target, dst[:0]), nil
}

// runIndexed runs the encoder against a prebuilt base index, drawing the
// target index from pooled state and appending the delta to out.
func (c *Coder) runIndexed(st *encState, ix *Index, target, out []byte) []byte {
	var targetIdx *chunkIndex
	if c.cfg.targetMatching {
		targetIdx = &st.targetIdx
		targetIdx.init(positionCount(len(target), c.cfg.chunkSize, 1), int32(len(ix.base)), c.cfg.maxChain)
	}
	enc := deltaEncoder{
		cfg:       c.cfg,
		base:      ix.base,
		target:    target,
		baseIdx:   &ix.idx,
		targetIdx: targetIdx,
		out:       out,
	}
	return enc.run()
}
