package vdelta

import (
	"encoding/binary"
	"sync"
)

// DefaultEstimatorChunkSize is the chunk width of the light delta variant
// used for grouping probes. The paper's light Vdelta "uses larger
// byte-chunks and only traverses the file in the forward direction"
// (footnote 2).
const DefaultEstimatorChunkSize = 16

// Estimator implements the light delta variant: it estimates the size of the
// delta between a base-file and a document without materializing the delta.
// It indexes the base at chunk-aligned positions only and extends matches
// forward only, trading match quality for speed. The index is the same flat
// chain-array structure the full encoder uses, drawn from a pool so probes
// allocate nothing in steady state.
//
// An Estimator is safe for concurrent use.
type Estimator struct {
	chunkSize int
	maxChain  int
	pool      sync.Pool
}

// NewEstimator returns an Estimator. Supported options are WithChunkSize and
// WithMaxChain; others are ignored.
func NewEstimator(opts ...Option) *Estimator {
	cfg := defaultConfig()
	cfg.chunkSize = DefaultEstimatorChunkSize
	for _, opt := range opts {
		opt(&cfg)
	}
	e := &Estimator{chunkSize: cfg.chunkSize, maxChain: cfg.maxChain}
	e.pool.New = func() any { return new(chunkIndex) }
	return e
}

// Estimate returns an estimate, in bytes, of the size of the delta that
// would transform base into target. The estimate is an upper bound in
// expectation relative to the full encoder, because the light variant finds
// fewer and shorter matches.
func (e *Estimator) Estimate(base, target []byte) int {
	w := e.chunkSize

	// The index stores chunk ordinals (i/w) rather than byte offsets, so the
	// prev array needs one entry per chunk, not per byte.
	idx := e.pool.Get().(*chunkIndex)
	defer e.pool.Put(idx)
	chunks := positionCount(len(base), w, w)
	idx.init(chunks, 0, e.maxChain)
	// Decreasing insertion order: bounded lookups prefer the oldest
	// positions (see the chunkIndex comment).
	for ord := int32(chunks) - 1; ord >= 0; ord-- {
		idx.add(hashChunk(base, int(ord)*w, w), ord)
	}

	const headerOverhead = 5 + 4 // magic+flags, checksum
	size := headerOverhead + uvarintLen(uint64(len(base))) + uvarintLen(uint64(len(target))) + 1

	lit := 0
	pos := 0
	flushLit := func() {
		if lit > 0 {
			size += 1 + uvarintLen(uint64(lit)) + lit
			lit = 0
		}
	}
	for pos+w <= len(target) {
		h := hashChunk(target, pos, w)
		bestStart, bestLen := -1, 0
		p := idx.head[h&idx.mask]
		for k := 0; p >= 0 && k < idx.maxChain; k++ {
			start := int(p) * w
			n := 0
			for start+n < len(base) && pos+n < len(target) && base[start+n] == target[pos+n] {
				n++
			}
			if n > bestLen || (n == bestLen && n > 0 && start < bestStart) {
				bestStart, bestLen = start, n
			}
			p = idx.prev[p]
		}
		if bestLen >= w {
			flushLit()
			size += 1 + uvarintLen(uint64(bestStart)) + uvarintLen(uint64(bestLen))
			pos += bestLen
			continue
		}
		lit++
		pos++
	}
	lit += len(target) - pos
	flushLit()
	return size
}

func uvarintLen(v uint64) int {
	var buf [binary.MaxVarintLen64]byte
	return binary.PutUvarint(buf[:], v)
}
