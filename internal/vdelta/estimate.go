package vdelta

import "encoding/binary"

// DefaultEstimatorChunkSize is the chunk width of the light delta variant
// used for grouping probes. The paper's light Vdelta "uses larger
// byte-chunks and only traverses the file in the forward direction"
// (footnote 2).
const DefaultEstimatorChunkSize = 16

// Estimator implements the light delta variant: it estimates the size of the
// delta between a base-file and a document without materializing the delta.
// It indexes the base at chunk-aligned positions only and extends matches
// forward only, trading match quality for speed.
//
// An Estimator is safe for concurrent use.
type Estimator struct {
	chunkSize int
	maxChain  int
}

// NewEstimator returns an Estimator. Supported options are WithChunkSize and
// WithMaxChain; others are ignored.
func NewEstimator(opts ...Option) *Estimator {
	cfg := defaultConfig()
	cfg.chunkSize = DefaultEstimatorChunkSize
	for _, opt := range opts {
		opt(&cfg)
	}
	return &Estimator{chunkSize: cfg.chunkSize, maxChain: cfg.maxChain}
}

// Estimate returns an estimate, in bytes, of the size of the delta that
// would transform base into target. The estimate is an upper bound in
// expectation relative to the full encoder, because the light variant finds
// fewer and shorter matches.
func (e *Estimator) Estimate(base, target []byte) int {
	w := e.chunkSize

	idx := newChunkIndex(len(base)/w+1, e.maxChain)
	for i := 0; i+w <= len(base); i += w {
		idx.add(hashChunk(base, i, w), int32(i))
	}

	const headerOverhead = 5 + 4 // magic+flags, checksum
	size := headerOverhead + uvarintLen(uint64(len(base))) + uvarintLen(uint64(len(target))) + 1

	lit := 0
	pos := 0
	flushLit := func() {
		if lit > 0 {
			size += 1 + uvarintLen(uint64(lit)) + lit
			lit = 0
		}
	}
	for pos+w <= len(target) {
		h := hashChunk(target, pos, w)
		bestStart, bestLen := -1, 0
		for _, c := range idx.lookup(h) {
			start := int(c)
			n := 0
			for start+n < len(base) && pos+n < len(target) && base[start+n] == target[pos+n] {
				n++
			}
			if n > bestLen {
				bestStart, bestLen = start, n
			}
		}
		if bestLen >= w {
			flushLit()
			size += 1 + uvarintLen(uint64(bestStart)) + uvarintLen(uint64(bestLen))
			pos += bestLen
			continue
		}
		lit++
		pos++
	}
	lit += len(target) - pos
	flushLit()
	return size
}

func uvarintLen(v uint64) int {
	var buf [binary.MaxVarintLen64]byte
	return binary.PutUvarint(buf[:], v)
}
