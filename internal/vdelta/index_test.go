package vdelta

import (
	"bytes"
	"math/rand/v2"
	"sync"
	"testing"
)

func TestEncodeIndexedMatchesEncode(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 4))
	c := NewCoder()
	for i := 0; i < 50; i++ {
		base, target := randDoc(rng, 200+rng.IntN(5000))
		plain, err := c.Encode(base, target)
		if err != nil {
			t.Fatal(err)
		}
		ix := c.NewIndex(base)
		indexed, err := c.EncodeIndexed(ix, target)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(plain, indexed) {
			t.Fatalf("iter %d: EncodeIndexed differs from Encode (%d vs %d bytes)",
				i, len(indexed), len(plain))
		}
		got, err := c.Decode(base, indexed)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, target) {
			t.Fatalf("iter %d: indexed round trip mismatch", i)
		}
	}
}

func TestIndexReusableAcrossTargets(t *testing.T) {
	rng := rand.New(rand.NewPCG(22, 5))
	c := NewCoder()
	base, _ := randDoc(rng, 4000)
	ix := c.NewIndex(base)
	for i := 0; i < 20; i++ {
		_, target := randDoc(rng, 3000)
		delta, err := c.EncodeIndexed(ix, target)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Decode(base, delta)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, target) {
			t.Fatalf("reuse %d: round trip mismatch", i)
		}
	}
}

func TestIndexCopiesBase(t *testing.T) {
	c := NewCoder()
	base := []byte("mutable base contents here")
	ix := c.NewIndex(base)
	base[0] = 'X'
	if ix.Base()[0] == 'X' {
		t.Error("Index retained the caller's slice")
	}
	if ix.Len() != len(base) {
		t.Errorf("Len() = %d, want %d", ix.Len(), len(base))
	}
}

func TestIndexConcurrentEncode(t *testing.T) {
	rng := rand.New(rand.NewPCG(23, 6))
	c := NewCoder()
	base, _ := randDoc(rng, 6000)
	ix := c.NewIndex(base)

	targets := make([][]byte, 8)
	for i := range targets {
		_, targets[i] = randDoc(rng, 4000)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(target []byte) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				delta, err := c.EncodeIndexed(ix, target)
				if err != nil {
					t.Errorf("EncodeIndexed: %v", err)
					return
				}
				got, err := c.Decode(base, delta)
				if err != nil || !bytes.Equal(got, target) {
					t.Errorf("concurrent round trip failed: %v", err)
					return
				}
			}
		}(targets[w])
	}
	wg.Wait()
}

func TestIndexEmptyBase(t *testing.T) {
	c := NewCoder()
	ix := c.NewIndex(nil)
	delta, err := c.EncodeIndexed(ix, []byte("fresh content"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decode(nil, delta)
	if err != nil || string(got) != "fresh content" {
		t.Fatalf("empty-base indexed encode failed: %v", err)
	}
}

func BenchmarkEncodeVsIndexed(b *testing.B) {
	rng := rand.New(rand.NewPCG(24, 7))
	c := NewCoder()
	base, target := randDoc(rng, 50000)
	b.Run("fresh-index", func(b *testing.B) {
		b.SetBytes(int64(len(target)))
		for n := 0; n < b.N; n++ {
			if _, err := c.Encode(base, target); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reused-index", func(b *testing.B) {
		ix := c.NewIndex(base)
		b.SetBytes(int64(len(target)))
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			if _, err := c.EncodeIndexed(ix, target); err != nil {
				b.Fatal(err)
			}
		}
	})
}
