package vdelta

import "fmt"

// OpKind distinguishes delta instructions.
type OpKind int

const (
	// OpAdd carries literal bytes.
	OpAdd OpKind = iota + 1
	// OpCopy copies Len bytes from virtual-source offset Start (the base
	// followed by the already-reconstructed target prefix).
	OpCopy
)

// Op is one decoded delta instruction.
type Op struct {
	Kind  OpKind
	Data  []byte // literal bytes (OpAdd); aliases the delta buffer
	Start int    // virtual-source offset (OpCopy)
	Len   int    // copy length (OpCopy)
}

// Ops parses a delta into its instruction list without applying it. The
// returned literal slices alias the delta buffer. Along with the ops it
// returns the base and target lengths recorded in the header.
func Ops(delta []byte) ([]Op, int, int, error) {
	hdr, body, err := parseHeader(delta)
	if err != nil {
		return nil, 0, 0, err
	}
	var ops []Op
	for {
		if len(body) == 0 {
			return nil, 0, 0, fmt.Errorf("%w: missing end marker", ErrCorrupt)
		}
		op := body[0]
		body = body[1:]
		switch op {
		case opEnd:
			return ops, hdr.baseLen, hdr.targetLen, nil
		case opAdd:
			n, rest, err := readUvarint(body)
			if err != nil {
				return nil, 0, 0, err
			}
			if n > len(rest) {
				return nil, 0, 0, fmt.Errorf("%w: ADD overruns delta", ErrCorrupt)
			}
			ops = append(ops, Op{Kind: OpAdd, Data: rest[:n]})
			body = rest[n:]
		case opCopy:
			start, rest, err := readUvarint(body)
			if err != nil {
				return nil, 0, 0, err
			}
			length, rest, err := readUvarint(rest)
			if err != nil {
				return nil, 0, 0, err
			}
			ops = append(ops, Op{Kind: OpCopy, Start: start, Len: length})
			body = rest
		default:
			return nil, 0, 0, fmt.Errorf("%w: unknown opcode 0x%02x", ErrCorrupt, op)
		}
	}
}
