package vdelta

import (
	"bytes"
	"testing"
)

// FuzzDecode hardens the decoder against arbitrary delta bytes: it must
// return an error or a value, never panic or over-read.
func FuzzDecode(f *testing.F) {
	base := []byte("a base file the fuzzer applies deltas against, with content")
	good, err := Encode(base, []byte("a base file the fuzzer applies deltas against, extended"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte("VD01"))
	f.Add(good[:len(good)/2])

	// Hand-built wire-format seeds (no checksum flag, single-byte length
	// varints) targeting decoder edge cases the encoder never emits.
	hdr := []byte{magic0, magic1, magic2, magic3, 0, byte(len(base))}
	// COPY whose length varint never terminates (continuation bit set at
	// end of input).
	f.Add(append(append([]byte(nil), hdr...), 8, opCopy, 0x80))
	// ADD whose length varint is all continuation bytes.
	f.Add(append(append([]byte(nil), hdr...), 8, opAdd, 0xFF, 0xFF, 0xFF))
	// Overlapping target self-copy: ADD one byte, then COPY 8 bytes from a
	// target prefix holding only that byte — run-length behaviour that must
	// reconstruct byte-by-byte, never over-read.
	f.Add(append(append([]byte(nil), hdr...), 9, opAdd, 1, 'x', opCopy, byte(len(base)), 8, opEnd))
	// Target self-copy starting at a not-yet-written offset: must error.
	f.Add(append(append([]byte(nil), hdr...), 9, opAdd, 1, 'x', opCopy, byte(len(base)+5), 4, opEnd))

	f.Fuzz(func(t *testing.T, delta []byte) {
		_, _ = Decode(base, delta)
		_, _ = Stats(delta)
		_, _, _, _ = Ops(delta)
	})
}

// FuzzRoundTrip checks the fundamental codec property on arbitrary inputs.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte("base"), []byte("target"))
	f.Add([]byte{}, []byte("only target"))
	f.Add([]byte("only base"), []byte{})
	f.Add(bytes.Repeat([]byte("ab"), 300), bytes.Repeat([]byte("ab"), 301))
	// Maximal self-overlap: a long single-byte run encodes as one ADD plus
	// an overlapping target self-copy.
	f.Add([]byte("x"), bytes.Repeat([]byte("x"), 500))
	c := NewCoder()
	f.Fuzz(func(t *testing.T, base, target []byte) {
		delta, err := Encode(base, target)
		if err != nil {
			t.Fatalf("Encode: %v", err)
		}
		got, err := Decode(base, delta)
		if err != nil {
			t.Fatalf("Decode: %v", err)
		}
		if !bytes.Equal(got, target) {
			t.Fatalf("round trip mismatch: %d vs %d bytes", len(got), len(target))
		}
		// Differential: the flat chain-array index must match the retained
		// map-based reference byte-for-byte on everything the fuzzer finds.
		if ref := refEncode(c.cfg, base, target); !bytes.Equal(delta, ref) {
			t.Fatalf("flat-index delta differs from map-based reference (%d vs %d bytes)",
				len(delta), len(ref))
		}
	})
}

// FuzzCommonChunksRun must never panic regardless of sizes.
func FuzzCommonChunksRun(f *testing.F) {
	f.Add([]byte("base bytes"), []byte("target bytes"), 4, 16)
	f.Add([]byte{}, []byte{}, 0, 0)
	f.Add([]byte("x"), []byte("y"), -3, 1000)
	f.Fuzz(func(t *testing.T, base, target []byte, chunkSize, runLen int) {
		if chunkSize > 1<<16 || chunkSize < -1<<16 || runLen > 1<<16 || runLen < -1<<16 {
			t.Skip()
		}
		common := CommonChunksRun(base, target, chunkSize, runLen)
		cs := chunkSize
		if cs < 1 {
			cs = DefaultChunkSize
		}
		if want := (len(base) + cs - 1) / cs; len(common) != want {
			t.Fatalf("got %d chunks, want %d", len(common), want)
		}
	})
}
