package vdelta

import (
	"bytes"
	"errors"
	"math/rand/v2"
	"strings"
	"testing"
	"testing/quick"
)

func mustEncode(t *testing.T, c *Coder, base, target []byte) []byte {
	t.Helper()
	delta, err := c.Encode(base, target)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return delta
}

func roundTrip(t *testing.T, c *Coder, base, target []byte) []byte {
	t.Helper()
	delta := mustEncode(t, c, base, target)
	got, err := c.Decode(base, delta)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !bytes.Equal(got, target) {
		t.Fatalf("round trip mismatch: got %d bytes, want %d bytes", len(got), len(target))
	}
	return delta
}

func TestRoundTripBasic(t *testing.T) {
	tests := []struct {
		name   string
		base   string
		target string
	}{
		{"identical", "hello world, this is a base file", "hello world, this is a base file"},
		{"empty both", "", ""},
		{"empty base", "", "brand new content that shares nothing"},
		{"empty target", "some base content here", ""},
		{"append", "the quick brown fox", "the quick brown fox jumps over the lazy dog"},
		{"prepend", "quick brown fox jumps", "the very quick brown fox jumps"},
		{"middle edit", "aaaa bbbb cccc dddd eeee", "aaaa bbbb XXXX dddd eeee"},
		{"total rewrite", "abcdefghijklmnop", "zyxwvutsrqponmlk"},
		{"short base", "ab", "ababababab"},
		{"short target", "a long enough base file", "xy"},
		{"repetitive target", "seed", strings.Repeat("na", 500) + " batman"},
		{"binary-ish", "\x00\x01\x02\x03\x04\x05\x06\x07", "\x00\x01\x02\x03\xff\x04\x05\x06\x07\x00\x01\x02\x03"},
	}
	c := NewCoder()
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			roundTrip(t, c, []byte(tt.base), []byte(tt.target))
		})
	}
}

func TestRoundTripNilSlices(t *testing.T) {
	c := NewCoder()
	roundTrip(t, c, nil, nil)
	roundTrip(t, c, nil, []byte("content"))
	roundTrip(t, c, []byte("content"), nil)
}

func TestDeltaSmallForSimilarDocuments(t *testing.T) {
	base := bytes.Repeat([]byte("The quick brown fox jumps over the lazy dog. "), 200) // ~9 KB
	target := append([]byte{}, base...)
	copy(target[4000:], "EDIT")

	delta := roundTrip(t, NewCoder(), base, target)
	if len(delta) > len(target)/10 {
		t.Errorf("delta for near-identical 9KB docs is %d bytes, want < %d", len(delta), len(target)/10)
	}
}

func TestDeltaIdenticalDocumentsTiny(t *testing.T) {
	base := bytes.Repeat([]byte("0123456789abcdef"), 4096) // 64 KB
	delta := roundTrip(t, NewCoder(), base, base)
	if len(delta) > 64 {
		t.Errorf("delta of identical 64KB docs is %d bytes, want <= 64", len(delta))
	}
}

func TestTargetSelfCopyCompressesRuns(t *testing.T) {
	base := []byte("completely unrelated base material")
	target := bytes.Repeat([]byte("ABCDEFGH"), 1000) // 8 KB of pure repetition

	withSelf := mustEncode(t, NewCoder(WithTargetMatching(true)), base, target)
	withoutSelf := mustEncode(t, NewCoder(WithTargetMatching(false)), base, target)
	if len(withSelf) >= len(withoutSelf) {
		t.Errorf("target self-matching should shrink repetitive targets: with=%d without=%d",
			len(withSelf), len(withoutSelf))
	}
	if len(withSelf) > 256 {
		t.Errorf("self-copy delta of 8KB repetition is %d bytes, want small", len(withSelf))
	}
	// Both must still decode correctly.
	for _, d := range [][]byte{withSelf, withoutSelf} {
		got, err := Decode(base, d)
		if err != nil {
			t.Fatalf("Decode: %v", err)
		}
		if !bytes.Equal(got, target) {
			t.Fatal("self-copy round trip mismatch")
		}
	}
}

func TestBackwardExtension(t *testing.T) {
	// The match seed occurs 3 bytes into a region that also matches
	// backwards; the encoder should extend the copy backwards into the
	// pending literal run rather than emitting those bytes as literals.
	base := []byte("XXXXXXXXXXXX shared-run-of-bytes-here XXXXXXXXXXXX")
	target := []byte("unrelated prefix shared-run-of-bytes-here suffix")
	delta := roundTrip(t, NewCoder(), base, target)
	info, err := Stats(delta)
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if info.CopyBytes < len(" shared-run-of-bytes-here ")-2 {
		t.Errorf("expected a long COPY covering the shared run, got CopyBytes=%d (info=%+v)",
			info.CopyBytes, info)
	}
}

func TestDecodeErrors(t *testing.T) {
	base := []byte("base file content for error tests")
	target := []byte("base file content for error tests, extended")
	delta := mustEncode(t, NewCoder(), base, target)

	t.Run("wrong base length", func(t *testing.T) {
		_, err := Decode([]byte("short"), delta)
		if !errors.Is(err, ErrBaseMismatch) {
			t.Errorf("got %v, want ErrBaseMismatch", err)
		}
	})
	t.Run("wrong base same length", func(t *testing.T) {
		wrong := bytes.Repeat([]byte("z"), len(base))
		_, err := Decode(wrong, delta)
		if !errors.Is(err, ErrChecksum) && !errors.Is(err, ErrCorrupt) {
			t.Errorf("got %v, want ErrChecksum or ErrCorrupt", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for cut := 1; cut < len(delta); cut += 3 {
			_, err := Decode(base, delta[:cut])
			if err == nil {
				t.Fatalf("truncation at %d not detected", cut)
			}
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte{}, delta...)
		bad[0] = 'X'
		_, err := Decode(base, bad)
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("got %v, want ErrCorrupt", err)
		}
	})
	t.Run("empty delta", func(t *testing.T) {
		_, err := Decode(base, nil)
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("got %v, want ErrCorrupt", err)
		}
	})
	t.Run("flipped literal byte detected by checksum", func(t *testing.T) {
		// Flip a byte near the end of the instruction stream (likely a
		// literal); the checksum must catch it if the structure survives.
		bad := append([]byte{}, delta...)
		bad[len(bad)-2] ^= 0xff
		_, err := Decode(base, bad)
		if err == nil {
			t.Error("corrupted delta decoded without error")
		}
	})
}

func TestNoChecksumOption(t *testing.T) {
	c := NewCoder(WithChecksum(false))
	base := []byte("some base data")
	target := []byte("some base data plus more")
	delta := roundTrip(t, c, base, target)
	info, err := Stats(delta)
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if info.HasChecksum {
		t.Error("delta has checksum despite WithChecksum(false)")
	}
}

func TestStats(t *testing.T) {
	base := bytes.Repeat([]byte("shared content block "), 100)
	target := append(append([]byte("new prefix "), base...), " new suffix"...)
	delta := mustEncode(t, NewCoder(), base, target)
	info, err := Stats(delta)
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if info.TargetLen != len(target) {
		t.Errorf("TargetLen=%d, want %d", info.TargetLen, len(target))
	}
	if info.BaseLen != len(base) {
		t.Errorf("BaseLen=%d, want %d", info.BaseLen, len(base))
	}
	if info.AddBytes+info.CopyBytes != len(target) {
		t.Errorf("AddBytes+CopyBytes=%d, want %d", info.AddBytes+info.CopyBytes, len(target))
	}
	if info.NumCopy == 0 {
		t.Error("expected at least one COPY for overlapping content")
	}
}

func TestChunkSizeOptions(t *testing.T) {
	base := bytes.Repeat([]byte("abcdefgh12345678"), 256)
	target := append([]byte("prefix-"), base...)
	for _, w := range []int{2, 4, 8, 16, 32, 64} {
		c := NewCoder(WithChunkSize(w))
		roundTrip(t, c, base, target)
	}
}

func TestChunkSizeClamped(t *testing.T) {
	// Out-of-range chunk sizes must be clamped, not panic.
	for _, w := range []int{-5, 0, 1, 1000} {
		c := NewCoder(WithChunkSize(w))
		roundTrip(t, c, []byte("base data here"), []byte("target data here"))
	}
}

// randDoc generates a pseudo-document and a mutated version of it,
// exercising realistic edit patterns (inserts, deletes, replacements).
func randDoc(rng *rand.Rand, size int) ([]byte, []byte) {
	words := []string{"<html>", "<div>", "content", "price", "laptop", "desktop",
		"</div>", "user", "session", "1234", "news", "</html>", " ", "\n"}
	var b bytes.Buffer
	for b.Len() < size {
		b.WriteString(words[rng.IntN(len(words))])
	}
	base := b.Bytes()
	target := append([]byte{}, base...)
	edits := 1 + rng.IntN(8)
	for i := 0; i < edits; i++ {
		if len(target) == 0 {
			break
		}
		pos := rng.IntN(len(target))
		switch rng.IntN(3) {
		case 0: // insert
			ins := []byte(words[rng.IntN(len(words))])
			target = append(target[:pos], append(ins, target[pos:]...)...)
		case 1: // delete
			end := pos + rng.IntN(20)
			if end > len(target) {
				end = len(target)
			}
			target = append(target[:pos], target[end:]...)
		default: // replace
			end := pos + rng.IntN(10)
			if end > len(target) {
				end = len(target)
			}
			for j := pos; j < end; j++ {
				target[j] = byte(rng.IntN(256))
			}
		}
	}
	return base, target
}

func TestRoundTripRandomizedEdits(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 1))
	c := NewCoder()
	for i := 0; i < 200; i++ {
		base, target := randDoc(rng, 50+rng.IntN(4000))
		delta := mustEncode(t, c, base, target)
		got, err := c.Decode(base, delta)
		if err != nil {
			t.Fatalf("iter %d: Decode: %v", i, err)
		}
		if !bytes.Equal(got, target) {
			t.Fatalf("iter %d: round trip mismatch", i)
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	c := NewCoder()
	f := func(base, target []byte) bool {
		delta, err := c.Encode(base, target)
		if err != nil {
			return false
		}
		got, err := c.Decode(base, delta)
		return err == nil && bytes.Equal(got, target)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickDeltaNeverHugelyLarger(t *testing.T) {
	// A delta can exceed the target (headers + op bytes) but must stay
	// within a small additive/multiplicative envelope of the trivial
	// encoding that ADDs the whole target.
	c := NewCoder()
	f := func(base, target []byte) bool {
		delta, err := c.Encode(base, target)
		if err != nil {
			return false
		}
		bound := len(target) + len(target)/4 + 64
		return len(delta) <= bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickStatsConsistent(t *testing.T) {
	c := NewCoder()
	f := func(base, target []byte) bool {
		delta, err := c.Encode(base, target)
		if err != nil {
			return false
		}
		info, err := Stats(delta)
		if err != nil {
			return false
		}
		return info.AddBytes+info.CopyBytes == len(target) &&
			info.BaseLen == len(base) && info.TargetLen == len(target)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickDecodeNeverPanicsOnGarbage(t *testing.T) {
	base := []byte("a base file that garbage deltas will be applied to")
	f := func(garbage []byte) bool {
		// Must return an error or a value, never panic.
		_, _ = Decode(base, garbage)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickTruncatedRealDeltasNeverPanic(t *testing.T) {
	c := NewCoder()
	rng := rand.New(rand.NewPCG(7, 7))
	base, target := randDoc(rng, 2000)
	delta := mustEncode(t, c, base, target)
	for cut := 0; cut <= len(delta); cut++ {
		got, err := c.Decode(base, delta[:cut])
		if cut == len(delta) {
			if err != nil || !bytes.Equal(got, target) {
				t.Fatalf("full delta failed: %v", err)
			}
		} else if err == nil {
			t.Fatalf("truncation at %d yielded no error", cut)
		}
	}
}
