package vdelta

import (
	"bytes"
	"math/rand/v2"
	"testing"
)

func TestOpsReconstruct(t *testing.T) {
	// Applying the parsed ops by hand must reproduce the target.
	rng := rand.New(rand.NewPCG(31, 8))
	for i := 0; i < 30; i++ {
		base, target := randDoc(rng, 300+rng.IntN(3000))
		delta, err := Encode(base, target)
		if err != nil {
			t.Fatal(err)
		}
		ops, baseLen, targetLen, err := Ops(delta)
		if err != nil {
			t.Fatal(err)
		}
		if baseLen != len(base) || targetLen != len(target) {
			t.Fatalf("header lengths %d/%d, want %d/%d", baseLen, targetLen, len(base), len(target))
		}
		var out []byte
		for _, op := range ops {
			switch op.Kind {
			case OpAdd:
				out = append(out, op.Data...)
			case OpCopy:
				for j := 0; j < op.Len; j++ {
					p := op.Start + j
					if p < len(base) {
						out = append(out, base[p])
					} else {
						out = append(out, out[p-len(base)])
					}
				}
			default:
				t.Fatalf("unknown op kind %d", op.Kind)
			}
		}
		if !bytes.Equal(out, target) {
			t.Fatalf("iter %d: ops do not reproduce the target", i)
		}
	}
}

func TestOpsErrors(t *testing.T) {
	base := []byte("some base")
	delta, err := Encode(base, []byte("some base extended with content"))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := Ops(nil); err == nil {
		t.Error("Ops(nil) accepted")
	}
	for cut := 5; cut < len(delta); cut += 3 {
		if _, _, _, err := Ops(delta[:cut]); err == nil {
			t.Errorf("truncated delta at %d accepted", cut)
		}
	}
	bad := append([]byte{}, delta...)
	bad[len(bad)-1] = 0x7F // replace END with an unknown opcode
	if _, _, _, err := Ops(bad); err == nil {
		t.Error("unknown opcode accepted")
	}
}

func TestPackageLevelEncode(t *testing.T) {
	base := []byte("package-level helpers base")
	target := []byte("package-level helpers base and target")
	delta, err := Encode(base, target)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(base, delta)
	if err != nil || !bytes.Equal(got, target) {
		t.Fatalf("package-level round trip failed: %v", err)
	}
}

func TestMaxChainAndMinMatchOptions(t *testing.T) {
	rng := rand.New(rand.NewPCG(32, 9))
	base, target := randDoc(rng, 4000)
	for _, c := range []*Coder{
		NewCoder(WithMaxChain(1)),
		NewCoder(WithMaxChain(-5)), // clamped to 1
		NewCoder(WithMinMatch(12)),
		NewCoder(WithMinMatch(0)), // clamped
	} {
		delta, err := c.Encode(base, target)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Decode(base, delta)
		if err != nil || !bytes.Equal(got, target) {
			t.Fatalf("option round trip failed: %v", err)
		}
	}
	// A longer min-match emits fewer, longer copies.
	strict, _ := NewCoder(WithMinMatch(64)).Encode(base, target)
	loose, _ := NewCoder(WithMinMatch(4)).Encode(base, target)
	is, _ := Stats(strict)
	il, _ := Stats(loose)
	if is.NumCopy > il.NumCopy {
		t.Errorf("min-match 64 produced more copies (%d) than min-match 4 (%d)", is.NumCopy, il.NumCopy)
	}
}

func TestCommonChunksRunBasics(t *testing.T) {
	base := []byte("0123456789abcdefghijklmnop-PRIVATE-zzzz")
	target := []byte("xx 0123456789abcdefghijklmnop yy")
	// With a 16-byte run requirement, the long shared run is common and
	// the private tail is not.
	common := CommonChunksRun(base, target, 4, 16)
	if !common[0] || !common[1] || !common[2] {
		t.Errorf("shared run not detected: %v", common)
	}
	// Chunks covering "-PRIVATE-" must not be common.
	for ci := 7; ci < len(common); ci++ {
		if common[ci] {
			t.Errorf("chunk %d (private region) marked common: %v", ci, common)
		}
	}
}

func TestCommonChunksRunFallsBackToPlain(t *testing.T) {
	base := []byte("abcdefgh")
	a := CommonChunksRun(base, base, 4, 4) // runLen <= chunkSize
	b := CommonChunks(base, base, 4)
	if len(a) != len(b) {
		t.Fatal("fallback mismatch")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("chunk %d differs between fallback and plain", i)
		}
	}
}

func TestCommonChunksRunShortTarget(t *testing.T) {
	base := []byte("a longer base file with various content inside")
	common := CommonChunksRun(base, []byte("tiny"), 4, 16)
	for i, c := range common {
		if c {
			t.Errorf("chunk %d common against a target shorter than the run", i)
		}
	}
	if got := CommonChunksRun(nil, []byte("x"), 4, 16); len(got) != 0 {
		t.Error("empty base should yield no chunks")
	}
}

func TestCommonChunksRunDefaultsChunkSize(t *testing.T) {
	base := bytes.Repeat([]byte("shared content here "), 4)
	common := CommonChunksRun(base, base, 0, 16)
	if len(common) != (len(base)+3)/4 {
		t.Errorf("default chunk size not applied: %d chunks", len(common))
	}
	for i, c := range common {
		if !c {
			t.Errorf("chunk %d of identical docs not common", i)
		}
	}
}

func TestEncodeTooLargeGuard(t *testing.T) {
	// The guard only triggers beyond MaxInt32, which we cannot allocate;
	// exercise the error constructor instead.
	err := errInputTooLarge(1, 2)
	if err == nil {
		t.Fatal("nil error")
	}
}
