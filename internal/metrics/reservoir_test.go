package metrics

import (
	"math"
	"math/rand/v2"
	"testing"
)

// TestReservoirIsUnbiasedUnderDrift feeds a stream whose values encode their
// own position (v = i) and checks the retained sample's quantiles track the
// full stream. The old deterministic slot overwrite (slot derived from the
// running count) visits only gcd-related slots for periodic streams and
// systematically over-retains late values; Algorithm R must keep the sample
// representative of the whole stream.
func TestReservoirIsUnbiasedUnderDrift(t *testing.T) {
	h := NewHistogram(1)
	const n = 20 * histReservoirSize
	for i := 0; i < n; i++ {
		h.Observe(float64(i))
	}
	// Quantiles of 0..n-1 are q*(n-1); the reservoir estimate should land
	// within a few percent of the stream span.
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		got := h.Quantile(q)
		want := q * float64(n-1)
		if diff := math.Abs(got-want) / float64(n); diff > 0.05 {
			t.Errorf("Quantile(%.2f) = %.0f, want ~%.0f (off by %.1f%% of stream span)",
				q, got, want, 100*diff)
		}
	}
}

// TestReservoirRetentionProbability checks Algorithm R's defining property:
// each stream position is retained with probability reservoirSize/n,
// independent of position. The stream is split into early/late halves; the
// retained counts from each half must match within sampling noise.
func TestReservoirRetentionProbability(t *testing.T) {
	h := NewHistogram(1)
	const n = 16 * histReservoirSize
	for i := 0; i < n; i++ {
		// Early half gets negative values, late half positive, so retained
		// samples can be attributed to a half by sign.
		v := float64(i + 1)
		if i < n/2 {
			v = -v
		}
		h.Observe(v)
	}
	h.mu.Lock()
	early := 0
	for _, v := range h.samples {
		if v < 0 {
			early++
		}
	}
	size := len(h.samples)
	h.mu.Unlock()
	if size != histReservoirSize {
		t.Fatalf("reservoir holds %d samples, want %d", size, histReservoirSize)
	}
	frac := float64(early) / float64(size)
	// Binomial std-dev is ~0.0078 at p=0.5, n=4096; allow 5 sigma.
	if math.Abs(frac-0.5) > 0.04 {
		t.Errorf("early-half retention fraction = %.3f, want ~0.5 (biased reservoir)", frac)
	}
}

// TestReservoirReproducible: two histograms fed the same stream must retain
// identical reservoirs (the seeded-PRNG reproducibility requirement).
func TestReservoirReproducible(t *testing.T) {
	a, b := NewHistogram(1, 2), NewHistogram(1, 2)
	rng := rand.New(rand.NewPCG(42, 0))
	for i := 0; i < 3*histReservoirSize; i++ {
		v := rng.Float64()
		a.Observe(v)
		b.Observe(v)
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
		if av, bv := a.Quantile(q), b.Quantile(q); av != bv {
			t.Fatalf("Quantile(%.2f) differs between identical streams: %v vs %v", q, av, bv)
		}
	}
}

func TestQuantileInterpolation(t *testing.T) {
	h := NewHistogram(10)
	for _, v := range []float64{1, 2, 3, 4} {
		h.Observe(v)
	}
	cases := map[float64]float64{
		-1:   1,
		0:    1,
		0.5:  2.5,
		1:    4,
		2:    4,
		0.25: 1.75,
	}
	for q, want := range cases {
		if got := h.Quantile(q); math.Abs(got-want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", q, got, want)
		}
	}
	if got := NewHistogram(1).Quantile(0.5); got != 0 {
		t.Errorf("Quantile on empty histogram = %v, want 0", got)
	}
}
