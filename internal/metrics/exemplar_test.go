package metrics

import (
	"strings"
	"testing"
)

func TestObserveExemplarPlacement(t *testing.T) {
	h := NewHistogram(0.01, 0.1, 1)
	if h.Exemplars() != nil {
		t.Fatal("fresh histogram reports exemplars")
	}

	h.Observe(0.05) // plain observation: still no exemplar storage
	if h.Exemplars() != nil {
		t.Fatal("plain Observe allocated exemplars")
	}

	h.ObserveExemplar(0.05, 0xaa, 0xbb, 100) // bucket le=0.1 → index 1
	h.ObserveExemplar(5.0, 0xcc, 0xdd, 200)  // +Inf bucket → index 3
	ex := h.Exemplars()
	if len(ex) != 4 { // 3 bounds + Inf
		t.Fatalf("len(Exemplars()) = %d, want 4", len(ex))
	}
	if !ex[1].Valid || ex[1].TraceHi != 0xaa || ex[1].TraceLo != 0xbb || ex[1].Value != 0.05 || ex[1].Timestamp != 100 {
		t.Errorf("bucket 1 exemplar = %+v", ex[1])
	}
	if !ex[3].Valid || ex[3].TraceLo != 0xdd {
		t.Errorf("+Inf exemplar = %+v", ex[3])
	}
	if ex[0].Valid || ex[2].Valid {
		t.Errorf("untouched buckets have exemplars: %+v %+v", ex[0], ex[2])
	}

	// Newest wins within a bucket.
	h.ObserveExemplar(0.07, 0x11, 0x22, 300)
	if got := h.Exemplars()[1]; got.TraceLo != 0x22 || got.Timestamp != 300 {
		t.Errorf("bucket 1 exemplar not replaced: %+v", got)
	}

	// ObserveExemplar still does the regular bookkeeping.
	if h.Count() != 4 {
		t.Errorf("Count() = %d, want 4", h.Count())
	}

	// Returned slice is a copy: mutating it must not touch the histogram.
	cp := h.Exemplars()
	cp[1].Valid = false
	if !h.Exemplars()[1].Valid {
		t.Error("Exemplars() aliases internal state")
	}
}

func TestExposeEmitsExemplars(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", 0.01, 0.1)
	h.ObserveExemplar(0.05, 1, 2, 1690000000)
	h.Observe(0.005)

	var b strings.Builder
	if err := r.Expose(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	want := `latency_seconds_bucket{le="0.1"} 2 # {trace_id="00000000000000010000000000000002"} 0.05 1690000000`
	if !strings.Contains(out, want) {
		t.Fatalf("exposition missing exemplar line %q:\n%s", want, out)
	}
	// The bucket without an exemplar stays bare.
	if !strings.Contains(out, "latency_seconds_bucket{le=\"0.01\"} 1\n") {
		t.Errorf("bare bucket line malformed:\n%s", out)
	}
}

func TestParseExpositionExemplarRoundTrip(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", 0.01, 0.1)
	h.ObserveExemplar(0.05, 0xab, 0xcd, 42)

	var b strings.Builder
	if err := r.Expose(&b); err != nil {
		t.Fatal(err)
	}
	exp, err := ParseExposition(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("exposition with exemplars does not parse: %v\n%s", err, b.String())
	}
	var found *ParsedExemplar
	for _, s := range exp.Samples {
		if s.Name == "latency_seconds_bucket" && s.Exemplar != nil {
			found = s.Exemplar
		}
	}
	if found == nil {
		t.Fatalf("no parsed exemplar in:\n%s", b.String())
	}
	if v, ok := exemplarLabel(found, "trace_id"); !ok || v != "00000000000000ab00000000000000cd" {
		t.Errorf("trace_id label = %q, %v", v, ok)
	}
	if found.Value != 0.05 || found.Timestamp != 42 {
		t.Errorf("exemplar value/ts = %v/%d", found.Value, found.Timestamp)
	}
}

func exemplarLabel(ex *ParsedExemplar, name string) (string, bool) {
	for _, l := range ex.Labels {
		if l.Name == name {
			return l.Value, true
		}
	}
	return "", false
}

func TestParseExemplarMalformed(t *testing.T) {
	bad := []string{
		"m_bucket{le=\"1\"} 1 # nonsense",
		"m_bucket{le=\"1\"} 1 # {trace_id=\"x\"",       // unterminated
		"m_bucket{le=\"1\"} 1 # {trace_id=\"x\"} nope", // bad value
		"m_bucket{le=\"1\"} 1 # {trace_id=\"x\"} 1 ts", // bad timestamp
	}
	for _, doc := range bad {
		if _, err := ParseExposition(strings.NewReader(doc)); err == nil {
			t.Errorf("ParseExposition accepted %q", doc)
		}
	}
}
