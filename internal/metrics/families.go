// Labeled metric families: counters, gauges and histograms keyed by label
// values, the shape the Prometheus exposition (expose.go) serves. Families
// are deliberately minimal — label names are fixed at creation, children are
// created on first use and never expire — because the delta-server's label
// sets (pipeline stage, response kind, document class) are small and stable.
package metrics

import (
	"sort"
	"strings"
	"sync"
)

// Label is one name/value pair attached to a metric child.
type Label struct {
	Name  string
	Value string
}

// childKey joins label values into a map key. Values are length-prefixed by
// a separator unlikely to appear in label values; correctness does not
// depend on it (a collision only merges two children's accounting).
func childKey(values []string) string {
	return strings.Join(values, "\x1f")
}

// CounterFamily is a set of Counters distinguished by label values.
// Create one with Registry.CounterFamily.
type CounterFamily struct {
	name       string
	help       string
	labelNames []string

	mu       sync.RWMutex
	children map[string]*counterChild
}

type counterChild struct {
	labelValues []string
	c           Counter
}

// With returns the counter for the given label values (one per label name,
// in order), creating it on first use. Callers on a hot path should resolve
// children once and retain the *Counter. With panics if the number of
// values does not match the family's label names — that is a programming
// error, not load-dependent input.
func (f *CounterFamily) With(labelValues ...string) *Counter {
	if len(labelValues) != len(f.labelNames) {
		panic("metrics: CounterFamily " + f.name + ": wrong number of label values")
	}
	key := childKey(labelValues)
	f.mu.RLock()
	ch, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return &ch.c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if ch, ok := f.children[key]; ok {
		return &ch.c
	}
	ch = &counterChild{labelValues: append([]string(nil), labelValues...)}
	f.children[key] = ch
	return &ch.c
}

// Name returns the family's metric name.
func (f *CounterFamily) Name() string { return f.name }

// each calls fn for every child, sorted by label values for stable output.
func (f *CounterFamily) each(fn func(labelValues []string, c *Counter)) {
	f.mu.RLock()
	children := make([]*counterChild, 0, len(f.children))
	for _, ch := range f.children {
		children = append(children, ch)
	}
	f.mu.RUnlock()
	sort.Slice(children, func(i, j int) bool {
		return childKey(children[i].labelValues) < childKey(children[j].labelValues)
	})
	for _, ch := range children {
		fn(ch.labelValues, &ch.c)
	}
}

// GaugeFamily is a set of Gauges distinguished by label values.
// Create one with Registry.GaugeFamily.
type GaugeFamily struct {
	name       string
	help       string
	labelNames []string

	mu       sync.RWMutex
	children map[string]*gaugeChild
}

type gaugeChild struct {
	labelValues []string
	g           Gauge
}

// With returns the gauge for the given label values, creating it on first
// use. Panics on a label-count mismatch.
func (f *GaugeFamily) With(labelValues ...string) *Gauge {
	if len(labelValues) != len(f.labelNames) {
		panic("metrics: GaugeFamily " + f.name + ": wrong number of label values")
	}
	key := childKey(labelValues)
	f.mu.RLock()
	ch, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return &ch.g
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if ch, ok := f.children[key]; ok {
		return &ch.g
	}
	ch = &gaugeChild{labelValues: append([]string(nil), labelValues...)}
	f.children[key] = ch
	return &ch.g
}

// Name returns the family's metric name.
func (f *GaugeFamily) Name() string { return f.name }

func (f *GaugeFamily) each(fn func(labelValues []string, g *Gauge)) {
	f.mu.RLock()
	children := make([]*gaugeChild, 0, len(f.children))
	for _, ch := range f.children {
		children = append(children, ch)
	}
	f.mu.RUnlock()
	sort.Slice(children, func(i, j int) bool {
		return childKey(children[i].labelValues) < childKey(children[j].labelValues)
	})
	for _, ch := range children {
		fn(ch.labelValues, &ch.g)
	}
}

// HistogramFamily is a set of Histograms sharing bucket bounds,
// distinguished by label values. Create one with Registry.HistogramFamily.
type HistogramFamily struct {
	name       string
	help       string
	labelNames []string
	bounds     []float64

	mu       sync.RWMutex
	children map[string]*histChild
}

type histChild struct {
	labelValues []string
	h           *Histogram
}

// With returns the histogram for the given label values, creating it (with
// the family's bounds) on first use. Panics on a label-count mismatch.
func (f *HistogramFamily) With(labelValues ...string) *Histogram {
	if len(labelValues) != len(f.labelNames) {
		panic("metrics: HistogramFamily " + f.name + ": wrong number of label values")
	}
	key := childKey(labelValues)
	f.mu.RLock()
	ch, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return ch.h
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if ch, ok := f.children[key]; ok {
		return ch.h
	}
	ch = &histChild{
		labelValues: append([]string(nil), labelValues...),
		h:           NewHistogram(f.bounds...),
	}
	f.children[key] = ch
	return ch.h
}

// Name returns the family's metric name.
func (f *HistogramFamily) Name() string { return f.name }

func (f *HistogramFamily) each(fn func(labelValues []string, h *Histogram)) {
	f.mu.RLock()
	children := make([]*histChild, 0, len(f.children))
	for _, ch := range f.children {
		children = append(children, ch)
	}
	f.mu.RUnlock()
	sort.Slice(children, func(i, j int) bool {
		return childKey(children[i].labelValues) < childKey(children[j].labelValues)
	})
	for _, ch := range children {
		fn(ch.labelValues, ch.h)
	}
}

// CounterFamily returns the labeled counter family with the given name,
// creating it on first use. help and labelNames are ignored for an existing
// family.
func (r *Registry) CounterFamily(name, help string, labelNames ...string) *CounterFamily {
	r.mu.RLock()
	f, ok := r.counterFams[name]
	r.mu.RUnlock()
	if ok {
		return f
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.counterFams[name]; ok {
		return f
	}
	f = &CounterFamily{
		name:       name,
		help:       help,
		labelNames: append([]string(nil), labelNames...),
		children:   make(map[string]*counterChild),
	}
	r.counterFams[name] = f
	return f
}

// GaugeFamily returns the labeled gauge family with the given name, creating
// it on first use.
func (r *Registry) GaugeFamily(name, help string, labelNames ...string) *GaugeFamily {
	r.mu.RLock()
	f, ok := r.gaugeFams[name]
	r.mu.RUnlock()
	if ok {
		return f
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.gaugeFams[name]; ok {
		return f
	}
	f = &GaugeFamily{
		name:       name,
		help:       help,
		labelNames: append([]string(nil), labelNames...),
		children:   make(map[string]*gaugeChild),
	}
	r.gaugeFams[name] = f
	return f
}

// HistogramFamily returns the labeled histogram family with the given name,
// creating it with the provided bucket bounds on first use. Bounds are
// ignored for an existing family.
func (r *Registry) HistogramFamily(name, help string, labelNames []string, bounds ...float64) *HistogramFamily {
	r.mu.RLock()
	f, ok := r.histFams[name]
	r.mu.RUnlock()
	if ok {
		return f
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.histFams[name]; ok {
		return f
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	f = &HistogramFamily{
		name:       name,
		help:       help,
		labelNames: append([]string(nil), labelNames...),
		bounds:     b,
		children:   make(map[string]*histChild),
	}
	r.histFams[name] = f
	return f
}

// RegisterCollector adds a callback invoked at every Expose to contribute
// computed samples (values derived from live state rather than accumulated
// in the registry, e.g. base-file ages). Collectors run in registration
// order.
func (r *Registry) RegisterCollector(fn func(c *Collection)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, fn)
}
