package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestSanitizeName(t *testing.T) {
	cases := map[string]string{
		"requests":      "requests",
		"bytes.direct":  "bytes_direct",
		"a-b c":         "a_b_c",
		"9lives":        "_9lives",
		"":              "_",
		"cbde:ok_Name2": "cbde:ok_Name2",
	}
	for in, want := range cases {
		if got := SanitizeName(in); got != want {
			t.Errorf("SanitizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestExposeBasicMetrics(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests").Add(7)
	r.Counter("bytes.direct").Add(1234)
	r.Gauge("classes").Set(3)
	h := r.Histogram("latency", 0.01, 0.1, 1)
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)

	var b strings.Builder
	if err := r.Expose(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE requests counter\nrequests 7\n",
		"# TYPE bytes_direct counter\nbytes_direct 1234\n",
		"# TYPE classes gauge\nclasses 3\n",
		"# TYPE latency histogram\n",
		`latency_bucket{le="0.01"} 1`,
		`latency_bucket{le="0.1"} 2`,
		`latency_bucket{le="1"} 2`,
		`latency_bucket{le="+Inf"} 3`,
		"latency_sum 5.055\n",
		"latency_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestExposeFamiliesAndEscaping(t *testing.T) {
	r := NewRegistry()
	f := r.CounterFamily("cbde_class_requests_total", "Requests per class.", "class")
	f.With(`evil"class\with` + "\n" + `newline`).Add(2)
	f.With("plain").Add(5)
	g := r.GaugeFamily("cbde_class_base_version", "Current base version.", "class")
	g.With("plain").Set(4)
	hf := r.HistogramFamily("cbde_stage_seconds", "Per-stage latency.", []string{"stage"}, 0.001, 0.01)
	hf.With("encode").Observe(0.002)

	var b strings.Builder
	if err := r.Expose(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP cbde_class_requests_total Requests per class.\n# TYPE cbde_class_requests_total counter\n",
		`cbde_class_requests_total{class="evil\"class\\with\nnewline"} 2`,
		`cbde_class_requests_total{class="plain"} 5`,
		`cbde_class_base_version{class="plain"} 4`,
		"# TYPE cbde_stage_seconds histogram\n",
		`cbde_stage_seconds_bucket{stage="encode",le="0.01"} 1`,
		`cbde_stage_seconds_bucket{stage="encode",le="+Inf"} 1`,
		`cbde_stage_seconds_sum{stage="encode"} 0.002`,
		`cbde_stage_seconds_count{stage="encode"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestExposeCollectors(t *testing.T) {
	r := NewRegistry()
	r.Counter("seed").Inc() // a parseable doc needs at least one sample anyway
	r.RegisterCollector(func(c *Collection) {
		c.Gauge("cbde_class_base_age_seconds", "Age of the base.", []Label{{"class", "a"}}, 12.5)
		c.Gauge("cbde_class_base_age_seconds", "", []Label{{"class", "b"}}, 3)
		c.Counter("cbde_bytes_saved_total", "Bytes saved.", nil, 999)
	})
	var b strings.Builder
	if err := r.Expose(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE cbde_class_base_age_seconds gauge\n",
		`cbde_class_base_age_seconds{class="a"} 12.5`,
		`cbde_class_base_age_seconds{class="b"} 3`,
		"# TYPE cbde_bytes_saved_total counter\ncbde_bytes_saved_total 999\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if n := strings.Count(out, "# TYPE cbde_class_base_age_seconds"); n != 1 {
		t.Errorf("TYPE header for collected family appears %d times, want 1", n)
	}
}

// TestExposeParsesRoundTrip feeds Expose output through the package's own
// exposition parser: what we serve must be what a scraper can ingest.
func TestExposeParsesRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests").Add(7)
	r.Gauge("up").Set(1)
	r.Histogram("latency", 0.01, 0.1).Observe(0.02)
	r.CounterFamily("per_class_total", "per class", "class").With(`tricky"\` + "\n").Add(1)
	r.HistogramFamily("stage_seconds", "stages", []string{"stage"}, 0.001).With("gzip").Observe(0.5)
	r.RegisterCollector(func(c *Collection) {
		c.Gauge("derived", "derived value", []Label{{"k", "v"}}, math.Pi)
	})

	var b strings.Builder
	if err := r.Expose(&b); err != nil {
		t.Fatal(err)
	}
	exp, err := ParseExposition(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("Expose output does not parse: %v\n%s", err, b.String())
	}
	for _, series := range []string{
		"requests", "up",
		"latency_bucket", "latency_sum", "latency_count",
		"per_class_total",
		"stage_seconds_bucket", "stage_seconds_sum", "stage_seconds_count",
		"derived",
	} {
		if !exp.Series(series) {
			t.Errorf("parsed exposition missing series %s", series)
		}
	}
	if exp.Types["latency"] != "histogram" {
		t.Errorf("latency TYPE = %q, want histogram", exp.Types["latency"])
	}
	// The escaped label value must round-trip exactly.
	found := false
	for _, s := range exp.Samples {
		if s.Name != "per_class_total" {
			continue
		}
		if v, ok := s.Label("class"); ok && v == `tricky"\`+"\n" {
			found = true
		}
	}
	if !found {
		t.Error("escaped label value did not round-trip")
	}
}

func TestParseExpositionRejectsGarbage(t *testing.T) {
	bad := []string{
		"",                                      // no samples
		"not a metric line",                     // no value
		"9bad_name 1",                           // name starts with digit
		`m{l="unterminated} 1`,                  // unterminated quote
		`m{l="v"} notafloat`,                    // bad value
		"# TYPE m sometype\nm 1",                // unknown type
		"# TYPE m counter\n# TYPE m gauge\nm 1", // conflicting types
		`m{9bad="v"} 1`,                         // bad label name
		`m{l="v"\} 1`,                           // bad escape position
	}
	for _, doc := range bad {
		if _, err := ParseExposition(strings.NewReader(doc)); err == nil {
			t.Errorf("ParseExposition accepted %q", doc)
		}
	}
	good := "# random comment\n# HELP m some help\n# TYPE m counter\nm{a=\"b\",c=\"d\"} 1 1690000000\nm2 +Inf\n"
	exp, err := ParseExposition(strings.NewReader(good))
	if err != nil {
		t.Fatalf("ParseExposition rejected valid doc: %v", err)
	}
	if len(exp.Samples) != 2 {
		t.Errorf("parsed %d samples, want 2", len(exp.Samples))
	}
	if !math.IsInf(exp.Samples[1].Value, 1) {
		t.Errorf("m2 value = %v, want +Inf", exp.Samples[1].Value)
	}
}

func TestExposeHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency", 0.01, 0.1, 1)
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 100)
	}
	fam := r.HistogramFamily("stage_seconds", "stages", []string{"stage"}, 0.001)
	fam.With("gzip").Observe(0.5)
	r.Histogram("empty", 1) // no observations: quantiles expose as 0

	var b strings.Builder
	if err := r.Expose(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE latency_quantile gauge\n",
		`latency_quantile{quantile="0.5"} `,
		`latency_quantile{quantile="0.9"} `,
		`latency_quantile{quantile="0.99"} `,
		"# TYPE stage_seconds_quantile gauge\n",
		`stage_seconds_quantile{stage="gzip",quantile="0.5"} 0.5`,
		`empty_quantile{quantile="0.99"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	exp, err := ParseExposition(strings.NewReader(out))
	if err != nil {
		t.Fatalf("exposition with quantiles does not parse: %v\n%s", err, out)
	}
	if exp.Types["latency_quantile"] != "gauge" {
		t.Errorf("latency_quantile TYPE = %q, want gauge", exp.Types["latency_quantile"])
	}
	// The estimates themselves must order sensibly over a uniform stream.
	var p50, p99 float64
	for _, s := range exp.Samples {
		if s.Name != "latency_quantile" {
			continue
		}
		switch v, _ := s.Label("quantile"); v {
		case "0.5":
			p50 = s.Value
		case "0.99":
			p99 = s.Value
		}
	}
	if !(p50 > 0.4 && p50 < 0.6 && p99 > 0.9 && p99 <= 1.0) {
		t.Errorf("uniform-stream quantiles implausible: p50=%v p99=%v", p50, p99)
	}
}

func TestHistogramQuantilesSharedSort(t *testing.T) {
	h := NewHistogram(1)
	for i := 1; i <= 99; i++ {
		h.Observe(float64(i))
	}
	got := h.Quantiles(0, 0.5, 1)
	want := []float64{1, 50, 99}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Quantiles[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if v := h.Quantile(0.5); v != 50 {
		t.Errorf("Quantile(0.5) = %v, want 50", v)
	}
	var empty Histogram
	if got := empty.Quantiles(0.5, 0.99); got[0] != 0 || got[1] != 0 {
		t.Errorf("empty histogram quantiles = %v, want zeros", got)
	}
}
