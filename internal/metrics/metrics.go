// Package metrics provides small, dependency-free counters, gauges and
// histograms used by the delta-server and the experiment harness.
//
// All types are safe for concurrent use and have useful zero values where
// possible; Registry must be created with NewRegistry.
package metrics

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter. The zero value is ready to
// use.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by delta. Negative deltas are ignored so that a
// Counter remains monotone.
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		return
	}
	c.v.Add(delta)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down. The zero value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Set sets the gauge to v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram accumulates observations into fixed buckets. Create one with
// NewHistogram.
type Histogram struct {
	mu      sync.Mutex
	bounds  []float64 // upper bounds, sorted ascending
	counts  []int64   // len(bounds)+1; last bucket is +Inf
	sum     float64
	n       int64
	min     float64
	max     float64
	samples []float64  // reservoir for quantile estimates
	rng     *rand.Rand // reservoir replacement; seeded so runs reproduce

	// exemplars holds the last trace-carrying observation per bucket
	// (len(counts) entries), allocated lazily by the first ObserveExemplar
	// so histograms that never see traced traffic pay nothing.
	exemplars []Exemplar
}

// Exemplar is the last traced observation that landed in a histogram
// bucket: the trace ID to look up, the observed value, and when it was
// recorded. The Prometheus exposition emits it after the bucket's sample
// (OpenMetrics-style), linking a latency bucket to a retrievable trace.
type Exemplar struct {
	// TraceHi and TraceLo are the halves of the 128-bit trace ID.
	TraceHi, TraceLo uint64
	// Value is the observed value that landed in the bucket.
	Value float64
	// Timestamp is the observation time, Unix seconds.
	Timestamp int64
	// Valid reports whether the bucket has recorded an exemplar at all.
	Valid bool
}

const histReservoirSize = 4096

// histSeed seeds every histogram's reservoir PRNG. A fixed seed keeps the
// experiment harness reproducible run-to-run while still giving each
// observation stream an unbiased uniform sample (unlike a slot derived from
// the running count, which correlates with periodic workloads).
const histSeed = 0x9E3779B97F4A7C15

// NewHistogram returns a histogram with the given ascending upper bucket
// bounds. An implicit +Inf bucket is appended.
func NewHistogram(bounds ...float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{
		bounds: b,
		counts: make([]int64, len(b)+1),
		min:    math.Inf(1),
		max:    math.Inf(-1),
		rng:    rand.New(rand.NewPCG(histSeed, uint64(len(b)))),
	}
}

// Observe records a single observation.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.observeLocked(v)
}

// ObserveExemplar records an observation and stamps its bucket with the
// observing request's 128-bit trace ID (hi/lo halves) and a Unix-seconds
// timestamp. Each bucket keeps only the most recent exemplar — enough to
// jump from "the p99 bucket grew" to one concrete retained trace.
func (h *Histogram) ObserveExemplar(v float64, traceHi, traceLo uint64, ts int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	idx := h.observeLocked(v)
	if h.exemplars == nil {
		h.exemplars = make([]Exemplar, len(h.counts))
	}
	h.exemplars[idx] = Exemplar{TraceHi: traceHi, TraceLo: traceLo, Value: v, Timestamp: ts, Valid: true}
}

// observeLocked does the shared bookkeeping and returns the bucket index
// the observation landed in. Callers hold h.mu.
func (h *Histogram) observeLocked(v float64) int {
	idx := sort.SearchFloat64s(h.bounds, v)
	h.counts[idx]++
	h.sum += v
	h.n++
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	if len(h.samples) < histReservoirSize {
		h.samples = append(h.samples, v)
	} else {
		// Algorithm R reservoir sampling: after n observations every one of
		// them had probability reservoirSize/n of being retained. The PRNG
		// is per-histogram and fixed-seeded, so runs stay reproducible.
		if j := h.rng.Int64N(h.n); j < histReservoirSize {
			h.samples[j] = v
		}
	}
	return idx
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the mean of all observations, or 0 if there are none.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Min returns the smallest observation, or 0 if there are none.
func (h *Histogram) Min() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation, or 0 if there are none.
func (h *Histogram) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	return h.max
}

// Quantile returns an estimate of the q-th quantile (0 <= q <= 1) from the
// sample reservoir, or 0 if there are no observations.
//
// Only the reservoir copy happens under the histogram mutex; the O(n log n)
// sort and the interpolation run outside it, so hot-path Observe calls never
// stall behind a stats scrape.
func (h *Histogram) Quantile(q float64) float64 {
	return h.Quantiles(q)[0]
}

// Quantiles returns estimates for every requested quantile at once,
// sharing a single reservoir copy and sort across all of them — the
// exposition path asks for p50/p90/p99 together, and three Quantile calls
// would sort the reservoir three times. Returns all zeros if there are no
// observations.
func (h *Histogram) Quantiles(qs ...float64) []float64 {
	out := make([]float64, len(qs))
	h.mu.Lock()
	if len(h.samples) == 0 {
		h.mu.Unlock()
		return out
	}
	s := make([]float64, len(h.samples))
	copy(s, h.samples)
	h.mu.Unlock()
	sort.Float64s(s)
	for i, q := range qs {
		out[i] = quantileSorted(s, q)
	}
	return out
}

// quantileSorted interpolates the q-th quantile from an ascending-sorted,
// non-empty sample slice.
func quantileSorted(s []float64, q float64) float64 {
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	idx := q * float64(len(s)-1)
	lo := int(math.Floor(idx))
	hi := int(math.Ceil(idx))
	if lo == hi {
		return s[lo]
	}
	frac := idx - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Buckets returns a copy of the bucket upper bounds and counts. The final
// count is the +Inf bucket.
func (h *Histogram) Buckets() ([]float64, []int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	b := make([]float64, len(h.bounds))
	copy(b, h.bounds)
	c := make([]int64, len(h.counts))
	copy(c, h.counts)
	return b, c
}

// Exemplars returns a copy of the per-bucket exemplars, index-aligned with
// the counts slice from Buckets (last entry is the +Inf bucket). Nil when
// no exemplar was ever recorded.
func (h *Histogram) Exemplars() []Exemplar {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.exemplars == nil {
		return nil
	}
	out := make([]Exemplar, len(h.exemplars))
	copy(out, h.exemplars)
	return out
}

// Registry is a named collection of metrics. Create one with NewRegistry.
// Lookups of existing metrics (the overwhelmingly common case on a serving
// hot path) take only a read lock; creation re-checks under the write lock.
type Registry struct {
	mu          sync.RWMutex
	counters    map[string]*Counter
	gauges      map[string]*Gauge
	histograms  map[string]*Histogram
	counterFams map[string]*CounterFamily
	gaugeFams   map[string]*GaugeFamily
	histFams    map[string]*HistogramFamily
	collectors  []func(c *Collection)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:    make(map[string]*Counter),
		gauges:      make(map[string]*Gauge),
		histograms:  make(map[string]*Histogram),
		counterFams: make(map[string]*CounterFamily),
		gaugeFams:   make(map[string]*GaugeFamily),
		histFams:    make(map[string]*HistogramFamily),
	}
}

// Counter returns the counter with the given name, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge with the given name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram with the given name, creating it with the
// provided bounds on first use. Bounds are ignored for an existing histogram.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	r.mu.RLock()
	h, ok := r.histograms[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[name]; ok {
		return h
	}
	h = NewHistogram(bounds...)
	r.histograms[name] = h
	return h
}

// Snapshot returns a sorted, human-readable dump of every metric, suitable
// for a stats endpoint or log line.
func (r *Registry) Snapshot() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var lines []string
	for name, c := range r.counters {
		lines = append(lines, fmt.Sprintf("counter %s %d", name, c.Value()))
	}
	for name, g := range r.gauges {
		lines = append(lines, fmt.Sprintf("gauge %s %d", name, g.Value()))
	}
	for name, h := range r.histograms {
		qs := h.Quantiles(0.5, 0.99)
		lines = append(lines, fmt.Sprintf("histogram %s count=%d mean=%.3f min=%.3f max=%.3f p50=%.3f p99=%.3f",
			name, h.Count(), h.Mean(), h.Min(), h.Max(), qs[0], qs[1]))
	}
	for name, f := range r.counterFams {
		f.each(func(values []string, c *Counter) {
			lines = append(lines, fmt.Sprintf("counter %s%s %d", name, formatLabels(f.labelNames, values), c.Value()))
		})
	}
	for name, f := range r.gaugeFams {
		f.each(func(values []string, g *Gauge) {
			lines = append(lines, fmt.Sprintf("gauge %s%s %d", name, formatLabels(f.labelNames, values), g.Value()))
		})
	}
	for name, f := range r.histFams {
		f.each(func(values []string, h *Histogram) {
			qs := h.Quantiles(0.5, 0.99)
			lines = append(lines, fmt.Sprintf("histogram %s%s count=%d mean=%.3f p50=%.3f p99=%.3f",
				name, formatLabels(f.labelNames, values), h.Count(), h.Mean(), qs[0], qs[1]))
		})
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
