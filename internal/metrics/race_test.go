package metrics

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentRegistryStress hammers lookup-or-create on every metric kind
// together with Observe, Quantile, Snapshot and Expose scrapes. Run under
// -race (CI does) this is the evidence that a stats scrape can never corrupt
// — or deadlock against — the serving hot path.
func TestConcurrentRegistryStress(t *testing.T) {
	r := NewRegistry()
	r.RegisterCollector(func(c *Collection) {
		c.Gauge("collected", "", []Label{{"k", "v"}}, 1)
	})
	const (
		goroutines = 8
		iters      = 400
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// Names are unique per metric kind: the exposition format
				// forbids one name carrying two TYPEs.
				r.Counter(fmt.Sprintf("c%d", i%5)).Inc()
				r.Gauge(fmt.Sprintf("g%d", i%5)).Add(1)
				h := r.Histogram(fmt.Sprintf("h%d", i%5), 0.01, 0.1, 1)
				h.Observe(float64(i%100) / 50)
				r.CounterFamily("fam_total", "", "worker").With(fmt.Sprintf("w%d", g%3)).Inc()
				r.HistogramFamily("fam_seconds", "", []string{"worker"}, 0.01, 1).
					With(fmt.Sprintf("w%d", g%3)).Observe(float64(i) / 1000)
				switch i % 4 {
				case 0:
					_ = h.Quantile(0.99)
				case 1:
					_ = r.Snapshot()
				case 2:
					_ = r.Expose(io.Discard)
				case 3:
					_, _ = h.Buckets()
					_ = h.Mean()
				}
			}
		}(g)
	}
	wg.Wait()

	var b strings.Builder
	if err := r.Expose(&b); err != nil {
		t.Fatal(err)
	}
	exp, err := ParseExposition(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("post-stress exposition does not parse: %v", err)
	}
	// Every increment must be accounted for: counters are never lost.
	var total float64
	for _, s := range exp.Samples {
		if s.Name == "fam_total" {
			total += s.Value
		}
	}
	if want := float64(goroutines * iters); total != want {
		t.Errorf("fam_total sums to %v, want %v", total, want)
	}
}
