package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatalf("zero value = %d, want 0", c.Value())
	}
	c.Inc()
	c.Add(5)
	c.Add(-3) // ignored: counters are monotone
	if got := c.Value(); got != 6 {
		t.Errorf("Value() = %d, want 6", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 16000 {
		t.Errorf("Value() = %d, want 16000", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-4)
	if got := g.Value(); got != 6 {
		t.Errorf("Value() = %d, want 6", got)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(1, 10, 100)
	for _, v := range []float64{0.5, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Errorf("Count() = %d, want 4", h.Count())
	}
	if got, want := h.Sum(), 555.5; math.Abs(got-want) > 1e-9 {
		t.Errorf("Sum() = %v, want %v", got, want)
	}
	if got, want := h.Mean(), 555.5/4; math.Abs(got-want) > 1e-9 {
		t.Errorf("Mean() = %v, want %v", got, want)
	}
	if h.Min() != 0.5 || h.Max() != 500 {
		t.Errorf("Min/Max = %v/%v, want 0.5/500", h.Min(), h.Max())
	}
	bounds, counts := h.Buckets()
	if len(bounds) != 3 || len(counts) != 4 {
		t.Fatalf("Buckets() lens = %d,%d, want 3,4", len(bounds), len(counts))
	}
	for i, want := range []int64{1, 1, 1, 1} {
		if counts[i] != want {
			t.Errorf("bucket %d = %d, want %d", i, counts[i], want)
		}
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(1)
	if h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Error("empty histogram should report zeros")
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(100)
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if q := h.Quantile(0.5); q < 45 || q > 56 {
		t.Errorf("median = %v, want ~50", q)
	}
	if q := h.Quantile(0); q != 1 {
		t.Errorf("q0 = %v, want 1", q)
	}
	if q := h.Quantile(1); q != 100 {
		t.Errorf("q1 = %v, want 100", q)
	}
}

func TestHistogramReservoirOverflow(t *testing.T) {
	h := NewHistogram(10)
	for i := 0; i < histReservoirSize*3; i++ {
		h.Observe(7)
	}
	if q := h.Quantile(0.5); q != 7 {
		t.Errorf("median after overflow = %v, want 7", q)
	}
	if h.Count() != int64(histReservoirSize*3) {
		t.Errorf("Count = %d", h.Count())
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs").Add(3)
	if got := r.Counter("reqs").Value(); got != 3 {
		t.Errorf("same counter not returned: %d", got)
	}
	r.Gauge("conns").Set(9)
	r.Histogram("lat", 1, 10).Observe(2)

	snap := r.Snapshot()
	for _, want := range []string{"counter reqs 3", "gauge conns 9", "histogram lat count=1"} {
		if !strings.Contains(snap, want) {
			t.Errorf("Snapshot missing %q:\n%s", want, snap)
		}
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				r.Counter("c").Inc()
				r.Histogram("h", 1).Observe(1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 4000 {
		t.Errorf("counter = %d, want 4000", got)
	}
}
