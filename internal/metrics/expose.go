// Prometheus text exposition (version 0.0.4) for a Registry: what a real
// scraper ingests from /_cbde/metrics. Only the standard library is used;
// the format rules implemented here are the exposition-format ones that
// matter for correct parsing — metric-name sanitization, label-value
// escaping, the _bucket/_sum/_count histogram convention with a cumulative
// +Inf bucket, and one # HELP/# TYPE header per family.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ExpositionContentType is the Content-Type an HTTP handler should serve
// Expose output under.
const ExpositionContentType = "text/plain; version=0.0.4; charset=utf-8"

// SanitizeName maps an arbitrary metric name onto the exposition-format
// charset [a-zA-Z_:][a-zA-Z0-9_:]*. Invalid runes become '_' (the registry's
// legacy dotted names, e.g. "bytes.direct", become "bytes_direct"); a name
// starting with a digit gains a '_' prefix.
func SanitizeName(name string) string {
	if name == "" {
		return "_"
	}
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// escapeLabelValue escapes a label value per the exposition format:
// backslash, double-quote and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// escapeHelp escapes a HELP text: backslash and newline.
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

// formatValue renders a sample value. Prometheus accepts Go's 'g' formatting
// including "+Inf", "-Inf" and "NaN".
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// formatLabels renders a {name="value",...} block, or "" for no labels.
func formatLabels(names, values []string, extra ...Label) string {
	if len(names) == 0 && len(extra) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	first := true
	emit := func(n, v string) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(SanitizeName(n))
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(v))
		b.WriteByte('"')
	}
	for i, n := range names {
		emit(n, values[i])
	}
	for _, l := range extra {
		emit(l.Name, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// Collection receives samples from registered collectors during Expose.
type Collection struct {
	samples []collectedSample
}

type collectedSample struct {
	name   string
	help   string
	typ    string
	labels []Label
	value  float64
}

// Counter contributes one counter-typed sample.
func (c *Collection) Counter(name, help string, labels []Label, value float64) {
	c.samples = append(c.samples, collectedSample{name, help, "counter", labels, value})
}

// Gauge contributes one gauge-typed sample.
func (c *Collection) Gauge(name, help string, labels []Label, value float64) {
	c.samples = append(c.samples, collectedSample{name, help, "gauge", labels, value})
}

// Expose writes every metric in the registry — plain counters/gauges/
// histograms, labeled families, and collector-contributed samples — as
// Prometheus text exposition. Families are emitted in sorted name order and
// children in sorted label order, so output is stable and diffable.
//
// The registry does not police name collisions across metric kinds, but the
// exposition format forbids one name carrying two TYPE declarations; use
// each (sanitized) name for exactly one kind.
func (r *Registry) Expose(w io.Writer) error {
	ew := &errWriter{w: w}

	r.mu.RLock()
	counters := sortedKeys(r.counters)
	gauges := sortedKeys(r.gauges)
	histograms := sortedKeys(r.histograms)
	counterFams := sortedKeys(r.counterFams)
	gaugeFams := sortedKeys(r.gaugeFams)
	histFams := sortedKeys(r.histFams)
	collectors := make([]func(*Collection), len(r.collectors))
	copy(collectors, r.collectors)
	r.mu.RUnlock()

	for _, name := range counters {
		n := SanitizeName(name)
		fmt.Fprintf(ew, "# TYPE %s counter\n%s %d\n", n, n, r.Counter(name).Value())
	}
	for _, name := range gauges {
		n := SanitizeName(name)
		fmt.Fprintf(ew, "# TYPE %s gauge\n%s %d\n", n, n, r.Gauge(name).Value())
	}
	for _, name := range histograms {
		n := SanitizeName(name)
		h := r.Histogram(name)
		writeHistogram(ew, n, "", nil, nil, h)
		writeHeader(ew, n+"_quantile", "", "gauge")
		writeHistogramQuantiles(ew, n, nil, nil, h)
	}

	for _, name := range counterFams {
		f := r.CounterFamily(name, "")
		n := SanitizeName(f.name)
		writeHeader(ew, n, f.help, "counter")
		f.each(func(values []string, c *Counter) {
			fmt.Fprintf(ew, "%s%s %d\n", n, formatLabels(f.labelNames, values), c.Value())
		})
	}
	for _, name := range gaugeFams {
		f := r.GaugeFamily(name, "")
		n := SanitizeName(f.name)
		writeHeader(ew, n, f.help, "gauge")
		f.each(func(values []string, g *Gauge) {
			fmt.Fprintf(ew, "%s%s %d\n", n, formatLabels(f.labelNames, values), g.Value())
		})
	}
	for _, name := range histFams {
		f := r.HistogramFamily(name, "", nil)
		n := SanitizeName(f.name)
		writeHeader(ew, n, f.help, "histogram")
		f.each(func(values []string, h *Histogram) {
			writeHistogramSamples(ew, n, f.labelNames, values, h)
		})
		// The quantile companion is its own gauge-typed family (a
		// histogram family's TYPE cannot also cover summary-style
		// quantile samples), emitted in a second pass so its children
		// stay contiguous under one header.
		writeHeader(ew, n+"_quantile", "", "gauge")
		f.each(func(values []string, h *Histogram) {
			writeHistogramQuantiles(ew, n, f.labelNames, values, h)
		})
	}

	if len(collectors) > 0 {
		col := &Collection{}
		for _, fn := range collectors {
			fn(col)
		}
		writeCollected(ew, col.samples)
	}
	return ew.err
}

// writeHeader emits the # HELP / # TYPE preamble for one family.
func writeHeader(w io.Writer, name, help, typ string) {
	if help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", name, escapeHelp(help))
	}
	fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
}

// writeHistogram emits a full single histogram (header plus samples).
func writeHistogram(w io.Writer, name, help string, labelNames, labelValues []string, h *Histogram) {
	writeHeader(w, name, help, "histogram")
	writeHistogramSamples(w, name, labelNames, labelValues, h)
}

// writeHistogramSamples emits the _bucket/_sum/_count series for one
// histogram child. Bucket counts are cumulative, ending in the +Inf bucket
// that by convention equals _count. Buckets that recorded an exemplar get
// an OpenMetrics-style " # {trace_id=...} value ts" suffix — a deliberate
// extension of the 0.0.4 text format (see DESIGN.md §15) that this repo's
// own parser accepts and validates.
func writeHistogramSamples(w io.Writer, name string, labelNames, labelValues []string, h *Histogram) {
	bounds, counts := h.Buckets()
	exemplars := h.Exemplars()
	var cum int64
	for i, ub := range bounds {
		cum += counts[i]
		le := Label{Name: "le", Value: formatValue(ub)}
		fmt.Fprintf(w, "%s_bucket%s %d%s\n", name, formatLabels(labelNames, labelValues, le), cum, exemplarSuffix(exemplars, i))
	}
	cum += counts[len(counts)-1]
	inf := Label{Name: "le", Value: "+Inf"}
	fmt.Fprintf(w, "%s_bucket%s %d%s\n", name, formatLabels(labelNames, labelValues, inf), cum, exemplarSuffix(exemplars, len(bounds)))
	fmt.Fprintf(w, "%s_sum%s %s\n", name, formatLabels(labelNames, labelValues), formatValue(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, formatLabels(labelNames, labelValues), h.Count())
}

// exemplarSuffix renders one bucket's exemplar annotation, or "" when the
// bucket (or the whole histogram) has none.
func exemplarSuffix(exemplars []Exemplar, i int) string {
	if i >= len(exemplars) || !exemplars[i].Valid {
		return ""
	}
	ex := exemplars[i]
	return fmt.Sprintf(" # {trace_id=\"%016x%016x\"} %s %d", ex.TraceHi, ex.TraceLo, formatValue(ex.Value), ex.Timestamp)
}

// exposedQuantiles are the quantile estimates published alongside every
// histogram as a companion gauge family <name>_quantile, in the summary
// convention's label form: {quantile="0.5"|"0.9"|"0.99"}.
var exposedQuantiles = []float64{0.5, 0.9, 0.99}

// writeHistogramQuantiles emits one histogram child's reservoir-estimated
// quantiles as <name>_quantile samples. All estimates share one reservoir
// copy and sort.
func writeHistogramQuantiles(w io.Writer, name string, labelNames, labelValues []string, h *Histogram) {
	vals := h.Quantiles(exposedQuantiles...)
	for i, q := range exposedQuantiles {
		ql := Label{Name: "quantile", Value: formatValue(q)}
		fmt.Fprintf(w, "%s_quantile%s %s\n", name, formatLabels(labelNames, labelValues, ql), formatValue(vals[i]))
	}
}

// writeCollected groups collector samples by metric name so each family gets
// exactly one # TYPE header, then emits them in sorted order.
func writeCollected(w io.Writer, samples []collectedSample) {
	byName := make(map[string][]collectedSample)
	var names []string
	for _, s := range samples {
		key := SanitizeName(s.name)
		if _, ok := byName[key]; !ok {
			names = append(names, key)
		}
		byName[key] = append(byName[key], s)
	}
	sort.Strings(names)
	for _, n := range names {
		group := byName[n]
		writeHeader(w, n, group[0].help, group[0].typ)
		sort.Slice(group, func(i, j int) bool {
			return labelString(group[i].labels) < labelString(group[j].labels)
		})
		for _, s := range group {
			fmt.Fprintf(w, "%s%s %s\n", n, formatLabels(nil, nil, s.labels...), formatValue(s.value))
		}
	}
}

func labelString(labels []Label) string {
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = l.Name + "\x1f" + l.Value
	}
	return strings.Join(parts, "\x1f")
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// errWriter latches the first write error so format code stays linear.
type errWriter struct {
	w   io.Writer
	err error
}

func (ew *errWriter) Write(p []byte) (int, error) {
	if ew.err != nil {
		return len(p), nil
	}
	n, err := ew.w.Write(p)
	if err != nil {
		ew.err = err
	}
	return n, nil
}
