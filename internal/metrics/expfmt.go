// A strict-enough parser for the Prometheus text exposition format
// (version 0.0.4). It exists so the CI smoke job and cmd/cbdestat can
// verify that /_cbde/metrics actually parses as exposition text and carries
// the series an operator's scraper would depend on — without importing a
// Prometheus client library.
package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// ParsedSample is one sample line of an exposition document.
type ParsedSample struct {
	// Name is the sample's metric name (for histograms this includes the
	// _bucket/_sum/_count suffix).
	Name string
	// Labels holds the sample's label pairs in document order.
	Labels []Label
	// Value is the sample value.
	Value float64
	// Exemplar is the OpenMetrics-style exemplar annotation, if the sample
	// line carried one (" # {trace_id=...} value ts" after the value).
	Exemplar *ParsedExemplar
}

// ParsedExemplar is a parsed exemplar annotation on a sample line.
type ParsedExemplar struct {
	// Labels holds the exemplar's label pairs (for CBDE, trace_id).
	Labels []Label
	// Value is the exemplar's observed value.
	Value float64
	// Timestamp is the exemplar's Unix-seconds timestamp, 0 if absent.
	Timestamp int64
}

// Exposition is a parsed exposition document.
type Exposition struct {
	// Samples lists every sample line in document order.
	Samples []ParsedSample
	// Types maps metric family name to its declared # TYPE.
	Types map[string]string
}

// Series reports whether the document contains at least one sample whose
// name equals name (exact match, so histogram series are addressed as
// name_bucket / name_sum / name_count).
func (e *Exposition) Series(name string) bool {
	for _, s := range e.Samples {
		if s.Name == name {
			return true
		}
	}
	return false
}

// Label returns the value of the named label on sample s, if present.
func (s ParsedSample) Label(name string) (string, bool) {
	for _, l := range s.Labels {
		if l.Name == name {
			return l.Value, true
		}
	}
	return "", false
}

// ParseExposition parses (and thereby validates) a text exposition document.
// It enforces the rules a real scraper cares about: metric-name and
// label-name charsets, quoted and escaped label values, parseable sample
// values, and # TYPE lines naming a known metric type. Unknown comment
// lines (# anything) are ignored per the format.
func ParseExposition(r io.Reader) (*Exposition, error) {
	exp := &Exposition{Types: make(map[string]string)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseComment(line, exp); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		exp.Samples = append(exp.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(exp.Samples) == 0 {
		return nil, fmt.Errorf("exposition contains no samples")
	}
	return exp, nil
}

var validTypes = map[string]bool{
	"counter": true, "gauge": true, "histogram": true,
	"summary": true, "untyped": true,
}

func parseComment(line string, exp *Exposition) error {
	fields := strings.Fields(line)
	if len(fields) >= 2 && fields[1] == "TYPE" {
		if len(fields) != 4 {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		name, typ := fields[2], fields[3]
		if err := checkName(name); err != nil {
			return err
		}
		if !validTypes[typ] {
			return fmt.Errorf("unknown metric type %q for %s", typ, name)
		}
		if prev, ok := exp.Types[name]; ok && prev != typ {
			return fmt.Errorf("conflicting TYPE for %s: %s then %s", name, prev, typ)
		}
		exp.Types[name] = typ
	}
	// HELP and other comments carry free text; nothing to validate.
	return nil
}

func checkName(name string) error {
	if name == "" {
		return fmt.Errorf("empty metric name")
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':' ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return fmt.Errorf("invalid metric name %q", name)
		}
	}
	return nil
}

func checkLabelName(name string) error {
	if name == "" {
		return fmt.Errorf("empty label name")
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return fmt.Errorf("invalid label name %q", name)
		}
	}
	return nil
}

// parseSampleLine parses `name{label="value",...} value [timestamp]`, with
// an optional OpenMetrics-style exemplar suffix `# {label="v",...} value
// [timestamp]` after the value (the extension this repo's exposition writer
// emits on histogram bucket lines).
func parseSampleLine(line string) (ParsedSample, error) {
	var s ParsedSample
	rest := line

	// Metric name runs until '{' or whitespace.
	end := strings.IndexAny(rest, "{ \t")
	if end < 0 {
		return s, fmt.Errorf("sample %q has no value", line)
	}
	s.Name = rest[:end]
	if err := checkName(s.Name); err != nil {
		return s, err
	}
	rest = rest[end:]

	if strings.HasPrefix(rest, "{") {
		labels, tail, err := parseLabels(rest)
		if err != nil {
			return s, fmt.Errorf("sample %q: %w", line, err)
		}
		s.Labels = labels
		rest = tail
	}

	// Split off the exemplar annotation before field-splitting the value.
	// The sample's own labels are already consumed, so a '#' here can only
	// start an exemplar.
	if hash := strings.IndexByte(rest, '#'); hash >= 0 {
		ex, err := parseExemplar(strings.TrimSpace(rest[hash+1:]))
		if err != nil {
			return s, fmt.Errorf("sample %q: bad exemplar: %w", line, err)
		}
		s.Exemplar = &ex
		rest = rest[:hash]
	}

	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("sample %q: want value [timestamp], got %q", line, rest)
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return s, fmt.Errorf("sample %q: bad value: %w", line, err)
	}
	s.Value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return s, fmt.Errorf("sample %q: bad timestamp: %w", line, err)
		}
	}
	return s, nil
}

// parseExemplar parses `{label="value",...} value [timestamp]`.
func parseExemplar(in string) (ParsedExemplar, error) {
	var ex ParsedExemplar
	labels, tail, err := parseLabels(in)
	if err != nil {
		return ex, err
	}
	ex.Labels = labels
	fields := strings.Fields(tail)
	if len(fields) < 1 || len(fields) > 2 {
		return ex, fmt.Errorf("want value [timestamp], got %q", tail)
	}
	if ex.Value, err = parseValue(fields[0]); err != nil {
		return ex, fmt.Errorf("bad value: %w", err)
	}
	if len(fields) == 2 {
		if ex.Timestamp, err = strconv.ParseInt(fields[1], 10, 64); err != nil {
			return ex, fmt.Errorf("bad timestamp: %w", err)
		}
	}
	return ex, nil
}

func parseValue(v string) (float64, error) {
	switch v {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN", "nan":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(v, 64)
}

// parseLabels parses a `{name="value",...}` block, handling \\, \" and \n
// escapes inside quoted values. Returns the remaining tail after '}'.
func parseLabels(in string) ([]Label, string, error) {
	if !strings.HasPrefix(in, "{") {
		return nil, in, fmt.Errorf("label block must start with '{'")
	}
	rest := in[1:]
	var labels []Label
	for {
		rest = strings.TrimLeft(rest, " \t")
		if strings.HasPrefix(rest, "}") {
			return labels, rest[1:], nil
		}
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return nil, in, fmt.Errorf("label without '='")
		}
		name := strings.TrimSpace(rest[:eq])
		if err := checkLabelName(name); err != nil {
			return nil, in, err
		}
		rest = strings.TrimLeft(rest[eq+1:], " \t")
		if !strings.HasPrefix(rest, `"`) {
			return nil, in, fmt.Errorf("label %s value not quoted", name)
		}
		value, tail, err := parseQuoted(rest)
		if err != nil {
			return nil, in, fmt.Errorf("label %s: %w", name, err)
		}
		labels = append(labels, Label{Name: name, Value: value})
		rest = strings.TrimLeft(tail, " \t")
		if strings.HasPrefix(rest, ",") {
			rest = rest[1:]
			continue
		}
		if strings.HasPrefix(rest, "}") {
			return labels, rest[1:], nil
		}
		return nil, in, fmt.Errorf("expected ',' or '}' after label %s", name)
	}
}

// parseQuoted consumes a leading double-quoted string with exposition
// escapes, returning its unescaped value and the tail after the closing
// quote.
func parseQuoted(in string) (string, string, error) {
	var b strings.Builder
	for i := 1; i < len(in); i++ {
		switch c := in[i]; c {
		case '\\':
			if i+1 >= len(in) {
				return "", "", fmt.Errorf("dangling escape")
			}
			i++
			switch in[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", "", fmt.Errorf("unknown escape \\%c", in[i])
			}
		case '"':
			return b.String(), in[i+1:], nil
		default:
			b.WriteByte(c)
		}
	}
	return "", "", fmt.Errorf("unterminated quoted string")
}
