// Package trace models the request workloads the paper evaluates against.
//
// The paper uses access-logs from three commercial web-sites whose URLs it
// cannot disclose (Table II). This package substitutes synthetic workloads:
// requests over a Site's documents with Zipf-like document popularity
// (web request streams are famously Zipf, Breslau et al. [3]), a finite
// user population, and content churn advancing on a configurable cadence.
// Three site/workload pairs are calibrated so request counts and mean
// document sizes match Table II's scale.
//
// Workloads can be written to and re-read from Common Log Format, the
// format real access-logs (and hence the paper's traces) come in.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"sort"
	"strings"
	"time"

	"cbde/internal/origin"
)

// Request is one entry of a workload: a user requesting a document while
// the site content is at a given tick.
type Request struct {
	Seq  int       // position in the trace
	Time time.Time // request timestamp
	URL  string    // document URL (host + path, no scheme)
	User string    // requesting user
	Dept string    // resolved department
	Item int       // resolved item
	Tick int       // content generation at request time
}

// Config parametrizes workload generation.
type Config struct {
	// Requests is the trace length.
	Requests int
	// Users is the user population size. Default 50.
	Users int
	// ZipfS is the Zipf skew parameter for document popularity
	// (0 = uniform). Default 0.9.
	ZipfS float64
	// TickEvery advances the site content one tick every this many
	// requests — the temporal churn cadence. Default 20.
	TickEvery int
	// Start is the timestamp of the first request. Default 2002-07-01.
	Start time.Time
	// Interval is the (mean) spacing between requests. Default 1s.
	Interval time.Duration
	// Seed makes generation deterministic.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.Requests <= 0 {
		c.Requests = 1000
	}
	if c.Users <= 0 {
		c.Users = 50
	}
	if c.ZipfS == 0 {
		c.ZipfS = 0.9
	}
	if c.TickEvery <= 0 {
		c.TickEvery = 20
	}
	if c.Start.IsZero() {
		c.Start = time.Date(2002, 7, 1, 0, 0, 0, 0, time.UTC)
	}
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	return c
}

// zipf samples ranks 0..n-1 with probability proportional to 1/(rank+1)^s.
type zipf struct {
	cdf []float64
}

func newZipf(n int, s float64) *zipf {
	cdf := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return &zipf{cdf: cdf}
}

func (z *zipf) sample(rng *rand.Rand) int {
	u := rng.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// Generate produces a workload over site's documents.
func Generate(site *origin.Site, cfg Config) []Request {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewPCG(cfg.Seed, 0xA24BAED4963EE407))

	// Flatten (dept, item) into a popularity-ranked document list; shuffle
	// so popular documents spread across departments.
	type docRef struct {
		dept string
		item int
	}
	var docs []docRef
	for _, d := range site.Depts() {
		for i := 0; i < d.Items; i++ {
			docs = append(docs, docRef{dept: d.Name, item: i})
		}
	}
	rng.Shuffle(len(docs), func(i, j int) { docs[i], docs[j] = docs[j], docs[i] })

	z := newZipf(len(docs), cfg.ZipfS)
	out := make([]Request, cfg.Requests)
	tick := 0
	for i := range out {
		if i > 0 && i%cfg.TickEvery == 0 {
			tick++
		}
		doc := docs[z.sample(rng)]
		user := fmt.Sprintf("user%03d", rng.IntN(cfg.Users))
		out[i] = Request{
			Seq:  i,
			Time: cfg.Start.Add(time.Duration(i) * cfg.Interval),
			URL:  site.URL(doc.dept, doc.item),
			User: user,
			Dept: doc.dept,
			Item: doc.item,
			Tick: tick,
		}
	}
	return out
}

// clfTimeLayout is the Common Log Format timestamp layout.
const clfTimeLayout = "02/Jan/2006:15:04:05 -0700"

// FormatCLF renders the request as a Common Log Format line. The user goes
// in the authuser field; the size field carries the document size when
// known (callers pass 0 otherwise, logged as "-").
func FormatCLF(r Request, status, size int) string {
	sz := "-"
	if size > 0 {
		sz = fmt.Sprintf("%d", size)
	}
	path := r.URL
	if i := strings.IndexByte(path, '/'); i >= 0 {
		path = path[i:]
	} else {
		path = "/"
	}
	return fmt.Sprintf("%s - %s [%s] \"GET %s HTTP/1.1\" %d %s",
		hostOf(r.URL), r.User, r.Time.Format(clfTimeLayout), path, status, sz)
}

func hostOf(url string) string {
	if i := strings.IndexByte(url, '/'); i >= 0 {
		return url[:i]
	}
	return url
}

// WriteLog writes the workload as a Common Log Format access-log.
func WriteLog(w io.Writer, reqs []Request) error {
	bw := bufio.NewWriter(w)
	for _, r := range reqs {
		if _, err := fmt.Fprintln(bw, FormatCLF(r, 200, 0)); err != nil {
			return fmt.Errorf("trace: write log: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("trace: flush log: %w", err)
	}
	return nil
}

// ParseCLF parses one Common Log Format line into a Request. Dept/Item/Tick
// are not recoverable from a log line and are left zero; use a Site's
// ParseURL to resolve them.
func ParseCLF(line string) (Request, error) {
	var r Request
	fail := func(what string) (Request, error) {
		return Request{}, fmt.Errorf("trace: parse CLF line: bad %s in %q", what, line)
	}

	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 4 {
		return fail("field count")
	}
	host, user := fields[0], fields[2]

	lb := strings.IndexByte(line, '[')
	rb := strings.IndexByte(line, ']')
	if lb < 0 || rb < lb {
		return fail("timestamp brackets")
	}
	ts, err := time.Parse(clfTimeLayout, line[lb+1:rb])
	if err != nil {
		return fail("timestamp")
	}

	lq := strings.IndexByte(line, '"')
	rq := strings.LastIndexByte(line, '"')
	if lq < 0 || rq <= lq {
		return fail("request quotes")
	}
	reqParts := strings.Split(line[lq+1:rq], " ")
	if len(reqParts) < 2 {
		return fail("request line")
	}

	r.Time = ts
	r.User = user
	r.URL = host + reqParts[1]
	return r, nil
}

// ReadLog parses a Common Log Format access-log.
func ReadLog(rd io.Reader) ([]Request, error) {
	var out []Request
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		r, err := ParseCLF(line)
		if err != nil {
			return nil, err
		}
		r.Seq = len(out)
		out = append(out, r)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read log: %w", err)
	}
	return out, nil
}

// SiteWorkload bundles a site with its workload configuration — one row of
// Table II.
type SiteWorkload struct {
	Label string
	Site  *origin.Site
	Load  Config
}

// PaperSites returns the three synthetic site/workload pairs calibrated to
// Table II: request counts match exactly (16407, 1476, 7460) and mean
// document sizes land in the 30-50 KB band so Direct KB comes out at the
// paper's scale. scale in (0,1] shrinks the request counts proportionally
// for cheaper runs.
func PaperSites(scale float64) []SiteWorkload {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	n := func(requests int) int {
		v := int(float64(requests) * scale)
		if v < 1 {
			v = 1
		}
		return v
	}
	// User population scales with the trace so the per-user warmup cost
	// (first contact with each class is a full response plus a base fetch)
	// stays a constant fraction of the workload at any scale.
	u := func(users int) int {
		v := int(float64(users) * scale)
		// Anonymization needs several distinct non-owner users per class;
		// keep the population comfortably above that at any scale.
		if v < 12 {
			v = 12
		}
		return v
	}
	return []SiteWorkload{
		{
			Label: "site1",
			Site: origin.NewSite(origin.Config{
				Host:  "www.site1.com",
				Style: origin.StylePathSegments,
				Depts: []origin.Dept{
					{Name: "news", Items: 60},
					{Name: "markets", Items: 40},
					{Name: "sports", Items: 40},
				},
				TemplateBytes: 42000,
				ItemBytes:     2500,
				ChurnBytes:    1200,
				Personalized:  true,
				Seed:          101,
			}),
			Load: Config{Requests: n(16407), Users: u(200), ZipfS: 0.9, TickEvery: 25, Seed: 11},
		},
		{
			Label: "site2",
			Site: origin.NewSite(origin.Config{
				Host:  "www.site2.com",
				Style: origin.StyleQueryHint,
				Depts: []origin.Dept{
					{Name: "laptops", Items: 30},
					{Name: "desktops", Items: 30},
				},
				TemplateBytes: 31000,
				ItemBytes:     2000,
				ChurnBytes:    800,
				Seed:          202,
			}),
			Load: Config{Requests: n(1476), Users: u(60), ZipfS: 0.8, TickEvery: 20, Seed: 22},
		},
		{
			Label: "site3",
			Site: origin.NewSite(origin.Config{
				Host:  "www.site3.com",
				Style: origin.StylePathHint,
				Depts: []origin.Dept{
					{Name: "portal", Items: 25},
					{Name: "finance", Items: 25},
					{Name: "weather", Items: 25},
				},
				TemplateBytes: 29000,
				ItemBytes:     1800,
				ChurnBytes:    700,
				Personalized:  true,
				Seed:          303,
			}),
			Load: Config{Requests: n(7460), Users: u(120), ZipfS: 1.0, TickEvery: 30, Seed: 33},
		},
	}
}
