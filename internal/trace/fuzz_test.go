package trace

import "testing"

// FuzzParseCLF hardens the access-log parser against arbitrary lines.
func FuzzParseCLF(f *testing.F) {
	f.Add(`www.t.com - user007 [01/Jul/2002:12:00:00 +0000] "GET /a/3 HTTP/1.1" 200 123`)
	f.Add(`host - user [bad] "GET / HTTP/1.1" 200 -`)
	f.Add("")
	f.Add(`[ ] " "`)
	f.Fuzz(func(t *testing.T, line string) {
		r, err := ParseCLF(line)
		if err == nil && r.URL == "" {
			t.Fatal("accepted a line without a URL")
		}
	})
}
