package trace

import (
	"bytes"
	"math"
	"math/rand/v2"
	"strings"
	"testing"
	"time"

	"cbde/internal/origin"
)

func testSite() *origin.Site {
	return origin.NewSite(origin.Config{
		Host:          "www.t.com",
		Style:         origin.StylePathSegments,
		Depts:         []origin.Dept{{Name: "a", Items: 20}, {Name: "b", Items: 20}},
		TemplateBytes: 2000,
		ItemBytes:     300,
		ChurnBytes:    100,
		Seed:          9,
	})
}

func TestGenerateBasics(t *testing.T) {
	site := testSite()
	reqs := Generate(site, Config{Requests: 500, Users: 10, TickEvery: 50, Seed: 1})
	if len(reqs) != 500 {
		t.Fatalf("got %d requests, want 500", len(reqs))
	}
	for i, r := range reqs {
		if r.Seq != i {
			t.Fatalf("request %d has Seq %d", i, r.Seq)
		}
		if r.Dept != "a" && r.Dept != "b" {
			t.Fatalf("request %d has unknown dept %q", i, r.Dept)
		}
		if r.Item < 0 || r.Item >= 20 {
			t.Fatalf("request %d item out of range: %d", i, r.Item)
		}
		if !strings.HasPrefix(r.URL, "www.t.com/") {
			t.Fatalf("request %d URL %q lacks host", i, r.URL)
		}
		// URL must resolve back to (dept, item).
		dept, item, err := site.ParseURL(r.URL)
		if err != nil || dept != r.Dept || item != r.Item {
			t.Fatalf("request %d URL does not round-trip: %v", i, err)
		}
	}
	// Ticks advance on the configured cadence.
	if reqs[0].Tick != 0 || reqs[499].Tick != 9 {
		t.Errorf("ticks = %d..%d, want 0..9", reqs[0].Tick, reqs[499].Tick)
	}
	// Timestamps are monotone.
	for i := 1; i < len(reqs); i++ {
		if !reqs[i].Time.After(reqs[i-1].Time) {
			t.Fatalf("timestamps not monotone at %d", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	site := testSite()
	a := Generate(site, Config{Requests: 100, Seed: 7})
	b := Generate(site, Config{Requests: 100, Seed: 7})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d differs between runs", i)
		}
	}
	c := Generate(site, Config{Requests: 100, Seed: 8})
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical workloads")
	}
}

func TestZipfSkew(t *testing.T) {
	site := testSite()
	reqs := Generate(site, Config{Requests: 5000, ZipfS: 1.0, Seed: 3})
	counts := map[string]int{}
	for _, r := range reqs {
		counts[r.URL]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	mean := float64(len(reqs)) / float64(len(counts))
	if float64(max) < 3*mean {
		t.Errorf("max document count %d not skewed vs mean %.1f; Zipf broken", max, mean)
	}
}

func TestZipfUniformWhenSNearZero(t *testing.T) {
	z := newZipf(10, 1e-9)
	rng := rand.New(rand.NewPCG(1, 1))
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		counts[z.sample(rng)]++
	}
	for i, c := range counts {
		if math.Abs(float64(c)-1000) > 200 {
			t.Errorf("rank %d count %d, want ~1000 for uniform", i, c)
		}
	}
}

func TestCLFRoundTrip(t *testing.T) {
	site := testSite()
	reqs := Generate(site, Config{Requests: 50, Seed: 5})

	var buf bytes.Buffer
	if err := WriteLog(&buf, reqs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(reqs) {
		t.Fatalf("read %d requests, want %d", len(got), len(reqs))
	}
	for i := range got {
		if got[i].URL != reqs[i].URL {
			t.Errorf("request %d URL = %q, want %q", i, got[i].URL, reqs[i].URL)
		}
		if got[i].User != reqs[i].User {
			t.Errorf("request %d user = %q, want %q", i, got[i].User, reqs[i].User)
		}
		if !got[i].Time.Equal(reqs[i].Time) {
			t.Errorf("request %d time = %v, want %v", i, got[i].Time, reqs[i].Time)
		}
	}
}

func TestFormatCLFShape(t *testing.T) {
	r := Request{
		URL:  "www.t.com/a/3",
		User: "user007",
		Time: time.Date(2002, 7, 1, 12, 0, 0, 0, time.UTC),
	}
	line := FormatCLF(r, 200, 12345)
	want := `www.t.com - user007 [01/Jul/2002:12:00:00 +0000] "GET /a/3 HTTP/1.1" 200 12345`
	if line != want {
		t.Errorf("FormatCLF = %q\nwant        %q", line, want)
	}
	if got := FormatCLF(r, 200, 0); !strings.HasSuffix(got, " -") {
		t.Errorf("size 0 should log '-': %q", got)
	}
}

func TestParseCLFErrors(t *testing.T) {
	bad := []string{
		"",
		"too few fields",
		`host - user no-brackets "GET / HTTP/1.1" 200 1`,
		`host - user [bad-time] "GET / HTTP/1.1" 200 1`,
		`host - user [01/Jul/2002:12:00:00 +0000] no-quotes 200 1`,
		`host - user [01/Jul/2002:12:00:00 +0000] "GETONLY" 200 1`,
	}
	for _, line := range bad {
		if _, err := ParseCLF(line); err == nil {
			t.Errorf("ParseCLF(%q): expected error", line)
		}
	}
}

func TestReadLogSkipsBlankLines(t *testing.T) {
	in := strings.NewReader("\n" + FormatCLF(Request{URL: "h/x", User: "u", Time: time.Now()}, 200, 1) + "\n\n")
	got, err := ReadLog(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Errorf("got %d requests, want 1", len(got))
	}
}

func TestPaperSitesCalibration(t *testing.T) {
	sites := PaperSites(1)
	if len(sites) != 3 {
		t.Fatalf("got %d sites, want 3", len(sites))
	}
	wantReqs := []int{16407, 1476, 7460} // Table II request counts
	for i, sw := range sites {
		if sw.Load.Requests != wantReqs[i] {
			t.Errorf("%s: requests = %d, want %d", sw.Label, sw.Load.Requests, wantReqs[i])
		}
		// Mean document size must land in the paper's 30-50 KB band.
		doc, err := sw.Site.Render(sw.Site.Depts()[0].Name, 0, "user001", 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(doc) < 28000 || len(doc) > 55000 {
			t.Errorf("%s: document size %d outside the 30-50KB band", sw.Label, len(doc))
		}
	}
}

func TestPaperSitesScale(t *testing.T) {
	sites := PaperSites(0.1)
	if got := sites[0].Load.Requests; got != 1640 {
		t.Errorf("scaled requests = %d, want 1640", got)
	}
	// Invalid scales fall back to 1.
	if got := PaperSites(-1)[0].Load.Requests; got != 16407 {
		t.Errorf("scale -1 requests = %d, want 16407", got)
	}
	if got := PaperSites(2)[0].Load.Requests; got != 16407 {
		t.Errorf("scale 2 requests = %d, want 16407", got)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Requests != 1000 || c.Users != 50 || c.ZipfS != 0.9 || c.TickEvery != 20 {
		t.Errorf("unexpected defaults: %+v", c)
	}
	if c.Start.IsZero() || c.Interval != time.Second {
		t.Errorf("time defaults missing: %+v", c)
	}
}
