package flightrec

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"cbde/internal/metrics"
	"cbde/internal/obs"
	"cbde/internal/testutil"
)

func ctxN(lo uint64) obs.TraceContext {
	return obs.TraceContext{ID: obs.TraceID{Lo: lo}, Origin: "n0"}
}

func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	r.Record(Record{Outcome: OutcomeDelta})
	if got := r.Snapshot(Filter{}); got != nil {
		t.Fatalf("nil Snapshot = %v", got)
	}
	if n, err := r.WriteNDJSON(&strings.Builder{}, Filter{}); n != 0 || err != nil {
		t.Fatalf("nil WriteNDJSON = %d, %v", n, err)
	}
	if r.Len() != 0 || r.Node() != "" {
		t.Fatal("nil accessors not zero")
	}
}

func TestTailSamplingPolicy(t *testing.T) {
	r := New("n0", 16, 10*time.Millisecond)
	spans := [obs.NumStages]obs.Span{}
	spans[obs.StageEncode] = obs.Span{Dur: time.Millisecond, Bytes: 42}

	// Fast and unremarkable: compact only, spans dropped.
	r.Record(Record{Trace: ctxN(1), Outcome: OutcomeDelta, Total: time.Millisecond, Spans: spans})
	// Slow: sampled, spans kept.
	r.Record(Record{Trace: ctxN(2), Outcome: OutcomeDelta, Total: 50 * time.Millisecond, Spans: spans})
	// Fast but flagged by the caller: sampled.
	r.Record(Record{Trace: ctxN(3), Outcome: OutcomeFull, Total: time.Millisecond, Reasons: ReasonForwardError, Spans: spans})

	recs := r.Snapshot(Filter{})
	if len(recs) != 3 {
		t.Fatalf("got %d records", len(recs))
	}
	byLo := make(map[uint64]Record)
	for _, rec := range recs {
		byLo[rec.Trace.ID.Lo] = rec
	}
	if fast := byLo[1]; fast.Sampled || fast.Spans[obs.StageEncode].Bytes != 0 {
		t.Errorf("fast record sampled=%v spans=%+v, want compact", fast.Sampled, fast.Spans[obs.StageEncode])
	}
	if slow := byLo[2]; !slow.Sampled || slow.Reasons&ReasonSlow == 0 || slow.Spans[obs.StageEncode].Bytes != 42 {
		t.Errorf("slow record = %+v, want sampled with spans", slow)
	}
	if flagged := byLo[3]; !flagged.Sampled || flagged.Reasons&ReasonForwardError == 0 {
		t.Errorf("flagged record = %+v, want sampled", flagged)
	}
	if rec := byLo[2]; rec.Node != "n0" {
		t.Errorf("node = %q", rec.Node)
	}

	// Threshold 0 samples everything.
	all := New("n0", 16, 0)
	all.Record(Record{Trace: ctxN(9), Outcome: OutcomeDelta, Total: time.Nanosecond})
	if recs := all.Snapshot(Filter{}); len(recs) != 1 || !recs[0].Sampled {
		t.Errorf("threshold-0 record not sampled: %+v", recs)
	}
}

func TestRingWraparound(t *testing.T) {
	r := New("n0", 16, 0) // 16 slots
	for i := 1; i <= 40; i++ {
		r.Record(Record{Trace: ctxN(uint64(i)), Outcome: OutcomeDelta, Total: time.Duration(i) * time.Millisecond})
	}
	recs := r.Snapshot(Filter{})
	if len(recs) != 16 {
		t.Fatalf("after wrap got %d records, want 16", len(recs))
	}
	// Newest first: traces 40 down to 25 survive.
	for i, rec := range recs {
		if want := uint64(40 - i); rec.Trace.ID.Lo != want {
			t.Fatalf("recs[%d].Trace.Lo = %d, want %d", i, rec.Trace.ID.Lo, want)
		}
	}
}

func TestSnapshotFilters(t *testing.T) {
	r := New("n0", 32, 0)
	r.Record(Record{Trace: ctxN(1), Class: "a", Outcome: OutcomeDelta, Total: 5 * time.Millisecond})
	r.Record(Record{Trace: ctxN(2), Class: "b", Outcome: OutcomeFull, Total: 50 * time.Millisecond})
	r.Record(Record{Trace: ctxN(3), Class: "a", Outcome: OutcomeForwarded, Total: 500 * time.Millisecond})

	if got := r.Snapshot(Filter{Class: "a"}); len(got) != 2 {
		t.Errorf("class filter: %d records", len(got))
	}
	if got := r.Snapshot(Filter{Min: 40 * time.Millisecond}); len(got) != 2 {
		t.Errorf("min filter: %d records", len(got))
	}
	if got := r.Snapshot(Filter{Outcome: OutcomeFull}); len(got) != 1 || got[0].Trace.ID.Lo != 2 {
		t.Errorf("outcome filter: %+v", got)
	}
	if got := r.Snapshot(Filter{Trace: obs.TraceID{Lo: 3}}); len(got) != 1 || got[0].Class != "a" {
		t.Errorf("trace filter: %+v", got)
	}
	if got := r.Snapshot(Filter{Limit: 1}); len(got) != 1 || got[0].Trace.ID.Lo != 3 {
		t.Errorf("limit filter: %+v", got)
	}
}

func TestWriteNDJSON(t *testing.T) {
	r := New("n1", 16, 0)
	spans := [obs.NumStages]obs.Span{}
	spans[obs.StageGzip] = obs.Span{Dur: 123 * time.Microsecond, Bytes: 77}
	r.Record(Record{
		Trace:   obs.TraceContext{ID: obs.TraceID{Hi: 0xab, Lo: 0xcd}, Origin: "n0", Hop: 1},
		Class:   "www.shop.com/laptops",
		Outcome: OutcomeDelta,
		Start:   1_000_000,
		Total:   3 * time.Millisecond,
		DocBytes: 1000, WireBytes: 80,
		Spans: spans,
	})
	var sb strings.Builder
	n, err := r.WriteNDJSON(&sb, Filter{})
	if err != nil || n != 1 {
		t.Fatalf("WriteNDJSON = %d, %v", n, err)
	}
	line := strings.TrimSpace(sb.String())
	var m map[string]any
	if err := json.Unmarshal([]byte(line), &m); err != nil {
		t.Fatalf("record is not JSON: %v\n%s", err, line)
	}
	if m["trace"] != "00000000000000ab00000000000000cd" {
		t.Errorf("trace = %v", m["trace"])
	}
	if m["node"] != "n1" || m["origin"] != "n0" || m["hop"] != float64(1) {
		t.Errorf("node/origin/hop = %v/%v/%v", m["node"], m["origin"], m["hop"])
	}
	if m["outcome"] != "delta" || m["class"] != "www.shop.com/laptops" {
		t.Errorf("outcome/class = %v/%v", m["outcome"], m["class"])
	}
	if m["sampled"] != true {
		t.Errorf("sampled = %v", m["sampled"])
	}
	sp, ok := m["spans"].([]any)
	if !ok || len(sp) != 1 {
		t.Fatalf("spans = %v", m["spans"])
	}
	span := sp[0].(map[string]any)
	if span["stage"] != "gzip" || span["us"] != float64(123) || span["bytes"] != float64(77) {
		t.Errorf("span = %v", span)
	}
}

func TestOutcomeRoundTrip(t *testing.T) {
	for o := OutcomeDelta; o < numOutcomes; o++ {
		back, ok := ParseOutcome(o.String())
		if !ok || back != o {
			t.Errorf("ParseOutcome(%q) = %v, %v", o.String(), back, ok)
		}
	}
	if _, ok := ParseOutcome("nope"); ok {
		t.Error("ParseOutcome accepted garbage")
	}
	if _, ok := ParseOutcome("unknown"); ok {
		t.Error("ParseOutcome accepted the unknown sentinel")
	}
}

// TestRecordAllocFree enforces the acceptance criterion: summary-only
// recording on the warm path adds zero allocations per request.
func TestRecordAllocFree(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	r := New("n0", 1024, time.Hour) // nothing crosses the threshold
	rec := Record{
		Trace:   ctxN(7),
		Class:   "www.shop.com/laptops",
		Outcome: OutcomeDelta,
		Start:   12345,
		Total:   time.Millisecond,
		DocBytes: 4096, WireBytes: 128,
	}
	allocs := testing.AllocsPerRun(1000, func() {
		r.Record(rec)
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %.1f per op, want 0", allocs)
	}
}

// TestConcurrentRecordSnapshot is the -race stress test: writers wrapping
// the ring many times over while readers snapshot and serialize it.
func TestConcurrentRecordSnapshot(t *testing.T) {
	r := New("n0", 64, 5*time.Millisecond)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			spans := [obs.NumStages]obs.Span{}
			spans[obs.StageEncode] = obs.Span{Dur: time.Millisecond, Bytes: int64(w)}
			for i := 0; i < 2000; i++ {
				r.Record(Record{
					Trace:   ctxN(uint64(w*10000 + i)),
					Outcome: OutcomeDelta,
					Total:   time.Duration(i%20) * time.Millisecond,
					Spans:   spans,
				})
			}
		}(w)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				recs := r.Snapshot(Filter{})
				for _, rec := range recs {
					// Invariant: unsampled records must have been stripped
					// of span detail; a torn read would surface here.
					if !rec.Sampled && rec.Spans[obs.StageEncode].Dur != 0 {
						t.Error("unsampled record kept spans (torn read?)")
						return
					}
				}
				var sb strings.Builder
				if _, err := r.WriteNDJSON(&sb, Filter{SampledOnly: true}); err != nil {
					t.Errorf("WriteNDJSON: %v", err)
					return
				}
			}
		}()
	}
	// Let writers finish, then stop readers.
	done := make(chan struct{})
	go func() {
		defer close(done)
		wg.Wait()
	}()
	time.Sleep(50 * time.Millisecond)
	close(stop)
	<-done

	if got := len(r.Snapshot(Filter{})); got != 64 {
		t.Fatalf("ring holds %d records after stress, want 64", got)
	}
}

func TestRegisterMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	r := New("n0", 16, 0)
	r.RegisterMetrics(reg)
	r.Record(Record{Trace: ctxN(1), Outcome: OutcomeDelta})
	var sb strings.Builder
	if err := reg.Expose(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"cbde_flightrec_records_total 1",
		"cbde_flightrec_sampled_total 1",
		"cbde_flightrec_ring_size 16",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}
