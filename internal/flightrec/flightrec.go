// Package flightrec is the delta-server's always-on flight recorder: a
// fixed-size ring buffer that keeps a compact record of every recent
// request and tail-samples full per-stage span detail for the requests
// worth explaining — the slow ones, the forward errors, the disk fault-ins,
// and the full-response degradations. It is the retention half of the
// distributed tracing layer: the trace context (internal/obs) gives every
// hop of a request one ID, and the recorder is where a node keeps what it
// saw under that ID so /_cbde/trace can serve it back.
//
// Recording is designed for the serving hot path:
//
//   - Zero allocations per record. The caller passes a Record by value; it
//     is copied into a pre-allocated slot. AllocsPerRun-enforced.
//   - No cross-request contention. Writers claim slots with one atomic
//     fetch-add; the per-slot mutex only serializes a writer against a
//     concurrent reader (or a lapped writer) on that one slot, so
//     concurrent requests never touch the same lock.
//
// Only the standard library is used.
package flightrec

import (
	"fmt"
	"io"
	"math/bits"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"cbde/internal/metrics"
	"cbde/internal/obs"
)

// Outcome classifies how a request left the server, mirroring the
// delta-server's request-log outcomes.
type Outcome uint8

const (
	// OutcomeUnknown is the zero value; records never carry it.
	OutcomeUnknown Outcome = iota
	// OutcomeDelta is a delta response.
	OutcomeDelta
	// OutcomeFull is a full-document response (no usable base).
	OutcomeFull
	// OutcomePassthrough is a response to a non-delta-capable client.
	OutcomePassthrough
	// OutcomeForwarded means the request was proxied to the owning peer.
	OutcomeForwarded
	// OutcomeRedirected means the client was 307-redirected to the owner.
	OutcomeRedirected
	// OutcomeOriginError means the origin fetch failed.
	OutcomeOriginError
	// OutcomeEngineError means the engine rejected the request.
	OutcomeEngineError

	numOutcomes
)

var outcomeNames = [numOutcomes]string{
	"unknown", "delta", "full", "passthrough",
	"forwarded", "redirected", "origin-error", "engine-error",
}

// String implements fmt.Stringer.
func (o Outcome) String() string {
	if o < numOutcomes {
		return outcomeNames[o]
	}
	return fmt.Sprintf("Outcome(%d)", uint8(o))
}

// ParseOutcome maps an outcome name (as emitted in NDJSON and accepted by
// the ?outcome= filter) back to its value; false for unknown names.
func ParseOutcome(s string) (Outcome, bool) {
	for o := OutcomeDelta; o < numOutcomes; o++ {
		if outcomeNames[o] == s {
			return o, true
		}
	}
	return OutcomeUnknown, false
}

// Reason is a bitmask of why a record was tail-sampled.
type Reason uint8

const (
	// ReasonSlow: total latency at or over the sampling threshold.
	ReasonSlow Reason = 1 << iota
	// ReasonForwardError: the intra-tier forward failed and the request
	// fell back to local serving.
	ReasonForwardError
	// ReasonFaultIn: the request paid a disk fault-in.
	ReasonFaultIn
	// ReasonDegraded: a delta-capable client got a full response.
	ReasonDegraded
	// ReasonError: the request errored (origin or engine).
	ReasonError
)

var reasonNames = []struct {
	bit  Reason
	name string
}{
	{ReasonSlow, "slow"},
	{ReasonForwardError, "forward-error"},
	{ReasonFaultIn, "fault-in"},
	{ReasonDegraded, "degraded"},
	{ReasonError, "error"},
}

// Record is one request's flight-recorder entry. The compact fields are
// always kept; Spans survive only on tail-sampled records.
type Record struct {
	// Seq is the recorder-assigned sequence number (1-based), set by
	// Record; newer records have higher Seq.
	Seq uint64
	// Trace is the request's distributed trace context (zero if none).
	Trace obs.TraceContext
	// Node is the recording node's ID.
	Node string
	// Class is the document's class ID, if resolved.
	Class string
	// Outcome classifies the response.
	Outcome Outcome
	// Start is the request arrival time, Unix nanoseconds.
	Start int64
	// Total is the server-side wall time for the request.
	Total time.Duration
	// DocBytes and WireBytes are the document snapshot size and the bytes
	// actually shipped to the client.
	DocBytes, WireBytes int64
	// Reasons carries the caller-observed sampling triggers (forward
	// error, fault-in, degradation, error); Record adds ReasonSlow.
	Reasons Reason
	// Sampled reports whether full span detail was retained; set by Record.
	Sampled bool
	// Spans is the per-stage detail from the engine trace. Zeroed by
	// Record on unsampled entries so the ring holds detail only for
	// outliers.
	Spans [obs.NumStages]obs.Span
}

// slot is one ring entry. The mutex is per-slot, so writers of different
// requests never contend; it exists to keep a reader (or a lapped writer)
// from seeing a torn multi-word record.
type slot struct {
	mu sync.Mutex
	r  Record
}

// Recorder is the ring buffer. Create one with New; a nil *Recorder is
// valid and records nothing.
type Recorder struct {
	node      string
	threshold time.Duration
	mask      uint64
	cursor    atomic.Uint64
	slots     []slot

	recorded atomic.Uint64
	sampled  atomic.Uint64
}

// New returns a recorder for node with the given ring size (rounded up to a
// power of two, minimum 16) and tail-sampling latency threshold. A
// threshold <= 0 samples every request — the CI smoke setting.
func New(node string, size int, threshold time.Duration) *Recorder {
	if size < 16 {
		size = 16
	}
	n := 1 << bits.Len(uint(size-1)) // next power of two
	return &Recorder{
		node:      node,
		threshold: threshold,
		mask:      uint64(n - 1),
		slots:     make([]slot, n),
	}
}

// Node returns the recorder's node ID ("" on nil).
func (r *Recorder) Node() string {
	if r == nil {
		return ""
	}
	return r.node
}

// Threshold returns the tail-sampling latency threshold.
func (r *Recorder) Threshold() time.Duration {
	if r == nil {
		return 0
	}
	return r.threshold
}

// Len returns the ring capacity (0 on nil).
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.slots)
}

// Record stores one request record, deciding tail sampling: span detail is
// kept when the request crossed the latency threshold (or the threshold is
// <= 0) or the caller flagged a Reason; otherwise Spans are zeroed and only
// the compact summary survives. Safe for concurrent use; allocation-free;
// no-op on a nil recorder.
func (r *Recorder) Record(rec Record) {
	if r == nil {
		return
	}
	rec.Node = r.node
	if rec.Total >= r.threshold {
		rec.Reasons |= ReasonSlow
	}
	rec.Sampled = rec.Reasons != 0
	if !rec.Sampled {
		rec.Spans = [obs.NumStages]obs.Span{}
	}
	seq := r.cursor.Add(1)
	rec.Seq = seq
	s := &r.slots[(seq-1)&r.mask]
	s.mu.Lock()
	s.r = rec
	s.mu.Unlock()
	r.recorded.Add(1)
	if rec.Sampled {
		r.sampled.Add(1)
	}
}

// Filter selects records for Snapshot and WriteNDJSON. The zero Filter
// matches everything.
type Filter struct {
	// Class, when non-empty, matches records of that class only.
	Class string
	// Min drops records faster than this total latency.
	Min time.Duration
	// Outcome, when not OutcomeUnknown, matches that outcome only.
	Outcome Outcome
	// Trace, when non-zero, matches records of that trace ID only.
	Trace obs.TraceID
	// SampledOnly keeps only tail-sampled records.
	SampledOnly bool
	// Limit caps the number of records returned (newest first); <= 0
	// means no cap.
	Limit int
}

func (f Filter) match(rec *Record) bool {
	if rec.Seq == 0 || rec.Outcome == OutcomeUnknown {
		return false // never written
	}
	if f.Class != "" && rec.Class != f.Class {
		return false
	}
	if rec.Total < f.Min {
		return false
	}
	if f.Outcome != OutcomeUnknown && rec.Outcome != f.Outcome {
		return false
	}
	if !f.Trace.IsZero() && rec.Trace.ID != f.Trace {
		return false
	}
	if f.SampledOnly && !rec.Sampled {
		return false
	}
	return true
}

// Snapshot copies out the matching records, newest first. The copy is
// slot-by-slot, so records written during the scan may be missed or appear
// once — the ring is a diagnostic window, not a log.
func (r *Recorder) Snapshot(f Filter) []Record {
	if r == nil {
		return nil
	}
	cur := r.cursor.Load()
	n := uint64(len(r.slots))
	if cur < n {
		n = cur
	}
	var out []Record
	for i := uint64(0); i < n; i++ {
		s := &r.slots[(cur-1-i)&r.mask]
		s.mu.Lock()
		rec := s.r
		s.mu.Unlock()
		if !f.match(&rec) {
			continue
		}
		out = append(out, rec)
		if f.Limit > 0 && len(out) >= f.Limit {
			break
		}
	}
	return out
}

// WriteNDJSON streams the matching records, newest first, one JSON object
// per line, and returns how many it wrote. The encoding is hand-rolled
// (strconv, no reflection) so a scrape of a full ring stays cheap.
func (r *Recorder) WriteNDJSON(w io.Writer, f Filter) (int, error) {
	recs := r.Snapshot(f)
	buf := make([]byte, 0, 512)
	for _, rec := range recs {
		buf = appendRecordJSON(buf[:0], &rec)
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return 0, err
		}
	}
	return len(recs), nil
}

// appendRecordJSON renders one record as a single-line JSON object.
func appendRecordJSON(b []byte, rec *Record) []byte {
	b = append(b, `{"seq":`...)
	b = strconv.AppendUint(b, rec.Seq, 10)
	if !rec.Trace.IsZero() {
		b = append(b, `,"trace":"`...)
		b = append(b, rec.Trace.ID.String()...)
		b = append(b, `","origin":`...)
		b = strconv.AppendQuote(b, rec.Trace.Origin)
		b = append(b, `,"hop":`...)
		b = strconv.AppendInt(b, int64(rec.Trace.Hop), 10)
	}
	b = append(b, `,"node":`...)
	b = strconv.AppendQuote(b, rec.Node)
	if rec.Class != "" {
		b = append(b, `,"class":`...)
		b = strconv.AppendQuote(b, rec.Class)
	}
	b = append(b, `,"outcome":"`...)
	b = append(b, rec.Outcome.String()...)
	b = append(b, `","startUnixNano":`...)
	b = strconv.AppendInt(b, rec.Start, 10)
	b = append(b, `,"totalUs":`...)
	b = strconv.AppendInt(b, rec.Total.Microseconds(), 10)
	b = append(b, `,"docBytes":`...)
	b = strconv.AppendInt(b, rec.DocBytes, 10)
	b = append(b, `,"wireBytes":`...)
	b = strconv.AppendInt(b, rec.WireBytes, 10)
	b = append(b, `,"sampled":`...)
	b = strconv.AppendBool(b, rec.Sampled)
	if rec.Reasons != 0 {
		b = append(b, `,"reasons":[`...)
		first := true
		for _, rn := range reasonNames {
			if rec.Reasons&rn.bit == 0 {
				continue
			}
			if !first {
				b = append(b, ',')
			}
			first = false
			b = append(b, '"')
			b = append(b, rn.name...)
			b = append(b, '"')
		}
		b = append(b, ']')
	}
	if rec.Sampled {
		b = append(b, `,"spans":[`...)
		first := true
		for st, sp := range rec.Spans {
			if sp.Dur == 0 && sp.Bytes == 0 {
				continue
			}
			if !first {
				b = append(b, ',')
			}
			first = false
			b = append(b, `{"stage":"`...)
			b = append(b, obs.Stage(st).String()...)
			b = append(b, `","us":`...)
			b = strconv.AppendInt(b, sp.Dur.Microseconds(), 10)
			b = append(b, `,"bytes":`...)
			b = strconv.AppendInt(b, sp.Bytes, 10)
			b = append(b, '}')
		}
		b = append(b, ']')
	}
	b = append(b, '}')
	return b
}

// RegisterMetrics contributes the recorder's counters to a registry:
// records written, records tail-sampled, and the ring capacity.
func (r *Recorder) RegisterMetrics(reg *metrics.Registry) {
	if r == nil || reg == nil {
		return
	}
	reg.RegisterCollector(func(c *metrics.Collection) {
		c.Counter("cbde_flightrec_records_total",
			"Requests written to the flight-recorder ring.",
			nil, float64(r.recorded.Load()))
		c.Counter("cbde_flightrec_sampled_total",
			"Flight-recorder records retained with full span detail.",
			nil, float64(r.sampled.Load()))
		c.Gauge("cbde_flightrec_ring_size",
			"Flight-recorder ring capacity in records.",
			nil, float64(len(r.slots)))
	})
}
