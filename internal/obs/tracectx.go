// Distributed trace context: the identity one client request keeps while it
// crosses delta-server tier nodes. The context is minted by the first node a
// request lands on and carried on the X-CBDE-Trace header through cluster
// forwards, 307 redirects, and peer-to-peer base fetches, so every node's
// flight-recorder records for one request share a trace ID and a finished
// trace can be joined back into the full cross-node timeline.
//
// The wire form is deliberately tiny and parseable without allocation:
//
//	<32 hex digits>;o=<origin-node-id>;h=<hop>
//
// e.g. "4bf92f3577b34da6a3ce929d0e0e4736;o=n0;h=1". Hop counts forwarding
// steps (0 at the origin node); origin names the node that minted the ID so
// joined traces can be rooted even when the minting node's records rotated
// out of its ring.
package obs

import (
	"math/rand/v2"
	"strconv"
	"strings"
)

// TraceID is a 128-bit request-scoped identifier, random per trace.
type TraceID struct {
	Hi, Lo uint64
}

// NewTraceID mints a random, non-zero 128-bit trace ID.
func NewTraceID() TraceID {
	id := TraceID{Hi: rand.Uint64(), Lo: rand.Uint64()}
	if id.IsZero() {
		// Vanishingly unlikely, but a zero ID means "no trace" everywhere
		// else, so it must never be minted.
		id.Lo = 1
	}
	return id
}

// IsZero reports whether the ID is the zero value ("no trace").
func (id TraceID) IsZero() bool { return id.Hi == 0 && id.Lo == 0 }

// String renders the ID as 32 lowercase hex digits.
func (id TraceID) String() string {
	var buf [32]byte
	id.appendHex(buf[:0])
	return string(buf[:])
}

// appendHex appends the 32-digit hex form to dst.
func (id TraceID) appendHex(dst []byte) []byte {
	const hex = "0123456789abcdef"
	for shift := 60; shift >= 0; shift -= 4 {
		dst = append(dst, hex[(id.Hi>>uint(shift))&0xf])
	}
	for shift := 60; shift >= 0; shift -= 4 {
		dst = append(dst, hex[(id.Lo>>uint(shift))&0xf])
	}
	return dst
}

// ParseTraceID parses a 32-hex-digit trace ID, as rendered by
// TraceID.String and carried in NDJSON records and exemplar labels.
func ParseTraceID(s string) (TraceID, bool) {
	return parseTraceID(s)
}

// parseTraceID parses exactly 32 hex digits.
func parseTraceID(s string) (TraceID, bool) {
	if len(s) != 32 {
		return TraceID{}, false
	}
	parseHalf := func(h string) (uint64, bool) {
		var v uint64
		for i := 0; i < len(h); i++ {
			c := h[i]
			var d uint64
			switch {
			case c >= '0' && c <= '9':
				d = uint64(c - '0')
			case c >= 'a' && c <= 'f':
				d = uint64(c-'a') + 10
			case c >= 'A' && c <= 'F':
				d = uint64(c-'A') + 10
			default:
				return 0, false
			}
			v = v<<4 | d
		}
		return v, true
	}
	hi, ok1 := parseHalf(s[:16])
	lo, ok2 := parseHalf(s[16:])
	if !ok1 || !ok2 {
		return TraceID{}, false
	}
	return TraceID{Hi: hi, Lo: lo}, true
}

// TraceContext is the propagated identity of one distributed request. The
// zero value means "no trace context".
type TraceContext struct {
	// ID is the 128-bit trace identifier, shared by every hop.
	ID TraceID
	// Origin is the node ID that minted the trace — the first delta-server
	// the client reached.
	Origin string
	// Hop counts intra-tier forwarding steps: 0 on the origin node, 1 on
	// the node a forward (or peer base fetch) landed on.
	Hop int
}

// IsZero reports whether the context carries no trace.
func (c TraceContext) IsZero() bool { return c.ID.IsZero() }

// Next returns the context the next hop should carry: same ID and origin,
// hop incremented.
func (c TraceContext) Next() TraceContext {
	c.Hop++
	return c
}

// HeaderValue renders the context in X-CBDE-Trace wire form.
func (c TraceContext) HeaderValue() string {
	var b strings.Builder
	b.Grow(32 + len(c.Origin) + 12)
	var idb [32]byte
	b.Write(c.ID.appendHex(idb[:0]))
	b.WriteString(";o=")
	b.WriteString(c.Origin)
	b.WriteString(";h=")
	b.WriteString(strconv.Itoa(c.Hop))
	return b.String()
}

// ParseTraceContext parses an X-CBDE-Trace header value. A malformed value
// yields (zero, false): propagation degrades to a fresh local trace, never
// to an error — the trace layer must not be able to fail a request.
// Parsing allocates nothing (origin is a substring of the input).
func ParseTraceContext(s string) (TraceContext, bool) {
	idPart, rest, ok := strings.Cut(s, ";")
	if !ok {
		return TraceContext{}, false
	}
	id, ok := parseTraceID(idPart)
	if !ok || id.IsZero() {
		return TraceContext{}, false
	}
	originPart, hopPart, ok := strings.Cut(rest, ";")
	if !ok {
		return TraceContext{}, false
	}
	origin, ok := strings.CutPrefix(originPart, "o=")
	if !ok || origin == "" {
		return TraceContext{}, false
	}
	hopStr, ok := strings.CutPrefix(hopPart, "h=")
	if !ok {
		return TraceContext{}, false
	}
	hop, err := strconv.Atoi(hopStr)
	if err != nil || hop < 0 || hop > 255 {
		return TraceContext{}, false
	}
	return TraceContext{ID: id, Origin: origin, Hop: hop}, true
}
