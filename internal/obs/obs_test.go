package obs

import (
	"strings"
	"testing"
	"time"
)

func TestDisabledTracerIsNil(t *testing.T) {
	tr := New(nil)
	if tr.Enabled() {
		t.Fatal("new tracer should start disabled")
	}
	if got := tr.Start(); got != nil {
		t.Fatalf("Start on disabled tracer = %v, want nil", got)
	}
	var nilTracer *Tracer
	if nilTracer.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	if got := nilTracer.Start(); got != nil {
		t.Fatalf("Start on nil tracer = %v, want nil", got)
	}
	nilTracer.SetEnabled(true) // must not panic
}

func TestNilTraceMethodsAreNoOps(t *testing.T) {
	var tr *Trace
	if !tr.Now().IsZero() {
		t.Error("nil trace Now() should be the zero time")
	}
	tr.Record(StageEncode, time.Now(), 100)
	tr.AddBytes(StageGzip, 5)
	tr.Discard()
	if tr.ID() != 0 {
		t.Error("nil trace ID should be 0")
	}
	if tr.Span(StageRoute) != (Span{}) {
		t.Error("nil trace Span should be zero")
	}
	if sum := tr.Finish(); sum != nil {
		t.Errorf("nil trace Finish = %v, want nil", sum)
	}
}

func TestDisabledPathAllocsNothing(t *testing.T) {
	tr := New(nil)
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Start()
		t0 := sp.Now()
		sp.Record(StageRoute, t0, 0)
		sp.Record(StageEncode, t0, 123)
		sp.AddBytes(StageGzip, 17)
		if sum := sp.Finish(); sum != nil {
			t.Fatal("disabled trace produced a summary")
		}
	})
	if allocs != 0 {
		t.Errorf("disabled tracing allocates %.1f objects/op, want 0", allocs)
	}
}

func TestTraceRecordsSpans(t *testing.T) {
	var completed *Summary
	tr := New(nil)
	tr.SetEnabled(true)
	sp := tr.Start()
	if sp == nil {
		t.Fatal("Start returned nil with tracing enabled")
	}
	t0 := sp.Now()
	time.Sleep(time.Millisecond)
	sp.Record(StageEncode, t0, 4096)
	sp.AddBytes(StageEncode, 4)
	sp.Record(StageGzip, sp.Now(), 100)
	sum := sp.Finish()
	if sum == nil {
		t.Fatal("Finish returned nil summary")
	}
	completed = sum
	if completed.ID != 1 {
		t.Errorf("trace ID = %d, want 1", completed.ID)
	}
	enc := completed.Stages[StageEncode]
	if enc.Dur < time.Millisecond {
		t.Errorf("encode span %v, want >= 1ms", enc.Dur)
	}
	if enc.Bytes != 4100 {
		t.Errorf("encode bytes = %d, want 4100", enc.Bytes)
	}
	if completed.Total < enc.Dur {
		t.Errorf("total %v < encode span %v", completed.Total, enc.Dur)
	}
	if route := completed.Stages[StageRoute]; route != (Span{}) {
		t.Errorf("untouched route span = %+v, want zero", route)
	}
}

func TestOnCompleteCallbackAndPooling(t *testing.T) {
	var calls int
	var lastEncode Span
	tr := New(func(sp *Trace) {
		calls++
		lastEncode = sp.Span(StageEncode)
	})
	tr.SetEnabled(true)

	sp := tr.Start()
	sp.Record(StageEncode, sp.Now(), 10)
	sp.Finish()
	if calls != 1 {
		t.Fatalf("onComplete calls = %d, want 1", calls)
	}
	if lastEncode.Bytes != 10 {
		t.Errorf("callback saw encode bytes %d, want 10", lastEncode.Bytes)
	}

	// A discarded trace must not invoke the callback.
	sp = tr.Start()
	sp.Discard()
	if calls != 1 {
		t.Fatalf("Discard invoked onComplete (calls = %d)", calls)
	}

	// A recycled trace starts clean.
	sp = tr.Start()
	if sp.Span(StageEncode) != (Span{}) {
		t.Error("pooled trace carried stale spans")
	}
	if sp.ID() <= 1 {
		t.Errorf("recycled trace ID = %d, want monotonically increasing", sp.ID())
	}
	sp.Finish()
}

func TestStageString(t *testing.T) {
	want := map[Stage]string{
		StageRoute:  "route",
		StageSelect: "select",
		StageAnon:   "anon",
		StageMemo:   "memo",
		StageEncode: "encode",
		StageGzip:   "gzip",
		StageEvict:  "evict",
	}
	for s, name := range want {
		if s.String() != name {
			t.Errorf("Stage(%d).String() = %q, want %q", s, s.String(), name)
		}
	}
	if got := Stage(200).String(); !strings.Contains(got, "200") {
		t.Errorf("out-of-range stage String() = %q", got)
	}
}

func TestSummaryString(t *testing.T) {
	s := Summary{
		ID:    7,
		Total: 1500 * time.Microsecond,
	}
	s.Stages[StageEncode] = Span{Dur: 900 * time.Microsecond, Bytes: 12345}
	out := s.String()
	for _, want := range []string{"total=1.5ms", "encode=900µs[12345B]", "route=0s", "gzip=0s"} {
		if !strings.Contains(out, want) {
			t.Errorf("Summary.String() = %q, missing %q", out, want)
		}
	}
}

func TestConcurrentTraces(t *testing.T) {
	tr := New(func(*Trace) {})
	tr.SetEnabled(true)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 500; i++ {
				sp := tr.Start()
				sp.Record(StageRoute, sp.Now(), 1)
				if i%7 == 0 {
					sp.Discard()
				} else {
					sp.Finish()
				}
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}
