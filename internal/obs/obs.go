// Package obs is the delta-server's lightweight pipeline tracer: it records
// where time and bytes go per request, per stage — route/classify, base-file
// selection, anonymization scan, delta encode, gzip — so the paper's
// per-request transfer accounting (Tables II–IV) can be reproduced live on a
// serving system instead of only in offline harnesses.
//
// The tracer is allocation-conscious by construction:
//
//   - Disabled (the default), Tracer.Start returns nil after one atomic
//     load, and every method on a nil *Trace is a no-op that never calls
//     time.Now. The serving hot path pays nothing and stays inside the
//     engine's AllocsPerRun budgets.
//   - Enabled, traces come from a sync.Pool and stage records live in a
//     fixed-size array, so a steady-state traced request allocates only the
//     Summary it hands back to the caller.
//
// Only the standard library is used.
package obs

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Stage identifies one pipeline stage of core.Engine.Process.
type Stage uint8

const (
	// StageRoute is URL partitioning plus class grouping (Section III).
	StageRoute Stage = iota
	// StageSelect is the base-file selector observation and the base
	// snapshot, taken under the class lock (Section IV).
	StageSelect
	// StageAnon is the anonymization comparison scan (Section V).
	StageAnon
	// StageMemo is the memoized-delta cache consult: the lookup itself
	// plus, for coalesced requests, the wait for the leader's encode.
	// Zero when the cache is disabled or the request misses cold.
	StageMemo
	// StageEncode is the vdelta/VCDIFF delta encode.
	StageEncode
	// StageGzip is delta compression.
	StageGzip
	// StageEvict is store budget maintenance: the prune/evict sweep that
	// runs after the response is built when resident bytes exceed the
	// memory budget. Zero for unbudgeted engines and under-budget requests.
	StageEvict
	// StageForward is the cluster tier's intra-tier hop: the time a
	// non-owning node spends proxying the request to the class owner.
	// Zero for standalone servers and owner-served requests.
	StageForward
	// StageFaultIn is the disk tier's fault-in: reading, verifying, and
	// decoding a spilled class's blob and re-installing it so the request
	// can be served as a delta instead of a full response.
	StageFaultIn

	// NumStages is the number of stages; valid stages are < NumStages.
	NumStages
)

var stageNames = [NumStages]string{"route", "select", "anon", "memo", "encode", "gzip", "evict", "forward", "faultin"}

// String implements fmt.Stringer.
func (s Stage) String() string {
	if s < NumStages {
		return stageNames[s]
	}
	return fmt.Sprintf("Stage(%d)", uint8(s))
}

// Stages lists every stage in pipeline order, for callers that pre-resolve
// per-stage metrics.
func Stages() [NumStages]Stage {
	return [NumStages]Stage{StageRoute, StageSelect, StageAnon, StageMemo, StageEncode, StageGzip, StageEvict, StageForward, StageFaultIn}
}

// Span is the accumulated cost of one stage within one trace.
type Span struct {
	// Dur is the total time spent in the stage.
	Dur time.Duration
	// Bytes is the stage's byte count; what it counts is stage-specific
	// (documents routed, deltas produced, gzip output, ...).
	Bytes int64
}

// Trace records one request's walk through the pipeline. Obtain one from
// Tracer.Start; a nil *Trace is valid and all its methods are no-ops, which
// is how disabled tracing stays free on the hot path.
type Trace struct {
	id     uint64
	ctx    TraceContext
	start  time.Time
	spans  [NumStages]Span
	tracer *Tracer
}

// Now returns the current time, or the zero Time on a nil trace so that
// disabled tracing never consults the clock.
func (tr *Trace) Now() time.Time {
	if tr == nil {
		return time.Time{}
	}
	return time.Now()
}

// Record accumulates the elapsed time since start (obtained from Now) and
// bytes into the stage's span. No-op on a nil trace.
func (tr *Trace) Record(s Stage, start time.Time, bytes int64) {
	if tr == nil || s >= NumStages {
		return
	}
	tr.spans[s].Dur += time.Since(start)
	tr.spans[s].Bytes += bytes
}

// AddBytes accumulates bytes into the stage's span without touching its
// timing. No-op on a nil trace.
func (tr *Trace) AddBytes(s Stage, bytes int64) {
	if tr == nil || s >= NumStages {
		return
	}
	tr.spans[s].Bytes += bytes
}

// ID returns the trace's sequence number, or 0 on a nil trace.
func (tr *Trace) ID() uint64 {
	if tr == nil {
		return 0
	}
	return tr.id
}

// Ctx returns the distributed trace context the trace was started with, or
// the zero context on a nil trace.
func (tr *Trace) Ctx() TraceContext {
	if tr == nil {
		return TraceContext{}
	}
	return tr.ctx
}

// Summary is the immutable, caller-owned digest of a finished trace — what
// the engine attaches to a Response and the delta-server writes to its
// request log.
type Summary struct {
	// ID is the tracer-unique request sequence number.
	ID uint64
	// Ctx is the distributed trace context the trace carried; zero when the
	// request had none.
	Ctx TraceContext
	// Total is the wall time from Start to Finish.
	Total time.Duration
	// Stages holds the per-stage spans, indexed by Stage.
	Stages [NumStages]Span
}

// String renders the summary as a compact single-line span list, e.g.
//
//	total=1.2ms route=80µs select=40µs anon=0s encode=900µs[12345B] gzip=150µs[4321B]
//
// Stages that never ran (zero duration and bytes) are still printed so log
// lines stay fixed-shape and grep-friendly.
func (s Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "total=%s", s.Total)
	for st, sp := range s.Stages {
		fmt.Fprintf(&b, " %s=%s", Stage(st), sp.Dur)
		if sp.Bytes != 0 {
			fmt.Fprintf(&b, "[%dB]", sp.Bytes)
		}
	}
	return b.String()
}

// Tracer issues traces and hands finished ones to a completion callback
// (typically recording per-stage histograms). The zero value is a valid,
// permanently disabled tracer; create a usable one with New.
type Tracer struct {
	enabled    atomic.Bool
	seq        atomic.Uint64
	pool       sync.Pool
	onComplete func(*Trace)
}

// New returns a disabled Tracer that invokes onComplete (may be nil) for
// every finished trace before recycling it. The callback must not retain
// the *Trace past its return.
func New(onComplete func(*Trace)) *Tracer {
	return &Tracer{onComplete: onComplete}
}

// SetEnabled switches tracing on or off. Safe to flip at runtime; requests
// already in flight finish with whatever mode they started under. Safe on a
// nil receiver (no-op).
func (t *Tracer) SetEnabled(enabled bool) {
	if t == nil {
		return
	}
	t.enabled.Store(enabled)
}

// Enabled reports whether tracing is on. False on a nil receiver.
func (t *Tracer) Enabled() bool {
	return t != nil && t.enabled.Load()
}

// Start begins a trace, or returns nil when tracing is disabled (or t is
// nil). The disabled path is a single atomic load with zero allocations.
func (t *Tracer) Start() *Trace {
	return t.StartCtx(TraceContext{})
}

// StartCtx begins a trace carrying a distributed trace context, so the
// finished Summary (and anything recorded from it) can be joined with the
// other hops of the same request. The zero context is allowed and equivalent
// to Start.
func (t *Tracer) StartCtx(ctx TraceContext) *Trace {
	if t == nil || !t.enabled.Load() {
		return nil
	}
	tr, _ := t.pool.Get().(*Trace)
	if tr == nil {
		tr = &Trace{}
	}
	tr.id = t.seq.Add(1)
	tr.ctx = ctx
	tr.start = time.Now()
	tr.spans = [NumStages]Span{}
	tr.tracer = t
	return tr
}

// Finish completes the trace: the completion callback observes it, a
// caller-owned Summary is built, and the trace returns to the pool. Returns
// nil on a nil trace, and on a trace already finished or discarded — the
// first Finish/Discard wins and later calls are no-ops, so a confused caller
// can never double-Put into the pool (which would hand the same *Trace to
// two concurrent requests). The *Trace must not be used after Finish.
func (tr *Trace) Finish() *Summary {
	if tr == nil {
		return nil
	}
	t := tr.tracer
	if t == nil {
		return nil // already finished or discarded
	}
	tr.tracer = nil
	sum := &Summary{
		ID:     tr.id,
		Ctx:    tr.ctx,
		Total:  time.Since(tr.start),
		Stages: tr.spans,
	}
	if t.onComplete != nil {
		t.onComplete(tr)
	}
	t.pool.Put(tr)
	return sum
}

// Discard abandons the trace without invoking the completion callback,
// returning it to the pool. For request paths that error out before
// producing a response. No-op on a nil trace and on one already finished or
// discarded (same double-Put guard as Finish).
func (tr *Trace) Discard() {
	if tr == nil {
		return
	}
	t := tr.tracer
	if t == nil {
		return // already finished or discarded
	}
	tr.tracer = nil
	t.pool.Put(tr)
}

// Span returns the stage's span. The zero Span on a nil trace or an
// out-of-range stage.
func (tr *Trace) Span(s Stage) Span {
	if tr == nil || s >= NumStages {
		return Span{}
	}
	return tr.spans[s]
}
