package obs

import (
	"testing"
	"time"
)

func TestTraceIDStringRoundTrip(t *testing.T) {
	id := TraceID{Hi: 0x4bf92f3577b34da6, Lo: 0xa3ce929d0e0e4736}
	s := id.String()
	if s != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("String() = %q", s)
	}
	back, ok := ParseTraceID(s)
	if !ok || back != id {
		t.Fatalf("ParseTraceID(%q) = %v, %v", s, back, ok)
	}
	// Uppercase hex parses too (lenient on input, canonical on output).
	up, ok := ParseTraceID("4BF92F3577B34DA6A3CE929D0E0E4736")
	if !ok || up != id {
		t.Fatalf("uppercase parse = %v, %v", up, ok)
	}
	for _, bad := range []string{"", "abc", "4bf92f3577b34da6a3ce929d0e0e473", "4bf92f3577b34da6a3ce929d0e0e47366", "zzf92f3577b34da6a3ce929d0e0e4736"} {
		if _, ok := ParseTraceID(bad); ok {
			t.Errorf("ParseTraceID(%q) accepted", bad)
		}
	}
}

func TestNewTraceIDNonZero(t *testing.T) {
	for i := 0; i < 100; i++ {
		if NewTraceID().IsZero() {
			t.Fatal("NewTraceID minted the zero ID")
		}
	}
}

func TestTraceContextHeaderRoundTrip(t *testing.T) {
	ctx := TraceContext{ID: TraceID{Hi: 1, Lo: 2}, Origin: "n0", Hop: 0}
	hv := ctx.HeaderValue()
	if hv != "00000000000000010000000000000002;o=n0;h=0" {
		t.Fatalf("HeaderValue() = %q", hv)
	}
	back, ok := ParseTraceContext(hv)
	if !ok || back != ctx {
		t.Fatalf("ParseTraceContext(%q) = %+v, %v", hv, back, ok)
	}
	next := ctx.Next()
	if next.Hop != 1 || next.ID != ctx.ID || next.Origin != ctx.Origin {
		t.Fatalf("Next() = %+v", next)
	}
	back2, ok := ParseTraceContext(next.HeaderValue())
	if !ok || back2 != next {
		t.Fatalf("Next round trip = %+v, %v", back2, ok)
	}
}

func TestParseTraceContextMalformed(t *testing.T) {
	valid := TraceContext{ID: TraceID{Lo: 7}, Origin: "node-1", Hop: 3}.HeaderValue()
	if _, ok := ParseTraceContext(valid); !ok {
		t.Fatalf("control value %q did not parse", valid)
	}
	for _, bad := range []string{
		"",
		"00000000000000010000000000000002",          // no origin/hop
		"00000000000000010000000000000002;o=n0",     // no hop
		"00000000000000010000000000000002;o=;h=0",   // empty origin
		"00000000000000010000000000000002;o=n0;h=",  // empty hop
		"00000000000000010000000000000002;o=n0;h=x", // non-numeric hop
		"00000000000000010000000000000002;o=n0;h=-1",
		"00000000000000010000000000000002;o=n0;h=256",
		"00000000000000000000000000000000;o=n0;h=0", // zero ID means no trace
		"short;o=n0;h=0",
	} {
		if got, ok := ParseTraceContext(bad); ok {
			t.Errorf("ParseTraceContext(%q) accepted: %+v", bad, got)
		}
	}
}

func TestStartCtxFlowsToSummary(t *testing.T) {
	tr := New(nil)
	tr.SetEnabled(true)
	ctx := TraceContext{ID: TraceID{Hi: 9, Lo: 9}, Origin: "a", Hop: 1}
	trace := tr.StartCtx(ctx)
	if trace.Ctx() != ctx {
		t.Fatalf("Ctx() = %+v", trace.Ctx())
	}
	sum := trace.Finish()
	if sum == nil || sum.Ctx != ctx {
		t.Fatalf("Summary.Ctx = %+v", sum)
	}
	// Plain Start leaves the context zero, and a pooled trace must not
	// leak the previous request's context.
	plain := tr.Start()
	if !plain.Ctx().IsZero() {
		t.Fatalf("recycled trace kept stale ctx %+v", plain.Ctx())
	}
	plain.Finish()
}

// TestFinishDiscardGuard is the pool-lifecycle regression test: double
// Finish, Finish-then-Discard, and double Discard must be no-ops after the
// first call, never a second sync.Pool.Put. Without the guard, the same
// *Trace could be handed to two concurrent requests at once.
func TestFinishDiscardGuard(t *testing.T) {
	tr := New(nil)
	tr.SetEnabled(true)

	trace := tr.StartCtx(TraceContext{ID: TraceID{Lo: 1}, Origin: "n", Hop: 0})
	if sum := trace.Finish(); sum == nil {
		t.Fatal("first Finish returned nil")
	}
	if sum := trace.Finish(); sum != nil {
		t.Fatalf("second Finish returned %+v, want nil", sum)
	}
	trace.Discard() // Finish-then-Discard: also a no-op

	trace2 := tr.Start()
	trace2.Discard()
	trace2.Discard() // double Discard
	if sum := trace2.Finish(); sum != nil {
		t.Fatalf("Finish after Discard returned %+v, want nil", sum)
	}

	// The concrete double-Put symptom: after a double release, two Starts
	// could pull the SAME trace out of the pool. Prove they don't.
	a := tr.Start()
	b := tr.Start()
	if a == b {
		t.Fatal("pool handed out one trace twice after double release")
	}
	// Both stay independently usable.
	a.Record(StageRoute, a.Now().Add(-time.Millisecond), 1)
	if a.Finish() == nil {
		t.Fatal("live trace a failed to finish")
	}
	if b.Finish() == nil {
		t.Fatal("live trace b failed to finish")
	}
}
