package deltaclient

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cbde/internal/anonymize"
	"cbde/internal/core"
	"cbde/internal/deltahttp"
	"cbde/internal/deltaserver"
	"cbde/internal/origin"
)

// stack is an origin + delta-server pair for client tests.
type stack struct {
	site   *origin.Site
	engine *core.Engine
	front  *httptest.Server
}

func newStack(t *testing.T) *stack {
	t.Helper()
	site := origin.NewSite(origin.Config{
		Host:          "www.shop.com",
		Style:         origin.StylePathSegments,
		Depts:         []origin.Dept{{Name: "laptops", Items: 10}},
		TemplateBytes: 8000,
		ItemBytes:     800,
		ChurnBytes:    300,
		Personalized:  true,
		Seed:          7,
	})
	originSrv := httptest.NewServer(site.Handler())
	t.Cleanup(originSrv.Close)

	base := time.Unix(1_000_000, 0)
	n := 0
	eng, err := core.NewEngine(core.Config{
		Anon: anonymize.Config{M: 1, N: 3},
		Now:  func() time.Time { n++; return base.Add(time.Duration(n) * time.Second) },
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := deltaserver.New(originSrv.URL, eng, deltaserver.WithPublicHost("www.shop.com"))
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(srv)
	t.Cleanup(front.Close)
	return &stack{site: site, engine: eng, front: front}
}

// engineLatestBase returns the newest base of the warmed laptops class.
func (s *stack) engineLatestBase() ([]byte, int, bool) {
	for _, id := range []string{"www.shop.com/laptops#1", "www.shop.com/laptops#2"} {
		if base, v, ok := s.engine.LatestBase(id); ok {
			return base, v, ok
		}
	}
	return nil, 0, false
}

// warm completes anonymization for the /laptops/1 class.
func (s *stack) warm(t *testing.T, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		c := New(s.front.URL, WithUser(fmt.Sprintf("warm-%d", i)))
		if _, err := c.Get("/laptops/1"); err != nil {
			t.Fatal(err)
		}
	}
}

func TestClientReconstructsDocuments(t *testing.T) {
	s := newStack(t)
	s.warm(t, 6)

	c := New(s.front.URL, WithUser("alice"))
	// First request: full + base fetch. Second request: delta.
	doc1, err := c.Get("/laptops/1")
	if err != nil {
		t.Fatal(err)
	}
	doc2, err := c.Get("/laptops/1")
	if err != nil {
		t.Fatal(err)
	}
	want, err := s.site.Render("laptops", 1, "alice", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(doc1, want) || !bytes.Equal(doc2, want) {
		t.Error("reconstructed documents do not match the origin")
	}
	st := c.Stats()
	if st.DeltaResponses == 0 {
		t.Errorf("no delta responses: %+v", st)
	}
	if st.BaseFetches == 0 {
		t.Errorf("client never fetched a base: %+v", st)
	}
}

func TestClientSavesBandwidthOnRepeatAccess(t *testing.T) {
	s := newStack(t)
	s.warm(t, 6)

	c := New(s.front.URL, WithUser("bob"))
	var docBytes int64
	for i := 0; i < 20; i++ {
		doc, err := c.Get("/laptops/1")
		if err != nil {
			t.Fatal(err)
		}
		docBytes += int64(len(doc))
	}
	st := c.Stats()
	// Payload alone (excluding the one-time base fetch) must be far below
	// the document volume delivered.
	if st.PayloadBytes*3 > docBytes {
		t.Errorf("payload %d vs documents %d: expected >3x savings", st.PayloadBytes, docBytes)
	}
	if st.DeltaResponses < 18 {
		t.Errorf("delta responses = %d of 20", st.DeltaResponses)
	}
}

func TestClientTracksContentChurn(t *testing.T) {
	s := newStack(t)
	s.warm(t, 6)
	c := New(s.front.URL, WithUser("carol"))
	if _, err := c.Get("/laptops/1"); err != nil {
		t.Fatal(err)
	}
	for tick := 1; tick <= 5; tick++ {
		s.site.Advance(1)
		doc, err := c.Get("/laptops/1")
		if err != nil {
			t.Fatal(err)
		}
		want, _ := s.site.Render("laptops", 1, "carol", tick)
		if !bytes.Equal(doc, want) {
			t.Fatalf("tick %d: reconstruction mismatch", tick)
		}
	}
}

func TestClientColdCacheAfterForget(t *testing.T) {
	s := newStack(t)
	s.warm(t, 6)
	c := New(s.front.URL, WithUser("dave"))
	if _, err := c.Get("/laptops/1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("/laptops/1"); err != nil {
		t.Fatal(err)
	}
	before := c.Stats()
	c.Forget()
	if _, err := c.Get("/laptops/1"); err != nil {
		t.Fatal(err)
	}
	after := c.Stats()
	if after.FullResponses != before.FullResponses+1 {
		t.Errorf("expected one more full response after Forget: %+v vs %+v", after, before)
	}
	if after.BaseFetches != before.BaseFetches+1 {
		t.Errorf("expected a re-fetch of the base after Forget")
	}
}

func TestHeldVersion(t *testing.T) {
	s := newStack(t)
	s.warm(t, 6)
	c := New(s.front.URL, WithUser("erin"))
	if got := c.HeldVersion("anything"); got != 0 {
		t.Errorf("HeldVersion before any request = %d", got)
	}
	if _, err := c.Get("/laptops/1"); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.BaseFetches != 1 {
		t.Fatalf("BaseFetches = %d, want 1", st.BaseFetches)
	}
}

func TestClientAgainstDeadServer(t *testing.T) {
	c := New("http://127.0.0.1:1")
	if _, err := c.Get("/x"); err == nil {
		t.Error("expected connection error")
	}
	if err := c.FetchBase("cls", 1); err == nil {
		t.Error("expected connection error from FetchBase")
	}
}

func TestClientRejectsUnknownEncoding(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(deltahttp.HeaderEncoding, "martian")
		_, _ = w.Write([]byte("???"))
	}))
	defer srv.Close()
	c := New(srv.URL)
	if _, err := c.Get("/x"); err == nil || !strings.Contains(err.Error(), "unknown payload encoding") {
		t.Errorf("got %v, want unknown-encoding error", err)
	}
}

func TestClientRejectsDeltaWithoutHeldBase(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(deltahttp.HeaderEncoding, deltahttp.EncodingVdelta)
		w.Header().Set(deltahttp.HeaderClass, "cls")
		w.Header().Set(deltahttp.HeaderBaseVersion, "3")
		_, _ = w.Write([]byte("bogus"))
	}))
	defer srv.Close()
	c := New(srv.URL)
	if _, err := c.Get("/x"); err == nil || !strings.Contains(err.Error(), "does not hold") {
		t.Errorf("got %v, want not-held error", err)
	}
}

func TestClientRejectsMissingBaseVersion(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(deltahttp.HeaderEncoding, deltahttp.EncodingVdelta)
		_, _ = w.Write([]byte("bogus"))
	}))
	defer srv.Close()
	c := New(srv.URL)
	if _, err := c.Get("/x"); err == nil {
		t.Error("expected error for delta without base version")
	}
}

func TestClientNonOKStatus(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	c := New(srv.URL)
	if _, err := c.Get("/x"); err == nil {
		t.Error("expected error for 503")
	}
	if err := c.FetchBase("cls", 1); err == nil {
		t.Error("expected error for 503 base fetch")
	}
}

func TestBoundedBaseCacheEvicts(t *testing.T) {
	s := newStack(t)
	s.warm(t, 6)
	// Warm a second department class as well.
	// (newStack's site only has laptops; use two items of the same class,
	// then bound the cache below one base size to force eviction churn.)
	base, _, ok := s.engineLatestBase()
	if !ok {
		t.Fatal("no base after warmup")
	}
	cl := New(s.front.URL, WithUser("tiny"), WithMaxBaseBytes(int64(len(base))/2))
	if _, err := cl.Get("/laptops/1"); err != nil {
		t.Fatal(err)
	}
	// A single held base is never evicted (the cache keeps at least one
	// entry so the client can still make progress).
	if got := cl.Stats().BaseEvictions; got != 0 {
		t.Errorf("evictions = %d with a single class, want 0", got)
	}
}

func TestBoundedBaseCacheKeepsMostRecent(t *testing.T) {
	// Two classes, cache sized for one base: fetching the second evicts
	// the first.
	c := New("http://unused", WithMaxBaseBytes(100))
	c.bases["class-a"] = heldBase{version: 1, data: make([]byte, 80), lastUsed: 1}
	c.useSeq = 1
	c.mu.Lock()
	c.bases["class-b"] = heldBase{version: 1, data: make([]byte, 80), lastUsed: 2}
	c.useSeq = 2
	c.evictLocked()
	c.mu.Unlock()
	if _, ok := c.bases["class-a"]; ok {
		t.Error("LRU base not evicted")
	}
	if _, ok := c.bases["class-b"]; !ok {
		t.Error("most recent base evicted")
	}
	if got := c.Stats().BaseEvictions; got != 1 {
		t.Errorf("evictions = %d, want 1", got)
	}
}

func TestVCDIFFClientEndToEnd(t *testing.T) {
	s := newStack(t)
	s.warm(t, 6)

	c := New(s.front.URL, WithUser("rfc3284"), WithVCDIFF())
	if _, err := c.Get("/laptops/1"); err != nil { // full + base fetch
		t.Fatal(err)
	}
	doc, err := c.Get("/laptops/1")
	if err != nil {
		t.Fatal(err)
	}
	want, err := s.site.Render("laptops", 1, "rfc3284", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(doc, want) {
		t.Error("VCDIFF reconstruction mismatch")
	}
	if got := c.Stats().DeltaResponses; got == 0 {
		t.Error("no VCDIFF delta responses")
	}
}
