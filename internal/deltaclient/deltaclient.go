// Package deltaclient implements a delta-capable HTTP client: the stand-in
// for the browser-side of the architecture (Section VI-C), where the
// browser's cache stores base-files and JavaScript (or a plug-in) combines
// deltas with locally stored base-files.
//
// The client remembers, per class, the base-file it holds; advertises it on
// every request; reconstructs documents from delta responses; and fetches
// (re-fetches after rebases) base-files from the server's cachable
// distribution endpoint — optionally through a proxy-cache.
package deltaclient

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"cbde/internal/deltahttp"
	"cbde/internal/gzipx"
	"cbde/internal/vcdiff"
	"cbde/internal/vdelta"
)

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient replaces the underlying HTTP client (e.g. to route through
// a proxy-cache).
func WithHTTPClient(c *http.Client) Option {
	return func(cl *Client) { cl.http = c }
}

// WithUser sets the client's user identity, sent on every request.
func WithUser(user string) Option {
	return func(cl *Client) { cl.user = user }
}

// WithMaxBaseBytes bounds the client's base-file cache (a browser cache is
// finite). When an insertion would exceed the bound, the least recently
// used base-files are evicted. Zero (the default) means unbounded.
func WithMaxBaseBytes(n int64) Option {
	return func(cl *Client) { cl.maxBaseBytes = n }
}

// WithVCDIFF makes the client request and decode RFC 3284 VCDIFF deltas
// instead of the internal vdelta format.
func WithVCDIFF() Option {
	return func(cl *Client) { cl.useVCDIFF = true }
}

// WithRefreshLag installs a hook that picks which base-file version to
// fetch when the server announces a newer one than the client holds. The
// hook receives the announced latest version and returns the version to
// fetch; results are clamped to [1, latest]. It models a lagging client
// population — browsers that refresh their cached base-file some versions
// behind the server's current one — which is what the server's version
// graph exists to serve. If the lagged version has aged out of the
// server's retention window the client falls back to fetching the latest.
func WithRefreshLag(f func(latest int) int) Option {
	return func(cl *Client) { cl.refreshLag = f }
}

// heldBase is a base-file in the client's cache.
type heldBase struct {
	version  int
	data     []byte
	lastUsed int64 // monotone use counter for LRU eviction
}

// Stats counts the client's transfer volumes — the client side of the
// bandwidth story.
type Stats struct {
	Requests       int   // document requests issued
	DeltaResponses int   // responses that arrived as deltas (incl. chains)
	ChainResponses int   // delta responses that arrived as composed chains
	FullResponses  int   // responses that arrived as full documents
	PayloadBytes   int64 // body bytes received for documents (deltas + fulls)
	BaseFetches    int   // base-file downloads
	BaseBytes      int64 // base-file bytes downloaded
	BaseEvictions  int   // base-files evicted from the bounded cache
}

// maxAdvertisedBases bounds the HeaderHave size; clients rarely hold more
// than a handful of class base-files per server.
const maxAdvertisedBases = 32

// Client is a delta-capable HTTP client. It is safe for concurrent use.
type Client struct {
	serverURL  string
	http       *http.Client
	user       string
	useVCDIFF  bool
	refreshLag func(latest int) int

	maxBaseBytes int64

	mu     sync.Mutex
	bases  map[string]heldBase // class ID -> held base
	useSeq int64               // monotone counter for LRU bookkeeping
	stats  Stats
}

// New returns a Client that requests documents from serverURL (scheme and
// host, e.g. "http://127.0.0.1:8080").
func New(serverURL string, opts ...Option) *Client {
	c := &Client{
		serverURL: serverURL,
		http:      &http.Client{Timeout: 30 * time.Second},
		bases:     make(map[string]heldBase),
	}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// Stats returns a snapshot of the client's transfer counters.
func (c *Client) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// HeldVersion reports the base-file version the client holds for a class
// (0 if none).
func (c *Client) HeldVersion(classID string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bases[classID].version
}

// Get requests the document at path (e.g. "/laptops/3") and returns the
// reconstructed document.
func (c *Client) Get(path string) ([]byte, error) {
	req, err := http.NewRequest(http.MethodGet, c.serverURL+path, nil)
	if err != nil {
		return nil, fmt.Errorf("deltaclient: build request: %w", err)
	}
	req.Header.Set(deltahttp.HeaderCapable, "1")
	if c.user != "" {
		req.Header.Set(deltahttp.HeaderUser, c.user)
	}
	if c.useVCDIFF {
		req.Header.Set(deltahttp.HeaderAccept, deltahttp.EncodingVCDIFF)
	}

	// Advertise every held base: the client cannot know which class an
	// unseen URL belongs to, so the server picks the matching one.
	c.mu.Lock()
	held := make([]deltahttp.Held, 0, len(c.bases))
	for id, hb := range c.bases {
		held = append(held, deltahttp.Held{ClassID: id, Version: hb.version})
		if len(held) >= maxAdvertisedBases {
			break
		}
	}
	c.mu.Unlock()
	if len(held) > 0 {
		req.Header.Set(deltahttp.HeaderHave, deltahttp.FormatHave(held))
	}

	resp, err := c.http.Do(req)
	if err != nil {
		return nil, fmt.Errorf("deltaclient: request %s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("deltaclient: %s returned status %d", path, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("deltaclient: read response: %w", err)
	}

	gotClass := resp.Header.Get(deltahttp.HeaderClass)
	latest, _ := strconv.Atoi(resp.Header.Get(deltahttp.HeaderLatestVersion))

	c.mu.Lock()
	c.stats.Requests++
	c.stats.PayloadBytes += int64(len(body))
	c.mu.Unlock()

	var doc []byte
	switch enc := resp.Header.Get(deltahttp.HeaderEncoding); enc {
	case "":
		c.mu.Lock()
		c.stats.FullResponses++
		c.mu.Unlock()
		doc = body
	case deltahttp.EncodingVdelta, deltahttp.EncodingVdeltaGzip,
		deltahttp.EncodingVCDIFF, deltahttp.EncodingVCDIFFGzip,
		deltahttp.EncodingVdeltaChain:
		baseVersion, err := strconv.Atoi(resp.Header.Get(deltahttp.HeaderBaseVersion))
		if err != nil {
			return nil, fmt.Errorf("deltaclient: delta response lacks a base version")
		}
		if enc == deltahttp.EncodingVdeltaChain {
			doc, err = c.reconstructChain(gotClass, baseVersion, body)
		} else {
			gzipped := enc == deltahttp.EncodingVdeltaGzip || enc == deltahttp.EncodingVCDIFFGzip
			isVCDIFF := enc == deltahttp.EncodingVCDIFF || enc == deltahttp.EncodingVCDIFFGzip
			doc, err = c.reconstruct(gotClass, baseVersion, body, gzipped, isVCDIFF)
		}
		if err != nil {
			return nil, err
		}
		c.mu.Lock()
		c.stats.DeltaResponses++
		if enc == deltahttp.EncodingVdeltaChain {
			c.stats.ChainResponses++
		}
		c.mu.Unlock()
	default:
		return nil, fmt.Errorf("deltaclient: unknown payload encoding %q", enc)
	}

	// Refresh the base-file when the server advertises a newer version, so
	// future requests are served as deltas against a fresh base. A
	// refresh-lag hook may pick an older retained version instead.
	if gotClass != "" && latest > 0 && latest > c.HeldVersion(gotClass) {
		target := latest
		if c.refreshLag != nil {
			if t := c.refreshLag(latest); t < target {
				target = t
			}
			if target < 1 {
				target = 1
			}
		}
		if target > c.HeldVersion(gotClass) {
			err := c.FetchBase(gotClass, target)
			if err != nil && target != latest {
				// The lagged version may have aged out of the server's
				// retention window; take the current one rather than leave
				// the client baseless.
				err = c.FetchBase(gotClass, latest)
			}
			if err != nil {
				// Base distribution failing is not fatal for this response:
				// the document is already reconstructed. Surface it anyway
				// so callers notice persistent distribution problems.
				return doc, fmt.Errorf("deltaclient: refresh base for %s: %w", gotClass, err)
			}
		}
	}
	return doc, nil
}

// reconstructChain applies a composed chained-delta response: each framed
// segment rewrites the working document one version forward, starting from
// the held base-file and ending at the current document.
func (c *Client) reconstructChain(classID string, version int, payload []byte) ([]byte, error) {
	c.mu.Lock()
	held, ok := c.bases[classID]
	if ok {
		c.useSeq++
		held.lastUsed = c.useSeq
		c.bases[classID] = held
	}
	c.mu.Unlock()
	if !ok || held.version != version {
		return nil, fmt.Errorf("deltaclient: server sent chain against %s v%d which the client does not hold", classID, version)
	}
	segs, err := deltahttp.ParseChain(payload)
	if err != nil {
		return nil, fmt.Errorf("deltaclient: parse delta chain: %w", err)
	}
	cur := held.data
	for i, s := range segs {
		d := s.Payload
		if s.Gzipped {
			d, err = gzipx.Decompress(d)
			if err != nil {
				return nil, fmt.Errorf("deltaclient: decompress chain segment %d: %w", i, err)
			}
		}
		cur, err = vdelta.Decode(cur, d)
		if err != nil {
			return nil, fmt.Errorf("deltaclient: apply chain segment %d: %w", i, err)
		}
	}
	return cur, nil
}

// reconstruct applies a delta response to the held base-file.
func (c *Client) reconstruct(classID string, version int, payload []byte, gzipped, isVCDIFF bool) ([]byte, error) {
	c.mu.Lock()
	held, ok := c.bases[classID]
	if ok {
		c.useSeq++
		held.lastUsed = c.useSeq
		c.bases[classID] = held
	}
	c.mu.Unlock()
	if !ok || held.version != version {
		return nil, fmt.Errorf("deltaclient: server sent delta against %s v%d which the client does not hold", classID, version)
	}
	delta := payload
	if gzipped {
		d, err := gzipx.Decompress(payload)
		if err != nil {
			return nil, fmt.Errorf("deltaclient: decompress delta: %w", err)
		}
		delta = d
	}
	var doc []byte
	var err error
	if isVCDIFF {
		doc, err = vcdiff.Decode(held.data, delta)
	} else {
		doc, err = vdelta.Decode(held.data, delta)
	}
	if err != nil {
		return nil, fmt.Errorf("deltaclient: apply delta: %w", err)
	}
	return doc, nil
}

// FetchBase downloads and stores a class's base-file version from the
// server's cachable distribution endpoint.
func (c *Client) FetchBase(classID string, version int) error {
	req, err := http.NewRequest(http.MethodGet, c.serverURL+deltahttp.BasePath(classID, version), nil)
	if err != nil {
		return fmt.Errorf("deltaclient: build base request: %w", err)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("deltaclient: fetch base: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("deltaclient: base fetch returned status %d", resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("deltaclient: read base: %w", err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if cur, ok := c.bases[classID]; !ok || version > cur.version {
		c.useSeq++
		c.bases[classID] = heldBase{version: version, data: data, lastUsed: c.useSeq}
		c.evictLocked()
	}
	c.stats.BaseFetches++
	c.stats.BaseBytes += int64(len(data))
	return nil
}

// evictLocked drops least-recently-used base-files until the cache fits
// maxBaseBytes. Callers hold c.mu.
func (c *Client) evictLocked() {
	if c.maxBaseBytes <= 0 {
		return
	}
	total := int64(0)
	for _, hb := range c.bases {
		total += int64(len(hb.data))
	}
	for total > c.maxBaseBytes && len(c.bases) > 1 {
		oldestID := ""
		oldestUse := int64(0)
		for id, hb := range c.bases {
			if oldestID == "" || hb.lastUsed < oldestUse {
				oldestID, oldestUse = id, hb.lastUsed
			}
		}
		total -= int64(len(c.bases[oldestID].data))
		delete(c.bases, oldestID)
		c.stats.BaseEvictions++
	}
}

// Forget drops all held base-files (a cold browser cache).
func (c *Client) Forget() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bases = make(map[string]heldBase)
}
