package core

import (
	"bytes"
	"fmt"
	"testing"

	"cbde/internal/anonymize"
	"cbde/internal/basefile"
	"cbde/internal/vdelta"
)

func TestGzipOff(t *testing.T) {
	e := newTestEngine(t, Config{Anon: anonymize.Config{M: 1, N: 3}, GzipOff: true})
	classID := warmClass(t, e, "laptops", 8)
	_, version, _ := e.LatestBase(classID)

	doc := renderDoc("laptops", 1, 33, "nogzip")
	resp, err := e.Process(Request{
		URL: "www.shop.com/laptops/1", UserID: "nogzip", Doc: doc,
		HaveClassID: classID, HaveVersion: version,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Kind != KindDelta {
		t.Fatalf("kind = %v", resp.Kind)
	}
	if resp.Gzipped {
		t.Error("payload gzipped despite GzipOff")
	}
	// The raw payload must be a decodable vdelta stream.
	base, _ := e.BaseFile(classID, resp.BaseVersion)
	got, err := vdelta.Decode(base, resp.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, doc) {
		t.Error("raw delta does not reconstruct")
	}
}

func TestCodecOptionsRespected(t *testing.T) {
	// A coarse codec must still round-trip end to end.
	e := newTestEngine(t, Config{
		Anon:  anonymize.Config{M: 1, N: 3},
		Codec: []vdelta.Option{vdelta.WithChunkSize(32), vdelta.WithTargetMatching(false)},
	})
	classID := warmClass(t, e, "laptops", 8)
	base, version, _ := e.LatestBase(classID)
	doc := renderDoc("laptops", 2, 44, "coarse")
	resp, err := e.Process(Request{
		URL: "www.shop.com/laptops/2", UserID: "coarse", Doc: doc,
		HaveClassID: classID, HaveVersion: version,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Kind != KindDelta {
		t.Fatalf("kind = %v", resp.Kind)
	}
	got, err := e.Decode(base, resp.Payload, resp.Gzipped)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, doc) {
		t.Error("coarse codec round trip failed")
	}
}

func TestHeldListMatchesClass(t *testing.T) {
	e := newTestEngine(t, Config{Anon: anonymize.Config{M: 1, N: 3}})
	classID := warmClass(t, e, "laptops", 8)
	_, version, _ := e.LatestBase(classID)

	doc := renderDoc("laptops", 1, 55, "lister")
	resp, err := e.Process(Request{
		URL: "www.shop.com/laptops/1", UserID: "lister", Doc: doc,
		Held: []HeldBase{
			{ClassID: "bogus", Version: 9},
			{ClassID: classID, Version: version},
			{ClassID: "other", Version: 2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Kind != KindDelta {
		t.Errorf("held list not matched: kind = %v", resp.Kind)
	}
	if resp.BaseVersion != version {
		t.Errorf("delta against v%d, want v%d", resp.BaseVersion, version)
	}
}

func TestHeldPrefersNewestStoredVersion(t *testing.T) {
	clock := newTestClock()
	e := newTestEngine(t, Config{
		DisableAnonymization: true,
		KeepBaseVersions:     3,
		MaxDeltaRatio:        0.9,
		Now:                  clock.Now,
	})
	// Build two versions via basic-rebase.
	var classID string
	have := 0
	for i := 0; i < 10; i++ {
		doc := incompressible(uint64(i/5)+1, 4000)
		resp, err := e.Process(Request{
			URL: "www.shop.com/v/1", UserID: "u", Doc: doc,
			HaveClassID: classID, HaveVersion: have,
		})
		if err != nil {
			t.Fatal(err)
		}
		classID = resp.ClassID
		if resp.LatestVersion > have {
			have = resp.LatestVersion
		}
	}
	if have < 2 {
		t.Fatalf("expected at least 2 versions, got %d", have)
	}
	doc := incompressible(2, 4000)
	resp, err := e.Process(Request{
		URL: "www.shop.com/v/1", UserID: "u", Doc: doc,
		Held: []HeldBase{
			{ClassID: classID, Version: have - 1},
			{ClassID: classID, Version: have},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Kind == KindDelta && resp.BaseVersion != have {
		t.Errorf("delta against v%d, want newest held v%d", resp.BaseVersion, have)
	}
}

func TestClasslessBasicRebaseServesNewVersionImmediately(t *testing.T) {
	clock := newTestClock()
	e := newTestEngine(t, Config{
		Mode:          ModeClassless,
		MaxDeltaRatio: 0.2,
		Now:           clock.Now,
	})
	// First request installs v1.
	resp, err := e.Process(Request{URL: "www.shop.com/d/1", UserID: "u", Doc: incompressible(1, 4000)})
	if err != nil {
		t.Fatal(err)
	}
	if resp.LatestVersion != 1 {
		t.Fatalf("v = %d, want 1", resp.LatestVersion)
	}
	// Alien content with the old base advertised: basic-rebase, and the
	// new version is immediately distributable (no anonymization).
	resp, err = e.Process(Request{
		URL: "www.shop.com/d/1", UserID: "u", Doc: incompressible(99, 4000),
		HaveClassID: resp.ClassID, HaveVersion: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.BasicRebase {
		t.Fatal("expected basic-rebase")
	}
	if resp.LatestVersion != 2 {
		t.Errorf("LatestVersion = %d, want 2 immediately", resp.LatestVersion)
	}
	if _, ok := e.BaseFile(resp.ClassID, 2); !ok {
		t.Error("new version not fetchable")
	}
}

func TestMetricsExposed(t *testing.T) {
	e := newTestEngine(t, Config{Anon: anonymize.Config{M: 1, N: 2}})
	warmClass(t, e, "laptops", 4)
	snap := e.Metrics().Snapshot()
	if snap == "" {
		t.Error("empty metrics snapshot")
	}
	if got := e.Metrics().Counter("requests").Value(); got != 4 {
		t.Errorf("requests counter = %d, want 4", got)
	}
}

func TestAnonymizationRestartsOnMidFlightRebase(t *testing.T) {
	// A group-rebase while anonymization is still in progress must restart
	// the process on the new base (the paper: the previous anonymized base
	// keeps serving; here there is none yet, so fulls continue) and the
	// first distributed version is the rebased one.
	e := newTestEngine(t, Config{
		Anon:     anonymize.Config{M: 1, N: 4},
		Selector: basefile.Config{SampleProb: 1, MaxSamples: 4, Seed: 2},
	})

	// First doc (an outlier) becomes base v1 and starts anonymization.
	alien := incompressible(5, 6000)
	if _, err := e.Process(Request{URL: "www.shop.com/laptops/1", UserID: "u0", Doc: alien}); err != nil {
		t.Fatal(err)
	}
	// Similar docs arrive; the selector rebases away from the outlier
	// while the outlier's anonymization has not finished (N=4).
	for i := 1; i <= 8; i++ {
		user := fmt.Sprintf("u%d", i)
		doc := renderDoc("laptops", 1, i, user)
		if _, err := e.Process(Request{URL: "www.shop.com/laptops/1", UserID: user, Doc: doc}); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	if st.GroupRebases == 0 {
		t.Fatal("expected a group-rebase away from the outlier")
	}
	if st.AnonStarted < 2 {
		t.Errorf("AnonStarted = %d, want >= 2 (restart on rebase)", st.AnonStarted)
	}
	// The eventually distributed base is the rebased one, not the outlier.
	resp, err := e.Process(Request{
		URL: "www.shop.com/laptops/1", UserID: "u99",
		Doc: renderDoc("laptops", 1, 99, "u99"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.LatestVersion == 0 {
		t.Fatal("no base distributed after rebase + anonymization")
	}
	base, _ := e.BaseFile(resp.ClassID, resp.LatestVersion)
	if bytes.Contains(base, alien[:64]) {
		t.Error("distributed base still derives from the outlier")
	}
}

// TestRouteErrorSkipsAccounting is the regression test for a seed-era
// ordering hazard: the requests/bytes.direct counters were bumped before
// routing could fail, so unroutable requests inflated the capacity
// numbers. Accounting must only happen for requests that get a response.
func TestRouteErrorSkipsAccounting(t *testing.T) {
	e := newTestEngine(t, Config{})
	if _, err := e.Process(Request{URL: "://bad", UserID: "u", Doc: []byte("doc")}); err == nil {
		t.Fatal("expected partition error for unroutable URL")
	}
	st := e.Stats()
	if st.Requests != 0 || st.BytesDirect != 0 {
		t.Fatalf("unroutable request was accounted: requests=%d bytesDirect=%d",
			st.Requests, st.BytesDirect)
	}
	if _, err := e.Process(Request{
		URL: "www.shop.com/laptops/1", UserID: "u",
		Doc: renderDoc("laptops", 1, 0, "u"),
	}); err != nil {
		t.Fatal(err)
	}
	st = e.Stats()
	if st.Requests != 1 {
		t.Fatalf("requests = %d after one routable request, want 1", st.Requests)
	}
}
