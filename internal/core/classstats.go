package core

import (
	"sort"
	"time"

	"cbde/internal/metrics"
)

// ClassStats is one class's row in the engine's per-class stats table: the
// live counterpart of the paper's per-class accounting (Tables II-IV) —
// delta hit rate, bytes in versus bytes shipped, the age of the base-file
// clients are holding, and how far anonymization has progressed.
type ClassStats struct {
	// ID is the class (or document, in classless modes) key.
	ID string `json:"id"`

	// Requests counts requests routed to the class.
	Requests int64 `json:"requests"`
	// DeltaHits counts delta responses; DeltaMisses counts full responses
	// (no usable base-file, oversized delta, or anonymization pending).
	DeltaHits   int64 `json:"deltaHits"`
	DeltaMisses int64 `json:"deltaMisses"`

	// BytesIn is document bytes fetched from the origin for the class;
	// BytesShipped is payload bytes actually sent to clients. Their ratio
	// is the class's live Table II row.
	BytesIn      int64 `json:"bytesIn"`
	BytesShipped int64 `json:"bytesShipped"`

	// BaseVersion is the newest distributable base-file version (0 = none
	// yet); BaseAge is how long it has been serving; BaseBytes its size.
	BaseVersion int           `json:"baseVersion"`
	BaseAge     time.Duration `json:"baseAge"`
	BaseBytes   int           `json:"baseBytes"`

	// AnonActive reports an anonymization process in flight; AnonDone and
	// AnonNeeded are its comparison progress (Section V's N). Both zero
	// when anonymization is disabled or idle.
	AnonActive bool `json:"anonActive"`
	AnonDone   int  `json:"anonDone"`
	AnonNeeded int  `json:"anonNeeded"`

	// ResidentBytes is the class's accounted storage footprint (installed
	// base versions, selector-held documents, codec indexes). Evicted
	// reports the class currently degraded by budget maintenance — serving
	// full responses until traffic re-warms it — and Evictions/Rewarms
	// count how often it has left and re-entered the resident set.
	ResidentBytes int64 `json:"residentBytes"`
	Evicted       bool  `json:"evicted,omitempty"`
	Evictions     int64 `json:"evictions,omitempty"`
	Rewarms       int64 `json:"rewarms,omitempty"`

	// Spilled reports that a spill record for the class is indexed in the
	// disk tier — an evicted-and-spilled class serves one fault-in instead
	// of a re-warm when traffic returns. FaultIns counts how often the
	// class has been restored from disk.
	Spilled  bool  `json:"spilled,omitempty"`
	FaultIns int64 `json:"faultIns,omitempty"`

	// Version-graph section: retained base versions and the cached edge
	// deltas between them, plus how the class's responses split between
	// direct deltas, composed chains, and aged-out full fallbacks.
	GraphVersions  int   `json:"graphVersions"`
	GraphEdges     int   `json:"graphEdges"`
	GraphEdgeBytes int64 `json:"graphEdgeBytes"`
	GraphDirect    int64 `json:"graphDirect"`
	GraphComposed  int64 `json:"graphComposed"`
	GraphFallback  int64 `json:"graphFallback"`
}

// Savings is the class's bandwidth savings fraction (1 - shipped/in), or 0
// before any traffic.
func (s ClassStats) Savings() float64 {
	if s.BytesIn == 0 {
		return 0
	}
	return 1 - float64(s.BytesShipped)/float64(s.BytesIn)
}

// classStats builds the stats row for one class. Takes cs.mu briefly.
func (e *Engine) classStats(cs *classState, now time.Time) ClassStats {
	st := ClassStats{
		ID:          cs.id,
		Requests:    cs.ctr.requests.Value(),
		DeltaHits:   cs.ctr.deltaHits.Value(),
		DeltaMisses: cs.ctr.deltaMisses.Value(),

		BytesIn:      cs.ctr.bytesIn.Value(),
		BytesShipped: cs.ctr.bytesShipped.Value(),
	}
	st.ResidentBytes = cs.res.Total()
	st.Spilled = cs.spilled.Load()
	st.GraphEdgeBytes = cs.res.Usage().EdgeBytes
	st.GraphDirect = cs.gDirect.Load()
	st.GraphComposed = cs.gComposed.Load()
	st.GraphFallback = cs.gFallback.Load()
	cs.mu.RLock()
	st.GraphVersions = len(cs.bases)
	st.GraphEdges = len(cs.edges)
	st.Evicted = cs.evicted
	st.Evictions = cs.evictions
	st.Rewarms = cs.rewarms
	st.FaultIns = cs.faultIns
	st.BaseVersion = cs.distVersion
	if cs.distVersion != 0 {
		if bv, ok := cs.bases[cs.distVersion]; ok {
			st.BaseBytes = len(bv.bytes)
		}
		if !cs.installedAt.IsZero() {
			if age := now.Sub(cs.installedAt); age > 0 {
				st.BaseAge = age
			}
		}
	}
	if cs.anonProc != nil {
		st.AnonActive = true
		st.AnonDone, st.AnonNeeded = cs.anonProc.Progress()
	}
	cs.mu.RUnlock()
	return st
}

// ClassStats returns the per-class stats row for classID. ok is false for
// an unknown class.
func (e *Engine) ClassStats(classID string) (ClassStats, bool) {
	cs, ok := e.lookup(classID)
	if !ok {
		return ClassStats{}, false
	}
	return e.classStats(cs, e.cfg.Now()), true
}

// AllClassStats returns every class's stats row, sorted by class ID so
// output is stable for dumps and diffs.
func (e *Engine) AllClassStats() []ClassStats {
	now := e.cfg.Now()
	states := e.states()
	out := make([]ClassStats, 0, len(states))
	for _, cs := range states {
		out = append(out, e.classStats(cs, now))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// collect contributes the computed metric series — values derived from live
// engine state rather than accumulated counters — to every exposition
// scrape: global bytes saved and class count, plus per-class base
// version/age and anonymization progress.
func (e *Engine) collect(c *metrics.Collection) {
	saved := e.ctr.bytesDirect.Value() - e.ctr.bytesDelta.Value() - e.ctr.bytesFull.Value()
	c.Counter("cbde_bytes_saved_total",
		"Client-facing bytes saved versus serving every document in full.",
		nil, float64(saved))

	st := e.cstore.Stats()
	for _, kind := range []struct {
		name  string
		value int64
	}{
		{"base", st.Resident.BaseBytes},
		{"cand", st.Resident.CandBytes},
		{"index", st.Resident.IndexBytes},
		{"delta", st.Resident.DeltaBytes},
		{"edge", st.Resident.EdgeBytes},
	} {
		c.Gauge("cbde_store_resident_bytes",
			"Resident class-storage bytes by kind (base versions, selector candidates, codec indexes, memoized deltas, graph edges).",
			[]metrics.Label{{Name: "kind", Value: kind.name}}, float64(kind.value))
	}
	c.Gauge("cbde_store_budget_bytes",
		"Configured class-storage byte budget (0 = unbudgeted).",
		nil, float64(st.Budget))
	c.Gauge("cbde_store_resident_classes",
		"Classes with resident storage (tracked classes minus evicted ones).",
		nil, float64(st.ResidentClasses))
	c.Counter("cbde_store_prunes_total",
		"Budget-driven class prunes (old base versions and samples dropped).",
		nil, float64(st.Prunes))
	c.Counter("cbde_store_evictions_total",
		"Budget-driven class evictions (all resident payload dropped).",
		nil, float64(st.Evictions))
	c.Counter("cbde_store_rewarms_total",
		"Evicted classes that regained a distributable base from traffic.",
		nil, float64(e.ctr.rewarms.Value()))
	c.Counter("cbde_delta_cache_hits_total",
		"Delta responses served from the memo cache without encoding.",
		nil, float64(e.ctr.memoHits.Value()))
	c.Counter("cbde_delta_cache_misses_total",
		"Memo-cache misses: requests that led a fresh delta encode.",
		nil, float64(e.ctr.memoMisses.Value()))
	c.Counter("cbde_delta_cache_coalesced_total",
		"Requests that coalesced onto another request's in-flight encode.",
		nil, float64(e.ctr.memoCoalesced.Value()))
	c.Counter("cbde_graph_direct_total",
		"Delta responses encoded directly against the version the client holds.",
		nil, float64(e.ctr.graphDirect.Value()))
	c.Counter("cbde_graph_composed_total",
		"Delta responses served as composed chains of cached version-graph edges.",
		nil, float64(e.ctr.graphComposed.Value()))
	c.Counter("cbde_graph_fallback_full_total",
		"Full responses forced by the client's version aging out of the graph.",
		nil, float64(e.ctr.graphFallback.Value()))

	// Disk-tier series exist only when the tier is configured, so -check
	// on untiered servers stays meaningful and dashboards can feature-
	// detect spill support.
	if e.spill != nil {
		ts := e.SpillStats()
		c.Counter("cbde_store_spills_total",
			"Class spill records appended to the disk tier.",
			nil, float64(ts.Spills))
		c.Counter("cbde_store_faultin_total",
			"Spilled classes faulted back in from the disk tier.",
			nil, float64(ts.FaultIns))
		c.Counter("cbde_store_spill_drops_total",
			"Spilled classes lost to disk-budget segment compaction.",
			nil, float64(ts.Drops))
		c.Counter("cbde_store_spill_errors_total",
			"Spill append, read, or decode failures (the class degrades like a plain eviction).",
			nil, float64(ts.Errors))
		c.Gauge("cbde_store_disk_bytes",
			"Total bytes in spill segment files, including dead records.",
			nil, float64(ts.DiskBytes))
		c.Gauge("cbde_store_disk_live_bytes",
			"Bytes of spill records still referenced by the index.",
			nil, float64(ts.LiveBytes))
		c.Gauge("cbde_store_disk_budget_bytes",
			"Configured disk-tier byte budget (0 = unbounded).",
			nil, float64(ts.BudgetBytes))
		c.Gauge("cbde_store_spilled_classes",
			"Classes with a spill record indexed in the disk tier.",
			nil, float64(ts.SpilledClasses))
		c.Gauge("cbde_store_spill_segments",
			"Spill segment files on disk.",
			nil, float64(ts.Segments))
	}

	now := e.cfg.Now()
	states := e.states()
	c.Gauge("cbde_classes", "Classes currently tracked by the engine.",
		nil, float64(len(states)))
	for _, cs := range states {
		st := e.classStats(cs, now)
		label := []metrics.Label{{Name: "class", Value: st.ID}}
		c.Gauge("cbde_class_base_version",
			"Newest distributable base-file version for the class.",
			label, float64(st.BaseVersion))
		c.Gauge("cbde_class_base_age_seconds",
			"Age of the class's distributable base-file.",
			label, st.BaseAge.Seconds())
		if st.AnonNeeded > 0 {
			c.Gauge("cbde_class_anon_progress",
				"Comparisons completed over comparisons required by the running anonymization process.",
				label, float64(st.AnonDone)/float64(st.AnonNeeded))
		}
	}
}
