package core

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"cbde/internal/basefile"
)

// spillEngine builds an engine with the disk tier enabled, anonymization
// off (so bases install immediately), and an optional memory budget.
func spillEngine(t *testing.T, dir string, budget int64) *Engine {
	t.Helper()
	e := newTestEngine(t, Config{
		MemBudget:            budget,
		SpillDir:             dir,
		DisableAnonymization: true,
	})
	t.Cleanup(func() { e.Close() })
	return e
}

// warmHeld warms one class with a single document and returns the class
// ID, the distributable version, and the base bytes a client would hold.
func warmHeld(t *testing.T, e *Engine, url string, doc []byte) (string, int, []byte) {
	t.Helper()
	resp, err := e.Process(Request{URL: url, UserID: "u1", Doc: doc})
	if err != nil {
		t.Fatal(err)
	}
	if resp.LatestVersion == 0 {
		t.Fatal("warm request did not install a base")
	}
	base, ok := e.BaseFile(resp.ClassID, resp.LatestVersion)
	if !ok {
		t.Fatal("warm base not fetchable")
	}
	return resp.ClassID, resp.LatestVersion, base
}

func TestSpillFaultInServesDelta(t *testing.T) {
	e := spillEngine(t, t.TempDir(), 0)
	doc := renderDoc("alpha", 0, 0, "u1")
	classID, version, base := warmHeld(t, e, "www.shop.com/alpha/0", doc)

	// Sanity: a warm class serves a delta against the held base.
	doc2 := renderDoc("alpha", 0, 1, "u1")
	resp, err := e.Process(Request{
		URL: "www.shop.com/alpha/0", UserID: "u1", Doc: doc2,
		HaveClassID: classID, HaveVersion: version,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Kind != KindDelta {
		t.Fatalf("warm response kind = %v, want delta", resp.Kind)
	}

	freed, ok := e.EvictClass(classID)
	if !ok || freed <= 0 {
		t.Fatalf("EvictClass freed %d, ok=%v", freed, ok)
	}
	st, _ := e.ClassStats(classID)
	if !st.Evicted || !st.Spilled {
		t.Fatalf("after evict: evicted=%v spilled=%v, want both true", st.Evicted, st.Spilled)
	}
	if ts := e.SpillStats(); !ts.Enabled || ts.Spills == 0 || ts.SpilledClasses != 1 {
		t.Fatalf("implausible tier stats after spill: %+v", ts)
	}

	// The very first request after the spill must fault in and serve a
	// byte-verified delta — not a full response.
	doc3 := renderDoc("alpha", 0, 2, "u1")
	resp, err = e.Process(Request{
		URL: "www.shop.com/alpha/0", UserID: "u1", Doc: doc3,
		HaveClassID: classID, HaveVersion: version,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Kind != KindDelta {
		t.Fatalf("post-spill response kind = %v, want delta (fault-in must win the race with re-warming)", resp.Kind)
	}
	if resp.BaseVersion != version {
		t.Fatalf("delta against version %d, want the held %d", resp.BaseVersion, version)
	}
	got, err := e.DecodeAs(base, resp.Payload, resp.Gzipped, resp.Format)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, doc3) {
		t.Fatal("fault-in delta did not reconstruct the document byte-for-byte")
	}
	st, _ = e.ClassStats(classID)
	if st.Evicted || st.Spilled || st.FaultIns != 1 {
		t.Fatalf("after fault-in: evicted=%v spilled=%v faultIns=%d", st.Evicted, st.Spilled, st.FaultIns)
	}
	if ts := e.SpillStats(); ts.FaultIns != 1 || ts.SpilledClasses != 0 {
		t.Fatalf("tier stats after fault-in: %+v", ts)
	}
	if st.Rewarms != 0 {
		t.Fatalf("fault-in must not count as a re-warm, got %d", st.Rewarms)
	}
}

func TestSpillFlashCrowdFaultsInOnce(t *testing.T) {
	// Sampling off: a 16-user crowd would otherwise trigger group rebases
	// that push the held version past KeepBaseVersions — legitimate full
	// responses that have nothing to do with the fault-in under test.
	e := newTestEngine(t, Config{
		SpillDir:             t.TempDir(),
		DisableAnonymization: true,
		Selector:             basefile.Config{SampleProb: -1},
	})
	t.Cleanup(func() { e.Close() })
	doc := renderDoc("beta", 1, 0, "u1")
	classID, version, base := warmHeld(t, e, "www.shop.com/beta/1", doc)
	if _, ok := e.EvictClass(classID); !ok {
		t.Fatal("evict failed")
	}

	const crowd = 16
	var wg sync.WaitGroup
	errs := make(chan error, crowd)
	for i := 0; i < crowd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			doc := renderDoc("beta", 1, 1, fmt.Sprintf("u%d", i))
			resp, err := e.Process(Request{
				URL: "www.shop.com/beta/1", UserID: fmt.Sprintf("u%d", i), Doc: doc,
				HaveClassID: classID, HaveVersion: version,
			})
			if err != nil {
				errs <- err
				return
			}
			if resp.Kind != KindDelta {
				errs <- fmt.Errorf("flash-crowd request %d got %v, want delta", i, resp.Kind)
				return
			}
			got, err := e.DecodeAs(base, resp.Payload, resp.Gzipped, resp.Format)
			if err == nil && !bytes.Equal(got, doc) {
				err = fmt.Errorf("request %d reconstruction mismatch", i)
			}
			if err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if ts := e.SpillStats(); ts.FaultIns != 1 {
		t.Fatalf("flash crowd performed %d fault-ins, want exactly 1 (singleflight)", ts.FaultIns)
	}
}

func TestSpillRecoveryAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	e1 := spillEngine(t, dir, 0)
	doc := renderDoc("gamma", 2, 0, "u1")
	classID, version, base := warmHeld(t, e1, "www.shop.com/gamma/2", doc)
	if n, err := e1.SpillAll(); err != nil || n != 1 {
		t.Fatalf("SpillAll = (%d, %v), want (1, nil)", n, err)
	}
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}

	// A new process over the same spill dir recovers the index without any
	// NDJSON replay; the class body faults in on first touch.
	e2 := spillEngine(t, dir, 0)
	if ts := e2.SpillStats(); ts.SpilledClasses != 1 {
		t.Fatalf("recovered %d spilled classes, want 1", ts.SpilledClasses)
	}
	doc2 := renderDoc("gamma", 2, 5, "u1")
	resp, err := e2.Process(Request{
		URL: "www.shop.com/gamma/2", UserID: "u1", Doc: doc2,
		HaveClassID: classID, HaveVersion: version,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ClassID != classID {
		t.Fatalf("class re-minted as %q, want %q", resp.ClassID, classID)
	}
	if resp.Kind != KindDelta || resp.BaseVersion != version {
		t.Fatalf("restart fault-in: kind=%v baseVersion=%d, want delta against %d", resp.Kind, resp.BaseVersion, version)
	}
	got, err := e2.DecodeAs(base, resp.Payload, resp.Gzipped, resp.Format)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, doc2) {
		t.Fatal("restart fault-in delta did not reconstruct the document")
	}
	// Version numbering continues past the recovered counter: a rebase
	// after recovery must mint a strictly newer version.
	if resp.LatestVersion < version {
		t.Fatalf("recovered latest version %d below spilled %d", resp.LatestVersion, version)
	}
}

// corruptSegments bit-flips a byte near the end of every spill segment so
// framing still scans but the CRC check fails at Take.
func corruptSegments(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, ent := range entries {
		if !strings.HasPrefix(ent.Name(), "spill-") {
			continue
		}
		p := filepath.Join(dir, ent.Name())
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)-10] ^= 0xFF
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n == 0 {
		t.Fatal("no segment files to corrupt")
	}
}

func TestSpillCorruptRecordDegradesLikeEviction(t *testing.T) {
	dir := t.TempDir()
	e1 := spillEngine(t, dir, 0)
	doc := renderDoc("delta", 0, 0, "u1")
	classID, _, _ := warmHeld(t, e1, "www.shop.com/delta/0", doc)
	if _, ok := e1.EvictClass(classID); !ok {
		t.Fatal("evict failed")
	}
	e1.Close()
	corruptSegments(t, dir)

	e2 := spillEngine(t, dir, 0)
	// The corrupt record is still indexed (CRC is lazy), so the class is
	// flagged; the fault-in fails and the request degrades to a full
	// response — exactly the plain-eviction contract. The client claims no
	// held version: the version counter died with the record, so a
	// restarted class re-mints numbers (the same exposure as restarting
	// with no NDJSON state).
	resp, err := e2.Process(Request{
		URL: "www.shop.com/delta/0", UserID: "u1", Doc: doc,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Kind != KindFull {
		t.Fatalf("corrupt fault-in served %v, want a full response", resp.Kind)
	}
	if ts := e2.SpillStats(); ts.Errors == 0 || ts.FaultIns != 0 {
		t.Fatalf("tier stats after corrupt fault-in: %+v", ts)
	}
	// The class re-warms from traffic like any evicted class: the failed
	// request's own document initialized a fresh base.
	if resp.LatestVersion == 0 {
		t.Fatal("failed fault-in must still let the class re-warm")
	}
	base2, ok := e2.BaseFile(classID, resp.LatestVersion)
	if !ok {
		t.Fatal("re-warmed base not fetchable")
	}
	doc2 := renderDoc("delta", 0, 3, "u1")
	resp, err = e2.Process(Request{
		URL: "www.shop.com/delta/0", UserID: "u1", Doc: doc2,
		HaveClassID: classID, HaveVersion: resp.LatestVersion,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Kind != KindDelta {
		t.Fatalf("re-warmed class served %v, want delta", resp.Kind)
	}
	if got, err := e2.DecodeAs(base2, resp.Payload, resp.Gzipped, resp.Format); err != nil || !bytes.Equal(got, doc2) {
		t.Fatalf("re-warmed delta reconstruction failed: %v", err)
	}
}

// Class keys embed a creation-order sequence number, so restart recovery
// only works if the same URLs classify back to the same IDs. SpillAll
// persists the grouping sidecar to make that hold even when post-restart
// traffic arrives in a different order than the classes were created in.
func TestSpillGroupingSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	e1 := spillEngine(t, dir, 0)
	docA := renderDoc("alpha", 0, 0, "u1")
	classA, verA, baseA := warmHeld(t, e1, "www.shop.com/alpha/0", docA)
	docB := renderDoc("beta", 1, 0, "u1")
	classB, verB, baseB := warmHeld(t, e1, "www.shop.com/beta/1", docB)
	if classA == classB {
		t.Fatalf("expected two distinct classes, both mapped to %q", classA)
	}
	if n, err := e1.SpillAll(); err != nil || n != 2 {
		t.Fatalf("SpillAll = (%d, %v), want (2, nil)", n, err)
	}
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}

	// Touch the classes in the OPPOSITE order of their creation. Without
	// the sidecar the manager re-mints sequence numbers by arrival order,
	// the keys miss the recovered spill index, and both requests re-warm
	// as brand-new classes instead of faulting in.
	e2 := spillEngine(t, dir, 0)
	for _, c := range []struct {
		url, dept string
		item      int
		classID   string
		version   int
		base      []byte
	}{
		{"www.shop.com/beta/1", "beta", 1, classB, verB, baseB},
		{"www.shop.com/alpha/0", "alpha", 0, classA, verA, baseA},
	} {
		doc := renderDoc(c.dept, c.item, 9, "u1")
		resp, err := e2.Process(Request{
			URL: c.url, UserID: "u1", Doc: doc,
			HaveClassID: c.classID, HaveVersion: c.version,
		})
		if err != nil {
			t.Fatal(err)
		}
		if resp.ClassID != c.classID {
			t.Fatalf("%s re-minted as %q, want %q", c.url, resp.ClassID, c.classID)
		}
		if resp.Kind != KindDelta || resp.BaseVersion != c.version {
			t.Fatalf("%s: kind=%v baseVersion=%d, want delta against %d", c.url, resp.Kind, resp.BaseVersion, c.version)
		}
		got, err := e2.DecodeAs(c.base, resp.Payload, resp.Gzipped, resp.Format)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, doc) {
			t.Fatalf("%s: fault-in delta did not reconstruct the document", c.url)
		}
	}
	if ts := e2.SpillStats(); ts.FaultIns != 2 {
		t.Fatalf("FaultIns = %d, want 2", ts.FaultIns)
	}
}

func TestSpillNDJSONStillLoadsAndWins(t *testing.T) {
	dir := t.TempDir()
	e1 := spillEngine(t, dir, 0)
	doc := renderDoc("eps", 1, 0, "u1")
	classID, version, base := warmHeld(t, e1, "www.shop.com/eps/1", doc)
	var snap bytes.Buffer
	if err := e1.SaveState(&snap); err != nil {
		t.Fatal(err)
	}
	if _, ok := e1.EvictClass(classID); !ok {
		t.Fatal("evict failed")
	}
	e1.Close()

	// A v2 NDJSON snapshot still loads into a spill-enabled engine; the
	// resident NDJSON state wins over the (older) spill record, whose
	// version counter is merged as a high-water mark and whose bytes are
	// discarded.
	e2 := spillEngine(t, dir, 0)
	if err := e2.LoadState(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatal(err)
	}
	doc2 := renderDoc("eps", 1, 4, "u1")
	resp, err := e2.Process(Request{
		URL: "www.shop.com/eps/1", UserID: "u1", Doc: doc2,
		HaveClassID: classID, HaveVersion: version,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Kind != KindDelta || resp.BaseVersion != version {
		t.Fatalf("NDJSON-restored class: kind=%v baseVersion=%d, want delta against %d", resp.Kind, resp.BaseVersion, version)
	}
	if got, err := e2.DecodeAs(base, resp.Payload, resp.Gzipped, resp.Format); err != nil || !bytes.Equal(got, doc2) {
		t.Fatalf("NDJSON-restored delta reconstruction failed: %v", err)
	}
	st, _ := e2.ClassStats(classID)
	if st.FaultIns != 0 {
		t.Fatalf("stale spill record must be discarded, not installed (faultIns=%d)", st.FaultIns)
	}
	if ts := e2.SpillStats(); ts.SpilledClasses != 0 {
		t.Fatalf("stale spill record must be consumed from the index: %+v", ts)
	}
}

func TestSpillLedgerDrainsToZero(t *testing.T) {
	// Budget 1: every maintenance pass evicts (and spills) everything.
	// With the disk tier the classes still serve deltas — each request
	// faults its class in, encodes, and the sweep demotes it again — and
	// the RAM ledger drains exactly to zero after every request.
	e := newTestEngine(t, Config{
		MemBudget:            1,
		SpillDir:             t.TempDir(),
		DisableAnonymization: true,
		// No sampling: the base never rebases, so the client's copy of the
		// first document stays byte-identical to the server's only base.
		Selector: basefile.Config{SampleProb: -1},
	})
	t.Cleanup(func() { e.Close() })
	var classID string
	var heldVersion int
	var heldDoc []byte
	for i := 0; i < 8; i++ {
		doc := renderDoc("zeta", 0, i, "u1")
		resp, err := e.Process(Request{
			URL: "www.shop.com/zeta/0", UserID: "u1", Doc: doc,
			HaveClassID: classID, HaveVersion: heldVersion,
		})
		if err != nil {
			t.Fatal(err)
		}
		classID = resp.ClassID
		if i > 0 {
			if resp.Kind != KindDelta {
				t.Fatalf("request %d: kind = %v, want delta (fault-in must serve deltas even at budget 1)", i, resp.Kind)
			}
			got, err := e.DecodeAs(heldDoc, resp.Payload, resp.Gzipped, resp.Format)
			if err != nil || !bytes.Equal(got, doc) {
				t.Fatalf("request %d: reconstruction failed: %v", i, err)
			}
		}
		if resp.LatestVersion > heldVersion {
			heldVersion, heldDoc = resp.LatestVersion, doc
		}
		e.Quiesce()
	}
	e.Quiesce()
	if got := e.acct.Total(); got != 0 {
		t.Fatalf("ledger = %d after spill/fault-in churn, want 0", got)
	}
	ts := e.SpillStats()
	if ts.Spills == 0 || ts.FaultIns == 0 {
		t.Fatalf("budget-1 engine must churn through the tier: %+v", ts)
	}
}
