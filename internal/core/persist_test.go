package core

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"cbde/internal/anonymize"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	// Warm an engine: classes formed, bases anonymized and distributed.
	a := newTestEngine(t, Config{Anon: anonymize.Config{M: 1, N: 3}})
	classID := warmClass(t, a, "laptops", 8)
	warmClass(t, a, "desktops", 8)
	base, version, ok := a.LatestBase(classID)
	if !ok {
		t.Fatal("no base after warmup")
	}

	var buf bytes.Buffer
	if err := a.SaveState(&buf); err != nil {
		t.Fatal(err)
	}

	// A fresh engine (a restarted delta-server) restores it.
	b := newTestEngine(t, Config{Anon: anonymize.Config{M: 1, N: 3}})
	if err := b.LoadState(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}

	// The restored engine serves deltas against the persisted base
	// immediately — no re-anonymization, no full-response warmup.
	doc := renderDoc("laptops", 1, 77, "returning")
	resp, err := b.Process(Request{
		URL: "www.shop.com/laptops/1", UserID: "returning", Doc: doc,
		HaveClassID: classID, HaveVersion: version,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Kind != KindDelta {
		t.Fatalf("restored engine served %v, want delta", resp.Kind)
	}
	if resp.ClassID != classID {
		t.Errorf("URL regrouped into %q, want %q", resp.ClassID, classID)
	}
	got, err := b.Decode(base, resp.Payload, resp.Gzipped)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, doc) {
		t.Error("reconstruction against persisted base failed")
	}

	// The restored base-file endpoint serves the same bytes.
	rbase, ok := b.BaseFile(classID, version)
	if !ok || !bytes.Equal(rbase, base) {
		t.Error("restored BaseFile differs from the saved one")
	}
}

func TestLoadStateVersionNumberingContinues(t *testing.T) {
	clock := newTestClock()
	a := newTestEngine(t, Config{
		DisableAnonymization: true,
		MaxDeltaRatio:        0.2,
		Now:                  clock.Now,
	})
	// Drive to version >= 2 via basic rebases.
	var classID string
	have := 0
	for i := 0; i < 8; i++ {
		resp, err := a.Process(Request{
			URL: "www.shop.com/p/1", UserID: "u", Doc: incompressible(uint64(i/4)+1, 4000),
			HaveClassID: classID, HaveVersion: have,
		})
		if err != nil {
			t.Fatal(err)
		}
		classID = resp.ClassID
		if resp.LatestVersion > have {
			have = resp.LatestVersion
		}
	}
	if have < 2 {
		t.Fatalf("want version >= 2, got %d", have)
	}

	var buf bytes.Buffer
	if err := a.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	b := newTestEngine(t, Config{
		DisableAnonymization: true,
		MaxDeltaRatio:        0.2,
		Now:                  clock.Now,
	})
	if err := b.LoadState(&buf); err != nil {
		t.Fatal(err)
	}
	// A drastic content change triggers another basic rebase: the new
	// version must continue numbering past the persisted one, not restart
	// at 1 (which would corrupt clients' version bookkeeping).
	resp, err := b.Process(Request{
		URL: "www.shop.com/p/1", UserID: "u", Doc: incompressible(999, 4000),
		HaveClassID: classID, HaveVersion: have,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.BasicRebase {
		t.Fatal("expected a basic rebase after restore")
	}
	if resp.LatestVersion <= have {
		t.Errorf("post-restore version %d did not advance past %d", resp.LatestVersion, have)
	}
}

func TestLoadStateErrors(t *testing.T) {
	mk := func() *Engine { return newTestEngine(t, Config{Anon: anonymize.Config{M: 1, N: 2}}) }

	t.Run("garbage", func(t *testing.T) {
		if err := mk().LoadState(strings.NewReader("not json")); err == nil {
			t.Error("garbage accepted")
		}
	})
	t.Run("wrong version", func(t *testing.T) {
		if err := mk().LoadState(strings.NewReader(`{"version":99,"mode":1}`)); err == nil {
			t.Error("wrong version accepted")
		}
	})
	t.Run("wrong mode", func(t *testing.T) {
		a := newTestEngine(t, Config{Mode: ModeClassless})
		var buf bytes.Buffer
		if _, err := a.Process(Request{URL: "www.x.com/a", UserID: "u", Doc: bytes.Repeat([]byte("x"), 100)}); err != nil {
			t.Fatal(err)
		}
		if err := a.SaveState(&buf); err != nil {
			t.Fatal(err)
		}
		if err := mk().LoadState(&buf); err == nil {
			t.Error("mode mismatch accepted")
		}
	})
	t.Run("non-empty engine", func(t *testing.T) {
		a := mk()
		warmClass(t, a, "laptops", 4)
		var buf bytes.Buffer
		if err := a.SaveState(&buf); err != nil {
			t.Fatal(err)
		}
		b := mk()
		warmClass(t, b, "laptops", 2)
		if err := b.LoadState(&buf); err == nil {
			t.Error("load into a used engine accepted")
		}
	})
	t.Run("missing class in grouping", func(t *testing.T) {
		bad := `{"version":1,"mode":1,"grouping":{"classes":[],"urls":{},"nextSeq":0},` +
			`"classes":[{"id":"ghost","distVersion":0,"selectorVersion":1}]}`
		if err := mk().LoadState(strings.NewReader(bad)); err == nil {
			t.Error("ghost class accepted")
		}
	})
	t.Run("missing distributed version", func(t *testing.T) {
		bad := `{"version":1,"mode":1,` +
			`"grouping":{"classes":[{"id":"c","server":"s","hint":"h"}],"urls":{},"nextSeq":1},` +
			`"classes":[{"id":"c","distVersion":3,"selectorVersion":3}]}`
		if err := mk().LoadState(strings.NewReader(bad)); err == nil {
			t.Error("missing distributed base accepted")
		}
	})
}

func TestSaveLoadPreservesGroupingKnowledge(t *testing.T) {
	a := newTestEngine(t, Config{Anon: anonymize.Config{M: 1, N: 2}})
	warmClass(t, a, "laptops", 6)
	gsA, _ := a.GroupingStats()

	var buf bytes.Buffer
	if err := a.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	b := newTestEngine(t, Config{Anon: anonymize.Config{M: 1, N: 2}})
	if err := b.LoadState(&buf); err != nil {
		t.Fatal(err)
	}
	gsB, _ := b.GroupingStats()
	if gsB.Classes != gsA.Classes || gsB.URLs != gsA.URLs {
		t.Errorf("grouping state lost: %+v vs %+v", gsB, gsA)
	}

	// A known URL must not probe again after restore.
	doc := renderDoc("laptops", 0, 5, "u")
	resp, err := b.Process(Request{URL: "www.shop.com/laptops/0", UserID: "u", Doc: doc})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ClassID == "" {
		t.Error("restored engine failed to classify a known URL")
	}
	gsAfter, _ := b.GroupingStats()
	if gsAfter.URLs != gsB.URLs {
		t.Errorf("known URL was re-grouped: %d -> %d URLs", gsB.URLs, gsAfter.URLs)
	}
}

func TestSaveStateDeterministicOrder(t *testing.T) {
	a := newTestEngine(t, Config{Anon: anonymize.Config{M: 1, N: 2}})
	for _, dept := range []string{"laptops", "desktops", "phones"} {
		for i := 0; i < 4; i++ {
			user := fmt.Sprintf("%s-u%d", dept, i)
			if _, err := a.Process(Request{
				URL: fmt.Sprintf("www.shop.com/%s/%d", dept, i), UserID: user,
				Doc: renderDoc(dept, i, i, user),
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	var b1, b2 bytes.Buffer
	if err := a.SaveState(&b1); err != nil {
		t.Fatal(err)
	}
	if err := a.SaveState(&b2); err != nil {
		t.Fatal(err)
	}
	// Timestamps differ (the clock ticks); strip them before comparing.
	s1 := strings.ReplaceAll(b1.String(), savedAtOf(t, b1.String()), "")
	s2 := strings.ReplaceAll(b2.String(), savedAtOf(t, b2.String()), "")
	if s1 != s2 {
		t.Error("SaveState output is not deterministic for identical state")
	}
}

func savedAtOf(t *testing.T, s string) string {
	t.Helper()
	i := strings.Index(s, `"savedAt":"`)
	if i < 0 {
		t.Fatal("no savedAt in state")
	}
	rest := s[i+len(`"savedAt":"`):]
	j := strings.IndexByte(rest, '"')
	return rest[:j]
}

// TestSaveLoadUnderEviction is the eviction round-trip: a class evicted by
// budget maintenance persists as a minimal record, restores in the evicted
// state, serves a client holding a pre-eviction base with a full response,
// and re-warms at a strictly newer version — numbering continuity survives
// both the eviction and the restart.
func TestSaveLoadUnderEviction(t *testing.T) {
	const budget = 10 << 10
	mk := func() *Engine {
		return newTestEngine(t, Config{MemBudget: budget, DisableAnonymization: true})
	}
	a := mk()

	// Warm class A, then hammer class B until A is evicted.
	var aID string
	var aVersion int
	for u := 0; u < 4; u++ {
		user := fmt.Sprintf("a-user-%d", u)
		resp, err := a.Process(Request{
			URL:    "www.shop.com/laptops/1",
			UserID: user,
			Doc:    renderDoc("laptops", 1, u, user),
		})
		if err != nil {
			t.Fatal(err)
		}
		aID, aVersion = resp.ClassID, resp.LatestVersion
	}
	if aVersion == 0 {
		t.Fatal("class A never distributed a base")
	}
	evicted := false
	for i := 0; i < 400 && !evicted; i++ {
		user := fmt.Sprintf("b-user-%d", i%9)
		if _, err := a.Process(Request{
			URL:    "www.shop.com/desktops/2",
			UserID: user,
			Doc:    renderDoc("desktops", 2, i, user),
		}); err != nil {
			t.Fatal(err)
		}
		st, ok := a.ClassStats(aID)
		if !ok {
			t.Fatal("class A vanished")
		}
		evicted = st.Evicted
	}
	if !evicted {
		t.Fatal("class A never evicted; cannot test persist-under-eviction")
	}

	var buf bytes.Buffer
	if err := a.SaveState(&buf); err != nil {
		t.Fatal(err)
	}

	b := mk()
	if err := b.LoadState(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}

	// The evicted class restored in its degraded state: known, marked
	// evicted, holding nothing.
	st, ok := b.ClassStats(aID)
	if !ok {
		t.Fatal("evicted class missing after restore")
	}
	if !st.Evicted {
		t.Fatal("restored class lost its evicted flag")
	}
	if st.BaseVersion != 0 || st.ResidentBytes != 0 {
		t.Fatalf("restored evicted class has resident state: %+v", st)
	}
	if _, ok := b.BaseFile(aID, aVersion); ok {
		t.Fatal("restored evicted class serves a pre-eviction base")
	}

	// A client still holding the pre-eviction base gets a correct full
	// response, then the class re-warms at a strictly newer version.
	rewarmed := false
	for j := 0; j < 30 && !rewarmed; j++ {
		resp, err := b.Process(Request{
			URL:         "www.shop.com/laptops/1",
			UserID:      "returning",
			Doc:         renderDoc("laptops", 1, 200+j, "returning"),
			HaveClassID: aID,
			HaveVersion: aVersion,
		})
		if err != nil {
			t.Fatal(err)
		}
		if j == 0 && resp.Kind != KindFull {
			t.Fatalf("first post-restore response is %v, want full", resp.Kind)
		}
		if resp.LatestVersion != 0 && resp.LatestVersion <= aVersion {
			t.Fatalf("post-restore version %d does not exceed pre-eviction version %d (version reuse)",
				resp.LatestVersion, aVersion)
		}
		if resp.LatestVersion > aVersion {
			if _, ok := b.BaseFile(aID, resp.LatestVersion); ok {
				rewarmed = true
			}
		}
	}
	if !rewarmed {
		t.Fatal("restored evicted class never re-warmed")
	}
}
