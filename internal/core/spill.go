// Disk-tier integration: spill capture on eviction, singleflight fault-in
// on the read path, whole-engine spill for shutdown, and tier stats.
// The tier itself (segments, blob codec, index, disk budget) lives in
// internal/store; this file owns the ownership rules — when a record may
// be installed into a class and what happens when it may not.
package core

import (
	"encoding/json"
	"os"
	"path/filepath"
	"time"

	"cbde/internal/basefile"
	"cbde/internal/classify"
	"cbde/internal/store"
)

// groupingFile is the spill-dir sidecar holding the classify manager's
// exported grouping state. Class keys embed a creation-order sequence
// number, so without this sidecar a restarted engine re-mints keys by
// arrival order and the recovered spill index becomes unreachable in
// grouped mode. SpillAll (the clean-shutdown path) writes it atomically;
// after an unclean crash it is stale or absent, grouping re-learns from
// traffic, and orphaned spill records degrade like plain evictions until
// compaction reclaims them — the same exposure class as losing the
// version counter without an NDJSON snapshot.
const groupingFile = "grouping.json"

// saveGrouping writes the grouping sidecar via write-to-temp + rename so
// a crash mid-write leaves the previous sidecar intact. No-op for
// classless engines.
func (e *Engine) saveGrouping() error {
	if e.classify == nil || e.cfg.SpillDir == "" {
		return nil
	}
	data, err := json.Marshal(e.classify.Export())
	if err != nil {
		return err
	}
	tmp := filepath.Join(e.cfg.SpillDir, groupingFile+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(e.cfg.SpillDir, groupingFile))
}

// loadGrouping imports the grouping sidecar into the freshly constructed
// engine's classify manager. A missing or corrupt sidecar is not an
// error — the engine boots with empty grouping and re-learns, exactly as
// if the classes had been plainly evicted. LoadState supersedes this: an
// NDJSON snapshot carries its own grouping and replaces the manager.
func (e *Engine) loadGrouping() {
	if e.classify == nil || e.cfg.SpillDir == "" {
		return
	}
	data, err := os.ReadFile(filepath.Join(e.cfg.SpillDir, groupingFile))
	if err != nil {
		return
	}
	var ex classify.Exported
	if err := json.Unmarshal(data, &ex); err != nil {
		return
	}
	_ = e.classify.Import(ex) // only fails on a non-empty manager
}

// spillRecordLocked captures the class's spillable state: installed base
// versions, the selector's working base, version counter, and stored
// samples. Returns nil when there is nothing worth writing (a class that
// never warmed). Callers hold cs.mu; the returned slices alias immutable
// buffers, so the record survives the strip that follows.
func (cs *classState) spillRecordLocked() *store.ClassRecord {
	st := cs.selector.SpillState()
	if cs.distVersion == 0 && len(st.Base) == 0 && len(st.Candidates) == 0 {
		return nil
	}
	rec := &store.ClassRecord{
		Key:             cs.id,
		DistVersion:     cs.distVersion,
		SelectorVersion: st.Version,
		SelectorTag:     st.BaseTag,
		SelectorBase:    st.Base,
	}
	for v, bv := range cs.bases {
		rec.Bases = append(rec.Bases, store.VersionedBlob{Version: v, Bytes: bv.bytes})
	}
	for _, ge := range cs.edges {
		rec.Edges = append(rec.Edges, store.EdgeBlob{
			From:    ge.from,
			To:      ge.to,
			Payload: ge.payload,
			Gzipped: ge.gzipped,
			RawLen:  ge.rawLen,
		})
	}
	for _, d := range st.Candidates {
		rec.Candidates = append(rec.Candidates, store.TaggedDoc{Tag: d.Tag, Bytes: d.Bytes})
	}
	for _, d := range st.Refs {
		rec.Refs = append(rec.Refs, store.TaggedDoc{Tag: d.Tag, Bytes: d.Bytes})
	}
	return rec
}

// faultIn restores a spilled class from the disk tier, returning the
// payload bytes re-charged to the Accountant (0 when nothing was
// installed). The per-class faultMu makes this a singleflight: a flash
// crowd on a spilled class performs exactly one disk read + decode — the
// leader installs while every follower blocks here, then re-checks the
// flag and proceeds with the class already warm.
func (e *Engine) faultIn(cs *classState, now time.Time) int64 {
	cs.faultMu.Lock()
	defer cs.faultMu.Unlock()
	if !cs.spilled.Load() {
		return 0 // the leader already faulted the class in
	}
	// Clear the flag only on the way out (after the install below has
	// published under cs.mu): a follower that observes it set blocks on
	// faultMu above and re-checks, so no request can slip past an
	// in-progress install and serve a full response it didn't need to.
	defer cs.spilled.Store(false)
	// Take removes the index entry whatever happens next, so a stale blob
	// can never resurrect a class that moved on in memory: the next
	// eviction appends a fresh record.
	rec, ok := cs.spill.Take(cs.id)
	if !ok {
		// Dropped by disk-budget compaction or torn/corrupt on disk: the
		// class degrades exactly like a plain eviction and re-warms from
		// traffic.
		return 0
	}

	cs.mu.Lock()
	defer cs.mu.Unlock()
	base, _ := cs.selector.Base()
	if cs.distVersion != 0 || len(cs.bases) != 0 || base != nil {
		// The class warmed by other means first — an NDJSON restore or a
		// request that slipped in before the eviction's spilled flag was
		// set. The record's bytes are stale, but its version counter is a
		// high-water mark that must survive: no version number may ever be
		// reused for different bytes.
		cs.selector.RaiseVersion(rec.SelectorVersion)
		return 0
	}

	var restored int64
	for _, b := range rec.Bases {
		if b.Version <= 0 || len(b.Bytes) == 0 {
			continue
		}
		cs.bases[b.Version] = &baseVersion{bytes: b.Bytes, cs: cs}
		cs.addBase(int64(len(b.Bytes)))
		restored += int64(len(b.Bytes))
	}
	if bv, ok := cs.bases[rec.DistVersion]; ok {
		cs.distVersion = rec.DistVersion
		cs.installedAt = now
		cs.evicted = false
		if cs.class != nil {
			cs.class.SetMatchBase(bv.bytes)
		}
	}
	// Version-graph edges restore only when both endpoint versions made it
	// back; a dangling edge would break the snapshot walk's invariants.
	for _, eb := range rec.Edges {
		if eb.From <= 0 || eb.To <= eb.From || len(eb.Payload) == 0 {
			continue
		}
		if _, ok := cs.bases[eb.From]; !ok {
			continue
		}
		if _, ok := cs.bases[eb.To]; !ok {
			continue
		}
		cs.edges[eb.From] = &versionEdge{
			from:    eb.From,
			to:      eb.To,
			payload: eb.Payload,
			gzipped: eb.Gzipped,
			rawLen:  eb.RawLen,
		}
		cs.addEdge(int64(len(eb.Payload)))
		restored += int64(len(eb.Payload))
	}
	// Selector samples and base re-charge the ledger through the
	// selector's OnStoredBytes callback; the version counter merges as a
	// max so numbering continues monotonically.
	sst := basefile.SpillState{
		Base:    rec.SelectorBase,
		BaseTag: rec.SelectorTag,
		Version: rec.SelectorVersion,
	}
	for _, d := range rec.Candidates {
		sst.Candidates = append(sst.Candidates, basefile.SpillDoc{Bytes: d.Bytes, Tag: d.Tag})
		restored += int64(len(d.Bytes))
	}
	for _, d := range rec.Refs {
		sst.Refs = append(sst.Refs, basefile.SpillDoc{Bytes: d.Bytes, Tag: d.Tag})
		restored += int64(len(d.Bytes))
	}
	restored += int64(len(rec.SelectorBase))
	cs.selector.RestoreSpill(sst, now)
	// Anonymization state is not spilled: the distributable versions were
	// anonymized before they were ever distributed, and a selector version
	// past distVersion restarts its process from live traffic.
	cs.anonProc = nil
	cs.anonSource = 0
	cs.purgeDeltas()
	cs.faultIns++
	e.ctr.faultIns.Inc()
	return restored
}

// EvictClass forces one class through budget eviction — and, with the
// disk tier enabled, through a spill. It exists for operational tooling,
// benchmarks, and tests; budget maintenance normally decides evictions.
// Returns the bytes freed and whether the class exists.
func (e *Engine) EvictClass(classID string) (int64, bool) {
	cs, ok := e.lookup(classID)
	if !ok {
		return 0, false
	}
	return cs.Evict(), true
}

// SpillAll writes a spill record for every class that has state worth
// keeping, without evicting anything — the shutdown path: a subsequent
// process pointed at the same SpillDir recovers the class index from
// segment headers alone and faults bodies in lazily, no NDJSON replay
// needed. Returns the number of classes spilled and the first append
// error encountered.
func (e *Engine) SpillAll() (int, error) {
	if e.spill == nil {
		return 0, nil
	}
	var n int
	var first error
	for _, cs := range e.states() {
		cs.mu.Lock()
		rec := cs.spillRecordLocked()
		cs.mu.Unlock()
		if rec == nil {
			continue
		}
		if err := cs.spill.Append(*rec); err != nil {
			if first == nil {
				first = err
			}
			continue
		}
		cs.spilled.Store(true)
		n++
	}
	// Persist grouping alongside the records: recovered spill keys are
	// only reachable if the next boot classifies URLs to the same
	// seq-numbered class IDs.
	if err := e.saveGrouping(); err != nil && first == nil {
		first = err
	}
	return n, first
}

// SpillStats snapshots the disk tier. The zero value (Enabled false) is
// returned when the tier is disabled.
func (e *Engine) SpillStats() store.TierStats {
	if e.spill == nil {
		return store.TierStats{}
	}
	st := e.spill.Stats()
	st.FaultIns = e.ctr.faultIns.Value()
	return st
}

// Close releases the engine's disk tier, if any. The engine must not
// process requests afterwards.
func (e *Engine) Close() error {
	if e.spill == nil {
		return nil
	}
	return e.spill.Close()
}
