// Per-class version graph: retained base versions plus the delta edges
// between adjacent ones, so a client on *any* retained version is served a
// delta — directly against the version it holds, or as a composed chain of
// cached edge deltas walked up to the current version — instead of falling
// off the delta path to a full response the moment it lags one rebase.
//
// Graph invariants (see DESIGN.md §16):
//
//   - cs.edges[w] is the edge out of retained version w; it exists only
//     while both endpoint versions are resident in cs.bases, and its To is
//     the next retained version above w (edges are built at install time,
//     between the outgoing and incoming distributable versions).
//   - Edges only connect versions in this node's residue class
//     (basefile.Config.SameResidue): after a failover a class can briefly
//     hold foreign-residue versions, and an edge across residues would
//     chain deltas over bytes this node never minted.
//   - Edge payloads are wire-ready (gzipped when that won) and immutable;
//     responses alias them, exactly like baseVersion bytes and memo-cache
//     payloads.
//   - Every byte is accounted under the store ledger's "edge" kind, so
//     -mem-budget governs the graph and prune/evict/epoch-bump drain it.
package core

import (
	"hash/maphash"
	"time"

	"cbde/internal/deltacache"
	"cbde/internal/deltahttp"
	"cbde/internal/gzipx"
	"cbde/internal/obs"
)

// versionEdge is one cached delta between adjacent retained base versions:
// applying payload to bases[from] yields bases[to] byte-for-byte.
type versionEdge struct {
	from    int
	to      int
	payload []byte // wire-ready delta (gzipped when gzipped is set)
	gzipped bool
	rawLen  int // uncompressed delta length, the chain-cost estimate term
}

// addEdge applies an edge byte delta to the class's ledger and the
// engine's global one, mirroring addBase/addIndex.
func (cs *classState) addEdge(d int64) {
	cs.res.AddEdge(d)
	cs.acct.AddEdge(d)
}

// dropEdgeLocked removes the edge out of version v, if any, returning its
// bytes to the ledger. Callers hold cs.mu.
func (cs *classState) dropEdgeLocked(v int) {
	if ge, ok := cs.edges[v]; ok {
		delete(cs.edges, v)
		cs.addEdge(-int64(len(ge.payload)))
	}
}

// dropEdgesLocked removes every edge. Callers hold cs.mu.
func (cs *classState) dropEdgesLocked() {
	for v := range cs.edges {
		cs.dropEdgeLocked(v)
	}
}

// buildEdgeLocked creates the graph edge from the outgoing distributable
// version prev to the incoming version v, encoding prev's bytes into
// base. Callers hold cs.mu (installs are rare; the encode is one rebase-
// sized vdelta run). The edge is skipped when the graph is effectively
// off, prev is not resident, or the versions span residue classes.
func (e *Engine) buildEdgeLocked(cs *classState, prev, v int, base []byte) {
	if e.cfg.GraphDepth < 2 || prev <= 0 || prev >= v {
		return
	}
	prevBV, ok := cs.bases[prev]
	if !ok {
		return
	}
	if !e.cfg.Selector.SameResidue(prev, v) {
		return
	}
	delta, err := e.coder.EncodeIndexedInto(prevBV.vdeltaIndex(e.coder), base, nil)
	if err != nil {
		return
	}
	ge := &versionEdge{from: prev, to: v, payload: delta, rawLen: len(delta)}
	if !e.cfg.GzipOff {
		if c := gzipx.Compress(delta); len(c) < len(delta) {
			ge.payload, ge.gzipped = c, true
		}
	}
	cs.dropEdgeLocked(prev) // stale edge from a failed install path, if any
	cs.edges[prev] = ge
	cs.addEdge(int64(len(ge.payload)))
}

// respondChain serves a lagging client the composed chain: the cached
// edges from its held version up to the current one, plus a freshly
// encoded (and memoized) tip delta from the current base to the document.
// The whole framed chain is memoized under the explicit (From, To) edge
// key, so every client at the same depth shares one assembly.
func (e *Engine) respondChain(cs *classState, snap encodeSnapshot, req Request, now time.Time, tr *obs.Trace) Response {
	if cs.deltas == nil {
		return e.encodeChain(cs, snap, req, now, tr)
	}
	t0 := tr.Now()
	key := deltacache.Key{
		From:    snap.clientVersion,
		To:      snap.distVersion,
		DocHash: maphash.Bytes(e.docSeed, req.Doc),
		DocLen:  len(req.Doc),
		Format:  uint8(FormatVdeltaChain),
	}
	res, fl, st := cs.deltas.Acquire(key, e.anonEpoch.Load())
	switch st {
	case deltacache.StatusHit:
		e.ctr.memoHits.Inc()
	case deltacache.StatusCoalesced:
		res = fl.Wait()
		e.ctr.memoCoalesced.Inc()
	default: // StatusLead: this request assembles the chain for the key.
		e.ctr.memoMisses.Inc()
		tr.Record(obs.StageMemo, t0, 0)
		resp := e.encodeChain(cs, snap, req, now, tr)
		out := deltacache.Result{Outcome: deltacache.OutcomeFull}
		switch {
		case resp.Kind == KindDelta:
			out = deltacache.Result{Outcome: deltacache.OutcomeDelta, Payload: resp.Payload}
		case resp.BasicRebase:
			out.Outcome = deltacache.OutcomeTooBig
		}
		cs.deltas.Commit(fl, out)
		return resp
	}

	tr.Record(obs.StageMemo, t0, int64(len(res.Payload)))
	switch res.Outcome {
	case deltacache.OutcomeDelta:
		return Response{
			Kind:          KindDelta,
			BaseVersion:   snap.clientVersion,
			LatestVersion: e.latestVersion(cs),
			Payload:       res.Payload,
			Format:        FormatVdeltaChain,
			// Installs purge the memo cache, so within one cache lifetime the
			// (From, To) walk is fixed and the snapshot's chain length holds.
			ChainLen: len(snap.chain) + 1,
		}
	case deltacache.OutcomeTooBig:
		return e.basicRebase(cs, snap, req, now)
	default:
		return Response{Kind: KindFull, LatestVersion: e.latestVersion(cs)}
	}
}

// encodeChain builds the framed chain payload: the snapshot's cached edge
// deltas in order, then a tip delta encoded from the current base to the
// document. The tip encode reuses encodeResponse (pooled scratch, ratio
// check, gzip-if-smaller); an oversized tip triggers the usual basic-
// rebase, and a chain that fails to undercut the document itself falls
// back to a full response — composition must never cost more than giving
// up.
func (e *Engine) encodeChain(cs *classState, snap encodeSnapshot, req Request, now time.Time, tr *obs.Trace) Response {
	tipSnap := encodeSnapshot{
		distVersion:   snap.distVersion,
		clientVersion: snap.distVersion,
		base:          snap.tipBase,
	}
	tip := e.encodeResponse(cs, tipSnap, req, FormatVdelta, now, tr)
	if tip.Kind != KindDelta {
		return tip
	}
	segs := make([]deltahttp.ChainSegment, 0, len(snap.chain)+1)
	for _, ge := range snap.chain {
		segs = append(segs, deltahttp.ChainSegment{Payload: ge.payload, Gzipped: ge.gzipped})
	}
	segs = append(segs, deltahttp.ChainSegment{Payload: tip.Payload, Gzipped: tip.Gzipped})
	framed := deltahttp.AppendChain(nil, segs)
	if len(framed) >= len(req.Doc) {
		return Response{Kind: KindFull, LatestVersion: tip.LatestVersion}
	}
	return Response{
		Kind:          KindDelta,
		BaseVersion:   snap.clientVersion,
		LatestVersion: tip.LatestVersion,
		Payload:       framed,
		Format:        FormatVdeltaChain,
		ChainLen:      len(segs),
	}
}

// GraphStats is the engine-wide version-graph snapshot the delta-server's
// /_cbde/store endpoint serves.
type GraphStats struct {
	// Depth is the configured retention bound G (Config.GraphDepth).
	Depth int `json:"depth"`
	// Edges and EdgeBytes are the resident edge deltas across all classes.
	Edges     int   `json:"edges"`
	EdgeBytes int64 `json:"edgeBytes"`
	// Direct counts single-delta responses, Composed counts chained-delta
	// responses, and FallbackFull counts full responses served to clients
	// whose advertised version had aged out of the graph.
	Direct       int64 `json:"direct"`
	Composed     int64 `json:"composed"`
	FallbackFull int64 `json:"fallbackFull"`
}

// GraphStats snapshots the version graph across all classes.
func (e *Engine) GraphStats() GraphStats {
	st := GraphStats{
		Depth:        e.cfg.GraphDepth,
		Direct:       e.ctr.graphDirect.Value(),
		Composed:     e.ctr.graphComposed.Value(),
		FallbackFull: e.ctr.graphFallback.Value(),
	}
	for _, cs := range e.states() {
		cs.mu.RLock()
		st.Edges += len(cs.edges)
		cs.mu.RUnlock()
	}
	st.EdgeBytes = e.acct.Usage().EdgeBytes
	return st
}
