package core

import (
	"bytes"
	"testing"

	"cbde/internal/deltahttp"
	"cbde/internal/gzipx"
	"cbde/internal/vdelta"
)

// FuzzChainCompose proves the composed-chain identity the version graph
// rests on: for any document history v0 → v1 → ... → vn, applying the
// framed chain of per-hop deltas to v0 reproduces vn byte-for-byte —
// exactly what a direct v0 → vn encode produces. Segment gzip flags are
// exercised on alternating hops, matching the wire where each edge keeps
// its own compression decision.
func FuzzChainCompose(f *testing.F) {
	f.Add([]byte("the quick brown fox jumps over the lazy dog"), uint8(3))
	f.Add([]byte(""), uint8(1))
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7}, uint8(5))
	f.Add(bytes.Repeat([]byte("dynamic web content "), 50), uint8(2))

	e, err := NewEngine(Config{})
	if err != nil {
		f.Fatal(err)
	}

	f.Fuzz(func(t *testing.T, seed []byte, hops uint8) {
		n := int(hops)%4 + 1
		vers := make([][]byte, n+1)
		vers[0] = seed
		for i := 1; i <= n; i++ {
			vers[i] = mutateDoc(vers[i-1], i)
		}
		target := vers[n]

		segs := make([]deltahttp.ChainSegment, 0, n)
		for i := 0; i < n; i++ {
			d, err := vdelta.Encode(vers[i], vers[i+1])
			if err != nil {
				t.Fatalf("encode hop %d: %v", i, err)
			}
			seg := deltahttp.ChainSegment{Payload: d}
			if i%2 == 1 {
				if c := gzipx.Compress(d); len(c) < len(d) {
					seg = deltahttp.ChainSegment{Payload: c, Gzipped: true}
				}
			}
			segs = append(segs, seg)
		}
		framed := deltahttp.AppendChain(nil, segs)

		composed, err := e.DecodeAs(vers[0], framed, false, FormatVdeltaChain)
		if err != nil {
			t.Fatalf("decode chain: %v", err)
		}
		if !bytes.Equal(composed, target) {
			t.Fatalf("composed chain mismatch: got %d bytes, want %d", len(composed), len(target))
		}

		// The direct encode must agree with the composition.
		direct, err := vdelta.Encode(vers[0], target)
		if err != nil {
			t.Fatalf("direct encode: %v", err)
		}
		viaDirect, err := e.Decode(vers[0], direct, false)
		if err != nil {
			t.Fatalf("decode direct: %v", err)
		}
		if !bytes.Equal(viaDirect, composed) {
			t.Fatal("direct and composed reconstructions disagree")
		}
	})
}

// mutateDoc derives the next document version deterministically from the
// previous one: flip one byte and append a short incompressible section —
// the edit shape (mostly shared content, localized change) base-file
// deltas are built for.
func mutateDoc(prev []byte, i int) []byte {
	out := append([]byte(nil), prev...)
	if len(out) > 0 {
		out[(i*37)%len(out)] ^= 0x5a
	}
	return append(out, incompressible(uint64(i)*7+1, 64)...)
}
