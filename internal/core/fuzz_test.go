package core

import (
	"bytes"
	"testing"

	"cbde/internal/gzipx"
	"cbde/internal/vcdiff"
	"cbde/internal/vdelta"
)

// FuzzEngineDecode hardens the client-facing decode path — gzip unwrap plus
// either wire format — against arbitrary response payloads: it must return
// an error or a document, never panic, whatever bytes a hostile or corrupt
// delta-server hands a client. Seeds cover valid payloads of both formats,
// gzipped and plain, plus truncations.
func FuzzEngineDecode(f *testing.F) {
	e, err := NewEngine(Config{})
	if err != nil {
		f.Fatal(err)
	}
	base := []byte("the quick brown fox jumps over the lazy dog; the quick brown fox again")
	target := []byte("the quick brown fox vaults over the lazy dog; and the fox once more")
	vd, err := vdelta.Encode(base, target)
	if err != nil {
		f.Fatal(err)
	}
	vc, err := vcdiff.Encode(base, target)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(base, vd, false, false)
	f.Add(base, gzipx.Compress(vd), true, false)
	f.Add(base, vc, false, true)
	f.Add(base, gzipx.Compress(vc), true, true)
	f.Add([]byte{}, []byte{}, false, false)
	f.Add(base, vd[:len(vd)/2], false, false)
	f.Add(base, vc[:len(vc)/2], false, true)
	f.Add(base, gzipx.Compress(vd), false, false) // gzip bytes decoded as raw delta

	f.Fuzz(func(t *testing.T, base, payload []byte, gzipped, useVCDIFF bool) {
		format := FormatVdelta
		if useVCDIFF {
			format = FormatVCDIFF
		}
		doc, err := e.DecodeAs(base, payload, gzipped, format)
		if err != nil && doc != nil {
			t.Fatalf("DecodeAs returned both a document (%d bytes) and error %v", len(doc), err)
		}
	})
}

// FuzzEngineProcessRoundTrip feeds arbitrary documents and URLs through the
// full pipeline in classless mode (every URL delta-serves from its second
// request) and checks the fundamental serving property: whatever Process
// sends as a delta must reconstruct the document exactly.
func FuzzEngineProcessRoundTrip(f *testing.F) {
	f.Add("www.fuzz.com/a", []byte("first version of the document"), []byte("second version of the document"))
	f.Add("www.fuzz.com/a?q=1", []byte{}, []byte("grew from empty"))
	f.Add("www.fuzz.com/b", bytes.Repeat([]byte("na"), 300), bytes.Repeat([]byte("na"), 301))

	f.Fuzz(func(t *testing.T, url string, doc1, doc2 []byte) {
		if len(doc1) == 0 || len(doc2) == 0 {
			t.Skip("Process treats empty documents as absent")
		}
		e, err := NewEngine(Config{Mode: ModeClassless})
		if err != nil {
			t.Fatal(err)
		}
		first, err := e.Process(Request{URL: url, UserID: "u", Doc: doc1})
		if err != nil {
			t.Skip("unroutable URL") // partition errors are fine; nothing to check
		}
		if first.LatestVersion == 0 {
			t.Fatalf("classless mode did not distribute a base on first contact")
		}
		base, v, ok := e.LatestBase(first.ClassID)
		if !ok {
			t.Fatalf("LatestBase missing after LatestVersion=%d", first.LatestVersion)
		}
		resp, err := e.Process(Request{
			URL: url, UserID: "u", Doc: doc2,
			HaveClassID: first.ClassID, HaveVersion: v,
		})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Kind != KindDelta {
			return // oversized delta → full response; nothing to decode
		}
		got, err := e.DecodeAs(base, resp.Payload, resp.Gzipped, resp.Format)
		if err != nil {
			t.Fatalf("decode served delta: %v", err)
		}
		if !bytes.Equal(got, doc2) {
			t.Fatalf("round trip mismatch: got %d bytes, want %d", len(got), len(doc2))
		}
		// Differential: the engine encodes through the pooled reused-index
		// path (EncodeIndexedInto); it must agree byte-for-byte with an
		// independently built index and with the per-call Encode path, so a
		// pooling or index bug cannot hide behind a still-decodable delta.
		coder := vdelta.NewCoder()
		indexed, err := coder.EncodeIndexed(coder.NewIndex(base), doc2)
		if err != nil {
			t.Fatalf("EncodeIndexed: %v", err)
		}
		plain, err := coder.Encode(base, doc2)
		if err != nil {
			t.Fatalf("Encode: %v", err)
		}
		if !bytes.Equal(indexed, plain) {
			t.Fatalf("EncodeIndexed differs from Encode (%d vs %d bytes)", len(indexed), len(plain))
		}
		if resp.Format == FormatVdelta {
			served := resp.Payload
			if resp.Gzipped {
				if served, err = gzipx.Decompress(resp.Payload); err != nil {
					t.Fatalf("decompress served delta: %v", err)
				}
			}
			if !bytes.Equal(served, indexed) {
				t.Fatalf("served delta differs from independent flat-index encode (%d vs %d bytes)",
					len(served), len(indexed))
			}
		}

		// Second pass under a tiny memory budget, so eviction churn runs on
		// every fuzz input: whatever the sweep does between the two requests,
		// a delta response must still reconstruct the document exactly, and
		// a degraded class must answer full — never error.
		be, err := NewEngine(Config{Mode: ModeClassless, MemBudget: 1})
		if err != nil {
			t.Fatal(err)
		}
		bfirst, err := be.Process(Request{URL: url, UserID: "u", Doc: doc1})
		if err != nil {
			t.Fatal(err) // the URL routed above; the budget must not change that
		}
		breq := Request{URL: url, UserID: "u", Doc: doc2, HaveClassID: bfirst.ClassID}
		var bbase []byte
		if b, v, ok := be.LatestBase(bfirst.ClassID); ok {
			bbase, breq.HaveVersion = b, v
		}
		bresp, err := be.Process(breq)
		if err != nil {
			t.Fatal(err)
		}
		if bresp.Kind == KindDelta {
			got, err := be.DecodeAs(bbase, bresp.Payload, bresp.Gzipped, bresp.Format)
			if err != nil {
				t.Fatalf("decode budgeted delta: %v", err)
			}
			if !bytes.Equal(got, doc2) {
				t.Fatalf("budgeted round trip mismatch: got %d bytes, want %d", len(got), len(doc2))
			}
		}
	})
}
