package core

import (
	"bytes"
	"testing"

	"cbde/internal/gzipx"
	"cbde/internal/vcdiff"
	"cbde/internal/vdelta"
)

// FuzzEngineDecode hardens the client-facing decode path — gzip unwrap plus
// either wire format — against arbitrary response payloads: it must return
// an error or a document, never panic, whatever bytes a hostile or corrupt
// delta-server hands a client. Seeds cover valid payloads of both formats,
// gzipped and plain, plus truncations.
func FuzzEngineDecode(f *testing.F) {
	e, err := NewEngine(Config{})
	if err != nil {
		f.Fatal(err)
	}
	base := []byte("the quick brown fox jumps over the lazy dog; the quick brown fox again")
	target := []byte("the quick brown fox vaults over the lazy dog; and the fox once more")
	vd, err := vdelta.Encode(base, target)
	if err != nil {
		f.Fatal(err)
	}
	vc, err := vcdiff.Encode(base, target)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(base, vd, false, false)
	f.Add(base, gzipx.Compress(vd), true, false)
	f.Add(base, vc, false, true)
	f.Add(base, gzipx.Compress(vc), true, true)
	f.Add([]byte{}, []byte{}, false, false)
	f.Add(base, vd[:len(vd)/2], false, false)
	f.Add(base, vc[:len(vc)/2], false, true)
	f.Add(base, gzipx.Compress(vd), false, false) // gzip bytes decoded as raw delta

	f.Fuzz(func(t *testing.T, base, payload []byte, gzipped, useVCDIFF bool) {
		format := FormatVdelta
		if useVCDIFF {
			format = FormatVCDIFF
		}
		doc, err := e.DecodeAs(base, payload, gzipped, format)
		if err != nil && doc != nil {
			t.Fatalf("DecodeAs returned both a document (%d bytes) and error %v", len(doc), err)
		}
	})
}

// FuzzEngineProcessRoundTrip feeds arbitrary documents and URLs through the
// full pipeline in classless mode (every URL delta-serves from its second
// request) and checks the fundamental serving property: whatever Process
// sends as a delta must reconstruct the document exactly.
func FuzzEngineProcessRoundTrip(f *testing.F) {
	f.Add("www.fuzz.com/a", []byte("first version of the document"), []byte("second version of the document"))
	f.Add("www.fuzz.com/a?q=1", []byte{}, []byte("grew from empty"))
	f.Add("www.fuzz.com/b", bytes.Repeat([]byte("na"), 300), bytes.Repeat([]byte("na"), 301))

	f.Fuzz(func(t *testing.T, url string, doc1, doc2 []byte) {
		if len(doc1) == 0 || len(doc2) == 0 {
			t.Skip("Process treats empty documents as absent")
		}
		e, err := NewEngine(Config{Mode: ModeClassless})
		if err != nil {
			t.Fatal(err)
		}
		first, err := e.Process(Request{URL: url, UserID: "u", Doc: doc1})
		if err != nil {
			t.Skip("unroutable URL") // partition errors are fine; nothing to check
		}
		if first.LatestVersion == 0 {
			t.Fatalf("classless mode did not distribute a base on first contact")
		}
		base, v, ok := e.LatestBase(first.ClassID)
		if !ok {
			t.Fatalf("LatestBase missing after LatestVersion=%d", first.LatestVersion)
		}
		resp, err := e.Process(Request{
			URL: url, UserID: "u", Doc: doc2,
			HaveClassID: first.ClassID, HaveVersion: v,
		})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Kind != KindDelta {
			return // oversized delta → full response; nothing to decode
		}
		got, err := e.DecodeAs(base, resp.Payload, resp.Gzipped, resp.Format)
		if err != nil {
			t.Fatalf("decode served delta: %v", err)
		}
		if !bytes.Equal(got, doc2) {
			t.Fatalf("round trip mismatch: got %d bytes, want %d", len(got), len(doc2))
		}
		// Differential: the engine encodes through the pooled reused-index
		// path (EncodeIndexedInto); it must agree byte-for-byte with an
		// independently built index and with the per-call Encode path, so a
		// pooling or index bug cannot hide behind a still-decodable delta.
		coder := vdelta.NewCoder()
		indexed, err := coder.EncodeIndexed(coder.NewIndex(base), doc2)
		if err != nil {
			t.Fatalf("EncodeIndexed: %v", err)
		}
		plain, err := coder.Encode(base, doc2)
		if err != nil {
			t.Fatalf("Encode: %v", err)
		}
		if !bytes.Equal(indexed, plain) {
			t.Fatalf("EncodeIndexed differs from Encode (%d vs %d bytes)", len(indexed), len(plain))
		}
		if resp.Format == FormatVdelta {
			served := resp.Payload
			if resp.Gzipped {
				if served, err = gzipx.Decompress(resp.Payload); err != nil {
					t.Fatalf("decompress served delta: %v", err)
				}
			}
			if !bytes.Equal(served, indexed) {
				t.Fatalf("served delta differs from independent flat-index encode (%d vs %d bytes)",
					len(served), len(indexed))
			}
		}

		// Second pass under a tiny memory budget, so eviction churn runs on
		// every fuzz input: whatever the sweep does between the two requests,
		// a delta response must still reconstruct the document exactly, and
		// a degraded class must answer full — never error.
		be, err := NewEngine(Config{Mode: ModeClassless, MemBudget: 1})
		if err != nil {
			t.Fatal(err)
		}
		bfirst, err := be.Process(Request{URL: url, UserID: "u", Doc: doc1})
		if err != nil {
			t.Fatal(err) // the URL routed above; the budget must not change that
		}
		breq := Request{URL: url, UserID: "u", Doc: doc2, HaveClassID: bfirst.ClassID}
		var bbase []byte
		if b, v, ok := be.LatestBase(bfirst.ClassID); ok {
			bbase, breq.HaveVersion = b, v
		}
		bresp, err := be.Process(breq)
		if err != nil {
			t.Fatal(err)
		}
		if bresp.Kind == KindDelta {
			got, err := be.DecodeAs(bbase, bresp.Payload, bresp.Gzipped, bresp.Format)
			if err != nil {
				t.Fatalf("decode budgeted delta: %v", err)
			}
			if !bytes.Equal(got, doc2) {
				t.Fatalf("budgeted round trip mismatch: got %d bytes, want %d", len(got), len(doc2))
			}
		}
	})
}

// FuzzEngineProcessMemoized hardens the memoization layer with arbitrary
// documents: the same request repeated must answer identically (the second
// serve comes from — or refills — the memo cache), a caching engine must
// agree byte-for-byte with a cache-off engine, and every served delta must
// reconstruct the document exactly. Seeds cover the coalescing and
// invalidation edges: identical documents (empty delta), far-apart
// documents (oversized delta → rebase purges the cache mid-sequence), and
// single-byte flips.
func FuzzEngineProcessMemoized(f *testing.F) {
	f.Add("www.fuzz.com/m", []byte("first version of the document"), []byte("second version of the document"))
	f.Add("www.fuzz.com/m", []byte("identical bytes"), []byte("identical bytes"))
	f.Add("www.fuzz.com/m?q=1", []byte{1}, []byte{2})
	// Far-apart documents: the delta is oversized, so the repeat crosses a
	// basic-rebase invalidation barrier.
	f.Add("www.fuzz.com/r", bytes.Repeat([]byte{0xA7, 0x03, 0xFF, 0x5C}, 300), bytes.Repeat([]byte("zq"), 600))
	f.Add("www.fuzz.com/n", bytes.Repeat([]byte("na"), 300), bytes.Repeat([]byte("na"), 301))

	f.Fuzz(func(t *testing.T, url string, doc1, doc2 []byte) {
		if len(doc1) == 0 || len(doc2) == 0 {
			t.Skip("Process treats empty documents as absent")
		}
		cached, err := NewEngine(Config{Mode: ModeClassless})
		if err != nil {
			t.Fatal(err)
		}
		plain, err := NewEngine(Config{Mode: ModeClassless, DeltaCacheOff: true})
		if err != nil {
			t.Fatal(err)
		}

		// drive runs first(doc1) then doc2 twice against the same held
		// version; on the caching engine the repeat is the memoized serve
		// (or a re-lead across an invalidation barrier — both must be
		// correct). Every delta is round-trip-verified.
		drive := func(e *Engine) (a, b Response, ok bool) {
			first, err := e.Process(Request{URL: url, UserID: "u", Doc: doc1})
			if err != nil {
				return a, b, false // unroutable URL; nothing to check
			}
			base, v, ok := e.LatestBase(first.ClassID)
			if !ok {
				t.Fatalf("LatestBase missing after first contact (LatestVersion=%d)", first.LatestVersion)
			}
			req := Request{
				URL: url, UserID: "u", Doc: doc2,
				HaveClassID: first.ClassID, HaveVersion: v,
			}
			for i, rp := range []*Response{&a, &b} {
				resp, err := e.Process(req)
				if err != nil {
					t.Fatal(err)
				}
				if resp.Kind == KindDelta {
					if resp.BaseVersion != v {
						t.Fatalf("pass %d: delta against version %d, client holds %d", i, resp.BaseVersion, v)
					}
					got, err := e.DecodeAs(base, resp.Payload, resp.Gzipped, resp.Format)
					if err != nil {
						t.Fatalf("pass %d: decode served delta: %v", i, err)
					}
					if !bytes.Equal(got, doc2) {
						t.Fatalf("pass %d: round trip mismatch: got %d bytes, want %d", i, len(got), len(doc2))
					}
				}
				*rp = resp
			}
			return a, b, true
		}

		ca, cb, ok := drive(cached)
		if !ok {
			return
		}
		pa, _, ok := drive(plain)
		if !ok {
			t.Fatal("URL routed on the caching engine but not the plain one")
		}

		// The repeat must answer like the original: the encode is
		// deterministic, so a memoized serve and a re-encode must be
		// indistinguishable on the wire.
		if ca.Kind != cb.Kind {
			t.Fatalf("repeat changed the response kind: %v then %v", ca.Kind, cb.Kind)
		}
		if ca.Kind == KindDelta {
			if !bytes.Equal(ca.Payload, cb.Payload) || ca.Gzipped != cb.Gzipped {
				t.Fatalf("repeat payload differs from the original (%d vs %d bytes)", len(cb.Payload), len(ca.Payload))
			}
		}
		// Caching on vs off must be invisible on the wire.
		if ca.Kind != pa.Kind {
			t.Fatalf("cache-on kind %v != cache-off kind %v", ca.Kind, pa.Kind)
		}
		if ca.Kind == KindDelta && !bytes.Equal(ca.Payload, pa.Payload) {
			t.Fatalf("cache-on payload differs from cache-off (%d vs %d bytes)", len(ca.Payload), len(pa.Payload))
		}

		// Cross an install barrier (the doc2 passes may have rebased) and
		// verify the cache still serves decodable deltas against whatever
		// base is then live.
		if base, v, ok := cached.LatestBase(ca.ClassID); ok {
			resp, err := cached.Process(Request{
				URL: url, UserID: "u", Doc: doc1,
				HaveClassID: ca.ClassID, HaveVersion: v,
			})
			if err != nil {
				t.Fatal(err)
			}
			if resp.Kind == KindDelta {
				got, err := cached.DecodeAs(base, resp.Payload, resp.Gzipped, resp.Format)
				if err != nil {
					t.Fatalf("decode post-barrier delta: %v", err)
				}
				if !bytes.Equal(got, doc1) {
					t.Fatalf("post-barrier round trip mismatch: got %d bytes, want %d", len(got), len(doc1))
				}
			}
		}
	})
}
