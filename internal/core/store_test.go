package core

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"testing"

	"cbde/internal/basefile"
)

// budgetedEngine builds an engine with a byte budget, anonymization off so
// bases distribute immediately, and a deterministic clock.
func budgetedEngine(t *testing.T, budget int64) *Engine {
	t.Helper()
	return newTestEngine(t, Config{
		MemBudget:            budget,
		DisableAnonymization: true,
	})
}

// churnHeld is one simulated client's held base for a class.
type churnHeld struct {
	classID string
	version int
	base    []byte
}

// TestBudgetEnforcedUnderChurn drives more classes than the budget can hold
// and checks the acceptance bound: after every (sequential) request the
// resident ledger is at or under the budget — the end-of-request sweep
// converges before Process returns — while every delta response still
// reconstructs the origin document byte-identically.
func TestBudgetEnforcedUnderChurn(t *testing.T) {
	const budget = 64 << 10
	e := budgetedEngine(t, budget)

	depts := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"}
	held := map[string]churnHeld{}
	deltas := 0
	for i := 0; i < 400; i++ {
		dept := depts[i%len(depts)]
		user := fmt.Sprintf("user-%d", i%7)
		doc := renderDoc(dept, i%3, i/8, user)
		req := Request{
			URL:    fmt.Sprintf("www.shop.com/%s/%d", dept, i%3),
			UserID: user,
			Doc:    doc,
		}
		if h, ok := held[dept]; ok {
			req.HaveClassID = h.classID
			req.HaveVersion = h.version
		}
		resp, err := e.Process(req)
		if err != nil {
			t.Fatal(err)
		}

		if resp.Kind == KindDelta {
			h := held[dept]
			got, err := e.DecodeAs(h.base, resp.Payload, resp.Gzipped, resp.Format)
			if err != nil {
				t.Fatalf("request %d: decode delta: %v", i, err)
			}
			if !bytes.Equal(got, doc) {
				t.Fatalf("request %d: delta round-trip mismatch", i)
			}
			deltas++
		}

		// Client refresh: fetch the announced latest base when it moved;
		// drop the held base when the class is evicted (LatestVersion 0).
		if resp.LatestVersion == 0 {
			delete(held, dept)
		} else if resp.LatestVersion != held[dept].version {
			if base, ok := e.BaseFile(resp.ClassID, resp.LatestVersion); ok {
				held[dept] = churnHeld{classID: resp.ClassID, version: resp.LatestVersion, base: base}
			}
		}

		if got := e.StoreStats().Resident.Total; got > budget {
			t.Fatalf("request %d: resident bytes %d exceed budget %d after sweep", i, got, budget)
		}
	}

	st := e.StoreStats()
	if st.Evictions == 0 {
		t.Fatal("no evictions despite demand exceeding the budget")
	}
	if st.Budget != budget {
		t.Fatalf("StoreStats budget = %d, want %d", st.Budget, budget)
	}
	if len(st.Log) == 0 {
		t.Fatal("eviction log is empty")
	}
	if deltas == 0 {
		t.Fatal("no delta responses served; churn test never exercised the warm path")
	}
}

// TestEvictedClassDegradesAndRewarms pins the degradation contract: an
// evicted class answers with full responses and announces only resident
// versions, re-warms from the next traffic, and never reuses a version
// number for different bytes.
func TestEvictedClassDegradesAndRewarms(t *testing.T) {
	// Small enough that pruning alone cannot keep two warm classes
	// resident: the sweep must evict the cold one.
	const budget = 10 << 10
	e := budgetedEngine(t, budget)

	// Warm class A until it has a distributable base.
	var aID string
	var aVersion int
	for u := 0; u < 4; u++ {
		user := fmt.Sprintf("a-user-%d", u)
		resp, err := e.Process(Request{
			URL:    "www.shop.com/alpha/1",
			UserID: user,
			Doc:    renderDoc("alpha", 1, u, user),
		})
		if err != nil {
			t.Fatal(err)
		}
		aID, aVersion = resp.ClassID, resp.LatestVersion
	}
	if aVersion == 0 {
		t.Fatal("class A never got a distributable base")
	}

	// Hammer class B until the sweep evicts A.
	evicted := false
	for i := 0; i < 400 && !evicted; i++ {
		user := fmt.Sprintf("b-user-%d", i%9)
		if _, err := e.Process(Request{
			URL:    "www.shop.com/beta/2",
			UserID: user,
			Doc:    renderDoc("beta", 2, i, user),
		}); err != nil {
			t.Fatal(err)
		}
		st, ok := e.ClassStats(aID)
		if !ok {
			t.Fatal("class A vanished from the stats table")
		}
		evicted = st.Evicted
	}
	if !evicted {
		t.Fatalf("class A never evicted (store stats: %+v)", e.StoreStats())
	}

	st, _ := e.ClassStats(aID)
	if st.Evictions == 0 {
		t.Fatalf("evicted class reports %d evictions", st.Evictions)
	}
	if st.BaseVersion != 0 {
		t.Fatalf("evicted class still announces base version %d", st.BaseVersion)
	}
	if st.ResidentBytes != 0 {
		t.Fatalf("evicted class still accounts %d resident bytes", st.ResidentBytes)
	}
	if _, ok := e.BaseFile(aID, aVersion); ok {
		t.Fatal("evicted class still serves its old base version")
	}

	// Requests to A again: the first is served in full (the held base is
	// gone) and re-warms the class — anonymization is off, so the document
	// becomes a distributable base again at a strictly newer version. A
	// sweep can immediately re-evict the re-warmed base while the store is
	// saturated, so drive a few requests until the base is fetchable.
	rewarmed := false
	for j := 0; j < 30 && !rewarmed; j++ {
		resp, err := e.Process(Request{
			URL:         "www.shop.com/alpha/1",
			UserID:      "returning-user",
			Doc:         renderDoc("alpha", 1, 100+j, "returning-user"),
			HaveClassID: aID,
			HaveVersion: aVersion,
		})
		if err != nil {
			t.Fatal(err)
		}
		if j == 0 && resp.Kind != KindFull {
			t.Fatalf("first post-eviction response is %v, want full", resp.Kind)
		}
		if resp.LatestVersion != 0 && resp.LatestVersion <= aVersion {
			t.Fatalf("re-warmed version %d does not exceed pre-eviction version %d (version reuse)",
				resp.LatestVersion, aVersion)
		}
		if resp.LatestVersion > aVersion {
			if _, ok := e.BaseFile(aID, resp.LatestVersion); ok {
				rewarmed = true
				st, _ = e.ClassStats(aID)
				if st.Rewarms == 0 {
					t.Fatal("re-warmed class reports zero rewarms")
				}
				if st.Evicted {
					t.Fatal("class with a resident base still marked evicted")
				}
			}
		}
	}
	if !rewarmed {
		t.Fatalf("class A never re-warmed to a fetchable base (store stats: %+v)", e.StoreStats())
	}
}

// TestLedgerDrainsToZero is the byte-accuracy invariant: with a budget so
// small that every sweep evicts everything, the accountant must return to
// exactly zero after each request — any leak or double-count surfaces as a
// nonzero residue.
func TestLedgerDrainsToZero(t *testing.T) {
	e := budgetedEngine(t, 1)
	for i := 0; i < 60; i++ {
		dept := []string{"alpha", "beta"}[i%2]
		user := fmt.Sprintf("user-%d", i%5)
		if _, err := e.Process(Request{
			URL:    fmt.Sprintf("www.shop.com/%s/1", dept),
			UserID: user,
			Doc:    renderDoc(dept, 1, i, user),
		}); err != nil {
			t.Fatal(err)
		}
		if got := e.StoreStats().Resident; got.Total != 0 {
			t.Fatalf("request %d: ledger residue after full eviction: %+v", i, got)
		}
	}
	if st := e.StoreStats(); st.Evictions == 0 {
		t.Fatal("no evictions under a 1-byte budget")
	}
}

// TestConcurrentProcessEvictSave is the race-detector stress for the
// governed store: concurrent clients (delta decode verified byte-for-byte
// against the origin document), budget sweeps triggered by every request,
// and a snapshotter saving state and re-loading it into fresh engines
// while eviction churns underneath.
func TestConcurrentProcessEvictSave(t *testing.T) {
	const budget = 32 << 10
	e := budgetedEngine(t, budget)

	depts := []string{"alpha", "beta", "gamma", "delta"}
	const workers = 4
	const iters = 250

	var workersWG sync.WaitGroup
	done := make(chan struct{})

	// Snapshotter: SaveState must stay consistent (and loadable) while
	// classes evict and re-warm underneath it.
	snapDone := make(chan struct{})
	go func() {
		defer close(snapDone)
		for {
			select {
			case <-done:
				return
			default:
			}
			var buf bytes.Buffer
			if err := e.SaveState(&buf); err != nil {
				t.Errorf("SaveState under churn: %v", err)
				return
			}
			fresh, err := NewEngine(Config{MemBudget: budget, DisableAnonymization: true})
			if err != nil {
				t.Error(err)
				return
			}
			if err := fresh.LoadState(&buf); err != nil {
				t.Errorf("LoadState of churn snapshot: %v", err)
				return
			}
			e.StoreStats()
			e.AllClassStats()
			if err := e.SaveState(io.Discard); err != nil {
				t.Errorf("SaveState to discard: %v", err)
				return
			}
		}
	}()

	for w := 0; w < workers; w++ {
		workersWG.Add(1)
		go func(w int) {
			defer workersWG.Done()
			mine := map[string]churnHeld{}
			for i := 0; i < iters; i++ {
				dept := depts[(i+w)%len(depts)]
				user := fmt.Sprintf("w%d-u%d", w, i%6)
				doc := renderDoc(dept, i%3, i/4, user)
				req := Request{
					URL:    fmt.Sprintf("www.shop.com/%s/%d", dept, i%3),
					UserID: user,
					Doc:    doc,
				}
				if h, ok := mine[dept]; ok {
					req.HaveClassID = h.classID
					req.HaveVersion = h.version
				}
				resp, err := e.Process(req)
				if err != nil {
					t.Error(err)
					return
				}
				if resp.Kind == KindDelta {
					h := mine[dept]
					if resp.BaseVersion != h.version {
						t.Errorf("delta against version %d, client holds %d", resp.BaseVersion, h.version)
						return
					}
					got, err := e.DecodeAs(h.base, resp.Payload, resp.Gzipped, resp.Format)
					if err != nil {
						t.Errorf("decode delta under churn: %v", err)
						return
					}
					if !bytes.Equal(got, doc) {
						t.Error("delta round-trip mismatch under churn")
						return
					}
				}
				if resp.LatestVersion == 0 {
					// The class is evicted right now; drop the held base
					// like a client whose refresh 404ed.
					delete(mine, dept)
				} else if resp.LatestVersion != mine[dept].version {
					if base, ok := e.BaseFile(resp.ClassID, resp.LatestVersion); ok {
						mine[dept] = churnHeld{classID: resp.ClassID, version: resp.LatestVersion, base: base}
					}
				}
			}
		}(w)
	}

	workersWG.Wait()
	close(done)
	<-snapDone

	// Final bound after quiescing: one more sweep lands at or under budget.
	if _, err := e.Process(Request{
		URL: "www.shop.com/alpha/0", UserID: "fin", Doc: renderDoc("alpha", 0, 0, "fin"),
	}); err != nil {
		t.Fatal(err)
	}
	if got := e.StoreStats().Resident.Total; got > budget {
		t.Fatalf("resident bytes %d exceed budget %d after quiesce", got, budget)
	}
}

// TestBudgetEnforcedWithAsyncSampling pins the acceptance bound under the
// delta-server's production selector config: asynchronous sample admission
// installs candidate bytes *after* the sampling request's Maintain has
// returned, so each admission must schedule its own budget pass
// (basefile.Config.AfterAsyncAdmit). Without that hook a quiesced store
// can sit over budget with no sweep ever coming — the exact flake the CI
// store-smoke job caught.
func TestBudgetEnforcedWithAsyncSampling(t *testing.T) {
	const budget = 256 << 10
	for round := 0; round < 3; round++ {
		e := newTestEngine(t, Config{
			MemBudget:            budget,
			DisableAnonymization: true,
			Selector:             basefile.Config{AsyncSampling: true, SampleProb: 0.5},
		})

		depts := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"}
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				mine := map[string]churnHeld{}
				for i := 0; i < 60; i++ {
					dept := depts[(w+i)%len(depts)]
					user := fmt.Sprintf("w%d-u%d", w, i%5)
					doc := renderDoc(dept, i%3, i/4, user)
					req := Request{
						URL:    fmt.Sprintf("www.shop.com/%s/%d", dept, i%3),
						UserID: user,
						Doc:    doc,
					}
					if h, ok := mine[dept]; ok {
						req.HaveClassID = h.classID
						req.HaveVersion = h.version
					}
					resp, err := e.Process(req)
					if err != nil {
						t.Error(err)
						return
					}
					if resp.LatestVersion == 0 {
						delete(mine, dept)
					} else if resp.LatestVersion != mine[dept].version {
						if base, ok := e.BaseFile(resp.ClassID, resp.LatestVersion); ok {
							mine[dept] = churnHeld{classID: resp.ClassID, version: resp.LatestVersion, base: base}
						}
					}
				}
			}(w)
		}
		wg.Wait()

		// Quiesce drains pending admissions and the maintenance each one
		// scheduled; after that the bound must hold with no further traffic.
		e.Quiesce()
		if st := e.StoreStats(); st.Resident.Total > budget {
			t.Fatalf("round %d: quiescent resident %d exceeds budget %d (base %d cand %d index %d)",
				round, st.Resident.Total, budget,
				st.Resident.BaseBytes, st.Resident.CandBytes, st.Resident.IndexBytes)
		}
	}
}
