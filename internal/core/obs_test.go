package core

import (
	"fmt"
	"strings"
	"testing"

	"cbde/internal/anonymize"
	"cbde/internal/basefile"
	"cbde/internal/metrics"
	"cbde/internal/obs"
	"cbde/internal/origin"
	"cbde/internal/testutil"
)

// warmEngine builds an engine plus a warm class with a distributable base
// and returns a request that yields a delta response.
func warmEngine(t testing.TB, cfg Config) (*Engine, Request) {
	t.Helper()
	if cfg.Now == nil {
		cfg.Now = monotonicClock()
	}
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	site := origin.NewSite(origin.Config{
		Host:          "www.obs.com",
		Depts:         []origin.Dept{{Name: "catalog", Items: 2}},
		TemplateBytes: 30000,
		ItemBytes:     3000,
		ChurnBytes:    1500,
		Seed:          4242,
	})
	const url = "www.obs.com/catalog/0"
	var resp Response
	for u := 0; u < 4; u++ {
		doc, err := site.Render("catalog", 0, "", u)
		if err != nil {
			t.Fatal(err)
		}
		resp, err = eng.Process(Request{URL: url, UserID: fmt.Sprintf("warm%d", u), Doc: doc})
		if err != nil {
			t.Fatal(err)
		}
	}
	if resp.LatestVersion == 0 {
		t.Fatal("no distributable base after warmup")
	}
	doc, err := site.Render("catalog", 0, "", 10)
	if err != nil {
		t.Fatal(err)
	}
	return eng, Request{
		URL: url, UserID: "obs", Doc: doc,
		HaveClassID: resp.ClassID, HaveVersion: resp.LatestVersion,
	}
}

func TestProcessTracedProducesSummary(t *testing.T) {
	// The delta cache is off so the repeated request below re-runs the
	// encode and gzip stages; memo-stage tracing is covered by the memo
	// cache tests.
	eng, req := warmEngine(t, Config{Anon: anonymize.Config{M: 1, N: 2}, DeltaCacheOff: true})

	// Tracing off (the default): no summary, no per-stage observations.
	resp, err := eng.Process(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Trace != nil {
		t.Fatalf("tracing disabled but Response.Trace = %v", resp.Trace)
	}
	if n := eng.procHist.Count(); n != 0 {
		t.Fatalf("process histogram has %d observations with tracing off", n)
	}

	eng.SetTracing(true)
	if !eng.TracingEnabled() {
		t.Fatal("SetTracing(true) did not enable tracing")
	}
	resp, err = eng.Process(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Kind != KindDelta {
		t.Fatalf("expected delta response, got %v", resp.Kind)
	}
	if resp.Trace == nil {
		t.Fatal("tracing enabled but Response.Trace is nil")
	}
	sum := resp.Trace
	if sum.Total <= 0 {
		t.Errorf("trace total = %v, want > 0", sum.Total)
	}
	enc := sum.Stages[obs.StageEncode]
	if enc.Dur <= 0 || enc.Bytes <= 0 {
		t.Errorf("encode span = %+v, want positive duration and bytes", enc)
	}
	if gz := sum.Stages[obs.StageGzip]; gz.Bytes <= 0 {
		t.Errorf("gzip span = %+v, want positive bytes", gz)
	}
	if sel := sum.Stages[obs.StageSelect]; sel.Dur <= 0 {
		t.Errorf("select span = %+v, want positive duration", sel)
	}
	if rt := sum.Stages[obs.StageRoute]; rt.Bytes != int64(len(req.Doc)) {
		t.Errorf("route span bytes = %d, want the document size %d", rt.Bytes, len(req.Doc))
	}
	if n := eng.procHist.Count(); n != 1 {
		t.Errorf("process histogram observations = %d, want 1", n)
	}
	if n := eng.stageHist[obs.StageEncode].Count(); n != 1 {
		t.Errorf("encode stage histogram observations = %d, want 1", n)
	}

	eng.SetTracing(false)
	resp, err = eng.Process(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Trace != nil {
		t.Error("tracing re-disabled but Response.Trace is non-nil")
	}
}

// TestProcessTracingDisabledStaysInAllocBudget enforces the tentpole's
// no-op guarantee: after tracing has been exercised and switched back off,
// the warm-class serving path must still clear the PR-3 allocation budget
// (the tracer adds at most an atomic load, never an allocation).
func TestProcessTracingDisabledStaysInAllocBudget(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts differ under -race")
	}
	eng, req := warmEngine(t, Config{
		Anon:     anonymize.Config{M: 1, N: 2},
		Selector: basefile.Config{SampleProb: -1},
	})
	eng.SetTracing(true)
	for i := 0; i < 5; i++ {
		if _, err := eng.Process(req); err != nil {
			t.Fatal(err)
		}
	}
	eng.SetTracing(false)
	for i := 0; i < 5; i++ { // re-warm pools without tracing
		if _, err := eng.Process(req); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := eng.Process(req); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > processWarmAllocBudget {
		t.Errorf("Process with tracing disabled allocates %.1f objects/op, budget %d",
			allocs, processWarmAllocBudget)
	}
	t.Logf("Process allocations after tracing on->off: %.1f objects/op (budget %d)",
		allocs, processWarmAllocBudget)
}

func TestClassStatsTable(t *testing.T) {
	eng, req := warmEngine(t, Config{Anon: anonymize.Config{M: 1, N: 2}})
	var delta, full int64
	var shipped int64
	for i := 0; i < 3; i++ {
		resp, err := eng.Process(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Kind == KindDelta {
			delta++
			shipped += int64(len(resp.Payload))
		} else {
			full++
			shipped += int64(len(req.Doc))
		}
	}

	st, ok := eng.ClassStats(req.HaveClassID)
	if !ok {
		t.Fatalf("ClassStats(%q) not found", req.HaveClassID)
	}
	if st.ID != req.HaveClassID {
		t.Errorf("stats ID = %q, want %q", st.ID, req.HaveClassID)
	}
	// 4 warmup requests + 3 measured ones.
	if st.Requests != 7 {
		t.Errorf("requests = %d, want 7", st.Requests)
	}
	if st.DeltaHits != delta {
		t.Errorf("delta hits = %d, want %d", st.DeltaHits, delta)
	}
	if st.DeltaHits+st.DeltaMisses != st.Requests {
		t.Errorf("hits %d + misses %d != requests %d", st.DeltaHits, st.DeltaMisses, st.Requests)
	}
	if st.BytesIn <= 0 || st.BytesShipped <= 0 {
		t.Errorf("bytes in/shipped = %d/%d, want positive", st.BytesIn, st.BytesShipped)
	}
	if st.BytesShipped >= st.BytesIn {
		t.Errorf("shipped %d >= in %d: a warm delta class must save bytes", st.BytesShipped, st.BytesIn)
	}
	if s := st.Savings(); s <= 0 || s >= 1 {
		t.Errorf("savings = %v, want in (0, 1)", s)
	}
	if st.BaseVersion == 0 || st.BaseBytes == 0 {
		t.Errorf("base version/bytes = %d/%d, want non-zero", st.BaseVersion, st.BaseBytes)
	}
	if st.BaseAge <= 0 {
		t.Errorf("base age = %v, want > 0 under the deterministic clock", st.BaseAge)
	}

	if _, ok := eng.ClassStats("no-such-class"); ok {
		t.Error("ClassStats on unknown class reported ok")
	}
	all := eng.AllClassStats()
	if len(all) != 1 || all[0].ID != st.ID {
		t.Errorf("AllClassStats = %+v, want the one warm class", all)
	}
}

func TestClassStatsAnonProgress(t *testing.T) {
	eng, err := NewEngine(Config{
		Anon: anonymize.Config{M: 1, N: 5},
		Now:  monotonicClock(),
	})
	if err != nil {
		t.Fatal(err)
	}
	site := origin.NewSite(origin.Config{
		Host:          "www.anonobs.com",
		Depts:         []origin.Dept{{Name: "d", Items: 1}},
		TemplateBytes: 20000,
		Seed:          7,
	})
	var classID string
	// Two distinct users: the anonymization process (N=5) stays in flight.
	for u := 0; u < 2; u++ {
		doc, err := site.Render("d", 0, "", u)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := eng.Process(Request{URL: "www.anonobs.com/d/0", UserID: fmt.Sprintf("u%d", u), Doc: doc})
		if err != nil {
			t.Fatal(err)
		}
		classID = resp.ClassID
	}
	st, ok := eng.ClassStats(classID)
	if !ok {
		t.Fatal("class not found")
	}
	if !st.AnonActive {
		t.Fatal("expected an in-flight anonymization process")
	}
	if st.AnonNeeded != 5 {
		t.Errorf("anon needed = %d, want 5", st.AnonNeeded)
	}
	if st.AnonDone <= 0 || st.AnonDone >= st.AnonNeeded {
		t.Errorf("anon done = %d, want in (0, %d)", st.AnonDone, st.AnonNeeded)
	}
	if st.BaseVersion != 0 {
		t.Errorf("base version = %d, want 0 while anonymization is pending", st.BaseVersion)
	}
}

// TestEngineExpositionSeries checks the acceptance-criteria series: the
// engine's registry must expose parseable Prometheus text with per-class
// delta-hit, bytes-saved, and per-stage latency series.
func TestEngineExpositionSeries(t *testing.T) {
	eng, req := warmEngine(t, Config{Anon: anonymize.Config{M: 1, N: 2}})
	eng.SetTracing(true)
	if _, err := eng.Process(req); err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	if err := eng.Metrics().Expose(&b); err != nil {
		t.Fatal(err)
	}
	exp, err := metrics.ParseExposition(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("engine exposition does not parse: %v\n%s", err, b.String())
	}
	for _, series := range []string{
		"cbde_class_requests_total",
		"cbde_class_delta_hits_total",
		"cbde_class_delta_misses_total",
		"cbde_class_bytes_in_total",
		"cbde_class_bytes_shipped_total",
		"cbde_class_base_version",
		"cbde_class_base_age_seconds",
		"cbde_bytes_saved_total",
		"cbde_classes",
		"cbde_stage_duration_seconds_bucket",
		"cbde_stage_duration_seconds_sum",
		"cbde_stage_duration_seconds_count",
		"cbde_process_duration_seconds_bucket",
		"requests", // legacy plain counters stay exposed
		"bytes_direct",
	} {
		if !exp.Series(series) {
			t.Errorf("exposition missing series %s", series)
		}
	}
	// The per-class hit counter must carry the class label.
	found := false
	for _, s := range exp.Samples {
		if s.Name != "cbde_class_delta_hits_total" {
			continue
		}
		if v, ok := s.Label("class"); ok && v == req.HaveClassID && s.Value > 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("no positive cbde_class_delta_hits_total sample for class %q", req.HaveClassID)
	}
	// Every stage child must pre-exist, even ones never exercised.
	stages := map[string]bool{}
	for _, s := range exp.Samples {
		if s.Name == "cbde_stage_duration_seconds_count" {
			if v, ok := s.Label("stage"); ok {
				stages[v] = true
			}
		}
	}
	for _, st := range obs.Stages() {
		if !stages[st.String()] {
			t.Errorf("stage series for %q missing from exposition", st)
		}
	}
}
