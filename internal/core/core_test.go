package core

import (
	"bytes"
	"errors"
	"fmt"
	"hash/fnv"
	"strings"
	"sync"
	"testing"
	"time"

	"cbde/internal/anonymize"
	"cbde/internal/basefile"
)

// testClock is a deterministic clock advancing one second per call.
type testClock struct {
	mu  sync.Mutex
	now time.Time
}

func newTestClock() *testClock { return &testClock{now: time.Unix(1_000_000, 0)} }

func (c *testClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(time.Second)
	return c.now
}

// cardFor derives a unique fake card number from the user name.
func cardFor(user string) string {
	h := fnv.New64a()
	h.Write([]byte(user))
	return fmt.Sprintf("4111-%08d", h.Sum64()%100000000)
}

// renderDoc produces a personalized dynamic document: a large department
// template shared across items (but substantially different across
// departments), item-specific content, a churning region that changes every
// tick, and private per-user data.
func renderDoc(dept string, item, tick int, user string) []byte {
	var b strings.Builder
	b.WriteString("<html><head><title>" + dept + "</title></head><body>\n")
	row := strings.Repeat(dept+"-catalog-section ", 4)
	for i := 0; i < 30; i++ {
		fmt.Fprintf(&b, "<nav-block id=%d>%s row-%d</nav-block>\n", i, row, i*31+len(dept))
	}
	fmt.Fprintf(&b, "<item id=%d>unique description for item %d in %s: %d</item>\n", item, item, dept, item*7919)
	fmt.Fprintf(&b, "<ticker>stock level %d, updated at tick %d</ticker>\n", (item*13+tick*7)%100, tick)
	if user != "" {
		fmt.Fprintf(&b, "<account>signed in as %s; card %s</account>\n", user, cardFor(user))
	}
	b.WriteString("</body></html>\n")
	return []byte(b.String())
}

// incompressible returns size bytes of seeded pseudo-random data that
// neither gzip nor target self-copies can shrink.
func incompressible(seed uint64, size int) []byte {
	out := make([]byte, size)
	x := seed*2862933555777941757 + 3037000493
	for i := range out {
		x = x*2862933555777941757 + 3037000493
		out[i] = byte(x >> 56)
	}
	return out
}

func newTestEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	if cfg.Now == nil {
		cfg.Now = newTestClock().Now
	}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// warmClass sends enough distinct-user requests to complete anonymization
// and returns the class ID.
func warmClass(t *testing.T, e *Engine, dept string, users int) string {
	t.Helper()
	classID := ""
	for u := 0; u < users; u++ {
		user := fmt.Sprintf("user-%d", u)
		url := fmt.Sprintf("www.shop.com/%s/%d", dept, u%3)
		resp, err := e.Process(Request{URL: url, UserID: user, Doc: renderDoc(dept, u%3, u, user)})
		if err != nil {
			t.Fatal(err)
		}
		classID = resp.ClassID
	}
	return classID
}

func TestProcessRequiresDocument(t *testing.T) {
	e := newTestEngine(t, Config{})
	if _, err := e.Process(Request{URL: "www.shop.com/a/1"}); !errors.Is(err, ErrNoDocument) {
		t.Errorf("got %v, want ErrNoDocument", err)
	}
}

func TestFirstRequestsAreFullUntilAnonymized(t *testing.T) {
	e := newTestEngine(t, Config{Anon: anonymize.Config{M: 1, N: 3}})
	// Three requests from the owner only: anonymization cannot complete.
	for i := 0; i < 3; i++ {
		resp, err := e.Process(Request{
			URL:    "www.shop.com/laptops/1",
			UserID: "owner",
			Doc:    renderDoc("laptops", 1, i, "owner"),
		})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Kind != KindFull {
			t.Fatalf("request %d: kind = %v, want full before anonymization", i, resp.Kind)
		}
		if resp.LatestVersion != 0 {
			t.Fatalf("request %d: LatestVersion = %d, want 0", i, resp.LatestVersion)
		}
	}
	// Three distinct other users complete the process.
	for i := 0; i < 3; i++ {
		user := fmt.Sprintf("u%d", i)
		if _, err := e.Process(Request{
			URL:    "www.shop.com/laptops/1",
			UserID: user,
			Doc:    renderDoc("laptops", 1, 10+i, user),
		}); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	if st.AnonCompleted != 1 {
		t.Errorf("AnonCompleted = %d, want 1", st.AnonCompleted)
	}
	resp, err := e.Process(Request{
		URL: "www.shop.com/laptops/1", UserID: "u9",
		Doc: renderDoc("laptops", 1, 20, "u9"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.LatestVersion == 0 {
		t.Error("LatestVersion still 0 after anonymization completed")
	}
}

func TestDeltaRoundTripThroughEngine(t *testing.T) {
	e := newTestEngine(t, Config{Anon: anonymize.Config{M: 1, N: 3}})
	classID := warmClass(t, e, "laptops", 8)

	base, version, ok := e.LatestBase(classID)
	if !ok {
		t.Fatal("no distributable base after warmup")
	}

	doc := renderDoc("laptops", 2, 99, "client-user")
	resp, err := e.Process(Request{
		URL: "www.shop.com/laptops/2", UserID: "client-user", Doc: doc,
		HaveClassID: classID, HaveVersion: version,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Kind != KindDelta {
		t.Fatalf("kind = %v, want delta for a client holding the base", resp.Kind)
	}
	if len(resp.Payload) >= len(doc)/2 {
		t.Errorf("delta payload %d bytes for a %d-byte doc, want substantial savings", len(resp.Payload), len(doc))
	}
	got, err := e.Decode(base, resp.Payload, resp.Gzipped)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, doc) {
		t.Error("client reconstruction does not match the document")
	}
}

func TestClientWithoutBaseGetsFull(t *testing.T) {
	e := newTestEngine(t, Config{Anon: anonymize.Config{M: 1, N: 3}})
	classID := warmClass(t, e, "laptops", 8)

	resp, err := e.Process(Request{
		URL: "www.shop.com/laptops/2", UserID: "newcomer",
		Doc: renderDoc("laptops", 2, 50, "newcomer"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Kind != KindFull {
		t.Errorf("kind = %v, want full for a client without the base", resp.Kind)
	}
	if resp.ClassID != classID || resp.LatestVersion == 0 {
		t.Errorf("response must advertise class %q and a version, got %q v%d",
			classID, resp.ClassID, resp.LatestVersion)
	}
	// The advertised base must be fetchable.
	if _, ok := e.BaseFile(resp.ClassID, resp.LatestVersion); !ok {
		t.Error("advertised base-file not fetchable")
	}
}

func TestStaleClientVersionGetsFull(t *testing.T) {
	e := newTestEngine(t, Config{Anon: anonymize.Config{M: 1, N: 3}})
	classID := warmClass(t, e, "laptops", 8)
	resp, err := e.Process(Request{
		URL: "www.shop.com/laptops/1", UserID: "u1",
		Doc:         renderDoc("laptops", 1, 60, "u1"),
		HaveClassID: classID, HaveVersion: 999, // version the server never had
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Kind != KindFull {
		t.Errorf("kind = %v, want full for an unknown client version", resp.Kind)
	}
}

func TestAnonymizedBaseOmitsPrivateData(t *testing.T) {
	e := newTestEngine(t, Config{Anon: anonymize.Config{M: 1, N: 5}})
	classID := warmClass(t, e, "laptops", 10)
	base, _, ok := e.LatestBase(classID)
	if !ok {
		t.Fatal("no base")
	}
	if bytes.Contains(base, []byte("signed in as user-")) {
		t.Error("distributed base-file leaks a user name")
	}
	if bytes.Contains(base, []byte("card 4111-")) {
		t.Error("distributed base-file leaks a card number")
	}
	if !bytes.Contains(base, []byte("laptops-catalog-section")) {
		t.Error("anonymization stripped shared template content")
	}
}

func TestBasicRebaseOnDrift(t *testing.T) {
	e := newTestEngine(t, Config{
		Anon:          anonymize.Config{M: 1, N: 2},
		MaxDeltaRatio: 0.2,
	})
	classID := warmClass(t, e, "laptops", 6)
	_, version, _ := e.LatestBase(classID)

	// A document that shares almost nothing with the base forces a delta
	// larger than 20% of the doc: basic-rebase.
	alien := incompressible(42, 8000)
	resp, err := e.Process(Request{
		URL: "www.shop.com/laptops/1", UserID: "u1", Doc: alien,
		HaveClassID: classID, HaveVersion: version,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.BasicRebase {
		t.Fatal("expected a basic-rebase for an alien document")
	}
	if resp.Kind != KindFull {
		t.Error("basic-rebase response must be full")
	}
	if got := e.Stats().BasicRebases; got != 1 {
		t.Errorf("BasicRebases = %d, want 1", got)
	}
}

func TestClasslessModeOneStatePerURL(t *testing.T) {
	e := newTestEngine(t, Config{Mode: ModeClassless})
	for i := 0; i < 10; i++ {
		url := fmt.Sprintf("www.shop.com/laptops/%d", i)
		if _, err := e.Process(Request{URL: url, UserID: "u", Doc: renderDoc("laptops", i, 0, "u")}); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.Stats().Classes; got != 10 {
		t.Errorf("classless states = %d, want 10 (one per URL)", got)
	}
	if _, ok := e.GroupingStats(); ok {
		t.Error("GroupingStats should be unavailable in classless mode")
	}
}

func TestClasslessPerUserModeExplodesStorage(t *testing.T) {
	const users, items = 6, 4
	run := func(mode Mode) Stats {
		e := newTestEngine(t, Config{Mode: mode, Anon: anonymize.Config{M: 1, N: 2}})
		for tick := 0; tick < 3; tick++ {
			for u := 0; u < users; u++ {
				for i := 0; i < items; i++ {
					user := fmt.Sprintf("user-%d", u)
					url := fmt.Sprintf("www.shop.com/laptops/%d", i)
					if _, err := e.Process(Request{URL: url, UserID: user, Doc: renderDoc("laptops", i, tick, user)}); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		return e.Stats()
	}
	classBased := run(ModeClassBased)
	perUser := run(ModeClasslessPerUser)

	if perUser.Classes != users*items {
		t.Errorf("per-user states = %d, want %d", perUser.Classes, users*items)
	}
	if classBased.Classes >= perUser.Classes {
		t.Errorf("class-based states (%d) should be far fewer than per-user (%d)",
			classBased.Classes, perUser.Classes)
	}
	if classBased.StorageBytes >= perUser.StorageBytes {
		t.Errorf("class-based storage %d should undercut per-user storage %d — the paper's headline",
			classBased.StorageBytes, perUser.StorageBytes)
	}
}

func TestSavingsSubstantialOnWarmClass(t *testing.T) {
	e := newTestEngine(t, Config{Anon: anonymize.Config{M: 1, N: 3}})
	classID := warmClass(t, e, "laptops", 6)

	// Simulate a client that keeps its base-file up to date.
	haveVersion := 0
	for i := 0; i < 100; i++ {
		user := fmt.Sprintf("steady-user-%d", i%7)
		doc := renderDoc("laptops", i%3, 100+i, user)
		resp, err := e.Process(Request{
			URL: fmt.Sprintf("www.shop.com/laptops/%d", i%3), UserID: user, Doc: doc,
			HaveClassID: classID, HaveVersion: haveVersion,
		})
		if err != nil {
			t.Fatal(err)
		}
		if resp.LatestVersion > haveVersion {
			haveVersion = resp.LatestVersion // client refreshes its base
		}
	}
	st := e.Stats()
	if st.DeltaResponses == 0 {
		t.Fatal("no delta responses at all")
	}
	if s := st.Savings(); s < 0.5 {
		t.Errorf("savings = %.2f, want > 0.5 on a warm class", s)
	}
}

func TestKeepBaseVersionsPrunes(t *testing.T) {
	clock := newTestClock()
	e := newTestEngine(t, Config{
		DisableAnonymization: true,
		KeepBaseVersions:     2,
		MaxDeltaRatio:        0.9,
		Selector:             basefile.Config{SampleProb: 1, MaxSamples: 4},
		Now:                  clock.Now,
	})
	// Drive several basic-rebases with a client that keeps its base fresh
	// while the content jumps to unrelated generations.
	var classID string
	haveVersion := 0
	for i := 0; i < 20; i++ {
		doc := incompressible(uint64(i/4)+1, 6000) // new generation every 4 requests
		resp, err := e.Process(Request{
			URL: "www.shop.com/x/1", UserID: "u", Doc: doc,
			HaveClassID: classID, HaveVersion: haveVersion,
		})
		if err != nil {
			t.Fatal(err)
		}
		classID = resp.ClassID
		if resp.LatestVersion > haveVersion {
			haveVersion = resp.LatestVersion
		}
	}
	_, latest, ok := e.LatestBase(classID)
	if !ok || latest < 3 {
		t.Fatalf("expected several rebased versions, got latest=%d ok=%v", latest, ok)
	}
	for v := 1; v <= latest-2; v++ {
		if _, ok := e.BaseFile(classID, v); ok {
			t.Errorf("version %d still fetchable; want pruned (keep 2)", v)
		}
	}
	if _, ok := e.BaseFile(classID, latest); !ok {
		t.Error("latest version not fetchable")
	}
}

func TestBaseFileUnknown(t *testing.T) {
	e := newTestEngine(t, Config{})
	if _, ok := e.BaseFile("nope", 1); ok {
		t.Error("BaseFile returned ok for unknown class")
	}
	if _, _, ok := e.LatestBase("nope"); ok {
		t.Error("LatestBase returned ok for unknown class")
	}
}

func TestStatsConsistency(t *testing.T) {
	e := newTestEngine(t, Config{Anon: anonymize.Config{M: 1, N: 2}})
	warmClass(t, e, "laptops", 12)
	st := e.Stats()
	if st.Requests != st.FullResponses+st.DeltaResponses {
		t.Errorf("requests %d != full %d + delta %d", st.Requests, st.FullResponses, st.DeltaResponses)
	}
	if st.BytesDirect <= 0 {
		t.Error("BytesDirect not accounted")
	}
	if st.Mode != ModeClassBased {
		t.Errorf("mode = %v", st.Mode)
	}
}

func TestGroupingStatsAvailable(t *testing.T) {
	e := newTestEngine(t, Config{Anon: anonymize.Config{M: 1, N: 2}})
	warmClass(t, e, "laptops", 6)
	warmClass(t, e, "desktops", 6)
	gs, ok := e.GroupingStats()
	if !ok {
		t.Fatal("GroupingStats unavailable in class-based mode")
	}
	if gs.Classes < 2 {
		t.Errorf("classes = %d, want >= 2", gs.Classes)
	}
}

func TestDecodeErrors(t *testing.T) {
	e := newTestEngine(t, Config{})
	if _, err := e.Decode([]byte("base"), []byte("junk"), true); err == nil {
		t.Error("expected gzip error")
	}
	if _, err := e.Decode([]byte("base"), []byte("junk"), false); err == nil {
		t.Error("expected codec error")
	}
}

func TestEngineConcurrentProcess(t *testing.T) {
	e := newTestEngine(t, Config{Anon: anonymize.Config{M: 1, N: 3}})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				dept := []string{"laptops", "desktops"}[i%2]
				user := fmt.Sprintf("w%d-u%d", w, i%5)
				url := fmt.Sprintf("www.shop.com/%s/%d", dept, i%4)
				_, err := e.Process(Request{URL: url, UserID: user, Doc: renderDoc(dept, i%4, i, user)})
				if err != nil {
					t.Errorf("Process: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := e.Stats()
	if st.Requests != 8*30 {
		t.Errorf("requests = %d, want 240", st.Requests)
	}
}

func TestModeString(t *testing.T) {
	tests := map[Mode]string{
		ModeClassBased:       "class-based",
		ModeClassless:        "classless",
		ModeClasslessPerUser: "classless-per-user",
		Mode(9):              "Mode(9)",
	}
	for m, want := range tests {
		if got := m.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(m), got, want)
		}
	}
	kinds := map[ResponseKind]string{KindFull: "full", KindDelta: "delta", ResponseKind(9): "ResponseKind(9)"}
	for k, want := range kinds {
		if got := k.String(); got != want {
			t.Errorf("kind.String() = %q, want %q", got, want)
		}
	}
}

func TestWireSize(t *testing.T) {
	full := Response{Kind: KindFull}
	if got := full.WireSize(100); got != 100 {
		t.Errorf("full WireSize = %d, want 100", got)
	}
	delta := Response{Kind: KindDelta, Payload: make([]byte, 7)}
	if got := delta.WireSize(100); got != 7 {
		t.Errorf("delta WireSize = %d, want 7", got)
	}
}

func TestBadURLInClassBasedMode(t *testing.T) {
	e := newTestEngine(t, Config{})
	if _, err := e.Process(Request{URL: "://bad", UserID: "u", Doc: []byte("d")}); err == nil {
		t.Error("expected partition error")
	}
}
