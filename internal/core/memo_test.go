package core

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"sync"
	"testing"

	"cbde/internal/anonymize"
	"cbde/internal/basefile"
	"cbde/internal/obs"
	"cbde/internal/testutil"
)

// memoEngine builds an engine with anonymization off (bases distribute
// immediately) and sampling off (no background candidate churn), warms one
// class, and returns a request that yields a delta response.
func memoEngine(t *testing.T, cfg Config) (*Engine, Request) {
	t.Helper()
	if cfg.Selector.SampleProb == 0 {
		cfg.Selector = basefile.Config{SampleProb: -1}
	}
	cfg.DisableAnonymization = true
	e := newTestEngine(t, cfg)
	const url = "www.memo.com/catalog/0"
	var resp Response
	var err error
	for u := 0; u < 3; u++ {
		user := fmt.Sprintf("warm-%d", u)
		resp, err = e.Process(Request{URL: url, UserID: user, Doc: renderDoc("catalog", 0, u, user)})
		if err != nil {
			t.Fatal(err)
		}
	}
	if resp.LatestVersion == 0 {
		t.Fatal("no distributable base after warmup")
	}
	doc := renderDoc("catalog", 0, 50, "memo-user")
	return e, Request{
		URL: url, UserID: "memo-user", Doc: doc,
		HaveClassID: resp.ClassID, HaveVersion: resp.LatestVersion,
	}
}

// decodeAgainstLiveBase reconstructs a delta response against the base
// version it names, fetched live from the engine, and byte-compares it
// with the origin document — the end-to-end correctness check for every
// memoized serve.
func decodeAgainstLiveBase(t *testing.T, e *Engine, classID string, resp Response, doc []byte) {
	t.Helper()
	if resp.Kind != KindDelta {
		t.Fatalf("response kind = %v, want delta", resp.Kind)
	}
	base, ok := e.BaseFileView(classID, resp.BaseVersion)
	if !ok {
		t.Fatalf("served delta against version %d but the base is not resident", resp.BaseVersion)
	}
	got, err := e.DecodeAs(base, resp.Payload, resp.Gzipped, resp.Format)
	if err != nil {
		t.Fatalf("decode served delta: %v", err)
	}
	if !bytes.Equal(got, doc) {
		t.Fatalf("delta round-trip mismatch: got %d bytes, want %d", len(got), len(doc))
	}
}

// TestMemoizedRepeatServesCachedDelta pins the warm-warm contract: a
// repeated (class, version, document) request is served from the memo
// cache — no second encode, the payload aliases the cached bytes — and
// the cached bytes are charged to the delta ledger and visible through
// DeltaCacheStats and the traced memo stage.
func TestMemoizedRepeatServesCachedDelta(t *testing.T) {
	eng, req := warmEngine(t, Config{Anon: anonymize.Config{M: 1, N: 2}})

	first, err := eng.Process(req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Kind != KindDelta {
		t.Fatalf("first response kind = %v, want delta", first.Kind)
	}
	hits0 := eng.ctr.memoHits.Value()
	encodes0 := eng.ctr.encodeRuns.Value()

	second, err := eng.Process(req)
	if err != nil {
		t.Fatal(err)
	}
	if second.Kind != KindDelta {
		t.Fatalf("second response kind = %v, want delta", second.Kind)
	}
	if got := eng.ctr.memoHits.Value(); got != hits0+1 {
		t.Errorf("memo hits = %d after repeat, want %d", got, hits0+1)
	}
	if got := eng.ctr.encodeRuns.Value(); got != encodes0 {
		t.Errorf("encode runs = %d after repeat, want %d (hit must not encode)", got, encodes0)
	}
	if !bytes.Equal(second.Payload, first.Payload) || second.Gzipped != first.Gzipped {
		t.Fatal("memoized payload differs from the encoded one")
	}
	if &second.Payload[0] != &first.Payload[0] {
		t.Error("memo hit copied the payload; it must alias the cached bytes (zero-copy)")
	}
	if second.BaseVersion != first.BaseVersion || second.LatestVersion != first.LatestVersion {
		t.Errorf("hit versions (%d, %d) differ from lead's (%d, %d)",
			second.BaseVersion, second.LatestVersion, first.BaseVersion, first.LatestVersion)
	}
	decodeAgainstLiveBase(t, eng, req.HaveClassID, second, req.Doc)

	dc := eng.DeltaCacheStats()
	if !dc.Enabled {
		t.Fatal("DeltaCacheStats reports the default-on cache disabled")
	}
	if dc.Hits == 0 || dc.Misses == 0 {
		t.Errorf("delta cache stats = %+v, want hits and misses recorded", dc)
	}
	if dc.Entries != 1 || dc.Bytes != int64(len(first.Payload)) {
		t.Errorf("delta cache stats = %+v, want 1 entry of %d bytes", dc, len(first.Payload))
	}
	if got := eng.StoreStats().Resident.DeltaBytes; got != dc.Bytes {
		t.Errorf("ledger delta bytes = %d, stats report %d", got, dc.Bytes)
	}

	// A traced hit records the memo stage with the served bytes and never
	// reaches the encode or gzip stages.
	eng.SetTracing(true)
	third, err := eng.Process(req)
	if err != nil {
		t.Fatal(err)
	}
	if third.Trace == nil {
		t.Fatal("tracing enabled but Response.Trace is nil")
	}
	if memo := third.Trace.Stages[obs.StageMemo]; memo.Bytes != int64(len(first.Payload)) {
		t.Errorf("memo span bytes = %d, want the cached payload size %d", memo.Bytes, len(first.Payload))
	}
	if enc := third.Trace.Stages[obs.StageEncode]; enc.Dur != 0 || enc.Bytes != 0 {
		t.Errorf("encode span = %+v on a memo hit, want empty", enc)
	}
}

// TestMemoCoalescingStressSingleEncode is the singleflight stress: many
// goroutines race the same cold key and exactly one encode runs; every
// response shares the leader's payload byte-for-byte, and the shared bytes
// survive later encode-pool churn untouched (no pooled-scratch aliasing).
func TestMemoCoalescingStressSingleEncode(t *testing.T) {
	eng, req := memoEngine(t, Config{})
	classID := req.HaveClassID

	encodes0 := eng.ctr.encodeRuns.Value()
	misses0 := eng.ctr.memoMisses.Value()
	hits0 := eng.ctr.memoHits.Value()
	coal0 := eng.ctr.memoCoalesced.Value()

	const workers = 16
	payloads := make([][]byte, workers)
	responses := make([]Response, workers)
	errs := make([]error, workers)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			resp, err := eng.Process(req)
			if err != nil {
				errs[g] = err
				return
			}
			if resp.Kind != KindDelta {
				errs[g] = fmt.Errorf("worker %d: response kind = %v, want delta", g, resp.Kind)
				return
			}
			payloads[g] = resp.Payload
			responses[g] = resp
		}(g)
	}
	close(start)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	if got := eng.ctr.encodeRuns.Value() - encodes0; got != 1 {
		t.Fatalf("%d concurrent cold requests ran %d encodes, want exactly 1", workers, got)
	}
	if got := eng.ctr.memoMisses.Value() - misses0; got != 1 {
		t.Errorf("memo misses = %d, want exactly 1 leader", got)
	}
	hits := eng.ctr.memoHits.Value() - hits0
	coalesced := eng.ctr.memoCoalesced.Value() - coal0
	if hits+coalesced != workers-1 {
		t.Errorf("hits (%d) + coalesced (%d) = %d, want %d followers", hits, coalesced, hits+coalesced, workers-1)
	}
	for g := 1; g < workers; g++ {
		if !bytes.Equal(payloads[g], payloads[0]) {
			t.Fatalf("worker %d payload differs from worker 0", g)
		}
		if &payloads[g][0] != &payloads[0][0] {
			t.Fatalf("worker %d got a copy; all sharers must alias the one cached payload", g)
		}
	}
	decodeAgainstLiveBase(t, eng, classID, responses[0], req.Doc)

	// Churn the pooled encode scratch with fresh documents: the retained
	// payload is a fresh allocation, so its checksum must not move.
	sum := crc32.ChecksumIEEE(payloads[0])
	for i := 0; i < 25; i++ {
		user := fmt.Sprintf("churn-%d", i)
		if _, err := eng.Process(Request{
			URL: req.URL, UserID: user, Doc: renderDoc("catalog", 0, 200+i, user),
			HaveClassID: req.HaveClassID, HaveVersion: req.HaveVersion,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if got := crc32.ChecksumIEEE(payloads[0]); got != sum {
		t.Fatal("shared payload bytes changed under encode-pool churn (pooled-scratch aliasing)")
	}
	decodeAgainstLiveBase(t, eng, classID, responses[0], req.Doc)
}

// TestMemoInvalidation drives every invalidation barrier — version
// install, basic rebase, class eviction, anonymization-epoch bump — and
// checks that the cache empties, the next request re-leads (no stale hit),
// and the delta then served decodes against the live base it names.
func TestMemoInvalidation(t *testing.T) {
	cases := []struct {
		name string
		// mutate invalidates; it returns false if the re-request check
		// should warm the class again first (post-eviction).
		mutate func(t *testing.T, e *Engine, req Request) bool
	}{
		{
			name: "version install",
			mutate: func(t *testing.T, e *Engine, req Request) bool {
				cs, ok := e.lookup(req.HaveClassID)
				if !ok {
					t.Fatal("warm class missing")
				}
				cs.mu.Lock()
				next := cs.distVersion + 1
				e.installBase(cs, next, append([]byte(nil), renderDoc("catalog", 0, 60, "")...), e.cfg.Now())
				cs.mu.Unlock()
				return true
			},
		},
		{
			name: "basic rebase",
			mutate: func(t *testing.T, e *Engine, req Request) bool {
				// An incompressible document forces an oversized delta; the
				// resulting rebase installs a new base (anonymization is off).
				resp, err := e.Process(Request{
					URL: req.URL, UserID: "rebaser", Doc: incompressible(7, 64<<10),
					HaveClassID: req.HaveClassID, HaveVersion: req.HaveVersion,
				})
				if err != nil {
					t.Fatal(err)
				}
				if !resp.BasicRebase {
					t.Fatalf("incompressible document did not trigger a basic rebase: %+v", resp.Kind)
				}
				return true
			},
		},
		{
			name: "class evict and re-warm",
			mutate: func(t *testing.T, e *Engine, req Request) bool {
				cs, ok := e.lookup(req.HaveClassID)
				if !ok {
					t.Fatal("warm class missing")
				}
				cs.Evict()
				return false
			},
		},
		{
			name: "anon epoch bump",
			mutate: func(t *testing.T, e *Engine, req Request) bool {
				e.BumpAnonEpoch()
				return true
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e, req := memoEngine(t, Config{})

			// Fill: lead then hit, so the cache provably holds the entry.
			first, err := e.Process(req)
			if err != nil {
				t.Fatal(err)
			}
			decodeAgainstLiveBase(t, e, req.HaveClassID, first, req.Doc)
			hits0 := e.ctr.memoHits.Value()
			if _, err := e.Process(req); err != nil {
				t.Fatal(err)
			}
			if e.ctr.memoHits.Value() != hits0+1 {
				t.Fatal("repeat before mutation did not hit the cache")
			}
			inv0 := e.DeltaCacheStats().Invalidations

			stillServable := tc.mutate(t, e, req)

			dc := e.DeltaCacheStats()
			if dc.Entries != 0 {
				t.Fatalf("%d cache entries survive the %s barrier, want 0", dc.Entries, tc.name)
			}
			if dc.Invalidations <= inv0 {
				t.Errorf("invalidation counter did not advance across the %s barrier", tc.name)
			}

			if !stillServable {
				// The class was evicted: the held base is gone, so the next
				// response is full; fresh traffic re-warms to a newer version
				// and the cache works against it.
				resp, err := e.Process(req)
				if err != nil {
					t.Fatal(err)
				}
				if resp.Kind != KindFull {
					t.Fatalf("post-eviction response kind = %v, want full", resp.Kind)
				}
				var warm Response
				for u := 0; u < 2; u++ {
					user := fmt.Sprintf("rewarm-%d", u)
					warm, err = e.Process(Request{URL: req.URL, UserID: user, Doc: renderDoc("catalog", 0, 70+u, user)})
					if err != nil {
						t.Fatal(err)
					}
				}
				if warm.LatestVersion <= req.HaveVersion {
					t.Fatalf("re-warmed version %d does not exceed pre-eviction version %d", warm.LatestVersion, req.HaveVersion)
				}
				req.HaveVersion = warm.LatestVersion
			}

			// Post-barrier serving: the request must re-lead (a miss, not a
			// stale hit) and the delta must decode against the live base.
			misses0 := e.ctr.memoMisses.Value()
			resp, err := e.Process(req)
			if err != nil {
				t.Fatal(err)
			}
			if e.ctr.memoMisses.Value() != misses0+1 {
				t.Errorf("post-%s request did not re-lead the encode", tc.name)
			}
			decodeAgainstLiveBase(t, e, req.HaveClassID, resp, req.Doc)

			// And the re-led entry memoizes again.
			hits1 := e.ctr.memoHits.Value()
			repeat, err := e.Process(req)
			if err != nil {
				t.Fatal(err)
			}
			if e.ctr.memoHits.Value() != hits1+1 {
				t.Errorf("repeat after re-lead did not hit the rebuilt cache")
			}
			decodeAgainstLiveBase(t, e, req.HaveClassID, repeat, req.Doc)
		})
	}
}

// TestEvictDrainsDeltaBytesExactly pins the ledger interaction: evicting
// (or pruning) a class returns every cached delta byte — the delta
// category lands on exactly zero, with the freed total covering it.
func TestEvictDrainsDeltaBytesExactly(t *testing.T) {
	e, req := memoEngine(t, Config{})
	fill := func() int64 {
		t.Helper()
		for i := 0; i < 4; i++ {
			user := fmt.Sprintf("filler-%d", i)
			resp, err := e.Process(Request{
				URL: req.URL, UserID: user, Doc: renderDoc("catalog", 0, 300+i, user),
				HaveClassID: req.HaveClassID, HaveVersion: req.HaveVersion,
			})
			if err != nil {
				t.Fatal(err)
			}
			if resp.Kind != KindDelta {
				t.Fatalf("fill %d: kind = %v, want delta", i, resp.Kind)
			}
		}
		db := e.StoreStats().Resident.DeltaBytes
		if db <= 0 {
			t.Fatal("no delta bytes charged after cache fills")
		}
		if got := e.DeltaCacheStats().Bytes; got != db {
			t.Fatalf("cache reports %d bytes, ledger charges %d", got, db)
		}
		return db
	}

	cs, ok := e.lookup(req.HaveClassID)
	if !ok {
		t.Fatal("warm class missing")
	}

	deltaBytes := fill()
	total := e.StoreStats().Resident.Total
	freed := cs.Evict()
	if freed < deltaBytes {
		t.Errorf("Evict freed %d bytes, want at least the %d cached delta bytes", freed, deltaBytes)
	}
	res := e.StoreStats().Resident
	if res.DeltaBytes != 0 {
		t.Errorf("delta ledger = %d after eviction, want exactly 0", res.DeltaBytes)
	}
	if res.Total != total-freed {
		t.Errorf("resident total = %d after freeing %d from %d", res.Total, freed, total)
	}
	if got := cs.ResidentBytes(); got != 0 {
		t.Errorf("evicted class still accounts %d resident bytes", got)
	}

	// Re-warm, refill, and prune: pruning keeps the newest base but still
	// drains the delta category to exactly zero.
	var warm Response
	var err error
	for u := 0; u < 2; u++ {
		user := fmt.Sprintf("rewarm-%d", u)
		warm, err = e.Process(Request{URL: req.URL, UserID: user, Doc: renderDoc("catalog", 0, 80+u, user)})
		if err != nil {
			t.Fatal(err)
		}
	}
	req.HaveVersion = warm.LatestVersion
	deltaBytes = fill()
	if freed := cs.Prune(); freed < deltaBytes {
		t.Errorf("Prune freed %d bytes, want at least the %d cached delta bytes", freed, deltaBytes)
	}
	if got := e.StoreStats().Resident.DeltaBytes; got != 0 {
		t.Errorf("delta ledger = %d after prune, want exactly 0", got)
	}
}

// TestBudgetConvergesWithMemoizedFills mirrors the async-sampling budget
// bound with the memo cache in play: every request is issued twice (the
// repeat lands on — or refills — the cache), so cached delta bytes race
// installs and sweeps. After quiescing, the full resident ledger including
// the delta category must sit at or under the budget.
func TestBudgetConvergesWithMemoizedFills(t *testing.T) {
	const budget = 256 << 10
	e := newTestEngine(t, Config{
		MemBudget:            budget,
		DisableAnonymization: true,
		Selector:             basefile.Config{AsyncSampling: true, SampleProb: 0.5},
	})

	depts := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mine := map[string]churnHeld{}
			for i := 0; i < 40; i++ {
				dept := depts[(w+i)%len(depts)]
				user := fmt.Sprintf("w%d-u%d", w, i%5)
				doc := renderDoc(dept, i%3, i/4, user)
				req := Request{
					URL:    fmt.Sprintf("www.shop.com/%s/%d", dept, i%3),
					UserID: user,
					Doc:    doc,
				}
				if h, ok := mine[dept]; ok {
					req.HaveClassID = h.classID
					req.HaveVersion = h.version
				}
				var resp Response
				for rep := 0; rep < 2; rep++ { // the repeat exercises the memo cache
					var err error
					resp, err = e.Process(req)
					if err != nil {
						t.Error(err)
						return
					}
				}
				if resp.LatestVersion == 0 {
					delete(mine, dept)
				} else if resp.LatestVersion != mine[dept].version {
					if base, ok := e.BaseFile(resp.ClassID, resp.LatestVersion); ok {
						mine[dept] = churnHeld{classID: resp.ClassID, version: resp.LatestVersion, base: base}
					}
				}
			}
		}(w)
	}
	wg.Wait()

	e.Quiesce()
	st := e.StoreStats()
	if st.Resident.Total > budget {
		t.Fatalf("quiescent resident %d exceeds budget %d (base %d cand %d index %d delta %d)",
			st.Resident.Total, budget, st.Resident.BaseBytes, st.Resident.CandBytes,
			st.Resident.IndexBytes, st.Resident.DeltaBytes)
	}
	dc := e.DeltaCacheStats()
	if dc.Hits+dc.Coalesced == 0 {
		t.Fatal("no memo hits under repeated requests; the budget run never exercised the cache")
	}
	if st.Resident.DeltaBytes != dc.Bytes {
		t.Errorf("quiescent delta ledger %d != cache-reported bytes %d", st.Resident.DeltaBytes, dc.Bytes)
	}
}

// TestProcessMemoHitAllocBudget pins the acceptance bound on the hot hit
// path: serving a memoized delta allocates at most 5 objects per request.
func TestProcessMemoHitAllocBudget(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts differ under -race")
	}
	const memoHitAllocBudget = 5
	eng, req := warmEngine(t, Config{
		Anon:     anonymize.Config{M: 1, N: 2},
		Selector: basefile.Config{SampleProb: -1},
	})
	for i := 0; i < 5; i++ { // fill the cache and warm the pools
		if _, err := eng.Process(req); err != nil {
			t.Fatal(err)
		}
	}
	hits0 := eng.ctr.memoHits.Value()
	allocs := testing.AllocsPerRun(100, func() {
		resp, err := eng.Process(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Kind != KindDelta {
			t.Fatalf("warm request served %v, want delta", resp.Kind)
		}
	})
	if eng.ctr.memoHits.Value() == hits0 {
		t.Fatal("measured loop never hit the memo cache")
	}
	if allocs > memoHitAllocBudget {
		t.Errorf("memoized hit allocates %.1f objects/op, budget %d", allocs, memoHitAllocBudget)
	}
	t.Logf("memoized hit path: %.1f allocs/op (budget %d)", allocs, memoHitAllocBudget)
}
