package core

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"cbde/internal/anonymize"
)

// heldBase is the client-side cache entry a stress goroutine keeps per
// class: the base bytes it downloaded and their version.
type heldBase struct {
	version int
	base    []byte
}

// stressClient simulates one delta-capable client: it remembers the bases
// it holds, advertises them on every request, decodes every delta response
// and checks the reconstruction, and verifies the engine's version
// invariants from its (sequential) point of view.
type stressClient struct {
	t      *testing.T
	e      *Engine
	user   string
	held   map[string]heldBase
	latest map[string]int // newest LatestVersion observed per class
}

func newStressClient(t *testing.T, e *Engine, user string) *stressClient {
	return &stressClient{
		t:      t,
		e:      e,
		user:   user,
		held:   make(map[string]heldBase),
		latest: make(map[string]int),
	}
}

// request runs doc through Engine.Process advertising every held base, then
// checks the response invariants:
//
//   - a delta response names a base the client advertised, and applying the
//     delta to that base reproduces doc byte-for-byte;
//   - LatestVersion never goes backwards from this client's point of view
//     (its calls to one class are sequential, and distVersion is monotone);
//   - a base fetched after the response is at least as new as the version
//     the response announced.
func (c *stressClient) request(url string, doc []byte, format Format) {
	req := Request{URL: url, UserID: c.user, Doc: doc, Format: format}
	for id, hb := range c.held {
		req.Held = append(req.Held, HeldBase{ClassID: id, Version: hb.version})
	}
	resp, err := c.e.Process(req)
	if err != nil {
		c.t.Errorf("Process(%s): %v", url, err)
		return
	}
	if resp.ClassID == "" {
		c.t.Errorf("Process(%s): empty ClassID", url)
		return
	}
	if resp.LatestVersion < c.latest[resp.ClassID] {
		c.t.Errorf("class %s: LatestVersion went backwards: %d after %d",
			resp.ClassID, resp.LatestVersion, c.latest[resp.ClassID])
	}
	c.latest[resp.ClassID] = resp.LatestVersion

	if resp.Kind == KindDelta {
		hb, ok := c.held[resp.ClassID]
		if !ok || hb.version != resp.BaseVersion {
			c.t.Errorf("class %s: delta against version %d, client holds %+v",
				resp.ClassID, resp.BaseVersion, hb)
			return
		}
		got, err := c.e.DecodeAs(hb.base, resp.Payload, resp.Gzipped, resp.Format)
		if err != nil {
			c.t.Errorf("class %s: decode delta (v%d, %s): %v",
				resp.ClassID, resp.BaseVersion, resp.Format, err)
			return
		}
		if !bytes.Equal(got, doc) {
			c.t.Errorf("class %s: round trip mismatch: got %d bytes, want %d",
				resp.ClassID, len(got), len(doc))
		}
	}

	// Refresh the held base when the server announced a newer one.
	if hb := c.held[resp.ClassID]; resp.LatestVersion > hb.version {
		base, v, ok := c.e.LatestBase(resp.ClassID)
		if !ok {
			// The class can transiently have no distributable base only
			// before its first version; after an announcement it must.
			c.t.Errorf("class %s: LatestBase missing after LatestVersion=%d",
				resp.ClassID, resp.LatestVersion)
			return
		}
		if v < resp.LatestVersion {
			c.t.Errorf("class %s: LatestBase version %d older than announced %d",
				resp.ClassID, v, resp.LatestVersion)
		}
		c.held[resp.ClassID] = heldBase{version: v, base: base}
	}
}

// TestConcurrentProcessStress drives the full pipeline — grouping, selector
// observation, anonymization, snapshot encode, rebases — from many
// goroutines across several classes, with concurrent readers (Stats,
// BaseFile, SaveState) mixed in. Run under `go test -race`; it is the
// repo's evidence for the engine's "safe for concurrent use" claim.
func TestConcurrentProcessStress(t *testing.T) {
	const (
		goroutines = 8
		classes    = 4
		requests   = 250
	)
	e := newTestEngine(t, Config{
		Anon: anonymize.Config{M: 1, N: 2},
		Now:  time.Now, // the deterministic test clock is not needed here
	})

	depts := make([]string, classes)
	for c := range depts {
		depts[c] = fmt.Sprintf("dept%d", c)
	}

	done := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		// Concurrent observer: engine-wide snapshots and base fetches must
		// never race with serving. Runs until the writers finish.
		defer readers.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			st := e.Stats()
			if st.BytesDelta+st.BytesFull > st.BytesDirect {
				t.Errorf("sent more bytes than direct: %+v", st)
				return
			}
			if _, ok := e.GroupingStats(); !ok {
				t.Error("GroupingStats unavailable in class-based mode")
				return
			}
			if i%3 == 0 {
				if err := e.SaveState(io.Discard); err != nil {
					t.Errorf("SaveState: %v", err)
					return
				}
			}
			_ = e.Metrics().Snapshot()
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cl := newStressClient(t, e, fmt.Sprintf("user-%d", g))
			for i := 0; i < requests; i++ {
				c := (g + i) % classes
				item := i % 3
				url := fmt.Sprintf("www.shop.com/%s/%d", depts[c], item)
				doc := renderDoc(depts[c], item, i, cl.user)
				format := FormatVdelta
				if i%4 == 3 {
					format = FormatVCDIFF
				}
				cl.request(url, doc, format)
				if i%7 == 0 {
					// Random-ish base fetches, including versions that may
					// have been pruned: must return cleanly either way.
					for id, hb := range cl.held {
						if base, ok := e.BaseFile(id, hb.version); ok && len(base) == 0 {
							t.Errorf("class %s: BaseFile(v%d) returned empty base", id, hb.version)
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(done)
	readers.Wait()

	st := e.Stats()
	if want := int64(goroutines * requests); st.Requests != want {
		t.Errorf("requests = %d, want %d", st.Requests, want)
	}
	if st.DeltaResponses == 0 {
		t.Error("stress run produced no delta responses; delta path not exercised")
	}
	if st.DeltaResponses+st.FullResponses != st.Requests {
		t.Errorf("responses (%d delta + %d full) do not add up to %d requests",
			st.DeltaResponses, st.FullResponses, st.Requests)
	}
}

// TestConcurrentBasicRebaseStress hammers the oversized-delta path: every
// goroutine alternates between two unrelated incompressible documents on
// the same URLs, so nearly every delta trips MaxDeltaRatio and requests
// race to basic-rebase the class. The encode-then-revalidate split must
// keep exactly one rebase per drift and every delta decodable.
func TestConcurrentBasicRebaseStress(t *testing.T) {
	const (
		goroutines = 8
		requests   = 200
	)
	e := newTestEngine(t, Config{
		Mode: ModeClassless, // rebases distribute immediately: worst case
		Now:  time.Now,
	})

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cl := newStressClient(t, e, fmt.Sprintf("user-%d", g))
			for i := 0; i < requests; i++ {
				url := fmt.Sprintf("www.churn.com/page/%d", i%2)
				// Two document families far apart, alternating per visit to
				// each URL, plus a small personal twist so goroutines do not
				// all submit identical bytes.
				family := uint64(i/2) % 2
				doc := append(incompressible(3+family*17, 4096),
					[]byte(fmt.Sprintf("<user %s seq %d>", cl.user, i))...)
				cl.request(url, doc, FormatVdelta)
			}
		}(g)
	}
	wg.Wait()

	st := e.Stats()
	if want := int64(goroutines * requests); st.Requests != want {
		t.Errorf("requests = %d, want %d", st.Requests, want)
	}
	if st.BasicRebases == 0 {
		t.Error("rebase stress produced no basic-rebases; oversized path not exercised")
	}
}

// TestConcurrentStateCreation races many goroutines on first contact with
// the same classes: the sharded table must hand every goroutine the same
// classState per key, never two.
func TestConcurrentStateCreation(t *testing.T) {
	e := newTestEngine(t, Config{Mode: ModeClassless, Now: time.Now})
	const goroutines = 16
	var wg sync.WaitGroup
	states := make([]*classState, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			states[g] = e.state("url:www.same.com/page", nil)
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if states[g] != states[0] {
			t.Fatalf("goroutine %d got a different classState for the same key", g)
		}
	}
	if n := len(e.states()); n != 1 {
		t.Fatalf("engine holds %d classStates, want 1", n)
	}
}
