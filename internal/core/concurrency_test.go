package core

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
	"testing"
	"time"

	"cbde/internal/anonymize"
)

// heldBase is the client-side cache entry a stress goroutine keeps per
// class: the base bytes it downloaded and their version.
type heldBase struct {
	version int
	base    []byte
}

// stressClient simulates one delta-capable client: it remembers the bases
// it holds, advertises them on every request, decodes every delta response
// and checks the reconstruction, and verifies the engine's version
// invariants from its (sequential) point of view.
type stressClient struct {
	t      *testing.T
	e      *Engine
	user   string
	held   map[string]heldBase
	latest map[string]int // newest LatestVersion observed per class
}

func newStressClient(t *testing.T, e *Engine, user string) *stressClient {
	return &stressClient{
		t:      t,
		e:      e,
		user:   user,
		held:   make(map[string]heldBase),
		latest: make(map[string]int),
	}
}

// request runs doc through Engine.Process advertising every held base, then
// checks the response invariants:
//
//   - a delta response names a base the client advertised, and applying the
//     delta to that base reproduces doc byte-for-byte;
//   - LatestVersion never goes backwards from this client's point of view
//     (its calls to one class are sequential, and distVersion is monotone);
//   - a base fetched after the response is at least as new as the version
//     the response announced.
func (c *stressClient) request(url string, doc []byte, format Format) {
	req := Request{URL: url, UserID: c.user, Doc: doc, Format: format}
	for id, hb := range c.held {
		req.Held = append(req.Held, HeldBase{ClassID: id, Version: hb.version})
	}
	resp, err := c.e.Process(req)
	if err != nil {
		c.t.Errorf("Process(%s): %v", url, err)
		return
	}
	if resp.ClassID == "" {
		c.t.Errorf("Process(%s): empty ClassID", url)
		return
	}
	if resp.LatestVersion < c.latest[resp.ClassID] {
		c.t.Errorf("class %s: LatestVersion went backwards: %d after %d",
			resp.ClassID, resp.LatestVersion, c.latest[resp.ClassID])
	}
	c.latest[resp.ClassID] = resp.LatestVersion

	if resp.Kind == KindDelta {
		hb, ok := c.held[resp.ClassID]
		if !ok || hb.version != resp.BaseVersion {
			c.t.Errorf("class %s: delta against version %d, client holds %+v",
				resp.ClassID, resp.BaseVersion, hb)
			return
		}
		got, err := c.e.DecodeAs(hb.base, resp.Payload, resp.Gzipped, resp.Format)
		if err != nil {
			c.t.Errorf("class %s: decode delta (v%d, %s): %v",
				resp.ClassID, resp.BaseVersion, resp.Format, err)
			return
		}
		if !bytes.Equal(got, doc) {
			c.t.Errorf("class %s: round trip mismatch: got %d bytes, want %d",
				resp.ClassID, len(got), len(doc))
		}
	}

	// Refresh the held base when the server announced a newer one.
	if hb := c.held[resp.ClassID]; resp.LatestVersion > hb.version {
		base, v, ok := c.e.LatestBase(resp.ClassID)
		if !ok {
			// The class can transiently have no distributable base only
			// before its first version; after an announcement it must.
			c.t.Errorf("class %s: LatestBase missing after LatestVersion=%d",
				resp.ClassID, resp.LatestVersion)
			return
		}
		if v < resp.LatestVersion {
			c.t.Errorf("class %s: LatestBase version %d older than announced %d",
				resp.ClassID, v, resp.LatestVersion)
		}
		c.held[resp.ClassID] = heldBase{version: v, base: base}
	}
}

// TestConcurrentProcessStress drives the full pipeline — grouping, selector
// observation, anonymization, snapshot encode, rebases — from many
// goroutines across several classes, with concurrent readers (Stats,
// BaseFile, SaveState) mixed in. Run under `go test -race`; it is the
// repo's evidence for the engine's "safe for concurrent use" claim.
func TestConcurrentProcessStress(t *testing.T) {
	const (
		goroutines = 8
		classes    = 4
		requests   = 250
	)
	e := newTestEngine(t, Config{
		Anon: anonymize.Config{M: 1, N: 2},
		Now:  time.Now, // the deterministic test clock is not needed here
	})

	depts := make([]string, classes)
	for c := range depts {
		depts[c] = fmt.Sprintf("dept%d", c)
	}

	done := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		// Concurrent observer: engine-wide snapshots and base fetches must
		// never race with serving. Runs until the writers finish.
		defer readers.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			st := e.Stats()
			if st.BytesDelta+st.BytesFull > st.BytesDirect {
				t.Errorf("sent more bytes than direct: %+v", st)
				return
			}
			if _, ok := e.GroupingStats(); !ok {
				t.Error("GroupingStats unavailable in class-based mode")
				return
			}
			if i%3 == 0 {
				if err := e.SaveState(io.Discard); err != nil {
					t.Errorf("SaveState: %v", err)
					return
				}
			}
			_ = e.Metrics().Snapshot()
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cl := newStressClient(t, e, fmt.Sprintf("user-%d", g))
			for i := 0; i < requests; i++ {
				c := (g + i) % classes
				item := i % 3
				url := fmt.Sprintf("www.shop.com/%s/%d", depts[c], item)
				doc := renderDoc(depts[c], item, i, cl.user)
				format := FormatVdelta
				if i%4 == 3 {
					format = FormatVCDIFF
				}
				cl.request(url, doc, format)
				if i%7 == 0 {
					// Random-ish base fetches, including versions that may
					// have been pruned: must return cleanly either way.
					for id, hb := range cl.held {
						if base, ok := e.BaseFile(id, hb.version); ok && len(base) == 0 {
							t.Errorf("class %s: BaseFile(v%d) returned empty base", id, hb.version)
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(done)
	readers.Wait()

	st := e.Stats()
	if want := int64(goroutines * requests); st.Requests != want {
		t.Errorf("requests = %d, want %d", st.Requests, want)
	}
	if st.DeltaResponses == 0 {
		t.Error("stress run produced no delta responses; delta path not exercised")
	}
	if st.DeltaResponses+st.FullResponses != st.Requests {
		t.Errorf("responses (%d delta + %d full) do not add up to %d requests",
			st.DeltaResponses, st.FullResponses, st.Requests)
	}
}

// TestConcurrentBasicRebaseStress hammers the oversized-delta path: every
// goroutine alternates between two unrelated incompressible documents on
// the same URLs, so nearly every delta trips MaxDeltaRatio and requests
// race to basic-rebase the class. The encode-then-revalidate split must
// keep exactly one rebase per drift and every delta decodable.
func TestConcurrentBasicRebaseStress(t *testing.T) {
	const (
		goroutines = 8
		requests   = 200
	)
	e := newTestEngine(t, Config{
		Mode: ModeClassless, // rebases distribute immediately: worst case
		Now:  time.Now,
	})

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cl := newStressClient(t, e, fmt.Sprintf("user-%d", g))
			for i := 0; i < requests; i++ {
				url := fmt.Sprintf("www.churn.com/page/%d", i%2)
				// Two document families far apart, alternating per visit to
				// each URL, plus a small personal twist so goroutines do not
				// all submit identical bytes.
				family := uint64(i/2) % 2
				doc := append(incompressible(3+family*17, 4096),
					[]byte(fmt.Sprintf("<user %s seq %d>", cl.user, i))...)
				cl.request(url, doc, FormatVdelta)
			}
		}(g)
	}
	wg.Wait()

	st := e.Stats()
	if want := int64(goroutines * requests); st.Requests != want {
		t.Errorf("requests = %d, want %d", st.Requests, want)
	}
	if st.BasicRebases == 0 {
		t.Error("rebase stress produced no basic-rebases; oversized path not exercised")
	}
}

// TestConcurrentStateCreation races many goroutines on first contact with
// the same classes: the sharded table must hand every goroutine the same
// classState per key, never two.
func TestConcurrentStateCreation(t *testing.T) {
	e := newTestEngine(t, Config{Mode: ModeClassless, Now: time.Now})
	const goroutines = 16
	var wg sync.WaitGroup
	states := make([]*classState, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			states[g] = e.state("url:www.same.com/page", nil)
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if states[g] != states[0] {
			t.Fatalf("goroutine %d got a different classState for the same key", g)
		}
	}
	if n := len(e.states()); n != 1 {
		t.Fatalf("engine holds %d classStates, want 1", n)
	}
}

// TestConcurrentPayloadAliasingStress is the buffer-ownership audit for the
// pooled encode pipeline, run under `go test -race`. Encoder scratch and
// gzip state are recycled across requests, so the test attacks the two
// places a recycled buffer could leak: Response.Payload must never alias
// pooled memory (a later request would rewrite bytes a client still holds),
// and BaseFileView's zero-copy bytes must stay immutable while serving and
// rebasing continue. Every goroutine retains the payloads it was served and
// only decodes them after all serving has finished; if any payload shared a
// pooled buffer, the interleaved requests would have corrupted it and the
// checksum or the decode would fail.
func TestConcurrentPayloadAliasingStress(t *testing.T) {
	const (
		goroutines = 8
		classes    = 3
		requests   = 120
	)
	e := newTestEngine(t, Config{
		Anon: anonymize.Config{M: 1, N: 2},
		Now:  time.Now,
	})

	// Warm each class until it distributes a base, then pin the base bytes'
	// checksum via the zero-copy view.
	type warmBase struct {
		classID string
		version int
		view    []byte
		sum     uint32
	}
	bases := make([]warmBase, classes)
	for c := 0; c < classes; c++ {
		dept := fmt.Sprintf("alias%d", c)
		var resp Response
		for u := 0; u < 6 && resp.LatestVersion == 0; u++ {
			var err error
			url := fmt.Sprintf("www.shop.com/%s/%d", dept, 0)
			user := fmt.Sprintf("warm-%d-%d", c, u)
			resp, err = e.Process(Request{URL: url, UserID: user, Doc: renderDoc(dept, 0, u, user)})
			if err != nil {
				t.Fatal(err)
			}
		}
		if resp.LatestVersion == 0 {
			t.Fatalf("class %d: no distributable base after warmup", c)
		}
		view, ok := e.BaseFileView(resp.ClassID, resp.LatestVersion)
		if !ok {
			t.Fatalf("class %d: BaseFileView missing for v%d", c, resp.LatestVersion)
		}
		bases[c] = warmBase{
			classID: resp.ClassID,
			version: resp.LatestVersion,
			view:    view,
			sum:     crc32.ChecksumIEEE(view),
		}
	}

	type servedDelta struct {
		payload []byte
		sum     uint32 // payload checksum at capture time
		gzipped bool
		format  Format
		base    int    // index into bases
		doc     []byte // expected reconstruction
	}
	retained := make([][]servedDelta, goroutines)

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < requests; i++ {
				c := (g + i) % classes
				wb := bases[c]
				dept := fmt.Sprintf("alias%d", c)
				user := fmt.Sprintf("client-%d", g)
				doc := renderDoc(dept, 0, 100+g*requests+i, user)
				format := FormatVdelta
				if i%5 == 4 {
					format = FormatVCDIFF
				}
				resp, err := e.Process(Request{
					URL: fmt.Sprintf("www.shop.com/%s/%d", dept, 0), UserID: user, Doc: doc,
					HaveClassID: wb.classID, HaveVersion: wb.version,
					Format: format,
				})
				if err != nil {
					t.Errorf("Process: %v", err)
					return
				}
				if resp.Kind != KindDelta || resp.BaseVersion != wb.version {
					continue // full response or rebased base; nothing to retain
				}
				retained[g] = append(retained[g], servedDelta{
					payload: resp.Payload,
					sum:     crc32.ChecksumIEEE(resp.Payload),
					gzipped: resp.Gzipped,
					format:  resp.Format,
					base:    c,
					doc:     doc,
				})
				// Interleave concurrent pooled-reader work: decoding an
				// earlier payload uses gzipx.Decompress's pooled gzip.Reader
				// while other goroutines are mid-encode.
				if n := len(retained[g]); i%3 == 0 && n > 1 {
					earlier := retained[g][n/2]
					got, err := e.DecodeAs(bases[earlier.base].view, earlier.payload,
						earlier.gzipped, earlier.format)
					if err != nil {
						t.Errorf("mid-run decode: %v", err)
						return
					}
					if !bytes.Equal(got, earlier.doc) {
						t.Errorf("mid-run decode mismatch: got %d bytes, want %d",
							len(got), len(earlier.doc))
						return
					}
				}
			}
		}(g)
	}

	// Concurrent base readers: the zero-copy view must never change while
	// requests are being served against it.
	done := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			for _, wb := range bases {
				if sum := crc32.ChecksumIEEE(wb.view); sum != wb.sum {
					t.Errorf("class %s: BaseFileView bytes mutated while serving", wb.classID)
					return
				}
			}
		}
	}()

	wg.Wait()
	close(done)
	readers.Wait()
	if t.Failed() {
		return
	}

	// All serving is over; every pooled buffer has been recycled many times.
	// Retained payloads must be bit-identical to capture time and still
	// reconstruct their documents from the (equally untouched) base views.
	total := 0
	for g := range retained {
		for i, sd := range retained[g] {
			if sum := crc32.ChecksumIEEE(sd.payload); sum != sd.sum {
				t.Fatalf("goroutine %d payload %d mutated after serving: pooled buffer aliased", g, i)
			}
			got, err := e.DecodeAs(bases[sd.base].view, sd.payload, sd.gzipped, sd.format)
			if err != nil {
				t.Fatalf("goroutine %d payload %d: decode after serving: %v", g, i, err)
			}
			if !bytes.Equal(got, sd.doc) {
				t.Fatalf("goroutine %d payload %d: reconstruction mismatch after serving", g, i)
			}
			total++
		}
	}
	if total == 0 {
		t.Fatal("stress run retained no delta payloads; aliasing audit did not execute")
	}
	for _, wb := range bases {
		if sum := crc32.ChecksumIEEE(wb.view); sum != wb.sum {
			t.Fatalf("class %s: BaseFileView bytes mutated by run", wb.classID)
		}
	}
}
