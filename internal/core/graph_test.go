package core

import (
	"bytes"
	"testing"

	"cbde/internal/basefile"
)

// docGen renders one content generation for graph tests: a shared
// incompressible template plus a per-generation section, so consecutive
// versions stay close (small edges) while every generation change still
// breaches a tight MaxDeltaRatio and forces a rebase.
func docGen(gen int) []byte {
	doc := append([]byte(nil), incompressible(42, 4000)...)
	return append(doc, incompressible(uint64(gen)+100, 600)...)
}

// graphEngine builds an engine where every content generation rebases and
// the class retains depth versions connected by edges.
func graphEngine(t *testing.T, depth int, cfg Config) *Engine {
	t.Helper()
	cfg.DisableAnonymization = true
	cfg.GraphDepth = depth
	cfg.MaxDeltaRatio = 0.02
	cfg.Selector = basefile.Config{SampleProb: 1, MaxSamples: 4}
	return newTestEngine(t, cfg)
}

// driveGenerations pushes gens content generations through one class with
// a client that keeps its base fresh, and returns the class ID and the
// latest distributable version.
func driveGenerations(t *testing.T, e *Engine, gens int) (string, int) {
	t.Helper()
	classID, have := "", 0
	for g := 1; g <= gens; g++ {
		// Two requests per generation: the first detects the oversized
		// delta (or cold class) and installs the generation's base, the
		// second confirms the class serves it.
		for r := 0; r < 2; r++ {
			resp, err := e.Process(Request{
				URL: "www.shop.com/graph/1", UserID: "u", Doc: docGen(g),
				HaveClassID: classID, HaveVersion: have,
			})
			if err != nil {
				t.Fatal(err)
			}
			classID = resp.ClassID
			if resp.LatestVersion > have {
				have = resp.LatestVersion
			}
		}
	}
	if have == 0 {
		t.Fatal("no distributable version after driving generations")
	}
	return classID, have
}

// TestGraphServesAnyRetainedVersion is the tentpole acceptance check: a
// client holding any retained version gets a byte-verified delta (direct
// or composed chain), and only an aged-out version falls back to full.
func TestGraphServesAnyRetainedVersion(t *testing.T) {
	const depth, gens = 4, 7
	e := graphEngine(t, depth, Config{})
	classID, latest := driveGenerations(t, e, gens)

	doc := docGen(gens) // current content, unchanged since the last install
	var retained []int
	for v := 1; v <= latest; v++ {
		if _, ok := e.BaseFile(classID, v); ok {
			retained = append(retained, v)
		}
	}
	if len(retained) < 2 || len(retained) > depth {
		t.Fatalf("retained versions = %v, want 2..%d of them", retained, depth)
	}

	sawChain := false
	for _, v := range retained {
		resp, err := e.Process(Request{
			URL: "www.shop.com/graph/1", UserID: "u", Doc: doc,
			HaveClassID: classID, HaveVersion: v,
		})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Kind != KindDelta {
			t.Fatalf("version %d: kind = %v, want delta for a retained version", v, resp.Kind)
		}
		base, _ := e.BaseFile(classID, v)
		got, err := e.DecodeAs(base, resp.Payload, resp.Gzipped, resp.Format)
		if err != nil {
			t.Fatalf("version %d: decode (%v): %v", v, resp.Format, err)
		}
		if !bytes.Equal(got, doc) {
			t.Fatalf("version %d: reconstruction mismatch (%v)", v, resp.Format)
		}
		if resp.Format == FormatVdeltaChain {
			sawChain = true
			if want := latest - v + 1; resp.ChainLen != want {
				t.Errorf("version %d: chain length = %d, want %d", v, resp.ChainLen, want)
			}
		}
	}
	if !sawChain {
		t.Error("no composed chain served across retained versions")
	}

	// A pruned version aged out of the graph: full response, counted as a
	// graph fallback.
	if _, ok := e.BaseFile(classID, 1); ok {
		t.Fatalf("version 1 still retained; want pruned at depth %d", depth)
	}
	resp, err := e.Process(Request{
		URL: "www.shop.com/graph/1", UserID: "u", Doc: doc,
		HaveClassID: classID, HaveVersion: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Kind != KindFull {
		t.Fatalf("aged-out version: kind = %v, want full", resp.Kind)
	}

	gs := e.GraphStats()
	if gs.Depth != depth {
		t.Errorf("GraphStats.Depth = %d, want %d", gs.Depth, depth)
	}
	if gs.Composed == 0 || gs.Direct == 0 || gs.FallbackFull == 0 {
		t.Errorf("GraphStats = direct %d composed %d fallback %d, want all nonzero",
			gs.Direct, gs.Composed, gs.FallbackFull)
	}
	if gs.Edges == 0 || gs.EdgeBytes == 0 {
		t.Errorf("GraphStats edges = %d (%d bytes), want edges resident", gs.Edges, gs.EdgeBytes)
	}

	st, ok := e.ClassStats(classID)
	if !ok {
		t.Fatal("class stats missing")
	}
	if st.GraphVersions != len(retained) || st.GraphEdges == 0 {
		t.Errorf("class graph = %dv/%de, want %dv and edges", st.GraphVersions, st.GraphEdges, len(retained))
	}
	if st.GraphComposed == 0 || st.GraphDirect == 0 || st.GraphFallback == 0 {
		t.Errorf("class graph serving = %d/%d/%d, want all nonzero",
			st.GraphDirect, st.GraphComposed, st.GraphFallback)
	}
}

// TestGraphComposedChainDeterministic pins the composed path itself: a
// snapshot with an intact edge walk must assemble a chain that decodes to
// the document, and a second identical request must share the memoized
// chain payload.
func TestGraphComposedChainDeterministic(t *testing.T) {
	e := graphEngine(t, 4, Config{})
	classID, latest := driveGenerations(t, e, 5)
	doc := docGen(5)

	cs, ok := e.lookup(classID)
	if !ok {
		t.Fatal("class state missing")
	}
	var oldest int
	cs.mu.RLock()
	for v := range cs.bases {
		if oldest == 0 || v < oldest {
			oldest = v
		}
	}
	cs.mu.RUnlock()
	if oldest == latest {
		t.Fatalf("only one retained version (v%d); cannot build a chain", latest)
	}

	req := Request{
		URL: "www.shop.com/graph/1", UserID: "u", Doc: doc,
		HaveClassID: classID, HaveVersion: oldest,
	}
	cs.mu.RLock()
	snap := cs.snapshotLocked(req)
	cs.mu.RUnlock()
	if len(snap.chain) == 0 {
		t.Fatalf("snapshot has no chain from v%d to v%d", oldest, latest)
	}

	now := e.cfg.Now()
	first := e.respondChain(cs, snap, req, now, nil)
	if first.Kind != KindDelta || first.Format != FormatVdeltaChain {
		t.Fatalf("chain response = kind %v format %v, want chained delta", first.Kind, first.Format)
	}
	base, _ := e.BaseFile(classID, oldest)
	got, err := e.DecodeAs(base, first.Payload, first.Gzipped, first.Format)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, doc) {
		t.Fatal("composed chain did not reproduce the document")
	}
	if first.ChainLen != len(snap.chain)+1 {
		t.Errorf("chain length = %d, want %d edges + tip", first.ChainLen, len(snap.chain)+1)
	}

	second := e.respondChain(cs, snap, req, now, nil)
	if second.Kind != KindDelta || !bytes.Equal(second.Payload, first.Payload) {
		t.Error("repeat chain request did not share the memoized payload")
	}
	if second.ChainLen != first.ChainLen {
		t.Errorf("memo-hit chain length = %d, want %d", second.ChainLen, first.ChainLen)
	}
}

// TestGraphDepthOneKeepsNoEdges: depth 1 is graph-off — one retained
// version, no edges, and a lagging client falls back to full.
func TestGraphDepthOneKeepsNoEdges(t *testing.T) {
	e := graphEngine(t, 1, Config{})
	classID, latest := driveGenerations(t, e, 4)

	st, ok := e.ClassStats(classID)
	if !ok {
		t.Fatal("class stats missing")
	}
	if st.GraphVersions != 1 || st.GraphEdges != 0 || st.GraphEdgeBytes != 0 {
		t.Fatalf("depth-1 graph = %dv/%de (%d bytes), want 1v/0e", st.GraphVersions, st.GraphEdges, st.GraphEdgeBytes)
	}
	resp, err := e.Process(Request{
		URL: "www.shop.com/graph/1", UserID: "u", Doc: docGen(4),
		HaveClassID: classID, HaveVersion: latest - 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Kind != KindFull {
		t.Fatalf("depth-1 lagging client: kind = %v, want full", resp.Kind)
	}
	if gs := e.GraphStats(); gs.FallbackFull == 0 {
		t.Error("depth-1 fallback not counted")
	}
}

// TestGraphSpillRestoresEdges: eviction spills the version graph with the
// class; fault-in restores the edges and a lagging client is still served
// a byte-verified delta.
func TestGraphSpillRestoresEdges(t *testing.T) {
	e := graphEngine(t, 4, Config{SpillDir: t.TempDir()})
	defer e.Close()
	classID, latest := driveGenerations(t, e, 5)
	doc := docGen(5)

	before, ok := e.ClassStats(classID)
	if !ok || before.GraphEdges == 0 {
		t.Fatalf("want resident edges before eviction, got %+v ok=%v", before, ok)
	}
	var oldest int
	for v := 1; v <= latest; v++ {
		if _, ok := e.BaseFile(classID, v); ok {
			oldest = v
			break
		}
	}

	if _, ok := e.EvictClass(classID); !ok {
		t.Fatal("evict failed")
	}
	mid, _ := e.ClassStats(classID)
	if !mid.Spilled || mid.GraphEdges != 0 {
		t.Fatalf("after evict: spilled=%v edges=%d, want spilled with no resident edges", mid.Spilled, mid.GraphEdges)
	}

	resp, err := e.Process(Request{
		URL: "www.shop.com/graph/1", UserID: "u", Doc: doc,
		HaveClassID: classID, HaveVersion: oldest,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Kind != KindDelta {
		t.Fatalf("post-fault-in lagging client: kind = %v, want delta", resp.Kind)
	}
	base, ok := e.BaseFile(classID, oldest)
	if !ok {
		t.Fatalf("version %d not restored by fault-in", oldest)
	}
	got, err := e.DecodeAs(base, resp.Payload, resp.Gzipped, resp.Format)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, doc) {
		t.Fatal("post-fault-in reconstruction mismatch")
	}
	after, _ := e.ClassStats(classID)
	if after.GraphEdges != before.GraphEdges {
		t.Errorf("edges after fault-in = %d, want %d restored", after.GraphEdges, before.GraphEdges)
	}
}

// TestGraphEdgesPurgedOnAnonEpochBump: edges embed distributed content, so
// an anonymization epoch bump must drain them like the memo cache.
func TestGraphEdgesPurgedOnAnonEpochBump(t *testing.T) {
	e := graphEngine(t, 4, Config{})
	classID, _ := driveGenerations(t, e, 4)
	if st, _ := e.ClassStats(classID); st.GraphEdges == 0 {
		t.Fatal("want resident edges before epoch bump")
	}
	e.BumpAnonEpoch()
	st, _ := e.ClassStats(classID)
	if st.GraphEdges != 0 || st.GraphEdgeBytes != 0 {
		t.Fatalf("after epoch bump: %d edges (%d bytes), want none", st.GraphEdges, st.GraphEdgeBytes)
	}
}

// TestGraphStridedResiduesGetNoCrossEdges: with cluster striding, versions
// from another node's residue class must never be chained over.
func TestGraphStridedResiduesGetNoCrossEdges(t *testing.T) {
	cfg := basefile.Config{VersionStride: 3, VersionOffset: 1}
	cases := []struct {
		a, b int
		want bool
	}{
		{1, 4, true},
		{4, 7, true},
		{1, 2, false},
		{2, 5, false},
		{0, 1, false},
	}
	for _, c := range cases {
		if got := cfg.SameResidue(c.a, c.b); got != c.want {
			t.Errorf("SameResidue(%d, %d) = %v, want %v", c.a, c.b, got, c.want)
		}
	}

	// End to end: a strided engine builds edges only between its own
	// versions (stride 2, offset 1 → versions 1, 3, 5, ...).
	e := newTestEngine(t, Config{
		DisableAnonymization: true,
		GraphDepth:           4,
		MaxDeltaRatio:        0.02,
		Selector: basefile.Config{
			SampleProb: 1, MaxSamples: 4,
			VersionStride: 2, VersionOffset: 1,
		},
	})
	classID, _ := driveGenerations(t, e, 4)
	cs, _ := e.lookup(classID)
	cs.mu.RLock()
	defer cs.mu.RUnlock()
	for from, ge := range cs.edges {
		if !e.cfg.Selector.SameResidue(from, ge.to) {
			t.Errorf("edge %d->%d crosses residue classes", from, ge.to)
		}
	}
}
