package core

import (
	"fmt"
	"testing"
	"time"

	"cbde/internal/anonymize"
	"cbde/internal/basefile"
	"cbde/internal/origin"
	"cbde/internal/testutil"
)

// processWarmAllocBudget bounds the steady-state allocation cost of serving
// one delta response from a warm class. The remaining per-request objects are
// the response payload itself (gzip output or the copied-out delta) and small
// routing strings from URL partitioning — measured at ~5 objects/op; encoder
// scratch and gzip state are pooled and must not show up here. The budget
// carries ~2x headroom over the measured count so it trips on a pooling
// regression, not on minor stdlib drift.
const processWarmAllocBudget = 10

func TestProcessWarmClassAllocBudget(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts differ under -race")
	}
	eng, err := NewEngine(Config{
		Anon: anonymize.Config{M: 1, N: 2},
		// Disable candidate sampling so measurement sees the pure
		// route+encode path with no group-rebases mid-run.
		Selector: basefile.Config{SampleProb: -1},
		Now:      monotonicClock(),
	})
	if err != nil {
		t.Fatal(err)
	}
	site := origin.NewSite(origin.Config{
		Host:          "www.alloc.com",
		Depts:         []origin.Dept{{Name: "catalog", Items: 2}},
		TemplateBytes: 30000,
		ItemBytes:     3000,
		ChurnBytes:    1500,
		Seed:          9100,
	})
	const url = "www.alloc.com/catalog/0"
	var resp Response
	for u := 0; u < 4; u++ {
		doc, err := site.Render("catalog", 0, "", u)
		if err != nil {
			t.Fatal(err)
		}
		resp, err = eng.Process(Request{URL: url, UserID: fmt.Sprintf("warm%d", u), Doc: doc})
		if err != nil {
			t.Fatal(err)
		}
	}
	if resp.LatestVersion == 0 {
		t.Fatal("no distributable base after warmup")
	}
	classID, version := resp.ClassID, resp.LatestVersion
	doc, err := site.Render("catalog", 0, "", 10)
	if err != nil {
		t.Fatal(err)
	}
	req := Request{URL: url, UserID: "alloc", Doc: doc, HaveClassID: classID, HaveVersion: version}
	// Warm the encode-scratch and gzip pools.
	for i := 0; i < 5; i++ {
		r, err := eng.Process(req)
		if err != nil {
			t.Fatal(err)
		}
		if r.Kind != KindDelta {
			t.Fatalf("expected delta response, got %v", r.Kind)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := eng.Process(req); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > processWarmAllocBudget {
		t.Errorf("Process allocates %.1f objects/op on a warm class, budget %d",
			allocs, processWarmAllocBudget)
	}
	t.Logf("Process warm-class allocations: %.1f objects/op (budget %d)", allocs, processWarmAllocBudget)
}

// monotonicClock returns a deterministic strictly-increasing clock so the
// engine never consults wall time (and never varies allocation behavior with
// the scheduler).
func monotonicClock() func() time.Time {
	base := time.Unix(1_000_000, 0)
	n := 0
	return func() time.Time {
		n++
		return base.Add(time.Duration(n) * time.Millisecond)
	}
}
