package core

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"cbde/internal/classify"
)

// stateVersion guards the persistence format.
const stateVersion = 1

// savedClassState is the serializable per-class serving state. Selector
// candidate stores and in-flight anonymization processes are deliberately
// not persisted: they re-warm from live traffic.
type savedClassState struct {
	ID           string         `json:"id"`
	Bases        map[int][]byte `json:"bases,omitempty"` // JSON base64-encodes []byte
	DistVersion  int            `json:"distVersion"`
	SelectorBase []byte         `json:"selectorBase,omitempty"`
	SelectorTag  string         `json:"selectorTag,omitempty"`
	SelectorVer  int            `json:"selectorVersion"`
}

// savedState is the serializable portion of an Engine.
type savedState struct {
	Version  int                `json:"version"`
	Mode     Mode               `json:"mode"`
	SavedAt  time.Time          `json:"savedAt"`
	Classes  []savedClassState  `json:"classes"`
	Grouping *classify.Exported `json:"grouping,omitempty"`
}

// SaveState writes the engine's durable state to w: class definitions, URL
// assignments, distributable (anonymized) base-file versions, and each
// selector's current base. A delta-server can restart from this without
// re-anonymizing every class or invalidating clients' held base-files.
// Selector candidate samples and in-flight anonymization processes are not
// persisted; they rebuild from traffic.
func (e *Engine) SaveState(w io.Writer) error {
	st := savedState{Version: stateVersion, Mode: e.cfg.Mode, SavedAt: e.cfg.Now()}
	if e.classify != nil {
		ex := e.classify.Export()
		st.Grouping = &ex
	}

	states := e.states()
	sort.Slice(states, func(i, j int) bool { // deterministic output for identical state
		return states[i].id < states[j].id
	})

	for _, cs := range states {
		cs.mu.RLock()
		scs := savedClassState{
			ID:          cs.id,
			Bases:       make(map[int][]byte, len(cs.bases)),
			DistVersion: cs.distVersion,
		}
		for v, bv := range cs.bases {
			scs.Bases[v] = append([]byte(nil), bv.bytes...)
		}
		base, version := cs.selector.Base()
		scs.SelectorBase = base
		scs.SelectorVer = version
		scs.SelectorTag = cs.selector.BaseTag()
		cs.mu.RUnlock()
		st.Classes = append(st.Classes, scs)
	}

	enc := json.NewEncoder(w)
	if err := enc.Encode(st); err != nil {
		return fmt.Errorf("core: save state: %w", err)
	}
	return nil
}

// LoadState restores state written by SaveState into a freshly constructed
// engine. It must run before the engine serves traffic, and the engine's
// Mode must match the saved one.
func (e *Engine) LoadState(r io.Reader) error {
	var st savedState
	if err := json.NewDecoder(r).Decode(&st); err != nil {
		return fmt.Errorf("core: load state: %w", err)
	}
	if st.Version != stateVersion {
		return fmt.Errorf("core: load state: unsupported version %d", st.Version)
	}
	if st.Mode != e.cfg.Mode {
		return fmt.Errorf("core: load state: saved mode %v does not match engine mode %v", st.Mode, e.cfg.Mode)
	}

	if len(e.states()) != 0 {
		return fmt.Errorf("core: load state into an engine that already served traffic")
	}

	if st.Grouping != nil {
		if e.classify == nil {
			return fmt.Errorf("core: load state: snapshot has grouping state but engine is classless")
		}
		if err := e.classify.Import(*st.Grouping); err != nil {
			return fmt.Errorf("core: load state: %w", err)
		}
	}

	now := e.cfg.Now()
	for _, scs := range st.Classes {
		if scs.ID == "" {
			return fmt.Errorf("core: load state: class with empty ID")
		}
		var cl *classify.Class
		if e.classify != nil {
			var ok bool
			cl, ok = e.classify.ClassByID(scs.ID)
			if !ok {
				return fmt.Errorf("core: load state: class %q missing from grouping state", scs.ID)
			}
		}
		cs := e.state(scs.ID, cl)
		cs.mu.Lock()
		for v, b := range scs.Bases {
			if v <= 0 {
				cs.mu.Unlock()
				return fmt.Errorf("core: load state: class %q has invalid base version %d", scs.ID, v)
			}
			cs.bases[v] = &baseVersion{bytes: append([]byte(nil), b...)}
		}
		cs.distVersion = scs.DistVersion
		if cs.distVersion != 0 {
			// The true install time was not persisted; restart resets the
			// base's age clock, which per-class stats report from.
			cs.installedAt = now
		}
		if _, ok := cs.bases[cs.distVersion]; cs.distVersion != 0 && !ok {
			cs.mu.Unlock()
			return fmt.Errorf("core: load state: class %q distributes missing version %d", scs.ID, cs.distVersion)
		}
		if scs.SelectorVer > 0 {
			cs.selector.Restore(scs.SelectorBase, scs.SelectorTag, scs.SelectorVer, now)
		}
		// Anonymization already happened for the distributed versions; the
		// next rebase starts a fresh process.
		cs.anonSource = scs.SelectorVer
		cs.mu.Unlock()
	}
	return nil
}
