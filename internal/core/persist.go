package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"time"

	"cbde/internal/classify"
)

// stateVersion guards the persistence format. Version 2 is a stream: one
// header value followed by one value per class, so saving never marshals a
// monolithic blob and loading restores incrementally. Version 1 (header
// with the classes inline) is still loadable.
const stateVersion = 2

// savedClassState is the serializable per-class serving state. Selector
// candidate stores and in-flight anonymization processes are deliberately
// not persisted: they re-warm from live traffic. An evicted class persists
// as a minimal record — no bases, no selector base, Evicted set — so its
// selector version counter survives restart and version numbering can
// never restart from a number already announced to clients.
type savedClassState struct {
	ID           string         `json:"id"`
	Bases        map[int][]byte `json:"bases,omitempty"` // JSON base64-encodes []byte
	DistVersion  int            `json:"distVersion"`
	SelectorBase []byte         `json:"selectorBase,omitempty"`
	SelectorTag  string         `json:"selectorTag,omitempty"`
	SelectorVer  int            `json:"selectorVersion"`
	Evicted      bool           `json:"evicted,omitempty"`
}

// savedHeader is the stream's leading value. ClassCount lets the loader
// detect a truncated stream. For version-1 snapshots the same value also
// carries the classes inline (see loadHeader).
type savedHeader struct {
	Version    int                `json:"version"`
	Mode       Mode               `json:"mode"`
	SavedAt    time.Time          `json:"savedAt"`
	ClassCount int                `json:"classCount"`
	Grouping   *classify.Exported `json:"grouping,omitempty"`
}

// loadHeader is savedHeader plus the version-1 inline class list.
type loadHeader struct {
	savedHeader
	Classes []savedClassState `json:"classes"`
}

// snapshotForSave captures the class's durable state under a short read
// lock. Installed base bytes and the selector's base are immutable once
// published, so the snapshot references them without copying; the JSON
// encode runs after the lock is released, so neither encoding cost nor a
// 2x-state marshal buffer is ever paid while the class is locked.
func (cs *classState) snapshotForSave() savedClassState {
	cs.mu.RLock()
	defer cs.mu.RUnlock()
	scs := savedClassState{
		ID:          cs.id,
		DistVersion: cs.distVersion,
		Evicted:     cs.evicted,
	}
	if len(cs.bases) > 0 {
		scs.Bases = make(map[int][]byte, len(cs.bases))
		for v, bv := range cs.bases {
			scs.Bases[v] = bv.bytes
		}
	}
	base, version := cs.selector.Base()
	scs.SelectorBase = base
	scs.SelectorVer = version
	scs.SelectorTag = cs.selector.BaseTag()
	return scs
}

// SaveState writes the engine's durable state to w: class definitions, URL
// assignments, distributable (anonymized) base-file versions, and each
// selector's current base. A delta-server can restart from this without
// re-anonymizing every class or invalidating clients' held base-files.
// Selector candidate samples and in-flight anonymization processes are not
// persisted; they rebuild from traffic.
//
// The output is a stream — one header value, then one value per class in
// ID order — encoded class by class: each class is locked only long enough
// to snapshot references to its immutable bytes, and a concurrent eviction
// between snapshot and encode is harmless because released base bytes are
// never mutated, only un-accounted.
func (e *Engine) SaveState(w io.Writer) error {
	e.Quiesce() // settle async sample admissions so the snapshot is stable
	states := e.states()
	sort.Slice(states, func(i, j int) bool { // deterministic output for identical state
		return states[i].id < states[j].id
	})

	hdr := savedHeader{
		Version:    stateVersion,
		Mode:       e.cfg.Mode,
		SavedAt:    e.cfg.Now(),
		ClassCount: len(states),
	}
	if e.classify != nil {
		ex := e.classify.Export()
		hdr.Grouping = &ex
	}

	enc := json.NewEncoder(w)
	if err := enc.Encode(hdr); err != nil {
		return fmt.Errorf("core: save state: %w", err)
	}
	for _, cs := range states {
		if err := enc.Encode(cs.snapshotForSave()); err != nil {
			return fmt.Errorf("core: save state: class %q: %w", cs.id, err)
		}
	}
	return nil
}

// LoadState restores state written by SaveState into a freshly constructed
// engine. It must run before the engine serves traffic, and the engine's
// Mode must match the saved one. Both the version-2 stream and version-1
// monolithic snapshots load; restored bytes flow through the store's
// accountant, and a budgeted engine runs one maintenance sweep at the end
// so a snapshot larger than the budget is brought under it immediately.
func (e *Engine) LoadState(r io.Reader) error {
	dec := json.NewDecoder(r)
	var hdr loadHeader
	if err := dec.Decode(&hdr); err != nil {
		return fmt.Errorf("core: load state: %w", err)
	}
	if hdr.Version != 1 && hdr.Version != stateVersion {
		return fmt.Errorf("core: load state: unsupported version %d", hdr.Version)
	}
	if hdr.Mode != e.cfg.Mode {
		return fmt.Errorf("core: load state: saved mode %v does not match engine mode %v", hdr.Mode, e.cfg.Mode)
	}

	if e.cstore.Len() != 0 {
		return fmt.Errorf("core: load state into an engine that already served traffic")
	}

	if hdr.Grouping != nil {
		if e.classify == nil {
			return fmt.Errorf("core: load state: snapshot has grouping state but engine is classless")
		}
		// The NDJSON snapshot is authoritative for grouping: discard any
		// sidecar state the spill tier imported at construction and start
		// from a fresh manager (no classes exist yet — checked above).
		e.classify = classify.NewManager(e.cfg.Classify)
		if err := e.classify.Import(*hdr.Grouping); err != nil {
			return fmt.Errorf("core: load state: %w", err)
		}
	}

	now := e.cfg.Now()
	if hdr.Version == 1 {
		for _, scs := range hdr.Classes {
			if err := e.restoreClass(scs, now); err != nil {
				return err
			}
		}
	} else {
		n := 0
		for {
			var scs savedClassState
			if err := dec.Decode(&scs); errors.Is(err, io.EOF) {
				break
			} else if err != nil {
				return fmt.Errorf("core: load state: class record %d: %w", n, err)
			}
			if err := e.restoreClass(scs, now); err != nil {
				return err
			}
			n++
		}
		if n != hdr.ClassCount {
			return fmt.Errorf("core: load state: truncated stream: %d of %d class records", n, hdr.ClassCount)
		}
	}
	e.cstore.Maintain()
	return nil
}

// restoreClass rebuilds one class from its saved record.
func (e *Engine) restoreClass(scs savedClassState, now time.Time) error {
	if scs.ID == "" {
		return fmt.Errorf("core: load state: class with empty ID")
	}
	var cl *classify.Class
	if e.classify != nil {
		var ok bool
		cl, ok = e.classify.ClassByID(scs.ID)
		if !ok {
			return fmt.Errorf("core: load state: class %q missing from grouping state", scs.ID)
		}
	}
	cs := e.state(scs.ID, cl)
	cs.mu.Lock()
	defer cs.mu.Unlock()
	for v, b := range scs.Bases {
		if v <= 0 {
			return fmt.Errorf("core: load state: class %q has invalid base version %d", scs.ID, v)
		}
		// The decoded bytes are fresh allocations owned by this version.
		cs.bases[v] = &baseVersion{bytes: b, cs: cs}
		cs.addBase(int64(len(b)))
	}
	cs.distVersion = scs.DistVersion
	if cs.distVersion != 0 {
		// The true install time was not persisted; restart resets the
		// base's age clock, which per-class stats report from.
		cs.installedAt = now
	}
	if _, ok := cs.bases[cs.distVersion]; cs.distVersion != 0 && !ok {
		return fmt.Errorf("core: load state: class %q distributes missing version %d", scs.ID, cs.distVersion)
	}
	if scs.SelectorVer > 0 {
		// For an evicted class SelectorBase is empty and Restore keeps the
		// selector base-less: only the version counter carries over.
		cs.selector.Restore(scs.SelectorBase, scs.SelectorTag, scs.SelectorVer, now)
	}
	// Anonymization already happened for the distributed versions; the
	// next rebase starts a fresh process.
	cs.anonSource = scs.SelectorVer
	cs.evicted = scs.Evicted
	return nil
}
